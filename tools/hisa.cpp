// hisa — command-line driver for the HiDISC toolchain.
//
//   hisa asm <in.s> <out.bin>        assemble HISA text to a binary image
//   hisa dis <in.bin|in.s>           disassemble a program
//   hisa run <in.bin|in.s> [--trace N] [--reg rX ...]
//                                    run on the functional simulator
//   hisa compile <in.s> [--out sep.bin] [--report]
//                                    run the HiDISC compiler, show streams
//   hisa sim <in.bin|in.s> [--machine ss|cpap|cpcmp|hidisc|all]
//            [--l2 N --mem N] [--watchdog N] [--deadlock-json FILE]
//                                    cycle-level simulation
//
// Inputs ending in .s/.asm are assembled on the fly; anything else is
// loaded as a saved binary image (see isa/encoding.hpp).
//
// Exit codes: 0 = success, 1 = input/assembly/simulation error,
// 2 = usage, 3 = machine deadlock (classified report on stderr; full
// JSON to --deadlock-json when given).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "compiler/compile.hpp"
#include "diag/deadlock.hpp"
#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "isa/encoding.hpp"
#include "machine/machine.hpp"
#include "machine/report.hpp"
#include "sim/functional.hpp"
#include "stats/table.hpp"

namespace {

using namespace hidisc;

// Where `sim --deadlock-json FILE` wants the report; consumed by the
// DeadlockError handler in main().
std::string g_deadlock_json_path;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: hisa <asm|dis|run|compile|sim> <file> [options]\n"
               "  asm <in.s> <out.bin>\n"
               "  dis <in>\n"
               "  run <in> [--trace N] [--reg rX]...\n"
               "  compile <in.s> [--out sep.bin] [--report]\n"
               "  sim <in> [--machine ss|cpap|cpcmp|hidisc|all]"
               " [--l2 N --mem N]\n"
               "      [--watchdog N] [--lockstep] [--deadlock-json FILE]"
               " [--verbose]\n"
               "exit codes: 0 ok, 1 error, 2 usage, 3 deadlock\n");
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "hisa: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

bool is_source(const std::string& path) {
  return path.ends_with(".s") || path.ends_with(".asm");
}

isa::Program load(const std::string& path) {
  if (is_source(path)) return isa::assemble(read_file(path));
  const auto bytes = read_file(path);
  return isa::load_program(
      std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
}

int cmd_asm(const std::vector<std::string>& args) {
  if (args.size() != 2) usage();
  const auto prog = isa::assemble(read_file(args[0]));
  const auto image = isa::save_program(prog);
  std::ofstream out(args[1], std::ios::binary);
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  std::printf("%zu instructions, %zu data bytes -> %s (%zu bytes)\n",
              prog.code.size(), prog.data.size(), args[1].c_str(),
              image.size());
  return 0;
}

int cmd_dis(const std::vector<std::string>& args) {
  if (args.size() != 1) usage();
  std::fputs(isa::disassemble(load(args[0])).c_str(), stdout);
  return 0;
}

int cmd_run(const std::vector<std::string>& args) {
  if (args.empty()) usage();
  const auto prog = load(args[0]);
  std::size_t trace_n = 0;
  std::vector<int> regs;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--trace" && i + 1 < args.size())
      trace_n = std::stoul(args[++i]);
    else if (args[i] == "--reg" && i + 1 < args.size())
      regs.push_back(std::atoi(args[++i].c_str() + 1));
    else
      usage();
  }
  sim::Functional f(prog);
  if (trace_n > 0) {
    sim::TraceEntry e;
    for (std::size_t n = 0; n < trace_n && f.step(&e); ++n)
      std::printf("%8zu  [%d] %s\n", n, e.static_idx,
                  isa::disassemble(prog.code[e.static_idx]).c_str());
    if (!f.halted()) f.run();
  } else {
    f.run();
  }
  std::printf("halted after %llu instructions\n",
              static_cast<unsigned long long>(f.instructions()));
  for (const int r : regs)
    std::printf("  r%d = %lld\n", r,
                static_cast<long long>(f.reg(r)));
  std::printf("  memory digest = %016llx\n",
              static_cast<unsigned long long>(f.memory().digest()));
  return 0;
}

int cmd_compile(const std::vector<std::string>& args) {
  if (args.empty()) usage();
  const auto prog = load(args[0]);
  std::string out_path;
  bool report = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size())
      out_path = args[++i];
    else if (args[i] == "--report")
      report = true;
    else
      usage();
  }
  const auto comp = compiler::compile(prog);
  std::printf("access stream: %zu  computation stream: %zu  "
              "queue transfers: %zu  CMAS groups: %zu\n",
              comp.access_count, comp.compute_count, comp.inserted_pops,
              comp.groups.size());
  if (report) {
    std::printf("\nseparated binary:\n%s",
                isa::disassemble(comp.separated).c_str());
    std::printf("\nCMAS groups:\n");
    for (const auto& g : comp.groups) {
      std::printf("  group %d  trigger [%d]  members:", g.id, g.trigger);
      for (const auto m : g.members) std::printf(" %d", m);
      std::printf("\n");
    }
  }
  if (!out_path.empty()) {
    const auto image = isa::save_program(comp.separated);
    std::ofstream out(out_path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
    std::printf("separated binary -> %s\n", out_path.c_str());
  }
  return 0;
}

int cmd_sim(const std::vector<std::string>& args) {
  if (args.empty()) usage();
  const auto prog = load(args[0]);
  std::string which = "all";
  bool verbose = false;
  machine::MachineConfig cfg;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--machine" && i + 1 < args.size())
      which = args[++i];
    else if (args[i] == "--l2" && i + 1 < args.size())
      cfg.mem.l2.hit_latency = std::atoi(args[++i].c_str());
    else if (args[i] == "--mem" && i + 1 < args.size())
      cfg.mem.dram_latency = std::atoi(args[++i].c_str());
    else if (args[i] == "--watchdog" && i + 1 < args.size())
      cfg.watchdog_cycles = std::stoull(args[++i]);
    else if (args[i] == "--lockstep")
      cfg.scheduler = machine::SchedulerKind::Lockstep;
    else if (args[i] == "--deadlock-json" && i + 1 < args.size())
      g_deadlock_json_path = args[++i];
    else if (args[i] == "--verbose")
      verbose = true;
    else
      usage();
  }
  const auto comp = compiler::compile(prog);
  sim::Functional fo(comp.original);
  const auto to = fo.run_trace();
  sim::Functional fs(comp.separated);
  const auto ts = fs.run_trace();

  stats::Table table({"Machine", "Cycles", "IPC", "L1 miss rate",
                      "Speedup"});
  std::uint64_t base = 0;
  for (const auto preset :
       {machine::Preset::Superscalar, machine::Preset::CPAP,
        machine::Preset::CPCMP, machine::Preset::HiDISC}) {
    const std::string name = preset == machine::Preset::Superscalar ? "ss"
                             : preset == machine::Preset::CPAP      ? "cpap"
                             : preset == machine::Preset::CPCMP ? "cpcmp"
                                                                : "hidisc";
    if (which != "all" && which != name) continue;
    const bool sep = machine::uses_separated_binary(preset);
    const auto r = machine::run_machine(sep ? comp.separated : comp.original,
                                        sep ? ts : to, preset, cfg);
    if (base == 0) base = r.cycles;
    if (verbose)
      std::printf("--- %s ---\n%s\n", machine::preset_name(preset),
                  machine::render_report(r).c_str());
    table.add_row({machine::preset_name(preset), std::to_string(r.cycles),
                   stats::Table::num(r.ipc, 2),
                   stats::Table::num(r.l1_demand_miss_rate()),
                   stats::Table::num(static_cast<double>(base) /
                                     static_cast<double>(r.cycles))});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "asm") return cmd_asm(args);
    if (cmd == "dis") return cmd_dis(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "compile") return cmd_compile(args);
    if (cmd == "sim") return cmd_sim(args);
  } catch (const diag::DeadlockError& e) {
    // Machine deadlock: full forensic report to stderr, machine-readable
    // JSON where asked, and a distinct exit code so harnesses can tell
    // "model hang" from "bad input".
    std::fprintf(stderr, "hisa: %s\n\n%s", e.what(),
                 e.report().to_text().c_str());
    if (!g_deadlock_json_path.empty()) {
      std::ofstream out(g_deadlock_json_path, std::ios::trunc);
      if (out) {
        out << e.report().to_json() << '\n';
      } else {
        std::fprintf(stderr, "hisa: cannot write %s\n",
                     g_deadlock_json_path.c_str());
      }
    }
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hisa: %s\n", e.what());
    return 1;
  }
  usage();
}
