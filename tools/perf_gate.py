#!/usr/bin/env python3
"""Gate benchmark throughput against a checked-in baseline.

Compares items_per_second of matching benchmarks between a baseline JSON
(bench/baseline.json, committed) and a fresh google-benchmark JSON run:

    bench_sim_throughput --benchmark_filter='^BM_FullMachine' \
        --benchmark_format=json > perf.json
    python3 tools/perf_gate.py bench/baseline.json perf.json \
        --max-regression 0.25

Exits non-zero when any benchmark present in both files regresses by more
than --max-regression (fraction of baseline items/sec).  Benchmarks only in
one file are reported but never fail the gate, so adding or renaming a
benchmark does not break CI before the baseline is refreshed.  A missing
baseline file warns and passes for the same reason.

Refresh the baseline with --update after an intentional perf change:

    python3 tools/perf_gate.py bench/baseline.json perf.json --update

When the run used --benchmark_repetitions, aggregate entries are preferred
and the median is used (more robust than the mean on noisy CI runners).

--append-trajectory PATH appends this run's numbers to a trajectory file
(BENCH_throughput.json at the repo root, in CI) before gating, so the
repo accumulates an items/sec history across commits:

    python3 tools/perf_gate.py bench/baseline.json perf.json \
        --append-trajectory BENCH_throughput.json --commit "$GITHUB_SHA"

Each entry is {"commit", "benchmarks": {name: {"items_per_second",
"sim_cycles_per_sec"}}}, plus "label" when --label names the leg (one
commit can contribute several legs: the machine microbenchmarks, the
service-mode plan timings, the pipeline cold/warm timings).  The
throughput benchmarks report simulated cycles as items, so the two rates
coincide there; both are written so the trajectory stays meaningful if
items ever change meaning.  The append happens even when the gate then
fails — a regression is exactly the data point the trajectory exists to
show.

Trajectory hygiene: the commit id must be a real git hex id.  In CI
(when $CI is set) a missing or placeholder commit id is a hard error —
an entry recorded as "local" can never be correlated with a commit
again.  Outside CI the placeholder is allowed (with a warning) so local
experiments still work.
"""

import argparse
import json
import os
import sys


def load_items_per_second(path):
    """Map benchmark name -> items_per_second from google-benchmark JSON."""
    with open(path) as f:
        data = json.load(f)
    plain = {}
    medians = {}
    for b in data.get("benchmarks", []):
        name = b.get("name", "")
        ips = b.get("items_per_second")
        if ips is None:
            continue
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") == "median":
                medians[b.get("run_name", name)] = ips
        else:
            plain[name] = ips
    # Aggregates win: their run_name is the plain benchmark name.
    return {**plain, **medians}


def is_real_commit_id(commit):
    """A plausible (abbreviated or full) git hex object id."""
    return (isinstance(commit, str) and 7 <= len(commit) <= 40
            and all(c in "0123456789abcdef" for c in commit.lower()))


def append_trajectory(path, commit, current, label=None):
    """Append one {commit, benchmarks} entry to the trajectory JSON list."""
    try:
        with open(path) as f:
            history = json.load(f)
        if not isinstance(history, list):
            print(f"perf_gate: {path} is not a JSON list; refusing to "
                  "overwrite", file=sys.stderr)
            return 1
    except FileNotFoundError:
        history = []
    entry = {
        "commit": commit,
        "benchmarks": {
            name: {"items_per_second": ips, "sim_cycles_per_sec": ips}
            for name, ips in sorted(current.items())
        },
    }
    if label:
        entry["label"] = label
    history.append(entry)
    with open(path, "w") as f:
        json.dump(history, f, indent=2)
        f.write("\n")
    print(f"perf_gate: appended {commit[:12]} to {path} "
          f"({len(history)} entries)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="checked-in baseline JSON")
    ap.add_argument("current", help="fresh --benchmark_format=json output")
    ap.add_argument("--max-regression", type=float, default=0.25,
                    help="allowed fractional items/sec drop (default 0.25)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from the current run and exit")
    ap.add_argument("--append-trajectory", metavar="PATH",
                    help="append this run's rates to a trajectory JSON list")
    ap.add_argument("--commit", default=None,
                    help="commit id for the trajectory entry "
                         "(default: $GITHUB_SHA; 'local' placeholder is "
                         "rejected when $CI is set)")
    ap.add_argument("--label", default=None,
                    help="name this trajectory leg (e.g. service-mode, "
                         "pipeline) so one commit can carry several entries")
    args = ap.parse_args()

    current = load_items_per_second(args.current)
    if not current:
        print(f"perf_gate: no items_per_second entries in {args.current}",
              file=sys.stderr)
        return 1

    if args.append_trajectory:
        commit = args.commit or os.environ.get("GITHUB_SHA") or "local"
        if not is_real_commit_id(commit):
            if os.environ.get("CI"):
                print(f"perf_gate: refusing to append trajectory entry with "
                      f"commit id '{commit}' in CI — pass --commit or set "
                      "GITHUB_SHA to the real commit", file=sys.stderr)
                return 2
            print(f"perf_gate: warning: '{commit}' is not a git commit id; "
                  "this entry cannot be correlated with history",
                  file=sys.stderr)
        rc = append_trajectory(args.append_trajectory, commit, current,
                               args.label)
        if rc != 0:
            return rc

    if args.update:
        with open(args.current) as f:
            data = json.load(f)
        # Strip the run context: host-specific fields (date, load, CPU
        # clock) would churn on every refresh without informing the gate.
        data.pop("context", None)
        with open(args.baseline, "w") as f:
            json.dump(data, f, indent=2)
            f.write("\n")
        print(f"perf_gate: baseline {args.baseline} updated "
              f"({len(current)} benchmarks)")
        return 0

    try:
        baseline = load_items_per_second(args.baseline)
    except FileNotFoundError:
        print(f"perf_gate: baseline {args.baseline} missing; passing "
              "(check one in via --update)", file=sys.stderr)
        return 0

    failed = []
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if base is None or cur is None:
            where = "current run" if base is None else "baseline"
            print(f"  {name}: only in {where}, skipped")
            continue
        change = (cur - base) / base
        status = "ok"
        if change < -args.max_regression:
            status = "FAIL"
            failed.append(name)
        print(f"  {name}: {base:.3e} -> {cur:.3e} items/s "
              f"({change:+.1%}) {status}")

    if failed:
        print(f"perf_gate: {len(failed)} benchmark(s) regressed more than "
              f"{args.max_regression:.0%}: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    print("perf_gate: pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
