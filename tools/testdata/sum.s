# Sum the integers 1..100 into r2, store the result, and halt.
.data
out: .space 8
.text
_start:
  li   r1, 100
  li   r2, 0
loop:
  add  r2, r2, r1
  addi r1, r1, -1
  bne  r1, r0, loop
  sd   r2, out
  halt
