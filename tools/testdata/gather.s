# Random-ish gather kernel used by the CLI smoke tests for `sim`.
.data
idx: .space 8192
tbl: .space 65536
.text
_start:
  la   r4, idx
  li   r5, 1024
  li   r9, 7
fill:                      # build a pseudo-random index table in memory
  mul  r9, r9, r9
  addi r9, r9, 13
  andi r10, r9, 8191
  sd   r10, 0(r4)
  addi r4, r4, 8
  addi r5, r5, -1
  bne  r5, r0, fill
  la   r4, idx
  la   r6, tbl
  li   r5, 1024
gather:
  ld   r7, 0(r4)
  slli r7, r7, 3
  andi r7, r7, 65528
  add  r7, r7, r6
  ld   r8, 0(r7)
  add  r11, r11, r8
  addi r4, r4, 8
  addi r5, r5, -1
  bne  r5, r0, gather
  halt
