// hiserved — the hidisc experiment service daemon.
//
// Listens on a Unix-domain socket (or TCP), accepts experiment plans
// from `hilab --connect` clients over the hiserve wire protocol, dedups
// overlapping cells across all connected clients by content identity,
// and shards the resulting jobs across a pool of forked worker
// processes sharing one on-disk result cache.  Worker crashes and
// timeouts are retried with exponential backoff; SIGTERM drains
// gracefully.  In-flight plans are journaled beside the cache dir and
// recovered on restart (a SIGKILLed daemon's successor finishes only
// the missing cells); clients re-attach by plan token.
//
//   hiserved --socket /tmp/hiserve.sock [--workers N]
//            [--cache-dir DIR | --no-cache] [--job-timeout SEC]
//            [--max-retries N] [--backoff-ms N] [--stats-file FILE]
//            [--journal FILE | --no-journal] [--chaos-net SEED:SPEC]
//            [--client-idle-timeout SEC] [--client-queue-max BYTES]
//            [--quiet]
//   hiserved --tcp HOST:PORT ...
//
// Exit codes: 0 = drained cleanly, 1 = runtime error, 2 = usage.
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "serve/service.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH | --tcp HOST:PORT [options]\n"
      "options:\n"
      "  --socket PATH        listen on a Unix-domain socket\n"
      "  --tcp HOST:PORT      listen on TCP instead\n"
      "  --workers N          forked worker processes (default 2)\n"
      "  --cache-dir DIR      shared result cache (default .hilab-cache)\n"
      "  --no-cache           disable the shared on-disk cache\n"
      "  --job-timeout SEC    per-job wall-clock budget (default 600, 0=off)\n"
      "  --max-retries N      crash/timeout re-dispatches per job (default 2)\n"
      "  --backoff-ms N       base retry backoff, doubled per attempt "
      "(default 200)\n"
      "  --stats-file FILE    write service stats JSON on exit\n"
      "  --journal FILE       crash-recovery job journal (default\n"
      "                       CACHE_DIR/journal.hsjl)\n"
      "  --no-journal         disable the job journal\n"
      "  --client-idle-timeout SEC  reap clients silent this long\n"
      "                       (default 120, 0=off)\n"
      "  --client-queue-max BYTES   drop clients whose outbound queue\n"
      "                       exceeds this (default 8388608)\n"
      "  --chaos-kill-assign N  SIGKILL the worker handling the Nth job\n"
      "                       assignment (test hook for the retry path)\n"
      "  --chaos-net SEED:SPEC  deterministic network fault injection on\n"
      "                       client connections (drop[@N][xM], corrupt,\n"
      "                       split, stall[=MS], window=K)\n"
      "  --quiet              suppress the stderr event log\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  hidisc::serve::ServeOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error(arg + " needs a value");
      return argv[++i];
    };
    const auto int_value = [&](int min) {
      const std::string v = value();
      int out;
      try {
        out = std::stoi(v);
      } catch (const std::exception&) {
        throw std::runtime_error(arg + " needs an integer, got '" + v + "'");
      }
      if (out < min)
        throw std::runtime_error(arg + " must be >= " + std::to_string(min));
      return out;
    };
    try {
      if (arg == "--socket") opt.endpoint = value();
      else if (arg == "--tcp") opt.endpoint = "tcp:" + value();
      else if (arg == "--workers") opt.workers = int_value(1);
      else if (arg == "--cache-dir") opt.cache_dir = value();
      else if (arg == "--no-cache") opt.cache_dir.clear();
      else if (arg == "--job-timeout") opt.job_timeout_s = int_value(0);
      else if (arg == "--max-retries") opt.max_retries = int_value(0);
      else if (arg == "--backoff-ms") opt.backoff_ms = int_value(1);
      else if (arg == "--stats-file") opt.stats_file = value();
      else if (arg == "--journal") opt.journal_file = value();
      else if (arg == "--no-journal") opt.journal = false;
      else if (arg == "--client-idle-timeout")
        opt.client_idle_timeout_s = int_value(0);
      else if (arg == "--client-queue-max")
        opt.client_queue_max = static_cast<std::size_t>(int_value(1));
      else if (arg == "--chaos-net") opt.chaos_net = value();
      else if (arg == "--chaos-kill-assign")
        opt.chaos_kill_at_assign = static_cast<std::uint64_t>(int_value(1));
      else if (arg == "--quiet") opt.quiet = true;
      else if (arg == "--help" || arg == "-h") return usage(argv[0]);
      else throw std::runtime_error("unknown option: " + arg);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hiserved: %s\n", e.what());
      return usage(argv[0]);
    }
  }
  if (opt.endpoint.empty()) return usage(argv[0]);

  try {
    return hidisc::serve::serve_main(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hiserved: %s\n", e.what());
    return 1;
  }
}
