// hilab — the hidisc-lab experiment orchestrator CLI.
//
// Runs a named experiment plan (each reproducing one paper figure/table,
// or arbitrary sweeps) across a thread pool, memoizing workload
// compilation and functional tracing, consulting the persistent result
// cache, and exporting machine-readable JSON/CSV.
//
//   hilab --list
//   hilab --plan fig8 [--threads N] [--scale paper|test]
//         [--cache-dir DIR | --no-cache] [--refresh]
//         [--watchdog N] [--lockstep]
//         [--json FILE|-] [--csv FILE|-] [--quiet]
//
// With --connect the plan runs on a hiserved daemon instead of in
// process: cells are deduplicated against every other connected client
// and served from the daemon's shared result cache, and the results are
// bit-identical to a local run of the same plan:
//
//   hilab --connect /tmp/hiserve.sock --plan paper [--refresh]
//         [--reconnect N] [--chaos-net SEED:SPEC]
//         [--service-stats FILE|-] [--json ...] [--csv ...]
//
// Guarantees: results are bit-identical for every --threads value (and
// for --connect against any worker count), and a second invocation
// against a warm cache simulates zero cells.  A --connect run survives
// connection loss and daemon restarts: the client reconnects with
// bounded backoff and re-attaches to its plan by token.
//
// Exit codes: 0 = every cell healthy, 4 = partial failure (some cells
// failed; healthy cells still exported), 1 = infrastructure error (bad
// plan, broken cache dir, export I/O, mid-plan daemon loss past the
// reconnect budget), 2 = usage (including an unknown --plan name, which
// lists the available plans), 5 = daemon unreachable (--connect never
// got a handshake; the issue is almost always that hiserved isn't
// running at that endpoint).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "lab/export.hpp"
#include "lab/plan.hpp"
#include "lab/runner.hpp"
#include "lab/thread_pool.hpp"
#include "serve/client.hpp"
#include "serve/worker.hpp"
#include "stats/table.hpp"

namespace {

using namespace hidisc;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --plan NAME [options]\n"
      "       %s --list\n"
      "options:\n"
      "  --plan NAME       experiment plan to run (see --list)\n"
      "  --threads N       worker threads (default: HILAB_THREADS or all "
      "cores)\n"
      "  --scale SCALE     workload scale: paper (default) or test\n"
      "  --cache-dir DIR   result cache location (default: .hilab-cache)\n"
      "  --no-cache        disable the persistent result cache\n"
      "  --refresh         ignore existing cache entries, overwrite them\n"
      "  --watchdog N      override every cell's watchdog threshold\n"
      "  --lockstep        force the Lockstep scheduler on every cell\n"
      "  --override P:F=V  set machine-config field F to V on every cell\n"
      "                    whose preset is P ('*' = all presets); fields:\n"
      "                    dram, l2, fetch_width, watchdog (integer V) and\n"
      "                    prefetch (a spec such as ipstride:deg4 — see\n"
      "                    docs/PREFETCH.md).\n"
      "                    Participates in content keys, so overridden runs\n"
      "                    never alias normal cache entries (their traces\n"
      "                    still do — config never reaches trace nodes).\n"
      "                    Local runs only (repeatable)\n"
      "  --connect EP      run on a hiserved daemon at EP (socket path or\n"
      "                    tcp:HOST:PORT) instead of in this process\n"
      "  --reconnect N     with --connect: survive up to N connection\n"
      "                    losses by re-attaching to the plan (default 8)\n"
      "  --chaos-net SEED:SPEC  with --connect: deterministic client-side\n"
      "                    network fault injection (see docs/SERVE.md)\n"
      "  --service-stats F with --connect: fetch the daemon's stats JSON\n"
      "                    after the run and write it to F ('-' = stdout)\n"
      "  --json FILE       export full results as JSON ('-' = stdout)\n"
      "  --csv FILE        export summary rows as CSV ('-' = stdout)\n"
      "  --bench-json FILE write a google-benchmark-style JSON with this\n"
      "                    run's cells/sec (for tools/perf_gate.py)\n"
      "  --bench-name NAME benchmark name for --bench-json (default\n"
      "                    SVC_<plan>)\n"
      "  --quiet           suppress the per-cell progress line\n",
      argv0, argv0);
  return 2;
}

int list_plans() {
  std::printf("available plans (workload scale via --scale):\n");
  for (const auto& name : lab::plan_names()) {
    const auto plan = lab::make_plan(name, workloads::Scale::Paper);
    std::printf("  %-8s %3zu cells  %s\n", name.c_str(), plan.cells.size(),
                plan.description.c_str());
  }
  return 0;
}

// Unknown --plan is a usage error, not a runtime one: name the plans the
// user could have meant and exit 2.
int unknown_plan(const std::string& name) {
  std::fprintf(stderr, "hilab: unknown plan '%s'\navailable plans:\n",
               name.c_str());
  for (const auto& known : lab::plan_names())
    std::fprintf(stderr, "  %s\n", known.c_str());
  return 2;
}

// Applies one `PRESET:FIELD=VALUE` machine-config override to every cell
// whose preset name matches (or every cell, for '*').  Drives the CI
// cache-invalidation check: a preset-scoped config change must rerun
// exactly that preset's sim nodes while every trace node stays warm.
void apply_override(lab::ExperimentPlan& plan, const std::string& spec) {
  const auto colon = spec.find(':');
  const auto eq = spec.find('=', colon == std::string::npos ? 0 : colon);
  if (colon == std::string::npos || eq == std::string::npos || eq < colon)
    throw std::runtime_error("--override needs PRESET:FIELD=VALUE, got '" +
                             spec + "'");
  const std::string preset = spec.substr(0, colon);
  const std::string field = spec.substr(colon + 1, eq - colon - 1);
  const std::string value_str = spec.substr(eq + 1);
  // The field name is validated before anything else — previously an
  // unknown field slipped through whenever no cell matched the preset,
  // and the value was parsed (and could be rejected) before the field
  // was even looked at.
  constexpr const char* kFieldList =
      "dram, l2, fetch_width, watchdog, prefetch";
  const bool known = field == "dram" || field == "l2" ||
                     field == "fetch_width" || field == "watchdog" ||
                     field == "prefetch";
  if (!known)
    throw std::runtime_error("--override: unknown field '" + field +
                             "' (fields: " + kFieldList + ")");
  mem::PrefetchConfig pf;
  std::uint64_t value = 0;
  if (field == "prefetch") {
    // e.g. '*:prefetch=ipstride:deg4' — the value is a prefetch spec, not
    // an integer.
    try {
      pf = mem::parse_prefetch_spec(value_str);
    } catch (const std::exception& e) {
      throw std::runtime_error(std::string("--override: ") + e.what());
    }
  } else {
    try {
      value = std::stoull(value_str);
    } catch (const std::exception&) {
      throw std::runtime_error("--override value must be an integer, got '" +
                               value_str + "'");
    }
  }
  bool matched = false;
  for (auto& cell : plan.cells) {
    if (preset != "*" && preset != machine::preset_name(cell.preset))
      continue;
    matched = true;
    if (field == "dram") cell.config.mem.dram_latency = static_cast<int>(value);
    else if (field == "l2")
      cell.config.mem.l2.hit_latency = static_cast<int>(value);
    else if (field == "fetch_width")
      cell.config.fetch_width = static_cast<int>(value);
    else if (field == "watchdog") cell.config.watchdog_cycles = value;
    else if (field == "prefetch") cell.config.mem.prefetch = pf;
  }
  if (!matched)
    throw std::runtime_error("--override: no cell has preset '" + preset +
                             "' (presets: Superscalar, CP+AP, CP+CMP, "
                             "HiDISC, or '*')");
}

// Google-benchmark-shaped JSON so tools/perf_gate.py --append-trajectory
// can record service/local plan throughput next to BM_FullMachine.
void write_bench_json(const std::string& path, const std::string& name,
                      std::size_t cells, double wall_ms) {
  const double cells_per_sec =
      wall_ms > 0.0 ? static_cast<double>(cells) * 1000.0 / wall_ms : 0.0;
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\n  \"benchmarks\": [\n    {\n"
                "      \"name\": \"%s\",\n"
                "      \"run_type\": \"iteration\",\n"
                "      \"iterations\": 1,\n"
                "      \"real_time\": %.6g,\n"
                "      \"time_unit\": \"ms\",\n"
                "      \"items_per_second\": %.17g\n"
                "    }\n  ]\n}\n",
                name.c_str(), wall_ms, cells_per_sec);
  lab::write_text_file(path, buf);
}

}  // namespace

int main(int argc, char** argv) {
  std::string plan_name, json_path, csv_path, connect_ep, stats_path;
  std::string bench_json, bench_name;
  std::vector<std::string> overrides;
  std::string cache_dir = ".hilab-cache";
  workloads::Scale scale = workloads::Scale::Paper;
  std::string scale_str = "paper";
  int threads = lab::default_threads();
  bool refresh = false, quiet = false, lockstep = false;
  std::uint64_t watchdog = 0;  // 0 = keep each cell's own threshold
  std::string chaos_net;
  int reconnects = 8;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error(arg + " needs a value");
      return argv[++i];
    };
    try {
      if (arg == "--list") return list_plans();
      if (arg == "--plan") plan_name = value();
      else if (arg == "--threads") {
        const std::string v = value();
        try {
          threads = std::stoi(v);
        } catch (const std::exception&) {
          throw std::runtime_error("--threads needs an integer, got '" + v + "'");
        }
      }
      else if (arg == "--scale") {
        const std::string s = value();
        if (s == "paper") scale = workloads::Scale::Paper;
        else if (s == "test") scale = workloads::Scale::Test;
        else throw std::runtime_error("unknown scale: " + s);
        scale_str = s;
      }
      else if (arg == "--cache-dir") cache_dir = value();
      else if (arg == "--no-cache") cache_dir.clear();
      else if (arg == "--refresh") refresh = true;
      else if (arg == "--watchdog") {
        const std::string v = value();
        try {
          watchdog = std::stoull(v);
        } catch (const std::exception&) {
          throw std::runtime_error("--watchdog needs an integer, got '" + v +
                                   "'");
        }
        if (watchdog == 0)
          throw std::runtime_error("--watchdog must be >= 1");
      }
      else if (arg == "--lockstep") lockstep = true;
      else if (arg == "--override") overrides.push_back(value());
      else if (arg == "--connect") connect_ep = value();
      else if (arg == "--reconnect") {
        const std::string v = value();
        try {
          reconnects = std::stoi(v);
        } catch (const std::exception&) {
          throw std::runtime_error("--reconnect needs an integer, got '" + v +
                                   "'");
        }
        if (reconnects < 0)
          throw std::runtime_error("--reconnect must be >= 0");
      }
      else if (arg == "--chaos-net") chaos_net = value();
      else if (arg == "--service-stats") stats_path = value();
      else if (arg == "--json") json_path = value();
      else if (arg == "--csv") csv_path = value();
      else if (arg == "--bench-json") bench_json = value();
      else if (arg == "--bench-name") bench_name = value();
      else if (arg == "--quiet") quiet = true;
      else if (arg == "--help" || arg == "-h") return usage(argv[0]);
      else throw std::runtime_error("unknown option: " + arg);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hilab: %s\n", e.what());
      return usage(argv[0]);
    }
  }
  if (plan_name.empty() && stats_path.empty()) return usage(argv[0]);
  if (threads < 1) {
    std::fprintf(stderr, "hilab: --threads must be >= 1\n");
    return 2;
  }
  if (!stats_path.empty() && connect_ep.empty()) {
    std::fprintf(stderr, "hilab: --service-stats needs --connect\n");
    return 2;
  }
  if (!chaos_net.empty() && connect_ep.empty()) {
    std::fprintf(stderr, "hilab: --chaos-net needs --connect\n");
    return 2;
  }
  if (!overrides.empty() && !connect_ep.empty()) {
    // The daemon materializes plans from the registry by name; ad-hoc
    // config mutations have no wire representation (deliberately — they
    // would defeat cross-client dedup).
    std::fprintf(stderr, "hilab: --override is local-only (drop --connect)\n");
    return 2;
  }

  try {
    // Stats-only invocation: `hilab --connect EP --service-stats -`.
    if (plan_name.empty()) {
      lab::write_text_file(stats_path,
                           serve::fetch_service_stats(connect_ep));
      return 0;
    }

    lab::ExperimentPlan plan;
    try {
      plan = lab::make_plan(plan_name, scale);
    } catch (const std::out_of_range&) {
      return unknown_plan(plan_name);
    }
    // --watchdog participates in content keys, so an overridden run never
    // aliases a normal run's cache entries; --lockstep deliberately does
    // not (both schedulers produce bit-identical results).
    if (watchdog != 0 || lockstep)
      for (auto& cell : plan.cells) {
        if (watchdog != 0) cell.config.watchdog_cycles = watchdog;
        if (lockstep)
          cell.config.scheduler = machine::SchedulerKind::Lockstep;
      }
    try {
      for (const auto& spec : overrides) apply_override(plan, spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hilab: %s\n", e.what());
      return 2;
    }

    const auto progress = [](const lab::Cell& cell, std::size_t done,
                             std::size_t total, bool from_cache) {
      std::fprintf(stderr, "[%3zu/%3zu] %-12s %-11s %-7s %s\n", done, total,
                   cell.workload.name.c_str(),
                   machine::preset_name(cell.preset), cell.tag.c_str(),
                   from_cache ? "(cached)" : "simulated");
    };

    lab::PlanRun run;
    std::size_t dedup_cells = 0;
    if (connect_ep.empty()) {
      lab::RunOptions opt;
      opt.threads = threads;
      opt.cache_dir = cache_dir;
      opt.refresh = refresh;
      if (!quiet) opt.on_cell = progress;
      run = lab::run_plan(plan, opt);
    } else {
      serve::PlanRequest req;
      req.plan = plan_name;
      req.scale = scale_str;
      req.watchdog = watchdog;
      req.lockstep = lockstep;
      req.refresh = refresh;
      serve::ClientOptions copt;
      copt.endpoint = connect_ep;
      copt.chaos_net = chaos_net;
      copt.max_reconnects = reconnects;
      if (!quiet) copt.on_cell = progress;
      serve::ConnectedRun cr = serve::run_plan_connected(req, plan, copt);
      run = std::move(cr.run);
      dedup_cells = cr.dedup;
      if (cr.reconnects > 0 && !quiet)
        std::fprintf(stderr,
                     "hilab: survived %zu connection losses (%zu resumes)\n",
                     cr.reconnects, cr.resumes);
    }

    // An export aimed at stdout owns it: keep the human report off the pipe.
    const bool stdout_export =
        json_path == "-" || csv_path == "-" || stats_path == "-";
    if (!stdout_export) {
      stats::Table table({"Workload", "Preset", "Tag", "Cycles", "IPC",
                          "L1 miss rate", "Source"});
      for (std::size_t i = 0; i < plan.cells.size(); ++i) {
        const auto& c = plan.cells[i];
        const auto& r = run.cells[i];
        if (r.ok()) {
          table.add_row({c.workload.name, machine::preset_name(c.preset),
                         c.tag.empty() ? "-" : c.tag,
                         std::to_string(r.result.cycles),
                         stats::Table::num(r.result.ipc),
                         stats::Table::num(r.result.l1.demand_miss_rate()),
                         r.from_cache ? "cache" : "sim"});
        } else {
          table.add_row({c.workload.name, machine::preset_name(c.preset),
                         c.tag.empty() ? "-" : c.tag, "-", "-", "-",
                         "FAILED(" + r.error_class + ")"});
        }
      }
      std::printf("=== plan %s: %s ===\n\n%s\n", plan.name.c_str(),
                  plan.description.c_str(), table.to_string().c_str());
      if (connect_ep.empty())
        std::printf(
            "%zu cells: %zu simulated, %zu cache hits, %zu failed; "
            "%zu compilations, %zu traces; %d threads; %.0f ms",
            plan.cells.size(), run.simulated, run.cache_hits, run.failed,
            run.preps, run.traces, threads, run.wall_ms);
      else
        std::printf(
            "%zu cells via %s: %zu simulated, %zu cache hits, "
            "%zu dedup-shared, %zu failed; %.0f ms",
            plan.cells.size(), connect_ep.c_str(), run.simulated,
            run.cache_hits, dedup_cells, run.failed, run.wall_ms);
      if (run.sim_cycles_per_sec > 0.0)
        std::printf("; %.2f Mcycles/s", run.sim_cycles_per_sec / 1e6);
      std::printf("\n");
      const pipeline::NodeStats& n = run.nodes;
      std::printf(
          "pipeline nodes: compile %zu/%zu rebuilt (%zu cached), "
          "trace %zu/%zu rebuilt (%zu cached), "
          "sim %zu/%zu rebuilt (%zu cached)\n",
          n.compile.rebuilt, n.compile.total, n.compile.hits,
          n.trace.rebuilt, n.trace.total, n.trace.hits,
          n.sim.rebuilt, n.sim.total, n.sim.hits);
      std::printf(
          "phase wall time: compile %.0f ms (+%.0f ms cached), "
          "trace %.0f ms (+%.0f ms cached), "
          "sim %.0f ms (+%.0f ms cached)\n",
          n.compile.ms_rebuilt, n.compile.ms_hits, n.trace.ms_rebuilt,
          n.trace.ms_hits, n.sim.ms_rebuilt, n.sim.ms_hits);
    }

    const lab::ExportMeta meta{threads};
    if (!json_path.empty())
      lab::write_text_file(json_path, lab::to_json(plan, run, meta));
    if (!csv_path.empty())
      lab::write_text_file(csv_path, lab::to_csv(plan, run));
    if (!bench_json.empty())
      write_bench_json(bench_json,
                       bench_name.empty() ? "SVC_" + plan_name : bench_name,
                       plan.cells.size(), run.wall_ms);
    if (!stats_path.empty())
      lab::write_text_file(stats_path,
                           serve::fetch_service_stats(connect_ep));

    if (!run.ok()) {
      // Partial failure: healthy cells are exported above; the failed
      // ones get a stderr summary and a distinct exit code so harnesses
      // can tell "some cells broke" from "the run never happened".
      std::fprintf(stderr, "hilab: %zu/%zu cells failed:\n", run.failed,
                   plan.cells.size());
      for (std::size_t i = 0; i < plan.cells.size(); ++i) {
        const auto& r = run.cells[i];
        if (r.ok()) continue;
        const auto& c = plan.cells[i];
        std::fprintf(stderr, "  %s/%s%s%s [%s] %s\n",
                     c.workload.name.c_str(),
                     machine::preset_name(c.preset),
                     c.tag.empty() ? "" : "/", c.tag.c_str(),
                     r.error_class.c_str(), r.error.c_str());
      }
      return 4;
    }
    return 0;
  } catch (const serve::ConnectError& e) {
    std::fprintf(stderr,
                 "hilab: %s\nhilab: is hiserved running at that endpoint? "
                 "(start it with: hiserved --socket PATH)\n",
                 e.what());
    return 5;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hilab: %s\n", e.what());
    return 1;
  }
}
