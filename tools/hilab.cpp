// hilab — the hidisc-lab experiment orchestrator CLI.
//
// Runs a named experiment plan (each reproducing one paper figure/table,
// or arbitrary sweeps) across a thread pool, memoizing workload
// compilation and functional tracing, consulting the persistent result
// cache, and exporting machine-readable JSON/CSV.
//
//   hilab --list
//   hilab --plan fig8 [--threads N] [--scale paper|test]
//         [--cache-dir DIR | --no-cache] [--refresh]
//         [--watchdog N] [--lockstep]
//         [--json FILE|-] [--csv FILE|-] [--quiet]
//
// Guarantees: results are bit-identical for every --threads value, and a
// second invocation against a warm cache simulates zero cells.
//
// Exit codes: 0 = every cell healthy, 4 = partial failure (some cells
// failed; healthy cells still exported), 1 = infrastructure error (bad
// plan, broken cache dir, export I/O), 2 = usage.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "lab/export.hpp"
#include "lab/plan.hpp"
#include "lab/runner.hpp"
#include "lab/thread_pool.hpp"
#include "stats/table.hpp"

namespace {

using namespace hidisc;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --plan NAME [options]\n"
      "       %s --list\n"
      "options:\n"
      "  --plan NAME       experiment plan to run (see --list)\n"
      "  --threads N       worker threads (default: HILAB_THREADS or all "
      "cores)\n"
      "  --scale SCALE     workload scale: paper (default) or test\n"
      "  --cache-dir DIR   result cache location (default: .hilab-cache)\n"
      "  --no-cache        disable the persistent result cache\n"
      "  --refresh         ignore existing cache entries, overwrite them\n"
      "  --watchdog N      override every cell's watchdog threshold\n"
      "  --lockstep        force the Lockstep scheduler on every cell\n"
      "  --json FILE       export full results as JSON ('-' = stdout)\n"
      "  --csv FILE        export summary rows as CSV ('-' = stdout)\n"
      "  --quiet           suppress the per-cell progress line\n",
      argv0, argv0);
  return 2;
}

int list_plans() {
  std::printf("available plans (workload scale via --scale):\n");
  for (const auto& name : lab::plan_names()) {
    const auto plan = lab::make_plan(name, workloads::Scale::Paper);
    std::printf("  %-8s %3zu cells  %s\n", name.c_str(), plan.cells.size(),
                plan.description.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string plan_name, json_path, csv_path;
  std::string cache_dir = ".hilab-cache";
  workloads::Scale scale = workloads::Scale::Paper;
  int threads = lab::default_threads();
  bool refresh = false, quiet = false, lockstep = false;
  std::uint64_t watchdog = 0;  // 0 = keep each cell's own threshold

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error(arg + " needs a value");
      return argv[++i];
    };
    try {
      if (arg == "--list") return list_plans();
      if (arg == "--plan") plan_name = value();
      else if (arg == "--threads") {
        const std::string v = value();
        try {
          threads = std::stoi(v);
        } catch (const std::exception&) {
          throw std::runtime_error("--threads needs an integer, got '" + v + "'");
        }
      }
      else if (arg == "--scale") {
        const std::string s = value();
        if (s == "paper") scale = workloads::Scale::Paper;
        else if (s == "test") scale = workloads::Scale::Test;
        else throw std::runtime_error("unknown scale: " + s);
      }
      else if (arg == "--cache-dir") cache_dir = value();
      else if (arg == "--no-cache") cache_dir.clear();
      else if (arg == "--refresh") refresh = true;
      else if (arg == "--watchdog") {
        const std::string v = value();
        try {
          watchdog = std::stoull(v);
        } catch (const std::exception&) {
          throw std::runtime_error("--watchdog needs an integer, got '" + v +
                                   "'");
        }
        if (watchdog == 0)
          throw std::runtime_error("--watchdog must be >= 1");
      }
      else if (arg == "--lockstep") lockstep = true;
      else if (arg == "--json") json_path = value();
      else if (arg == "--csv") csv_path = value();
      else if (arg == "--quiet") quiet = true;
      else if (arg == "--help" || arg == "-h") return usage(argv[0]);
      else throw std::runtime_error("unknown option: " + arg);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hilab: %s\n", e.what());
      return usage(argv[0]);
    }
  }
  if (plan_name.empty()) return usage(argv[0]);
  if (threads < 1) {
    std::fprintf(stderr, "hilab: --threads must be >= 1\n");
    return 2;
  }

  try {
    lab::ExperimentPlan plan = lab::make_plan(plan_name, scale);
    // --watchdog participates in content keys, so an overridden run never
    // aliases a normal run's cache entries; --lockstep deliberately does
    // not (both schedulers produce bit-identical results).
    if (watchdog != 0 || lockstep)
      for (auto& cell : plan.cells) {
        if (watchdog != 0) cell.config.watchdog_cycles = watchdog;
        if (lockstep)
          cell.config.scheduler = machine::SchedulerKind::Lockstep;
      }

    lab::RunOptions opt;
    opt.threads = threads;
    opt.cache_dir = cache_dir;
    opt.refresh = refresh;
    if (!quiet)
      opt.on_cell = [](const lab::Cell& cell, std::size_t done,
                       std::size_t total, bool from_cache) {
        std::fprintf(stderr, "[%3zu/%3zu] %-12s %-11s %-7s %s\n", done,
                     total, cell.workload.name.c_str(),
                     machine::preset_name(cell.preset), cell.tag.c_str(),
                     from_cache ? "(cached)" : "simulated");
      };

    const lab::PlanRun run = lab::run_plan(plan, opt);

    // An export aimed at stdout owns it: keep the human report off the pipe.
    const bool stdout_export = json_path == "-" || csv_path == "-";
    if (!stdout_export) {
      stats::Table table({"Workload", "Preset", "Tag", "Cycles", "IPC",
                          "L1 miss rate", "Source"});
      for (std::size_t i = 0; i < plan.cells.size(); ++i) {
        const auto& c = plan.cells[i];
        const auto& r = run.cells[i];
        if (r.ok()) {
          table.add_row({c.workload.name, machine::preset_name(c.preset),
                         c.tag.empty() ? "-" : c.tag,
                         std::to_string(r.result.cycles),
                         stats::Table::num(r.result.ipc),
                         stats::Table::num(r.result.l1.demand_miss_rate()),
                         r.from_cache ? "cache" : "sim"});
        } else {
          table.add_row({c.workload.name, machine::preset_name(c.preset),
                         c.tag.empty() ? "-" : c.tag, "-", "-", "-",
                         "FAILED(" + r.error_class + ")"});
        }
      }
      std::printf("=== plan %s: %s ===\n\n%s\n", plan.name.c_str(),
                  plan.description.c_str(), table.to_string().c_str());
      std::printf(
          "%zu cells: %zu simulated, %zu cache hits, %zu failed; "
          "%zu compilations, %zu traces; %d threads; %.0f ms",
          plan.cells.size(), run.simulated, run.cache_hits, run.failed,
          run.preps, run.traces, threads, run.wall_ms);
      if (run.sim_cycles_per_sec > 0.0)
        std::printf("; %.2f Mcycles/s", run.sim_cycles_per_sec / 1e6);
      std::printf("\n");
    }

    const lab::ExportMeta meta{threads};
    if (!json_path.empty())
      lab::write_text_file(json_path, lab::to_json(plan, run, meta));
    if (!csv_path.empty())
      lab::write_text_file(csv_path, lab::to_csv(plan, run));

    if (!run.ok()) {
      // Partial failure: healthy cells are exported above; the failed
      // ones get a stderr summary and a distinct exit code so harnesses
      // can tell "some cells broke" from "the run never happened".
      std::fprintf(stderr, "hilab: %zu/%zu cells failed:\n", run.failed,
                   plan.cells.size());
      for (std::size_t i = 0; i < plan.cells.size(); ++i) {
        const auto& r = run.cells[i];
        if (r.ok()) continue;
        const auto& c = plan.cells[i];
        std::fprintf(stderr, "  %s/%s%s%s [%s] %s\n",
                     c.workload.name.c_str(),
                     machine::preset_name(c.preset),
                     c.tag.empty() ? "" : "/", c.tag.c_str(),
                     r.error_class.c_str(), r.error.c_str());
      }
      return 4;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hilab: %s\n", e.what());
    return 1;
  }
}
