// hifuzz — differential fuzzer CLI for the HiDISC toolchain.
//
//   hifuzz [--runs N] [--seed S]          run a fuzz campaign
//   hifuzz --gen-seed S                   regenerate + test one kernel seed
//   hifuzz --repro FILE                   replay one corpus entry
//   hifuzz --replay DIR                   replay a whole corpus directory
//   hifuzz --demo-shrink                  inject a separator fault, shrink it
//
// Exit codes: 0 = clean, 1 = divergence found / replay mismatch / runtime
// error, 2 = usage.
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>

#include "fuzz/campaign.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/shrink.hpp"
#include "isa/assembler.hpp"

namespace {

using namespace hidisc;

int usage() {
  std::cerr <<
      "usage: hifuzz [options]\n"
      "  campaign (default):\n"
      "    --runs N            kernels to generate and test (default 200)\n"
      "    --seed S            campaign seed (default 1)\n"
      "    --corpus-out DIR    write minimized reproducers here\n"
      "    --max-failures N    stop after N distinct signatures (default 8)\n"
      "    --no-shrink         keep failures at full size\n"
      "  single kernel:\n"
      "    --gen-seed S        regenerate kernel seed S (printed on failure)\n"
      "    --dump              with --gen-seed: print the kernel source\n"
      "  corpus:\n"
      "    --repro FILE        replay one reproducer file\n"
      "    --replay DIR        replay every *.s in DIR\n"
      "  shrinker demo:\n"
      "    --demo-shrink       inject a DropPush separator fault and shrink\n"
      "    --inject KIND       fault for --demo-shrink / --gen-seed:\n"
      "                        drop-push | drop-pop | mis-stream\n"
      "  common:\n"
      "    --max-steps N       functional step budget (default 8000000)\n"
      "    --quiet             suppress progress output\n";
  return 2;
}

struct Args {
  std::uint64_t seed = 1;
  int runs = 200;
  std::string corpus_out;
  int max_failures = 8;
  bool shrink = true;
  bool have_gen_seed = false;
  std::uint64_t gen_seed = 0;
  bool dump = false;
  std::string repro_file;
  std::string replay_dir;
  bool demo_shrink = false;
  fuzz::Fault inject = fuzz::Fault::None;
  std::uint64_t max_steps = 8'000'000;
  bool quiet = false;
};

void print_report(std::ostream& os, const fuzz::OracleReport& rep,
                  const std::string& what) {
  if (rep.ok()) {
    os << what << ": ok (" << rep.static_instructions
       << " static, " << rep.dynamic_instructions
       << " dynamic instructions)\n";
  } else {
    os << what << ": FAIL stage=" << fuzz::stage_name(rep.stage)
       << " sig=" << rep.signature << "\n  " << rep.detail << "\n";
  }
}

void print_report(const fuzz::OracleReport& rep, const std::string& what) {
  print_report(std::cout, rep, what);
}

int run_single(const Args& a) {
  fuzz::KernelGen gen(a.gen_seed);
  const auto kernel = gen.generate_random();
  // With --dump, stdout carries only the kernel source (so it can be piped
  // straight into `hisa`); the oracle verdict moves to stderr.
  if (a.dump) std::cout << fuzz::to_source(kernel);
  fuzz::OracleOptions oo;
  oo.max_steps = a.max_steps;
  oo.fault = a.inject;
  const auto rep = fuzz::run_oracles(fuzz::to_source(kernel), oo);
  print_report(a.dump ? std::cerr : std::cout, rep,
               "kernel seed " + std::to_string(a.gen_seed));
  return rep.ok() ? 0 : 1;
}

int run_repro(const Args& a) {
  fuzz::OracleOptions oo;
  oo.max_steps = a.max_steps;
  const auto r = fuzz::load_repro(a.repro_file);
  const auto rep = fuzz::replay(r, oo);
  print_report(rep, r.name);
  if (rep.signature != r.expect) {
    std::cout << "expected signature '" << r.expect << "', got '"
              << rep.signature << "'\n";
    return 1;
  }
  return 0;
}

int run_replay_dir(const Args& a) {
  fuzz::OracleOptions oo;
  oo.max_steps = a.max_steps;
  const auto corpus = fuzz::load_corpus(a.replay_dir);
  int bad = 0;
  for (const auto& r : corpus) {
    const auto rep = fuzz::replay(r, oo);
    if (!a.quiet || rep.signature != r.expect) print_report(rep, r.name);
    if (rep.signature != r.expect) {
      std::cout << "  expected signature '" << r.expect << "'\n";
      ++bad;
    }
  }
  std::cout << corpus.size() - bad << "/" << corpus.size()
            << " corpus entries match their expected signature\n";
  return bad ? 1 : 0;
}

int run_demo_shrink(const Args& a) {
  // A mid-size kernel with cross-stream flows guarantees injection sites.
  fuzz::KernelGen gen(a.seed);
  fuzz::GenOptions go;
  go.body_ops = 24;
  go.iterations = 50;
  const auto kernel = gen.generate_kernel(go);

  fuzz::OracleOptions oo;
  oo.max_steps = a.max_steps;
  oo.fault = a.inject == fuzz::Fault::None ? fuzz::Fault::DropPush : a.inject;
  const auto rep = fuzz::run_oracles(fuzz::to_source(kernel), oo);
  if (rep.ok()) {
    std::cout << "injected fault produced no divergence (no site?)\n";
    return 1;
  }
  const std::size_t before =
      isa::assemble(fuzz::to_source(kernel)).code.size();
  std::cout << "injected fault fails at stage " << fuzz::stage_name(rep.stage)
            << " (sig " << rep.signature << "), " << before
            << " instructions before shrinking\n";

  const auto outcome = fuzz::shrink_kernel(kernel, oo, rep.signature);
  const auto minimized_src = fuzz::to_source(outcome.kernel);
  const std::size_t after = isa::assemble(minimized_src).code.size();
  std::cout << "minimized to " << after << " instructions in "
            << outcome.evals << " oracle runs\n";
  if (!a.quiet) std::cout << minimized_src;
  if (!a.corpus_out.empty()) {
    fuzz::Repro r;
    r.name = "demo-" + rep.signature + "-" + std::to_string(a.seed);
    r.seed = a.seed;
    r.expect = rep.signature;
    r.inject = oo.fault;  // replay re-injects the same fault
    r.note = "hifuzz --demo-shrink output (fault injected, not a real bug)";
    r.source = minimized_src;
    fuzz::write_repro(std::string(a.corpus_out) + "/" + r.name + ".s", r);
  }
  return outcome.reproduced ? 0 : 1;
}

int run_campaign_cli(const Args& a) {
  fuzz::CampaignOptions co;
  co.seed = a.seed;
  co.runs = a.runs;
  co.oracle.max_steps = a.max_steps;
  co.shrink = a.shrink;
  co.max_distinct_failures = a.max_failures;
  co.corpus_out = a.corpus_out;
  if (!a.quiet) co.log = &std::cout;
  const auto res = fuzz::run_campaign(co);
  std::cout << "hifuzz: " << res.runs_done << " runs, "
            << res.dynamic_instructions << " dynamic instructions, "
            << res.failures.size() << " distinct failures";
  if (res.duplicate_failures)
    std::cout << " (+" << res.duplicate_failures << " duplicates)";
  std::cout << "\n";
  for (const auto& f : res.failures) {
    std::cout << "  seed " << f.kernel_seed << " sig " << f.report.signature
              << " (" << f.minimized_instructions
              << " instructions minimized)";
    if (!f.repro_path.empty()) std::cout << " -> " << f.repro_path;
    std::cout << "\n  reproduce: hifuzz --gen-seed " << f.kernel_seed << "\n";
  }
  return res.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    try {
      if (arg == "--runs") {
        const char* v = next();
        if (!v) return usage();
        a.runs = std::stoi(v);
      } else if (arg == "--seed") {
        const char* v = next();
        if (!v) return usage();
        a.seed = std::stoull(v);
      } else if (arg == "--gen-seed") {
        const char* v = next();
        if (!v) return usage();
        a.have_gen_seed = true;
        a.gen_seed = std::stoull(v);
      } else if (arg == "--max-steps") {
        const char* v = next();
        if (!v) return usage();
        a.max_steps = std::stoull(v);
      } else if (arg == "--max-failures") {
        const char* v = next();
        if (!v) return usage();
        a.max_failures = std::stoi(v);
      } else if (arg == "--corpus-out") {
        const char* v = next();
        if (!v) return usage();
        a.corpus_out = v;
      } else if (arg == "--repro") {
        const char* v = next();
        if (!v) return usage();
        a.repro_file = v;
      } else if (arg == "--replay") {
        const char* v = next();
        if (!v) return usage();
        a.replay_dir = v;
      } else if (arg == "--inject") {
        const char* v = next();
        const auto f = v ? fuzz::parse_fault(v) : std::nullopt;
        if (!f) return usage();
        a.inject = *f;
      } else if (arg == "--no-shrink") {
        a.shrink = false;
      } else if (arg == "--demo-shrink") {
        a.demo_shrink = true;
      } else if (arg == "--dump") {
        a.dump = true;
      } else if (arg == "--quiet") {
        a.quiet = true;
      } else {
        std::cerr << "unknown option: " << arg << "\n";
        return usage();
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << arg << "\n";
      return usage();
    }
  }

  try {
    if (a.demo_shrink) return run_demo_shrink(a);
    if (a.have_gen_seed) return run_single(a);
    if (!a.repro_file.empty()) return run_repro(a);
    if (!a.replay_dir.empty()) return run_replay_dir(a);
    return run_campaign_cli(a);
  } catch (const std::exception& e) {
    // Runtime failures (unreadable corpus, bad repro file) exit 1; only
    // bad command lines exit 2, matching the hisa/hilab convention.
    std::cerr << "hifuzz: " << e.what() << "\n";
    return 1;
  }
}
