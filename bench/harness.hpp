// Shared infrastructure for the paper-reproduction bench binaries.
//
// Each bench binary regenerates one table or figure of the paper
// (DESIGN.md §4 maps experiment ids to binaries).  The figure/table
// binaries (Fig. 8/9/10, Table 2) run whole plans through the hidisc-lab
// orchestrator (src/lab/) — parallel execution, memoized prep, persistent
// result cache; the ablation binaries, which iterate over bespoke config
// axes, use the direct prepare()/run_preset() path below.
//
// prepare() traces only the binaries the requested presets consume: a
// plan that never runs CP+AP or HiDISC skips the separated-binary
// functional trace (and vice versa), which previously was wasted work on
// every bench start-up.
#pragma once

#include <cstdlib>
#include <initializer_list>
#include <string>
#include <vector>

#include "compiler/compile.hpp"
#include "lab/runner.hpp"
#include "lab/thread_pool.hpp"
#include "machine/machine.hpp"
#include "sim/functional.hpp"
#include "stats/table.hpp"
#include "workloads/common.hpp"

namespace hidisc::bench {

struct PreparedWorkload {
  std::string name;
  compiler::Compilation comp;
  sim::Trace orig_trace;  // empty unless some requested preset needs it
  sim::Trace sep_trace;   // empty unless some requested preset needs it
};

inline const std::vector<machine::Preset>& all_presets() {
  return lab::all_presets();
}

// Compiles `w` and functionally traces exactly the binaries that
// `presets` will consume.
inline PreparedWorkload prepare(const workloads::BuiltWorkload& w,
                                const std::vector<machine::Preset>& presets,
                                const compiler::CompileOptions& opt = {}) {
  PreparedWorkload p{w.name, compiler::compile(w.program, opt), {}, {}};
  bool need_orig = false, need_sep = false;
  for (const auto preset : presets)
    (machine::uses_separated_binary(preset) ? need_sep : need_orig) = true;
  if (need_orig) {
    sim::Functional fo(p.comp.original);
    p.orig_trace = fo.run_trace();
  }
  if (need_sep) {
    sim::Functional fs(p.comp.separated);
    p.sep_trace = fs.run_trace();
  }
  return p;
}

inline PreparedWorkload prepare(const workloads::BuiltWorkload& w,
                                const compiler::CompileOptions& opt = {}) {
  return prepare(w, all_presets(), opt);
}

inline machine::Result run_preset(const PreparedWorkload& p,
                                  machine::Preset preset,
                                  const machine::MachineConfig& cfg = {}) {
  const bool sep = machine::uses_separated_binary(preset);
  return machine::run_machine(sep ? p.comp.separated : p.comp.original,
                              sep ? p.sep_trace : p.orig_trace, preset, cfg);
}

// Lab run options shared by the figure/table binaries: thread count from
// $HILAB_THREADS (default: all cores), persistent cache from
// $HILAB_CACHE_DIR (default: off, so bench runs stay self-contained).
inline lab::RunOptions lab_options() {
  lab::RunOptions opt;
  opt.threads = lab::default_threads();
  if (const char* dir = std::getenv("HILAB_CACHE_DIR")) opt.cache_dir = dir;
  return opt;
}

}  // namespace hidisc::bench
