// Shared infrastructure for the paper-reproduction bench binaries.
//
// Each bench binary regenerates one table or figure of the paper
// (DESIGN.md §4 maps experiment ids to binaries).  The harness compiles a
// workload once, traces both binaries, and runs any machine preset against
// the right binary.
#pragma once

#include <string>
#include <vector>

#include "compiler/compile.hpp"
#include "machine/machine.hpp"
#include "sim/functional.hpp"
#include "stats/table.hpp"
#include "workloads/common.hpp"

namespace hidisc::bench {

struct PreparedWorkload {
  std::string name;
  compiler::Compilation comp;
  sim::Trace orig_trace;
  sim::Trace sep_trace;
};

inline PreparedWorkload prepare(const workloads::BuiltWorkload& w,
                                const compiler::CompileOptions& opt = {}) {
  PreparedWorkload p{w.name, compiler::compile(w.program, opt), {}, {}};
  sim::Functional fo(p.comp.original);
  p.orig_trace = fo.run_trace();
  sim::Functional fs(p.comp.separated);
  p.sep_trace = fs.run_trace();
  return p;
}

inline machine::Result run_preset(const PreparedWorkload& p,
                                  machine::Preset preset,
                                  const machine::MachineConfig& cfg = {}) {
  const bool sep = machine::uses_separated_binary(preset);
  return machine::run_machine(sep ? p.comp.separated : p.comp.original,
                              sep ? p.sep_trace : p.orig_trace, preset, cfg);
}

inline const std::vector<machine::Preset>& all_presets() {
  static const std::vector<machine::Preset> presets = {
      machine::Preset::Superscalar, machine::Preset::CPAP,
      machine::Preset::CPCMP, machine::Preset::HiDISC};
  return presets;
}

}  // namespace hidisc::bench
