// Shared infrastructure for the paper-reproduction bench binaries.
//
// Each bench binary regenerates one table or figure of the paper
// (DESIGN.md §4 maps experiment ids to binaries).  The figure/table
// binaries (Fig. 8/9/10, Table 2) run whole plans through the hidisc-lab
// orchestrator (src/lab/); the ablation binaries, which iterate over
// bespoke config axes, use the direct prepare()/run_preset() path below.
//
// Both paths sit on the same artifact pipeline (src/pipeline/,
// docs/PIPELINE.md): prepare() submits compile and trace nodes to a
// process-lifetime pipeline session, so two ablation loops over the same
// workload share one compilation and one functional trace, and — when
// $HILAB_CACHE_DIR is set — traces persist on disk across bench runs.
// prepare() still traces only the binaries the requested presets consume:
// a plan that never runs CP+AP or HiDISC skips the separated-binary
// functional trace (and vice versa).
#pragma once

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "compiler/compile.hpp"
#include "lab/runner.hpp"
#include "lab/thread_pool.hpp"
#include "machine/machine.hpp"
#include "pipeline/executor.hpp"
#include "pipeline/trace_store.hpp"
#include "sim/functional.hpp"
#include "stats/table.hpp"
#include "workloads/common.hpp"

namespace hidisc::bench {

struct PreparedWorkload {
  std::string name;
  // Immutable artifacts shared with the session memo (and with any other
  // PreparedWorkload for the same (program, options) pair).
  std::shared_ptr<const pipeline::CompileArtifact> compile;
  std::shared_ptr<const pipeline::TraceArtifact> orig;  // null unless needed
  std::shared_ptr<const pipeline::TraceArtifact> sep;   // null unless needed

  [[nodiscard]] const compiler::Compilation& comp() const {
    return compile->comp;
  }
};

inline const std::vector<machine::Preset>& all_presets() {
  return lab::all_presets();
}

// One pipeline session per bench process: compile and trace artifacts are
// memoized across every prepare() call.  With $HILAB_CACHE_DIR set the
// session also reads/writes the on-disk trace store shared with hilab.
inline pipeline::Pipeline& pipeline_session() {
  static pipeline::Pipeline::Stores stores = [] {
    pipeline::Pipeline::Stores s;
    if (const char* dir = std::getenv("HILAB_CACHE_DIR")) {
      static pipeline::TraceStore traces{dir};
      s.traces = &traces;
    }
    return s;
  }();
  static pipeline::Pipeline session{stores};
  return session;
}

// Compiles `w` and functionally traces exactly the binaries that
// `presets` will consume.  Throws on compile/trace failure (bench
// binaries have no per-cell error slots).
inline PreparedWorkload prepare(const workloads::BuiltWorkload& w,
                                const std::vector<machine::Preset>& presets,
                                const compiler::CompileOptions& opt = {}) {
  bool need_orig = false, need_sep = false;
  for (const auto preset : presets)
    (machine::uses_separated_binary(preset) ? need_sep : need_orig) = true;
  const auto p =
      pipeline_session().prepare(w.program, opt, need_orig, need_sep);
  return PreparedWorkload{w.name, p.compile, p.orig, p.sep};
}

inline PreparedWorkload prepare(const workloads::BuiltWorkload& w,
                                const compiler::CompileOptions& opt = {}) {
  return prepare(w, all_presets(), opt);
}

inline machine::Result run_preset(const PreparedWorkload& p,
                                  machine::Preset preset,
                                  const machine::MachineConfig& cfg = {}) {
  const bool sep = machine::uses_separated_binary(preset);
  return machine::run_machine(
      sep ? p.comp().separated : p.comp().original,
      sep ? p.sep->trace : p.orig->trace, preset, cfg);
}

// Lab run options shared by the figure/table binaries: thread count from
// $HILAB_THREADS (default: all cores), persistent cache from
// $HILAB_CACHE_DIR (default: off, so bench runs stay self-contained).
inline lab::RunOptions lab_options() {
  lab::RunOptions opt;
  opt.threads = lab::default_threads();
  if (const char* dir = std::getenv("HILAB_CACHE_DIR")) opt.cache_dir = dir;
  return opt;
}

}  // namespace hidisc::bench
