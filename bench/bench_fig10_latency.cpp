// Figure 10 reproduction: latency tolerance.  IPC of the four
// configurations on the Pointer and Neighborhood Stressmarks while the
// (L2, DRAM) latencies sweep through {4/40, 8/80, 12/120, 16/160}.
// The 32-cell sweep runs through the hidisc-lab orchestrator (see
// harness.hpp).
//
// IPC is normalized to the original binary's dynamic instruction count so
// configurations running the (slightly longer) separated binary remain
// comparable — relative degradation, the quantity the paper discusses, is
// unaffected.
//
// Paper reference points: from the shortest to the longest latency the
// baseline loses ~20.3% on Pointer and ~13.9% on Neighborhood, while
// HiDISC loses only ~1.8% and ~4.8%: the CMP configurations are distinctly
// robust against memory latency.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace hidisc;
  printf("=== Figure 10: IPC vs. (L2, DRAM) latency ===\n\n");

  const auto plan = lab::plan_fig10();
  const auto run = lab::run_plan(plan, bench::lab_options());

  const int sweep[4][2] = {{4, 40}, {8, 80}, {12, 120}, {16, 160}};
  for (const char* workload : {"Pointer", "Neighborhood"}) {
    printf("--- %s Stressmark ---\n", workload);
    stats::Table table({"L2/Mem latency", "Superscalar", "CP+AP", "CP+CMP",
                        "HiDISC"});
    double first[4] = {0, 0, 0, 0}, last[4] = {0, 0, 0, 0};
    for (int s = 0; s < 4; ++s) {
      const std::string tag = std::to_string(sweep[s][0]) + "/" +
                              std::to_string(sweep[s][1]);
      std::vector<std::string> row{tag};
      for (std::size_t c = 0; c < bench::all_presets().size(); ++c) {
        const auto& r = run.at(plan, workload, bench::all_presets()[c], tag);
        const double ipc =
            static_cast<double>(r.orig_dynamic_instructions) /
            static_cast<double>(r.result.cycles);
        row.push_back(stats::Table::num(ipc));
        if (s == 0) first[c] = ipc;
        if (s == 3) last[c] = ipc;
      }
      table.add_row(row);
    }
    std::vector<std::string> degr{"degradation"};
    for (int c = 0; c < 4; ++c)
      degr.push_back(stats::Table::pct(1.0 - last[c] / first[c]));
    table.add_row(degr);
    printf("%s\n", table.to_string().c_str());
  }
  printf("Paper: baseline loses 20.3%% (Pointer) / 13.9%% (Neighborhood) "
         "at the longest latency; HiDISC only 1.8%% / 4.8%%.\n");
  printf("[lab] %zu cells: %zu simulated, %zu cached, %.0f ms\n",
         run.cells.size(), run.simulated, run.cache_hits, run.wall_ms);
  return 0;
}
