// Ablation: decoupling queue capacity and CMP slip bound.
//
// The LDQ/SDQ capacities bound the CP-AP slip distance (paper §2.1: the
// slip distance measures latency tolerance), and the SCQ-style runahead
// bound keeps the CMP from evicting its own prefetches (DESIGN.md §6).
// This bench quantifies both on the decoupling-sensitive Field Stressmark
// and the prefetch-sensitive Update Stressmark.
#include <cstdio>

#include "harness.hpp"
#include "isa/assembler.hpp"

int main() {
  using namespace hidisc;
  printf("=== Ablation A: LDQ/SDQ capacity (Field, CP+AP) ===\n\n");
  {
    const auto p = bench::prepare(workloads::make_field(
        workloads::Scale::Paper));
    const auto base = bench::run_preset(p, machine::Preset::Superscalar);
    stats::Table table({"Queue capacity", "CP+AP cycles", "Speed-up",
                        "LDQ empty-stall cycles"});
    for (const std::size_t cap : {2u, 4u, 8u, 16u, 32u, 64u}) {
      machine::MachineConfig cfg;
      cfg.ldq_capacity = cap;
      cfg.sdq_capacity = cap;
      const auto r = bench::run_preset(p, machine::Preset::CPAP, cfg);
      table.add_row(
          {std::to_string(cap), std::to_string(r.cycles),
           stats::Table::num(static_cast<double>(base.cycles) / r.cycles),
           std::to_string(r.ldq.empty_stall_cycles)});
    }
    printf("%s\n", table.to_string().c_str());
  }

  printf("=== Ablation B: CMP prefetch buffer (Update, HiDISC) ===\n\n");
  {
    const auto p = bench::prepare(workloads::make_update(
        workloads::Scale::Paper));
    const auto base = bench::run_preset(p, machine::Preset::Superscalar);
    stats::Table table({"Prefetch buffer entries", "HiDISC cycles",
                        "Speed-up", "L1 miss rate"});
    for (const int buf : {1, 2, 4, 8, 16, 32}) {
      machine::MachineConfig cfg;
      cfg.cmp.prefetch_buffer = buf;
      const auto r = bench::run_preset(p, machine::Preset::HiDISC, cfg);
      table.add_row(
          {std::to_string(buf), std::to_string(r.cycles),
           stats::Table::num(static_cast<double>(base.cycles) / r.cycles),
           stats::Table::num(r.l1_demand_miss_rate())});
    }
    printf("%s\n", table.to_string().c_str());
  }

  printf("=== Ablation C: L2 bus bandwidth (Update, all machines) ===\n\n");
  {
    const auto p = bench::prepare(workloads::make_update(
        workloads::Scale::Paper));
    stats::Table table({"Bus cycles/miss", "Superscalar", "HiDISC",
                        "HiDISC speed-up"});
    for (const int bus : {0, 4, 8, 16}) {
      machine::MachineConfig cfg;
      cfg.mem.l2_bus_cycles = bus;
      const auto base = bench::run_preset(p, machine::Preset::Superscalar,
                                          cfg);
      const auto hd = bench::run_preset(p, machine::Preset::HiDISC, cfg);
      table.add_row(
          {std::to_string(bus), std::to_string(base.cycles),
           std::to_string(hd.cycles),
           stats::Table::num(static_cast<double>(base.cycles) / hd.cycles)});
    }
    printf("%s\n", table.to_string().c_str());
    printf("Prefetch traffic shares the bus with demand misses: with "
           "scarcer bandwidth the CMP's advantage shrinks.\n\n");
  }

  printf("=== Ablation D: fork mode (paper vs. chaining trigger) ===\n\n");
  {
    stats::Table table({"Benchmark", "Paper-mode speedup",
                        "Chaining speedup", "Paper uops", "Chaining uops"});
    for (auto* make : {&workloads::make_update, &workloads::make_transitive}) {
      const auto w = make(workloads::Scale::Paper,
                          make == &workloads::make_update ? 2 : 5);
      const auto p = bench::prepare(w);
      const auto base = bench::run_preset(p, machine::Preset::Superscalar);
      machine::MachineConfig paper_mode;
      machine::MachineConfig chaining;
      chaining.cmp_chaining = true;
      chaining.cmp_targets_per_fork = 256;
      const auto rp = bench::run_preset(p, machine::Preset::HiDISC,
                                        paper_mode);
      const auto rc = bench::run_preset(p, machine::Preset::HiDISC,
                                        chaining);
      table.add_row(
          {w.name,
           stats::Table::num(static_cast<double>(base.cycles) / rp.cycles),
           stats::Table::num(static_cast<double>(base.cycles) / rc.cycles),
           std::to_string(rp.cmas_uops), std::to_string(rc.cmas_uops)});
    }
    printf("%s\n", table.to_string().c_str());
    printf("Chaining (the paper's cited future-work trigger mode) trades "
           "fork-time holes for gap-free slice coverage.\n\n");
  }

  printf("=== Ablation E: runtime prefetch-range control "
         "(paper §6 future work) ===\n\n");
  {
    // A stride of exactly one L1 way-ring (8 KiB): every prefetch maps to
    // one set and dies unused — the case the paper's "choose only the
    // necessary prefetching at run time" is about.
    const char* src = R"(
.data
arr: .space 4194304
.text
_start:
  la   r4, arr
  li   r5, 512
loop:
  ld   r6, 0(r4)
  add  r7, r7, r6
  addi r4, r4, 8192
  addi r5, r5, -1
  bne  r5, r0, loop
  halt
)";
    const auto comp = compiler::compile(isa::assemble(src));
    sim::Functional fs(comp.separated);
    const auto ts = fs.run_trace();
    stats::Table table({"Range control", "HiDISC cycles", "Prefetches",
                        "Forks suppressed"});
    for (const bool adaptive : {false, true}) {
      machine::MachineConfig cfg;
      cfg.cmp.prefetch_buffer = 32;
      cfg.cmp_adaptive_range = adaptive;
      const auto r = machine::run_machine(comp.separated, ts,
                                          machine::Preset::HiDISC, cfg);
      table.add_row({adaptive ? "adaptive" : "off",
                     std::to_string(r.cycles),
                     std::to_string(r.l1.prefetches),
                     std::to_string(r.cmas_forks_suppressed)});
    }
    printf("%s\n", table.to_string().c_str());
    printf("Set-conflicting prefetches die unused; the controller detects "
           "the waste\nfrom per-group evicted-unused counters and stops "
           "forking the group.\n");
  }
  return 0;
}
