// Table 1 reproduction: the simulation parameters in effect.  This binary
// prints the active machine configuration so a reader can check it against
// the paper's Table 1 line by line.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace hidisc;
  const machine::MachineConfig cfg;
  printf("=== Table 1: simulation parameters ===\n\n");
  stats::Table table({"Parameter", "Value", "Paper"});
  const auto& m = cfg.mem;
  table
      .add_row({"Branch predict mode", "Bimodal", "Bimodal"})
      .add_row({"Branch table size", std::to_string(cfg.predictor_table),
                "2048"})
      .add_row({"Issue/commit width",
                std::to_string(cfg.superscalar.issue_width), "8"})
      .add_row({"Window: superscalar",
                std::to_string(cfg.superscalar.window), "64"})
      .add_row({"Window: Access Processor", std::to_string(cfg.ap.window),
                "64"})
      .add_row({"Window: Computation Processor",
                std::to_string(cfg.cp.window), "16"})
      .add_row({"Integer units / processor",
                std::to_string(cfg.ap.int_alu) + " ALU + " +
                    std::to_string(cfg.ap.int_muldiv) + " MUL/DIV",
                "ALU(x4), MUL/DIV"})
      .add_row({"FP units (superscalar, CP)",
                std::to_string(cfg.cp.fp_alu) + " ALU + " +
                    std::to_string(cfg.cp.fp_muldiv) + " MUL/DIV",
                "ALU(x4), MUL/DIV"})
      .add_row({"Memory ports / processor",
                std::to_string(cfg.ap.mem_ports), "2"})
      .add_row({"Load/store queue", std::to_string(cfg.ap.lsq), "32"})
      .add_row({"L1D organization",
                std::to_string(m.l1.sets) + " sets, " +
                    std::to_string(m.l1.block_bytes) + "B block, " +
                    std::to_string(m.l1.assoc) + "-way LRU",
                "256 sets, 32B, 4-way LRU"})
      .add_row({"L1D latency", std::to_string(m.l1.hit_latency) + " cycle",
                "1 cycle"})
      .add_row({"L2 organization",
                std::to_string(m.l2.sets) + " sets, " +
                    std::to_string(m.l2.block_bytes) + "B block, " +
                    std::to_string(m.l2.assoc) + "-way LRU",
                "1024 sets, 64B, 4-way LRU"})
      .add_row({"L2 latency", std::to_string(m.l2.hit_latency) + " cycles",
                "12 cycles"})
      .add_row({"Memory access latency",
                std::to_string(m.dram_latency) + " cycles", "120 cycles"})
      .add_row({"LDQ/SDQ capacity",
                std::to_string(cfg.ldq_capacity) + "/" +
                    std::to_string(cfg.sdq_capacity),
                "32-entry queues"});
  printf("%s\n", table.to_string().c_str());
  return 0;
}
