// Beyond the paper's Figure 8: the remaining DIS Stressmarks (Matrix,
// Corner Turn) and two more DIS application kernels (FFT, Image
// Understanding), run through the same four configurations via the
// hidisc-lab orchestrator.  Matrix is an FP gather kernel (decoupling +
// prefetching both apply); Corner Turn is pure integer (all access-side,
// like Transitive Closure); FFT mixes a data-shuffle phase with FP
// butterflies; Image behaves like Neighborhood (per-pixel FP store round
// trips: loss-of-decoupling).
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace hidisc;
  printf("=== Extra DIS workloads: Matrix, Corner Turn, FFT, Image ===\n\n");

  const auto plan = lab::plan_extra();
  const auto run = lab::run_plan(plan, bench::lab_options());

  stats::Table table({"Benchmark", "Superscalar", "CP+AP", "CP+CMP",
                      "HiDISC", "base cycles", "base L1 miss rate"});
  for (const auto& c : plan.cells) {
    if (c.preset != machine::Preset::Superscalar) continue;  // one per row
    const auto& name = c.workload.name;
    const auto& base = run.at(plan, name, machine::Preset::Superscalar);
    const auto rel = [&](machine::Preset preset) {
      return static_cast<double>(base.result.cycles) /
             static_cast<double>(run.at(plan, name, preset).result.cycles);
    };
    table.add_row({name, "1.000", stats::Table::num(rel(machine::Preset::CPAP)),
                   stats::Table::num(rel(machine::Preset::CPCMP)),
                   stats::Table::num(rel(machine::Preset::HiDISC)),
                   std::to_string(base.result.cycles),
                   stats::Table::num(base.result.l1_demand_miss_rate())});
  }
  printf("%s\n", table.to_string().c_str());
  printf("[lab] %zu cells: %zu simulated, %zu cached, %.0f ms\n",
         run.cells.size(), run.simulated, run.cache_hits, run.wall_ms);
  return 0;
}
