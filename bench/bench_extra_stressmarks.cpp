// Beyond the paper's Figure 8: the remaining DIS Stressmarks (Matrix,
// Corner Turn) and two more DIS application kernels (FFT, Image
// Understanding), run through the same four configurations.  Matrix is an
// FP gather kernel (decoupling + prefetching both apply); Corner Turn is
// pure integer (all access-side, like Transitive Closure); FFT mixes a
// data-shuffle phase with FP butterflies; Image behaves like Neighborhood
// (per-pixel FP store round trips: loss-of-decoupling).
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace hidisc;
  printf("=== Extra DIS workloads: Matrix, Corner Turn, FFT, Image ===\n\n");

  stats::Table table({"Benchmark", "Superscalar", "CP+AP", "CP+CMP",
                      "HiDISC", "base cycles", "base L1 miss rate"});
  for (const auto& w : workloads::extra_suite()) {
    const auto p = bench::prepare(w);
    const auto base = bench::run_preset(p, machine::Preset::Superscalar);
    const auto rel = [&base](const machine::Result& r) {
      return static_cast<double>(base.cycles) /
             static_cast<double>(r.cycles);
    };
    table.add_row(
        {w.name, "1.000",
         stats::Table::num(rel(bench::run_preset(p, machine::Preset::CPAP))),
         stats::Table::num(
             rel(bench::run_preset(p, machine::Preset::CPCMP))),
         stats::Table::num(
             rel(bench::run_preset(p, machine::Preset::HiDISC))),
         std::to_string(base.cycles),
         stats::Table::num(base.l1_demand_miss_rate())});
  }
  printf("%s\n", table.to_string().c_str());
  return 0;
}
