// Figure 8 reproduction: per-benchmark speed-up of the CP+AP, CP+CMP and
// HiDISC configurations relative to the baseline superscalar, across the
// seven DIS benchmarks in the paper's plot order.  Cells run through the
// hidisc-lab orchestrator (parallel, memoized prep, optional cache — see
// harness.hpp).
//
// Paper reference points: HiDISC is best in six of seven benchmarks (all
// but Neighborhood, where the frequent CP<->AP synchronizations cause
// loss-of-decoupling events and CP+CMP comes out ahead); the largest
// speed-up is on Update; the average across the suite is ~12%.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace hidisc;
  printf("=== Figure 8: speed-up vs. baseline superscalar ===\n\n");

  const auto plan = lab::plan_fig8();
  const auto run = lab::run_plan(plan, bench::lab_options());

  stats::Table table({"Benchmark", "Superscalar", "CP+AP", "CP+CMP",
                      "HiDISC", "base cycles"});
  double sums[3] = {0, 0, 0};
  int count = 0;
  for (const auto& c : plan.cells) {
    if (c.preset != machine::Preset::Superscalar) continue;  // one per row
    const auto& name = c.workload.name;
    const auto& base = run.at(plan, name, machine::Preset::Superscalar);
    const auto rel = [&](machine::Preset preset) {
      return static_cast<double>(base.result.cycles) /
             static_cast<double>(run.at(plan, name, preset).result.cycles);
    };
    table.add_row({name, "1.000", stats::Table::num(rel(machine::Preset::CPAP)),
                   stats::Table::num(rel(machine::Preset::CPCMP)),
                   stats::Table::num(rel(machine::Preset::HiDISC)),
                   std::to_string(base.result.cycles)});
    sums[0] += rel(machine::Preset::CPAP);
    sums[1] += rel(machine::Preset::CPCMP);
    sums[2] += rel(machine::Preset::HiDISC);
    ++count;
  }
  table.add_row({"MEAN", "1.000", stats::Table::num(sums[0] / count),
                 stats::Table::num(sums[1] / count),
                 stats::Table::num(sums[2] / count), "-"});
  printf("%s\n", table.to_string().c_str());
  printf("Paper: HiDISC best in 6/7 (not Neighborhood); max speed-up on "
         "Update; suite average ~1.12x.\n");
  printf("[lab] %zu cells: %zu simulated, %zu cached, %.0f ms\n",
         run.cells.size(), run.simulated, run.cache_hits, run.wall_ms);
  return 0;
}
