// Figure 8 reproduction: per-benchmark speed-up of the CP+AP, CP+CMP and
// HiDISC configurations relative to the baseline superscalar, across the
// seven DIS benchmarks in the paper's plot order.
//
// Paper reference points: HiDISC is best in six of seven benchmarks (all
// but Neighborhood, where the frequent CP<->AP synchronizations cause
// loss-of-decoupling events and CP+CMP comes out ahead); the largest
// speed-up is on Update; the average across the suite is ~12%.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace hidisc;
  printf("=== Figure 8: speed-up vs. baseline superscalar ===\n\n");

  stats::Table table({"Benchmark", "Superscalar", "CP+AP", "CP+CMP",
                      "HiDISC", "base cycles"});
  double sums[3] = {0, 0, 0};
  int count = 0;
  for (const auto& w : workloads::paper_suite()) {
    const auto p = bench::prepare(w);
    const auto base = bench::run_preset(p, machine::Preset::Superscalar);
    const auto cpap = bench::run_preset(p, machine::Preset::CPAP);
    const auto cpcmp = bench::run_preset(p, machine::Preset::CPCMP);
    const auto hidisc = bench::run_preset(p, machine::Preset::HiDISC);
    const auto rel = [&base](const machine::Result& r) {
      return static_cast<double>(base.cycles) /
             static_cast<double>(r.cycles);
    };
    table.add_row({w.name, "1.000", stats::Table::num(rel(cpap)),
                   stats::Table::num(rel(cpcmp)),
                   stats::Table::num(rel(hidisc)),
                   std::to_string(base.cycles)});
    sums[0] += rel(cpap);
    sums[1] += rel(cpcmp);
    sums[2] += rel(hidisc);
    ++count;
  }
  table.add_row({"MEAN", "1.000", stats::Table::num(sums[0] / count),
                 stats::Table::num(sums[1] / count),
                 stats::Table::num(sums[2] / count), "-"});
  printf("%s\n", table.to_string().c_str());
  printf("Paper: HiDISC best in 6/7 (not Neighborhood); max speed-up on "
         "Update; suite average ~1.12x.\n");
  return 0;
}
