// Figure 9 reproduction: L1-D demand miss count of each configuration,
// normalized to the baseline superscalar (the paper plots "reduction of
// cache miss rate compared to the baseline").  Cells run through the
// hidisc-lab orchestrator (see harness.hpp).
//
// Paper reference points: the CMP-equipped configurations cut misses
// substantially (best: Transitive Closure, -26.7%); the suite average
// reduction for HiDISC is ~17%.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace hidisc;
  printf("=== Figure 9: L1 demand misses normalized to superscalar ===\n\n");

  const auto plan = lab::plan_fig9();
  const auto run = lab::run_plan(plan, bench::lab_options());

  stats::Table table({"Benchmark", "Superscalar", "CP+AP", "CP+CMP",
                      "HiDISC", "base miss rate"});
  double sum_hidisc = 0.0;
  int count = 0;
  for (const auto& c : plan.cells) {
    if (c.preset != machine::Preset::Superscalar) continue;  // one per row
    const auto& name = c.workload.name;
    const auto& base = run.at(plan, name, machine::Preset::Superscalar);
    const auto rel = [&](machine::Preset preset) {
      const auto& r = run.at(plan, name, preset).result;
      return base.result.l1.demand_misses() == 0
                 ? 1.0
                 : static_cast<double>(r.l1.demand_misses()) /
                       static_cast<double>(base.result.l1.demand_misses());
    };
    table.add_row({name, "1.000", stats::Table::num(rel(machine::Preset::CPAP)),
                   stats::Table::num(rel(machine::Preset::CPCMP)),
                   stats::Table::num(rel(machine::Preset::HiDISC)),
                   stats::Table::num(base.result.l1.demand_miss_rate())});
    sum_hidisc += rel(machine::Preset::HiDISC);
    ++count;
  }
  table.add_row({"MEAN", "1.000", "-", "-",
                 stats::Table::num(sum_hidisc / count), "-"});
  printf("%s\n", table.to_string().c_str());
  printf("Paper: HiDISC eliminates ~17%% of cache misses on average; the "
         "largest reduction is on Transitive Closure (-26.7%%).\n");
  printf("[lab] %zu cells: %zu simulated, %zu cached, %.0f ms\n",
         run.cells.size(), run.simulated, run.cache_hits, run.wall_ms);
  return 0;
}
