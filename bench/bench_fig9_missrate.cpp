// Figure 9 reproduction: L1-D demand miss count of each configuration,
// normalized to the baseline superscalar (the paper plots "reduction of
// cache miss rate compared to the baseline").
//
// Paper reference points: the CMP-equipped configurations cut misses
// substantially (best: Transitive Closure, -26.7%); the suite average
// reduction for HiDISC is ~17%.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace hidisc;
  printf("=== Figure 9: L1 demand misses normalized to superscalar ===\n\n");

  stats::Table table({"Benchmark", "Superscalar", "CP+AP", "CP+CMP",
                      "HiDISC", "base miss rate"});
  double sum_hidisc = 0.0;
  int count = 0;
  for (const auto& w : workloads::paper_suite()) {
    const auto p = bench::prepare(w);
    const auto base = bench::run_preset(p, machine::Preset::Superscalar);
    const auto cpap = bench::run_preset(p, machine::Preset::CPAP);
    const auto cpcmp = bench::run_preset(p, machine::Preset::CPCMP);
    const auto hidisc = bench::run_preset(p, machine::Preset::HiDISC);
    const auto rel = [&base](const machine::Result& r) {
      return base.l1.demand_misses() == 0
                 ? 1.0
                 : static_cast<double>(r.l1.demand_misses()) /
                       static_cast<double>(base.l1.demand_misses());
    };
    table.add_row({w.name, "1.000", stats::Table::num(rel(cpap)),
                   stats::Table::num(rel(cpcmp)),
                   stats::Table::num(rel(hidisc)),
                   stats::Table::num(base.l1.demand_miss_rate())});
    sum_hidisc += rel(hidisc);
    ++count;
  }
  table.add_row({"MEAN", "1.000", "-", "-",
                 stats::Table::num(sum_hidisc / count), "-"});
  printf("%s\n", table.to_string().c_str());
  printf("Paper: HiDISC eliminates ~17%% of cache misses on average; the "
         "largest reduction is on Transitive Closure (-26.7%%).\n");
  return 0;
}
