// Table 2 reproduction: mean speed-up of the three architecture models
// over the baseline superscalar, across the seven-benchmark suite.  The
// grid runs through the hidisc-lab orchestrator (see harness.hpp) and is
// cell-identical to fig8's, so with a shared cache the two binaries
// simulate the suite only once between them.
//
// Paper reference: CP+AP +1.3% (access/execute decoupling alone), CP+CMP
// +10.7% (cache prefetching alone), HiDISC +11.9% (both).  The dominant
// factor is the CMP's prefetching; decoupling alone contributes little
// because the baseline's large window already schedules loads dynamically.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace hidisc;
  printf("=== Table 2: mean speed-up of the three models ===\n\n");

  const auto plan = lab::plan_table2();
  const auto run = lab::run_plan(plan, bench::lab_options());

  const machine::Preset models[3] = {machine::Preset::CPAP,
                                     machine::Preset::CPCMP,
                                     machine::Preset::HiDISC};
  double sums[3] = {0, 0, 0};
  int count = 0;
  for (const auto& c : plan.cells) {
    if (c.preset != machine::Preset::Superscalar) continue;  // one per row
    const auto& base =
        run.at(plan, c.workload.name, machine::Preset::Superscalar);
    for (int m = 0; m < 3; ++m)
      sums[m] += static_cast<double>(base.result.cycles) /
                 static_cast<double>(
                     run.at(plan, c.workload.name, models[m]).result.cycles);
    ++count;
  }
  stats::Table table({"Configuration", "Characteristic", "Speed-up",
                      "Paper"});
  table
      .add_row({"CP + AP", "Access/execute decoupling",
                stats::Table::pct(sums[0] / count - 1.0), "+1.3%"})
      .add_row({"CP + CMP", "Cache prefetching",
                stats::Table::pct(sums[1] / count - 1.0), "+10.7%"})
      .add_row({"HiDISC", "Decoupling and prefetching",
                stats::Table::pct(sums[2] / count - 1.0), "+11.9%"});
  printf("%s\n", table.to_string().c_str());
  printf("[lab] %zu cells: %zu simulated, %zu cached, %.0f ms\n",
         run.cells.size(), run.simulated, run.cache_hits, run.wall_ms);
  return 0;
}
