// Table 2 reproduction: mean speed-up of the three architecture models
// over the baseline superscalar, across the seven-benchmark suite.
//
// Paper reference: CP+AP +1.3% (access/execute decoupling alone), CP+CMP
// +10.7% (cache prefetching alone), HiDISC +11.9% (both).  The dominant
// factor is the CMP's prefetching; decoupling alone contributes little
// because the baseline's large window already schedules loads dynamically.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace hidisc;
  printf("=== Table 2: mean speed-up of the three models ===\n\n");

  double sums[3] = {0, 0, 0};
  int count = 0;
  for (const auto& w : workloads::paper_suite()) {
    const auto p = bench::prepare(w);
    const auto base = bench::run_preset(p, machine::Preset::Superscalar);
    const machine::Preset models[3] = {machine::Preset::CPAP,
                                       machine::Preset::CPCMP,
                                       machine::Preset::HiDISC};
    for (int m = 0; m < 3; ++m) {
      const auto r = bench::run_preset(p, models[m]);
      sums[m] += static_cast<double>(base.cycles) /
                 static_cast<double>(r.cycles);
    }
    ++count;
  }
  stats::Table table({"Configuration", "Characteristic", "Speed-up",
                      "Paper"});
  table
      .add_row({"CP + AP", "Access/execute decoupling",
                stats::Table::pct(sums[0] / count - 1.0), "+1.3%"})
      .add_row({"CP + CMP", "Cache prefetching",
                stats::Table::pct(sums[1] / count - 1.0), "+10.7%"})
      .add_row({"HiDISC", "Decoupling and prefetching",
                stats::Table::pct(sums[2] / count - 1.0), "+11.9%"});
  printf("%s\n", table.to_string().c_str());
  return 0;
}
