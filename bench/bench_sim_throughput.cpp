// Simulator component throughput (google-benchmark).  Not a paper figure:
// engineering microbenchmarks that keep the simulation infrastructure
// honest (the whole evaluation re-runs dozens of billion-cycle-scale
// simulations, so component speed matters).
#include <benchmark/benchmark.h>

#include "compiler/compile.hpp"
#include "isa/assembler.hpp"
#include "machine/machine.hpp"
#include "mem/memory_system.hpp"
#include "sim/functional.hpp"
#include "uarch/branch_predictor.hpp"
#include "workloads/common.hpp"

namespace {

using namespace hidisc;

void BM_CacheAccess(benchmark::State& state) {
  mem::MemorySystem ms;
  std::uint64_t addr = 0, now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ms.access(addr, mem::AccessType::Read, ++now));
    addr = (addr + 64) & 0xfffff;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_BranchPredictor(benchmark::State& state) {
  uarch::BimodalPredictor bp;
  std::int32_t pc = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bp.update(pc, (pc & 3) != 0, pc + 5));
    pc = (pc + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredictor);

void BM_Assembler(benchmark::State& state) {
  const auto w = workloads::make_update(workloads::Scale::Test);
  std::string source;
  {
    // Round-trip through text once so we bench pure assembly speed.
    source =
        "loop: ld r1, 0(r2)\n addi r2, r2, 8\n add r3, r3, r1\n"
        " bne r2, r4, loop\n halt\n";
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::assemble(source));
  }
  state.SetItemsProcessed(state.iterations() * 5);  // instructions
}
BENCHMARK(BM_Assembler);

void BM_FunctionalSim(benchmark::State& state) {
  const auto w = workloads::make_field(workloads::Scale::Test);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    sim::Functional f(w.program);
    f.run();
    instructions += f.instructions();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
}
BENCHMARK(BM_FunctionalSim);

void BM_TraceGeneration(benchmark::State& state) {
  const auto w = workloads::make_pointer(workloads::Scale::Test);
  std::uint64_t entries = 0;
  for (auto _ : state) {
    sim::Functional f(w.program);
    const auto trace = f.run_trace();
    entries += trace.size();
    benchmark::DoNotOptimize(trace.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(entries));
}
BENCHMARK(BM_TraceGeneration);

// Threaded-code interpreter vs the reference switch interpreter, on the
// compiled (separated) Matrix binary so queue opcodes and fused pairs are
// exercised.  Arg 0 = threaded (run_trace), Arg 1 = reference
// (run_trace_ref); /0 over /1 is the dispatch+decode speedup the
// pre-decoded engine buys.  items = trace entries.
void BM_Functional(benchmark::State& state) {
  const auto w = workloads::make_matrix(workloads::Scale::Test);
  const auto comp = compiler::compile(w.program);
  const bool reference = state.range(0) != 0;
  std::uint64_t entries = 0;
  for (auto _ : state) {
    sim::Functional f(comp.separated);
    const auto trace = reference ? f.run_trace_ref() : f.run_trace();
    entries += trace.size();
    benchmark::DoNotOptimize(trace.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(entries));
  state.SetLabel(reference ? "reference switch" : "threaded");
}
BENCHMARK(BM_Functional)->Arg(0)->Arg(1);

void BM_SuperscalarCycleSim(benchmark::State& state) {
  const auto w = workloads::make_dm(workloads::Scale::Test);
  const auto comp = compiler::compile(w.program);
  sim::Functional f(comp.original);
  const auto trace = f.run_trace();
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const auto r = machine::run_machine(comp.original, trace,
                                        machine::Preset::Superscalar);
    cycles += r.cycles;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
  state.SetLabel("items = simulated cycles");
}
BENCHMARK(BM_SuperscalarCycleSim);

void BM_HidiscCycleSim(benchmark::State& state) {
  const auto w = workloads::make_dm(workloads::Scale::Test);
  const auto comp = compiler::compile(w.program);
  sim::Functional f(comp.separated);
  const auto trace = f.run_trace();
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const auto r = machine::run_machine(comp.separated, trace,
                                        machine::Preset::HiDISC);
    cycles += r.cycles;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
  state.SetLabel("items = simulated cycles");
}
BENCHMARK(BM_HidiscCycleSim);

// Whole-machine throughput: the decoupled CP+AP machine running the
// memory-bound Matrix stressmark at the Fig. 10 high-latency memory point
// (L2 16 / DRAM 160), where most cycles find every core stalled behind a
// miss.  This is the end-to-end number the CI perf-smoke job gates on
// (tools/perf_gate.py against bench/baseline.json).  Arg 0 selects the
// scheduler, so /0 vs /1 shows the event-skip speedup directly.
void BM_FullMachine(benchmark::State& state) {
  const auto w = workloads::make_matrix(workloads::Scale::Test);
  const auto comp = compiler::compile(w.program);
  sim::Functional f(comp.separated);
  const auto trace = f.run_trace();
  machine::MachineConfig cfg;
  cfg.mem = mem::MemConfig::with_latencies(16, 160);
  cfg.scheduler = static_cast<machine::SchedulerKind>(state.range(0));
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const auto r = machine::run_machine(comp.separated, trace,
                                        machine::Preset::CPAP, cfg);
    cycles += r.cycles;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
  state.SetLabel(std::string("items = simulated cycles, ") +
                 (cfg.scheduler == machine::SchedulerKind::EventSkip
                      ? "event-skip"
                      : "lockstep"));
}
BENCHMARK(BM_FullMachine)
    ->Arg(static_cast<int>(machine::SchedulerKind::EventSkip))
    ->Arg(static_cast<int>(machine::SchedulerKind::Lockstep));

void BM_CompilerPipeline(benchmark::State& state) {
  const auto w = workloads::make_raytrace(workloads::Scale::Test);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler::compile(w.program));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.program.code.size()));
}
BENCHMARK(BM_CompilerPipeline);

}  // namespace

BENCHMARK_MAIN();
