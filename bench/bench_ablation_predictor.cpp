// Ablation: does a better branch predictor shrink HiDISC's advantage?
// The paper's Table 1 machine uses a bimodal predictor; part of the CMP's
// benefit comes from resolving miss-dependent branches faster (prefetched
// loads feed the comparisons).  A gshare predictor removes some of the
// same stalls from the baseline, so the gap narrows on branchy kernels.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace hidisc;
  printf("=== Ablation: branch predictor (bimodal vs. gshare) ===\n\n");

  stats::Table table({"Benchmark", "Predictor", "Base mispredict rate",
                      "Base cycles", "HiDISC speed-up"});
  for (auto* make : {&workloads::make_dm, &workloads::make_update}) {
    const auto w = make(workloads::Scale::Paper,
                        make == &workloads::make_dm ? 6 : 2);
    const auto p = bench::prepare(w);
    for (const auto kind :
         {uarch::PredictorKind::Bimodal, uarch::PredictorKind::GShare}) {
      machine::MachineConfig cfg;
      cfg.predictor_kind = kind;
      const auto base = bench::run_preset(p, machine::Preset::Superscalar,
                                          cfg);
      const auto hd = bench::run_preset(p, machine::Preset::HiDISC, cfg);
      table.add_row(
          {w.name, kind == uarch::PredictorKind::Bimodal ? "bimodal"
                                                         : "gshare",
           stats::Table::num(base.branch.mispredict_rate()),
           std::to_string(base.cycles),
           stats::Table::num(static_cast<double>(base.cycles) / hd.cycles)});
    }
  }
  printf("%s\n", table.to_string().c_str());
  return 0;
}
