// Ablation (paper §6 future work: "the runtime control of the prefetching
// distance is another important task"): how the CMAS trigger/fork distance
// affects HiDISC, on the Update Stressmark (fire-and-forget slices, where
// distance governs timeliness) and on Pointer (serial chase slices, which
// chain from the fetch point and are insensitive to it — exactly why the
// paper calls for dynamic control).
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace hidisc;
  printf("=== Ablation: CMAS trigger/fork distance ===\n\n");

  struct Case {
    const char* name;
    workloads::BuiltWorkload w;
  };
  Case cases[] = {
      {"TC (fire-and-forget row slices)",
       workloads::make_transitive(workloads::Scale::Paper)},
      {"Pointer (serial chase slices)",
       workloads::make_pointer(workloads::Scale::Paper)},
  };
  for (auto& c : cases) {
    printf("--- %s ---\n", c.name);
    stats::Table table({"Distance", "HiDISC cycles", "Speed-up",
                        "Timely prefetch hits", "Late (in-flight) hits"});
    // Each prepare() names the presets it serves, so the baseline prep
    // skips the separated-binary trace and the per-distance preps skip
    // the original-binary trace.
    const auto p0 = bench::prepare(c.w, {machine::Preset::Superscalar});
    const auto base = bench::run_preset(p0, machine::Preset::Superscalar);
    for (const int distance : {64, 128, 256, 512, 1024, 2048}) {
      compiler::CompileOptions opt;
      opt.cmas.trigger_distance = distance;
      const auto p = bench::prepare(c.w, {machine::Preset::HiDISC}, opt);
      machine::MachineConfig cfg;
      cfg.cmp_fork_lookahead = distance * 3 / 4;
      const auto r = bench::run_preset(p, machine::Preset::HiDISC, cfg);
      table.add_row(
          {std::to_string(distance), std::to_string(r.cycles),
           stats::Table::num(static_cast<double>(base.cycles) / r.cycles),
           std::to_string(r.l1.useful_prefetches),
           std::to_string(r.l1.late_fill_hits)});
    }
    printf("%s\n", table.to_string().c_str());
  }

  printf("--- Dynamic distance control (paper §6 future work) ---\n");
  {
    const auto w = workloads::make_transitive(workloads::Scale::Paper);
    const auto p = bench::prepare(w);
    const auto base = bench::run_preset(p, machine::Preset::Superscalar);
    stats::Table table({"Initial distance", "Static speed-up",
                        "Dynamic speed-up", "Adaptations"});
    for (const int start : {64, 384, 2048}) {
      machine::MachineConfig cfg;
      cfg.cmp_fork_lookahead = start;
      const auto rs = bench::run_preset(p, machine::Preset::HiDISC, cfg);
      cfg.cmp_dynamic_distance = true;
      const auto rd = bench::run_preset(p, machine::Preset::HiDISC, cfg);
      table.add_row(
          {std::to_string(start),
           stats::Table::num(static_cast<double>(base.cycles) / rs.cycles),
           stats::Table::num(static_cast<double>(base.cycles) / rd.cycles),
           std::to_string(rd.distance_adaptations)});
    }
    printf("%s\n", table.to_string().c_str());
  }

  printf("Paper uses a fixed 512-instruction trigger window and flags the "
         "distance as a target for dynamic control (§6).  Serial chase\n"
         "slices chain from the fetch point, so the distance barely moves\n"
         "them — one motivation for dynamic control, which the last table\n"
         "implements: a late-vs-unused prefetch balance steers the fork\n"
         "distance and recovers near-best performance from any start.\n");
  return 0;
}
