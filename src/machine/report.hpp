// Human-readable rendering of a full simulation Result (sim-outorder-style
// statistics dump).  Used by `tools/hisa sim --verbose` and the examples.
#pragma once

#include <string>

#include "machine/result.hpp"

namespace hidisc::machine {

// Multi-section text report: cycles/IPC, per-core activity, memory
// hierarchy, branch prediction, queue traffic, CMP prefetching.
[[nodiscard]] std::string render_report(const machine::Result& r);

}  // namespace hidisc::machine
