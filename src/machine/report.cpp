#include "machine/report.hpp"

#include <sstream>

#include "stats/table.hpp"

namespace hidisc::machine {
namespace {

void core_section(std::ostringstream& out, const char* name,
                  const uarch::CoreStats& s) {
  out << "  " << name << ": committed " << s.committed_all << " (arch "
      << s.committed << "), loads " << s.loads << ", stores " << s.stores
      << ", forwarded " << s.forwarded_loads << "\n"
      << "      stalls: window-full " << s.window_full_stalls
      << ", lsq-full " << s.lsq_full_stalls
      << ", queue-wait " << s.head_pop_empty_stalls << ", LOD "
      << s.lod_stalls << ", push-blocked " << s.queue_full_commit_stalls
      << "\n";
}

void fifo_section(std::ostringstream& out, const char* name,
                  const uarch::FifoStats& s) {
  out << "  " << name << ": " << s.pushes << " pushes / " << s.pops
      << " pops, peak occupancy " << s.max_occupancy << ", empty-stall "
      << s.empty_stall_cycles << " cy, full-stall " << s.full_stall_cycles
      << " cy\n";
}

}  // namespace

std::string render_report(const machine::Result& r) {
  std::ostringstream out;
  out << "== execution ==\n"
      << "  cycles " << r.cycles << ", instructions " << r.instructions
      << ", IPC " << stats::Table::num(r.ipc, 3) << "\n"
      << "  fetch stalls: branch " << r.fetch_stall_branch_cycles
      << " cy, queue-full " << r.fetch_stall_queue_full << " slots\n";

  out << "== cores ==\n";
  if (r.has_main) core_section(out, "main", r.main);
  if (r.has_cp) core_section(out, "CP  ", r.cp);
  if (r.has_ap) core_section(out, "AP  ", r.ap);
  if (r.has_cmp) core_section(out, "CMP ", r.cmp);

  out << "== memory ==\n"
      << "  L1D: " << r.l1.demand_accesses() << " demand accesses, "
      << r.l1.demand_misses() << " misses (rate "
      << stats::Table::num(r.l1.demand_miss_rate(), 3) << "), " << r.l1.writebacks
      << " writebacks\n"
      << "  L1D prefetch: " << r.l1.prefetches << " issued, "
      << r.l1.useful_prefetches << " timely, " << r.l1.late_fill_hits
      << " late (in-flight, " << r.l1.late_prefetch_hits
      << " from prefetches)\n"
      << "  L2: " << r.l2.demand_accesses() << " accesses, "
      << r.l2.demand_misses() << " misses (rate "
      << stats::Table::num(r.l2.demand_miss_rate(), 3) << ")\n";
  if (r.pf.trains > 0)
    out << "  HW prefetch: " << r.pf.issued << " issued ("
        << r.pf.filtered << " filtered), " << r.pf.installed
        << " installed, " << r.pf.used << " used (" << r.pf.late
        << " late), " << r.pf.evicted_unused << " evicted unused\n"
        << "      accuracy " << stats::Table::num(r.pf_accuracy, 3)
        << ", coverage " << stats::Table::num(r.pf_coverage, 3)
        << ", lateness " << stats::Table::num(r.pf_lateness, 3) << "\n";

  out << "== branches ==\n"
      << "  " << r.branch.lookups << " conditional lookups, "
      << r.branch.mispredicts << " mispredicts (rate "
      << stats::Table::num(r.branch.mispredict_rate(), 3) << ")\n";

  out << "== queues ==\n";
  fifo_section(out, "LDQ", r.ldq);
  fifo_section(out, "SDQ", r.sdq);
  fifo_section(out, "SCQ", r.scq);

  if (r.has_cmp) {
    out << "== CMP ==\n"
        << "  " << r.cmas_forks << " forks (" << r.cmas_forks_dropped
        << " dropped), " << r.cmas_uops << " slice micro-ops\n";
    if (r.distance_adaptations > 0)
      out << "  dynamic distance: " << r.distance_adaptations
          << " adjustments, final " << r.final_fork_lookahead << "\n";
  }
  return out.str();
}

}  // namespace hidisc::machine
