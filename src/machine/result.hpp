// Aggregated results of one timing-simulation run.
#pragma once

#include <cstdint>

#include "mem/cache.hpp"
#include "mem/prefetcher.hpp"
#include "uarch/branch_predictor.hpp"
#include "uarch/core.hpp"
#include "uarch/timed_fifo.hpp"

namespace hidisc::machine {

struct Result {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;  // architecturally committed (no CMP ops)
  double ipc = 0.0;

  mem::CacheStats l1;
  mem::CacheStats l2;
  uarch::BranchStats branch;

  // Hardware-prefetcher accounting (all-zero when mem.prefetch is None).
  // The derived ratios are stored, not recomputed, so cache round-trips
  // stay bit-exact.
  mem::HwPrefetchStats pf;
  double pf_accuracy = 0.0;  // used / installed
  double pf_coverage = 0.0;  // timely / (timely + L1 demand misses)
  double pf_lateness = 0.0;  // late / used

  // Core stats; presence depends on the preset.
  bool has_main = false, has_cp = false, has_ap = false, has_cmp = false;
  uarch::CoreStats main;  // superscalar core (Superscalar / CP+CMP presets)
  uarch::CoreStats cp;
  uarch::CoreStats ap;
  uarch::CoreStats cmp;

  uarch::FifoStats ldq, sdq, scq;

  std::uint64_t fetch_stall_branch_cycles = 0;
  std::uint64_t fetch_stall_queue_full = 0;  // fetch slots lost to full CIQ/AIQ
  std::uint64_t cmas_forks = 0;
  std::uint64_t cmas_forks_dropped = 0;  // no free CMP context
  std::uint64_t cmas_forks_suppressed = 0;  // adaptive range control
  std::uint64_t cmas_uops = 0;           // slice micro-ops fed to the CMP
  std::uint64_t distance_adaptations = 0;  // dynamic-distance adjustments
  std::int64_t final_fork_lookahead = 0;   // distance at end of run

  [[nodiscard]] double l1_demand_miss_rate() const noexcept {
    return l1.demand_miss_rate();
  }

  // Bitwise equality across every counter; the event-skip and lockstep
  // schedulers must agree on all of it (see SchedulerKind).
  friend bool operator==(const Result&, const Result&) = default;
};

}  // namespace hidisc::machine
