// The HiDISC timing machine (paper Figure 2) and its siblings.
//
// One `Machine` simulates a whole processor: a front end that fetches the
// annotated binary along the (trace-resolved) dynamic path, predicts
// branches, and routes instructions through the separator into per-core
// instruction queues; one to three `OoOCore`s; the LDQ/SDQ/SCQ
// architectural FIFOs; the shared L1D/L2/DRAM hierarchy; and the CMP fork
// engine that launches CMAS slices when trigger instructions are fetched.
//
// Timing is cycle-accurate and globally ordered across cores, so all cache
// accesses — including CMP prefetches — interleave in true global time
// order.  Functional behaviour is pre-resolved by the dynamic trace
// (DESIGN.md §6), which the caller obtains from sim::Functional.
//
// Time advances through an event-skip scheduler by default: on any cycle
// where no core, FIFO or front-end state changed, the machine jumps `now`
// to the earliest pending event (FU/memory completion, FIFO head becoming
// ready, fetch resume, CMP adapt tick, outstanding cache fill) instead of
// ticking through the idle gap — see docs/MACHINE.md.  The seed
// cycle-by-cycle scheduler survives as SchedulerKind::Lockstep, and
// HIDISC_LOCKSTEP=1 runs both and asserts bit-identical Results.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "diag/deadlock.hpp"
#include "diag/flight_recorder.hpp"
#include "isa/program.hpp"
#include "machine/config.hpp"
#include "machine/result.hpp"
#include "mem/memory_system.hpp"
#include "sim/functional.hpp"
#include "uarch/branch_predictor.hpp"
#include "uarch/core.hpp"
#include "uarch/timed_fifo.hpp"

namespace hidisc::machine {

// Telemetry of the event-skip scheduler for one run.  Deliberately *not*
// part of machine::Result: Results are bit-identical across schedulers,
// while these numbers describe how a particular scheduler got there.
struct SchedulerStats {
  std::uint64_t event_steps = 0;     // cycles actually simulated
  std::uint64_t stall_steps = 0;     // steps where nothing progressed
  std::uint64_t skips = 0;           // fast-forward jumps taken
  std::uint64_t skipped_cycles = 0;  // idle cycles never ticked
  std::uint64_t max_skip = 0;        // longest single jump, in cycles
  std::uint64_t quiescent_core_ticks = 0;  // per-core ticks skipped while
                                           // a core was fully drained
};

class Machine {
 public:
  // `prog` must outlive the machine and must be the binary matching the
  // preset (separated for CP+AP / HiDISC — see uses_separated_binary).
  // `trace` is the dynamic trace of exactly that binary.
  Machine(const isa::Program& prog, const sim::Trace& trace, Preset preset,
          const MachineConfig& cfg = {});
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Runs to completion and returns the collected statistics.
  // Throws diag::DeadlockError (a std::runtime_error) if the machine stops
  // making progress; the attached DeadlockReport carries queue/core
  // snapshots, a classified root cause, and the flight-recorder tail.
  // With HIDISC_LOCKSTEP=1 in the environment, an event-skip run is
  // shadowed by a fresh lock-stepped run of the same inputs and a
  // divergence in any Result field throws std::logic_error.
  [[nodiscard]] Result run();

  // Valid after run(): how the scheduler advanced time.
  [[nodiscard]] const SchedulerStats& sched_stats() const noexcept {
    return sched_;
  }

  // The always-on flight recorder (forensics; see diag/flight_recorder.hpp).
  [[nodiscard]] const diag::FlightRecorder& flight_recorder() const noexcept {
    return recorder_;
  }

 private:
  struct CmpContext {
    bool active = false;
    std::int16_t group = -1;
    std::size_t scan_pos = 0;    // next trace index to scan for slice ops
    int targets_left = 0;
  };

  void fetch(std::uint64_t now);
  bool fetch_step(std::uint64_t now);
  bool pump_cmp(std::uint64_t now);
  bool resolve_branches();
  void fork_cmas(std::int16_t group, std::size_t fetch_pos);
  [[nodiscard]] uarch::OoOCore& route(const isa::Instruction& inst);
  [[nodiscard]] bool done() const;
  [[nodiscard]] Result collect(std::uint64_t cycles) const;

  // Event-skip scheduler internals (see docs/MACHINE.md).
  [[nodiscard]] Result run_scheduler();
  bool step(std::uint64_t now);
  [[nodiscard]] std::uint64_t next_event_after(std::uint64_t now);
  void account_skip(std::uint64_t now, std::uint64_t delta);
  [[nodiscard]] diag::StepRecord make_record(std::uint64_t now,
                                             diag::StepKind kind,
                                             std::uint64_t arg) const;
  [[nodiscard]] diag::DeadlockReport build_deadlock_report(
      std::uint64_t now, std::uint64_t last_progress_cycle,
      bool no_pending_event) const;
  [[noreturn]] void throw_deadlock(std::uint64_t now,
                                   std::uint64_t last_progress_cycle,
                                   bool no_pending_event);

  const isa::Program& prog_;
  const sim::Trace& trace_;
  Preset preset_;
  MachineConfig cfg_;

  // Per-static-instruction pre-decode shared by every core (see
  // uarch/static_op.hpp); must outlive the cores below.
  uarch::StaticOpTable optable_;

  mem::MemorySystem memsys_;
  uarch::BimodalPredictor predictor_;
  uarch::TimedFifo ldq_;
  uarch::TimedFifo sdq_;
  uarch::TimedFifo scq_;

  // Core roster: main (superscalar-style) OR cp+ap, plus optional cmp.
  std::unique_ptr<uarch::OoOCore> main_;
  std::unique_ptr<uarch::OoOCore> cp_;
  std::unique_ptr<uarch::OoOCore> ap_;
  std::unique_ptr<uarch::OoOCore> cmp_;

  // Front-end state.
  std::size_t fetch_pos_ = 0;
  bool fetch_blocked_ = false;
  std::int64_t pending_branch_pos_ = -1;
  std::uint64_t fetch_resume_cycle_ = 0;
  std::uint64_t last_fetch_block_ = ~0ull;  // I-cache model

  // CMP fork engine state.
  std::vector<CmpContext> contexts_;
  std::vector<std::size_t> group_next_scan_;
  std::vector<std::uint64_t> group_reprobe_;  // adaptive-range counters
  // Groups whose slice consumes its own loads (pointer chases): their
  // instances must chain — jumping ahead would let the trace oracle skip a
  // serial dependence no real CMP could skip.
  std::vector<bool> group_serial_;

  // Dynamic prefetch-distance control (paper §6 future work).
  void adapt_distance(std::uint64_t now);
  std::int64_t lookahead_ = 0;  // current fork distance
  std::uint64_t next_adapt_cycle_ = 0;
  std::uint64_t adapt_last_useful_ = 0;
  std::uint64_t adapt_last_late_ = 0;
  std::uint64_t adapt_last_issued_ = 0;

  // Forensics.
  diag::FlightRecorder recorder_;

  // Stats.
  SchedulerStats sched_;
  std::uint64_t fetch_stall_branch_cycles_ = 0;
  std::uint64_t fetch_stall_queue_full_ = 0;
  std::uint64_t cmas_forks_ = 0;
  std::uint64_t cmas_forks_dropped_ = 0;
  std::uint64_t cmas_forks_suppressed_ = 0;
  std::uint64_t cmas_uops_ = 0;
  std::uint64_t distance_adaptations_ = 0;
};

// Convenience wrapper: trace `prog` functionally, then run the machine.
[[nodiscard]] Result run_machine(const isa::Program& prog, Preset preset,
                                 const MachineConfig& cfg = {});

// Runs a preset against a compilation, choosing the right binary.
// Pre-computed traces may be supplied to amortize across presets.
[[nodiscard]] Result run_machine(const isa::Program& prog,
                                 const sim::Trace& trace, Preset preset,
                                 const MachineConfig& cfg = {});

}  // namespace hidisc::machine
