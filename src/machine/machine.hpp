// The HiDISC timing machine (paper Figure 2) and its siblings.
//
// One `Machine` simulates a whole processor: a front end that fetches the
// annotated binary along the (trace-resolved) dynamic path, predicts
// branches, and routes instructions through the separator into per-core
// instruction queues; one to three `OoOCore`s; the LDQ/SDQ/SCQ
// architectural FIFOs; the shared L1D/L2/DRAM hierarchy; and the CMP fork
// engine that launches CMAS slices when trigger instructions are fetched.
//
// Timing is cycle-by-cycle and lock-stepped across cores, so all cache
// accesses — including CMP prefetches — interleave in true global time
// order.  Functional behaviour is pre-resolved by the dynamic trace
// (DESIGN.md §6), which the caller obtains from sim::Functional.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "isa/program.hpp"
#include "machine/config.hpp"
#include "machine/result.hpp"
#include "mem/memory_system.hpp"
#include "sim/functional.hpp"
#include "uarch/branch_predictor.hpp"
#include "uarch/core.hpp"
#include "uarch/timed_fifo.hpp"

namespace hidisc::machine {

class Machine {
 public:
  // `prog` must outlive the machine and must be the binary matching the
  // preset (separated for CP+AP / HiDISC — see uses_separated_binary).
  // `trace` is the dynamic trace of exactly that binary.
  Machine(const isa::Program& prog, const sim::Trace& trace, Preset preset,
          const MachineConfig& cfg = {});
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Runs to completion and returns the collected statistics.
  // Throws std::runtime_error if the machine stops making progress.
  [[nodiscard]] Result run();

 private:
  struct CmpContext {
    bool active = false;
    std::int16_t group = -1;
    std::size_t scan_pos = 0;    // next trace index to scan for slice ops
    int targets_left = 0;
  };

  void fetch(std::uint64_t now);
  void pump_cmp(std::uint64_t now);
  void fork_cmas(std::int16_t group, std::size_t fetch_pos);
  [[nodiscard]] uarch::OoOCore& route(const isa::Instruction& inst);
  [[nodiscard]] bool done() const;
  [[nodiscard]] Result collect(std::uint64_t cycles) const;

  const isa::Program& prog_;
  const sim::Trace& trace_;
  Preset preset_;
  MachineConfig cfg_;

  mem::MemorySystem memsys_;
  uarch::BimodalPredictor predictor_;
  uarch::TimedFifo ldq_;
  uarch::TimedFifo sdq_;
  uarch::TimedFifo scq_;

  // Core roster: main (superscalar-style) OR cp+ap, plus optional cmp.
  std::unique_ptr<uarch::OoOCore> main_;
  std::unique_ptr<uarch::OoOCore> cp_;
  std::unique_ptr<uarch::OoOCore> ap_;
  std::unique_ptr<uarch::OoOCore> cmp_;

  // Front-end state.
  std::size_t fetch_pos_ = 0;
  bool fetch_blocked_ = false;
  std::int64_t pending_branch_pos_ = -1;
  std::uint64_t fetch_resume_cycle_ = 0;
  std::uint64_t last_fetch_block_ = ~0ull;  // I-cache model

  // CMP fork engine state.
  std::vector<CmpContext> contexts_;
  std::vector<std::size_t> group_next_scan_;
  std::vector<std::uint64_t> group_reprobe_;  // adaptive-range counters
  // Groups whose slice consumes its own loads (pointer chases): their
  // instances must chain — jumping ahead would let the trace oracle skip a
  // serial dependence no real CMP could skip.
  std::vector<bool> group_serial_;

  // Dynamic prefetch-distance control (paper §6 future work).
  void adapt_distance(std::uint64_t now);
  std::int64_t lookahead_ = 0;  // current fork distance
  std::uint64_t next_adapt_cycle_ = 0;
  std::uint64_t adapt_last_useful_ = 0;
  std::uint64_t adapt_last_late_ = 0;
  std::uint64_t adapt_last_issued_ = 0;

  // Stats.
  std::uint64_t fetch_stall_branch_cycles_ = 0;
  std::uint64_t fetch_stall_queue_full_ = 0;
  std::uint64_t cmas_forks_ = 0;
  std::uint64_t cmas_forks_dropped_ = 0;
  std::uint64_t cmas_forks_suppressed_ = 0;
  std::uint64_t cmas_uops_ = 0;
  std::uint64_t distance_adaptations_ = 0;
};

// Convenience wrapper: trace `prog` functionally, then run the machine.
[[nodiscard]] Result run_machine(const isa::Program& prog, Preset preset,
                                 const MachineConfig& cfg = {});

// Runs a preset against a compilation, choosing the right binary.
// Pre-computed traces may be supplied to amortize across presets.
[[nodiscard]] Result run_machine(const isa::Program& prog,
                                 const sim::Trace& trace, Preset preset,
                                 const MachineConfig& cfg = {});

}  // namespace hidisc::machine
