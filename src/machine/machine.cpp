#include "machine/machine.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "uarch/event.hpp"

namespace hidisc::machine {

using isa::Opcode;
using isa::Stream;
using uarch::DynOp;
using uarch::OoOCore;

namespace {

// Trace entries a CMP context may scan per cycle while hunting for its
// slice's instructions; models the CMP front end's slice-fetch rate.
constexpr std::size_t kCmpScanBudget = 64;

// Floor of stalled event steps before the watchdog may fire.  Keeps the
// deadlock net while making it immune to long legal fast-forwards: a
// single skip over N idle cycles is one step, not N.
constexpr std::uint64_t kWatchdogMinSteps = 64;

// HIDISC_LOCKSTEP=1 shadows every event-skip run with a lock-stepped run
// of the same inputs and asserts bit-identical Results.
bool lockstep_verify_requested() {
  const char* v = std::getenv("HIDISC_LOCKSTEP");
  return v != nullptr && v[0] == '1' && v[1] == '\0';
}

std::int16_t num_cmas_groups(const isa::Program& prog) {
  std::int16_t n = 0;
  for (const auto& inst : prog.code)
    if (inst.ann.in_cmas)
      n = std::max(n, static_cast<std::int16_t>(inst.ann.cmas_group + 1));
  return n;
}

}  // namespace

Machine::Machine(const isa::Program& prog, const sim::Trace& trace,
                 Preset preset, const MachineConfig& cfg)
    : prog_(prog),
      trace_(trace),
      preset_(preset),
      cfg_(cfg),
      optable_(prog),
      memsys_(cfg.mem),
      predictor_(cfg.predictor_table, cfg.btb_size, 8,
                 cfg.predictor_kind),
      ldq_("LDQ", cfg.ldq_capacity),
      sdq_("SDQ", cfg.sdq_capacity),
      scq_("SCQ", cfg.scq_capacity),
      recorder_(cfg.flight_recorder_depth) {
  const OoOCore::Queues queues{&ldq_, &sdq_, &scq_};
  switch (preset_) {
    case Preset::Superscalar:
      main_ = std::make_unique<OoOCore>(cfg_.superscalar, &memsys_, queues, &optable_);
      break;
    case Preset::CPAP:
      cp_ = std::make_unique<OoOCore>(cfg_.cp, &memsys_, queues, &optable_);
      ap_ = std::make_unique<OoOCore>(cfg_.ap, &memsys_, queues, &optable_);
      break;
    case Preset::CPCMP:
      main_ = std::make_unique<OoOCore>(cfg_.superscalar, &memsys_, queues, &optable_);
      cmp_ = std::make_unique<OoOCore>(cfg_.cmp, &memsys_, queues, &optable_);
      break;
    case Preset::HiDISC:
      cp_ = std::make_unique<OoOCore>(cfg_.cp, &memsys_, queues, &optable_);
      ap_ = std::make_unique<OoOCore>(cfg_.ap, &memsys_, queues, &optable_);
      cmp_ = std::make_unique<OoOCore>(cfg_.cmp, &memsys_, queues, &optable_);
      break;
  }
  if (cmp_) {
    contexts_.resize(static_cast<std::size_t>(cfg_.cmp_contexts));
    const auto ngroups = static_cast<std::size_t>(num_cmas_groups(prog_));
    group_next_scan_.assign(ngroups, 0);
    group_reprobe_.assign(ngroups, 0);
    group_serial_.assign(ngroups, false);
    for (const auto& inst : prog_.code)
      if (inst.ann.in_cmas && inst.ann.cmas_value_live)
        group_serial_[inst.ann.cmas_group] = true;
  }
  lookahead_ = cfg_.cmp_fork_lookahead;
  next_adapt_cycle_ = cfg_.cmp_adapt_interval;
  // Only an event-skip run queries outstanding fills; don't make the
  // lock-stepped reference pay for tracking them.
  memsys_.set_event_tracking(cfg_.scheduler == SchedulerKind::EventSkip);
}

// Hill-climbing control of the fork distance (paper §6: "the prefetching
// distance should be selected dynamically ... depending on the previous
// prefetching history").  Goodness of the last window = timely prefetch
// hits minus late (in-flight) ones; when a step made things worse, the
// direction flips.
void Machine::adapt_distance(std::uint64_t now) {
  if (!cfg_.cmp_dynamic_distance || cmp_ == nullptr ||
      now < next_adapt_cycle_)
    return;
  next_adapt_cycle_ = now + cfg_.cmp_adapt_interval;

  const auto& l1 = memsys_.l1().stats();
  const auto useful = l1.useful_prefetches - adapt_last_useful_;
  const auto late = l1.late_prefetch_hits - adapt_last_late_;
  const auto issued = l1.prefetches - adapt_last_issued_;
  adapt_last_useful_ = l1.useful_prefetches;
  adapt_last_late_ = l1.late_prefetch_hits;
  adapt_last_issued_ = l1.prefetches;
  if (issued == 0) return;  // no prefetch activity to learn from

  // Direct signal control: a late-heavy window means the fork distance is
  // too short (fills still in flight when the AP arrives); a window whose
  // prefetches mostly go unconsumed means it is too long (lines go stale
  // or get evicted before use).  Otherwise hold.
  const auto consumed = useful + late;
  const bool too_short = late * 2 > consumed && consumed > 0;
  const bool too_long =
      consumed * 2 < issued;  // under half of issued lines get used
  const std::int64_t old = lookahead_;
  if (too_short)
    lookahead_ += lookahead_ / 2;
  else if (too_long)
    lookahead_ -= lookahead_ / 3;
  lookahead_ = std::clamp(lookahead_, cfg_.cmp_lookahead_min,
                          cfg_.cmp_lookahead_max);
  if (lookahead_ != old) ++distance_adaptations_;
}

Machine::~Machine() = default;

OoOCore& Machine::route(const isa::Instruction& inst) {
  if (main_) return *main_;
  return inst.ann.stream == Stream::Compute ? *cp_ : *ap_;
}

bool Machine::done() const {
  if (fetch_pos_ < trace_.size()) return false;
  for (const auto* core : {main_.get(), cp_.get(), ap_.get(), cmp_.get()})
    if (core != nullptr && !core->drained()) return false;
  for (const auto& ctx : contexts_)
    if (ctx.active) return false;
  return true;
}

void Machine::fetch(std::uint64_t now) {
  if (fetch_blocked_) {
    if (pending_branch_pos_ >= 0 || now < fetch_resume_cycle_) {
      ++fetch_stall_branch_cycles_;
      return;
    }
    fetch_blocked_ = false;
  }
  for (int fetched = 0; fetched < cfg_.fetch_width; ++fetched) {
    if (fetch_pos_ >= trace_.size()) return;
    const sim::TraceEntry& e = trace_[fetch_pos_];
    const isa::Instruction& inst = prog_.code[e.static_idx];

    // Instruction-cache model: a fetch-block miss blocks the front end for
    // the fill latency.
    if (cfg_.model_icache) {
      const std::uint64_t iaddr =
          isa::kTextBase +
          static_cast<std::uint64_t>(e.static_idx) * isa::kInstrBytes;
      const std::uint64_t block =
          iaddr / static_cast<std::uint64_t>(cfg_.mem.l1i.block_bytes);
      if (block != last_fetch_block_) {
        last_fetch_block_ = block;
        const auto res = memsys_.fetch_access(iaddr, now);
        if (res.latency > cfg_.mem.l1i.hit_latency) {
          fetch_blocked_ = true;
          pending_branch_pos_ = -1;
          fetch_resume_cycle_ = now + static_cast<std::uint64_t>(res.latency);
          return;
        }
      }
    }

    OoOCore& core = route(inst);
    if (core.input_full()) {
      ++fetch_stall_queue_full_;
      return;
    }

    DynOp op;
    op.trace_pos = static_cast<std::int64_t>(fetch_pos_);
    op.static_idx = e.static_idx;
    op.inst = &inst;
    op.addr = e.addr;
    op.next = e.next;
    op.count_commit = true;

    bool taken = false;
    if (isa::is_control(inst.op) && inst.op != Opcode::HALT) {
      taken = e.next != e.static_idx + 1;
      switch (inst.op) {
        case Opcode::J:
          // Direct target, resolved at decode: no redirect cost modelled.
          break;
        case Opcode::JAL:
          predictor_.push_ras(e.static_idx + 1);
          break;
        case Opcode::JALR:
          predictor_.push_ras(e.static_idx + 1);
          [[fallthrough]];
        case Opcode::JR: {
          const std::int32_t predicted =
              inst.op == Opcode::JR ? predictor_.pop_ras() : -1;
          op.mispredicted = predicted != e.next;
          break;
        }
        default:  // conditional branches and BEOD
          op.mispredicted = predictor_.update(e.static_idx, taken, e.next);
          break;
      }
    }

    const bool ok = core.enqueue(op);
    (void)ok;  // input_full was checked above
    ++fetch_pos_;

    if (cmp_ && inst.ann.is_trigger)
      fork_cmas(inst.ann.trigger_group, fetch_pos_);

    if (op.mispredicted) {
      pending_branch_pos_ = op.trace_pos;
      fetch_blocked_ = true;
      return;
    }
    if (taken) return;  // fetch discontinuity ends the fetch group
  }
}

void Machine::fork_cmas(std::int16_t group, std::size_t fetch_pos) {
  if (group < 0 ||
      static_cast<std::size_t>(group) >= group_next_scan_.size())
    return;
  // Runtime range control (paper §6): a group whose prefetched lines are
  // mostly evicted unused gets suppressed, with occasional re-probes so a
  // phase change can reactivate it.
  if (cfg_.cmp_adaptive_range) {
    const auto& groups = memsys_.l1().prefetch_group_stats();
    const auto it = groups.find(group);
    if (it != groups.end()) {
      // Judge only decided lines: demand-used vs evicted-before-use.
      // Still-resident prefetches are pending, not evidence.
      const auto decided = it->second.used + it->second.evicted_unused;
      if (decided >= cfg_.cmp_range_min_samples) {
        const double use = static_cast<double>(it->second.used) /
                           static_cast<double>(decided);
        if (use < cfg_.cmp_range_min_use &&
            ++group_reprobe_[group] % cfg_.cmp_range_reprobe != 0) {
          ++cmas_forks_suppressed_;
          return;
        }
      }
    }
  }

  CmpContext* free_ctx = nullptr;
  for (auto& ctx : contexts_) {
    if (ctx.active && ctx.group == group) {
      ++cmas_forks_dropped_;  // slice already running: chained continuation
      return;
    }
    if (!ctx.active && free_ctx == nullptr) free_ctx = &ctx;
  }
  if (free_ctx == nullptr) {
    ++cmas_forks_dropped_;
    return;
  }
  free_ctx->active = true;
  free_ctx->group = group;
  // Chaining resumes where the previous instance ended; the paper-mode
  // fork hunts near the trigger distance, skipping anything the CMP
  // missed while it was busy.  Serial (pointer-chase) slices always
  // chain: a real CMP cannot leap over its own dependence chain.
  const bool chain = cfg_.cmp_chaining || group_serial_[group];
  const std::size_t anchor =
      chain ? fetch_pos : fetch_pos + static_cast<std::size_t>(lookahead_);
  free_ctx->scan_pos = std::max(anchor, group_next_scan_[group]);
  free_ctx->targets_left = cfg_.cmp_targets_per_fork;
  ++cmas_forks_;
}

bool Machine::pump_cmp(std::uint64_t now) {
  (void)now;
  bool progress = false;
  if (!cmp_) return progress;
  for (auto& ctx : contexts_) {
    if (!ctx.active) continue;
    std::size_t scanned = 0;
    while (scanned < kCmpScanBudget && !cmp_->input_full()) {
      if (ctx.scan_pos >= trace_.size()) {
        ctx.active = false;
        group_next_scan_[ctx.group] = ctx.scan_pos;
        progress = true;
        break;
      }
      // Slip control: the CMP may not run further ahead of the front end
      // than the SCQ-style bound allows.
      if (ctx.scan_pos >= fetch_pos_ + static_cast<std::size_t>(
                                           cfg_.cmp_max_runahead))
        break;
      const sim::TraceEntry& e = trace_[ctx.scan_pos];
      const isa::Instruction& inst = prog_.code[e.static_idx];
      ++ctx.scan_pos;
      ++scanned;
      progress = true;  // the scan cursor moved: front-end state changed
      if (!inst.ann.in_cmas || inst.ann.cmas_group != ctx.group) continue;

      DynOp op;
      op.trace_pos = static_cast<std::int64_t>(ctx.scan_pos) - 1;
      op.static_idx = e.static_idx;
      op.inst = &inst;
      op.addr = e.addr;
      op.next = e.next;
      op.count_commit = false;
      if (!cmp_->enqueue(op)) break;  // raced with input_full: retry later
      ++cmas_uops_;

      if (isa::is_load(inst.op) && --ctx.targets_left <= 0) {
        ctx.active = false;
        group_next_scan_[ctx.group] = ctx.scan_pos;
        break;
      }
    }
  }
  return progress;
}

Result Machine::run() {
  if (cfg_.scheduler == SchedulerKind::EventSkip &&
      lockstep_verify_requested()) {
    MachineConfig ref_cfg = cfg_;
    ref_cfg.scheduler = SchedulerKind::Lockstep;
    Machine ref(prog_, trace_, preset_, ref_cfg);
    const Result want = ref.run_scheduler();
    const Result got = run_scheduler();
    if (!(want == got))
      throw std::logic_error(
          std::string("HIDISC_LOCKSTEP: scheduler divergence on preset ") +
          preset_name(preset_) + ": lockstep {cycles " +
          std::to_string(want.cycles) + ", instructions " +
          std::to_string(want.instructions) + "} vs event-skip {cycles " +
          std::to_string(got.cycles) + ", instructions " +
          std::to_string(got.instructions) + "}" +
          (want.cycles == got.cycles && want.instructions == got.instructions
               ? " (headline numbers match; a stall/cache counter differs)"
               : ""));
    return got;
  }
  return run_scheduler();
}

// Branch resolution unblocks the front end.
bool Machine::resolve_branches() {
  bool progress = false;
  for (auto* core : {main_.get(), cp_.get(), ap_.get()}) {
    if (core == nullptr || !core->has_resolved()) continue;
    for (const auto& rb : core->take_resolved_branches()) {
      if (rb.trace_pos == pending_branch_pos_) {
        pending_branch_pos_ = -1;
        fetch_resume_cycle_ =
            rb.resolve_cycle +
            static_cast<std::uint64_t>(cfg_.redirect_penalty);
        progress = true;
      }
    }
  }
  return progress;
}

// Runs fetch() and reports whether it changed any front-end state.  Pure
// stall-counter increments do not count: those are exactly what the
// event-skip scheduler replays in bulk when it fast-forwards.
bool Machine::fetch_step(std::uint64_t now) {
  const auto pos = fetch_pos_;
  const bool blocked = fetch_blocked_;
  const auto pending = pending_branch_pos_;
  const auto resume = fetch_resume_cycle_;
  const auto block = last_fetch_block_;
  fetch(now);
  return fetch_pos_ != pos || fetch_blocked_ != blocked ||
         pending_branch_pos_ != pending || fetch_resume_cycle_ != resume ||
         last_fetch_block_ != block;
}

// One simulated cycle, identical in ordering to the seed scheduler's loop
// body: cores tick (commit -> pushes -> issue -> dispatch), resolved
// branches unblock fetch, the front end fetches and routes, the CMP fork
// engine scans, the dynamic fork distance adapts.  Returns true when any
// machine state changed; a false return means this exact cycle would
// repeat forever absent a timed event.
bool Machine::step(std::uint64_t now) {
  bool progress = false;
  for (auto* core : {main_.get(), cp_.get(), ap_.get(), cmp_.get()}) {
    if (core == nullptr) continue;
    if (core->drained()) {
      // Quiescent core: empty window, empty input queue.  A tick would be
      // a guaranteed no-op, so don't pay for it.
      ++sched_.quiescent_core_ticks;
      continue;
    }
    progress |= core->tick(now);
  }
  progress |= resolve_branches();
  progress |= fetch_step(now);
  progress |= pump_cmp(now);
  adapt_distance(now);
  return progress;
}

// Earliest cycle strictly after `now` at which anything in the machine
// could change state: per-core completions, architectural-FIFO heads
// becoming consumable, the front end's fetch-resume point, the CMP adapt
// tick, and outstanding memory-system fills.  kNoEvent means the machine
// is wedged for good.
std::uint64_t Machine::next_event_after(std::uint64_t now) {
  std::uint64_t ev = uarch::kNoEvent;
  for (const auto* core : {main_.get(), cp_.get(), ap_.get(), cmp_.get()})
    if (core != nullptr) ev = std::min(ev, core->next_event_cycle(now));
  for (const auto* q : {&ldq_, &sdq_, &scq_})
    ev = std::min(ev, q->next_ready_event(now));
  if (fetch_blocked_ && pending_branch_pos_ < 0 && fetch_resume_cycle_ > now)
    ev = std::min(ev, fetch_resume_cycle_);
  if (cmp_ && cfg_.cmp_dynamic_distance && next_adapt_cycle_ > now)
    ev = std::min(ev, next_adapt_cycle_);
  ev = std::min(ev, memsys_.next_fill_complete(now));
  return ev;
}

// Replays the per-cycle stall counters the skipped cycles would have
// accrued under lockstep.  Only counters can accrue there — by
// construction nothing else could change — and each one's gating
// condition is frozen across the whole skipped stretch.
void Machine::account_skip(std::uint64_t now, std::uint64_t delta) {
  for (auto* core : {main_.get(), cp_.get(), ap_.get(), cmp_.get()})
    if (core != nullptr) core->account_idle_cycles(now, delta);
  if (fetch_blocked_) {
    // Blocked on a pending branch or a timed resume point; the skip never
    // crosses the resume cycle.
    fetch_stall_branch_cycles_ += delta;
  } else if (fetch_pos_ < trace_.size()) {
    // Unblocked yet frozen: the next instruction's core must have a full
    // input queue (an I-cache probe would have changed state).
    const sim::TraceEntry& e = trace_[fetch_pos_];
    if (route(prog_.code[e.static_idx]).input_full())
      fetch_stall_queue_full_ += delta;
  }
}

// Samples the machine's observable occupancies into one flight-recorder
// frame.  Must stay cheap: this runs on every event step.
diag::StepRecord Machine::make_record(std::uint64_t now, diag::StepKind kind,
                                      std::uint64_t arg) const {
  diag::StepRecord r;
  r.cycle = now;
  r.kind = kind;
  r.arg = arg;
  r.fetch_pos = fetch_pos_;
  r.ldq = static_cast<std::uint16_t>(ldq_.size());
  r.sdq = static_cast<std::uint16_t>(sdq_.size());
  r.scq = static_cast<std::uint16_t>(scq_.size());
  int i = 0;
  for (const auto* core : {main_.get(), cp_.get(), ap_.get(), cmp_.get()}) {
    if (core != nullptr)
      r.window[i] = static_cast<std::uint16_t>(core->window_occupancy());
    ++i;
  }
  return r;
}

diag::DeadlockReport Machine::build_deadlock_report(
    std::uint64_t now, std::uint64_t last_progress_cycle,
    bool no_pending_event) const {
  diag::DeadlockReport rep;
  rep.preset = preset_name(preset_);
  rep.scheduler = cfg_.scheduler == SchedulerKind::Lockstep ? "Lockstep"
                                                            : "EventSkip";
  rep.now = now;
  rep.last_progress_cycle = last_progress_cycle;
  rep.watchdog_cycles = cfg_.watchdog_cycles;
  rep.no_pending_event = no_pending_event;
  rep.fetch_pos = fetch_pos_;
  rep.trace_size = trace_.size();
  rep.fetch_blocked = fetch_blocked_;
  rep.pending_branch_pos = pending_branch_pos_;
  for (const auto& ctx : contexts_)
    if (ctx.active) ++rep.cmp_contexts_active;

  for (const auto* q : {&ldq_, &sdq_, &scq_}) {
    diag::QueueSnapshot qs;
    qs.name = q->name();
    qs.size = q->size();
    qs.capacity = q->capacity();
    qs.pushes = q->stats().pushes;
    qs.pops = q->stats().pops;
    if (const auto* head = q->head(); head != nullptr) {
      qs.has_head = true;
      qs.head_ready = head->ready;
      qs.head_producer = head->producer_pos;
      qs.head_eod = head->eod;
    }
    rep.queues.push_back(std::move(qs));
  }

  for (const auto* core : {main_.get(), cp_.get(), ap_.get(), cmp_.get()}) {
    if (core == nullptr) continue;
    diag::CoreSnapshot cs;
    cs.name = core->config().name;
    cs.drained = core->drained();
    cs.window = core->window_occupancy();
    cs.window_capacity = static_cast<std::size_t>(core->config().window);
    cs.input = core->input_occupancy();
    cs.input_capacity = static_cast<std::size_t>(core->config().input_queue);
    const auto probe = core->probe_oldest_stall(now);
    if (probe.valid) {
      cs.has_stall = true;
      cs.why = probe.why;
      cs.op = probe.op;
      cs.static_idx = probe.static_idx;
      cs.trace_pos = probe.trace_pos;
      if (probe.queue != nullptr) cs.queue = probe.queue->name();
    }
    rep.cores.push_back(std::move(cs));
  }

  rep.recent = recorder_.snapshot();
  diag::classify(rep);
  return rep;
}

void Machine::throw_deadlock(std::uint64_t now,
                             std::uint64_t last_progress_cycle,
                             bool no_pending_event) {
  recorder_.record(make_record(now, diag::StepKind::Deadlock, 0));
  throw diag::DeadlockError(
      build_deadlock_report(now, last_progress_cycle, no_pending_event));
}

Result Machine::run_scheduler() {
  const bool lockstep = cfg_.scheduler == SchedulerKind::Lockstep;
  std::uint64_t now = 0;
  std::uint64_t last_progress_cycle = 0;
  std::uint64_t no_progress_steps = 0;

  while (!done()) {
    const bool was_blocked = fetch_blocked_;
    const bool progress = step(now);
    ++sched_.event_steps;
    recorder_.record(make_record(
        now, progress ? diag::StepKind::Progress : diag::StepKind::Stall, 0));
    if (fetch_blocked_ != was_blocked)
      recorder_.record(make_record(now,
                                   fetch_blocked_ ? diag::StepKind::FetchBlock
                                                  : diag::StepKind::FetchResume,
                                   fetch_pos_));

    if (progress) {
      last_progress_cycle = now;
      no_progress_steps = 0;
      ++now;
      continue;
    }
    ++no_progress_steps;
    ++sched_.stall_steps;

    std::uint64_t next = now + 1;
    if (!lockstep) {
      const std::uint64_t ev = next_event_after(now);
      // No self-scheduled event anywhere and no progress: the state can
      // never change again.  Lockstep would spin the watchdog out; report
      // the same deadlock immediately.
      if (ev == uarch::kNoEvent)
        throw_deadlock(now, last_progress_cycle, /*no_pending_event=*/true);
      if (ev > now + 1) {
        const std::uint64_t delta = ev - now - 1;
        account_skip(now, delta);
        sched_.skipped_cycles += delta;
        sched_.max_skip = std::max(sched_.max_skip, delta);
        ++sched_.skips;
        recorder_.record(make_record(now, diag::StepKind::Skip, delta));
        next = ev;
      }
    }

    // Watchdog over stalled *event steps*, not raw cycle deltas: a legal
    // fast-forward of millions of cycles is a single step and must not
    // trip it, while a genuine livelock accumulates stalled steps fast.
    if (no_progress_steps > kWatchdogMinSteps &&
        now - last_progress_cycle > cfg_.watchdog_cycles)
      throw_deadlock(now, last_progress_cycle, /*no_pending_event=*/false);

    now = next;
  }
  return collect(now);
}

Result Machine::collect(std::uint64_t cycles) const {
  Result r;
  r.cycles = cycles;
  r.l1 = memsys_.l1().stats();
  r.l2 = memsys_.l2().stats();
  r.pf = memsys_.hw_prefetch_stats();
  r.pf_accuracy = r.pf.accuracy();
  r.pf_lateness = r.pf.lateness();
  // Coverage: timely prefetch hits over the misses there would have been
  // without them (the remaining demand misses plus the hits prefetching
  // converted).
  const std::uint64_t timely = r.pf.timely();
  const std::uint64_t denom = timely + r.l1.demand_misses();
  r.pf_coverage =
      denom == 0 ? 0.0
                 : static_cast<double>(timely) / static_cast<double>(denom);
  r.branch = predictor_.stats();
  if (main_) {
    r.has_main = true;
    r.main = main_->stats();
    r.instructions += r.main.committed;
  }
  if (cp_) {
    r.has_cp = true;
    r.cp = cp_->stats();
    r.instructions += r.cp.committed;
  }
  if (ap_) {
    r.has_ap = true;
    r.ap = ap_->stats();
    r.instructions += r.ap.committed;
  }
  if (cmp_) {
    r.has_cmp = true;
    r.cmp = cmp_->stats();
  }
  r.ipc = cycles == 0 ? 0.0
                      : static_cast<double>(r.instructions) /
                            static_cast<double>(cycles);
  r.ldq = ldq_.stats();
  r.sdq = sdq_.stats();
  r.scq = scq_.stats();
  r.fetch_stall_branch_cycles = fetch_stall_branch_cycles_;
  r.fetch_stall_queue_full = fetch_stall_queue_full_;
  r.cmas_forks = cmas_forks_;
  r.cmas_forks_dropped = cmas_forks_dropped_;
  r.cmas_forks_suppressed = cmas_forks_suppressed_;
  r.cmas_uops = cmas_uops_;
  r.distance_adaptations = distance_adaptations_;
  r.final_fork_lookahead = lookahead_;
  return r;
}

Result run_machine(const isa::Program& prog, const sim::Trace& trace,
                   Preset preset, const MachineConfig& cfg) {
  Machine m(prog, trace, preset, cfg);
  return m.run();
}

Result run_machine(const isa::Program& prog, Preset preset,
                   const MachineConfig& cfg) {
  sim::Functional func(prog);
  const sim::Trace trace = func.run_trace();
  return run_machine(prog, trace, preset, cfg);
}

}  // namespace hidisc::machine
