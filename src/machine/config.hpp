// Machine configurations for the four architectures the paper evaluates
// (§5.3): baseline superscalar, CP+AP (conventional access/execute
// decoupling), CP+CMP (speculative-precomputation-style prefetching), and
// the complete HiDISC.
//
// Core defaults reproduce Table 1: bimodal 2048-entry predictor, 8-wide
// issue/commit, scheduling windows of 64 (superscalar / AP) and 16 (CP),
// 4 integer ALUs + 1 MUL/DIV everywhere, 4 FP adders + 1 FP MUL/DIV on the
// superscalar and CP, 2 memory ports per memory-capable processor,
// 32-entry load/store queues, L1D 256x32Bx4 (1 cycle), unified L2
// 1024x64Bx4 (12 cycles), 120-cycle DRAM.
#pragma once

#include <cstdint>
#include <string>

#include "mem/memory_system.hpp"
#include "uarch/branch_predictor.hpp"
#include "uarch/core.hpp"

namespace hidisc::machine {

enum class Preset : std::uint8_t { Superscalar, CPAP, CPCMP, HiDISC };

[[nodiscard]] constexpr const char* preset_name(Preset p) noexcept {
  switch (p) {
    case Preset::Superscalar: return "Superscalar";
    case Preset::CPAP: return "CP+AP";
    case Preset::CPCMP: return "CP+CMP";
    case Preset::HiDISC: return "HiDISC";
  }
  return "?";
}

// How the machine advances simulated time.
//
//   EventSkip — the default: cores report their next self-scheduled event
//     and the machine fast-forwards `now` across provably idle stretches
//     (all cores stalled behind L2/DRAM misses), replaying the skipped
//     per-cycle stall counters exactly.  Results are bit-identical with
//     Lockstep; set HIDISC_LOCKSTEP=1 to run both side by side and assert
//     that on every run.
//   Lockstep — tick every core at every cycle (the seed scheduler);
//     retained as the reference for equivalence checking.
enum class SchedulerKind : std::uint8_t { EventSkip, Lockstep };

// True when the preset consumes the stream-separated binary.
[[nodiscard]] constexpr bool uses_separated_binary(Preset p) noexcept {
  return p == Preset::CPAP || p == Preset::HiDISC;
}
[[nodiscard]] constexpr bool uses_cmp(Preset p) noexcept {
  return p == Preset::CPCMP || p == Preset::HiDISC;
}

struct MachineConfig {
  mem::MemConfig mem{};

  // Front end.
  int fetch_width = 8;
  int redirect_penalty = 3;   // cycles from branch resolution to refetch
  int predictor_table = 2048;
  int btb_size = 512;
  // Predictor flavour: the paper's Table 1 uses bimodal; gshare is an
  // ablation (bench_ablation_predictor).
  uarch::PredictorKind predictor_kind = uarch::PredictorKind::Bimodal;
  // Model instruction fetch through an L1I (SimpleScalar il1 geometry) and
  // the shared L2.  Off by default: the paper's Table 1 lists no I-cache
  // and the DIS kernels are loop-resident; enabling it charges cold-start
  // fetch misses.
  bool model_icache = false;

  // Architectural queues (paper: "32 entries load store queues").
  std::size_t ldq_capacity = 32;
  std::size_t sdq_capacity = 32;
  std::size_t scq_capacity = 16;

  // Cores.
  uarch::CoreConfig superscalar{
      .name = "SS", .window = 64, .issue_width = 8, .commit_width = 8,
      .dispatch_width = 8, .input_queue = 32, .lsq = 32,
      .int_alu = 4, .int_muldiv = 1, .fp_alu = 4, .fp_muldiv = 1,
      .mem_ports = 2, .has_lsu = true, .prefetch_only = false};
  // Table 1 gives "issue/commit width 8" for the machine; each HiDISC
  // processor keeps the full width (they are separate pipelines with their
  // own Table-1 functional units).
  uarch::CoreConfig cp{
      .name = "CP", .window = 16, .issue_width = 8, .commit_width = 8,
      .dispatch_width = 8, .input_queue = 64, .lsq = 0,
      .int_alu = 4, .int_muldiv = 1, .fp_alu = 4, .fp_muldiv = 1,
      .mem_ports = 0, .has_lsu = false, .prefetch_only = false};
  uarch::CoreConfig ap{
      .name = "AP", .window = 64, .issue_width = 8, .commit_width = 8,
      .dispatch_width = 8, .input_queue = 64, .lsq = 32,
      .int_alu = 4, .int_muldiv = 1, .fp_alu = 0, .fp_muldiv = 0,
      .mem_ports = 2, .has_lsu = true, .prefetch_only = false};
  uarch::CoreConfig cmp{
      .name = "CMP", .window = 32, .issue_width = 4, .commit_width = 4,
      .dispatch_width = 4, .input_queue = 64, .lsq = 16,
      .int_alu = 4, .int_muldiv = 1, .fp_alu = 0, .fp_muldiv = 0,
      .mem_ports = 2, .has_lsu = true, .prefetch_only = true};

  // CMP fork engine.
  int cmp_contexts = 4;
  int cmp_targets_per_fork = 4;  // slice instance length, in load micro-ops
  // Where a fork starts hunting for its slice instance: the paper forks
  // the slice for the miss ~512 dynamic instructions ahead of the trigger,
  // so the scan begins this far beyond the current fetch position.  When
  // the CMP falls behind, the next fork jumps forward and the skipped
  // instances stay uncovered — the partial miss coverage of Figure 9.
  std::int64_t cmp_fork_lookahead = 384;
  // Future-work mode (paper §6, "chaining trigger" of Collins et al.):
  // each fork resumes exactly where the previous instance ended, giving
  // gap-free coverage.  Quantified in bench_ablation_trigger.
  bool cmp_chaining = false;
  // Future-work mode (paper §6: "the prefetching distance should be
  // selected dynamically"): hill-climb cmp_fork_lookahead at runtime from
  // the timely-vs-late prefetch balance.  Quantified in
  // bench_ablation_trigger.
  bool cmp_dynamic_distance = false;
  // Future-work mode (paper §6: "not every probable cache miss instruction
  // would be triggered as CMAS ... depending on the previous prefetching
  // history, we can choose only the necessary prefetching"): suppress
  // forks for groups whose prefetched lines mostly go unused, re-probing
  // occasionally.
  bool cmp_adaptive_range = false;
  std::uint64_t cmp_range_min_samples = 64;  // installs before judging
  double cmp_range_min_use = 0.25;           // used/installed to stay active
  int cmp_range_reprobe = 16;                // let 1 in N suppressed through
  std::int64_t cmp_lookahead_min = 64;
  std::int64_t cmp_lookahead_max = 4096;
  std::uint64_t cmp_adapt_interval = 4096;  // cycles between adjustments
  // Slip-control bound (the paper's SCQ): how far, in dynamic trace
  // entries, the CMP may run ahead of the front end.  Too small and
  // prefetches are late; too large and the CMP's own prefetches evict each
  // other from L1 before the AP arrives (see bench_ablation_queues).
  std::int64_t cmp_max_runahead = 1024;

  // Abort threshold for a machine making no forward progress (model bug).
  // Counted over stalled *event steps*, not raw cycle deltas, so a legal
  // multi-thousand-cycle fast-forward never trips it.
  std::uint64_t watchdog_cycles = 1'000'000;

  // Flight-recorder depth: how many recent scheduler transitions the
  // always-on ring buffer retains for the DeadlockReport (rounded up to a
  // power of two).  Recording is one struct store per event step; the
  // perf-smoke gate verifies the overhead stays inside its band.
  std::size_t flight_recorder_depth = 64;

  // Time-advance strategy; excluded from lab content keys because both
  // schedulers produce bit-identical results.
  SchedulerKind scheduler = SchedulerKind::EventSkip;
};

}  // namespace hidisc::machine
