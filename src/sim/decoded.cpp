#include "sim/decoded.hpp"

namespace hidisc::sim {

namespace {

using isa::Opcode;

// Register-commit class of each opcode, mirroring the reference
// interpreter's commit rule exactly: an int result only lands when the
// destination operand is an *int* register other than r0; an fp result only
// lands when the destination is an *fp* register (f0 is writable).
enum class Commit { None, Int, Fp };

Commit commit_class(Opcode op) {
  switch (op) {
    case Opcode::ADD: case Opcode::SUB: case Opcode::MUL: case Opcode::DIV:
    case Opcode::REM: case Opcode::AND: case Opcode::OR: case Opcode::XOR:
    case Opcode::NOR: case Opcode::SLL: case Opcode::SRL: case Opcode::SRA:
    case Opcode::SLT: case Opcode::SLTU: case Opcode::ADDI: case Opcode::ANDI:
    case Opcode::ORI: case Opcode::XORI: case Opcode::SLLI: case Opcode::SRLI:
    case Opcode::SRAI: case Opcode::SLTI: case Opcode::LUI:
    case Opcode::CVTFI: case Opcode::FEQ: case Opcode::FLT: case Opcode::FLE:
    case Opcode::LB: case Opcode::LBU: case Opcode::LH: case Opcode::LHU:
    case Opcode::LW: case Opcode::LWU: case Opcode::LD:
    case Opcode::JAL: case Opcode::JALR:
    case Opcode::POPLDQ: case Opcode::POPSDQ:
      return Commit::Int;
    case Opcode::FADD: case Opcode::FSUB: case Opcode::FMUL: case Opcode::FDIV:
    case Opcode::FSQRT: case Opcode::FMIN: case Opcode::FMAX: case Opcode::FNEG:
    case Opcode::FABS: case Opcode::FMOV: case Opcode::CVTIF: case Opcode::FLD:
    case Opcode::POPLDQF: case Opcode::POPSDQF:
      return Commit::Fp;
    default:
      return Commit::None;
  }
}

struct FusePair {
  Opcode first;
  Opcode second;
  std::uint8_t kind;
};

constexpr FusePair kFusePairs[] = {
    {Opcode::ADDI, Opcode::BNE, kFuseAddiBne},
    {Opcode::ADDI, Opcode::ADDI, kFuseAddiAddi},
    {Opcode::FMUL, Opcode::FADD, kFuseFmulFadd},
    {Opcode::ADD, Opcode::LD, kFuseAddLd},
    {Opcode::LD, Opcode::ADD, kFuseLdAdd},
    {Opcode::MUL, Opcode::ADD, kFuseMulAdd},
    {Opcode::SLLI, Opcode::ADD, kFuseSlliAdd},
    {Opcode::LD, Opcode::ADDI, kFuseLdAddi},
    {Opcode::LD, Opcode::BGE, kFuseLdBge},
    {Opcode::SLT, Opcode::BNE, kFuseSltBne},
    {Opcode::SLTI, Opcode::BNE, kFuseSltiBne},
    {Opcode::SLTU, Opcode::BNE, kFuseSltuBne},
    {Opcode::SLT, Opcode::BEQ, kFuseSltBeq},
    {Opcode::SLTI, Opcode::BEQ, kFuseSltiBeq},
};

DecodedOp decode_one(const isa::Instruction& inst) {
  DecodedOp d;
  const auto raw = static_cast<std::uint16_t>(inst.op);
  if (raw < static_cast<std::uint16_t>(Opcode::kCount)) {
    d.kind = static_cast<std::uint8_t>(raw);
  } else if (inst.op == Opcode::kCount) {
    d.kind = kExecInvalid;
  } else {
    // Out-of-range opcode byte: the reference switch matches no case, which
    // executes exactly like a NOP (no result, annotation pushes honoured).
    d.kind = kExecNOP;
  }
  d.src1 = inst.src1.idx;
  d.src2 = inst.src2.idx;
  d.imm = inst.op == Opcode::LUI ? (inst.imm << 16) : inst.imm;
  d.target = inst.target;
  switch (commit_class(inst.op)) {
    case Commit::Int:
      d.dst = (inst.dst.is_int() && inst.dst.idx != 0) ? inst.dst.idx
                                                       : kSinkReg;
      break;
    case Commit::Fp:
      d.dst = inst.dst.is_fp() ? inst.dst.idx : kSinkReg;
      break;
    case Commit::None:
      d.dst = kSinkReg;
      break;
  }
  if (inst.ann.push_ldq) d.flags |= kFlagPushLdq;
  if (inst.ann.push_sdq) d.flags |= kFlagPushSdq;
  return d;
}

}  // namespace

DecodedProgram decode_program(const isa::Program& prog, bool fuse) {
  DecodedProgram out;
  out.ops.reserve(prog.code.size());
  for (const isa::Instruction& inst : prog.code)
    out.ops.push_back(decode_one(inst));

  if (fuse) {
    // Rewrite the first slot of each matching fall-through pair.  Pairs may
    // chain (slot i fuses with i+1 while i+1 independently fuses with i+2):
    // the fused handler executes the second component from its own decoded
    // fields, never from its possibly-rewritten kind, and a jump landing on
    // i+1 simply runs that slot's own handler.
    for (std::size_t i = 0; i + 1 < prog.code.size(); ++i) {
      const Opcode a = prog.code[i].op;
      const Opcode b = prog.code[i + 1].op;
      for (const FusePair& p : kFusePairs) {
        if (p.first == a && p.second == b) {
          out.ops[i].kind = p.kind;
          ++out.stats.fused_sites;
          break;
        }
      }
    }
  }

  for (const DecodedOp& d : out.ops) ++out.stats.kind_count[d.kind];
  return out;
}

const char* exec_kind_name(std::uint8_t kind) noexcept {
  if (kind < static_cast<std::uint8_t>(Opcode::kCount))
    return isa::op_info(static_cast<Opcode>(kind)).name.data();
  switch (kind) {
    case kExecInvalid: return "invalid";
    case kFuseAddiAddi: return "fuse:addi+addi";
    case kFuseAddiBne: return "fuse:addi+bne";
    case kFuseFmulFadd: return "fuse:fmul+fadd";
    case kFuseAddLd: return "fuse:add+ld";
    case kFuseLdAdd: return "fuse:ld+add";
    case kFuseMulAdd: return "fuse:mul+add";
    case kFuseSlliAdd: return "fuse:slli+add";
    case kFuseLdAddi: return "fuse:ld+addi";
    case kFuseLdBge: return "fuse:ld+bge";
    case kFuseSltBne: return "fuse:slt+bne";
    case kFuseSltiBne: return "fuse:slti+bne";
    case kFuseSltuBne: return "fuse:sltu+bne";
    case kFuseSltBeq: return "fuse:slt+beq";
    case kFuseSltiBeq: return "fuse:slti+beq";
    default: return "?";
  }
}

}  // namespace hidisc::sim
