// Functional simulator driver and reference switch interpreter.
//
// run()/run_trace() execute through the threaded-code interpreter
// (decoded.hpp + interp.cpp); step() below IS the original giant-switch
// implementation, retained verbatim as the semantic reference oracle.  The
// two must stay byte-identical: HIDISC_FSIM_REF=1 shadow-replays every
// run()/run_trace() on a deep-copied snapshot through the reference path
// and compares traces, register files, queues, and the memory digest
// (docs/FUNCTIONAL.md).

#include "sim/functional.hpp"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/decoded.hpp"

namespace hidisc::sim {

using isa::Opcode;
using isa::RegKind;

Functional::Functional(const isa::Program& prog) : prog_(prog) {
  if (!prog.data.empty())
    mem_.write_bytes(prog.data_base, prog.data.data(), prog.data.size());
  iregs_[isa::kSp.idx] = static_cast<std::int64_t>(isa::kStackTop);
  iregs_[isa::kGp.idx] = static_cast<std::int64_t>(prog.data_base);
  pc_ = prog.entry;
}

bool Functional::ref_shadow_enabled() noexcept {
  // Mirrors lockstep_verify_requested() in machine.cpp.
  static const bool enabled = [] {
    const char* v = std::getenv("HIDISC_FSIM_REF");
    return v != nullptr && v[0] == '1' && v[1] == '\0';
  }();
  return enabled;
}

void Functional::ensure_decoded() {
  if (!decoded_)
    decoded_ = std::make_shared<const DecodedProgram>(decode_program(prog_));
}

const DecodedProgram& Functional::decoded_program() {
  ensure_decoded();
  return *decoded_;
}

namespace {

// Pre-size a trace buffer from the remaining step budget, capped so small
// kernels with a huge budget only reserve lazily committed address space.
std::size_t trace_reserve_hint(std::uint64_t max_steps, std::uint64_t done) {
  const std::uint64_t remaining = max_steps > done ? max_steps - done : 0;
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(remaining, Functional::kTraceReserveCap));
}

// Reserved-but-never-touched capacity is lazily committed address space, so
// shrinking a pre-sized buffer pays a full copy (plus page faults on the new
// allocation — measured at ~2× the entire emission cost) to release pages
// that were never resident.  Only shrink when the buffer out-grew its
// initial reserve: doubling growth leaves up to size/2 of *touched* slack,
// and trace artifacts are retained in the pipeline memo for the whole run.
void finish_trace(Trace& trace, std::size_t reserved) {
  if (trace.capacity() > reserved) trace.shrink_to_fit();
}

}  // namespace

void Functional::run(std::uint64_t max_steps) {
  if (!ref_shadow_enabled()) {
    exec_threaded<false>(max_steps, nullptr);
    return;
  }
  Functional ref(*this);
  bool ok = true;
  std::string err;
  try {
    exec_threaded<false>(max_steps, nullptr);
  } catch (const ExecError& e) {
    ok = false;
    err = e.what();
  }
  shadow_compare(ref, max_steps, nullptr, ok, err);
  if (!ok) throw ExecError(err);
}

Trace Functional::run_trace(std::uint64_t max_steps) {
  Trace trace;
  const std::size_t reserved = trace_reserve_hint(max_steps, icount_);
  trace.reserve(reserved);
  if (!ref_shadow_enabled()) {
    exec_threaded<true>(max_steps, &trace);
    finish_trace(trace, reserved);
    return trace;
  }
  Functional ref(*this);
  bool ok = true;
  std::string err;
  try {
    exec_threaded<true>(max_steps, &trace);
  } catch (const ExecError& e) {
    ok = false;
    err = e.what();
  }
  shadow_compare(ref, max_steps, &trace, ok, err);
  if (!ok) throw ExecError(err);
  finish_trace(trace, reserved);
  return trace;
}

void Functional::run_ref(std::uint64_t max_steps) {
  while (!halted_) {
    if (icount_ >= max_steps)
      throw ExecError("step budget exceeded (" + std::to_string(max_steps) +
                      ")");
    step();
  }
}

Trace Functional::run_trace_ref(std::uint64_t max_steps) {
  Trace trace;
  const std::size_t reserved = trace_reserve_hint(max_steps, icount_);
  trace.reserve(reserved);
  TraceEntry e;
  while (!halted_) {
    if (icount_ >= max_steps)
      throw ExecError("step budget exceeded (" + std::to_string(max_steps) +
                      ")");
    if (step(&e)) trace.push_back(e);
  }
  finish_trace(trace, reserved);
  return trace;
}

void Functional::shadow_compare(Functional& ref, std::uint64_t max_steps,
                                const Trace* got_trace, bool got_ok,
                                const std::string& got_err) {
  bool want_ok = true;
  std::string want_err;
  Trace want;
  try {
    if (got_trace)
      want = ref.run_trace_ref(max_steps);
    else
      ref.run_ref(max_steps);
  } catch (const ExecError& e) {
    want_ok = false;
    want_err = e.what();
  }
  const auto die = [](const std::string& what) {
    throw ExecError("HIDISC_FSIM_REF divergence: " + what);
  };
  if (got_ok != want_ok)
    die(std::string("threaded ") + (got_ok ? "succeeded" : "failed") +
        " but reference " + (want_ok ? "succeeded" : "failed") +
        (got_ok ? " (\"" + want_err + "\")" : " (\"" + got_err + "\")"));
  if (!got_ok && got_err != want_err)
    die("error mismatch: threaded \"" + got_err + "\" vs reference \"" +
        want_err + "\"");
  if (got_trace) {
    if (got_trace->size() != want.size())
      die("trace length " + std::to_string(got_trace->size()) +
          " vs reference " + std::to_string(want.size()));
    for (std::size_t i = 0; i < want.size(); ++i) {
      const TraceEntry& g = (*got_trace)[i];
      const TraceEntry& w = want[i];
      if (g.static_idx != w.static_idx || g.next != w.next ||
          g.addr != w.addr || g.value != w.value)
        die("trace entry " + std::to_string(i) + " mismatch: got {" +
            std::to_string(g.static_idx) + "," + std::to_string(g.next) +
            "," + std::to_string(g.addr) + "," + std::to_string(g.value) +
            "} want {" + std::to_string(w.static_idx) + "," +
            std::to_string(w.next) + "," + std::to_string(w.addr) + "," +
            std::to_string(w.value) + "}");
    }
  }
  if (pc_ != ref.pc_)
    die("pc " + std::to_string(pc_) + " vs " + std::to_string(ref.pc_));
  if (icount_ != ref.icount_)
    die("icount " + std::to_string(icount_) + " vs " +
        std::to_string(ref.icount_));
  if (halted_ != ref.halted_) die("halted flag mismatch");
  if (iregs_ != ref.iregs_) die("int register file mismatch");
  for (int i = 0; i < isa::kNumFpRegs; ++i)
    if (std::bit_cast<std::uint64_t>(fregs_[i]) !=
        std::bit_cast<std::uint64_t>(ref.fregs_[i]))
      die("fp register f" + std::to_string(i) + " mismatch");
  if (ldq_ != ref.ldq_) die("LDQ contents mismatch");
  if (sdq_ != ref.sdq_) die("SDQ contents mismatch");
  if (scq_tokens_ != ref.scq_tokens_) die("SCQ token count mismatch");
  if (mem_.digest() != ref.mem_.digest()) die("memory digest mismatch");
}

Functional::QVal Functional::pop_queue(std::deque<QVal>& q,
                                       const char* name) {
  if (q.empty())
    throw ExecError(std::string("queue underflow on ") + name + " at pc " +
                    std::to_string(pc_));
  QVal v = q.front();
  q.pop_front();
  return v;
}

bool Functional::step(TraceEntry* out) {
  if (halted_) return false;
  if (pc_ < 0 || pc_ >= static_cast<std::int32_t>(prog_.code.size()))
    throw ExecError("pc out of range: " + std::to_string(pc_));

  const isa::Instruction& inst = prog_.code[pc_];
  const std::int32_t this_pc = pc_;
  std::int32_t next = pc_ + 1;
  std::uint64_t addr = 0;
  std::int64_t result = 0;
  bool wrote_int = false, wrote_fp = false;
  double fresult = 0.0;

  const auto rs1 = [&]() -> std::int64_t { return iregs_[inst.src1.idx]; };
  const auto rs2 = [&]() -> std::int64_t { return iregs_[inst.src2.idx]; };
  const auto fs1 = [&]() -> double { return fregs_[inst.src1.idx]; };
  const auto fs2 = [&]() -> double { return fregs_[inst.src2.idx]; };
  const auto wr = [&](std::int64_t v) {
    result = v;
    wrote_int = true;
  };
  const auto wf = [&](double v) {
    fresult = v;
    wrote_fp = true;
  };
  const auto ea = [&]() -> std::uint64_t {
    return static_cast<std::uint64_t>(rs1() + inst.imm);
  };

  // Wrapping arithmetic: HISA integer ops wrap modulo 2^64 (workloads use
  // full-width hash multiplies), so compute in unsigned and cast back.
  const auto wrap_add = [](std::int64_t a, std::int64_t b) {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                     static_cast<std::uint64_t>(b));
  };
  const auto wrap_sub = [](std::int64_t a, std::int64_t b) {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                     static_cast<std::uint64_t>(b));
  };
  const auto wrap_mul = [](std::int64_t a, std::int64_t b) {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                     static_cast<std::uint64_t>(b));
  };

  switch (inst.op) {
    case Opcode::ADD: wr(wrap_add(rs1(), rs2())); break;
    case Opcode::SUB: wr(wrap_sub(rs1(), rs2())); break;
    case Opcode::MUL: wr(wrap_mul(rs1(), rs2())); break;
    case Opcode::DIV:
      if (rs2() == 0) throw ExecError("integer divide by zero");
      if (rs1() == INT64_MIN && rs2() == -1) wr(INT64_MIN);
      else wr(rs1() / rs2());
      break;
    case Opcode::REM:
      if (rs2() == 0) throw ExecError("integer remainder by zero");
      if (rs1() == INT64_MIN && rs2() == -1) wr(0);
      else wr(rs1() % rs2());
      break;
    case Opcode::AND: wr(rs1() & rs2()); break;
    case Opcode::OR: wr(rs1() | rs2()); break;
    case Opcode::XOR: wr(rs1() ^ rs2()); break;
    case Opcode::NOR: wr(~(rs1() | rs2())); break;
    case Opcode::SLL:
      wr(static_cast<std::int64_t>(static_cast<std::uint64_t>(rs1())
                                   << (rs2() & 63)));
      break;
    case Opcode::SRL:
      wr(static_cast<std::int64_t>(static_cast<std::uint64_t>(rs1()) >>
                                   (rs2() & 63)));
      break;
    case Opcode::SRA: wr(rs1() >> (rs2() & 63)); break;
    case Opcode::SLT: wr(rs1() < rs2() ? 1 : 0); break;
    case Opcode::SLTU:
      wr(static_cast<std::uint64_t>(rs1()) < static_cast<std::uint64_t>(rs2())
             ? 1 : 0);
      break;
    case Opcode::ADDI: wr(wrap_add(rs1(), inst.imm)); break;
    case Opcode::ANDI: wr(rs1() & inst.imm); break;
    case Opcode::ORI: wr(rs1() | inst.imm); break;
    case Opcode::XORI: wr(rs1() ^ inst.imm); break;
    case Opcode::SLLI:
      wr(static_cast<std::int64_t>(static_cast<std::uint64_t>(rs1())
                                   << (inst.imm & 63)));
      break;
    case Opcode::SRLI:
      wr(static_cast<std::int64_t>(static_cast<std::uint64_t>(rs1()) >>
                                   (inst.imm & 63)));
      break;
    case Opcode::SRAI: wr(rs1() >> (inst.imm & 63)); break;
    case Opcode::SLTI: wr(rs1() < inst.imm ? 1 : 0); break;
    case Opcode::LUI: wr(inst.imm << 16); break;

    case Opcode::FADD: wf(canon_nan(fs1() + fs2())); break;
    case Opcode::FSUB: wf(canon_nan(fs1() - fs2())); break;
    case Opcode::FMUL: wf(canon_nan(fs1() * fs2())); break;
    case Opcode::FDIV: wf(canon_nan(fs1() / fs2())); break;
    case Opcode::FSQRT: wf(canon_nan(std::sqrt(fs1()))); break;
    case Opcode::FMIN: wf(canon_nan(std::fmin(fs1(), fs2()))); break;
    case Opcode::FMAX: wf(canon_nan(std::fmax(fs1(), fs2()))); break;
    case Opcode::FNEG: wf(-fs1()); break;
    case Opcode::FABS: wf(std::fabs(fs1())); break;
    case Opcode::FMOV: wf(fs1()); break;
    case Opcode::CVTIF: wf(static_cast<double>(rs1())); break;
    case Opcode::CVTFI: {
      // Saturating conversion (RISC-V FCVT.L.D semantics): values outside
      // the int64 range clamp, NaN converts to zero.  A plain static_cast
      // is undefined for those inputs (caught by the fuzzer under UBSan).
      const double v = fs1();
      if (std::isnan(v)) wr(0);
      else if (v >= 9223372036854775808.0) wr(INT64_MAX);
      else if (v < -9223372036854775808.0) wr(INT64_MIN);
      else wr(static_cast<std::int64_t>(v));
      break;
    }
    case Opcode::FEQ: wr(fs1() == fs2() ? 1 : 0); break;
    case Opcode::FLT: wr(fs1() < fs2() ? 1 : 0); break;
    case Opcode::FLE: wr(fs1() <= fs2() ? 1 : 0); break;

    case Opcode::LB: addr = ea(); wr(static_cast<std::int8_t>(mem_.read<std::uint8_t>(addr))); break;
    case Opcode::LBU: addr = ea(); wr(mem_.read<std::uint8_t>(addr)); break;
    case Opcode::LH: addr = ea(); wr(static_cast<std::int16_t>(mem_.read<std::uint16_t>(addr))); break;
    case Opcode::LHU: addr = ea(); wr(mem_.read<std::uint16_t>(addr)); break;
    case Opcode::LW: addr = ea(); wr(static_cast<std::int32_t>(mem_.read<std::uint32_t>(addr))); break;
    case Opcode::LWU: addr = ea(); wr(mem_.read<std::uint32_t>(addr)); break;
    case Opcode::LD: addr = ea(); wr(mem_.read<std::int64_t>(addr)); break;
    case Opcode::FLD: addr = ea(); wf(mem_.read<double>(addr)); break;

    case Opcode::SB: addr = ea(); result = rs2(); mem_.write<std::uint8_t>(addr, static_cast<std::uint8_t>(result)); break;
    case Opcode::SH: addr = ea(); result = rs2(); mem_.write<std::uint16_t>(addr, static_cast<std::uint16_t>(result)); break;
    case Opcode::SW: addr = ea(); result = rs2(); mem_.write<std::uint32_t>(addr, static_cast<std::uint32_t>(result)); break;
    case Opcode::SD: addr = ea(); result = rs2(); mem_.write<std::int64_t>(addr, result); break;
    case Opcode::FSD: {
      addr = ea();
      const double v = fregs_[inst.src2.idx];
      mem_.write<double>(addr, v);
      result = std::bit_cast<std::int64_t>(v);
      break;
    }
    case Opcode::PREF: addr = ea(); break;

    case Opcode::BEQ: if (rs1() == rs2()) next = inst.target; break;
    case Opcode::BNE: if (rs1() != rs2()) next = inst.target; break;
    case Opcode::BLT: if (rs1() < rs2()) next = inst.target; break;
    case Opcode::BGE: if (rs1() >= rs2()) next = inst.target; break;
    case Opcode::BLTU:
      if (static_cast<std::uint64_t>(rs1()) <
          static_cast<std::uint64_t>(rs2()))
        next = inst.target;
      break;
    case Opcode::BGEU:
      if (static_cast<std::uint64_t>(rs1()) >=
          static_cast<std::uint64_t>(rs2()))
        next = inst.target;
      break;
    case Opcode::J: next = inst.target; break;
    case Opcode::JAL: wr(this_pc + 1); next = inst.target; break;
    case Opcode::JR: next = static_cast<std::int32_t>(rs1()); break;
    case Opcode::JALR:
      wr(this_pc + 1);
      next = static_cast<std::int32_t>(rs1());
      break;
    case Opcode::HALT: halted_ = true; break;

    case Opcode::PUSHLDQ:
      ldq_.push_back({QVal::Tag::Int, rs1()});
      result = rs1();
      break;
    case Opcode::PUSHLDQF:
      ldq_.push_back({QVal::Tag::Fp, std::bit_cast<std::int64_t>(fs1())});
      result = std::bit_cast<std::int64_t>(fs1());
      break;
    case Opcode::PUSHSDQ:
      sdq_.push_back({QVal::Tag::Int, rs1()});
      result = rs1();
      break;
    case Opcode::PUSHSDQF:
      sdq_.push_back({QVal::Tag::Fp, std::bit_cast<std::int64_t>(fs1())});
      result = std::bit_cast<std::int64_t>(fs1());
      break;
    case Opcode::POPLDQ: {
      const QVal v = pop_queue(ldq_, "LDQ");
      if (v.tag == QVal::Tag::Eod)
        throw ExecError("POPLDQ consumed an EOD token");
      wr(v.bits);
      break;
    }
    case Opcode::POPLDQF: {
      const QVal v = pop_queue(ldq_, "LDQ");
      if (v.tag == QVal::Tag::Eod)
        throw ExecError("POPLDQF consumed an EOD token");
      wf(std::bit_cast<double>(v.bits));
      break;
    }
    case Opcode::POPSDQ: {
      const QVal v = pop_queue(sdq_, "SDQ");
      wr(v.bits);
      break;
    }
    case Opcode::POPSDQF: {
      const QVal v = pop_queue(sdq_, "SDQ");
      wf(std::bit_cast<double>(v.bits));
      break;
    }
    case Opcode::PUTEOD:
      ldq_.push_back({QVal::Tag::Eod, 0});
      break;
    case Opcode::BEOD: {
      const QVal v = pop_queue(ldq_, "LDQ");
      if (v.tag == QVal::Tag::Eod) {
        next = inst.target;
      } else {
        // Not EOD: the token is data for a later pop; put it back.
        ldq_.push_front(v);
      }
      break;
    }
    case Opcode::GETSCQ:
      if (scq_tokens_ <= 0)
        throw ExecError("SCQ underflow (GETSCQ before PUTSCQ)");
      --scq_tokens_;
      break;
    case Opcode::PUTSCQ: ++scq_tokens_; break;

    case Opcode::NOP: break;
    case Opcode::kCount: throw ExecError("invalid opcode");
  }

  // Commit register result (r0 stays zero).
  if (wrote_int && inst.dst.is_int() && inst.dst.idx != 0)
    iregs_[inst.dst.idx] = result;
  if (wrote_fp && inst.dst.is_fp()) fregs_[inst.dst.idx] = fresult;

  // Honour compiler annotation pushes (paper §4.2: values crossing streams).
  if (inst.ann.push_ldq) {
    if (wrote_fp)
      ldq_.push_back({QVal::Tag::Fp, std::bit_cast<std::int64_t>(fresult)});
    else
      ldq_.push_back({QVal::Tag::Int, result});
  }
  if (inst.ann.push_sdq) {
    if (wrote_fp)
      sdq_.push_back({QVal::Tag::Fp, std::bit_cast<std::int64_t>(fresult)});
    else
      sdq_.push_back({QVal::Tag::Int, result});
  }

  if (!halted_) pc_ = next;
  ++icount_;

  if (out) {
    out->static_idx = this_pc;
    out->next = halted_ ? this_pc : next;
    out->addr = addr;
    out->value = wrote_fp ? std::bit_cast<std::int64_t>(fresult) : result;
  }
  return true;
}

std::uint64_t Functional::state_digest() const {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto v : iregs_) mix(static_cast<std::uint64_t>(v));
  for (const auto v : fregs_) mix(std::bit_cast<std::uint64_t>(v));
  return h ^ mem_.digest();
}

}  // namespace hidisc::sim
