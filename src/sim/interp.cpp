// Threaded-code execution engine for the functional simulator.
//
// `Functional::exec_threaded` runs the pre-decoded DecodedOp table
// (decoded.hpp) with computed-goto dispatch on GNU-compatible compilers and
// a switch fallback elsewhere.  The hot loop keeps both register files in
// local 33-slot arrays (slot kSinkReg absorbs r0 / no-destination commits,
// so handlers commit unconditionally), batches trace emission into the
// caller's pre-sized buffer, and executes fused superinstructions for the
// dominant decode pairs.  Architectural state is synced back to the
// Functional members on every exit path, including thrown ExecErrors, so
// step()-level interleaving and post-mortem state inspection behave exactly
// like the reference switch interpreter in functional.cpp.
//
// Semantics here must stay byte-identical to Functional::step(); the
// HIDISC_FSIM_REF shadow oracle and the fuzz campaign's dual-interpreter
// leg enforce that (docs/FUNCTIONAL.md).

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>

#include "sim/decoded.hpp"
#include "sim/functional.hpp"

#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(HIDISC_FORCE_SWITCH_DISPATCH)
#define HIDISC_COMPUTED_GOTO 1
#else
#define HIDISC_COMPUTED_GOTO 0
#endif

#if defined(__GNUC__) || defined(__clang__)
#define HIDISC_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define HIDISC_UNLIKELY(x) (x)
#endif

namespace hidisc::sim {

namespace {

// Wrapping arithmetic: HISA integer ops wrap modulo 2^64 (workloads use
// full-width hash multiplies), so compute in unsigned and cast back.
inline std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t wrap_sub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t wrap_mul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}

// Saturating fp->int conversion (RISC-V FCVT.L.D semantics): values outside
// the int64 range clamp, NaN converts to zero.
inline std::int64_t cvt_fi(double v) {
  if (std::isnan(v)) return 0;
  if (v >= 9223372036854775808.0) return INT64_MAX;
  if (v < -9223372036854775808.0) return INT64_MIN;
  return static_cast<std::int64_t>(v);
}

}  // namespace

template <bool kEmit>
void Functional::exec_threaded(std::uint64_t max_steps, Trace* out) {
  if (halted_) return;
  ensure_decoded();
  const DecodedOp* const ops = decoded_->ops.data();
  const auto ncode = static_cast<std::uint32_t>(prog_.code.size());

  // Register-file hot loop: 32 architectural slots plus the sink.
  std::int64_t R[33];
  double F[33];
  std::memcpy(R, iregs_.data(), sizeof(std::int64_t) * isa::kNumIntRegs);
  std::memcpy(F, fregs_.data(), sizeof(double) * isa::kNumFpRegs);
  R[kSinkReg] = 0;
  F[kSinkReg] = 0.0;

  std::int32_t pc = pc_;
  std::uint64_t icount = icount_;
  const DecodedOp* op = nullptr;
  const char* err_what = "";

  const auto sync = [&] {
    std::memcpy(iregs_.data(), R, sizeof(std::int64_t) * isa::kNumIntRegs);
    std::memcpy(fregs_.data(), F, sizeof(double) * isa::kNumFpRegs);
    pc_ = pc;
    icount_ = icount;
  };
  const auto push_int = [&](std::uint8_t fl, std::int64_t v) {
    if (fl & kFlagPushLdq) ldq_.push_back({QVal::Tag::Int, v});
    if (fl & kFlagPushSdq) sdq_.push_back({QVal::Tag::Int, v});
  };
  const auto push_fp = [&](std::uint8_t fl, double v) {
    const auto bits = std::bit_cast<std::int64_t>(v);
    if (fl & kFlagPushLdq) ldq_.push_back({QVal::Tag::Fp, bits});
    if (fl & kFlagPushSdq) sdq_.push_back({QVal::Tag::Fp, bits});
  };

#define EMIT(s, n, a, v)                                                     \
  do {                                                                       \
    if constexpr (kEmit)                                                     \
      out->push_back(TraceEntry{static_cast<std::int32_t>(s),                \
                                static_cast<std::int32_t>(n),                \
                                static_cast<std::uint64_t>(a),               \
                                static_cast<std::int64_t>(v)});              \
  } while (0)
#define PUSH_INT(fl, v)                       \
  do {                                        \
    const std::uint8_t f_ = (fl);             \
    if (HIDISC_UNLIKELY(f_)) push_int(f_, v); \
  } while (0)
#define PUSH_FP(fl, v)                       \
  do {                                       \
    const std::uint8_t f_ = (fl);            \
    if (HIDISC_UNLIKELY(f_)) push_fp(f_, v); \
  } while (0)
#define EA() \
  (static_cast<std::uint64_t>(R[op->src1]) + static_cast<std::uint64_t>(op->imm))
#define FUSE_GUARD(n) \
  if (HIDISC_UNLIKELY(max_steps - icount < 2)) goto case_lbl_##n

#if HIDISC_COMPUTED_GOTO
  // Built per call (not static): GCC documents that address-of-label values
  // may differ between clones of a function, so a static table would be
  // hazardous under IPA cloning.  91 pointer stores per run are noise.
  const void* const kLabels[kNumExecKinds] = {
#define X(n) &&case_lbl_##n,
      HIDISC_SIM_OPCODES(X)
#undef X
      &&invalid_opcode,
#define X(n) &&fuse_lbl_##n,
      HIDISC_SIM_FUSED(X)
#undef X
  };
#define CASE(n) case_lbl_##n:
#define FCASE(n) fuse_lbl_##n:
#define DISPATCH()                                                        \
  do {                                                                    \
    if (HIDISC_UNLIKELY(icount >= max_steps)) goto budget_exceeded;       \
    if (HIDISC_UNLIKELY(static_cast<std::uint32_t>(pc) >= ncode))         \
      goto pc_out_of_range;                                               \
    op = ops + static_cast<std::uint32_t>(pc);                            \
    goto* kLabels[op->kind];                                              \
  } while (0)

  DISPATCH();
#else
#define CASE(n) \
  case kExec##n: \
  case_lbl_##n:
#define FCASE(n) case kFuse##n:
#define DISPATCH() goto dispatch_loop

dispatch_loop:
  if (HIDISC_UNLIKELY(icount >= max_steps)) goto budget_exceeded;
  if (HIDISC_UNLIKELY(static_cast<std::uint32_t>(pc) >= ncode))
    goto pc_out_of_range;
  op = ops + static_cast<std::uint32_t>(pc);
  switch (op->kind) {
    default:
      goto invalid_opcode;
#endif

#define ALU_RR(n, expr)                                             \
  CASE(n) {                                                         \
    const std::int64_t a = R[op->src1];                             \
    const std::int64_t b = R[op->src2];                             \
    (void)a; (void)b;                                               \
    const std::int64_t v = (expr);                                  \
    R[op->dst] = v;                                                 \
    PUSH_INT(op->flags, v);                                         \
    EMIT(pc, pc + 1, 0, v);                                         \
    ++pc;                                                           \
    ++icount;                                                       \
    DISPATCH();                                                     \
  }
#define ALU_RI(n, expr)                                             \
  CASE(n) {                                                         \
    const std::int64_t a = R[op->src1];                             \
    const std::int64_t b = op->imm;                                 \
    (void)a; (void)b;                                               \
    const std::int64_t v = (expr);                                  \
    R[op->dst] = v;                                                 \
    PUSH_INT(op->flags, v);                                         \
    EMIT(pc, pc + 1, 0, v);                                         \
    ++pc;                                                           \
    ++icount;                                                       \
    DISPATCH();                                                     \
  }

  ALU_RR(ADD, wrap_add(a, b))
  ALU_RR(SUB, wrap_sub(a, b))
  ALU_RR(MUL, wrap_mul(a, b))

  CASE(DIV) {
    const std::int64_t a = R[op->src1];
    const std::int64_t b = R[op->src2];
    if (HIDISC_UNLIKELY(b == 0)) goto div_by_zero;
    const std::int64_t v = (a == INT64_MIN && b == -1) ? INT64_MIN : a / b;
    R[op->dst] = v;
    PUSH_INT(op->flags, v);
    EMIT(pc, pc + 1, 0, v);
    ++pc;
    ++icount;
    DISPATCH();
  }
  CASE(REM) {
    const std::int64_t a = R[op->src1];
    const std::int64_t b = R[op->src2];
    if (HIDISC_UNLIKELY(b == 0)) goto rem_by_zero;
    const std::int64_t v = (a == INT64_MIN && b == -1) ? 0 : a % b;
    R[op->dst] = v;
    PUSH_INT(op->flags, v);
    EMIT(pc, pc + 1, 0, v);
    ++pc;
    ++icount;
    DISPATCH();
  }

  ALU_RR(AND, a & b)
  ALU_RR(OR, a | b)
  ALU_RR(XOR, a ^ b)
  ALU_RR(NOR, ~(a | b))
  ALU_RR(SLL, static_cast<std::int64_t>(static_cast<std::uint64_t>(a)
                                        << (b & 63)))
  ALU_RR(SRL, static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >>
                                        (b & 63)))
  ALU_RR(SRA, a >> (b & 63))
  ALU_RR(SLT, a < b ? 1 : 0)
  ALU_RR(SLTU, static_cast<std::uint64_t>(a) < static_cast<std::uint64_t>(b)
                   ? 1 : 0)

  ALU_RI(ADDI, wrap_add(a, b))
  ALU_RI(ANDI, a & b)
  ALU_RI(ORI, a | b)
  ALU_RI(XORI, a ^ b)
  ALU_RI(SLLI, static_cast<std::int64_t>(static_cast<std::uint64_t>(a)
                                         << (b & 63)))
  ALU_RI(SRLI, static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >>
                                         (b & 63)))
  ALU_RI(SRAI, a >> (b & 63))
  ALU_RI(SLTI, a < b ? 1 : 0)
  // LUI: imm is pre-shifted by the decoder.
  ALU_RI(LUI, b)

#define FPU(n, expr)                                                \
  CASE(n) {                                                         \
    const double a = F[op->src1];                                   \
    const double b = F[op->src2];                                   \
    (void)a; (void)b;                                               \
    const double v = (expr);                                        \
    F[op->dst] = v;                                                 \
    PUSH_FP(op->flags, v);                                          \
    EMIT(pc, pc + 1, 0, std::bit_cast<std::int64_t>(v));            \
    ++pc;                                                           \
    ++icount;                                                       \
    DISPATCH();                                                     \
  }
#define FCMP(n, expr)                                               \
  CASE(n) {                                                         \
    const double a = F[op->src1];                                   \
    const double b = F[op->src2];                                   \
    const std::int64_t v = (expr) ? 1 : 0;                          \
    R[op->dst] = v;                                                 \
    PUSH_INT(op->flags, v);                                         \
    EMIT(pc, pc + 1, 0, v);                                         \
    ++pc;                                                           \
    ++icount;                                                       \
    DISPATCH();                                                     \
  }

  FPU(FADD, canon_nan(a + b))
  FPU(FSUB, canon_nan(a - b))
  FPU(FMUL, canon_nan(a * b))
  FPU(FDIV, canon_nan(a / b))
  FPU(FSQRT, canon_nan(std::sqrt(a)))
  FPU(FMIN, canon_nan(std::fmin(a, b)))
  FPU(FMAX, canon_nan(std::fmax(a, b)))
  FPU(FNEG, -a)
  FPU(FABS, std::fabs(a))
  FPU(FMOV, a)

  CASE(CVTIF) {
    const double v = static_cast<double>(R[op->src1]);
    F[op->dst] = v;
    PUSH_FP(op->flags, v);
    EMIT(pc, pc + 1, 0, std::bit_cast<std::int64_t>(v));
    ++pc;
    ++icount;
    DISPATCH();
  }
  CASE(CVTFI) {
    const std::int64_t v = cvt_fi(F[op->src1]);
    R[op->dst] = v;
    PUSH_INT(op->flags, v);
    EMIT(pc, pc + 1, 0, v);
    ++pc;
    ++icount;
    DISPATCH();
  }

  FCMP(FEQ, a == b)
  FCMP(FLT, a < b)
  FCMP(FLE, a <= b)

#define LOAD(n, expr)                                               \
  CASE(n) {                                                         \
    const std::uint64_t addr = EA();                                \
    const std::int64_t v = (expr);                                  \
    R[op->dst] = v;                                                 \
    PUSH_INT(op->flags, v);                                         \
    EMIT(pc, pc + 1, addr, v);                                      \
    ++pc;                                                           \
    ++icount;                                                       \
    DISPATCH();                                                     \
  }

  LOAD(LB, static_cast<std::int8_t>(mem_.read<std::uint8_t>(addr)))
  LOAD(LBU, mem_.read<std::uint8_t>(addr))
  LOAD(LH, static_cast<std::int16_t>(mem_.read<std::uint16_t>(addr)))
  LOAD(LHU, mem_.read<std::uint16_t>(addr))
  LOAD(LW, static_cast<std::int32_t>(mem_.read<std::uint32_t>(addr)))
  LOAD(LWU, mem_.read<std::uint32_t>(addr))
  LOAD(LD, mem_.read<std::int64_t>(addr))

  CASE(FLD) {
    const std::uint64_t addr = EA();
    const double v = mem_.read<double>(addr);
    F[op->dst] = v;
    PUSH_FP(op->flags, v);
    EMIT(pc, pc + 1, addr, std::bit_cast<std::int64_t>(v));
    ++pc;
    ++icount;
    DISPATCH();
  }

#define STORE(n, T)                                                 \
  CASE(n) {                                                         \
    const std::uint64_t addr = EA();                                \
    const std::int64_t v = R[op->src2];                             \
    mem_.write<T>(addr, static_cast<T>(v));                         \
    PUSH_INT(op->flags, v);                                         \
    EMIT(pc, pc + 1, addr, v);                                      \
    ++pc;                                                           \
    ++icount;                                                       \
    DISPATCH();                                                     \
  }

  STORE(SB, std::uint8_t)
  STORE(SH, std::uint16_t)
  STORE(SW, std::uint32_t)
  STORE(SD, std::int64_t)

  CASE(FSD) {
    const std::uint64_t addr = EA();
    const double d = F[op->src2];
    mem_.write<double>(addr, d);
    const auto v = std::bit_cast<std::int64_t>(d);
    PUSH_INT(op->flags, v);  // reference FSD leaves wrote_fp unset
    EMIT(pc, pc + 1, addr, v);
    ++pc;
    ++icount;
    DISPATCH();
  }

  CASE(PREF) {
    const std::uint64_t addr = EA();
    PUSH_INT(op->flags, 0);
    EMIT(pc, pc + 1, addr, 0);
    ++pc;
    ++icount;
    DISPATCH();
  }

#define BRANCH(n, expr)                                             \
  CASE(n) {                                                         \
    const std::int64_t a = R[op->src1];                             \
    const std::int64_t b = R[op->src2];                             \
    const std::int32_t nx = (expr) ? op->target : pc + 1;           \
    PUSH_INT(op->flags, 0);                                         \
    EMIT(pc, nx, 0, 0);                                             \
    pc = nx;                                                        \
    ++icount;                                                       \
    DISPATCH();                                                     \
  }

  BRANCH(BEQ, a == b)
  BRANCH(BNE, a != b)
  BRANCH(BLT, a < b)
  BRANCH(BGE, a >= b)
  BRANCH(BLTU,
         static_cast<std::uint64_t>(a) < static_cast<std::uint64_t>(b))
  BRANCH(BGEU,
         static_cast<std::uint64_t>(a) >= static_cast<std::uint64_t>(b))

  CASE(J) {
    const std::int32_t nx = op->target;
    PUSH_INT(op->flags, 0);
    EMIT(pc, nx, 0, 0);
    pc = nx;
    ++icount;
    DISPATCH();
  }
  CASE(JAL) {
    const std::int64_t v = pc + 1;
    const std::int32_t nx = op->target;
    R[op->dst] = v;
    PUSH_INT(op->flags, v);
    EMIT(pc, nx, 0, v);
    pc = nx;
    ++icount;
    DISPATCH();
  }
  CASE(JR) {
    const auto nx = static_cast<std::int32_t>(R[op->src1]);
    PUSH_INT(op->flags, 0);
    EMIT(pc, nx, 0, 0);
    pc = nx;
    ++icount;
    DISPATCH();
  }
  CASE(JALR) {
    // The link value commits after the target register is read, so
    // `jalr rX, rX` jumps to the old value — same as the reference.
    const auto nx = static_cast<std::int32_t>(R[op->src1]);
    const std::int64_t v = pc + 1;
    R[op->dst] = v;
    PUSH_INT(op->flags, v);
    EMIT(pc, nx, 0, v);
    pc = nx;
    ++icount;
    DISPATCH();
  }

  CASE(HALT) {
    halted_ = true;
    PUSH_INT(op->flags, 0);
    EMIT(pc, pc, 0, 0);  // a halting step records next == this pc
    ++icount;
    goto done;
  }

  CASE(PUSHLDQ) {
    const std::int64_t v = R[op->src1];
    ldq_.push_back({QVal::Tag::Int, v});
    PUSH_INT(op->flags, v);
    EMIT(pc, pc + 1, 0, v);
    ++pc;
    ++icount;
    DISPATCH();
  }
  CASE(PUSHLDQF) {
    const auto v = std::bit_cast<std::int64_t>(F[op->src1]);
    ldq_.push_back({QVal::Tag::Fp, v});
    PUSH_INT(op->flags, v);  // reference leaves wrote_fp unset here
    EMIT(pc, pc + 1, 0, v);
    ++pc;
    ++icount;
    DISPATCH();
  }
  CASE(PUSHSDQ) {
    const std::int64_t v = R[op->src1];
    sdq_.push_back({QVal::Tag::Int, v});
    PUSH_INT(op->flags, v);
    EMIT(pc, pc + 1, 0, v);
    ++pc;
    ++icount;
    DISPATCH();
  }
  CASE(PUSHSDQF) {
    const auto v = std::bit_cast<std::int64_t>(F[op->src1]);
    sdq_.push_back({QVal::Tag::Fp, v});
    PUSH_INT(op->flags, v);
    EMIT(pc, pc + 1, 0, v);
    ++pc;
    ++icount;
    DISPATCH();
  }

  CASE(POPLDQ) {
    if (HIDISC_UNLIKELY(ldq_.empty())) {
      err_what = "LDQ";
      goto queue_underflow;
    }
    const QVal qv = ldq_.front();
    ldq_.pop_front();  // the reference pops before the EOD check throws
    if (HIDISC_UNLIKELY(qv.tag == QVal::Tag::Eod)) {
      err_what = "POPLDQ";
      goto eod_consumed;
    }
    R[op->dst] = qv.bits;
    PUSH_INT(op->flags, qv.bits);
    EMIT(pc, pc + 1, 0, qv.bits);
    ++pc;
    ++icount;
    DISPATCH();
  }
  CASE(POPLDQF) {
    if (HIDISC_UNLIKELY(ldq_.empty())) {
      err_what = "LDQ";
      goto queue_underflow;
    }
    const QVal qv = ldq_.front();
    ldq_.pop_front();  // the reference pops before the EOD check throws
    if (HIDISC_UNLIKELY(qv.tag == QVal::Tag::Eod)) {
      err_what = "POPLDQF";
      goto eod_consumed;
    }
    F[op->dst] = std::bit_cast<double>(qv.bits);
    PUSH_FP(op->flags, std::bit_cast<double>(qv.bits));
    EMIT(pc, pc + 1, 0, qv.bits);
    ++pc;
    ++icount;
    DISPATCH();
  }
  CASE(POPSDQ) {
    if (HIDISC_UNLIKELY(sdq_.empty())) {
      err_what = "SDQ";
      goto queue_underflow;
    }
    const QVal qv = sdq_.front();
    sdq_.pop_front();
    R[op->dst] = qv.bits;
    PUSH_INT(op->flags, qv.bits);
    EMIT(pc, pc + 1, 0, qv.bits);
    ++pc;
    ++icount;
    DISPATCH();
  }
  CASE(POPSDQF) {
    if (HIDISC_UNLIKELY(sdq_.empty())) {
      err_what = "SDQ";
      goto queue_underflow;
    }
    const QVal qv = sdq_.front();
    sdq_.pop_front();
    F[op->dst] = std::bit_cast<double>(qv.bits);
    PUSH_FP(op->flags, std::bit_cast<double>(qv.bits));
    EMIT(pc, pc + 1, 0, qv.bits);
    ++pc;
    ++icount;
    DISPATCH();
  }

  CASE(PUTEOD) {
    ldq_.push_back({QVal::Tag::Eod, 0});
    PUSH_INT(op->flags, 0);
    EMIT(pc, pc + 1, 0, 0);
    ++pc;
    ++icount;
    DISPATCH();
  }
  CASE(BEOD) {
    if (HIDISC_UNLIKELY(ldq_.empty())) {
      err_what = "LDQ";
      goto queue_underflow;
    }
    // Peek: the reference pops and re-front-pushes non-EOD tokens, which is
    // state-identical to consuming only on EOD.
    std::int32_t nx;
    if (ldq_.front().tag == QVal::Tag::Eod) {
      ldq_.pop_front();
      nx = op->target;
    } else {
      nx = pc + 1;
    }
    PUSH_INT(op->flags, 0);
    EMIT(pc, nx, 0, 0);
    pc = nx;
    ++icount;
    DISPATCH();
  }
  CASE(GETSCQ) {
    if (HIDISC_UNLIKELY(scq_tokens_ <= 0)) goto scq_underflow;
    --scq_tokens_;
    PUSH_INT(op->flags, 0);
    EMIT(pc, pc + 1, 0, 0);
    ++pc;
    ++icount;
    DISPATCH();
  }
  CASE(PUTSCQ) {
    ++scq_tokens_;
    PUSH_INT(op->flags, 0);
    EMIT(pc, pc + 1, 0, 0);
    ++pc;
    ++icount;
    DISPATCH();
  }
  CASE(NOP) {
    PUSH_INT(op->flags, 0);
    EMIT(pc, pc + 1, 0, 0);
    ++pc;
    ++icount;
    DISPATCH();
  }

  // Fused superinstructions.  Each executes both components sequentially
  // from their own decoded slots, emitting one trace entry per component.
  // FUSE_GUARD falls back to the unfused first component when fewer than
  // two steps of budget remain, so budget expiry between the components is
  // byte-identical to the reference.

  FCASE(AddiAddi) {
    FUSE_GUARD(ADDI);
    const DecodedOp* b = op + 1;
    const std::int64_t v1 = wrap_add(R[op->src1], op->imm);
    R[op->dst] = v1;
    PUSH_INT(op->flags, v1);
    EMIT(pc, pc + 1, 0, v1);
    const std::int64_t v2 = wrap_add(R[b->src1], b->imm);
    R[b->dst] = v2;
    PUSH_INT(b->flags, v2);
    EMIT(pc + 1, pc + 2, 0, v2);
    pc += 2;
    icount += 2;
    DISPATCH();
  }
  FCASE(AddiBne) {
    FUSE_GUARD(ADDI);
    const DecodedOp* b = op + 1;
    const std::int64_t v1 = wrap_add(R[op->src1], op->imm);
    R[op->dst] = v1;
    PUSH_INT(op->flags, v1);
    EMIT(pc, pc + 1, 0, v1);
    const std::int32_t nx = (R[b->src1] != R[b->src2]) ? b->target : pc + 2;
    PUSH_INT(b->flags, 0);
    EMIT(pc + 1, nx, 0, 0);
    pc = nx;
    icount += 2;
    DISPATCH();
  }
  FCASE(FmulFadd) {
    FUSE_GUARD(FMUL);
    const DecodedOp* b = op + 1;
    const double v1 = canon_nan(F[op->src1] * F[op->src2]);
    F[op->dst] = v1;
    PUSH_FP(op->flags, v1);
    EMIT(pc, pc + 1, 0, std::bit_cast<std::int64_t>(v1));
    const double v2 = canon_nan(F[b->src1] + F[b->src2]);
    F[b->dst] = v2;
    PUSH_FP(b->flags, v2);
    EMIT(pc + 1, pc + 2, 0, std::bit_cast<std::int64_t>(v2));
    pc += 2;
    icount += 2;
    DISPATCH();
  }
  FCASE(AddLd) {
    FUSE_GUARD(ADD);
    const DecodedOp* b = op + 1;
    const std::int64_t v1 = wrap_add(R[op->src1], R[op->src2]);
    R[op->dst] = v1;
    PUSH_INT(op->flags, v1);
    EMIT(pc, pc + 1, 0, v1);
    const std::uint64_t addr = static_cast<std::uint64_t>(R[b->src1]) +
                               static_cast<std::uint64_t>(b->imm);
    const std::int64_t v2 = mem_.read<std::int64_t>(addr);
    R[b->dst] = v2;
    PUSH_INT(b->flags, v2);
    EMIT(pc + 1, pc + 2, addr, v2);
    pc += 2;
    icount += 2;
    DISPATCH();
  }
  FCASE(LdAdd) {
    FUSE_GUARD(LD);
    const DecodedOp* b = op + 1;
    const std::uint64_t addr = EA();
    const std::int64_t v1 = mem_.read<std::int64_t>(addr);
    R[op->dst] = v1;
    PUSH_INT(op->flags, v1);
    EMIT(pc, pc + 1, addr, v1);
    const std::int64_t v2 = wrap_add(R[b->src1], R[b->src2]);
    R[b->dst] = v2;
    PUSH_INT(b->flags, v2);
    EMIT(pc + 1, pc + 2, 0, v2);
    pc += 2;
    icount += 2;
    DISPATCH();
  }
  FCASE(MulAdd) {
    FUSE_GUARD(MUL);
    const DecodedOp* b = op + 1;
    const std::int64_t v1 = wrap_mul(R[op->src1], R[op->src2]);
    R[op->dst] = v1;
    PUSH_INT(op->flags, v1);
    EMIT(pc, pc + 1, 0, v1);
    const std::int64_t v2 = wrap_add(R[b->src1], R[b->src2]);
    R[b->dst] = v2;
    PUSH_INT(b->flags, v2);
    EMIT(pc + 1, pc + 2, 0, v2);
    pc += 2;
    icount += 2;
    DISPATCH();
  }
  FCASE(SlliAdd) {
    FUSE_GUARD(SLLI);
    const DecodedOp* b = op + 1;
    const std::int64_t v1 = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(R[op->src1]) << (op->imm & 63));
    R[op->dst] = v1;
    PUSH_INT(op->flags, v1);
    EMIT(pc, pc + 1, 0, v1);
    const std::int64_t v2 = wrap_add(R[b->src1], R[b->src2]);
    R[b->dst] = v2;
    PUSH_INT(b->flags, v2);
    EMIT(pc + 1, pc + 2, 0, v2);
    pc += 2;
    icount += 2;
    DISPATCH();
  }
  FCASE(LdAddi) {
    FUSE_GUARD(LD);
    const DecodedOp* b = op + 1;
    const std::uint64_t addr = EA();
    const std::int64_t v1 = mem_.read<std::int64_t>(addr);
    R[op->dst] = v1;
    PUSH_INT(op->flags, v1);
    EMIT(pc, pc + 1, addr, v1);
    const std::int64_t v2 = wrap_add(R[b->src1], b->imm);
    R[b->dst] = v2;
    PUSH_INT(b->flags, v2);
    EMIT(pc + 1, pc + 2, 0, v2);
    pc += 2;
    icount += 2;
    DISPATCH();
  }
  FCASE(LdBge) {
    FUSE_GUARD(LD);
    const DecodedOp* b = op + 1;
    const std::uint64_t addr = EA();
    const std::int64_t v1 = mem_.read<std::int64_t>(addr);
    R[op->dst] = v1;
    PUSH_INT(op->flags, v1);
    EMIT(pc, pc + 1, addr, v1);
    const std::int32_t nx = (R[b->src1] >= R[b->src2]) ? b->target : pc + 2;
    PUSH_INT(b->flags, 0);
    EMIT(pc + 1, nx, 0, 0);
    pc = nx;
    icount += 2;
    DISPATCH();
  }

#define FUSE_CMP_BR(n, guard, cmp_expr, br_expr)                    \
  FCASE(n) {                                                        \
    FUSE_GUARD(guard);                                              \
    const DecodedOp* b = op + 1;                                    \
    const std::int64_t a1 = R[op->src1];                            \
    const std::int64_t a2 = R[op->src2];                            \
    const std::int64_t im = op->imm;                                \
    (void)a2; (void)im;                                             \
    const std::int64_t v1 = (cmp_expr) ? 1 : 0;                     \
    R[op->dst] = v1;                                                \
    PUSH_INT(op->flags, v1);                                        \
    EMIT(pc, pc + 1, 0, v1);                                        \
    const std::int32_t nx = (br_expr) ? b->target : pc + 2;         \
    PUSH_INT(b->flags, 0);                                          \
    EMIT(pc + 1, nx, 0, 0);                                         \
    pc = nx;                                                        \
    icount += 2;                                                    \
    DISPATCH();                                                     \
  }

  FUSE_CMP_BR(SltBne, SLT, a1 < a2, R[b->src1] != R[b->src2])
  FUSE_CMP_BR(SltiBne, SLTI, a1 < im, R[b->src1] != R[b->src2])
  FUSE_CMP_BR(SltuBne, SLTU,
              static_cast<std::uint64_t>(a1) < static_cast<std::uint64_t>(a2),
              R[b->src1] != R[b->src2])
  FUSE_CMP_BR(SltBeq, SLT, a1 < a2, R[b->src1] == R[b->src2])
  FUSE_CMP_BR(SltiBeq, SLTI, a1 < im, R[b->src1] == R[b->src2])

#if !HIDISC_COMPUTED_GOTO
  }  // switch
#endif

budget_exceeded:
  sync();
  throw ExecError("step budget exceeded (" + std::to_string(max_steps) + ")");
pc_out_of_range:
  sync();
  throw ExecError("pc out of range: " + std::to_string(pc));
invalid_opcode:
  sync();
  throw ExecError("invalid opcode");
div_by_zero:
  sync();
  throw ExecError("integer divide by zero");
rem_by_zero:
  sync();
  throw ExecError("integer remainder by zero");
queue_underflow:
  sync();
  throw ExecError(std::string("queue underflow on ") + err_what + " at pc " +
                  std::to_string(pc));
eod_consumed:
  sync();
  throw ExecError(std::string(err_what) + " consumed an EOD token");
scq_underflow:
  sync();
  throw ExecError("SCQ underflow (GETSCQ before PUTSCQ)");

done:
  sync();

#undef EMIT
#undef PUSH_INT
#undef PUSH_FP
#undef EA
#undef FUSE_GUARD
#undef CASE
#undef FCASE
#undef DISPATCH
#undef ALU_RR
#undef ALU_RI
#undef FPU
#undef FCMP
#undef LOAD
#undef STORE
#undef BRANCH
#undef FUSE_CMP_BR
}

template void Functional::exec_threaded<false>(std::uint64_t, Trace*);
template void Functional::exec_threaded<true>(std::uint64_t, Trace*);

}  // namespace hidisc::sim
