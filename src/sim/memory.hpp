// Sparse byte-addressable main memory.
//
// Backs both the functional simulator (architectural state) and workload
// data-set generators.  Pages are allocated on first touch; reads of
// untouched memory return zero, matching a zero-initialized address space.
//
// A one-entry page cache (a software TLB) short-circuits the hash lookup on
// the common case of consecutive accesses to the same 4 KiB page; it is what
// keeps the threaded-code interpreter's load/store handlers branch-cheap.
// Each Memory is owned by a single simulator instance and accessed from one
// thread at a time, so the mutable cache fields need no synchronisation.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

namespace hidisc::sim {

class Memory {
 public:
  static constexpr std::uint64_t kPageBits = 12;
  static constexpr std::uint64_t kPageSize = 1ull << kPageBits;
  static constexpr std::uint64_t kPageMask = kPageSize - 1;

  Memory() = default;

  // Deep copy (pages are cloned).  Used by the HIDISC_FSIM_REF shadow oracle
  // to snapshot architectural state before replaying with the reference
  // interpreter.
  Memory(const Memory& other) { copy_pages(other); }
  Memory& operator=(const Memory& other) {
    if (this != &other) {
      pages_.clear();
      invalidate_cache();
      copy_pages(other);
    }
    return *this;
  }
  Memory(Memory&& other) noexcept
      : pages_(std::move(other.pages_)),
        cached_base_(other.cached_base_),
        cached_page_(other.cached_page_) {
    other.invalidate_cache();
  }
  Memory& operator=(Memory&& other) noexcept {
    if (this != &other) {
      pages_ = std::move(other.pages_);
      cached_base_ = other.cached_base_;
      cached_page_ = other.cached_page_;
      other.invalidate_cache();
    }
    return *this;
  }

  // Raw byte access ---------------------------------------------------------

  [[nodiscard]] std::uint8_t read_u8(std::uint64_t addr) const {
    const auto* page = lookup_page(addr);
    return page ? (*page)[addr & kPageMask] : 0;
  }

  void write_u8(std::uint64_t addr, std::uint8_t v) {
    page_for_write(addr)[addr & kPageMask] = v;
  }

  // Little-endian typed access; handles page-crossing transfers.
  template <typename T>
  [[nodiscard]] T read(std::uint64_t addr) const {
    T v{};
    if ((addr & kPageMask) + sizeof(T) <= kPageSize) {
      if (const auto* page = lookup_page(addr))
        std::memcpy(&v, page->data() + (addr & kPageMask), sizeof(T));
      return v;
    }
    std::uint8_t buf[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) buf[i] = read_u8(addr + i);
    std::memcpy(&v, buf, sizeof(T));
    return v;
  }

  template <typename T>
  void write(std::uint64_t addr, T v) {
    if ((addr & kPageMask) + sizeof(T) <= kPageSize) {
      std::memcpy(page_for_write(addr).data() + (addr & kPageMask), &v,
                  sizeof(T));
      return;
    }
    std::uint8_t buf[sizeof(T)];
    std::memcpy(buf, &v, sizeof(T));
    for (std::size_t i = 0; i < sizeof(T); ++i) write_u8(addr + i, buf[i]);
  }

  // Bulk transfer used by program loading and workload generators; chunked
  // per page so multi-megabyte data sections load with memcpy, not a
  // hash-map probe per byte.
  void write_bytes(std::uint64_t addr, const void* src, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(src);
    while (n > 0) {
      const std::uint64_t off = addr & kPageMask;
      const std::size_t chunk =
          static_cast<std::size_t>(std::min<std::uint64_t>(kPageSize - off, n));
      std::memcpy(page_for_write(addr).data() + off, p, chunk);
      addr += chunk;
      p += chunk;
      n -= chunk;
    }
  }
  void read_bytes(std::uint64_t addr, void* dst, std::size_t n) const {
    auto* p = static_cast<std::uint8_t*>(dst);
    while (n > 0) {
      const std::uint64_t off = addr & kPageMask;
      const std::size_t chunk =
          static_cast<std::size_t>(std::min<std::uint64_t>(kPageSize - off, n));
      if (const auto* page = lookup_page(addr))
        std::memcpy(p, page->data() + off, chunk);
      else
        std::memset(p, 0, chunk);
      addr += chunk;
      p += chunk;
      n -= chunk;
    }
  }

  // Content digest (FNV-1a over allocated pages, page-order independent via
  // address mixing).  Equal memories produce equal digests; used by tests to
  // compare architectural outcomes cheaply.
  [[nodiscard]] std::uint64_t digest() const {
    std::uint64_t acc = 0;
    for (const auto& [base, page] : pages_) {
      std::uint64_t h = 1469598103934665603ull;
      for (std::uint8_t b : *page) {
        h ^= b;
        h *= 1099511628211ull;
      }
      acc ^= h ^ (base * 0x9e3779b97f4a7c15ull);
    }
    return acc;
  }

  [[nodiscard]] std::size_t allocated_pages() const noexcept {
    return pages_.size();
  }

 private:
  using Page = std::vector<std::uint8_t>;

  // Cached lookup.  Only present pages are cached (a cached absent page would
  // go stale when a later store allocates it).  Page objects live behind
  // unique_ptr, so cached pointers stay valid across map rehashes.
  [[nodiscard]] const Page* lookup_page(std::uint64_t addr) const {
    const std::uint64_t base = addr >> kPageBits;
    if (base == cached_base_) return cached_page_;
    auto it = pages_.find(base);
    if (it == pages_.end()) return nullptr;
    cached_base_ = base;
    cached_page_ = it->second.get();
    return cached_page_;
  }

  Page& page_for_write(std::uint64_t addr) {
    const std::uint64_t base = addr >> kPageBits;
    if (base == cached_base_) return *cached_page_;
    auto& slot = pages_[base];
    if (!slot) slot = std::make_unique<Page>(kPageSize, std::uint8_t{0});
    cached_base_ = base;
    cached_page_ = slot.get();
    return *slot;
  }

  void invalidate_cache() const noexcept {
    cached_base_ = kNoPage;
    cached_page_ = nullptr;
  }

  void copy_pages(const Memory& other) {
    pages_.reserve(other.pages_.size());
    for (const auto& [base, page] : other.pages_)
      pages_.emplace(base, std::make_unique<Page>(*page));
  }

  static constexpr std::uint64_t kNoPage = ~0ull;

  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
  mutable std::uint64_t cached_base_ = kNoPage;
  mutable Page* cached_page_ = nullptr;
};

}  // namespace hidisc::sim
