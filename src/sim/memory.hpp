// Sparse byte-addressable main memory.
//
// Backs both the functional simulator (architectural state) and workload
// data-set generators.  Pages are allocated on first touch; reads of
// untouched memory return zero, matching a zero-initialized address space.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

namespace hidisc::sim {

class Memory {
 public:
  static constexpr std::uint64_t kPageBits = 12;
  static constexpr std::uint64_t kPageSize = 1ull << kPageBits;
  static constexpr std::uint64_t kPageMask = kPageSize - 1;

  // Raw byte access ---------------------------------------------------------

  [[nodiscard]] std::uint8_t read_u8(std::uint64_t addr) const {
    const auto* page = find_page(addr);
    return page ? (*page)[addr & kPageMask] : 0;
  }

  void write_u8(std::uint64_t addr, std::uint8_t v) {
    touch_page(addr)[addr & kPageMask] = v;
  }

  // Little-endian typed access; handles page-crossing transfers.
  template <typename T>
  [[nodiscard]] T read(std::uint64_t addr) const {
    T v{};
    if ((addr & kPageMask) + sizeof(T) <= kPageSize) {
      if (const auto* page = find_page(addr))
        std::memcpy(&v, page->data() + (addr & kPageMask), sizeof(T));
      return v;
    }
    std::uint8_t buf[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) buf[i] = read_u8(addr + i);
    std::memcpy(&v, buf, sizeof(T));
    return v;
  }

  template <typename T>
  void write(std::uint64_t addr, T v) {
    if ((addr & kPageMask) + sizeof(T) <= kPageSize) {
      std::memcpy(touch_page(addr).data() + (addr & kPageMask), &v,
                  sizeof(T));
      return;
    }
    std::uint8_t buf[sizeof(T)];
    std::memcpy(buf, &v, sizeof(T));
    for (std::size_t i = 0; i < sizeof(T); ++i) write_u8(addr + i, buf[i]);
  }

  // Bulk transfer used by program loading and workload generators.
  void write_bytes(std::uint64_t addr, const void* src, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(src);
    for (std::size_t i = 0; i < n; ++i) write_u8(addr + i, p[i]);
  }
  void read_bytes(std::uint64_t addr, void* dst, std::size_t n) const {
    auto* p = static_cast<std::uint8_t*>(dst);
    for (std::size_t i = 0; i < n; ++i) p[i] = read_u8(addr + i);
  }

  // Content digest (FNV-1a over allocated pages, page-order independent via
  // address mixing).  Equal memories produce equal digests; used by tests to
  // compare architectural outcomes cheaply.
  [[nodiscard]] std::uint64_t digest() const {
    std::uint64_t acc = 0;
    for (const auto& [base, page] : pages_) {
      std::uint64_t h = 1469598103934665603ull;
      for (std::uint8_t b : *page) {
        h ^= b;
        h *= 1099511628211ull;
      }
      acc ^= h ^ (base * 0x9e3779b97f4a7c15ull);
    }
    return acc;
  }

  [[nodiscard]] std::size_t allocated_pages() const noexcept {
    return pages_.size();
  }

 private:
  using Page = std::vector<std::uint8_t>;

  [[nodiscard]] const Page* find_page(std::uint64_t addr) const {
    auto it = pages_.find(addr >> kPageBits);
    return it == pages_.end() ? nullptr : it->second.get();
  }

  Page& touch_page(std::uint64_t addr) {
    auto& slot = pages_[addr >> kPageBits];
    if (!slot) slot = std::make_unique<Page>(kPageSize, std::uint8_t{0});
    return *slot;
  }

  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

}  // namespace hidisc::sim
