// Pre-decoded threaded-code form of a HISA program.
//
// `decode_program` lowers each static `isa::Instruction` once into a flat
// 24-byte `DecodedOp`: an execution-kind byte that doubles as the dispatch
// index, raw operand register indices, the immediate (pre-shifted for LUI),
// the pre-resolved branch target, and the producer-side queue-push flags
// from the annotation.  The interpreter in interp.cpp then executes the
// table with computed-goto dispatch instead of re-inspecting the
// instruction encoding on every dynamic step (docs/FUNCTIONAL.md).
//
// A superinstruction pass additionally fuses the dominant fall-through
// decode pairs observed in the paper kernels (cmp+branch, load+add address
// chains, addi+addi induction updates) into single dispatch targets.
// Fusion only rewrites the *kind* of the first instruction of a pair; the
// second instruction's slot keeps its own decoded form, so control transfers
// that land in the middle of a pair (including dynamic JR/JALR targets)
// execute it unfused with identical semantics.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "isa/program.hpp"

namespace hidisc::sim {

// X-macro over the HISA opcodes in isa::Opcode declaration order.  The
// interpreter builds its dispatch table from this list; the static_asserts
// below pin the order to the enum so a reordering is a compile error.
#define HIDISC_SIM_OPCODES(X)                                          \
  X(ADD) X(SUB) X(MUL) X(DIV) X(REM)                                   \
  X(AND) X(OR) X(XOR) X(NOR)                                           \
  X(SLL) X(SRL) X(SRA) X(SLT) X(SLTU)                                  \
  X(ADDI) X(ANDI) X(ORI) X(XORI)                                       \
  X(SLLI) X(SRLI) X(SRAI) X(SLTI) X(LUI)                               \
  X(FADD) X(FSUB) X(FMUL) X(FDIV) X(FSQRT)                             \
  X(FMIN) X(FMAX) X(FNEG) X(FABS) X(FMOV)                              \
  X(CVTIF) X(CVTFI) X(FEQ) X(FLT) X(FLE)                               \
  X(LB) X(LBU) X(LH) X(LHU) X(LW) X(LWU) X(LD) X(FLD)                  \
  X(SB) X(SH) X(SW) X(SD) X(FSD) X(PREF)                               \
  X(BEQ) X(BNE) X(BLT) X(BGE) X(BLTU) X(BGEU)                          \
  X(J) X(JAL) X(JR) X(JALR) X(HALT)                                    \
  X(PUSHLDQ) X(PUSHLDQF) X(POPLDQ) X(POPLDQF)                          \
  X(PUSHSDQ) X(PUSHSDQF) X(POPSDQ) X(POPSDQF)                          \
  X(PUTEOD) X(BEOD) X(GETSCQ) X(PUTSCQ) X(NOP)

// Fused superinstructions: the dominant dynamic fall-through pairs measured
// across the paper plan's original+separated binaries (frequencies in
// docs/FUNCTIONAL.md), plus the cmp+branch family.
#define HIDISC_SIM_FUSED(X)                                            \
  X(AddiAddi) X(AddiBne) X(FmulFadd) X(AddLd) X(LdAdd) X(MulAdd)       \
  X(SlliAdd) X(LdAddi) X(LdBge)                                        \
  X(SltBne) X(SltiBne) X(SltuBne) X(SltBeq) X(SltiBeq)

enum ExecKind : std::uint8_t {
#define X(n) kExec##n,
  HIDISC_SIM_OPCODES(X)
#undef X
  kExecInvalid,  // == isa::Opcode::kCount: throwing handler
#define X(n) kFuse##n,
  HIDISC_SIM_FUSED(X)
#undef X
  kNumExecKinds,
};

#define X(n) \
  static_assert(kExec##n == static_cast<int>(isa::Opcode::n));
HIDISC_SIM_OPCODES(X)
#undef X
static_assert(kExecInvalid == static_cast<int>(isa::Opcode::kCount));

// Destination slot used when an instruction writes nothing architectural
// (r0 destination, store, branch, ...).  The interpreter's hot-loop register
// file has a 33rd scratch slot so handlers commit unconditionally.
inline constexpr std::uint8_t kSinkReg = 32;

// Producer-side queue pushes from isa::Annotation.
inline constexpr std::uint8_t kFlagPushLdq = 1;
inline constexpr std::uint8_t kFlagPushSdq = 2;
inline constexpr std::uint8_t kFlagPushAny = kFlagPushLdq | kFlagPushSdq;

struct DecodedOp {
  std::int64_t imm = 0;        // immediate; LUI stores imm << 16
  std::int32_t target = -1;    // pre-resolved branch/jump target
  std::uint8_t kind = kExecNOP;
  std::uint8_t dst = kSinkReg; // commit slot in the handler's register file
  std::uint8_t src1 = 0;       // raw register index (file chosen by handler)
  std::uint8_t src2 = 0;
  std::uint8_t flags = 0;      // kFlagPush*
  std::uint8_t pad_[3]{};
};
static_assert(sizeof(DecodedOp) == 24);

struct DecodeStats {
  std::array<std::uint32_t, kNumExecKinds> kind_count{};
  std::uint32_t fused_sites = 0;  // static pair sites rewritten

  [[nodiscard]] std::uint32_t fused(std::uint8_t kind) const {
    return kind_count[kind];
  }
};

struct DecodedProgram {
  std::vector<DecodedOp> ops;  // 1:1 with Program::code
  DecodeStats stats;
};

// Lowers `prog.code` into a DecodedOp table.  `fuse` enables the
// superinstruction pass (tests disable it to compare against pure
// single-op dispatch).
[[nodiscard]] DecodedProgram decode_program(const isa::Program& prog,
                                            bool fuse = true);

// Human-readable name of an ExecKind ("add", "fuse:addi+bne", ...).
[[nodiscard]] const char* exec_kind_name(std::uint8_t kind) noexcept;

}  // namespace hidisc::sim
