// Functional (architectural) simulator for HISA.
//
// Executes a program sequentially and, optionally, records the dynamic
// trace that drives the cycle-level machines (DESIGN.md §6: trace-driven
// timing).  The simulator honours the decoupling annotation flags
// (push_ldq/push_sdq) and the explicit queue opcodes, maintaining real
// FIFO contents, so both original and compiler-separated binaries execute
// to the same architectural result — the invariant the integration tests
// enforce.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <vector>

#include "isa/program.hpp"
#include "sim/memory.hpp"

namespace hidisc::sim {

// One retired dynamic instruction.  24 bytes; a few million entries is the
// expected scale for the DIS workloads.
struct TraceEntry {
  std::int32_t static_idx = 0;  // index into Program::code
  std::int32_t next = 0;        // index of the dynamically next instruction
  std::uint64_t addr = 0;       // effective address for memory ops
  std::int64_t value = 0;       // result (bit-cast for FP); stores: data
};

using Trace = std::vector<TraceEntry>;

class ExecError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Functional {
 public:
  // The default step budget aborts runaway programs (e.g. a miscompiled
  // benchmark looping forever) long before memory is exhausted.
  static constexpr std::uint64_t kDefaultMaxSteps = 200'000'000;

  explicit Functional(const isa::Program& prog);

  // Runs until HALT.  Throws ExecError on bad programs (queue underflow,
  // division by zero, step budget exceeded, pc out of range).
  void run(std::uint64_t max_steps = kDefaultMaxSteps);

  // Runs until HALT while recording the dynamic trace.
  [[nodiscard]] Trace run_trace(std::uint64_t max_steps = kDefaultMaxSteps);

  // Single step; returns false once halted.
  bool step(TraceEntry* out = nullptr);

  // Architectural state access ----------------------------------------------
  [[nodiscard]] std::int64_t reg(int idx) const { return iregs_[idx]; }
  [[nodiscard]] double freg(int idx) const { return fregs_[idx]; }
  void set_reg(int idx, std::int64_t v) {
    if (idx != 0) iregs_[idx] = v;
  }
  void set_freg(int idx, double v) { fregs_[idx] = v; }
  [[nodiscard]] Memory& memory() noexcept { return mem_; }
  [[nodiscard]] const Memory& memory() const noexcept { return mem_; }
  [[nodiscard]] bool halted() const noexcept { return halted_; }
  [[nodiscard]] std::uint64_t instructions() const noexcept { return icount_; }
  [[nodiscard]] std::int32_t pc() const noexcept { return pc_; }

  // Digest of registers + memory; equal digests across machine
  // configurations certify identical architectural outcomes.
  [[nodiscard]] std::uint64_t state_digest() const;

 private:
  struct QVal {
    enum class Tag : std::uint8_t { Int, Fp, Eod } tag = Tag::Int;
    std::int64_t bits = 0;
  };

  [[nodiscard]] QVal pop_queue(std::deque<QVal>& q, const char* name);

  const isa::Program& prog_;
  Memory mem_;
  std::array<std::int64_t, isa::kNumIntRegs> iregs_{};
  std::array<double, isa::kNumFpRegs> fregs_{};
  std::deque<QVal> ldq_;
  std::deque<QVal> sdq_;
  std::int64_t scq_tokens_ = 0;
  std::int32_t pc_ = 0;
  bool halted_ = false;
  std::uint64_t icount_ = 0;
};

}  // namespace hidisc::sim
