// Functional (architectural) simulator for HISA.
//
// Executes a program sequentially and, optionally, records the dynamic
// trace that drives the cycle-level machines (DESIGN.md §6: trace-driven
// timing).  The simulator honours the decoupling annotation flags
// (push_ldq/push_sdq) and the explicit queue opcodes, maintaining real
// FIFO contents, so both original and compiler-separated binaries execute
// to the same architectural result — the invariant the integration tests
// enforce.
//
// Two interpreters share this architectural state (docs/FUNCTIONAL.md):
//
//  * the threaded-code interpreter (decoded.hpp + interp.cpp) — the fast
//    path behind run()/run_trace(): pre-decoded DecodedOp table,
//    computed-goto dispatch, superinstruction fusion, batched trace
//    emission into a pre-sized buffer;
//  * the reference switch interpreter (step(), run_ref(), run_trace_ref())
//    — the original giant-switch implementation, kept as the semantic
//    oracle.  Setting HIDISC_FSIM_REF=1 (mirroring HIDISC_LOCKSTEP) makes
//    every run()/run_trace() shadow-execute the reference interpreter on a
//    snapshot and byte-compare traces and final state.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "isa/program.hpp"
#include "sim/memory.hpp"

namespace hidisc::sim {

struct DecodedProgram;

// HISA FP semantics pin the one bit-level freedom IEEE 754 leaves open:
// an arithmetic result that is NaN always commits as the canonical quiet
// NaN (0x7ff8000000000000).  Hardware is looser — x86 propagates the
// *first machine operand's* NaN payload, so a commutative add of two
// NaNs can return either payload depending on how the compiler allocated
// registers.  Left unpinned, trace bytes would depend on codegen context,
// which is fatal for the dual-interpreter byte-identity invariant and
// for trace caches shared across builds.  Both interpreters apply this
// to every NaN-capable arithmetic op (FADD..FMAX); pure bit operations
// (FNEG/FABS/FMOV, loads, queue moves) preserve payloads exactly and
// are deterministic without it.
inline double canon_nan(double v) {
  return std::isnan(v) ? std::numeric_limits<double>::quiet_NaN() : v;
}

// One retired dynamic instruction.  24 bytes; a few million entries is the
// expected scale for the DIS workloads.
struct TraceEntry {
  std::int32_t static_idx = 0;  // index into Program::code
  std::int32_t next = 0;        // index of the dynamically next instruction
  std::uint64_t addr = 0;       // effective address for memory ops
  std::int64_t value = 0;       // result (bit-cast for FP); stores: data
};

using Trace = std::vector<TraceEntry>;

class ExecError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Functional {
 public:
  // The default step budget aborts runaway programs (e.g. a miscompiled
  // benchmark looping forever) long before memory is exhausted.
  static constexpr std::uint64_t kDefaultMaxSteps = 200'000'000;

  // Trace buffers are pre-sized from the step budget, capped here (8 Mi
  // entries = 192 MiB) so small kernels with a large budget reserve lazily
  // committed address space, not resident memory.
  static constexpr std::uint64_t kTraceReserveCap = 1ull << 23;

  explicit Functional(const isa::Program& prog);

  // Deep copy (memory pages cloned; the decoded table is shared).  Used by
  // the HIDISC_FSIM_REF shadow oracle to snapshot state mid-flight.
  Functional(const Functional&) = default;

  // Runs until HALT.  Throws ExecError on bad programs (queue underflow,
  // division by zero, step budget exceeded, pc out of range).
  void run(std::uint64_t max_steps = kDefaultMaxSteps);

  // Runs until HALT while recording the dynamic trace.
  [[nodiscard]] Trace run_trace(std::uint64_t max_steps = kDefaultMaxSteps);

  // Reference-interpreter equivalents of run()/run_trace(): drive the
  // original switch interpreter step by step.  Byte-identical behaviour to
  // the threaded path is the hard invariant; the fuzz oracle's
  // dual-interpreter leg and the HIDISC_FSIM_REF shadow both compare
  // against these.
  void run_ref(std::uint64_t max_steps = kDefaultMaxSteps);
  [[nodiscard]] Trace run_trace_ref(
      std::uint64_t max_steps = kDefaultMaxSteps);

  // Single step of the reference switch interpreter; returns false once
  // halted.  Interleaves freely with run()/run_trace(), which resume from
  // whatever state it leaves.
  bool step(TraceEntry* out = nullptr);

  // The lazily built threaded-code table for this program (decode stats,
  // superinstruction sites).  Exposed for tests and diagnostics.
  [[nodiscard]] const DecodedProgram& decoded_program();

  // True when HIDISC_FSIM_REF is set: run()/run_trace() shadow-execute the
  // reference interpreter and compare.
  [[nodiscard]] static bool ref_shadow_enabled() noexcept;

  // Architectural state access ----------------------------------------------
  [[nodiscard]] std::int64_t reg(int idx) const { return iregs_[idx]; }
  [[nodiscard]] double freg(int idx) const { return fregs_[idx]; }
  void set_reg(int idx, std::int64_t v) {
    if (idx != 0) iregs_[idx] = v;
  }
  void set_freg(int idx, double v) { fregs_[idx] = v; }
  [[nodiscard]] Memory& memory() noexcept { return mem_; }
  [[nodiscard]] const Memory& memory() const noexcept { return mem_; }
  [[nodiscard]] bool halted() const noexcept { return halted_; }
  [[nodiscard]] std::uint64_t instructions() const noexcept { return icount_; }
  [[nodiscard]] std::int32_t pc() const noexcept { return pc_; }

  // Digest of registers + memory; equal digests across machine
  // configurations certify identical architectural outcomes.
  [[nodiscard]] std::uint64_t state_digest() const;

 private:
  struct QVal {
    enum class Tag : std::uint8_t { Int, Fp, Eod } tag = Tag::Int;
    std::int64_t bits = 0;

    bool operator==(const QVal&) const = default;
  };

  [[nodiscard]] QVal pop_queue(std::deque<QVal>& q, const char* name);

  void ensure_decoded();

  // The threaded-code hot loop (interp.cpp).  Executes until HALT, budget
  // exhaustion or an ExecError; when kEmit, appends one TraceEntry per
  // retired instruction to *out.
  template <bool kEmit>
  void exec_threaded(std::uint64_t max_steps, Trace* out);

  // Shadow-compare `*this` (already run) against `ref` (snapshot taken
  // before running) after replaying the reference interpreter; throws
  // ExecError on any divergence.
  void shadow_compare(Functional& ref, std::uint64_t max_steps,
                      const Trace* got_trace, bool got_ok,
                      const std::string& got_err);

  const isa::Program& prog_;
  Memory mem_;
  std::array<std::int64_t, isa::kNumIntRegs> iregs_{};
  std::array<double, isa::kNumFpRegs> fregs_{};
  std::deque<QVal> ldq_;
  std::deque<QVal> sdq_;
  std::int64_t scq_tokens_ = 0;
  std::int32_t pc_ = 0;
  bool halted_ = false;
  std::uint64_t icount_ = 0;
  std::shared_ptr<const DecodedProgram> decoded_;
};

}  // namespace hidisc::sim
