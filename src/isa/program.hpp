// A HISA program: code, initial data image, and symbol tables.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/instruction.hpp"

namespace hidisc::isa {

// Layout constants.  Memory is a sparse 64-bit byte-addressable space; these
// bases merely keep segments apart.
inline constexpr std::uint64_t kDataBase = 0x1000'0000;
inline constexpr std::uint64_t kStackTop = 0x7fff'ff00;
inline constexpr std::uint64_t kHeapBase = 0x4000'0000;
// Nominal address of instruction index i (i * kInstrBytes + kTextBase);
// used by the instruction-cache model.
inline constexpr std::uint64_t kTextBase = 0x0040'0000;
inline constexpr std::uint64_t kInstrBytes = 8;

struct Program {
  std::vector<Instruction> code;
  std::vector<std::uint8_t> data;         // image loaded at `data_base`
  std::uint64_t data_base = kDataBase;
  std::unordered_map<std::string, std::uint64_t> data_labels;  // -> address
  std::unordered_map<std::string, std::int32_t> code_labels;   // -> index
  std::int32_t entry = 0;

  [[nodiscard]] std::size_t size() const noexcept { return code.size(); }

  // Address of a data label; throws std::out_of_range if absent.
  [[nodiscard]] std::uint64_t data_addr(const std::string& label) const;
  // Instruction index of a code label; throws std::out_of_range if absent.
  [[nodiscard]] std::int32_t code_index(const std::string& label) const;

  // Inserts `inst` so that it executes immediately after position `pos`
  // (i.e. at index pos+1), remapping every branch/jump target and code
  // label.  A control transfer to an index > pos keeps pointing at the
  // same original instruction.  Used by the HiDISC compiler to place
  // communication instructions.
  void insert_after(std::int32_t pos, Instruction inst);

  // Inserts `inst` so that it executes immediately before `pos` and is
  // reached by every control transfer that targeted `pos`.
  void insert_before(std::int32_t pos, Instruction inst);

  // Removes the instruction at `pos`, remapping branch/jump targets, code
  // labels, and the entry point.  Transfers that targeted `pos` fall
  // through to its successor.  Used by the fuzz fault injector.
  void erase_at(std::int32_t pos);
};

}  // namespace hidisc::isa
