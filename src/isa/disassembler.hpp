// Disassembly of HISA instructions back to assembler-compatible text.
#pragma once

#include <string>

#include "isa/instruction.hpp"
#include "isa/program.hpp"

namespace hidisc::isa {

// Renders one instruction.  The output re-assembles to an equal instruction
// (modulo annotation, which is printed as a trailing comment when present).
[[nodiscard]] std::string disassemble(const Instruction& inst);

// Renders a whole program, one instruction per line, prefixed with the
// instruction index and synthesized `L<idx>:` labels at branch targets.
[[nodiscard]] std::string disassemble(const Program& prog);

}  // namespace hidisc::isa
