// HISA opcode definitions.
//
// HISA is the self-contained MIPS/PISA-like instruction set used throughout
// this repository (see DESIGN.md §2 for why we define our own rather than
// depending on SimpleScalar's PISA).  Integer registers are 64-bit, floating
// point registers hold IEEE-754 doubles, memory is byte-addressed and
// little-endian.
//
// The queue opcodes (POPLDQ / PUSHSDQ / PUTEOD / BEOD / GETSCQ / PUTSCQ)
// implement the architectural FIFOs of the decoupled machine (paper §3.2).
// They appear either in compiler-separated binaries or in hand-written
// decoupled assembly such as the paper's Figure 3 example.
#pragma once

#include <cstdint>
#include <string_view>

namespace hidisc::isa {

enum class Opcode : std::uint8_t {
  // Integer register-register ALU.
  ADD, SUB, MUL, DIV, REM,
  AND, OR, XOR, NOR,
  SLL, SRL, SRA,
  SLT, SLTU,
  // Integer register-immediate ALU.
  ADDI, ANDI, ORI, XORI,
  SLLI, SRLI, SRAI, SLTI,
  LUI,
  // Floating point (doubles).
  FADD, FSUB, FMUL, FDIV, FSQRT,
  FMIN, FMAX, FNEG, FABS, FMOV,
  CVTIF,   // int reg -> fp reg
  CVTFI,   // fp reg -> int reg (truncating)
  FEQ, FLT, FLE,  // fp compare, integer 0/1 result
  // Memory.
  LB, LBU, LH, LHU, LW, LWU, LD,  // integer loads (sign/zero extending)
  FLD,                            // fp load (8 bytes)
  SB, SH, SW, SD,                 // integer stores
  FSD,                            // fp store (8 bytes)
  PREF,                           // data prefetch into L1 (no arch effect)
  // Control.
  BEQ, BNE, BLT, BGE, BLTU, BGEU,
  J, JAL, JR, JALR,
  HALT,
  // Decoupling queues (paper §3.2).
  PUSHLDQ,   // push int reg onto Load Data Queue   (AP side)
  PUSHLDQF,  // push fp reg onto Load Data Queue
  POPLDQ,    // pop LDQ into int reg                (CP side)
  POPLDQF,   // pop LDQ into fp reg
  PUSHSDQ,   // push int reg onto Store Data Queue  (CP side)
  PUSHSDQF,  // push fp reg onto Store Data Queue
  POPSDQ,    // pop SDQ into int reg                (AP side)
  POPSDQF,   // pop SDQ into fp reg
  PUTEOD,    // AP: deposit End-Of-Data token into the LDQ
  BEOD,      // CP: if LDQ head is EOD, consume it and branch
  GETSCQ,    // AP: consume one Slip Control Queue token
  PUTSCQ,    // CMP: produce one Slip Control Queue token
  NOP,
  kCount,
};

inline constexpr int kNumOpcodes = static_cast<int>(Opcode::kCount);

// Coarse execution class; selects the functional-unit pool and base latency
// in the timing model (Table 1 of the paper).
enum class OpClass : std::uint8_t {
  IntAlu, IntMul, IntDiv,
  FpAlu, FpMul, FpDiv,
  Load, Store, Prefetch,
  Branch, Jump,
  Queue,   // queue push/pop/token ops: single-cycle, in-order per queue
  Halt, Nop,
};

struct OpInfo {
  std::string_view name;   // assembler mnemonic
  OpClass cls;
  int latency;             // execution latency in cycles (FU occupancy is 1)
  bool writes_dst;         // instruction writes `dst`
  bool reads_src1;
  bool reads_src2;
  bool has_imm;
  bool is_fp_dst;          // dst is an FP register
  bool is_fp_src;          // src operands are FP registers
};

// Returns the static description of `op`.  Total function over the enum.
const OpInfo& op_info(Opcode op) noexcept;

[[nodiscard]] inline bool is_load(Opcode op) noexcept {
  return op_info(op).cls == OpClass::Load;
}
[[nodiscard]] inline bool is_store(Opcode op) noexcept {
  return op_info(op).cls == OpClass::Store;
}
[[nodiscard]] inline bool is_mem(Opcode op) noexcept {
  const OpClass c = op_info(op).cls;
  return c == OpClass::Load || c == OpClass::Store || c == OpClass::Prefetch;
}
[[nodiscard]] inline bool is_branch(Opcode op) noexcept {
  return op_info(op).cls == OpClass::Branch;
}
[[nodiscard]] inline bool is_jump(Opcode op) noexcept {
  return op_info(op).cls == OpClass::Jump;
}
[[nodiscard]] inline bool is_control(Opcode op) noexcept {
  return is_branch(op) || is_jump(op) || op == Opcode::BEOD;
}
[[nodiscard]] inline bool is_fp_compute(Opcode op) noexcept {
  const OpClass c = op_info(op).cls;
  return c == OpClass::FpAlu || c == OpClass::FpMul || c == OpClass::FpDiv;
}
[[nodiscard]] inline bool is_queue_op(Opcode op) noexcept {
  return op_info(op).cls == OpClass::Queue;
}

// Number of bytes moved by a memory opcode (0 for non-memory ops).
[[nodiscard]] int mem_width(Opcode op) noexcept;

}  // namespace hidisc::isa
