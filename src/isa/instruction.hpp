// HISA instruction and annotation model.
//
// An `Instruction` is the in-memory form produced by the assembler and
// consumed by the functional simulator, the HiDISC compiler, and the timing
// machines.  The `Annotation` mirrors the paper's per-instruction annotation
// field (paper §3.1/§4): it carries the stream tag used by the separator,
// the queue-communication flags, and the CMAS/trigger marks.
#pragma once

#include <cstdint>
#include <string>

#include "isa/opcode.hpp"

namespace hidisc::isa {

enum class RegKind : std::uint8_t { None, Int, Fp };

// A register operand.  r0 is hardwired to zero.
struct Reg {
  RegKind kind = RegKind::None;
  std::uint8_t idx = 0;

  [[nodiscard]] constexpr bool valid() const noexcept {
    return kind != RegKind::None;
  }
  [[nodiscard]] constexpr bool is_int() const noexcept {
    return kind == RegKind::Int;
  }
  [[nodiscard]] constexpr bool is_fp() const noexcept {
    return kind == RegKind::Fp;
  }
  // Flat index over the combined register space [0, kNumArchRegs): integer
  // registers first, then FP.  Used by dependence analyses.
  [[nodiscard]] constexpr int flat() const noexcept {
    return kind == RegKind::Fp ? 32 + idx : idx;
  }
  constexpr auto operator<=>(const Reg&) const = default;
};

inline constexpr int kNumIntRegs = 32;
inline constexpr int kNumFpRegs = 32;
inline constexpr int kNumArchRegs = kNumIntRegs + kNumFpRegs;

constexpr Reg ir(std::uint8_t i) noexcept { return Reg{RegKind::Int, i}; }
constexpr Reg fr(std::uint8_t i) noexcept { return Reg{RegKind::Fp, i}; }
constexpr Reg no_reg() noexcept { return Reg{}; }

// Conventional register roles used by the assembler and workloads.
inline constexpr Reg kZero = ir(0);
inline constexpr Reg kRa = ir(31);    // link register for jal/jalr
inline constexpr Reg kSp = ir(29);    // stack pointer
inline constexpr Reg kGp = ir(28);    // global pointer

// Which stream an instruction belongs to after separation (paper §4.2).
enum class Stream : std::uint8_t {
  None,     // unseparated binary (superscalar input)
  Compute,  // Computation Stream -> CP
  Access,   // Access Stream -> AP
};

// Per-instruction annotation field (paper: "the annotation field of the
// SimpleScalar binary" conveys separation, CMAS membership and triggers).
struct Annotation {
  Stream stream = Stream::None;
  // Producer-side queue communication: the instruction's result value is
  // additionally deposited into the LDQ (AP->CP) or SDQ (CP->AP) when it
  // completes.  The matching consumer-side POPLDQ/POPSDQ instruction is
  // inserted by the compiler immediately after this instruction.
  bool push_ldq = false;
  bool push_sdq = false;
  // CMAS (Cache Miss Access Slice) membership, paper §3.1/§4.2.
  bool in_cmas = false;
  std::int16_t cmas_group = -1;   // slice id this instruction belongs to
  // For CMAS loads: true when some instruction of the same group reads the
  // loaded value (pointer chasing) — the CMP must then wait for the data;
  // otherwise the load is a fire-and-forget prefetch.
  bool cmas_value_live = false;
  // Trigger: when this instruction enters the Access Instruction Queue the
  // CMP forks slice `trigger_group`.
  bool is_trigger = false;
  std::int16_t trigger_group = -1;
  // Marks instructions inserted by the compiler (communication ops); used
  // for reporting the separation overhead.
  bool compiler_inserted = false;

  constexpr bool operator==(const Annotation&) const = default;
};

struct Instruction {
  Opcode op = Opcode::NOP;
  Reg dst;          // destination register (if op_info().writes_dst)
  Reg src1;         // first source; base register for memory ops
  Reg src2;         // second source; data register for stores
  std::int64_t imm = 0;    // immediate / memory displacement
  std::int32_t target = -1;  // branch/jump target as an instruction index
  Annotation ann;

  [[nodiscard]] const OpInfo& info() const noexcept { return op_info(op); }
  constexpr bool operator==(const Instruction&) const = default;
};

// Human-readable register name ("r4", "f12", "-").
[[nodiscard]] std::string reg_name(Reg r);

}  // namespace hidisc::isa
