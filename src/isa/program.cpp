#include "isa/program.hpp"

#include <stdexcept>

namespace hidisc::isa {
namespace {

// Shifts all control-transfer targets, code labels, and the entry point
// that satisfy `t >= threshold` up by one, after a single insertion.
void remap_targets(Program& p, std::int32_t threshold) {
  for (auto& inst : p.code) {
    if (inst.target >= threshold) ++inst.target;
  }
  for (auto& [name, idx] : p.code_labels) {
    if (idx >= threshold) ++idx;
  }
  if (p.entry >= threshold) ++p.entry;
}

}  // namespace

std::uint64_t Program::data_addr(const std::string& label) const {
  auto it = data_labels.find(label);
  if (it == data_labels.end())
    throw std::out_of_range("unknown data label: " + label);
  return it->second;
}

std::int32_t Program::code_index(const std::string& label) const {
  auto it = code_labels.find(label);
  if (it == code_labels.end())
    throw std::out_of_range("unknown code label: " + label);
  return it->second;
}

void Program::insert_after(std::int32_t pos, Instruction inst) {
  const auto at = pos + 1;
  if (at < 0 || at > static_cast<std::int32_t>(code.size()))
    throw std::out_of_range("insert_after: bad position");
  if (inst.target >= at) ++inst.target;  // pre-adjust the new instruction
  remap_targets(*this, at);
  code.insert(code.begin() + at, inst);
}

void Program::erase_at(std::int32_t pos) {
  if (pos < 0 || pos >= static_cast<std::int32_t>(code.size()))
    throw std::out_of_range("erase_at: bad position");
  code.erase(code.begin() + pos);
  for (auto& inst : code) {
    if (inst.target > pos) --inst.target;
  }
  for (auto& [name, idx] : code_labels) {
    if (idx > pos) --idx;
  }
  if (entry > pos) --entry;
}

void Program::insert_before(std::int32_t pos, Instruction inst) {
  if (pos < 0 || pos > static_cast<std::int32_t>(code.size()))
    throw std::out_of_range("insert_before: bad position");
  if (inst.target > pos) ++inst.target;
  // Transfers to `pos` keep their index (they now reach the inserted
  // instruction first); everything strictly beyond shifts by one.
  remap_targets(*this, pos + 1);
  code.insert(code.begin() + pos, inst);
}

}  // namespace hidisc::isa
