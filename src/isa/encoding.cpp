#include "isa/encoding.hpp"

#include <cstring>
#include <stdexcept>

namespace hidisc::isa {
namespace {

std::uint8_t pack_reg(Reg r) noexcept {
  if (!r.valid()) return 0;
  return static_cast<std::uint8_t>(0x40 | (r.is_fp() ? 0x80 : 0) |
                                   (r.idx & 0x1f));
}

Reg unpack_reg(std::uint8_t b) {
  if (!(b & 0x40)) return no_reg();
  const auto idx = static_cast<std::uint8_t>(b & 0x1f);
  return (b & 0x80) ? fr(idx) : ir(idx);
}

template <typename T>
void put(std::uint8_t* p, T v) noexcept {
  std::memcpy(p, &v, sizeof v);
}
template <typename T>
T get(const std::uint8_t* p) noexcept {
  T v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

constexpr std::uint32_t kAnnStreamMask = 0x3;
constexpr std::uint32_t kAnnPushLdq = 1u << 2;
constexpr std::uint32_t kAnnPushSdq = 1u << 3;
constexpr std::uint32_t kAnnInCmas = 1u << 4;
constexpr std::uint32_t kAnnTrigger = 1u << 5;
constexpr std::uint32_t kAnnInserted = 1u << 6;
constexpr std::uint32_t kAnnCmasLive = 1u << 7;

std::uint32_t pack_ann_flags(const Annotation& a) noexcept {
  std::uint32_t f = static_cast<std::uint32_t>(a.stream) & kAnnStreamMask;
  if (a.push_ldq) f |= kAnnPushLdq;
  if (a.push_sdq) f |= kAnnPushSdq;
  if (a.in_cmas) f |= kAnnInCmas;
  if (a.is_trigger) f |= kAnnTrigger;
  if (a.compiler_inserted) f |= kAnnInserted;
  if (a.cmas_value_live) f |= kAnnCmasLive;
  f |= static_cast<std::uint32_t>(static_cast<std::uint16_t>(a.cmas_group))
       << 16;
  return f;
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto n = out.size();
  out.resize(n + 4);
  put(out.data() + n, v);
}
void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const auto n = out.size();
  out.resize(n + 8);
  put(out.data() + n, v);
}
void append_str(std::vector<std::uint8_t>& out, const std::string& s) {
  append_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  std::string str() {
    const auto n = u32();
    require(n);
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  void bytes(void* dst, std::size_t n) {
    require(n);
    std::memcpy(dst, buf_.data() + pos_, n);
    pos_ += n;
  }

 private:
  template <typename T>
  T take() {
    require(sizeof(T));
    T v = get<T>(buf_.data() + pos_);
    pos_ += sizeof(T);
    return v;
  }
  void require(std::size_t n) const {
    if (pos_ + n > buf_.size())
      throw std::runtime_error("truncated program image");
  }
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

}  // namespace

std::array<std::uint8_t, kEncodedInstrBytes> encode(
    const Instruction& inst) noexcept {
  std::array<std::uint8_t, kEncodedInstrBytes> rec{};
  rec[0] = static_cast<std::uint8_t>(inst.op);
  rec[1] = pack_reg(inst.dst);
  rec[2] = pack_reg(inst.src1);
  rec[3] = pack_reg(inst.src2);
  put(rec.data() + 4, inst.imm);
  put(rec.data() + 12, inst.target);
  put(rec.data() + 16, pack_ann_flags(inst.ann));
  put(rec.data() + 20,
      static_cast<std::uint32_t>(
          static_cast<std::uint16_t>(inst.ann.trigger_group)));
  return rec;
}

Instruction decode(const std::array<std::uint8_t, kEncodedInstrBytes>& rec) {
  if (rec[0] >= kNumOpcodes)
    throw std::runtime_error("decode: bad opcode byte");
  Instruction inst;
  inst.op = static_cast<Opcode>(rec[0]);
  inst.dst = unpack_reg(rec[1]);
  inst.src1 = unpack_reg(rec[2]);
  inst.src2 = unpack_reg(rec[3]);
  inst.imm = get<std::int64_t>(rec.data() + 4);
  inst.target = get<std::int32_t>(rec.data() + 12);
  const auto f = get<std::uint32_t>(rec.data() + 16);
  inst.ann.stream = static_cast<Stream>(f & kAnnStreamMask);
  inst.ann.push_ldq = f & kAnnPushLdq;
  inst.ann.push_sdq = f & kAnnPushSdq;
  inst.ann.in_cmas = f & kAnnInCmas;
  inst.ann.is_trigger = f & kAnnTrigger;
  inst.ann.compiler_inserted = f & kAnnInserted;
  inst.ann.cmas_value_live = f & kAnnCmasLive;
  inst.ann.cmas_group =
      static_cast<std::int16_t>(static_cast<std::uint16_t>(f >> 16));
  inst.ann.trigger_group = static_cast<std::int16_t>(
      static_cast<std::uint16_t>(get<std::uint32_t>(rec.data() + 20)));
  return inst;
}

std::vector<std::uint8_t> save_program(const Program& prog) {
  std::vector<std::uint8_t> out;
  append_u32(out, kProgramMagic);
  append_u32(out, 1);  // version
  append_u32(out, static_cast<std::uint32_t>(prog.code.size()));
  for (const auto& inst : prog.code) {
    const auto rec = encode(inst);
    out.insert(out.end(), rec.begin(), rec.end());
  }
  append_u64(out, prog.data_base);
  append_u32(out, static_cast<std::uint32_t>(prog.data.size()));
  out.insert(out.end(), prog.data.begin(), prog.data.end());
  append_u32(out, static_cast<std::uint32_t>(prog.data_labels.size()));
  for (const auto& [name, addr] : prog.data_labels) {
    append_str(out, name);
    append_u64(out, addr);
  }
  append_u32(out, static_cast<std::uint32_t>(prog.code_labels.size()));
  for (const auto& [name, idx] : prog.code_labels) {
    append_str(out, name);
    append_u32(out, static_cast<std::uint32_t>(idx));
  }
  append_u32(out, static_cast<std::uint32_t>(prog.entry));
  return out;
}

Program load_program(const std::vector<std::uint8_t>& image) {
  Reader in(image);
  if (in.u32() != kProgramMagic)
    throw std::runtime_error("bad program magic");
  if (in.u32() != 1) throw std::runtime_error("bad program version");
  Program prog;
  const auto ninstr = in.u32();
  prog.code.reserve(ninstr);
  for (std::uint32_t i = 0; i < ninstr; ++i) {
    std::array<std::uint8_t, kEncodedInstrBytes> rec;
    in.bytes(rec.data(), rec.size());
    prog.code.push_back(decode(rec));
  }
  prog.data_base = in.u64();
  prog.data.resize(in.u32());
  if (!prog.data.empty()) in.bytes(prog.data.data(), prog.data.size());
  const auto ndl = in.u32();
  for (std::uint32_t i = 0; i < ndl; ++i) {
    auto name = in.str();
    prog.data_labels.emplace(std::move(name), in.u64());
  }
  const auto ncl = in.u32();
  for (std::uint32_t i = 0; i < ncl; ++i) {
    auto name = in.str();
    prog.code_labels.emplace(std::move(name),
                             static_cast<std::int32_t>(in.u32()));
  }
  prog.entry = static_cast<std::int32_t>(in.u32());
  return prog;
}

}  // namespace hidisc::isa
