// Fixed-width binary serialization for HISA programs.
//
// Each instruction encodes to a 24-byte little-endian record:
//
//   byte  0      opcode
//   byte  1      dst   (bit7 = FP, bit6 = valid, low 5 bits = index)
//   byte  2      src1  (same layout)
//   byte  3      src2  (same layout)
//   bytes 4-11   imm   (int64)
//   bytes 12-15  target (int32)
//   bytes 16-19  annotation (packed flags + cmas group)
//   bytes 20-23  annotation (trigger group + reserved)
//
// This is a storage format (think SimpleScalar's fat binary with its spare
// annotation field), not a claim about real machine-code density.  Programs
// additionally serialize their data image and symbol tables.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "isa/program.hpp"

namespace hidisc::isa {

inline constexpr std::size_t kEncodedInstrBytes = 24;
inline constexpr std::uint32_t kProgramMagic = 0x48445343;  // "HDSC"

// Instruction <-> record.
[[nodiscard]] std::array<std::uint8_t, kEncodedInstrBytes> encode(
    const Instruction& inst) noexcept;
[[nodiscard]] Instruction decode(
    const std::array<std::uint8_t, kEncodedInstrBytes>& rec);

// Whole-program image (code + data + labels + entry).  `load_program`
// throws std::runtime_error on a malformed image.
[[nodiscard]] std::vector<std::uint8_t> save_program(const Program& prog);
[[nodiscard]] Program load_program(const std::vector<std::uint8_t>& image);

}  // namespace hidisc::isa
