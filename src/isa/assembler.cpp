#include "isa/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstring>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

namespace hidisc::isa {
namespace {

struct Line {
  int number = 0;                    // 1-based source line
  std::vector<std::string> labels;   // labels defined on this line
  std::string mnemonic;              // lower-cased; empty for label-only
  std::vector<std::string> operands; // comma-separated operand fields
};

[[nodiscard]] std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

[[nodiscard]] bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}
[[nodiscard]] bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

// Splits a line into labels / mnemonic / operands.  Operand splitting
// respects double-quoted strings (for .asciz).
Line tokenize(int number, std::string_view raw) {
  Line line;
  line.number = number;
  // Strip comments (respecting quotes).
  std::string text;
  bool in_quote = false;
  for (char c : raw) {
    if (c == '"') in_quote = !in_quote;
    if (!in_quote && (c == '#' || c == ';')) break;
    text.push_back(c);
  }
  std::string_view rest = trim(text);
  // Leading labels.
  while (true) {
    std::size_t i = 0;
    while (i < rest.size() && is_ident_char(rest[i])) ++i;
    if (i > 0 && i < rest.size() && rest[i] == ':' &&
        is_ident_start(rest[0])) {
      line.labels.emplace_back(rest.substr(0, i));
      rest = trim(rest.substr(i + 1));
    } else {
      break;
    }
  }
  if (rest.empty()) return line;
  // Mnemonic.
  std::size_t i = 0;
  while (i < rest.size() && !std::isspace(static_cast<unsigned char>(rest[i])))
    ++i;
  line.mnemonic = lower(rest.substr(0, i));
  rest = trim(rest.substr(i));
  // Operands.
  std::string cur;
  in_quote = false;
  for (char c : rest) {
    if (c == '"') in_quote = !in_quote;
    if (c == ',' && !in_quote) {
      line.operands.emplace_back(trim(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!trim(cur).empty() || !line.operands.empty())
    if (!trim(cur).empty()) line.operands.emplace_back(trim(cur));
  return line;
}

const std::map<std::string, Reg, std::less<>>& reg_aliases() {
  static const std::map<std::string, Reg, std::less<>> table = [] {
    std::map<std::string, Reg, std::less<>> t;
    for (int i = 0; i < kNumIntRegs; ++i)
      t["r" + std::to_string(i)] = ir(static_cast<std::uint8_t>(i));
    for (int i = 0; i < kNumFpRegs; ++i)
      t["f" + std::to_string(i)] = fr(static_cast<std::uint8_t>(i));
    t["zero"] = ir(0); t["at"] = ir(1);
    t["v0"] = ir(2); t["v1"] = ir(3);
    for (int i = 0; i < 4; ++i)
      t["a" + std::to_string(i)] = ir(static_cast<std::uint8_t>(4 + i));
    for (int i = 0; i < 8; ++i)
      t["t" + std::to_string(i)] = ir(static_cast<std::uint8_t>(8 + i));
    for (int i = 0; i < 8; ++i)
      t["s" + std::to_string(i)] = ir(static_cast<std::uint8_t>(16 + i));
    t["t8"] = ir(24); t["t9"] = ir(25);
    t["k0"] = ir(26); t["k1"] = ir(27);
    t["gp"] = ir(28); t["sp"] = ir(29); t["fp"] = ir(30); t["ra"] = ir(31);
    return t;
  }();
  return table;
}

const std::map<std::string, Opcode, std::less<>>& mnemonic_table() {
  static const std::map<std::string, Opcode, std::less<>> table = [] {
    std::map<std::string, Opcode, std::less<>> t;
    for (int i = 0; i < kNumOpcodes; ++i) {
      const auto op = static_cast<Opcode>(i);
      t[std::string(op_info(op).name)] = op;
    }
    return t;
  }();
  return table;
}

class AssemblerImpl {
 public:
  explicit AssemblerImpl(std::string_view source) {
    std::string text(source);
    std::istringstream in(text);
    std::string raw;
    int number = 0;
    while (std::getline(in, raw)) lines_.push_back(tokenize(++number, raw));
  }

  Program run() {
    pass_define_symbols();
    pass_emit();
    if (auto it = prog_.code_labels.find("_start");
        it != prog_.code_labels.end())
      prog_.entry = it->second;
    return std::move(prog_);
  }

 private:
  enum class Section { Text, Data };

  [[nodiscard]] static bool is_directive(const std::string& m) {
    return !m.empty() && m[0] == '.';
  }

  // Size in bytes a data directive contributes; instructions contribute one
  // code slot each (all pseudos are single-instruction).
  void pass_define_symbols() {
    Section sec = Section::Text;
    std::int32_t code_idx = 0;
    std::uint64_t data_off = 0;
    for (const auto& line : lines_) {
      if (line.mnemonic == ".text") { sec = Section::Text; bind(line, sec, code_idx, data_off); continue; }
      if (line.mnemonic == ".data") { sec = Section::Data; bind(line, sec, code_idx, data_off); continue; }
      if (line.mnemonic == ".align" && sec == Section::Data) {
        const auto a = static_cast<std::uint64_t>(parse_int(line, 0));
        if (a != 0 && (a & (a - 1)) == 0) data_off = (data_off + a - 1) & ~(a - 1);
        else throw AsmError(line.number, ".align requires a power of two");
        bind(line, sec, code_idx, data_off);
        continue;
      }
      bind(line, sec, code_idx, data_off);
      if (line.mnemonic.empty()) continue;
      if (sec == Section::Data) {
        data_off += data_size(line);
      } else if (!is_directive(line.mnemonic)) {
        ++code_idx;
      }
    }
  }

  void bind(const Line& line, Section sec, std::int32_t code_idx,
            std::uint64_t data_off) {
    for (const auto& label : line.labels) {
      const bool dup = prog_.code_labels.count(label) ||
                       prog_.data_labels.count(label);
      if (dup) throw AsmError(line.number, "duplicate label: " + label);
      if (sec == Section::Text)
        prog_.code_labels.emplace(label, code_idx);
      else
        prog_.data_labels.emplace(label, prog_.data_base + data_off);
    }
  }

  [[nodiscard]] std::uint64_t data_size(const Line& line) const {
    const auto& m = line.mnemonic;
    const auto n = line.operands.size();
    if (m == ".byte") return n;
    if (m == ".half") return 2 * n;
    if (m == ".word") return 4 * n;
    if (m == ".dword" || m == ".double") return 8 * n;
    if (m == ".space") return static_cast<std::uint64_t>(parse_int(line, 0));
    if (m == ".asciz") {
      if (n != 1) throw AsmError(line.number, ".asciz takes one string");
      return unquote(line, line.operands[0]).size() + 1;
    }
    throw AsmError(line.number, "unknown data directive: " + m);
  }

  void pass_emit() {
    Section sec = Section::Text;
    for (const auto& line : lines_) {
      if (line.mnemonic.empty()) continue;
      if (line.mnemonic == ".text") { sec = Section::Text; continue; }
      if (line.mnemonic == ".data") { sec = Section::Data; continue; }
      if (sec == Section::Data)
        emit_data(line);
      else
        emit_code(line);
    }
  }

  // ---- data emission -----------------------------------------------------

  void append_bytes(const void* src, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(src);
    prog_.data.insert(prog_.data.end(), p, p + n);
  }

  void emit_data(const Line& line) {
    const auto& m = line.mnemonic;
    if (m == ".align") {
      const auto a = static_cast<std::uint64_t>(parse_int(line, 0));
      while (prog_.data.size() % a != 0) prog_.data.push_back(0);
      return;
    }
    if (m == ".space") {
      const auto n = static_cast<std::uint64_t>(parse_int(line, 0));
      prog_.data.insert(prog_.data.end(), n, 0);
      return;
    }
    if (m == ".asciz") {
      const std::string s = unquote(line, line.operands[0]);
      append_bytes(s.data(), s.size());
      prog_.data.push_back(0);
      return;
    }
    if (m == ".double") {
      for (const auto& opnd : line.operands) {
        const double v = parse_double(line, opnd);
        append_bytes(&v, sizeof v);
      }
      return;
    }
    int width = 0;
    if (m == ".byte") width = 1;
    else if (m == ".half") width = 2;
    else if (m == ".word") width = 4;
    else if (m == ".dword") width = 8;
    else throw AsmError(line.number, "unknown data directive: " + m);
    for (const auto& opnd : line.operands) {
      const std::int64_t v = eval_expr(line, opnd);
      append_bytes(&v, static_cast<std::size_t>(width));
    }
  }

  // ---- code emission -----------------------------------------------------

  void emit_code(const Line& line) {
    const auto& m = line.mnemonic;
    if (is_directive(m))
      throw AsmError(line.number, "directive not allowed in .text: " + m);
    Instruction inst;
    if (emit_pseudo(line, inst)) {
      prog_.code.push_back(inst);
      return;
    }
    const auto& table = mnemonic_table();
    auto it = table.find(m);
    if (it == table.end())
      throw AsmError(line.number, "unknown mnemonic: " + m);
    inst.op = it->second;
    parse_operands(line, inst);
    prog_.code.push_back(inst);
  }

  bool emit_pseudo(const Line& line, Instruction& inst) {
    const auto& m = line.mnemonic;
    if (m == "la" || m == "li") {
      need(line, 2);
      inst.op = Opcode::ADDI;
      inst.dst = parse_reg(line, line.operands[0], RegKind::Int);
      inst.src1 = kZero;
      inst.imm = eval_expr(line, line.operands[1]);
      return true;
    }
    if (m == "mv") {
      need(line, 2);
      inst.op = Opcode::ADD;
      inst.dst = parse_reg(line, line.operands[0], RegKind::Int);
      inst.src1 = parse_reg(line, line.operands[1], RegKind::Int);
      inst.src2 = kZero;
      return true;
    }
    if (m == "neg") {
      need(line, 2);
      inst.op = Opcode::SUB;
      inst.dst = parse_reg(line, line.operands[0], RegKind::Int);
      inst.src1 = kZero;
      inst.src2 = parse_reg(line, line.operands[1], RegKind::Int);
      return true;
    }
    if (m == "not") {
      need(line, 2);
      inst.op = Opcode::NOR;
      inst.dst = parse_reg(line, line.operands[0], RegKind::Int);
      inst.src1 = parse_reg(line, line.operands[1], RegKind::Int);
      inst.src2 = kZero;
      return true;
    }
    if (m == "b") {
      need(line, 1);
      inst.op = Opcode::J;
      inst.target = code_target(line, line.operands[0]);
      return true;
    }
    return false;
  }

  void parse_operands(const Line& line, Instruction& inst) {
    const OpInfo& info = inst.info();
    using O = Opcode;
    const RegKind dk = info.is_fp_dst ? RegKind::Fp : RegKind::Int;
    const RegKind sk = info.is_fp_src ? RegKind::Fp : RegKind::Int;
    switch (info.cls) {
      case OpClass::Load: {
        need(line, 2);
        inst.dst = parse_reg(line, line.operands[0], dk);
        parse_mem_operand(line, line.operands[1], inst);
        return;
      }
      case OpClass::Store: {
        need(line, 2);
        inst.src2 = parse_reg(line, line.operands[0], sk);
        parse_mem_operand(line, line.operands[1], inst);
        return;
      }
      case OpClass::Prefetch: {
        need(line, 1);
        parse_mem_operand(line, line.operands[0], inst);
        return;
      }
      case OpClass::Branch: {
        need(line, 3);
        inst.src1 = parse_reg(line, line.operands[0], RegKind::Int);
        inst.src2 = parse_reg(line, line.operands[1], RegKind::Int);
        inst.target = code_target(line, line.operands[2]);
        return;
      }
      case OpClass::Jump: {
        if (inst.op == O::J || inst.op == O::JAL) {
          need(line, 1);
          if (inst.op == O::JAL) inst.dst = kRa;
          inst.target = code_target(line, line.operands[0]);
        } else {  // jr / jalr
          need(line, 1);
          if (inst.op == O::JALR) inst.dst = kRa;
          inst.src1 = parse_reg(line, line.operands[0], RegKind::Int);
        }
        return;
      }
      case OpClass::Halt:
      case OpClass::Nop:
        need(line, 0);
        return;
      case OpClass::Queue: {
        switch (inst.op) {
          case O::PUSHLDQ: case O::PUSHSDQ:
            need(line, 1);
            inst.src1 = parse_reg(line, line.operands[0], RegKind::Int);
            return;
          case O::PUSHLDQF: case O::PUSHSDQF:
            need(line, 1);
            inst.src1 = parse_reg(line, line.operands[0], RegKind::Fp);
            return;
          case O::POPLDQ: case O::POPSDQ:
            need(line, 1);
            inst.dst = parse_reg(line, line.operands[0], RegKind::Int);
            return;
          case O::POPLDQF: case O::POPSDQF:
            need(line, 1);
            inst.dst = parse_reg(line, line.operands[0], RegKind::Fp);
            return;
          case O::BEOD:
            need(line, 1);
            inst.target = code_target(line, line.operands[0]);
            return;
          default:  // puteod / getscq / putscq
            need(line, 0);
            return;
        }
      }
      default: break;
    }
    // ALU forms.
    if (inst.op == O::LUI) {
      need(line, 2);
      inst.dst = parse_reg(line, line.operands[0], RegKind::Int);
      inst.imm = eval_expr(line, line.operands[1]);
      return;
    }
    if (inst.op == O::CVTIF) {
      need(line, 2);
      inst.dst = parse_reg(line, line.operands[0], RegKind::Fp);
      inst.src1 = parse_reg(line, line.operands[1], RegKind::Int);
      return;
    }
    if (inst.op == O::CVTFI) {
      need(line, 2);
      inst.dst = parse_reg(line, line.operands[0], RegKind::Int);
      inst.src1 = parse_reg(line, line.operands[1], RegKind::Fp);
      return;
    }
    if (info.has_imm) {
      need(line, 3);
      inst.dst = parse_reg(line, line.operands[0], dk);
      inst.src1 = parse_reg(line, line.operands[1], sk);
      inst.imm = eval_expr(line, line.operands[2]);
      return;
    }
    if (info.reads_src2) {
      need(line, 3);
      inst.dst = parse_reg(line, line.operands[0], dk);
      inst.src1 = parse_reg(line, line.operands[1], sk);
      inst.src2 = parse_reg(line, line.operands[2], sk);
      return;
    }
    // Unary register ops (fneg/fabs/fmov/fsqrt).
    need(line, 2);
    inst.dst = parse_reg(line, line.operands[0], dk);
    inst.src1 = parse_reg(line, line.operands[1], sk);
  }

  // `imm(reg)` or `label` / `label+off` (absolute, base r0).
  void parse_mem_operand(const Line& line, const std::string& text,
                         Instruction& inst) {
    const auto open = text.find('(');
    if (open == std::string::npos) {
      inst.src1 = kZero;
      inst.imm = eval_expr(line, text);
      return;
    }
    const auto close = text.find(')', open);
    if (close == std::string::npos)
      throw AsmError(line.number, "missing ')' in memory operand");
    const std::string disp(trim(std::string_view(text).substr(0, open)));
    const std::string base(
        trim(std::string_view(text).substr(open + 1, close - open - 1)));
    inst.imm = disp.empty() ? 0 : eval_expr(line, disp);
    inst.src1 = parse_reg(line, base, RegKind::Int);
  }

  void need(const Line& line, std::size_t n) const {
    if (line.operands.size() != n)
      throw AsmError(line.number,
                     "expected " + std::to_string(n) + " operands for '" +
                         line.mnemonic + "', got " +
                         std::to_string(line.operands.size()));
  }

  Reg parse_reg(const Line& line, const std::string& text,
                RegKind expect) const {
    const auto& aliases = reg_aliases();
    auto it = aliases.find(lower(text));
    if (it == aliases.end())
      throw AsmError(line.number, "bad register: " + text);
    if (it->second.kind != expect)
      throw AsmError(line.number,
                     (expect == RegKind::Fp
                          ? "expected FP register, got: "
                          : "expected integer register, got: ") + text);
    return it->second;
  }

  std::int32_t code_target(const Line& line, const std::string& text) const {
    auto it = prog_.code_labels.find(text);
    if (it != prog_.code_labels.end()) return it->second;
    // Numeric absolute index.
    std::int32_t v = 0;
    const auto* b = text.data();
    const auto* e = b + text.size();
    auto [p, ec] = std::from_chars(b, e, v);
    if (ec == std::errc() && p == e) return v;
    throw AsmError(line.number, "unknown code label: " + text);
  }

  std::int64_t parse_int(const Line& line, std::size_t operand) const {
    if (operand >= line.operands.size())
      throw AsmError(line.number, "missing operand");
    return eval_expr(line, line.operands[operand]);
  }

  // Integer expression: [label][(+|-)int] | int (dec or 0x hex, signed).
  std::int64_t eval_expr(const Line& line, const std::string& text) const {
    std::string_view s = trim(text);
    if (s.empty()) throw AsmError(line.number, "empty expression");
    if (is_ident_start(s[0])) {
      std::size_t i = 0;
      while (i < s.size() && is_ident_char(s[i])) ++i;
      const std::string label(s.substr(0, i));
      std::int64_t base = 0;
      if (auto it = prog_.data_labels.find(label);
          it != prog_.data_labels.end()) {
        base = static_cast<std::int64_t>(it->second);
      } else if (auto jt = prog_.code_labels.find(label);
                 jt != prog_.code_labels.end()) {
        base = jt->second;
      } else {
        throw AsmError(line.number, "unknown symbol: " + label);
      }
      s = trim(s.substr(i));
      if (s.empty()) return base;
      if (s[0] != '+' && s[0] != '-')
        throw AsmError(line.number, "bad expression: " + text);
      const bool negate = s[0] == '-';
      const std::int64_t off = parse_literal(line, trim(s.substr(1)));
      return negate ? base - off : base + off;
    }
    return parse_literal(line, s);
  }

  std::int64_t parse_literal(const Line& line, std::string_view s) const {
    bool neg = false;
    if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
      neg = s[0] == '-';
      s.remove_prefix(1);
    }
    int base = 10;
    if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
      base = 16;
      s.remove_prefix(2);
    }
    std::uint64_t v = 0;
    auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v, base);
    if (ec != std::errc() || p != s.data() + s.size())
      throw AsmError(line.number, "bad integer literal");
    const auto sv = static_cast<std::int64_t>(v);
    return neg ? -sv : sv;
  }

  double parse_double(const Line& line, const std::string& text) const {
    try {
      std::size_t pos = 0;
      const double v = std::stod(text, &pos);
      if (pos != text.size()) throw std::invalid_argument(text);
      return v;
    } catch (const std::exception&) {
      throw AsmError(line.number, "bad floating literal: " + text);
    }
  }

  static std::string unquote(const Line& line, const std::string& text) {
    if (text.size() < 2 || text.front() != '"' || text.back() != '"')
      throw AsmError(line.number, "expected quoted string");
    std::string out;
    for (std::size_t i = 1; i + 1 < text.size(); ++i) {
      char c = text[i];
      if (c == '\\' && i + 2 < text.size()) {
        ++i;
        switch (text[i]) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '0': c = '\0'; break;
          case '\\': c = '\\'; break;
          case '"': c = '"'; break;
          default: c = text[i]; break;
        }
      }
      out.push_back(c);
    }
    return out;
  }

  std::vector<Line> lines_;
  Program prog_;
};

}  // namespace

Program Assembler::assemble(std::string_view source) const {
  return AssemblerImpl(source).run();
}

}  // namespace hidisc::isa
