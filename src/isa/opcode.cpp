#include "isa/opcode.hpp"

#include <array>

namespace hidisc::isa {
namespace {

// Latencies follow SimpleScalar's sim-outorder defaults (ALU 1, integer
// multiply 3, integer divide 20, FP add 2, FP multiply 4, FP divide 12,
// FP sqrt 24).  Loads add cache latency on top of the 1-cycle AGU.
constexpr OpInfo make(std::string_view name, OpClass cls, int lat,
                      bool wd, bool r1, bool r2, bool imm,
                      bool fpd = false, bool fps = false) {
  return OpInfo{name, cls, lat, wd, r1, r2, imm, fpd, fps};
}

constexpr std::array<OpInfo, kNumOpcodes> kTable = [] {
  std::array<OpInfo, kNumOpcodes> t{};
  auto set = [&t](Opcode op, OpInfo i) { t[static_cast<int>(op)] = i; };
  using O = Opcode;
  using C = OpClass;
  // Integer reg-reg.
  set(O::ADD,  make("add",  C::IntAlu, 1, true, true, true, false));
  set(O::SUB,  make("sub",  C::IntAlu, 1, true, true, true, false));
  set(O::MUL,  make("mul",  C::IntMul, 3, true, true, true, false));
  set(O::DIV,  make("div",  C::IntDiv, 20, true, true, true, false));
  set(O::REM,  make("rem",  C::IntDiv, 20, true, true, true, false));
  set(O::AND,  make("and",  C::IntAlu, 1, true, true, true, false));
  set(O::OR,   make("or",   C::IntAlu, 1, true, true, true, false));
  set(O::XOR,  make("xor",  C::IntAlu, 1, true, true, true, false));
  set(O::NOR,  make("nor",  C::IntAlu, 1, true, true, true, false));
  set(O::SLL,  make("sll",  C::IntAlu, 1, true, true, true, false));
  set(O::SRL,  make("srl",  C::IntAlu, 1, true, true, true, false));
  set(O::SRA,  make("sra",  C::IntAlu, 1, true, true, true, false));
  set(O::SLT,  make("slt",  C::IntAlu, 1, true, true, true, false));
  set(O::SLTU, make("sltu", C::IntAlu, 1, true, true, true, false));
  // Integer reg-imm.
  set(O::ADDI, make("addi", C::IntAlu, 1, true, true, false, true));
  set(O::ANDI, make("andi", C::IntAlu, 1, true, true, false, true));
  set(O::ORI,  make("ori",  C::IntAlu, 1, true, true, false, true));
  set(O::XORI, make("xori", C::IntAlu, 1, true, true, false, true));
  set(O::SLLI, make("slli", C::IntAlu, 1, true, true, false, true));
  set(O::SRLI, make("srli", C::IntAlu, 1, true, true, false, true));
  set(O::SRAI, make("srai", C::IntAlu, 1, true, true, false, true));
  set(O::SLTI, make("slti", C::IntAlu, 1, true, true, false, true));
  set(O::LUI,  make("lui",  C::IntAlu, 1, true, false, false, true));
  // Floating point.
  set(O::FADD,  make("fadd",  C::FpAlu, 2, true, true, true, false, true, true));
  set(O::FSUB,  make("fsub",  C::FpAlu, 2, true, true, true, false, true, true));
  set(O::FMUL,  make("fmul",  C::FpMul, 4, true, true, true, false, true, true));
  set(O::FDIV,  make("fdiv",  C::FpDiv, 12, true, true, true, false, true, true));
  set(O::FSQRT, make("fsqrt", C::FpDiv, 24, true, true, false, false, true, true));
  set(O::FMIN,  make("fmin",  C::FpAlu, 2, true, true, true, false, true, true));
  set(O::FMAX,  make("fmax",  C::FpAlu, 2, true, true, true, false, true, true));
  set(O::FNEG,  make("fneg",  C::FpAlu, 1, true, true, false, false, true, true));
  set(O::FABS,  make("fabs",  C::FpAlu, 1, true, true, false, false, true, true));
  set(O::FMOV,  make("fmov",  C::FpAlu, 1, true, true, false, false, true, true));
  set(O::CVTIF, make("cvtif", C::FpAlu, 2, true, true, false, false, true, false));
  set(O::CVTFI, make("cvtfi", C::FpAlu, 2, true, true, false, false, false, true));
  set(O::FEQ,   make("feq",   C::FpAlu, 2, true, true, true, false, false, true));
  set(O::FLT,   make("flt",   C::FpAlu, 2, true, true, true, false, false, true));
  set(O::FLE,   make("fle",   C::FpAlu, 2, true, true, true, false, false, true));
  // Memory.  Latency 1 is the AGU; cache latency is added by the machine.
  set(O::LB,  make("lb",  C::Load, 1, true, true, false, true));
  set(O::LBU, make("lbu", C::Load, 1, true, true, false, true));
  set(O::LH,  make("lh",  C::Load, 1, true, true, false, true));
  set(O::LHU, make("lhu", C::Load, 1, true, true, false, true));
  set(O::LW,  make("lw",  C::Load, 1, true, true, false, true));
  set(O::LWU, make("lwu", C::Load, 1, true, true, false, true));
  set(O::LD,  make("ld",  C::Load, 1, true, true, false, true));
  set(O::FLD, make("fld", C::Load, 1, true, true, false, true, true, false));
  set(O::SB,  make("sb",  C::Store, 1, false, true, true, true));
  set(O::SH,  make("sh",  C::Store, 1, false, true, true, true));
  set(O::SW,  make("sw",  C::Store, 1, false, true, true, true));
  set(O::SD,  make("sd",  C::Store, 1, false, true, true, true));
  set(O::FSD, make("fsd", C::Store, 1, false, true, true, true, false, true));
  set(O::PREF, make("pref", C::Prefetch, 1, false, true, false, true));
  // Control.
  set(O::BEQ,  make("beq",  C::Branch, 1, false, true, true, false));
  set(O::BNE,  make("bne",  C::Branch, 1, false, true, true, false));
  set(O::BLT,  make("blt",  C::Branch, 1, false, true, true, false));
  set(O::BGE,  make("bge",  C::Branch, 1, false, true, true, false));
  set(O::BLTU, make("bltu", C::Branch, 1, false, true, true, false));
  set(O::BGEU, make("bgeu", C::Branch, 1, false, true, true, false));
  set(O::J,    make("j",    C::Jump, 1, false, false, false, false));
  set(O::JAL,  make("jal",  C::Jump, 1, true, false, false, false));
  set(O::JR,   make("jr",   C::Jump, 1, false, true, false, false));
  set(O::JALR, make("jalr", C::Jump, 1, true, true, false, false));
  set(O::HALT, make("halt", C::Halt, 1, false, false, false, false));
  // Queues.
  set(O::PUSHLDQ,  make("pushldq",  C::Queue, 1, false, true, false, false));
  set(O::PUSHLDQF, make("pushldqf", C::Queue, 1, false, true, false, false, false, true));
  set(O::POPLDQ,   make("popldq",   C::Queue, 1, true, false, false, false));
  set(O::POPLDQF,  make("popldqf",  C::Queue, 1, true, false, false, false, true, false));
  set(O::PUSHSDQ,  make("pushsdq",  C::Queue, 1, false, true, false, false));
  set(O::PUSHSDQF, make("pushsdqf", C::Queue, 1, false, true, false, false, false, true));
  set(O::POPSDQ,   make("popsdq",   C::Queue, 1, true, false, false, false));
  set(O::POPSDQF,  make("popsdqf",  C::Queue, 1, true, false, false, false, true, false));
  set(O::PUTEOD,   make("puteod",   C::Queue, 1, false, false, false, false));
  set(O::BEOD,     make("beod",     C::Queue, 1, false, false, false, false));
  set(O::GETSCQ,   make("getscq",   C::Queue, 1, false, false, false, false));
  set(O::PUTSCQ,   make("putscq",   C::Queue, 1, false, false, false, false));
  set(O::NOP,      make("nop",      C::Nop, 1, false, false, false, false));
  return t;
}();

}  // namespace

const OpInfo& op_info(Opcode op) noexcept {
  return kTable[static_cast<int>(op)];
}

int mem_width(Opcode op) noexcept {
  switch (op) {
    case Opcode::LB: case Opcode::LBU: case Opcode::SB: return 1;
    case Opcode::LH: case Opcode::LHU: case Opcode::SH: return 2;
    case Opcode::LW: case Opcode::LWU: case Opcode::SW: return 4;
    case Opcode::LD: case Opcode::FLD: case Opcode::SD:
    case Opcode::FSD: case Opcode::PREF: return 8;
    default: return 0;
  }
}

}  // namespace hidisc::isa
