// Two-pass text assembler for HISA.
//
// Syntax is MIPS-flavoured:
//
//   .data
//   arr:    .space 1024          ; labels end with ':'
//   tbl:    .dword 1, 2, arr     ; 8-byte words; labels allowed
//   pi:     .double 3.14159
//   .text
//   _start: la   r4, arr
//   loop:   ld   r6, 0(r4)
//           addi r4, r4, 8
//           bne  r6, r0, loop
//           halt
//
// Comments start with '#' or ';'.  Register aliases (a0-a3, t0-t9, s0-s7,
// sp, ra, ...) follow the MIPS convention.  Every pseudo-instruction
// (la/li/mv/b/neg/not/nop) expands to exactly one HISA instruction.
// Execution starts at the `_start` label if present, else at index 0.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "isa/program.hpp"

namespace hidisc::isa {

// Assembly error with 1-based source line attribution.
class AsmError : public std::runtime_error {
 public:
  AsmError(int line, const std::string& what)
      : std::runtime_error("asm:" + std::to_string(line) + ": " + what),
        line_(line) {}
  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_;
};

class Assembler {
 public:
  // Assembles `source` into a Program.  Throws AsmError on malformed input.
  [[nodiscard]] Program assemble(std::string_view source) const;
};

// Convenience wrapper.
[[nodiscard]] inline Program assemble(std::string_view source) {
  return Assembler{}.assemble(source);
}

}  // namespace hidisc::isa
