#include "isa/disassembler.hpp"

#include <set>
#include <sstream>

namespace hidisc::isa {

std::string reg_name(Reg r) {
  switch (r.kind) {
    case RegKind::Int: return "r" + std::to_string(r.idx);
    case RegKind::Fp: return "f" + std::to_string(r.idx);
    case RegKind::None: return "-";
  }
  return "?";
}

namespace {

std::string ann_comment(const Annotation& a) {
  if (a == Annotation{}) return {};
  std::ostringstream out;
  out << "  # ";
  switch (a.stream) {
    case Stream::Compute: out << "CS"; break;
    case Stream::Access: out << "AS"; break;
    case Stream::None: out << "--"; break;
  }
  if (a.push_ldq) out << " push_ldq";
  if (a.push_sdq) out << " push_sdq";
  if (a.in_cmas) out << " cmas:" << a.cmas_group;
  if (a.is_trigger) out << " trigger:" << a.trigger_group;
  if (a.compiler_inserted) out << " inserted";
  return out.str();
}

}  // namespace

std::string disassemble(const Instruction& inst) {
  const OpInfo& info = inst.info();
  std::ostringstream out;
  out << info.name;
  auto sep = [&out, first = true]() mutable {
    out << (first ? " " : ", ");
    first = false;
  };
  using O = Opcode;
  switch (info.cls) {
    case OpClass::Load:
      sep(); out << reg_name(inst.dst);
      sep(); out << inst.imm << "(" << reg_name(inst.src1) << ")";
      break;
    case OpClass::Store:
      sep(); out << reg_name(inst.src2);
      sep(); out << inst.imm << "(" << reg_name(inst.src1) << ")";
      break;
    case OpClass::Prefetch:
      sep(); out << inst.imm << "(" << reg_name(inst.src1) << ")";
      break;
    case OpClass::Branch:
      sep(); out << reg_name(inst.src1);
      sep(); out << reg_name(inst.src2);
      sep(); out << inst.target;
      break;
    case OpClass::Jump:
      if (inst.op == O::J || inst.op == O::JAL) {
        sep(); out << inst.target;
      } else {
        sep(); out << reg_name(inst.src1);
      }
      break;
    case OpClass::Queue:
      if (info.writes_dst) { sep(); out << reg_name(inst.dst); }
      else if (info.reads_src1) { sep(); out << reg_name(inst.src1); }
      else if (inst.op == O::BEOD) { sep(); out << inst.target; }
      break;
    case OpClass::Halt:
    case OpClass::Nop:
      break;
    default:
      if (info.writes_dst) { sep(); out << reg_name(inst.dst); }
      if (info.reads_src1) { sep(); out << reg_name(inst.src1); }
      if (info.reads_src2) { sep(); out << reg_name(inst.src2); }
      if (info.has_imm) { sep(); out << inst.imm; }
      break;
  }
  out << ann_comment(inst.ann);
  return out.str();
}

std::string disassemble(const Program& prog) {
  std::set<std::int32_t> targets;
  for (const auto& inst : prog.code)
    if (inst.target >= 0) targets.insert(inst.target);
  std::ostringstream out;
  for (std::size_t i = 0; i < prog.code.size(); ++i) {
    const auto idx = static_cast<std::int32_t>(i);
    if (targets.count(idx)) out << "L" << idx << ":\n";
    out << "  [" << idx << "]  " << disassemble(prog.code[i]) << "\n";
  }
  return out.str();
}

}  // namespace hidisc::isa
