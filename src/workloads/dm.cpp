// DIS "Data Management" benchmark kernel: the probe loop of an in-memory
// open-addressing hash index (the dominant operation of the DIS database
// application).  The operation cursor advances by a stride derived from
// the previous probe's outcome — the dependent-lookup pattern of database
// navigation — so neither the baseline's window nor the CMP can run ahead
// of the memory round trips; gains come only from executing less code per
// operation.  Every eighth operation inserts a fresh record.
#include <sstream>

#include "isa/assembler.hpp"
#include "workloads/common.hpp"

namespace hidisc::workloads {
namespace {

struct Params {
  std::uint64_t slots;    // power of two
  std::uint64_t fill;     // pre-inserted records
  std::uint64_t queries;
};

Params params_for(Scale scale) {
  return scale == Scale::Paper ? Params{1u << 15, 1u << 14, 40'000}
                               : Params{1u << 10, 1u << 9, 1'200};
}

constexpr std::uint64_t kHashMul = 0x9e3779b97f4a7c15ull;

}  // namespace

BuiltWorkload make_dm(Scale scale, std::uint64_t seed) {
  const Params p = params_for(scale);
  Rng rng(seed * 0x10001 + 5);
  const std::uint64_t mask = p.slots - 1;

  // Table of 16-byte records {key, value}; key 0 marks an empty slot.
  std::vector<std::uint64_t> keys(p.slots, 0), vals(p.slots, 0);
  std::vector<std::uint64_t> inserted;
  inserted.reserve(p.fill);
  auto insert = [&](std::uint64_t key, std::uint64_t value) {
    std::uint64_t h = (key * kHashMul) & mask;
    while (keys[h] != 0) h = (h + 1) & mask;
    keys[h] = key;
    vals[h] = value;
  };
  for (std::uint64_t i = 0; i < p.fill; ++i) {
    const std::uint64_t key = rng.next() | 1;  // nonzero
    insert(key, key ^ kHashMul);
    inserted.push_back(key);
  }

  // Operation stream: 70% present keys, 30% absent; every 8th op inserts.
  // The kernel walks this stream with a data-dependent stride (16..64
  // bytes), so over-provision it by 4x.
  struct Op {
    std::uint64_t key;
    bool is_insert;
  };
  std::vector<Op> ops;
  ops.reserve(p.queries * 4);
  for (std::uint64_t q = 0; q < p.queries * 4; ++q) {
    if (q % 8 == 7) {
      ops.push_back({rng.next() | 1, true});
    } else if (rng.below(10) < 7) {
      ops.push_back({inserted[rng.below(inserted.size())], false});
    } else {
      ops.push_back({rng.next() | 1, false});
    }
  }

  DataBuilder db;
  const std::uint64_t table_addr = db.align(8);
  for (std::uint64_t i = 0; i < p.slots; ++i) {
    db.add_u64(keys[i]);
    db.add_u64(vals[i]);
  }
  const std::uint64_t ops_addr = db.align(8);
  for (const auto& op : ops) {
    db.add_u64(op.key);
    db.add_u64(op.is_insert ? 1 : 0);
  }
  const std::uint64_t res_addr = db.align(8);
  db.add_zeros(2 * 8);

  // Golden reference: replays the same walk, including the dependent
  // stride (last probed stored-key selects the next hop distance).
  std::uint64_t sum = 0, found = 0;
  {
    std::vector<std::uint64_t> k2 = keys, v2 = vals;
    std::uint64_t cursor = 0;       // byte offset into the op stream
    std::uint64_t last_probe = 0;   // stored key seen by the last probe
    for (std::uint64_t q = 0; q < p.queries; ++q) {
      const auto& op = ops[cursor / 16];
      std::uint64_t h = (op.key * kHashMul) & mask;
      if (op.is_insert) {
        while (k2[h] != 0) h = (h + 1) & mask;
        k2[h] = op.key;
        v2[h] = op.key ^ kHashMul;
        last_probe = 0;
      } else {
        while (true) {
          last_probe = k2[h];
          if (k2[h] == op.key) {
            sum += v2[h];
            ++found;
            break;
          }
          if (k2[h] == 0) break;
          h = (h + 1) & mask;
        }
      }
      cursor += 16 + (last_probe & 3) * 16;
    }
  }

  std::ostringstream src;
  src << R"(.text
_start:
  li   r4, )" << table_addr << R"(   # table base
  li   r5, )" << ops_addr << R"(     # op stream cursor
  li   r6, )" << p.queries << R"(    # ops remaining
  li   r7, )" << mask << R"(         # slot mask
  li   r8, )" << kHashMul << R"(     # hash multiplier
  li   r9, 0                         # value sum
  li   r20, 0                        # found count
  li   r21, 0                        # last probed stored key
oploop:
  ld   r10, 0(r5)                    # key
  ld   r11, 8(r5)                    # insert flag
  mul  r12, r10, r8
  and  r12, r12, r7                  # h
  bne  r11, r0, insert
probe:
  slli r13, r12, 4
  add  r13, r13, r4                  # &table[h]
  ld   r14, 0(r13)                   # stored key
  mv   r21, r14                      # remember for the cursor stride
  beq  r14, r10, hit
  beq  r14, r0, next                 # empty: absent
  addi r12, r12, 1
  and  r12, r12, r7
  j    probe
hit:
  ld   r15, 8(r13)                   # value
  add  r9, r9, r15
  addi r20, r20, 1
  j    next
insert:
  li   r21, 0
  slli r13, r12, 4
  add  r13, r13, r4
  ld   r14, 0(r13)
  beq  r14, r0, doins
  addi r12, r12, 1
  and  r12, r12, r7
  j    insert
doins:
  sd   r10, 0(r13)                   # key
  xor  r16, r10, r8
  sd   r16, 8(r13)                   # value = key ^ mul
next:
  andi r22, r21, 3                   # dependent stride: 16..64 bytes
  slli r22, r22, 4
  addi r22, r22, 16
  add  r5, r5, r22
  addi r6, r6, -1
  bne  r6, r0, oploop
  li   r17, )" << res_addr << R"(
  sd   r9, 0(r17)
  sd   r20, 8(r17)
  halt
)";

  BuiltWorkload out;
  out.name = "DM";
  out.description =
      "hash-index probe/insert loop with dependent op cursor (DIS DM)";
  out.program = isa::assemble(src.str());
  db.finish(out.program, {{"table", table_addr}, {"result", res_addr}});
  out.approx_dynamic_instructions = p.queries * 20;
  out.validate = [res_addr, sum, found](const sim::Functional& f) {
    return f.memory().read<std::uint64_t>(res_addr) == sum &&
           f.memory().read<std::uint64_t>(res_addr + 8) == found;
  };
  return out;
}

}  // namespace hidisc::workloads
