// DIS "Corner Turn" Stressmark: an out-of-place matrix transpose
// (out[j][i] = in[i][j]) — row-major reads against column-major writes,
// the classic cache-geometry stress.  Row reads are perfectly strided
// (prefetchable); column writes conflict in the cache sets.  Pure integer:
// the computation stream is empty and all behaviour is access-side — like
// Transitive Closure, a benchmark where only the CMP can help.  Not part
// of the paper's Figure 8 plot; included for completeness of the DIS
// Stressmark suite.
#include <sstream>

#include "isa/assembler.hpp"
#include "workloads/common.hpp"

namespace hidisc::workloads {
namespace {

struct Params {
  std::uint64_t n;  // square matrix side
};

Params params_for(Scale scale) {
  return scale == Scale::Paper ? Params{384} : Params{32};
}

}  // namespace

BuiltWorkload make_cornerturn(Scale scale, std::uint64_t seed) {
  const Params p = params_for(scale);
  Rng rng(seed * 0xc0c0 + 3);

  std::vector<std::uint64_t> in(p.n * p.n);
  for (auto& v : in) v = rng.next();

  DataBuilder db;
  const std::uint64_t in_addr = db.align(8);
  for (const auto v : in) db.add_u64(v);
  const std::uint64_t out_addr = db.align(8);
  db.add_zeros(p.n * p.n * 8);
  const std::uint64_t res_addr = db.align(8);
  db.add_zeros(8);

  // Golden transpose + fold checksum.
  std::vector<std::uint64_t> golden(p.n * p.n);
  std::uint64_t checksum = 0;
  for (std::uint64_t i = 0; i < p.n; ++i)
    for (std::uint64_t j = 0; j < p.n; ++j) {
      const auto v = in[i * p.n + j];
      golden[j * p.n + i] = v;
      checksum ^= v + j;
    }

  const std::uint64_t row_bytes = p.n * 8;
  std::ostringstream src;
  src << R"(.text
_start:
  li   r4, )" << in_addr << R"(     # read cursor (row-major)
  li   r5, )" << p.n << R"(         # n
  li   r6, )" << row_bytes << R"(   # output column stride
  li   r7, 0                        # i
  li   r15, 0                       # checksum
iloop:
  li   r8, 0                        # j
  slli r9, r7, 3
  addi r10, r9, )" << out_addr << R"(  # &out[0][i]
jloop:
  ld   r11, 0(r4)                   # in[i][j]
  sd   r11, 0(r10)                  # out[j][i]
  add  r12, r11, r8
  xor  r15, r15, r12                # fold checksum
  addi r4, r4, 8
  add  r10, r10, r6
  addi r8, r8, 1
  bne  r8, r5, jloop
  addi r7, r7, 1
  bne  r7, r5, iloop
  li   r13, )" << res_addr << R"(
  sd   r15, 0(r13)
  halt
)";

  BuiltWorkload out;
  out.name = "CornerTurn";
  out.description = "out-of-place matrix transpose (DIS Corner Turn)";
  out.program = isa::assemble(src.str());
  db.finish(out.program, {{"in", in_addr}, {"out", out_addr},
                          {"result", res_addr}});
  out.approx_dynamic_instructions = p.n * p.n * 9;
  out.validate = [res_addr, out_addr, checksum, golden,
                  n = p.n](const sim::Functional& f) {
    if (f.memory().read<std::uint64_t>(res_addr) != checksum) return false;
    const std::uint64_t stride = n > 64 ? 53 : 1;
    for (std::uint64_t k = 0; k < golden.size(); k += stride)
      if (f.memory().read<std::uint64_t>(out_addr + k * 8) != golden[k])
        return false;
    return true;
  };
  return out;
}

}  // namespace hidisc::workloads
