// DIS "Update" Stressmark: pointer chase where every hop rewrites the slot
// it just left and read-modify-writes a window of neighbouring slots.  The
// heavy per-hop memory traffic saturates the baseline's load/store queue
// and delays the next chase load's dispatch; the CMP's CMAS slice contains
// only the three-instruction chase, which is why the paper measures its
// largest HiDISC speedup (+18.5%) here.  All updated values stay masked
// into the table's index range, so the chase remains well defined even
// after neighbour slots are rewritten.
#include <sstream>
#include <utility>

#include "isa/assembler.hpp"
#include "workloads/common.hpp"

namespace hidisc::workloads {
namespace {

struct Params {
  std::uint64_t table_words;  // power of two
  std::uint64_t hops;
};

Params params_for(Scale scale) {
  // The table straddles the L2 (256 KiB): after the first sweep the chase
  // mostly hits L2, where the CMP's lean slice pays off the most.
  return scale == Scale::Paper ? Params{1u << 15, 25'000}
                               : Params{1u << 12, 1'000};
}

constexpr int kWindow = 12;  // neighbour slots read-modify-written per hop
// Neighbour spacing in slots (1 = contiguous window after the chase slot).
constexpr int kStride = 1;   // slots between RMW neighbours

}  // namespace

BuiltWorkload make_update(Scale scale, std::uint64_t seed) {
  const Params p = params_for(scale);
  Rng rng(seed * 0xabcdef1 + 7);
  const std::uint64_t mask = p.table_words - 1;

  std::vector<std::uint64_t> table(p.table_words);
  for (std::uint64_t i = 0; i < p.table_words; ++i) table[i] = i;
  for (std::uint64_t i = p.table_words - 1; i > 0; --i)
    std::swap(table[i], table[rng.below(i)]);

  DataBuilder db;
  const std::uint64_t table_addr = db.align(8);
  for (const auto v : table) db.add_u64(v);
  db.add_zeros(kWindow * kStride * 8);  // guard beyond the last slot
  const std::uint64_t res_addr = db.align(8);
  db.add_zeros(3 * 8);

  // Golden reference.  Neighbour writes may hit slots the chase visits
  // later; masking keeps every value a valid index and the replay below
  // reproduces the exact sequence.
  std::vector<std::uint64_t> golden = table;
  golden.resize(p.table_words + kWindow * kStride, 0);
  std::uint64_t idx = 0, check = 0, aligned = 0;
  for (std::uint64_t h = p.hops; h > 0; --h) {
    const std::uint64_t next = golden[idx] & mask;
    golden[idx] = (golden[idx] + h) & mask;
    if ((next & 7) == 0) ++aligned;  // data-dependent branch in the kernel
    for (int w = 1; w <= kWindow; ++w) {
      const std::uint64_t slot = idx + static_cast<std::uint64_t>(w) * kStride;
      golden[slot] = (golden[slot] + static_cast<std::uint64_t>(w)) & mask;
    }
    check ^= next;
    idx = next;
  }
  const std::vector<std::uint64_t> golden_table(
      golden.begin(), golden.begin() + p.table_words);

  std::ostringstream src;
  src << R"(.text
_start:
  li   r4, )" << table_addr << R"(
  li   r5, 0                         # idx
  li   r6, )" << p.hops << R"(       # hop counter, counts down to 0
  li   r8, )" << mask << R"(         # index mask
  li   r9, 0                         # xor check of visited indices
loop:
  slli r10, r5, 3
  add  r10, r10, r4
  ld   r11, 0(r10)                   # raw = table[idx]   (critical chase)
  and  r5, r11, r8                   # next index
  xor  r9, r9, r5
  add  r12, r11, r6                  # updated = raw + h
  and  r12, r12, r8
  sd   r12, 0(r10)                   # table[idx] = updated
  andi r16, r5, 7                    # branch on the chased value: its
  bne  r16, r0, notal                # resolution waits for the load
  addi r17, r17, 1                   # count 8-aligned indices
notal:
)";
  for (int w = 1; w <= kWindow; ++w) {
    src << "  ld   r13, " << w * kStride * 8 << "(r10)\n"
        << "  addi r14, r13, " << w << "\n"
        << "  and  r14, r14, r8\n"
        << "  sd   r14, " << w * kStride * 8 << "(r10)\n";
  }
  src << R"(  addi r6, r6, -1
  bne  r6, r0, loop
  li   r15, )" << res_addr << R"(
  sd   r5, 0(r15)
  sd   r9, 8(r15)
  sd   r17, 16(r15)
  halt
)";

  BuiltWorkload out;
  out.name = "Update";
  out.description =
      "pointer chase with per-hop neighbourhood read-modify-write";
  out.program = isa::assemble(src.str());
  db.finish(out.program, {{"table", table_addr}, {"result", res_addr}});
  out.approx_dynamic_instructions = p.hops * (10 + kWindow * 4);
  out.validate = [res_addr, table_addr, idx, check, aligned, golden_table,
                  n = p.table_words](const sim::Functional& f) {
    if (f.memory().read<std::uint64_t>(res_addr) != idx) return false;
    if (f.memory().read<std::uint64_t>(res_addr + 8) != check) return false;
    if (f.memory().read<std::uint64_t>(res_addr + 16) != aligned)
      return false;
    // Spot-check the rewritten table (full compare on small scales).
    const std::uint64_t stride = n > 8192 ? 97 : 1;
    for (std::uint64_t i = 0; i < n; i += stride)
      if (f.memory().read<std::uint64_t>(table_addr + i * 8) !=
          golden_table[i])
        return false;
    return true;
  };
  return out;
}

}  // namespace hidisc::workloads
