// DIS "Field" Stressmark: sequential scan of a byte field searching for a
// two-byte token while maintaining a decaying floating-point statistic of
// every byte.  High spatial locality (few cache misses) with genuine
// computation per element — the configuration where the paper notes
// access/execute decoupling matters more than CMP prefetching.
#include <sstream>

#include "isa/assembler.hpp"
#include "workloads/common.hpp"

namespace hidisc::workloads {
namespace {

struct Params {
  std::uint64_t bytes;
};

Params params_for(Scale scale) {
  return scale == Scale::Paper ? Params{1u << 17} : Params{1u << 13};
}

constexpr std::uint8_t kTokenA = 0x5a;
constexpr std::uint8_t kTokenB = 0xc3;

}  // namespace

BuiltWorkload make_field(Scale scale, std::uint64_t seed) {
  const Params p = params_for(scale);
  Rng rng(seed * 0x5151 + 3);

  std::vector<std::uint8_t> field(p.bytes);
  for (auto& b : field) b = static_cast<std::uint8_t>(rng.below(256));

  constexpr double kDecayConst = 0.9990234375;  // 1 - 2^-10: exact
  DataBuilder db;
  const std::uint64_t decay_addr = db.add_f64(kDecayConst);
  const std::uint64_t field_addr = db.align(8);
  for (const auto b : field) db.add_u8(b);
  const std::uint64_t res_addr = db.align(8);
  db.add_zeros(2 * 8);

  // Golden reference; the decaying FP statistic mirrors the kernel
  // operation-for-operation so doubles compare bit-exactly.
  std::uint64_t count = 0;
  double stat = 0.0;
  for (std::uint64_t i = 0; i + 1 < p.bytes; ++i) {
    stat = stat * kDecayConst + static_cast<double>(field[i]);
    if (field[i] == kTokenA && field[i + 1] == kTokenB) ++count;
  }

  std::ostringstream src;
  src << R"(.text
_start:
  li   r4, )" << field_addr << R"(
  li   r5, )" << (p.bytes - 1) << R"(   # iterations
  li   r6, 0                            # i
  li   r7, 0                            # token count (access side)
  li   r17, )" << decay_addr << R"(
  fld  f4, 0(r17)
  cvtif f3, r0                          # running statistic = 0.0
loop:
  add  r9, r4, r6
  lbu  r10, 0(r9)
  cvtif f1, r10                         # computation side: decaying stat
  fmul f2, f3, f4
  fadd f3, f2, f1
  lbu  r12, 1(r9)
  xori r13, r10, )" << int{kTokenA} << R"(
  xori r14, r12, )" << int{kTokenB} << R"(
  or   r15, r13, r14
  bne  r15, r0, nomatch
  addi r7, r7, 1
nomatch:
  addi r6, r6, 1
  blt  r6, r5, loop
  li   r16, )" << res_addr << R"(
  sd   r7, 0(r16)
  fsd  f3, 8(r16)
  halt
)";

  BuiltWorkload out;
  out.name = "Field";
  out.description = "byte-field token search with rolling checksum";
  out.program = isa::assemble(src.str());
  db.finish(out.program, {{"field", field_addr}, {"result", res_addr}});
  out.approx_dynamic_instructions = p.bytes * 13;
  out.validate = [res_addr, count, stat](const sim::Functional& f) {
    return f.memory().read<std::uint64_t>(res_addr) == count &&
           f.memory().read<double>(res_addr + 8) == stat;
  };
  return out;
}

}  // namespace hidisc::workloads
