// DIS "Image Understanding" application kernel: 3x3 floating-point
// convolution over a 16-bit image followed by thresholding — the
// feature-extraction front end of the DIS image-understanding
// application.  Nine neighbourhood gathers per pixel feed an FP
// multiply-accumulate tree; the thresholded response is written to an
// output map and hot pixels are counted.
#include <sstream>

#include "isa/assembler.hpp"
#include "workloads/common.hpp"

namespace hidisc::workloads {
namespace {

struct Params {
  std::uint64_t width;
  std::uint64_t height;
};

Params params_for(Scale scale) {
  return scale == Scale::Paper ? Params{192, 192} : Params{24, 24};
}

// Sharpen-like kernel with an exactly representable scale.
constexpr double kW[9] = {-0.25, -0.5, -0.25, -0.5, 4.0,
                          -0.5,  -0.25, -0.5, -0.25};
constexpr double kThreshold = 8192.0;

}  // namespace

BuiltWorkload make_image(Scale scale, std::uint64_t seed) {
  const Params p = params_for(scale);
  Rng rng(seed * 0x1a6e + 41);

  std::vector<std::uint16_t> img(p.width * p.height);
  for (auto& v : img) v = static_cast<std::uint16_t>(rng.below(65536));

  DataBuilder db;
  const std::uint64_t img_addr = db.align(8);
  for (const auto v : img) db.add_u16(v);
  const std::uint64_t w_addr = db.align(8);
  for (const auto w : kW) db.add_f64(w);
  const std::uint64_t thr_addr = db.add_f64(kThreshold);
  const std::uint64_t out_rows = p.height - 2;
  const std::uint64_t out_cols = p.width - 2;
  const std::uint64_t out_addr = db.align(8);
  db.add_zeros(out_rows * out_cols * 8);
  const std::uint64_t res_addr = db.align(8);
  db.add_zeros(8);

  // Golden reference (same accumulation order as the kernel: row-major
  // over the 3x3 window).
  std::vector<double> gout(out_rows * out_cols);
  std::uint64_t hot = 0;
  for (std::uint64_t i = 0; i < out_rows; ++i) {
    for (std::uint64_t j = 0; j < out_cols; ++j) {
      double acc = 0.0;
      for (int dy = 0; dy < 3; ++dy)
        for (int dx = 0; dx < 3; ++dx)
          acc = acc + kW[dy * 3 + dx] *
                          static_cast<double>(
                              img[(i + dy) * p.width + (j + dx)]);
      gout[i * out_cols + j] = acc;
      if (acc > kThreshold) ++hot;
    }
  }

  const std::uint64_t row_bytes = p.width * 2;
  std::ostringstream src;
  src << R"(.text
_start:
  li   r4, )" << img_addr << R"(     # top-left of the current window row
  li   r5, )" << out_addr << R"(     # output cursor
  li   r6, )" << out_rows << R"(     # row counter
  li   r16, )" << thr_addr << R"(
  fld  f15, 0(r16)                   # threshold
  li   r20, 0                        # hot-pixel count
rows:
  mv   r7, r4                        # window column cursor
  li   r9, )" << out_cols << R"(     # column counter
cols:
  cvtif f1, r0                       # acc = 0
)";
  for (int dy = 0; dy < 3; ++dy) {
    for (int dx = 0; dx < 3; ++dx) {
      const auto off = static_cast<std::uint64_t>(dy) * row_bytes +
                       static_cast<std::uint64_t>(dx) * 2;
      src << "  lhu  r10, " << off << "(r7)\n"
          << "  cvtif f2, r10\n"
          << "  li   r11, " << (w_addr + (dy * 3 + dx) * 8) << "\n"
          << "  fld  f3, 0(r11)\n"
          << "  fmul f4, f2, f3\n"
          << "  fadd f1, f1, f4\n";
    }
  }
  src << R"(  fsd  f1, 0(r5)                     # response map
  flt  r12, f15, f1                  # acc > threshold
  add  r20, r20, r12
  addi r7, r7, 2
  addi r5, r5, 8
  addi r9, r9, -1
  bne  r9, r0, cols
  addi r4, r4, )" << row_bytes << R"(
  addi r6, r6, -1
  bne  r6, r0, rows
  li   r13, )" << res_addr << R"(
  sd   r20, 0(r13)
  halt
)";

  BuiltWorkload out;
  out.name = "Image";
  out.description = "3x3 FP convolution + thresholding (DIS image kernel)";
  out.program = isa::assemble(src.str());
  db.finish(out.program, {{"image", img_addr}, {"out", out_addr},
                          {"result", res_addr}});
  out.approx_dynamic_instructions = out_rows * out_cols * 62;
  out.validate = [res_addr, out_addr, hot, gout](const sim::Functional& f) {
    if (f.memory().read<std::uint64_t>(res_addr) != hot) return false;
    const std::uint64_t stride = gout.size() > 2048 ? 41 : 1;
    for (std::uint64_t k = 0; k < gout.size(); k += stride)
      if (f.memory().read<double>(out_addr + k * 8) != gout[k])
        return false;
    return true;
  };
  return out;
}

}  // namespace hidisc::workloads
