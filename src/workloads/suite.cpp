#include "workloads/common.hpp"

namespace hidisc::workloads {

std::vector<BuiltWorkload> paper_suite(Scale scale) {
  // Plot order of the paper's Figure 8: DM, RayTray, Pointer, Update,
  // Field, NB, TC.
  std::vector<BuiltWorkload> suite;
  suite.push_back(make_dm(scale));
  suite.push_back(make_raytrace(scale));
  suite.push_back(make_pointer(scale));
  suite.push_back(make_update(scale));
  suite.push_back(make_field(scale));
  suite.push_back(make_neighborhood(scale));
  suite.push_back(make_transitive(scale));
  return suite;
}

std::vector<BuiltWorkload> extra_suite(Scale scale) {
  std::vector<BuiltWorkload> suite;
  suite.push_back(make_matrix(scale));
  suite.push_back(make_cornerturn(scale));
  suite.push_back(make_fft(scale));
  suite.push_back(make_image(scale));
  return suite;
}

}  // namespace hidisc::workloads
