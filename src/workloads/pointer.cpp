// DIS "Pointer" Stressmark: serial pointer chasing through a pseudo-random
// single-cycle permutation table.  As in the DIS specification, every hop
// also inspects a window of neighbouring slots (branchless running
// maximum) and maintains a checksum — per-hop work that fills the
// baseline's scheduling window and delays dispatch of the next chase load,
// while the CMP's slice stays a lean three-instruction chase (the paper's
// "the CMP executes a smaller amount of code and therefore can run faster
// than the AP").
#include <sstream>
#include <utility>

#include "isa/assembler.hpp"
#include "workloads/common.hpp"

namespace hidisc::workloads {
namespace {

struct Params {
  std::uint64_t table_words;
  std::uint64_t hops;
};

Params params_for(Scale scale) {
  // 128 KiB table: larger than L1, inside L2 — the chase mixes L1/L2 hits
  // the way the paper's IPC levels (~2) imply for this stressmark.
  return scale == Scale::Paper ? Params{1u << 14, 35'000}
                               : Params{1u << 12, 1'200};
}

constexpr int kWindow = 8;  // neighbour slots inspected per hop

}  // namespace

BuiltWorkload make_pointer(Scale scale, std::uint64_t seed) {
  const Params p = params_for(scale);
  Rng rng(seed * 0x1234567 + 99);

  // Sattolo's algorithm: a uniformly random permutation consisting of a
  // single N-cycle, so a chase of fewer than N hops never revisits a slot.
  std::vector<std::uint64_t> table(p.table_words);
  for (std::uint64_t i = 0; i < p.table_words; ++i) table[i] = i;
  for (std::uint64_t i = p.table_words - 1; i > 0; --i)
    std::swap(table[i], table[rng.below(i)]);

  DataBuilder db;
  const std::uint64_t table_addr = db.align(8);
  for (const auto v : table) db.add_u64(v);
  db.add_zeros(kWindow * 8);  // window-scan guard beyond the last slot
  const std::uint64_t res_addr = db.align(8);
  db.add_zeros(4 * 8);

  // Golden reference.
  std::uint64_t idx = 0, sum = 0, maxv = 0, aligned = 0;
  for (std::uint64_t h = 0; h < p.hops; ++h) {
    const std::uint64_t at = idx;
    idx = table[idx];
    sum += idx;
    if ((idx & 15) == 0) ++aligned;  // data-dependent branch in the kernel
    if (idx > maxv) maxv = idx;
    for (int w = 1; w <= kWindow; ++w) {
      const std::uint64_t v = at + w < table.size() ? table[at + w] : 0;
      if (v > maxv) maxv = v;  // values are < 2^63: signed max == unsigned
    }
  }

  std::ostringstream src;
  src << R"(.text
_start:
  li   r4, )" << table_addr << R"(    # table base
  li   r5, 0                          # idx
  li   r6, )" << p.hops << R"(        # hops
  li   r7, 0                          # checksum
  li   r9, 0                          # window maximum
loop:
  slli r10, r5, 3
  add  r10, r10, r4
  ld   r5, 0(r10)                     # idx = table[idx]  (critical chase)
  add  r7, r7, r5                     # checksum
  andi r17, r5, 15                    # branch on the chased value: its
  bne  r17, r0, notal                 # resolution waits for the load
  addi r18, r18, 1                    # count 16-aligned indices
notal:
  slt  r15, r9, r5                    # branchless max(r9, idx)
  sub  r16, r5, r9
  mul  r16, r16, r15
  add  r9, r9, r16
)";
  for (int w = 1; w <= kWindow; ++w) {
    src << "  ld   r11, " << w * 8 << "(r10)\n"
        << "  slt  r15, r9, r11\n"
        << "  sub  r16, r11, r9\n"
        << "  mul  r16, r16, r15\n"
        << "  add  r9, r9, r16\n";
  }
  src << R"(  addi r6, r6, -1
  bne  r6, r0, loop
  li   r12, )" << res_addr << R"(
  sd   r5, 0(r12)
  sd   r7, 8(r12)
  sd   r9, 16(r12)
  sd   r18, 24(r12)
  halt
)";

  BuiltWorkload out;
  out.name = "Pointer";
  out.description =
      "serial pointer chase with per-hop window scan (DIS Pointer)";
  out.program = isa::assemble(src.str());
  db.finish(out.program, {{"table", table_addr}, {"result", res_addr}});
  out.approx_dynamic_instructions = p.hops * (11 + kWindow * 5);
  out.validate = [res_addr, idx, sum, maxv,
                  aligned](const sim::Functional& f) {
    return f.memory().read<std::uint64_t>(res_addr) == idx &&
           f.memory().read<std::uint64_t>(res_addr + 8) == sum &&
           f.memory().read<std::uint64_t>(res_addr + 16) == maxv &&
           f.memory().read<std::uint64_t>(res_addr + 24) == aligned;
  };
  return out;
}

}  // namespace hidisc::workloads
