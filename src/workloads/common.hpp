// Shared infrastructure for the DIS benchmark / Stressmark workloads.
//
// Each workload builds: (1) a data segment synthesized in C++ from a
// deterministic RNG, (2) a HISA assembly kernel whose constants (sizes,
// addresses) are formatted into the source text, and (3) a golden C++
// reference whose results the validator compares against the simulator's
// architectural state.  DESIGN.md §2 documents how these kernels stand in
// for the original (no longer distributed) Atlantic Aerospace suites.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "isa/program.hpp"
#include "sim/functional.hpp"

namespace hidisc::workloads {

// Deterministic 64-bit RNG (splitmix64): workloads must be reproducible
// across platforms, so no <random> engines.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  // Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }
  double unit() {  // [0,1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

// Append-only data-segment builder; returns absolute addresses.
class DataBuilder {
 public:
  explicit DataBuilder(std::uint64_t base = isa::kDataBase) : base_(base) {}

  std::uint64_t align(std::size_t a) {
    while (bytes_.size() % a != 0) bytes_.push_back(0);
    return here();
  }
  [[nodiscard]] std::uint64_t here() const {
    return base_ + bytes_.size();
  }
  std::uint64_t add_u64(std::uint64_t v) { return add(&v, 8); }
  std::uint64_t add_u32(std::uint32_t v) { return add(&v, 4); }
  std::uint64_t add_u16(std::uint16_t v) { return add(&v, 2); }
  std::uint64_t add_u8(std::uint8_t v) { return add(&v, 1); }
  std::uint64_t add_f64(double v) { return add(&v, 8); }
  std::uint64_t add_zeros(std::size_t n) {
    const auto addr = here();
    bytes_.insert(bytes_.end(), n, 0);
    return addr;
  }

  // Installs the built image into `prog` and registers `labels`.
  void finish(isa::Program& prog,
              const std::vector<std::pair<std::string, std::uint64_t>>&
                  labels = {}) {
    prog.data = bytes_;
    prog.data_base = base_;
    for (const auto& [name, addr] : labels) prog.data_labels[name] = addr;
  }

 private:
  std::uint64_t add(const void* src, std::size_t n) {
    const auto addr = here();
    const auto* p = static_cast<const std::uint8_t*>(src);
    bytes_.insert(bytes_.end(), p, p + n);
    return addr;
  }

  std::uint64_t base_;
  std::vector<std::uint8_t> bytes_;
};

// A fully built workload: program plus golden validation.
struct BuiltWorkload {
  std::string name;
  std::string description;
  isa::Program program;
  // Runs after simulation; true when the architectural state matches the
  // golden reference.
  std::function<bool(const sim::Functional&)> validate;
  std::uint64_t approx_dynamic_instructions = 0;  // informational
};

// Scaling presets: Test keeps unit tests fast; Paper drives the benches.
enum class Scale { Test, Paper };

BuiltWorkload make_pointer(Scale scale, std::uint64_t seed = 1);
BuiltWorkload make_update(Scale scale, std::uint64_t seed = 2);
BuiltWorkload make_field(Scale scale, std::uint64_t seed = 3);
BuiltWorkload make_neighborhood(Scale scale, std::uint64_t seed = 4);
BuiltWorkload make_transitive(Scale scale, std::uint64_t seed = 5);
BuiltWorkload make_dm(Scale scale, std::uint64_t seed = 6);
BuiltWorkload make_raytrace(Scale scale, std::uint64_t seed = 7);

// The remaining two DIS Stressmarks the paper's Figure 8 does not plot;
// implemented for completeness of the suite.
BuiltWorkload make_matrix(Scale scale, std::uint64_t seed = 8);
BuiltWorkload make_cornerturn(Scale scale, std::uint64_t seed = 9);
// Two further DIS application kernels (multidimensional Fourier transform
// and image understanding), likewise beyond the paper's plots.
BuiltWorkload make_fft(Scale scale, std::uint64_t seed = 10);
BuiltWorkload make_image(Scale scale, std::uint64_t seed = 11);

// The seven benchmarks of the paper's Figure 8, in plot order:
// DM, RayTray, Pointer, Update, Field, NB (Neighborhood), TC.
std::vector<BuiltWorkload> paper_suite(Scale scale = Scale::Paper);

// Matrix + Corner Turn + FFT + Image: the rest of the DIS suites.
std::vector<BuiltWorkload> extra_suite(Scale scale = Scale::Paper);

}  // namespace hidisc::workloads
