// DIS "Neighborhood" Stressmark: repeated passes over a 16-bit image; for
// every pixel, gather two neighbours at distance d, compute the sum of
// squared differences in floating point, store it into a ring buffer and
// accumulate a global statistic.  Every iteration loads on the access
// side, computes on the FP side, and stores the FP result back — the tight
// CP->AP coupling whose synchronizations cause the paper's
// loss-of-decoupling events: Neighborhood is the one benchmark where CP+AP
// falls below the baseline and CP+CMP beats the full HiDISC (§5.3).
#include <sstream>

#include "isa/assembler.hpp"
#include "workloads/common.hpp"

namespace hidisc::workloads {
namespace {

struct Params {
  std::uint64_t width;
  std::uint64_t height;
  std::uint64_t dist;
  std::uint64_t passes;
  std::uint64_t ring;  // output ring entries (power of two)
};

Params params_for(Scale scale) {
  // 288x288 x 2B = 162 KiB: misses DRAM on the first pass, L2-resident on
  // the second.  The 16 KiB output ring stays L1-resident.
  return scale == Scale::Paper ? Params{288, 288, 8, 3, 2048}
                               : Params{48, 48, 4, 2, 256};
}

}  // namespace

BuiltWorkload make_neighborhood(Scale scale, std::uint64_t seed) {
  const Params p = params_for(scale);
  Rng rng(seed * 0x7777 + 21);

  std::vector<std::uint16_t> img(p.width * p.height);
  for (auto& v : img) v = static_cast<std::uint16_t>(rng.below(65536));

  DataBuilder db;
  const std::uint64_t img_addr = db.align(8);
  for (const auto v : img) db.add_u16(v);
  const std::uint64_t out_rows = p.height - p.dist;
  const std::uint64_t out_cols = p.width - p.dist;
  const std::uint64_t ring_addr = db.align(8);
  db.add_zeros(p.ring * 8);
  const std::uint64_t res_addr = db.align(8);
  db.add_zeros(8);

  // Golden reference; arithmetic mirrors the kernel operation-for-operation
  // so doubles compare bit-exactly.
  std::vector<double> ring(p.ring, 0.0);
  double total = 0.0;
  for (std::uint64_t pass = 0; pass < p.passes; ++pass) {
    std::uint64_t k = 0;
    for (std::uint64_t i = 0; i < out_rows; ++i) {
      for (std::uint64_t j = 0; j < out_cols; ++j) {
        const double c = static_cast<double>(img[i * p.width + j]);
        const double below =
            static_cast<double>(img[(i + p.dist) * p.width + j]);
        const double right =
            static_cast<double>(img[i * p.width + j + p.dist]);
        const double d1 = c - below;
        const double d2 = c - right;
        const double v = d1 * d1 + d2 * d2;
        ring[k & (p.ring - 1)] = v;
        total = total + v;
        ++k;
      }
    }
  }

  std::ostringstream src;
  src << R"(.text
_start:
  li   r14, )" << p.passes << R"(       # pass counter
  cvtif f7, r0                          # running total
pass:
  li   r4, )" << img_addr << R"(        # current row pointer
  li   r5, )" << ring_addr << R"(       # ring cursor
  li   r15, )" << (ring_addr + p.ring * 8) << R"(  # ring end
  li   r6, )" << out_rows << R"(        # row counter
rows:
  mv   r7, r4                           # rp: &img[i][0]
  li   r8, )" << (p.dist * p.width * 2) << R"(
  add  r8, r8, r4                       # rq: &img[i+d][0]
  li   r9, )" << out_cols << R"(        # column counter
cols:
  lhu  r10, 0(r7)                       # centre pixel
  lhu  r11, 0(r8)                       # below neighbour
  lhu  r12, )" << (p.dist * 2) << R"((r7)   # right neighbour
  cvtif f1, r10
  cvtif f2, r11
  cvtif f3, r12
  fsub f4, f1, f2
  fsub f5, f1, f3
  fmul f4, f4, f4
  fmul f5, f5, f5
  fadd f6, f4, f5
  fsd  f6, 0(r5)                        # ring[k] = v
  fadd f7, f7, f6
  addi r7, r7, 2
  addi r8, r8, 2
  addi r5, r5, 8
  bne  r5, r15, nowrap                  # ring wrap-around
  li   r5, )" << ring_addr << R"(
nowrap:
  addi r9, r9, -1
  bne  r9, r0, cols
  addi r4, r4, )" << (p.width * 2) << R"(
  addi r6, r6, -1
  bne  r6, r0, rows
  addi r14, r14, -1
  bne  r14, r0, pass
  li   r13, )" << res_addr << R"(
  fsd  f7, 0(r13)
  halt
)";

  BuiltWorkload out;
  out.name = "Neighborhood";
  out.description =
      "pixel-neighbourhood squared differences (FP store loop, 3 passes)";
  out.program = isa::assemble(src.str());
  db.finish(out.program, {{"image", img_addr}, {"ring", ring_addr},
                          {"result", res_addr}});
  out.approx_dynamic_instructions =
      p.passes * out_rows * out_cols * 20;
  out.validate = [res_addr, ring_addr, total, ring](const sim::Functional& f) {
    if (f.memory().read<double>(res_addr) != total) return false;
    for (std::uint64_t k = 0; k < ring.size(); ++k)
      if (f.memory().read<double>(ring_addr + k * 8) != ring[k])
        return false;
    return true;
  };
  return out;
}

}  // namespace hidisc::workloads
