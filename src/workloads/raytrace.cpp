// DIS "Ray Tracing" benchmark kernel: rays marching through a dense 2-D
// grid of integer cell densities (DDA-style traversal), counting the cells
// above a threshold along each ray.  Positions advance in floating point
// on the computation side; cell indices flow CP->AP through the SDQ every
// step.  Because the address stream depends on FP compute, the compiler
// drops these loads from the CMAS (the CMP cannot pre-execute FP), making
// this the prefetch-resistant member of the suite: all HiDISC benefit must
// come from decoupling alone.
#include <sstream>

#include "isa/assembler.hpp"
#include "workloads/common.hpp"

namespace hidisc::workloads {
namespace {

struct Params {
  std::uint64_t grid;   // grid side length (cells)
  std::uint64_t rays;
  std::uint64_t steps;  // fixed march length per ray
};

Params params_for(Scale scale) {
  return scale == Scale::Paper ? Params{256, 1'200, 80}
                               : Params{64, 40, 24};
}

constexpr std::uint64_t kThreshold = 1u << 31;

}  // namespace

BuiltWorkload make_raytrace(Scale scale, std::uint64_t seed) {
  const Params p = params_for(scale);
  Rng rng(seed * 0xbeef + 11);

  std::vector<std::uint32_t> grid(p.grid * p.grid);
  for (auto& c : grid) c = static_cast<std::uint32_t>(rng.below(1ull << 32));

  // Ray origins stay far enough from the borders that a fixed-length march
  // with |direction| <= 1 never leaves the grid: no bounds checks needed.
  const double margin = static_cast<double>(p.steps) + 2.0;
  std::vector<double> ox(p.rays), oy(p.rays), dx(p.rays), dy(p.rays);
  for (std::uint64_t r = 0; r < p.rays; ++r) {
    const double span = static_cast<double>(p.grid) - 2.0 * margin;
    ox[r] = margin + rng.unit() * span;
    oy[r] = margin + rng.unit() * span;
    dx[r] = rng.unit() * 2.0 - 1.0;
    dy[r] = rng.unit() * 2.0 - 1.0;
  }

  DataBuilder db;
  const std::uint64_t grid_addr = db.align(8);
  for (const auto c : grid) db.add_u32(c);
  const std::uint64_t ox_addr = db.align(8);
  for (const auto v : ox) db.add_f64(v);
  const std::uint64_t oy_addr = db.align(8);
  for (const auto v : oy) db.add_f64(v);
  const std::uint64_t dx_addr = db.align(8);
  for (const auto v : dx) db.add_f64(v);
  const std::uint64_t dy_addr = db.align(8);
  for (const auto v : dy) db.add_f64(v);
  const std::uint64_t res_addr = db.align(8);
  db.add_zeros(3 * 8);

  // Golden reference, operation-for-operation identical to the kernel.
  std::uint64_t hits = 0;
  double fx = 0.0, fy = 0.0;
  for (std::uint64_t r = 0; r < p.rays; ++r) {
    double x = ox[r], y = oy[r];
    for (std::uint64_t s = 0; s < p.steps; ++s) {
      const auto xi = static_cast<std::int64_t>(x);
      const auto yi = static_cast<std::int64_t>(y);
      const std::uint32_t cell =
          grid[static_cast<std::uint64_t>(yi) * p.grid +
               static_cast<std::uint64_t>(xi)];
      if (cell > kThreshold) ++hits;
      x = x + dx[r];
      y = y + dy[r];
    }
    fx = x;
    fy = y;
  }

  std::ostringstream src;
  src << R"(.text
_start:
  li   r4, )" << grid_addr << R"(    # grid base
  li   r5, )" << p.rays << R"(       # rays remaining
  li   r6, 0                         # ray cursor (bytes)
  li   r7, )" << p.grid << R"(       # grid side
  li   r17, )" << kThreshold << R"(  # density threshold
  li   r20, 0                        # hit count
rayloop:
  li   r8, )" << ox_addr << R"(
  add  r8, r8, r6
  fld  f1, 0(r8)                     # x
  li   r9, )" << oy_addr << R"(
  add  r9, r9, r6
  fld  f2, 0(r9)                     # y
  li   r10, )" << dx_addr << R"(
  add  r10, r10, r6
  fld  f3, 0(r10)                    # dx
  li   r11, )" << dy_addr << R"(
  add  r11, r11, r6
  fld  f4, 0(r11)                    # dy
  li   r12, )" << p.steps << R"(     # step counter
steploop:
  cvtfi r13, f1                      # xi   (computation -> SDQ)
  cvtfi r14, f2                      # yi
  mul  r15, r14, r7
  add  r15, r15, r13
  slli r15, r15, 2
  add  r15, r15, r4
  lwu  r16, 0(r15)                   # cell density
  sltu r18, r17, r16                 # cell > threshold
  add  r20, r20, r18                 # branchless hit count
  fadd f1, f1, f3                    # x += dx
  fadd f2, f2, f4                    # y += dy
  addi r12, r12, -1
  bne  r12, r0, steploop
  addi r6, r6, 8
  addi r5, r5, -1
  bne  r5, r0, rayloop
  li   r19, )" << res_addr << R"(
  sd   r20, 0(r19)
  fsd  f1, 8(r19)
  fsd  f2, 16(r19)
  halt
)";

  BuiltWorkload out;
  out.name = "RayTray";
  out.description =
      "ray march through an integer density grid (DIS ray tracing)";
  out.program = isa::assemble(src.str());
  db.finish(out.program, {{"grid", grid_addr}, {"result", res_addr}});
  out.approx_dynamic_instructions = p.rays * (p.steps * 13 + 16);
  out.validate = [res_addr, hits, fx, fy](const sim::Functional& f) {
    return f.memory().read<std::uint64_t>(res_addr) == hits &&
           f.memory().read<double>(res_addr + 8) == fx &&
           f.memory().read<double>(res_addr + 16) == fy;
  };
  return out;
}

}  // namespace hidisc::workloads
