// DIS "Transitive Closure" Stressmark: Floyd–Warshall all-pairs shortest
// paths over a dense non-negative adjacency matrix.  Row-scanning integer
// loads with data-dependent conditional stores; almost the entire kernel
// lands in the Access Stream, so decoupling alone cannot help — exactly the
// benchmark where the paper measures the largest CMP-driven cache-miss
// reduction (-26.7%).
#include <algorithm>
#include <sstream>

#include "isa/assembler.hpp"
#include "workloads/common.hpp"

namespace hidisc::workloads {
namespace {

struct Params {
  std::uint64_t n;  // vertices
};

Params params_for(Scale scale) {
  // 68 vertices -> 37 KiB matrix: larger than L1, comfortably inside L2.
  return scale == Scale::Paper ? Params{68} : Params{20};
}

constexpr std::int64_t kInf = 1'000'000'000;

}  // namespace

BuiltWorkload make_transitive(Scale scale, std::uint64_t seed) {
  const Params p = params_for(scale);
  Rng rng(seed * 0xabcd + 17);

  // Sparse-ish random digraph with weights in [1, 100).
  std::vector<std::int64_t> d(p.n * p.n, kInf);
  for (std::uint64_t i = 0; i < p.n; ++i) d[i * p.n + i] = 0;
  for (std::uint64_t i = 0; i < p.n; ++i) {
    for (std::uint64_t j = 0; j < p.n; ++j) {
      if (i != j && rng.below(100) < 18)
        d[i * p.n + j] = static_cast<std::int64_t>(1 + rng.below(99));
    }
  }

  DataBuilder db;
  const std::uint64_t mat_addr = db.align(8);
  for (const auto v : d) db.add_u64(static_cast<std::uint64_t>(v));

  // Golden Floyd–Warshall.
  std::vector<std::int64_t> golden = d;
  for (std::uint64_t k = 0; k < p.n; ++k)
    for (std::uint64_t i = 0; i < p.n; ++i) {
      const std::int64_t dik = golden[i * p.n + k];
      for (std::uint64_t j = 0; j < p.n; ++j) {
        const std::int64_t t = dik + golden[k * p.n + j];
        golden[i * p.n + j] = std::min(golden[i * p.n + j], t);
      }
    }

  const std::uint64_t row_bytes = p.n * 8;
  std::ostringstream src;
  src << R"(.text
_start:
  li   r4, )" << mat_addr << R"(     # matrix base
  li   r17, )" << p.n << R"(         # n
  li   r18, )" << row_bytes << R"(   # row stride in bytes
  li   r5, 0                         # k
kloop:
  mul  r6, r5, r18
  add  r6, r6, r4                    # &d[k][0]
  li   r7, 0                         # i
iloop:
  mul  r8, r7, r18
  add  r8, r8, r4                    # &d[i][0]
  slli r9, r5, 3
  add  r9, r9, r8
  ld   r10, 0(r9)                    # dik = d[i][k]
  mv   r11, r6                       # rkj = &d[k][0]
  mv   r12, r8                       # rij = &d[i][0]
  li   r13, )" << p.n << R"(         # j counter
jloop:
  ld   r14, 0(r11)                   # d[k][j]
  add  r15, r10, r14                 # t = dik + d[k][j]
  ld   r16, 0(r12)                   # d[i][j]
  bge  r15, r16, skip
  sd   r15, 0(r12)
skip:
  addi r11, r11, 8
  addi r12, r12, 8
  addi r13, r13, -1
  bne  r13, r0, jloop
  addi r7, r7, 1
  blt  r7, r17, iloop
  addi r5, r5, 1
  blt  r5, r17, kloop
  halt
)";

  BuiltWorkload out;
  out.name = "TC";
  out.description = "Floyd-Warshall transitive closure / shortest paths";
  out.program = isa::assemble(src.str());
  db.finish(out.program, {{"matrix", mat_addr}});
  out.approx_dynamic_instructions = p.n * p.n * p.n * 8;
  out.validate = [mat_addr, golden](const sim::Functional& f) {
    for (std::size_t k = 0; k < golden.size(); ++k)
      if (f.memory().read<std::int64_t>(mat_addr + k * 8) != golden[k])
        return false;
    return true;
  };
  return out;
}

}  // namespace hidisc::workloads
