// DIS "Matrix" Stressmark: the kernel of a conjugate-gradient style
// iterative solver — repeated sparse matrix-vector products in CSR form.
// Column indices stream sequentially (access side), the x-vector gather is
// data-dependent (prefetchable: integer address chain), and the
// multiply-accumulate runs in floating point (computation side).  Not part
// of the paper's Figure 8 suite (it plots five of the seven Stressmarks),
// but included for completeness of the DIS suite.
#include <sstream>

#include "isa/assembler.hpp"
#include "workloads/common.hpp"

namespace hidisc::workloads {
namespace {

struct Params {
  std::uint64_t rows;
  std::uint64_t nnz_per_row;
  std::uint64_t sweeps;
};

Params params_for(Scale scale) {
  return scale == Scale::Paper ? Params{4'000, 8, 3} : Params{96, 6, 2};
}

}  // namespace

BuiltWorkload make_matrix(Scale scale, std::uint64_t seed) {
  const Params p = params_for(scale);
  Rng rng(seed * 0x4d4d + 77);
  const std::uint64_t nnz = p.rows * p.nnz_per_row;

  // CSR structure with a fixed row degree; columns are random (the
  // low-locality gather the stressmark is about).
  std::vector<std::uint64_t> col(nnz);
  std::vector<double> val(nnz), x(p.rows);
  for (auto& c : col) c = rng.below(p.rows);
  for (auto& v : val) v = rng.unit() - 0.5;
  for (auto& v : x) v = rng.unit();

  DataBuilder db;
  const std::uint64_t col_addr = db.align(8);
  for (const auto c : col) db.add_u64(c);
  const std::uint64_t val_addr = db.align(8);
  for (const auto v : val) db.add_f64(v);
  const std::uint64_t x_addr = db.align(8);
  for (const auto v : x) db.add_f64(v);
  const std::uint64_t y_addr = db.align(8);
  db.add_zeros(p.rows * 8);
  const std::uint64_t res_addr = db.align(8);
  db.add_zeros(8);

  // Golden: `sweeps` products into y.  Sweep 0 gathers from x; later
  // sweeps gather from y *in place* (Gauss-Seidel style, exactly as the
  // kernel does — rows may read values already updated this sweep).
  std::vector<double> y(p.rows, 0.0);
  double checksum = 0.0;
  for (std::uint64_t s = 0; s < p.sweeps; ++s) {
    const std::vector<double>& src_vec = s == 0 ? x : y;
    for (std::uint64_t i = 0; i < p.rows; ++i) {
      double acc = 0.0;
      for (std::uint64_t j = 0; j < p.nnz_per_row; ++j) {
        const auto k = i * p.nnz_per_row + j;
        acc = acc + val[k] * src_vec[col[k]];
      }
      y[i] = acc;
      checksum = checksum + acc;
    }
  }

  std::ostringstream src;
  src << R"(.text
_start:
  li   r20, )" << p.sweeps << R"(   # sweep counter
  li   r21, )" << x_addr << R"(     # gather source (x, then y in place)
  cvtif f10, r0                     # global checksum
sweep:
  li   r4, )" << col_addr << R"(    # column cursor
  li   r5, )" << val_addr << R"(    # value cursor
  li   r6, )" << y_addr << R"(      # output cursor
  li   r7, )" << p.rows << R"(      # row counter
row:
  cvtif f1, r0                      # acc = 0
  li   r8, )" << p.nnz_per_row << R"(
elem:
  ld   r9, 0(r4)                    # column index
  slli r9, r9, 3
  add  r9, r9, r21
  fld  f2, 0(r9)                    # x[col]   (random gather)
  fld  f3, 0(r5)                    # A value
  fmul f4, f2, f3
  fadd f1, f1, f4
  addi r4, r4, 8
  addi r5, r5, 8
  addi r8, r8, -1
  bne  r8, r0, elem
  fsd  f1, 0(r6)                    # y[i] = acc
  fadd f10, f10, f1                 # checksum
  addi r6, r6, 8
  addi r7, r7, -1
  bne  r7, r0, row
  li   r21, )" << y_addr << R"(     # next sweep gathers from y
  addi r20, r20, -1
  bne  r20, r0, sweep
  li   r22, )" << res_addr << R"(
  fsd  f10, 0(r22)
  halt
)";

  BuiltWorkload out;
  out.name = "Matrix";
  out.description = "CSR sparse matrix-vector sweeps (DIS Matrix/CG kernel)";
  out.program = isa::assemble(src.str());
  db.finish(out.program, {{"cols", col_addr}, {"y", y_addr},
                          {"result", res_addr}});
  out.approx_dynamic_instructions =
      p.sweeps * p.rows * (p.nnz_per_row * 10 + 8);
  out.validate = [res_addr, y_addr, checksum, y](const sim::Functional& f) {
    if (f.memory().read<double>(res_addr) != checksum) return false;
    const std::uint64_t stride = y.size() > 512 ? 37 : 1;
    for (std::uint64_t i = 0; i < y.size(); i += stride)
      if (f.memory().read<double>(y_addr + i * 8) != y[i]) return false;
    return true;
  };
  return out;
}

}  // namespace hidisc::workloads
