// DIS "Multidimensional Fourier Transform" application kernel: an
// iterative radix-2 complex FFT.  The bit-reversal permutation is the
// data-intensive shuffle (table-driven swaps, all access-side); the
// butterfly stages mix strided loads with FP multiply-adds (twiddle
// factors precomputed into the data segment).  Golden reference executes
// the identical operation order, so the spectra compare bit-exactly.
#include <cmath>
#include <sstream>

#include "isa/assembler.hpp"
#include "workloads/common.hpp"

namespace hidisc::workloads {
namespace {

struct Params {
  std::uint64_t n;  // power of two
};

Params params_for(Scale scale) {
  return scale == Scale::Paper ? Params{4096} : Params{256};
}

std::uint64_t bit_reverse(std::uint64_t v, int bits) {
  std::uint64_t r = 0;
  for (int b = 0; b < bits; ++b) r |= ((v >> b) & 1) << (bits - 1 - b);
  return r;
}

}  // namespace

BuiltWorkload make_fft(Scale scale, std::uint64_t seed) {
  const Params p = params_for(scale);
  Rng rng(seed * 0xff7 + 31);
  int bits = 0;
  while ((1ull << bits) < p.n) ++bits;

  std::vector<double> re(p.n), im(p.n);
  for (auto& v : re) v = rng.unit() - 0.5;
  for (auto& v : im) v = rng.unit() - 0.5;
  std::vector<std::uint64_t> rev(p.n);
  for (std::uint64_t i = 0; i < p.n; ++i) rev[i] = bit_reverse(i, bits);
  std::vector<double> tw_re(p.n / 2), tw_im(p.n / 2);
  for (std::uint64_t k = 0; k < p.n / 2; ++k) {
    const double ang = -2.0 * 3.14159265358979323846 *
                       static_cast<double>(k) / static_cast<double>(p.n);
    tw_re[k] = std::cos(ang);
    tw_im[k] = std::sin(ang);
  }

  DataBuilder db;
  const std::uint64_t re_addr = db.align(8);
  for (const auto v : re) db.add_f64(v);
  const std::uint64_t im_addr = db.align(8);
  for (const auto v : im) db.add_f64(v);
  const std::uint64_t rev_addr = db.align(8);
  for (const auto v : rev) db.add_u64(v);
  const std::uint64_t twr_addr = db.align(8);
  for (const auto v : tw_re) db.add_f64(v);
  const std::uint64_t twi_addr = db.align(8);
  for (const auto v : tw_im) db.add_f64(v);

  // Golden FFT, operation-for-operation identical to the kernel.
  std::vector<double> gr = re, gi = im;
  for (std::uint64_t i = 0; i < p.n; ++i) {
    const auto j = rev[i];
    if (i < j) {
      std::swap(gr[i], gr[j]);
      std::swap(gi[i], gi[j]);
    }
  }
  for (std::uint64_t len = 2; len <= p.n; len <<= 1) {
    const std::uint64_t half = len / 2;
    const std::uint64_t step = p.n / len;
    for (std::uint64_t base = 0; base < p.n; base += len) {
      for (std::uint64_t k = 0; k < half; ++k) {
        const double wr = tw_re[k * step], wi = tw_im[k * step];
        const std::uint64_t a = base + k, b = base + k + half;
        const double tr = gr[b] * wr - gi[b] * wi;
        const double ti = gr[b] * wi + gi[b] * wr;
        gr[b] = gr[a] - tr;
        gi[b] = gi[a] - ti;
        gr[a] = gr[a] + tr;
        gi[a] = gi[a] + ti;
      }
    }
  }

  std::ostringstream src;
  src << R"(.text
_start:
  # ---- bit-reversal permutation ----
  li   r4, )" << rev_addr << R"(
  li   r5, )" << p.n << R"(
  li   r6, 0                          # i
bitrev:
  slli r7, r6, 3
  add  r8, r7, r4
  ld   r9, 0(r8)                      # j = rev[i]
  bge  r6, r9, norev                  # swap only when i < j
  slli r10, r9, 3
  li   r11, )" << re_addr << R"(
  add  r12, r11, r7                   # &re[i]
  add  r13, r11, r10                  # &re[j]
  fld  f1, 0(r12)
  fld  f2, 0(r13)
  fsd  f2, 0(r12)
  fsd  f1, 0(r13)
  li   r11, )" << im_addr << R"(
  add  r12, r11, r7
  add  r13, r11, r10
  fld  f1, 0(r12)
  fld  f2, 0(r13)
  fsd  f2, 0(r12)
  fsd  f1, 0(r13)
norev:
  addi r6, r6, 1
  bne  r6, r5, bitrev
  # ---- butterfly stages ----
  li   r14, 2                         # len
stage:
  srli r15, r14, 1                    # half
  li   r16, )" << p.n << R"(
  div  r17, r16, r14                  # twiddle step
  li   r18, 0                         # base
block:
  li   r19, 0                         # k
bfly:
  mul  r20, r19, r17                  # twiddle index
  slli r20, r20, 3
  li   r21, )" << twr_addr << R"(
  add  r21, r21, r20
  fld  f3, 0(r21)                     # wr
  li   r21, )" << twi_addr << R"(
  add  r21, r21, r20
  fld  f4, 0(r21)                     # wi
  add  r22, r18, r19                  # a
  add  r23, r22, r15                  # b
  slli r24, r22, 3
  slli r25, r23, 3
  li   r26, )" << re_addr << R"(
  li   r27, )" << im_addr << R"(
  add  r10, r26, r25
  fld  f5, 0(r10)                     # re[b]
  add  r11, r27, r25
  fld  f6, 0(r11)                     # im[b]
  fmul f7, f5, f3
  fmul f8, f6, f4
  fsub f9, f7, f8                     # tr
  fmul f7, f5, f4
  fmul f8, f6, f3
  fadd f10, f7, f8                    # ti
  add  r12, r26, r24
  fld  f11, 0(r12)                    # re[a]
  add  r13, r27, r24
  fld  f12, 0(r13)                    # im[a]
  fsub f13, f11, f9
  fsd  f13, 0(r10)                    # re[b] = re[a] - tr
  fsub f14, f12, f10
  fsd  f14, 0(r11)                    # im[b] = im[a] - ti
  fadd f15, f11, f9
  fsd  f15, 0(r12)                    # re[a] += tr
  fadd f16, f12, f10
  fsd  f16, 0(r13)                    # im[a] += ti
  addi r19, r19, 1
  bne  r19, r15, bfly
  add  r18, r18, r14                  # base += len
  bne  r18, r16, block
  slli r14, r14, 1                    # len <<= 1
  bge  r16, r14, stage
  halt
)";

  BuiltWorkload out;
  out.name = "FFT";
  out.description = "radix-2 complex FFT (DIS multidimensional FT kernel)";
  out.program = isa::assemble(src.str());
  db.finish(out.program, {{"re", re_addr}, {"im", im_addr}});
  out.approx_dynamic_instructions =
      p.n * static_cast<std::uint64_t>(bits) * 20;
  out.validate = [re_addr, im_addr, gr, gi](const sim::Functional& f) {
    const std::uint64_t stride = gr.size() > 1024 ? 19 : 1;
    for (std::uint64_t i = 0; i < gr.size(); i += stride) {
      if (f.memory().read<double>(re_addr + i * 8) != gr[i]) return false;
      if (f.memory().read<double>(im_addr + i * 8) != gi[i]) return false;
    }
    return true;
  };
  return out;
}

}  // namespace hidisc::workloads
