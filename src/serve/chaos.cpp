#include "serve/chaos.hpp"

#include <poll.h>
#include <unistd.h>

#include <cstdlib>
#include <stdexcept>

namespace hidisc::serve {

namespace {

// The splitmix64 step (same generator the fuzz subsystem's seed
// derivation uses): every draw below is a pure function of (seed,
// connection ordinal), which is what makes campaigns replayable.
std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

[[noreturn]] void bad_spec(const std::string& text, const std::string& why) {
  throw std::runtime_error("chaos-net: bad spec '" + text + "': " + why);
}

std::uint64_t parse_u64(const std::string& text, const std::string& s,
                        const std::string& what) {
  if (s.empty()) bad_spec(text, what + " needs a number");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) bad_spec(text, what + " '" + s + "'");
  return v;
}

}  // namespace

ChaosSpec parse_chaos_spec(const std::string& text) {
  const auto colon = text.find(':');
  if (colon == std::string::npos)
    bad_spec(text, "want SEED:TERM[,TERM...]");
  ChaosSpec spec;
  spec.seed = parse_u64(text, text.substr(0, colon), "seed");

  std::size_t pos = colon + 1;
  bool any = false;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    std::string term = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (term.empty()) continue;
    any = true;

    // Peel the optional suffixes: xM (multiplicity), =MS (stall), @N
    // (position) — in that order, right to left.
    std::uint32_t mult = 1;
    if (const auto x = term.rfind('x'); x != std::string::npos && x > 0) {
      mult = static_cast<std::uint32_t>(
          parse_u64(text, term.substr(x + 1), "multiplicity"));
      if (mult == 0) bad_spec(text, "x0 multiplicity");
      term = term.substr(0, x);
    }
    int ms = -1;
    if (const auto eq = term.find('='); eq != std::string::npos) {
      ms = static_cast<int>(parse_u64(text, term.substr(eq + 1), "value"));
      term = term.substr(0, eq);
    }
    std::uint64_t at = 0;
    if (const auto a = term.find('@'); a != std::string::npos) {
      at = parse_u64(text, term.substr(a + 1), "position");
      if (at == 0) bad_spec(text, "@0 position (positions are 1-based)");
      term = term.substr(0, a);
    }

    if (term == "drop") {
      spec.drop = true;
      spec.drop_at = at;
      spec.drop_budget = mult;
    } else if (term == "corrupt") {
      spec.corrupt = true;
      spec.corrupt_at = at;
      spec.corrupt_budget = mult;
    } else if (term == "split") {
      spec.split = true;
    } else if (term == "stall") {
      spec.stall = true;
      spec.stall_at = at;
      if (ms >= 0) spec.stall_ms = ms;
    } else if (term == "window") {
      if (ms <= 0) bad_spec(text, "window needs =K");
      spec.window = static_cast<std::uint64_t>(ms);
    } else {
      bad_spec(text, "unknown term '" + term +
                         "' (drop, corrupt, split, stall, window)");
    }
  }
  if (!any) bad_spec(text, "no fault terms");
  return spec;
}

std::optional<ChaosSpec> chaos_spec_from(const std::string& cli) {
  if (!cli.empty()) return parse_chaos_spec(cli);
  const char* env = std::getenv("HIDISC_CHAOS_NET");
  if (env && *env) return parse_chaos_spec(env);
  return std::nullopt;
}

// FaultPlan ------------------------------------------------------------------

void FaultPlan::arm(const ChaosSpec& spec) {
  spec_ = spec;
  enabled_ = true;
  drop_left_ = spec.drop ? static_cast<std::int64_t>(spec.drop_budget) : 0;
  corrupt_left_ =
      spec.corrupt ? static_cast<std::int64_t>(spec.corrupt_budget) : 0;
}

FaultSchedule FaultPlan::next_schedule() {
  FaultSchedule s;
  if (!enabled_) return s;
  const std::uint64_t ordinal = conns_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t x = spec_.seed ^ (0xC0FFEEull + ordinal * 0x9E3779B97F4A7C15ull);
  const std::uint64_t window = spec_.window ? spec_.window : 8;
  const auto derive = [&](std::uint64_t pinned) {
    const std::uint64_t draw = 1 + splitmix64(x) % window;
    return pinned ? pinned : draw;
  };
  if (spec_.drop && drop_left_.load(std::memory_order_relaxed) > 0)
    s.drop_at = derive(spec_.drop_at);
  if (spec_.corrupt && corrupt_left_.load(std::memory_order_relaxed) > 0) {
    s.corrupt_at = derive(spec_.corrupt_at);
    s.corrupt_pos = splitmix64(x);
    s.corrupt_xor = static_cast<std::uint8_t>(1 + splitmix64(x) % 255);
  }
  if (spec_.split) {
    s.split = true;
    s.split_seed = splitmix64(x);
  }
  if (spec_.stall) {
    s.stall_at = derive(spec_.stall_at);
    s.stall_ms = spec_.stall_ms;
  }
  s.plan = this;
  return s;
}

bool FaultPlan::take_drop() {
  if (drop_left_.fetch_sub(1, std::memory_order_relaxed) <= 0) return false;
  drops_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultPlan::take_corrupt() {
  if (corrupt_left_.fetch_sub(1, std::memory_order_relaxed) <= 0) return false;
  corruptions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

// FaultConn ------------------------------------------------------------------

bool FaultConn::crossed_drop() {
  if (sched_.drop_at == 0) return false;
  if (frames_in_ + frames_out_ < sched_.drop_at) return false;
  if (sched_.plan && !sched_.plan->take_drop()) {
    sched_.drop_at = 0;  // budget exhausted elsewhere: disarm
    return false;
  }
  sched_.drop_at = 0;  // fires once per connection
  inner_.close();
  return true;
}

bool FaultConn::apply_send_faults(std::string& wire) {
  ++frames_out_;
  if (crossed_drop()) return false;
  if (sched_.corrupt_at != 0 && frames_out_ == sched_.corrupt_at &&
      !wire.empty() && (!sched_.plan || sched_.plan->take_corrupt())) {
    wire[sched_.corrupt_pos % wire.size()] ^=
        static_cast<char>(sched_.corrupt_xor);
    sched_.corrupt_at = 0;
  }
  if (sched_.stall_at != 0 && frames_out_ == sched_.stall_at) {
    sched_.stall_at = 0;
    if (sched_.plan) sched_.plan->count_stall();
    ::usleep(static_cast<useconds_t>(sched_.stall_ms) * 1000);
  }
  return true;
}

void FaultConn::send_frame(const Frame& f) {
  std::string wire = encode_frame(f);
  if (!apply_send_faults(wire))
    throw TransportError("hiserve chaos: injected connection drop (send)");
  if (!sched_.split || wire.size() < 2) {
    inner_.send_raw(wire.data(), wire.size());
    return;
  }
  // 2-4 chunks at schedule-derived boundaries, with a scheduling gap
  // between them so the receiver genuinely observes partial frames.
  std::uint64_t x = sched_.split_seed + frames_out_;
  const std::size_t chunks = 2 + splitmix64(x) % 3;
  std::size_t off = 0;
  for (std::size_t i = 0; i + 1 < chunks && off + 1 < wire.size(); ++i) {
    const std::size_t remain = wire.size() - off;
    const std::size_t take = 1 + splitmix64(x) % (remain - 1);
    inner_.send_raw(wire.data() + off, take);
    off += take;
    ::usleep(200);
  }
  inner_.send_raw(wire.data() + off, wire.size() - off);
}

std::optional<Frame> FaultConn::recv_frame() {
  auto f = inner_.recv_frame();
  if (f) {
    ++frames_in_;
    if (crossed_drop())
      throw TransportError("hiserve chaos: injected connection drop (recv)");
  }
  return f;
}

std::optional<Frame> FaultConn::recv_frame_for(int timeout_ms,
                                               bool* timed_out) {
  auto f = inner_.recv_frame_for(timeout_ms, timed_out);
  if (f) {
    ++frames_in_;
    if (crossed_drop())
      throw TransportError("hiserve chaos: injected connection drop (recv)");
  }
  return f;
}

std::optional<Frame> FaultConn::next_frame() {
  auto f = inner_.next_frame();
  if (f) {
    ++frames_in_;
    if (crossed_drop())
      throw TransportError("hiserve chaos: injected connection drop (recv)");
  }
  return f;
}

void FaultConn::queue_frame(const Frame& f) {
  std::string wire = encode_frame(f);
  if (!apply_send_faults(wire)) return;  // injected drop: fd now closed
  outq_ += wire;
}

bool FaultConn::flush_queue() {
  while (!outq_.empty()) {
    if (!inner_.valid()) return false;
    const long n = inner_.try_send(outq_.data(), outq_.size());
    if (n < 0) return false;
    if (n == 0) return true;  // would block; poll will call us back
    outq_.erase(0, static_cast<std::size_t>(n));
  }
  return true;
}

void FaultConn::flush_blocking(int timeout_ms) {
  const int step = 20;
  for (int waited = 0; !outq_.empty() && waited <= timeout_ms; waited += step) {
    if (!flush_queue() || outq_.empty()) return;
    pollfd p{inner_.fd(), POLLOUT, 0};
    (void)::poll(&p, 1, step);
  }
}

// FaultListener --------------------------------------------------------------

FaultConn FaultListener::accept() {
  Conn c = inner_.accept();
  if (plan_ && plan_->enabled())
    return FaultConn(std::move(c), plan_->next_schedule());
  return FaultConn(std::move(c));
}

}  // namespace hidisc::serve
