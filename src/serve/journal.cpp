#include "serve/journal.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "diag/quarantine.hpp"
#include "lab/serialize.hpp"

namespace fs = std::filesystem;

namespace hidisc::serve {

namespace {

constexpr const char* kTag = "HSJL1";

std::string checksum_hex(const std::string& payload) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(lab::fnv1a64(payload)));
  return buf;
}

// "HSJL1 <16 hex> <payload>" -> payload; empty optional on any damage.
std::optional<std::string> check_line(const std::string& line) {
  const std::string prefix = std::string(kTag) + " ";
  if (line.rfind(prefix, 0) != 0) return std::nullopt;
  if (line.size() < prefix.size() + 17) return std::nullopt;
  const std::string sum = line.substr(prefix.size(), 16);
  if (line[prefix.size() + 16] != ' ') return std::nullopt;
  const std::string payload = line.substr(prefix.size() + 17);
  if (checksum_hex(payload) != sum) return std::nullopt;
  return payload;
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

}  // namespace

JobJournal::JobJournal(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  std::error_code ec;
  const fs::path parent = fs::path(path_).parent_path();
  if (!parent.empty()) fs::create_directories(parent, ec);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) return;
  if (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
    // Another live daemon owns this journal: disable ours, never fatal.
    ::close(fd_);
    fd_ = -1;
  }
}

JobJournal::~JobJournal() {
  if (fd_ >= 0) ::close(fd_);  // the flock dies with the fd
}

JobJournal::JobJournal(JobJournal&& o) noexcept
    : fd_(o.fd_), path_(std::move(o.path_)) {
  o.fd_ = -1;
}

JobJournal& JobJournal::operator=(JobJournal&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = o.fd_;
    path_ = std::move(o.path_);
    o.fd_ = -1;
  }
  return *this;
}

void JobJournal::append_line(const std::string& payload) {
  if (fd_ < 0) return;
  const std::string line =
      std::string(kTag) + " " + checksum_hex(payload) + " " + payload + "\n";
  // O_APPEND makes the write atomic w.r.t. our own earlier appends; a
  // torn final write (SIGKILL mid-call) is exactly what replay()'s
  // tail quarantine absorbs.
  const ssize_t ignored = ::write(fd_, line.data(), line.size());
  (void)ignored;
}

void JobJournal::record_plan(const std::string& token, const PlanRequest& req,
                             std::size_t cells) {
  append_line("plan " + token + " " + std::to_string(cells) + " " + req.plan +
              " " + req.scale + " " + std::to_string(req.watchdog) + " " +
              (req.lockstep ? "1" : "0") + " " + (req.refresh ? "1" : "0"));
}

void JobJournal::record_cell(const std::string& token, std::size_t cell) {
  append_line("cell " + token + " " + std::to_string(cell));
}

void JobJournal::record_done(const std::string& token) {
  append_line("done " + token);
}

void JobJournal::truncate_all() {
  if (fd_ < 0) return;
  if (::ftruncate(fd_, 0) != 0) { /* keep appending; replay dedups */ }
}

JournalReplay JobJournal::replay(const std::string& path) {
  JournalReplay out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;

  std::vector<JournalPlan> plans;
  const auto find_plan = [&](const std::string& token) -> JournalPlan* {
    for (auto& p : plans)
      if (p.token == token) return &p;
    return nullptr;
  };

  const std::string all((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  in.close();

  std::uint64_t good_end = 0;  // byte offset past the last good record
  bool damaged = false;
  std::size_t pos = 0;
  while (pos < all.size()) {
    const std::size_t nl = all.find('\n', pos);
    if (nl == std::string::npos) {
      damaged = true;  // torn mid-append: no terminating newline
      break;
    }
    const std::string line = all.substr(pos, nl - pos);
    pos = nl + 1;
    const auto payload = check_line(line);
    if (!payload) {
      damaged = true;
      break;
    }
    const std::vector<std::string> tok = split_ws(*payload);
    bool ok = false;
    if (tok.size() == 8 && tok[0] == "plan") {
      JournalPlan p;
      p.token = tok[1];
      p.cells = std::strtoull(tok[2].c_str(), nullptr, 10);
      p.req.plan = tok[3];
      p.req.scale = tok[4];
      p.req.watchdog = std::strtoull(tok[5].c_str(), nullptr, 10);
      p.req.lockstep = tok[6] == "1";
      p.req.refresh = tok[7] == "1";
      p.done.assign(p.cells, false);
      // A re-recorded token (the previous daemon recovered it too)
      // replaces the earlier entry: the newest record is authoritative.
      if (JournalPlan* prev = find_plan(p.token)) *prev = std::move(p);
      else plans.push_back(std::move(p));
      ok = true;
    } else if (tok.size() == 3 && tok[0] == "cell") {
      if (JournalPlan* p = find_plan(tok[1])) {
        const std::size_t idx = std::strtoull(tok[2].c_str(), nullptr, 10);
        if (idx < p->done.size()) p->done[idx] = true;
        ok = true;
      }
    } else if (tok.size() == 2 && tok[0] == "done") {
      if (JournalPlan* p = find_plan(tok[1])) {
        p->complete = true;
        ok = true;
      }
    }
    // A record naming an unknown token (its plan line was quarantined
    // earlier, or version drift) is damage too: stop at the last line we
    // can fully interpret.
    if (!ok) {
      damaged = true;
      break;
    }
    ++out.records;
    good_end = pos;
  }

  if (damaged) {
    // Move the unparseable tail aside for forensics and truncate the
    // journal back to the last good record, so future appends never
    // interleave with garbage.
    const std::string tail = all.substr(good_end);
    out.bad_bytes = tail.size();
    if (!tail.empty()) {
      out.quarantine = diag::quarantine_path_for(path);
      std::ofstream q(out.quarantine, std::ios::binary | std::ios::trunc);
      q << tail;
    }
    ::truncate(path.c_str(), static_cast<off_t>(good_end));
  }

  out.plans = std::move(plans);
  return out;
}

}  // namespace hidisc::serve
