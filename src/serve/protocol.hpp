// The hiserve wire protocol: small, length-prefixed, versioned frames.
//
// Every message — client <-> daemon and daemon <-> worker alike — is one
// frame:
//
//   offset  size  field
//        0     4  magic    0x48535256 ("HSRV", little-endian on the wire)
//        4     2  version  kProtocolVersion (bump on incompatible change)
//        6     2  type     MsgType
//        8     4  payload length (bytes; <= kMaxPayload)
//       12     8  checksum FNV-1a-64 of the payload bytes
//       20     n  payload
//
// All integers are little-endian.  The checksum matches the result
// cache's integrity story (PR-4): a torn or bit-flipped frame is detected
// at the framing layer, before any payload parsing runs.  FrameDecoder is
// incremental — feed it arbitrary byte chunks, take whole frames out —
// and throws ProtocolError on any malformed header or checksum mismatch
// (the connection is then unrecoverable by design: framing corruption
// means the stream offset itself is untrustworthy).
//
// Payloads are newline-separated `name SP value` pairs (kv_encode /
// kv_parse) with \n and \\ escaped in values, so multi-line values —
// error messages, verbatim DeadlockReport JSON — survive the trip.  The
// machine::Result payload encoding reuses lab/serialize.hpp's field
// visitor under an `r.` prefix: a field added to Result is wire-complete
// by the same one-line change that makes it cache- and export-complete.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>

#include "lab/runner.hpp"

namespace hidisc::serve {

inline constexpr std::uint32_t kMagic = 0x48535256;  // "HSRV"
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 20;
inline constexpr std::size_t kMaxPayload = 16u << 20;  // 16 MiB

// Frame types.  Client -> daemon: Hello, SubmitPlan, GetStats.
// Daemon -> client: HelloOk, PlanAccepted, CellDone, PlanDone, Stats,
// Error.  Daemon -> worker: Job, Shutdown.  Worker -> daemon: JobDone.
enum class MsgType : std::uint16_t {
  Hello = 1,
  HelloOk = 2,
  SubmitPlan = 3,
  PlanAccepted = 4,
  CellDone = 5,
  PlanDone = 6,
  GetStats = 7,
  Stats = 8,
  Error = 9,
  Job = 10,
  JobDone = 11,
  Shutdown = 12,
  // PR-9 additions (additive; version stays 1 — old peers answer an
  // unknown type with Error, which both sides already tolerate):
  Ping = 13,        // either direction: liveness probe / heartbeat
  Pong = 14,        // answer to Ping
  ResumePlan = 15,  // client -> daemon: re-attach by plan token
  ResumeOk = 16,    // daemon -> client: attach accepted, progress snapshot
};

[[nodiscard]] const char* msg_type_name(MsgType t) noexcept;

// Framing-layer corruption: bad magic, unsupported version, oversize
// length, checksum mismatch.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Frame {
  MsgType type = MsgType::Error;
  std::string payload;

  bool operator==(const Frame&) const = default;
};

// One frame -> wire bytes (header + payload).
[[nodiscard]] std::string encode_frame(const Frame& f);

// Incremental decoder: feed() arbitrary chunks, next() yields complete
// frames (nullopt = need more bytes).  Throws ProtocolError on malformed
// input; the decoder is then poisoned and every later call rethrows.
class FrameDecoder {
 public:
  void feed(const void* data, std::size_t n);
  void feed(const std::string& s) { feed(s.data(), s.size()); }
  [[nodiscard]] std::optional<Frame> next();

  // Bytes buffered but not yet consumed as frames.
  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size(); }

 private:
  std::string buf_;
  std::string poison_;  // non-empty after a framing error
};

// Payload key-value helpers -------------------------------------------------

using KvMap = std::map<std::string, std::string>;

// `\` -> `\\`, newline -> `\n`; inverse of kv_unescape.
[[nodiscard]] std::string kv_escape(const std::string& v);
[[nodiscard]] std::string kv_unescape(const std::string& v);

// Serializes the map as sorted `name SP escaped-value LF` lines.
[[nodiscard]] std::string kv_encode(const KvMap& kv);
// Parses; lines without a space or with empty names are a ProtocolError.
[[nodiscard]] KvMap kv_parse(const std::string& payload);

[[nodiscard]] std::string kv_get(const KvMap& kv, const std::string& key,
                                 const std::string& fallback = "");
[[nodiscard]] std::uint64_t kv_get_u64(const KvMap& kv,
                                       const std::string& key,
                                       std::uint64_t fallback = 0);
[[nodiscard]] double kv_get_double(const KvMap& kv, const std::string& key,
                                   double fallback = 0.0);

// Message payloads ----------------------------------------------------------

// SubmitPlan (client -> daemon) and Job (daemon -> worker) share the plan
// reference encoding: plans are named registry entries, so the wire
// carries (name, scale, overrides) and both ends rebuild the identical
// plan via lab::make_plan — deterministic by construction, no program
// bytes on the wire.
struct PlanRequest {
  std::string plan;  // lab::plan_names() entry
  std::string scale = "paper";          // "paper" | "test"
  std::uint64_t watchdog = 0;           // 0 = keep per-cell thresholds
  bool lockstep = false;
  bool refresh = false;  // bypass caches, overwrite entries

  [[nodiscard]] KvMap to_kv() const;
  [[nodiscard]] static PlanRequest from_kv(const KvMap& kv);
};

// A job is one plan cell; `logical key` identity (dedup across clients)
// lives in the daemon, the wire only names the cell.
struct JobSpec {
  std::uint64_t job_id = 0;
  PlanRequest plan;
  std::uint64_t cell = 0;  // index into the rebuilt plan's cells

  [[nodiscard]] KvMap to_kv() const;
  [[nodiscard]] static JobSpec from_kv(const KvMap& kv);
};

// lab::CellResult <-> kv, used by both JobDone (worker -> daemon) and
// CellDone (daemon -> client).  `extra` lets the caller add routing
// fields (job id / cell index / dedup flag) into the same map.
[[nodiscard]] KvMap cell_result_to_kv(const lab::CellResult& r);
// Throws ProtocolError when an ok cell's Result fields are incomplete
// (the same required-field rule the result cache enforces on disk).
[[nodiscard]] lab::CellResult cell_result_from_kv(const KvMap& kv);

}  // namespace hidisc::serve
