// The hiserve daemon: a long-lived sharded experiment service.
//
// One single-threaded poll loop owns all control state; the heavy work
// (compile / trace / simulate) happens in forked worker processes, one
// hiserve-protocol socketpair each.  The data model is deliberately
// pub-sub and content-centric (the CycloneDDS borrow): a *job* is the
// unit of computation, identified by its logical cell key — workload
// identity + compile options + preset + machine config — and clients
// *subscribe* to jobs rather than own them.  Two clients submitting
// overlapping plans share one simulation; a late-joining client whose
// cell already completed is served from the in-memory completed map (or
// the shared on-disk ResultCache via its worker probe) without any
// re-simulation.
//
// Job lifecycle:
//
//     Queued ──assign──> Running ──JobDone──> Done (memoized, fanned out)
//       ^                   │
//       │   crash/timeout   │ attempts <= max_retries: backoff
//       └───────────────────┤
//                           │ attempts  > max_retries
//                           v
//                         Failed (error slots fanned out to subscribers)
//
// Worker crash/timeout detection: a worker death is an EOF on its
// socketpair (plus waitpid forensics via diag::describe_wait_status); a
// job past its deadline gets its worker SIGKILLed, which funnels into
// the same path.  Retried jobs wait base_backoff * 2^(attempt-1) before
// re-dispatch.  Cell-level failures (prep/trace/sim/deadlock) are NOT
// retried — they are deterministic results, travel back in the error
// slots (DeadlockReport JSON verbatim), and fan out to every subscriber
// exactly like healthy results.
//
// SIGTERM/SIGINT drain: stop accepting connections and plans, let
// in-flight jobs and plans finish, shut workers down, write the stats
// file, exit 0.
#pragma once

#include <cstdint>
#include <string>

namespace hidisc::serve {

struct ServeOptions {
  std::string endpoint;        // unix path or tcp:HOST:PORT
  int workers = 2;             // forked worker processes (>= 1)
  std::string cache_dir = ".hilab-cache";  // "" disables the shared cache
  int max_retries = 2;         // re-dispatches after worker crash/timeout
  int backoff_ms = 200;        // base for exponential retry backoff
  double job_timeout_s = 600;  // per-job wall-clock budget; 0 disables
  std::string stats_file;      // stats JSON written on exit ("" = none)
  bool quiet = false;          // suppress stderr event log
  // Chaos hook for tests/CI: SIGKILL the assigned worker immediately
  // after the Nth job assignment (1-based; 0 = off).  Exercises the
  // crash/retry path deterministically.
  std::uint64_t chaos_kill_at_assign = 0;
};

// Runs the daemon until drained; returns the process exit code.
// Throws TransportError when the endpoint cannot be bound.
int serve_main(const ServeOptions& opt);

}  // namespace hidisc::serve
