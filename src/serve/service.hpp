// The hiserve daemon: a long-lived sharded experiment service.
//
// One single-threaded poll loop owns all control state; the heavy work
// (compile / trace / simulate) happens in forked worker processes, one
// hiserve-protocol socketpair each.  The data model is deliberately
// pub-sub and content-centric (the CycloneDDS borrow): a *job* is the
// unit of computation, identified by its logical cell key — workload
// identity + compile options + preset + machine config — and clients
// *subscribe* to jobs rather than own them.  Two clients submitting
// overlapping plans share one simulation; a late-joining client whose
// cell already completed is served from the in-memory completed map (or
// the shared on-disk ResultCache via its worker probe) without any
// re-simulation.
//
// Job lifecycle:
//
//     Queued ──assign──> Running ──JobDone──> Done (memoized, fanned out)
//       ^                   │
//       │   crash/timeout   │ attempts <= max_retries: backoff
//       └───────────────────┤
//                           │ attempts  > max_retries
//                           v
//                         Failed (error slots fanned out to subscribers)
//
// Worker crash/timeout detection: a worker death is an EOF on its
// socketpair (plus waitpid forensics via diag::describe_wait_status); a
// job past its deadline gets its worker SIGKILLed, which funnels into
// the same path.  Retried jobs wait base_backoff * 2^(attempt-1) before
// re-dispatch.  Cell-level failures (prep/trace/sim/deadlock) are NOT
// retried — they are deterministic results, travel back in the error
// slots (DeadlockReport JSON verbatim), and fan out to every subscriber
// exactly like healthy results.
//
// SIGTERM/SIGINT drain: stop accepting connections and plans, let
// in-flight jobs and plans finish, shut workers down, write the stats
// file, exit 0.
//
// Crash recovery (PR-9): every plan submission, per-cell completion,
// and plan completion is appended to a checksummed job journal beside
// the cache directory.  On startup the journal is replayed: plans with
// no `done` record are re-materialized by registry name and re-enqueued
// under their original token — journal-done cells come back as disk
// cache hits, so a SIGKILLed daemon's successor finishes only the
// missing work and a reconnecting client re-attaches with ResumePlan.
// Clients are heartbeated (Ping/Pong), idle ones reaped, and slow ones
// bounded by a per-client outbound byte queue; a client death detaches
// its plans (jobs keep running, results keep journaling) instead of
// cancelling them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace hidisc::serve {

struct ServeOptions {
  std::string endpoint;        // unix path or tcp:HOST:PORT
  int workers = 2;             // forked worker processes (>= 1)
  std::string cache_dir = ".hilab-cache";  // "" disables the shared cache
  int max_retries = 2;         // re-dispatches after worker crash/timeout
  int backoff_ms = 200;        // base for exponential retry backoff
  double job_timeout_s = 600;  // per-job wall-clock budget; 0 disables
  std::string stats_file;      // stats JSON written on exit ("" = none)
  bool quiet = false;          // suppress stderr event log
  // Chaos hook for tests/CI: SIGKILL the assigned worker immediately
  // after the Nth job assignment (1-based; 0 = off).  Exercises the
  // crash/retry path deterministically.
  std::uint64_t chaos_kill_at_assign = 0;
  // Deterministic network fault injection on accepted client
  // connections: "SEED:SPEC" (see serve/chaos.hpp); "" consults the
  // HIDISC_CHAOS_NET environment variable, unset = off.
  std::string chaos_net;
  // Crash-recovery job journal.  Lives at `journal_file` when set, else
  // "<cache_dir>/journal.hsjl"; disabled when journal=false or neither
  // path source is available.
  bool journal = true;
  std::string journal_file;
  // Reap clients silent for this long (no frames, no Pings); 0 disables.
  int client_idle_timeout_s = 120;
  // Per-client outbound queue bound; a peer that won't drain past this
  // is dropped as slow (its plans detach, work continues).
  std::size_t client_queue_max = 8u << 20;
};

// Runs the daemon until drained; returns the process exit code.
// Throws TransportError when the endpoint cannot be bound.
int serve_main(const ServeOptions& opt);

}  // namespace hidisc::serve
