// Stream transport for the hiserve protocol: Unix-domain sockets (the
// default) and TCP behind one abstraction, so the daemon/client/worker
// code never touches address families.
//
// Endpoint syntax:
//   /path/to.sock      Unix-domain stream socket (anything with a '/')
//   tcp:HOST:PORT      TCP (IPv4); HOST may be a name or dotted quad
//
// Conn wraps a connected fd: framed sends (send_frame appends to the
// socket atomically from the caller's perspective — short writes and
// EAGAIN are retried inside), framed blocking receives via an internal
// FrameDecoder, and non-blocking reads for poll loops (read_into_decoder).
// Listener wraps a listening fd.  Both close on destruction; both expose
// the raw fd for poll().
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>

#include "serve/protocol.hpp"

namespace hidisc::serve {

// I/O failure distinct from protocol corruption: peer gone, connect
// refused, bind failure.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Conn {
 public:
  Conn() = default;
  explicit Conn(int fd) : fd_(fd) {}
  ~Conn();
  Conn(Conn&& o) noexcept;
  Conn& operator=(Conn&& o) noexcept;
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  void close();

  // Whole-frame send; throws TransportError when the peer is gone.
  void send_frame(const Frame& f);

  // Raw byte sends, for the chaos wrapper and the daemon's write queue:
  // send_raw blocks like send_frame (EAGAIN handled via poll); try_send
  // makes exactly one non-blocking attempt and returns the bytes written
  // (0 = would block) or -1 when the peer is gone.
  void send_raw(const char* data, std::size_t n);
  [[nodiscard]] long try_send(const char* data, std::size_t n);

  // Blocking receive of the next frame; nullopt = orderly EOF with no
  // partial frame buffered (a partial frame at EOF is a TransportError).
  [[nodiscard]] std::optional<Frame> recv_frame();

  // recv_frame with a deadline: nullopt with *timed_out=true when no
  // complete frame arrived within timeout_ms (the partial bytes stay
  // buffered); otherwise identical to recv_frame.
  [[nodiscard]] std::optional<Frame> recv_frame_for(int timeout_ms,
                                                    bool* timed_out);

  // Non-blocking drain of readable bytes into the decoder (for poll
  // loops).  Returns false when the peer has hung up (EOF or reset);
  // completed frames are then still retrievable via next_frame().
  [[nodiscard]] bool read_into_decoder();
  // Next buffered frame, if a complete one has been fed.
  [[nodiscard]] std::optional<Frame> next_frame() { return dec_.next(); }

  // O_NONBLOCK toggle; the daemon keeps conns non-blocking for reads
  // (send_frame handles EAGAIN internally either way).
  void set_nonblocking(bool nb);

 private:
  int fd_ = -1;
  FrameDecoder dec_;
};

class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& o) noexcept;
  Listener& operator=(Listener&& o) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Binds + listens on `endpoint`; throws TransportError on failure.  A
  // stale Unix socket file with no live listener is silently replaced; a
  // live one is "address in use".
  static Listener listen(const std::string& endpoint);

  // Accepts one pending connection (call after poll() says readable).
  [[nodiscard]] Conn accept();

  [[nodiscard]] int fd() const noexcept { return fd_; }
  void close();  // also unlinks the Unix socket path, when one was bound
  // For forked children that inherited the listener: close the fd WITHOUT
  // unlinking the socket path, which still belongs to the parent.
  void abandon() noexcept;

 private:
  int fd_ = -1;
  std::string unlink_path_;  // bound Unix socket file, removed on close
};

// Connects to `endpoint`; throws TransportError on failure.
[[nodiscard]] Conn connect_to(const std::string& endpoint);

// A connected AF_UNIX stream socketpair for daemon <-> forked worker.
struct SocketPair {
  Conn parent;  // daemon end
  Conn child;   // worker end
};
[[nodiscard]] SocketPair make_socketpair();

}  // namespace hidisc::serve
