#include "serve/service.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "diag/process.hpp"
#include "lab/fingerprint.hpp"
#include "lab/serialize.hpp"
#include "serve/chaos.hpp"
#include "serve/journal.hpp"
#include "serve/transport.hpp"
#include "serve/worker.hpp"

namespace hidisc::serve {

namespace {

using Clock = std::chrono::steady_clock;

// Self-pipe: signal handlers write the signal number, the poll loop
// reads it.  Async-signal-safe by construction.
int g_signal_wr = -1;

void on_signal(int sig) {
  const unsigned char b = static_cast<unsigned char>(sig);
  if (g_signal_wr >= 0) {
    const ssize_t ignored = ::write(g_signal_wr, &b, 1);
    (void)ignored;
  }
}

// One cell-shaped unit of computation, identified by its logical key and
// subscribed to by (plan, cell) pairs.  Plans — not clients — subscribe:
// a client death detaches its plans but the subscriptions (and the
// journal records they feed) survive.
struct Subscriber {
  std::uint64_t plan = 0;
  std::size_t cell = 0;
};

enum class JobState : std::uint8_t { Queued, Running };

struct Job {
  std::uint64_t id = 0;
  std::string base_key;    // logical cell key (memoization identity)
  std::string unique_key;  // base_key, or refresh-disambiguated variant
  JobSpec spec;            // what a worker needs to run it
  JobState state = JobState::Queued;
  int attempts = 0;             // crash/timeout re-dispatches so far
  std::int64_t not_before = 0;  // backoff gate, ms on the service clock
  std::int64_t deadline = 0;    // running-job timeout, 0 = none
  int worker = -1;
  std::vector<Subscriber> subs;
};

// Service-level plan state: owned by the daemon, not the client, so it
// survives a disconnect (client == -1) and can be re-attached by token.
struct PlanState {
  std::uint64_t id = 0;
  std::string token;  // resume handle, journaled with the plan
  PlanRequest req;
  int client = -1;  // attached client id; -1 = detached
  std::size_t cells = 0;
  std::size_t remaining = 0;
  std::size_t simulated = 0;
  std::size_t cached = 0;
  std::size_t deduped = 0;
  std::size_t failed = 0;
  std::int64_t start_ms = 0;
  bool recovered = false;  // re-materialized from the journal
  std::vector<bool> done;
  // Exact CellDone payload per completed cell, kept for idempotent
  // redelivery after a ResumePlan (the daemon cannot know which
  // deliveries the old connection actually carried).
  std::vector<std::string> payloads;
};

struct ClientState {
  int id = -1;
  FaultConn conn;
  bool dead = false;
  std::int64_t last_ms = 0;  // last inbound activity (frames or Pings)
  std::set<std::uint64_t> plans;  // attached plan ids
};

struct WorkerProc {
  pid_t pid = -1;
  Conn conn;
  bool busy = false;
  std::uint64_t job = 0;
  std::uint64_t jobs_done = 0;
};

struct Counters {
  std::uint64_t clients_total = 0;
  std::uint64_t plans_submitted = 0;
  std::uint64_t plans_completed = 0;
  std::uint64_t cells_total = 0;
  std::uint64_t jobs_done = 0;
  std::uint64_t jobs_failed = 0;  // infrastructure failure after retries
  std::uint64_t cells_failed = 0; // deterministic cell errors (prep/sim/..)
  std::uint64_t retries = 0;
  std::uint64_t dedup_hits = 0;   // subscriptions attached to a live job
  std::uint64_t mem_hits = 0;     // served from the completed-job memo
  std::uint64_t disk_cache_hits = 0;
  std::uint64_t cross_client_shared_jobs = 0;
  std::uint64_t worker_restarts = 0;
  std::uint64_t worker_timeouts = 0;
  // Pipeline node work aggregated over worker job completions (each job
  // is a single-cell pipeline run; dedup/memo deliveries add nothing).
  std::uint64_t compile_nodes_rebuilt = 0;
  std::uint64_t trace_nodes_hit = 0;
  std::uint64_t trace_nodes_rebuilt = 0;
  // Per-cell simulation latency (simulated cells only).
  std::uint64_t lat_count = 0;
  double lat_total_ms = 0, lat_min_ms = 0, lat_max_ms = 0;
  // Crash recovery + reconnect-resume (PR-9).
  std::uint64_t journal_records_replayed = 0;
  std::uint64_t journal_bad_bytes = 0;
  std::uint64_t journal_plans_recovered = 0;
  std::uint64_t journal_cells_recovered = 0;  // done records honored
  std::uint64_t resumes = 0;
  std::uint64_t resume_unknown_token = 0;
  std::uint64_t clients_dropped_idle = 0;
  std::uint64_t clients_dropped_slow = 0;
};

std::string logical_key(const lab::Cell& c) {
  return c.workload.id() + "|" + lab::describe(c.compile) + "|" +
         machine::preset_name(c.preset) + "|" + lab::describe(c.config);
}

class Service {
 public:
  explicit Service(const ServeOptions& opt) : opt_(opt) {}
  int run();

 private:
  void log(const char* fmt, ...) {
    if (opt_.quiet) return;
    va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "hiserved: ");
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
    va_end(ap);
  }

  [[nodiscard]] std::int64_t now_ms() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  [[nodiscard]] std::string journal_path() const;
  [[nodiscard]] std::string make_token(std::uint64_t plan_id) const;
  void recover_from_journal();
  void spawn_worker(std::size_t slot);
  void worker_died(std::size_t slot);
  void requeue_or_fail(std::uint64_t job_id, const std::string& why);
  void handle_worker_frame(std::size_t slot, const Frame& f);
  void handle_client_frame(ClientState& c, const Frame& f);
  void submit_plan(ClientState& c, const PlanRequest& req);
  void resume_plan(ClientState& c, const KvMap& kv);
  void enqueue_cells(std::uint64_t plan_id, const lab::ExperimentPlan& plan,
                     const std::vector<bool>* recovered_done);
  void complete_job(Job& job, const lab::CellResult& res);
  void deliver_cell(std::uint64_t plan_id, std::size_t cell,
                    const lab::CellResult& res, bool cached, bool dedup);
  bool queue_to_client(ClientState& c, const Frame& f);
  void reap_idle_clients();
  void drop_dead_clients();
  void schedule();
  void check_timeouts();
  [[nodiscard]] std::int64_t next_wakeup() const;
  [[nodiscard]] std::string stats_json() const;
  void write_stats_file();

  ServeOptions opt_;
  Clock::time_point start_ = Clock::now();
  FaultListener listener_;
  FaultPlan fault_plan_;
  JobJournal journal_;
  int sig_rd_ = -1, sig_wr_ = -1;
  bool draining_ = false;

  std::vector<WorkerProc> workers_;
  std::map<int, ClientState> clients_;
  std::map<std::uint64_t, PlanState> plans_;
  std::map<std::string, std::uint64_t> plans_by_token_;
  std::map<std::uint64_t, Job> jobs_;
  std::map<std::string, std::uint64_t> jobs_by_key_;  // unique_key -> id
  // Completed-cell memo, keyed by logical cell key: the in-process layer
  // of the pub-sub result store (the on-disk ResultCache is the
  // cross-process layer).  Late joiners are served from here without
  // touching a worker.
  std::map<std::string, lab::CellResult> completed_;

  int next_client_id_ = 1;
  std::uint64_t next_job_id_ = 1;
  std::uint64_t next_plan_id_ = 1;
  std::uint64_t assigns_ = 0;
  std::uint64_t token_salt_ = 0;
  Counters n_;
};

std::string Service::journal_path() const {
  if (!opt_.journal) return "";
  if (!opt_.journal_file.empty()) return opt_.journal_file;
  if (!opt_.cache_dir.empty()) return opt_.cache_dir + "/journal.hsjl";
  return "";
}

std::string Service::make_token(std::uint64_t plan_id) const {
  // pid + boot-time salt keeps tokens from colliding across daemon
  // restarts (a stale token must dereference to "unknown", never to a
  // different plan); plan_id keeps them unique within one daemon.
  char buf[48];
  std::snprintf(buf, sizeof buf, "%016llx-%llu",
                static_cast<unsigned long long>(
                    token_salt_ ^ (plan_id * 0x9E3779B97F4A7C15ull)),
                static_cast<unsigned long long>(plan_id));
  return buf;
}

void Service::recover_from_journal() {
  const std::string path = journal_path();
  if (path.empty()) return;
  JournalReplay rep = JobJournal::replay(path);
  journal_ = JobJournal(path);
  if (!journal_.active() && !rep.plans.empty())
    log("journal %s is locked by another daemon; recovery skipped",
        path.c_str());
  if (!journal_.active()) return;
  n_.journal_records_replayed = rep.records;
  n_.journal_bad_bytes = rep.bad_bytes;
  if (!rep.quarantine.empty())
    log("journal: quarantined %llu damaged tail bytes to %s",
        static_cast<unsigned long long>(rep.bad_bytes),
        rep.quarantine.c_str());
  // The replayed log is consumed: live plans (including the recovered
  // ones) are re-recorded below, so the journal never grows across
  // restarts.
  journal_.truncate_all();
  for (JournalPlan& jp : rep.plans) {
    if (jp.complete) continue;
    lab::ExperimentPlan plan;
    try {
      plan = materialize_plan(jp.req);
    } catch (const std::exception& e) {
      log("journal: cannot recover plan %s (%s): %s", jp.token.c_str(),
          jp.req.plan.c_str(), e.what());
      continue;
    }
    if (plan.cells.size() != jp.cells) {
      log("journal: plan %s (%s) is %zu cells now, was %zu; dropped",
          jp.token.c_str(), jp.req.plan.c_str(), plan.cells.size(), jp.cells);
      continue;
    }
    const std::uint64_t plan_id = next_plan_id_++;
    PlanState ps;
    ps.id = plan_id;
    ps.token = jp.token;
    ps.req = jp.req;
    ps.client = -1;  // detached until a ResumePlan claims the token
    ps.cells = plan.cells.size();
    ps.remaining = plan.cells.size();
    ps.start_ms = now_ms();
    ps.recovered = true;
    ps.done.assign(ps.cells, false);
    ps.payloads.assign(ps.cells, std::string());
    plans_by_token_[ps.token] = plan_id;
    plans_.emplace(plan_id, std::move(ps));
    ++n_.plans_submitted;
    ++n_.journal_plans_recovered;
    n_.journal_cells_recovered += jp.done_count();
    n_.cells_total += plan.cells.size();
    journal_.record_plan(jp.token, jp.req, plan.cells.size());
    log("journal: recovered plan %s (%s/%s): %zu cells, %zu already done",
        jp.token.c_str(), jp.req.plan.c_str(), jp.req.scale.c_str(),
        plan.cells.size(), jp.done_count());
    // Every cell is re-enqueued; journal-done cells run as non-refresh
    // jobs even in a refresh plan, so they come straight back from the
    // shared ResultCache (zero re-simulation) instead of re-running.
    enqueue_cells(plan_id, plan, &jp.done);
  }
}

void Service::spawn_worker(std::size_t slot) {
  SocketPair sp = make_socketpair();
  const pid_t pid = ::fork();
  if (pid < 0) throw TransportError("hiserved: fork failed");
  if (pid == 0) {
    // Worker child: drop every daemon fd except our socketpair end, then
    // serve jobs until EOF.  PDEATHSIG guarantees no orphan workers
    // outlive a SIGKILLed daemon.
    sp.parent.close();
    listener_.abandon();  // close() would unlink the parent's socket file
    if (sig_rd_ >= 0) ::close(sig_rd_);
    if (sig_wr_ >= 0) ::close(sig_wr_);
    for (auto& [id, c] : clients_) c.conn.close();
    for (auto& w : workers_) w.conn.close();
    ::signal(SIGTERM, SIG_DFL);
    ::signal(SIGINT, SIG_DFL);
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    ::_exit(worker_main(std::move(sp.child), opt_.cache_dir));
  }
  sp.child.close();
  WorkerProc& w = workers_[slot];
  w.pid = pid;
  w.conn = std::move(sp.parent);
  w.conn.set_nonblocking(true);
  w.busy = false;
  w.job = 0;
  log("worker %d started (slot %zu)", static_cast<int>(pid), slot);
}

void Service::worker_died(std::size_t slot) {
  WorkerProc& w = workers_[slot];
  if (w.pid < 0) return;
  int status = 0;
  ::waitpid(w.pid, &status, 0);
  const std::string why = diag::describe_wait_status(status);
  log("worker %d died: %s%s", static_cast<int>(w.pid), why.c_str(),
      w.busy ? " (job in flight)" : "");
  const std::uint64_t orphan = w.busy ? w.job : 0;
  w.conn.close();
  w.pid = -1;
  w.busy = false;
  w.job = 0;
  if (orphan != 0) requeue_or_fail(orphan, why);
  if (!draining_) {
    spawn_worker(slot);
    ++n_.worker_restarts;
  }
  schedule();
}

void Service::requeue_or_fail(std::uint64_t job_id, const std::string& why) {
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  Job& job = it->second;
  ++job.attempts;
  job.worker = -1;
  job.deadline = 0;
  if (job.attempts <= opt_.max_retries) {
    job.state = JobState::Queued;
    job.not_before = now_ms() + (static_cast<std::int64_t>(opt_.backoff_ms)
                                 << (job.attempts - 1));
    ++n_.retries;
    log("job %llu retry %d/%d after worker %s (backoff %lld ms)",
        static_cast<unsigned long long>(job.id), job.attempts,
        opt_.max_retries, why.c_str(),
        static_cast<long long>(job.not_before - now_ms()));
    return;
  }
  lab::CellResult res;
  res.error = "worker died (" + why + ") " + std::to_string(job.attempts) +
              " times; job abandoned";
  res.error_class = "worker";
  ++n_.jobs_failed;
  log("job %llu failed permanently after %d attempts",
      static_cast<unsigned long long>(job.id), job.attempts);
  complete_job(job, res);
}

void Service::complete_job(Job& job, const lab::CellResult& res) {
  // Memoize by logical key — including deterministic cell failures, so a
  // resubmitted deadlocking cell reports instantly instead of burning a
  // watchdog timeout per client.  Infrastructure failures ("worker") are
  // NOT memoized: a healthier service should retry them.
  if (res.error_class != "worker") completed_[job.base_key] = res;
  std::set<int> distinct;
  for (const auto& sub : job.subs) {
    const auto pit = plans_.find(sub.plan);
    if (pit != plans_.end() && pit->second.client >= 0)
      distinct.insert(pit->second.client);
  }
  if (distinct.size() > 1) ++n_.cross_client_shared_jobs;
  if (!res.ok() && res.error_class != "worker") ++n_.cells_failed;
  for (std::size_t i = 0; i < job.subs.size(); ++i)
    deliver_cell(job.subs[i].plan, job.subs[i].cell, res, res.from_cache,
                 i > 0);
  jobs_by_key_.erase(job.unique_key);
  jobs_.erase(job.id);
}

bool Service::queue_to_client(ClientState& c, const Frame& f) {
  if (c.dead || !c.conn.valid()) return false;
  c.conn.queue_frame(f);
  if (!c.conn.valid()) {  // injected drop closed the fd
    c.dead = true;
    return false;
  }
  if (c.conn.queued_bytes() > opt_.client_queue_max) {
    log("client %d dropped: outbound queue over %zu bytes (slow peer)", c.id,
        opt_.client_queue_max);
    ++n_.clients_dropped_slow;
    c.dead = true;
    return false;
  }
  if (!c.conn.flush_queue()) {
    c.dead = true;
    return false;
  }
  return true;
}

void Service::deliver_cell(std::uint64_t plan_id, std::size_t cell,
                           const lab::CellResult& res, bool cached,
                           bool dedup) {
  const auto pit = plans_.find(plan_id);
  if (pit == plans_.end()) return;
  PlanState& ps = pit->second;
  if (cell >= ps.cells || ps.done[cell]) return;  // idempotence guard

  KvMap kv = cell_result_to_kv(res);
  kv["cell"] = std::to_string(cell);
  kv["cached"] = (cached || res.from_cache) ? "1" : "0";
  kv["dedup"] = dedup ? "1" : "0";
  if (dedup) {
    // The node work behind this result was already reported to whichever
    // delivery ran it; zero the provenance so clients can sum freely.
    kv["n.compile"] = "0";
    kv["n.trace_hit"] = "0";
    kv["n.trace"] = "0";
  }
  ps.done[cell] = true;
  ps.payloads[cell] = kv_encode(kv);
  journal_.record_cell(ps.token, cell);

  if (!res.ok()) ++ps.failed;
  else if (cached || res.from_cache) ++ps.cached;
  else ++ps.simulated;
  if (dedup) ++ps.deduped;
  if (ps.remaining > 0) --ps.remaining;

  const auto cit = clients_.find(ps.client);
  ClientState* client =
      (cit != clients_.end() && !cit->second.dead) ? &cit->second : nullptr;
  if (client)
    queue_to_client(*client, Frame{MsgType::CellDone, ps.payloads[cell]});

  if (ps.remaining == 0) {
    KvMap done;
    done["cells"] = std::to_string(ps.cells);
    done["simulated"] = std::to_string(ps.simulated);
    done["cached"] = std::to_string(ps.cached);
    done["dedup"] = std::to_string(ps.deduped);
    done["failed"] = std::to_string(ps.failed);
    done["wall_ms"] = lab::format_double(
        static_cast<double>(now_ms() - ps.start_ms));
    if (client)
      queue_to_client(*client, Frame{MsgType::PlanDone, kv_encode(done)});
    journal_.record_done(ps.token);
    ++n_.plans_completed;
    log("plan %llu (%s) done: %zu cells, %zu simulated, %zu cached, %zu "
        "failed%s",
        static_cast<unsigned long long>(ps.id), ps.token.c_str(), ps.cells,
        ps.simulated, ps.cached, ps.failed,
        ps.client < 0 ? " (detached)" : "");
    if (client) client->plans.erase(plan_id);
    plans_by_token_.erase(ps.token);
    plans_.erase(pit);
  }
}

void Service::enqueue_cells(std::uint64_t plan_id,
                            const lab::ExperimentPlan& plan,
                            const std::vector<bool>* recovered_done) {
  for (std::size_t i = 0; i < plan.cells.size(); ++i) {
    // `ps` may have been erased by a completing memo-hit delivery below,
    // so look it up fresh each iteration.
    const auto pit = plans_.find(plan_id);
    if (pit == plans_.end()) return;
    const PlanRequest req = pit->second.req;
    // Journal-done cells of a recovered refresh plan already re-simulated
    // before the crash; fetching them from the cache IS the recovery.
    const bool refresh_this =
        req.refresh && !(recovered_done && (*recovered_done)[i]);
    const std::string base = logical_key(plan.cells[i]);
    // A refresh plan must re-simulate, so its jobs get plan-unique keys;
    // results still land in the shared memo/cache under the base key.
    const std::string unique =
        refresh_this ? base + "|refresh#" + std::to_string(plan_id) : base;
    if (!refresh_this) {
      const auto hit = completed_.find(base);
      if (hit != completed_.end()) {
        ++n_.mem_hits;
        deliver_cell(plan_id, i, hit->second, /*cached=*/true, /*dedup=*/true);
        continue;
      }
    }
    const auto jit = jobs_by_key_.find(unique);
    if (jit != jobs_by_key_.end()) {
      jobs_.at(jit->second).subs.push_back(Subscriber{plan_id, i});
      ++n_.dedup_hits;
      continue;
    }
    Job job;
    job.id = next_job_id_++;
    job.base_key = base;
    job.unique_key = unique;
    job.spec.job_id = job.id;
    job.spec.plan = req;
    job.spec.plan.refresh = refresh_this;
    job.spec.cell = i;
    job.subs.push_back(Subscriber{plan_id, i});
    jobs_by_key_[unique] = job.id;
    jobs_.emplace(job.id, std::move(job));
  }
}

void Service::submit_plan(ClientState& c, const PlanRequest& req) {
  if (draining_) {
    queue_to_client(c, Frame{MsgType::Error,
                             kv_encode({{"message",
                                         "service is draining; resubmit to "
                                         "the next daemon"}})});
    return;
  }
  lab::ExperimentPlan plan;
  try {
    plan = materialize_plan(req);
  } catch (const std::exception& e) {
    std::string msg = e.what();
    if (msg.find("plan") == std::string::npos)
      msg = "unknown plan '" + req.plan + "'";
    std::string names;
    for (const auto& name : lab::plan_names())
      names += (names.empty() ? "" : " ") + name;
    queue_to_client(
        c, Frame{MsgType::Error,
                 kv_encode({{"message", msg}, {"plans", names}})});
    return;
  }

  const std::uint64_t plan_id = next_plan_id_++;
  PlanState ps;
  ps.id = plan_id;
  ps.token = make_token(plan_id);
  ps.req = req;
  ps.client = c.id;
  ps.cells = plan.cells.size();
  ps.remaining = plan.cells.size();
  ps.start_ms = now_ms();
  ps.done.assign(ps.cells, false);
  ps.payloads.assign(ps.cells, std::string());
  const std::string token = ps.token;
  plans_by_token_[token] = plan_id;
  plans_.emplace(plan_id, std::move(ps));
  c.plans.insert(plan_id);
  ++n_.plans_submitted;
  n_.cells_total += plan.cells.size();
  journal_.record_plan(token, req, plan.cells.size());
  queue_to_client(
      c, Frame{MsgType::PlanAccepted,
               kv_encode({{"cells", std::to_string(plan.cells.size())},
                          {"plan_id", std::to_string(plan_id)},
                          {"token", token}})});
  log("client %d submitted plan %s/%s: %zu cells%s (token %s)", c.id,
      req.plan.c_str(), req.scale.c_str(), plan.cells.size(),
      req.refresh ? " (refresh)" : "", token.c_str());

  enqueue_cells(plan_id, plan, nullptr);
  schedule();
}

void Service::resume_plan(ClientState& c, const KvMap& kv) {
  const std::string token = kv_get(kv, "token", "");
  const auto tit = plans_by_token_.find(token);
  if (tit == plans_by_token_.end()) {
    // Completed while detached, lost to a journal gap, or simply stale:
    // the client should fall back to a fresh submit — warm cells come
    // back from the memo/cache, so the fallback is cheap.
    ++n_.resume_unknown_token;
    queue_to_client(
        c, Frame{MsgType::Error,
                 kv_encode({{"code", "resubmit"},
                            {"message", "unknown plan token '" + token +
                                            "'; resubmit the plan"}})});
    return;
  }
  const std::uint64_t plan_id = tit->second;
  PlanState& ps = plans_.at(plan_id);
  if (ps.client >= 0 && ps.client != c.id) {
    const auto old = clients_.find(ps.client);
    if (old != clients_.end()) old->second.plans.erase(plan_id);
  }
  ps.client = c.id;
  c.plans.insert(plan_id);
  ++n_.resumes;
  std::size_t done_cells = 0;
  for (const bool d : ps.done) done_cells += d ? 1 : 0;
  log("client %d resumed plan %llu (%s): %zu/%zu cells done", c.id,
      static_cast<unsigned long long>(plan_id), token.c_str(), done_cells,
      ps.cells);
  queue_to_client(
      c, Frame{MsgType::ResumeOk,
               kv_encode({{"cells", std::to_string(ps.cells)},
                          {"done", std::to_string(done_cells)},
                          {"plan_id", std::to_string(plan_id)},
                          {"token", token}})});
  // Redeliver every completed cell verbatim; the client's received-set
  // makes duplicates harmless, and cells the old connection never
  // carried arrive here for the first time.
  for (std::size_t i = 0; i < ps.cells; ++i) {
    if (!ps.done[i]) continue;
    if (!queue_to_client(c, Frame{MsgType::CellDone, ps.payloads[i]})) return;
  }
  schedule();
}

void Service::handle_client_frame(ClientState& c, const Frame& f) {
  switch (f.type) {
    case MsgType::Hello: {
      KvMap kv;
      kv["proto"] = std::to_string(kProtocolVersion);
      kv["pid"] = std::to_string(::getpid());
      kv["workers"] = std::to_string(workers_.size());
      queue_to_client(c, Frame{MsgType::HelloOk, kv_encode(kv)});
      return;
    }
    case MsgType::SubmitPlan:
      submit_plan(c, PlanRequest::from_kv(kv_parse(f.payload)));
      return;
    case MsgType::ResumePlan:
      resume_plan(c, kv_parse(f.payload));
      return;
    case MsgType::Ping:
      queue_to_client(c, Frame{MsgType::Pong, ""});
      return;
    case MsgType::Pong:
      return;  // heartbeat answer; last_ms already updated by the read
    case MsgType::GetStats:
      queue_to_client(c, Frame{MsgType::Stats, stats_json()});
      return;
    default:
      queue_to_client(
          c, Frame{MsgType::Error,
                   kv_encode({{"message",
                               std::string("unexpected frame ") +
                                   msg_type_name(f.type)}})});
      return;
  }
}

void Service::handle_worker_frame(std::size_t slot, const Frame& f) {
  WorkerProc& w = workers_[slot];
  if (f.type == MsgType::Pong) return;
  if (f.type != MsgType::JobDone) return;
  const KvMap kv = kv_parse(f.payload);
  const std::uint64_t job_id = kv_get_u64(kv, "job");
  w.busy = false;
  w.job = 0;
  ++w.jobs_done;
  const auto it = jobs_.find(job_id);
  // A stale completion (job already retried elsewhere or abandoned) is
  // dropped; the authoritative result is whichever completion owns the
  // job entry.
  if (it == jobs_.end() || it->second.worker != static_cast<int>(slot))
    return;
  lab::CellResult res = cell_result_from_kv(kv);
  ++n_.jobs_done;
  n_.compile_nodes_rebuilt += res.compile_nodes_rebuilt;
  n_.trace_nodes_hit += res.trace_nodes_hit;
  n_.trace_nodes_rebuilt += res.trace_nodes_rebuilt;
  if (res.from_cache) {
    ++n_.disk_cache_hits;
  } else if (res.ok()) {
    ++n_.lat_count;
    n_.lat_total_ms += res.wall_ms;
    if (n_.lat_count == 1 || res.wall_ms < n_.lat_min_ms)
      n_.lat_min_ms = res.wall_ms;
    if (res.wall_ms > n_.lat_max_ms) n_.lat_max_ms = res.wall_ms;
  }
  complete_job(it->second, res);
  schedule();
}

void Service::schedule() {
  const std::int64_t now = now_ms();
  for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
    WorkerProc& w = workers_[slot];
    if (w.pid < 0 || w.busy) continue;
    // FIFO by job id over ready queued jobs: deterministic and fair.
    Job* pick = nullptr;
    for (auto& [id, job] : jobs_) {
      if (job.state != JobState::Queued || job.not_before > now) continue;
      pick = &job;
      break;
    }
    if (!pick) return;
    pick->state = JobState::Running;
    pick->worker = static_cast<int>(slot);
    pick->deadline =
        opt_.job_timeout_s > 0
            ? now + static_cast<std::int64_t>(opt_.job_timeout_s * 1000.0)
            : 0;
    w.busy = true;
    w.job = pick->id;
    try {
      w.conn.send_frame(Frame{MsgType::Job, kv_encode(pick->spec.to_kv())});
    } catch (const std::exception&) {
      worker_died(slot);
      return;  // worker_died() reschedules
    }
    ++assigns_;
    if (opt_.chaos_kill_at_assign != 0 &&
        assigns_ == opt_.chaos_kill_at_assign) {
      log("chaos: SIGKILL worker %d on assignment %llu",
          static_cast<int>(w.pid),
          static_cast<unsigned long long>(assigns_));
      ::kill(w.pid, SIGKILL);
    }
  }
}

void Service::check_timeouts() {
  const std::int64_t now = now_ms();
  for (auto& [id, job] : jobs_) {
    if (job.state != JobState::Running || job.deadline == 0 ||
        now < job.deadline)
      continue;
    job.deadline = 0;  // one kill per expiry; the death path requeues
    ++n_.worker_timeouts;
    const WorkerProc& w = workers_[static_cast<std::size_t>(job.worker)];
    log("job %llu timed out; killing worker %d",
        static_cast<unsigned long long>(id), static_cast<int>(w.pid));
    if (w.pid > 0) ::kill(w.pid, SIGKILL);
  }
}

std::int64_t Service::next_wakeup() const {
  std::int64_t next = -1;
  const auto consider = [&](std::int64_t t) {
    if (t > 0 && (next < 0 || t < next)) next = t;
  };
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::Running) consider(job.deadline);
    else consider(job.not_before);
  }
  if (opt_.client_idle_timeout_s > 0)
    for (const auto& [id, c] : clients_)
      if (!c.dead)
        consider(c.last_ms +
                 static_cast<std::int64_t>(opt_.client_idle_timeout_s) * 1000);
  return next;
}

std::string Service::stats_json() const {
  std::size_t queued = 0, running = 0;
  for (const auto& [id, job] : jobs_)
    (job.state == JobState::Queued ? queued : running)++;
  std::size_t connected = 0;
  for (const auto& [id, c] : clients_)
    if (!c.dead) ++connected;
  std::size_t detached_plans = 0;
  for (const auto& [id, p] : plans_)
    if (p.client < 0) ++detached_plans;

  std::string out = "{\n";
  const auto num = [&out](const char* k, std::uint64_t v, bool last = false) {
    out += std::string("  \"") + k + "\": " + std::to_string(v) +
           (last ? "\n" : ",\n");
  };
  out += "  \"uptime_ms\": " + std::to_string(now_ms()) + ",\n";
  out += "  \"draining\": " + std::string(draining_ ? "true" : "false") +
         ",\n";
  out += "  \"workers\": [";
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const WorkerProc& w = workers_[i];
    out += std::string(i ? ", " : "") + "{\"pid\": " +
           std::to_string(w.pid) +
           ", \"busy\": " + (w.busy ? "true" : "false") +
           ", \"jobs\": " + std::to_string(w.jobs_done) + "}";
  }
  out += "],\n";
  num("worker_restarts", n_.worker_restarts);
  num("worker_timeouts", n_.worker_timeouts);
  num("clients_connected", connected);
  num("clients_total", n_.clients_total);
  num("clients_dropped_idle", n_.clients_dropped_idle);
  num("clients_dropped_slow", n_.clients_dropped_slow);
  num("plans_submitted", n_.plans_submitted);
  num("plans_completed", n_.plans_completed);
  num("plans_active", plans_.size());
  num("plans_detached", detached_plans);
  num("cells_total", n_.cells_total);
  num("jobs_queued", queued);
  num("jobs_running", running);
  num("jobs_done", n_.jobs_done);
  num("jobs_failed", n_.jobs_failed);
  num("cells_failed", n_.cells_failed);
  num("retries", n_.retries);
  num("dedup_hits", n_.dedup_hits);
  num("mem_hits", n_.mem_hits);
  num("disk_cache_hits", n_.disk_cache_hits);
  num("cross_client_shared_jobs", n_.cross_client_shared_jobs);
  num("compile_nodes_rebuilt", n_.compile_nodes_rebuilt);
  num("trace_nodes_hit", n_.trace_nodes_hit);
  num("trace_nodes_rebuilt", n_.trace_nodes_rebuilt);
  num("journal_records_replayed", n_.journal_records_replayed);
  num("journal_bad_bytes", n_.journal_bad_bytes);
  num("journal_plans_recovered", n_.journal_plans_recovered);
  num("journal_cells_recovered", n_.journal_cells_recovered);
  num("resumes", n_.resumes);
  num("resume_unknown_token", n_.resume_unknown_token);
  num("chaos_conns", fault_plan_.conns());
  num("chaos_drops_injected", fault_plan_.drops_injected());
  num("chaos_corruptions_injected", fault_plan_.corruptions_injected());
  num("chaos_stalls_injected", fault_plan_.stalls_injected());
  out += "  \"cell_latency_ms\": {\"count\": " +
         std::to_string(n_.lat_count) +
         ", \"total\": " + lab::format_double(n_.lat_total_ms) +
         ", \"min\": " + lab::format_double(n_.lat_min_ms) +
         ", \"max\": " + lab::format_double(n_.lat_max_ms) + ", \"avg\": " +
         lab::format_double(n_.lat_count
                                ? n_.lat_total_ms /
                                      static_cast<double>(n_.lat_count)
                                : 0.0) +
         "}\n";
  out += "}\n";
  return out;
}

void Service::write_stats_file() {
  if (opt_.stats_file.empty()) return;
  std::ofstream out(opt_.stats_file, std::ios::trunc);
  if (!out) {
    log("cannot write stats file %s", opt_.stats_file.c_str());
    return;
  }
  out << stats_json();
}

void Service::reap_idle_clients() {
  if (opt_.client_idle_timeout_s <= 0) return;
  const std::int64_t cutoff =
      now_ms() - static_cast<std::int64_t>(opt_.client_idle_timeout_s) * 1000;
  for (auto& [id, c] : clients_) {
    if (c.dead || c.last_ms > cutoff) continue;
    log("client %d dropped: idle for %d s", id, opt_.client_idle_timeout_s);
    ++n_.clients_dropped_idle;
    c.dead = true;
  }
}

void Service::drop_dead_clients() {
  for (auto it = clients_.begin(); it != clients_.end();) {
    if (!it->second.dead) {
      ++it;
      continue;
    }
    // Detach — don't cancel — this client's plans: the jobs keep
    // running, results keep landing in the memo/journal, and a
    // reconnecting client re-attaches by token (the space/time
    // decoupling of the pub-sub model).
    for (const std::uint64_t plan_id : it->second.plans) {
      const auto pit = plans_.find(plan_id);
      if (pit != plans_.end() && pit->second.client == it->first)
        pit->second.client = -1;
    }
    log("client %d disconnected%s", it->first,
        it->second.plans.empty() ? "" : " (plans detached)");
    it = clients_.erase(it);
  }
}

int Service::run() {
  if (const auto spec = chaos_spec_from(opt_.chaos_net)) {
    fault_plan_.arm(*spec);
    log("chaos: network fault injection armed (seed %llu)",
        static_cast<unsigned long long>(spec->seed));
  }
  listener_ = FaultListener::listen(opt_.endpoint, &fault_plan_);
  token_salt_ = lab::fnv1a64(opt_.endpoint + "|" +
                             std::to_string(::getpid()) + "|" +
                             std::to_string(::time(nullptr)));

  int pipefd[2];
  if (::pipe(pipefd) != 0)
    throw TransportError("hiserved: pipe failed");
  for (const int fd : {pipefd[0], pipefd[1]}) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
  sig_rd_ = pipefd[0];
  sig_wr_ = pipefd[1];
  g_signal_wr = sig_wr_;
  ::signal(SIGPIPE, SIG_IGN);
  ::signal(SIGTERM, on_signal);
  ::signal(SIGINT, on_signal);

  workers_.resize(static_cast<std::size_t>(std::max(1, opt_.workers)));
  for (std::size_t i = 0; i < workers_.size(); ++i) spawn_worker(i);
  log("listening on %s with %zu workers (cache: %s)", opt_.endpoint.c_str(),
      workers_.size(),
      opt_.cache_dir.empty() ? "disabled" : opt_.cache_dir.c_str());
  recover_from_journal();
  schedule();

  for (;;) {
    if (draining_ && jobs_.empty()) break;

    std::vector<pollfd> fds;
    // Index maps: which poll entry belongs to what.
    const std::size_t sig_idx = fds.size();
    fds.push_back({sig_rd_, POLLIN, 0});
    std::size_t listen_idx = SIZE_MAX;
    if (!draining_) {
      listen_idx = fds.size();
      fds.push_back({listener_.fd(), POLLIN, 0});
    }
    std::vector<std::pair<std::size_t, std::size_t>> worker_idx;  // poll,slot
    for (std::size_t i = 0; i < workers_.size(); ++i)
      if (workers_[i].pid >= 0) {
        worker_idx.emplace_back(fds.size(), i);
        fds.push_back({workers_[i].conn.fd(), POLLIN, 0});
      }
    std::vector<std::pair<std::size_t, int>> client_idx;  // poll,client id
    for (auto& [id, c] : clients_)
      if (!c.dead) {
        client_idx.emplace_back(fds.size(), id);
        const short ev =
            POLLIN | (c.conn.queued_bytes() > 0 ? POLLOUT : 0);
        fds.push_back({c.conn.fd(), ev, 0});
      }

    std::int64_t timeout = -1;
    const std::int64_t wake = next_wakeup();
    if (wake >= 0)
      timeout = std::max<std::int64_t>(0, wake - now_ms());
    const int rc = ::poll(fds.data(), fds.size(),
                          static_cast<int>(std::min<std::int64_t>(
                              timeout < 0 ? -1 : timeout, 60'000)));
    if (rc < 0 && errno != EINTR)
      throw TransportError("hiserved: poll failed");

    // Signals first: a drain request should gate this iteration's accepts.
    if (fds[sig_idx].revents & POLLIN) {
      unsigned char buf[64];
      ssize_t got;
      while ((got = ::read(sig_rd_, buf, sizeof buf)) > 0) {
        for (ssize_t i = 0; i < got; ++i)
          if (buf[i] == SIGTERM || buf[i] == SIGINT) {
            if (!draining_)
              log("drain requested (signal %d): finishing %zu jobs",
                  buf[i], jobs_.size());
            draining_ = true;
          }
      }
    }

    if (listen_idx != SIZE_MAX && (fds[listen_idx].revents & POLLIN)) {
      FaultConn conn = listener_.accept();
      conn.set_nonblocking(true);
      const int id = next_client_id_++;
      ClientState c;
      c.id = id;
      c.conn = std::move(conn);
      c.last_ms = now_ms();
      clients_.emplace(id, std::move(c));
      ++n_.clients_total;
      log("client %d connected", id);
    }

    for (const auto& [pidx, slot] : worker_idx) {
      if (!(fds[pidx].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      WorkerProc& w = workers_[slot];
      if (w.pid < 0) continue;  // died earlier this iteration
      bool alive = true;
      try {
        alive = w.conn.read_into_decoder();
        while (auto f = w.conn.next_frame()) handle_worker_frame(slot, *f);
      } catch (const std::exception&) {
        alive = false;  // protocol corruption from a worker: treat as death
        if (w.pid > 0) ::kill(w.pid, SIGKILL);
      }
      if (!alive) worker_died(slot);
    }

    for (const auto& [pidx, id] : client_idx) {
      const auto it = clients_.find(id);
      if (it == clients_.end()) continue;
      ClientState& c = it->second;
      if (fds[pidx].revents & POLLOUT) {
        if (!c.conn.flush_queue()) c.dead = true;
      }
      if (!(fds[pidx].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      if (c.dead) continue;
      c.last_ms = now_ms();
      bool alive = true;
      try {
        alive = c.conn.read_into_decoder();
        while (auto f = c.conn.next_frame()) handle_client_frame(c, *f);
      } catch (const std::exception&) {
        alive = false;  // protocol corruption: hang up on the client
      }
      if (!alive) c.dead = true;
    }

    reap_idle_clients();
    drop_dead_clients();
    check_timeouts();
    schedule();
  }

  // Drained: flush what the clients are still owed, then orderly worker
  // shutdown, stats snapshot, exit.
  for (auto& [id, c] : clients_)
    if (!c.dead && c.conn.queued_bytes() > 0) c.conn.flush_blocking(2000);
  for (auto& w : workers_) {
    if (w.pid < 0) continue;
    try {
      w.conn.send_frame(Frame{MsgType::Shutdown, ""});
    } catch (const std::exception&) {
    }
    w.conn.close();
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    w.pid = -1;
  }
  write_stats_file();
  log("drained; bye");
  return 0;
}

}  // namespace

int serve_main(const ServeOptions& opt) {
  Service s(opt);
  return s.run();
}

}  // namespace hidisc::serve
