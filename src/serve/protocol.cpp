#include "serve/protocol.hpp"

#include <cstring>

#include "lab/serialize.hpp"

namespace hidisc::serve {

namespace {

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint16_t get_u16(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint16_t>(u[0] | (u[1] << 8));
}

std::uint32_t get_u32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(u[0]) |
         (static_cast<std::uint32_t>(u[1]) << 8) |
         (static_cast<std::uint32_t>(u[2]) << 16) |
         (static_cast<std::uint32_t>(u[3]) << 24);
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  for (int i = 7; i >= 0; --i) v = (v << 8) | u[i];
  return v;
}

std::string format_u64(std::uint64_t v) { return std::to_string(v); }

}  // namespace

const char* msg_type_name(MsgType t) noexcept {
  switch (t) {
    case MsgType::Hello: return "Hello";
    case MsgType::HelloOk: return "HelloOk";
    case MsgType::SubmitPlan: return "SubmitPlan";
    case MsgType::PlanAccepted: return "PlanAccepted";
    case MsgType::CellDone: return "CellDone";
    case MsgType::PlanDone: return "PlanDone";
    case MsgType::GetStats: return "GetStats";
    case MsgType::Stats: return "Stats";
    case MsgType::Error: return "Error";
    case MsgType::Job: return "Job";
    case MsgType::JobDone: return "JobDone";
    case MsgType::Shutdown: return "Shutdown";
    case MsgType::Ping: return "Ping";
    case MsgType::Pong: return "Pong";
    case MsgType::ResumePlan: return "ResumePlan";
    case MsgType::ResumeOk: return "ResumeOk";
  }
  return "?";
}

std::string encode_frame(const Frame& f) {
  std::string out;
  out.reserve(kHeaderSize + f.payload.size());
  put_u32(out, kMagic);
  put_u16(out, kProtocolVersion);
  put_u16(out, static_cast<std::uint16_t>(f.type));
  put_u32(out, static_cast<std::uint32_t>(f.payload.size()));
  put_u64(out, lab::fnv1a64(f.payload));
  out += f.payload;
  return out;
}

void FrameDecoder::feed(const void* data, std::size_t n) {
  if (!poison_.empty()) throw ProtocolError(poison_);
  buf_.append(static_cast<const char*>(data), n);
}

std::optional<Frame> FrameDecoder::next() {
  if (!poison_.empty()) throw ProtocolError(poison_);
  if (buf_.size() < kHeaderSize) return std::nullopt;
  const char* h = buf_.data();
  const auto fail = [&](const std::string& why) -> std::optional<Frame> {
    poison_ = "hiserve protocol: " + why;
    throw ProtocolError(poison_);
  };
  if (get_u32(h) != kMagic) return fail("bad magic");
  const std::uint16_t version = get_u16(h + 4);
  if (version != kProtocolVersion)
    return fail("unsupported protocol version " + std::to_string(version));
  const std::uint32_t len = get_u32(h + 8);
  if (len > kMaxPayload)
    return fail("oversize payload (" + std::to_string(len) + " bytes)");
  if (buf_.size() < kHeaderSize + len) return std::nullopt;
  const std::uint64_t want = get_u64(h + 12);
  Frame f;
  f.type = static_cast<MsgType>(get_u16(h + 6));
  f.payload = buf_.substr(kHeaderSize, len);
  if (lab::fnv1a64(f.payload) != want)
    return fail("payload checksum mismatch");
  buf_.erase(0, kHeaderSize + len);
  return f;
}

// Payload key-value helpers -------------------------------------------------

std::string kv_escape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out.push_back(c);
  }
  return out;
}

std::string kv_unescape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] == '\\' && i + 1 < v.size()) {
      ++i;
      out.push_back(v[i] == 'n' ? '\n' : v[i]);
    } else {
      out.push_back(v[i]);
    }
  }
  return out;
}

std::string kv_encode(const KvMap& kv) {
  std::string out;
  for (const auto& [k, v] : kv) {
    out += k;
    out += ' ';
    out += kv_escape(v);
    out += '\n';
  }
  return out;
}

KvMap kv_parse(const std::string& payload) {
  KvMap kv;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t nl = payload.find('\n', pos);
    if (nl == std::string::npos) nl = payload.size();
    const std::string line = payload.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    const std::size_t space = line.find(' ');
    if (space == std::string::npos || space == 0)
      throw ProtocolError("hiserve protocol: malformed kv line '" + line +
                          "'");
    kv[line.substr(0, space)] = kv_unescape(line.substr(space + 1));
  }
  return kv;
}

std::string kv_get(const KvMap& kv, const std::string& key,
                   const std::string& fallback) {
  const auto it = kv.find(key);
  return it == kv.end() ? fallback : it->second;
}

std::uint64_t kv_get_u64(const KvMap& kv, const std::string& key,
                         std::uint64_t fallback) {
  const auto it = kv.find(key);
  if (it == kv.end()) return fallback;
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

double kv_get_double(const KvMap& kv, const std::string& key,
                     double fallback) {
  const auto it = kv.find(key);
  if (it == kv.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

// Message payloads ----------------------------------------------------------

KvMap PlanRequest::to_kv() const {
  KvMap kv;
  kv["plan"] = plan;
  kv["scale"] = scale;
  kv["watchdog"] = format_u64(watchdog);
  kv["lockstep"] = lockstep ? "1" : "0";
  kv["refresh"] = refresh ? "1" : "0";
  return kv;
}

PlanRequest PlanRequest::from_kv(const KvMap& kv) {
  PlanRequest r;
  r.plan = kv_get(kv, "plan");
  r.scale = kv_get(kv, "scale", "paper");
  r.watchdog = kv_get_u64(kv, "watchdog");
  r.lockstep = kv_get(kv, "lockstep") == "1";
  r.refresh = kv_get(kv, "refresh") == "1";
  return r;
}

KvMap JobSpec::to_kv() const {
  KvMap kv = plan.to_kv();
  kv["job"] = format_u64(job_id);
  kv["cell"] = format_u64(cell);
  return kv;
}

JobSpec JobSpec::from_kv(const KvMap& kv) {
  JobSpec s;
  s.plan = PlanRequest::from_kv(kv);
  s.job_id = kv_get_u64(kv, "job");
  s.cell = kv_get_u64(kv, "cell");
  return s;
}

KvMap cell_result_to_kv(const lab::CellResult& r) {
  KvMap kv;
  kv["key"] = r.key;
  kv["odi"] = format_u64(r.orig_dynamic_instructions);
  kv["cached"] = r.from_cache ? "1" : "0";
  kv["wall_ms"] = lab::format_double(r.wall_ms);
  kv["scps"] = lab::format_double(r.sim_cycles_per_sec);
  kv["error"] = r.error;
  kv["error_class"] = r.error_class;
  kv["diagnostic"] = r.diagnostic_json;
  // Pipeline provenance (node work behind this cell's job); the daemon
  // zeroes these on dedup/memo deliveries.
  kv["n.compile"] = format_u64(r.compile_nodes_rebuilt);
  kv["n.trace_hit"] = format_u64(r.trace_nodes_hit);
  kv["n.trace"] = format_u64(r.trace_nodes_rebuilt);
  if (r.ok())
    for (const auto& [name, value] : lab::result_to_fields(r.result))
      kv["r." + name] = value;
  return kv;
}

lab::CellResult cell_result_from_kv(const KvMap& kv) {
  lab::CellResult r;
  r.key = kv_get(kv, "key");
  r.orig_dynamic_instructions = kv_get_u64(kv, "odi");
  r.from_cache = kv_get(kv, "cached") == "1";
  r.wall_ms = kv_get_double(kv, "wall_ms");
  r.sim_cycles_per_sec = kv_get_double(kv, "scps");
  r.error = kv_get(kv, "error");
  r.error_class = kv_get(kv, "error_class");
  r.diagnostic_json = kv_get(kv, "diagnostic");
  r.compile_nodes_rebuilt =
      static_cast<std::uint32_t>(kv_get_u64(kv, "n.compile"));
  r.trace_nodes_hit = static_cast<std::uint32_t>(kv_get_u64(kv, "n.trace_hit"));
  r.trace_nodes_rebuilt = static_cast<std::uint32_t>(kv_get_u64(kv, "n.trace"));
  if (r.ok()) {
    std::map<std::string, std::string> fields;
    for (const auto& [k, v] : kv)
      if (k.rfind("r.", 0) == 0) fields[k.substr(2)] = v;
    std::string missing;
    r.result = lab::result_from_fields(fields, &missing);
    if (!missing.empty())
      throw ProtocolError("hiserve protocol: cell result missing field '" +
                          missing + "'");
  }
  return r;
}

}  // namespace hidisc::serve
