// The hiserve job journal: crash recovery for the daemon's in-flight
// plans.
//
// An append-only text file beside the shared cache directory, one
// checksummed record per line:
//
//   HSJL1 <fnv1a64-of-payload, 16 hex> <payload>
//
// with three payload shapes (space-separated; plan names are registry
// identifiers and never contain spaces):
//
//   plan <token> <cells> <name> <scale> <watchdog> <lockstep> <refresh>
//   cell <token> <cell-index>
//   done <token>
//
// The daemon appends a `plan` record on submission, a `cell` record as
// each cell completes (delivered or not), and `done` when the plan
// finishes.  On startup, replay() reads the journal back: plans with no
// `done` record are re-materialized by registry name and re-enqueued —
// cells whose `cell` record survived come back as disk-cache hits (the
// worker's ResultCache probe), so a restarted daemon finishes only the
// missing work.  The per-line FNV-1a-64 checksum is the same integrity
// discipline the result cache uses; a torn or corrupt tail (the daemon
// was SIGKILLed mid-append) is moved to a quarantine file and the
// journal truncated back to the last good record — never fatal, never
// silently parsed.
//
// Single-writer discipline: the constructor takes a non-blocking
// exclusive flock on the journal fd for the daemon's lifetime.  When a
// second daemon points at the same journal, its journal is simply
// disabled (active() == false) with a warning — two daemons sharing a
// cache directory is legal; sharing a recovery log is not.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace hidisc::serve {

struct JournalPlan {
  std::string token;
  PlanRequest req;
  std::size_t cells = 0;
  std::vector<bool> done;  // per-cell completion records seen
  bool complete = false;   // a `done` record was seen

  [[nodiscard]] std::size_t done_count() const {
    std::size_t n = 0;
    for (const bool d : done) n += d ? 1 : 0;
    return n;
  }
};

struct JournalReplay {
  std::vector<JournalPlan> plans;  // submission order
  std::uint64_t records = 0;       // good records replayed
  std::uint64_t bad_bytes = 0;     // quarantined tail length
  std::string quarantine;          // where the bad tail went ("" = clean)
};

class JobJournal {
 public:
  JobJournal() = default;
  // Opens (creating if needed, including the parent directory) with
  // O_APPEND and takes the writer flock.  Lock contention or an
  // unwritable path disables the journal instead of throwing.
  explicit JobJournal(std::string path);
  ~JobJournal();
  JobJournal(JobJournal&& o) noexcept;
  JobJournal& operator=(JobJournal&& o) noexcept;
  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  [[nodiscard]] bool active() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  void record_plan(const std::string& token, const PlanRequest& req,
                   std::size_t cells);
  void record_cell(const std::string& token, std::size_t cell);
  void record_done(const std::string& token);

  // Empties the journal (after a replay consumed it: recovered plans are
  // re-recorded live, so the log never grows across restarts).
  void truncate_all();

  // Reads `path` and quarantines any torn/corrupt tail (moving the bad
  // bytes aside and truncating the journal to the last good record).
  // Missing file = empty replay.  Never throws on journal damage.
  [[nodiscard]] static JournalReplay replay(const std::string& path);

 private:
  void append_line(const std::string& payload);

  int fd_ = -1;
  std::string path_;
};

}  // namespace hidisc::serve
