#include "serve/transport.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

namespace hidisc::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError("hiserve transport: " + what + ": " +
                       std::strerror(errno));
}

bool is_tcp_endpoint(const std::string& ep) {
  return ep.rfind("tcp:", 0) == 0;
}

// "tcp:HOST:PORT" -> (host, port); throws on a malformed spec.
std::pair<std::string, std::uint16_t> split_tcp(const std::string& ep) {
  const std::string rest = ep.substr(4);
  const std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= rest.size())
    throw TransportError("hiserve transport: bad tcp endpoint '" + ep +
                         "' (want tcp:HOST:PORT)");
  const long port = std::strtol(rest.c_str() + colon + 1, nullptr, 10);
  if (port <= 0 || port > 65535)
    throw TransportError("hiserve transport: bad tcp port in '" + ep + "'");
  return {rest.substr(0, colon), static_cast<std::uint16_t>(port)};
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw TransportError("hiserve transport: unix socket path too long: " +
                         path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    const hostent* he = gethostbyname(host.c_str());
    if (!he || he->h_addrtype != AF_INET)
      throw TransportError("hiserve transport: cannot resolve host " + host);
    std::memcpy(&addr.sin_addr, he->h_addr_list[0], sizeof(addr.sin_addr));
  }
  return addr;
}

void send_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w > 0) {
      data += w;
      n -= static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      (void)::poll(&p, 1, -1);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    throw_errno("send");
  }
}

}  // namespace

// Conn -----------------------------------------------------------------------

Conn::~Conn() { close(); }

Conn::Conn(Conn&& o) noexcept : fd_(o.fd_), dec_(std::move(o.dec_)) {
  o.fd_ = -1;
}

Conn& Conn::operator=(Conn&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    dec_ = std::move(o.dec_);
    o.fd_ = -1;
  }
  return *this;
}

void Conn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Conn::send_frame(const Frame& f) {
  if (fd_ < 0) throw TransportError("hiserve transport: send on closed conn");
  const std::string wire = encode_frame(f);
  send_all(fd_, wire.data(), wire.size());
}

void Conn::send_raw(const char* data, std::size_t n) {
  if (fd_ < 0) throw TransportError("hiserve transport: send on closed conn");
  send_all(fd_, data, n);
}

long Conn::try_send(const char* data, std::size_t n) {
  if (fd_ < 0) return -1;
  for (;;) {
    const ssize_t w = ::send(fd_, data, n, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (w >= 0) return static_cast<long>(w);
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    if (errno == EINTR) continue;
    return -1;
  }
}

std::optional<Frame> Conn::recv_frame() {
  for (;;) {
    if (auto f = dec_.next()) return f;
    char buf[64 * 1024];
    const ssize_t r = ::recv(fd_, buf, sizeof buf, 0);
    if (r > 0) {
      dec_.feed(buf, static_cast<std::size_t>(r));
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd_, POLLIN, 0};
      (void)::poll(&p, 1, -1);
      continue;
    }
    if (r == 0) {
      if (dec_.buffered() > 0)
        throw TransportError(
            "hiserve transport: peer closed mid-frame (truncated stream)");
      return std::nullopt;
    }
    throw_errno("recv");
  }
}

std::optional<Frame> Conn::recv_frame_for(int timeout_ms, bool* timed_out) {
  if (timed_out) *timed_out = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (auto f = dec_.next()) return f;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - std::chrono::steady_clock::now())
                          .count();
    if (left <= 0) {
      if (timed_out) *timed_out = true;
      return std::nullopt;
    }
    pollfd p{fd_, POLLIN, 0};
    const int pr = ::poll(&p, 1, static_cast<int>(left));
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (pr == 0) {
      if (timed_out) *timed_out = true;
      return std::nullopt;
    }
    char buf[64 * 1024];
    const ssize_t r = ::recv(fd_, buf, sizeof buf, 0);
    if (r > 0) {
      dec_.feed(buf, static_cast<std::size_t>(r));
      continue;
    }
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR))
      continue;
    if (r == 0) {
      if (dec_.buffered() > 0)
        throw TransportError(
            "hiserve transport: peer closed mid-frame (truncated stream)");
      return std::nullopt;
    }
    throw_errno("recv");
  }
}

bool Conn::read_into_decoder() {
  for (;;) {
    char buf[64 * 1024];
    const ssize_t r = ::recv(fd_, buf, sizeof buf, 0);
    if (r > 0) {
      dec_.feed(buf, static_cast<std::size_t>(r));
      continue;
    }
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (r < 0 && errno == EINTR) continue;
    return false;  // EOF or hard error: peer is gone
  }
}

void Conn::set_nonblocking(bool nb) {
  const int flags = fcntl(fd_, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int want = nb ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd_, F_SETFL, want) < 0) throw_errno("fcntl(F_SETFL)");
}

// Listener -------------------------------------------------------------------

Listener::~Listener() { close(); }

Listener::Listener(Listener&& o) noexcept
    : fd_(o.fd_), unlink_path_(std::move(o.unlink_path_)) {
  o.fd_ = -1;
  o.unlink_path_.clear();
}

Listener& Listener::operator=(Listener&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    unlink_path_ = std::move(o.unlink_path_);
    o.fd_ = -1;
    o.unlink_path_.clear();
  }
  return *this;
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!unlink_path_.empty()) {
    ::unlink(unlink_path_.c_str());
    unlink_path_.clear();
  }
}

void Listener::abandon() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  unlink_path_.clear();  // the parent still owns the socket file
}

Listener Listener::listen(const std::string& endpoint) {
  Listener l;
  if (is_tcp_endpoint(endpoint)) {
    const auto [host, port] = split_tcp(endpoint);
    l.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (l.fd_ < 0) throw_errno("socket");
    const int one = 1;
    setsockopt(l.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr = tcp_addr(host, port);
    if (::bind(l.fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
      throw_errno("bind " + endpoint);
  } else {
    l.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (l.fd_ < 0) throw_errno("socket");
    sockaddr_un addr = unix_addr(endpoint);
    if (::bind(l.fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      if (errno != EADDRINUSE) throw_errno("bind " + endpoint);
      // A socket file exists.  Probe it: only a daemon that both accepts
      // AND answers a Ping within 300ms counts as live — a connect() that
      // succeeds against a dead-but-undrained backlog, or a hung process,
      // must not block a restart after SIGKILL.
      bool live = false;
      const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (probe >= 0 &&
          ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
              0) {
        Frame ping;
        ping.type = MsgType::Ping;
        const std::string wire = encode_frame(ping);
        if (::send(probe, wire.data(), wire.size(), MSG_NOSIGNAL) ==
            static_cast<ssize_t>(wire.size())) {
          pollfd p{probe, POLLIN, 0};
          if (::poll(&p, 1, 300) > 0 && (p.revents & POLLIN)) {
            char buf[4096];
            const ssize_t r = ::recv(probe, buf, sizeof buf, 0);
            if (r > 0) {
              FrameDecoder dec;
              dec.feed(buf, static_cast<std::size_t>(r));
              try {
                live = dec.next().has_value();
              } catch (const ProtocolError&) {
                live = false;  // garbage back = not a healthy daemon
              }
            }
          }
        }
      }
      if (probe >= 0) ::close(probe);
      if (live)
        throw TransportError("hiserve transport: " + endpoint +
                             " already has a live listener");
      ::unlink(endpoint.c_str());
      if (::bind(l.fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
        throw_errno("bind " + endpoint);
    }
    l.unlink_path_ = endpoint;
  }
  if (::listen(l.fd_, 64) < 0) throw_errno("listen " + endpoint);
  return l;
}

Conn Listener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Conn(fd);
    if (errno == EINTR) continue;
    throw_errno("accept");
  }
}

Conn connect_to(const std::string& endpoint) {
  // A daemon that is still starting up has a window where the endpoint
  // exists but does not accept yet (Unix: bind done, listen pending;
  // TCP: nothing bound).  Retry those two transient failures with
  // exponential backoff (10ms doubling to a 640ms cap, ~3s total) so
  // `hilab --connect` races cleanly against `hiserved &` without
  // hammering a dead endpoint; every other errno (permissions, bad
  // address) fails immediately.
  constexpr int kAttempts = 10;
  int delay_us = 10 * 1000;
  constexpr int kDelayCapUs = 640 * 1000;
  for (int attempt = 0;; ++attempt) {
    int fd = -1;
    if (is_tcp_endpoint(endpoint)) {
      const auto [host, port] = split_tcp(endpoint);
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) throw_errno("socket");
      sockaddr_in addr = tcp_addr(host, port);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0)
        return Conn(fd);
    } else {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) throw_errno("socket");
      sockaddr_un addr = unix_addr(endpoint);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0)
        return Conn(fd);
    }
    const int saved = errno;
    ::close(fd);
    if ((saved != ECONNREFUSED && saved != ENOENT) || attempt + 1 >= kAttempts) {
      errno = saved;
      throw_errno("connect " + endpoint);
    }
    ::usleep(delay_us);
    delay_us = std::min(delay_us * 2, kDelayCapUs);
  }
}

SocketPair make_socketpair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) throw_errno("socketpair");
  SocketPair sp;
  sp.parent = Conn(fds[0]);
  sp.child = Conn(fds[1]);
  return sp;
}

}  // namespace hidisc::serve
