#include "serve/transport.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <utility>

namespace hidisc::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError("hiserve transport: " + what + ": " +
                       std::strerror(errno));
}

bool is_tcp_endpoint(const std::string& ep) {
  return ep.rfind("tcp:", 0) == 0;
}

// "tcp:HOST:PORT" -> (host, port); throws on a malformed spec.
std::pair<std::string, std::uint16_t> split_tcp(const std::string& ep) {
  const std::string rest = ep.substr(4);
  const std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= rest.size())
    throw TransportError("hiserve transport: bad tcp endpoint '" + ep +
                         "' (want tcp:HOST:PORT)");
  const long port = std::strtol(rest.c_str() + colon + 1, nullptr, 10);
  if (port <= 0 || port > 65535)
    throw TransportError("hiserve transport: bad tcp port in '" + ep + "'");
  return {rest.substr(0, colon), static_cast<std::uint16_t>(port)};
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw TransportError("hiserve transport: unix socket path too long: " +
                         path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    const hostent* he = gethostbyname(host.c_str());
    if (!he || he->h_addrtype != AF_INET)
      throw TransportError("hiserve transport: cannot resolve host " + host);
    std::memcpy(&addr.sin_addr, he->h_addr_list[0], sizeof(addr.sin_addr));
  }
  return addr;
}

void send_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w > 0) {
      data += w;
      n -= static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      (void)::poll(&p, 1, -1);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    throw_errno("send");
  }
}

}  // namespace

// Conn -----------------------------------------------------------------------

Conn::~Conn() { close(); }

Conn::Conn(Conn&& o) noexcept : fd_(o.fd_), dec_(std::move(o.dec_)) {
  o.fd_ = -1;
}

Conn& Conn::operator=(Conn&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    dec_ = std::move(o.dec_);
    o.fd_ = -1;
  }
  return *this;
}

void Conn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Conn::send_frame(const Frame& f) {
  if (fd_ < 0) throw TransportError("hiserve transport: send on closed conn");
  const std::string wire = encode_frame(f);
  send_all(fd_, wire.data(), wire.size());
}

std::optional<Frame> Conn::recv_frame() {
  for (;;) {
    if (auto f = dec_.next()) return f;
    char buf[64 * 1024];
    const ssize_t r = ::recv(fd_, buf, sizeof buf, 0);
    if (r > 0) {
      dec_.feed(buf, static_cast<std::size_t>(r));
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd_, POLLIN, 0};
      (void)::poll(&p, 1, -1);
      continue;
    }
    if (r == 0) {
      if (dec_.buffered() > 0)
        throw TransportError(
            "hiserve transport: peer closed mid-frame (truncated stream)");
      return std::nullopt;
    }
    throw_errno("recv");
  }
}

bool Conn::read_into_decoder() {
  for (;;) {
    char buf[64 * 1024];
    const ssize_t r = ::recv(fd_, buf, sizeof buf, 0);
    if (r > 0) {
      dec_.feed(buf, static_cast<std::size_t>(r));
      continue;
    }
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (r < 0 && errno == EINTR) continue;
    return false;  // EOF or hard error: peer is gone
  }
}

void Conn::set_nonblocking(bool nb) {
  const int flags = fcntl(fd_, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int want = nb ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd_, F_SETFL, want) < 0) throw_errno("fcntl(F_SETFL)");
}

// Listener -------------------------------------------------------------------

Listener::~Listener() { close(); }

Listener::Listener(Listener&& o) noexcept
    : fd_(o.fd_), unlink_path_(std::move(o.unlink_path_)) {
  o.fd_ = -1;
  o.unlink_path_.clear();
}

Listener& Listener::operator=(Listener&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    unlink_path_ = std::move(o.unlink_path_);
    o.fd_ = -1;
    o.unlink_path_.clear();
  }
  return *this;
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!unlink_path_.empty()) {
    ::unlink(unlink_path_.c_str());
    unlink_path_.clear();
  }
}

void Listener::abandon() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  unlink_path_.clear();  // the parent still owns the socket file
}

Listener Listener::listen(const std::string& endpoint) {
  Listener l;
  if (is_tcp_endpoint(endpoint)) {
    const auto [host, port] = split_tcp(endpoint);
    l.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (l.fd_ < 0) throw_errno("socket");
    const int one = 1;
    setsockopt(l.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr = tcp_addr(host, port);
    if (::bind(l.fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
      throw_errno("bind " + endpoint);
  } else {
    l.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (l.fd_ < 0) throw_errno("socket");
    sockaddr_un addr = unix_addr(endpoint);
    if (::bind(l.fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      if (errno != EADDRINUSE) throw_errno("bind " + endpoint);
      // A socket file exists.  Probe it: a live listener accepts, a stale
      // file refuses — only the stale one may be replaced.
      const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      const bool live =
          probe >= 0 &&
          ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
              0;
      if (probe >= 0) ::close(probe);
      if (live)
        throw TransportError("hiserve transport: " + endpoint +
                             " already has a live listener");
      ::unlink(endpoint.c_str());
      if (::bind(l.fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
        throw_errno("bind " + endpoint);
    }
    l.unlink_path_ = endpoint;
  }
  if (::listen(l.fd_, 64) < 0) throw_errno("listen " + endpoint);
  return l;
}

Conn Listener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Conn(fd);
    if (errno == EINTR) continue;
    throw_errno("accept");
  }
}

Conn connect_to(const std::string& endpoint) {
  // A daemon that is still starting up has a window where the endpoint
  // exists but does not accept yet (Unix: bind done, listen pending;
  // TCP: nothing bound).  Retry those two transient failures briefly so
  // `hilab --connect` races cleanly against `hiserved &`; every other
  // errno (permissions, bad address) fails immediately.
  constexpr int kAttempts = 40;       // x 50ms = 2s of patience
  constexpr int kRetryDelayUs = 50 * 1000;
  for (int attempt = 0;; ++attempt) {
    int fd = -1;
    if (is_tcp_endpoint(endpoint)) {
      const auto [host, port] = split_tcp(endpoint);
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) throw_errno("socket");
      sockaddr_in addr = tcp_addr(host, port);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0)
        return Conn(fd);
    } else {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) throw_errno("socket");
      sockaddr_un addr = unix_addr(endpoint);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0)
        return Conn(fd);
    }
    const int saved = errno;
    ::close(fd);
    if ((saved != ECONNREFUSED && saved != ENOENT) || attempt + 1 >= kAttempts) {
      errno = saved;
      throw_errno("connect " + endpoint);
    }
    ::usleep(kRetryDelayUs);
  }
}

SocketPair make_socketpair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) throw_errno("socketpair");
  SocketPair sp;
  sp.parent = Conn(fds[0]);
  sp.child = Conn(fds[1]);
  return sp;
}

}  // namespace hidisc::serve
