// Deterministic network fault injection for the hiserve transport.
//
// A ChaosSpec ("SEED:SPEC", e.g. "7:drop@4x2,corrupt,split,stall=3")
// arms a FaultPlan; every connection wrapped in a FaultConn draws a
// FaultSchedule from it, with fault positions derived via splitmix64
// from (seed, connection ordinal) — campaigns replay bit-exactly from
// the seed alone.  Fault kinds:
//
//   drop[@N][xM]     close the connection when the Nth frame (counting
//                    both directions) crosses it; fires M times
//                    process-wide (default 1)
//   corrupt[@N][xM]  flip one byte of the Nth outbound frame's wire
//                    image (byte position and flip value seed-derived)
//   split            carve every outbound blocking send into 2-4 chunks
//                    with a scheduling gap, forcing receiver-side
//                    partial reads
//   stall[@N][=MS]   sleep MS ms before sending the Nth outbound frame
//                    (default 2 ms)
//   window=K         derived (unpinned) positions fall in [1, K]
//                    (default 8)
//
// Budgets are plan-global (atomics): once a fault kind is exhausted,
// later connections get it pass-through, so an adversarial run is
// guaranteed to converge to a clean completion.  A default-constructed
// FaultConn/FaultListener is an exact pass-through — the daemon and
// client use them unconditionally and pay one branch per frame when no
// chaos is armed.
//
// FaultConn also owns the bounded outbound write queue the daemon uses
// (queue_frame / flush_queue / queued_bytes), so slow-peer handling and
// fault injection live behind one connection surface.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "serve/transport.hpp"

namespace hidisc::serve {

struct ChaosSpec {
  std::uint64_t seed = 0;
  bool drop = false;
  std::uint64_t drop_at = 0;  // 0 = derive per connection
  std::uint32_t drop_budget = 1;
  bool corrupt = false;
  std::uint64_t corrupt_at = 0;
  std::uint32_t corrupt_budget = 1;
  bool split = false;
  bool stall = false;
  std::uint64_t stall_at = 0;
  int stall_ms = 2;
  std::uint64_t window = 8;
};

// Parses "SEED:SPEC"; throws std::runtime_error on a malformed spec.
[[nodiscard]] ChaosSpec parse_chaos_spec(const std::string& text);

// CLI value, falling back to the HIDISC_CHAOS_NET environment variable
// when `cli` is empty; nullopt = chaos off.
[[nodiscard]] std::optional<ChaosSpec> chaos_spec_from(const std::string& cli);

class FaultPlan;

// The per-connection schedule: concrete frame ordinals at which each
// armed fault fires.  All-zero (the default) is a pass-through.
struct FaultSchedule {
  std::uint64_t drop_at = 0;     // total frames (in+out), 1-based; 0 = off
  std::uint64_t corrupt_at = 0;  // outbound frame ordinal; 0 = off
  std::uint64_t corrupt_pos = 0; // draw for the byte position
  std::uint8_t corrupt_xor = 1;  // never zero, so the byte always changes
  bool split = false;
  std::uint64_t split_seed = 0;
  std::uint64_t stall_at = 0;    // outbound frame ordinal; 0 = off
  int stall_ms = 0;
  FaultPlan* plan = nullptr;     // budget + telemetry accounting
};

// Process-wide fault budgets and telemetry for one chaos campaign.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(const ChaosSpec& spec) { arm(spec); }

  // Arms (or re-arms) the plan; the atomics make FaultPlan itself
  // non-movable, so long-lived owners default-construct and arm later.
  void arm(const ChaosSpec& spec);

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  // Derives the next connection's schedule (and bumps the ordinal).
  [[nodiscard]] FaultSchedule next_schedule();

  // Budget withdrawal: true when the fault may fire (budget remained).
  [[nodiscard]] bool take_drop();
  [[nodiscard]] bool take_corrupt();
  void count_stall() { stalls_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] std::uint64_t conns() const { return conns_.load(); }
  [[nodiscard]] std::uint64_t drops_injected() const { return drops_.load(); }
  [[nodiscard]] std::uint64_t corruptions_injected() const {
    return corruptions_.load();
  }
  [[nodiscard]] std::uint64_t stalls_injected() const { return stalls_.load(); }

 private:
  ChaosSpec spec_;
  bool enabled_ = false;
  std::atomic<std::int64_t> drop_left_{0};
  std::atomic<std::int64_t> corrupt_left_{0};
  std::atomic<std::uint64_t> conns_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> corruptions_{0};
  std::atomic<std::uint64_t> stalls_{0};
};

// A Conn with a fault schedule in front of it.  Same surface as Conn
// plus the outbound write queue; every frame crossing it (either
// direction) advances the schedule.
class FaultConn {
 public:
  FaultConn() = default;
  explicit FaultConn(Conn c) : inner_(std::move(c)) {}
  FaultConn(Conn c, FaultSchedule s) : inner_(std::move(c)), sched_(s) {}
  FaultConn(FaultConn&&) noexcept = default;
  FaultConn& operator=(FaultConn&&) noexcept = default;

  [[nodiscard]] bool valid() const noexcept { return inner_.valid(); }
  [[nodiscard]] int fd() const noexcept { return inner_.fd(); }
  void close() { inner_.close(); }
  void set_nonblocking(bool nb) { inner_.set_nonblocking(nb); }

  // Blocking whole-frame send with faults applied; an injected drop
  // closes the fd and throws TransportError (like a real peer loss).
  void send_frame(const Frame& f);

  // Blocking receive; an injected drop after the received frame closes
  // the fd and throws TransportError.
  [[nodiscard]] std::optional<Frame> recv_frame();
  // Timeout-aware receive: nullopt with *timed_out=true when nothing
  // complete arrived within timeout_ms; otherwise recv_frame semantics.
  [[nodiscard]] std::optional<Frame> recv_frame_for(int timeout_ms,
                                                    bool* timed_out);

  // Poll-loop surface (daemon side): non-blocking reads into the
  // decoder, frame extraction (schedule-counted), and the bounded
  // outbound byte queue.
  [[nodiscard]] bool read_into_decoder() { return inner_.read_into_decoder(); }
  [[nodiscard]] std::optional<Frame> next_frame();

  // Appends the encoded frame (faults applied) to the outbound queue.
  // An injected drop closes the fd instead; callers observe !valid().
  void queue_frame(const Frame& f);
  // One non-blocking drain attempt; false when the peer is gone.
  [[nodiscard]] bool flush_queue();
  [[nodiscard]] std::size_t queued_bytes() const noexcept {
    return outq_.size();
  }
  // Best-effort blocking drain with a deadline (daemon exit path).
  void flush_blocking(int timeout_ms);

 private:
  // Applies outbound-schedule faults to `wire`; returns false when an
  // injected drop fires (fd closed by the caller contract).
  [[nodiscard]] bool apply_send_faults(std::string& wire);
  [[nodiscard]] bool crossed_drop();

  Conn inner_;
  FaultSchedule sched_;
  std::string outq_;
  std::uint64_t frames_out_ = 0;
  std::uint64_t frames_in_ = 0;
};

// Listener wrapper: accepted connections come back as FaultConns armed
// from the plan (pass-through when `plan` is null or disabled).
class FaultListener {
 public:
  FaultListener() = default;
  FaultListener(Listener l, FaultPlan* plan)
      : inner_(std::move(l)), plan_(plan) {}

  static FaultListener listen(const std::string& endpoint, FaultPlan* plan) {
    return FaultListener(Listener::listen(endpoint), plan);
  }

  [[nodiscard]] FaultConn accept();
  [[nodiscard]] int fd() const noexcept { return inner_.fd(); }
  void close() { inner_.close(); }
  void abandon() noexcept { inner_.abandon(); }

 private:
  Listener inner_;
  FaultPlan* plan_ = nullptr;
};

}  // namespace hidisc::serve
