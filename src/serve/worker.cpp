#include "serve/worker.hpp"

#include <stdexcept>

namespace hidisc::serve {

lab::ExperimentPlan materialize_plan(const PlanRequest& req) {
  workloads::Scale scale;
  if (req.scale == "paper") scale = workloads::Scale::Paper;
  else if (req.scale == "test") scale = workloads::Scale::Test;
  else throw std::runtime_error("hiserve: unknown scale '" + req.scale + "'");
  lab::ExperimentPlan plan = lab::make_plan(req.plan, scale);
  if (req.watchdog != 0 || req.lockstep)
    for (auto& cell : plan.cells) {
      if (req.watchdog != 0) cell.config.watchdog_cycles = req.watchdog;
      if (req.lockstep)
        cell.config.scheduler = machine::SchedulerKind::Lockstep;
    }
  return plan;
}

CellExecutor::CellExecutor(std::string cache_dir) {
  if (!cache_dir.empty()) {
    results_.emplace(cache_dir);
    traces_.emplace(cache_dir);
  }
  pipeline::Pipeline::Stores stores;
  stores.results = results_ ? &*results_ : nullptr;
  stores.traces = traces_ ? &*traces_ : nullptr;
  pipe_.emplace(stores);
}

CellExecutor::~CellExecutor() = default;

lab::CellResult CellExecutor::execute(const JobSpec& spec) {
  const lab::ExperimentPlan plan = materialize_plan(spec.plan);
  if (spec.cell >= plan.cells.size())
    throw std::out_of_range("hiserve: cell index out of range");

  // A single-cell node set, executed inline (no pool): the worker is the
  // parallelism unit, the daemon runs many of us.  The session memo and
  // the on-disk stores carry compile/trace artifacts across jobs.
  pipe_->set_refresh(spec.plan.refresh);
  const std::vector<lab::Cell> cells{plan.cells[spec.cell]};
  pipeline::Pipeline::Outcome outcome = pipe_->run(cells, nullptr);

  lab::CellResult out = std::move(outcome.cells.at(0));
  // Per-cell provenance is well-defined here — every node the run touched
  // was for this one cell — so connected clients can aggregate pipeline
  // stats by summing these over delivered cells (the daemon zeroes them
  // on dedup/memo deliveries to avoid double counting).
  out.compile_nodes_rebuilt =
      static_cast<std::uint32_t>(outcome.nodes.compile.rebuilt);
  out.trace_nodes_hit = static_cast<std::uint32_t>(outcome.nodes.trace.hits);
  out.trace_nodes_rebuilt =
      static_cast<std::uint32_t>(outcome.nodes.trace.rebuilt);
  return out;
}

int worker_main(Conn conn, const std::string& cache_dir) {
  CellExecutor exec(cache_dir);
  try {
    for (;;) {
      const auto frame = conn.recv_frame();
      if (!frame || frame->type == MsgType::Shutdown) return 0;
      if (frame->type == MsgType::Ping) {
        conn.send_frame(Frame{MsgType::Pong, ""});
        continue;
      }
      if (frame->type != MsgType::Job) continue;  // ignore strays
      const JobSpec spec = JobSpec::from_kv(kv_parse(frame->payload));
      const lab::CellResult res = exec.execute(spec);
      KvMap kv = cell_result_to_kv(res);
      kv["job"] = std::to_string(spec.job_id);
      conn.send_frame(Frame{MsgType::JobDone, kv_encode(kv)});
    }
  } catch (const std::exception&) {
    // Unreadable socket / daemon bug: die loudly, the daemon's
    // crash-retry machinery owns recovery.
    return 1;
  }
}

}  // namespace hidisc::serve
