#include "serve/worker.hpp"

#include <chrono>
#include <stdexcept>

#include "diag/deadlock.hpp"
#include "lab/fingerprint.hpp"
#include "machine/machine.hpp"
#include "sim/functional.hpp"

namespace hidisc::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

lab::ExperimentPlan materialize_plan(const PlanRequest& req) {
  workloads::Scale scale;
  if (req.scale == "paper") scale = workloads::Scale::Paper;
  else if (req.scale == "test") scale = workloads::Scale::Test;
  else throw std::runtime_error("hiserve: unknown scale '" + req.scale + "'");
  lab::ExperimentPlan plan = lab::make_plan(req.plan, scale);
  if (req.watchdog != 0 || req.lockstep)
    for (auto& cell : plan.cells) {
      if (req.watchdog != 0) cell.config.watchdog_cycles = req.watchdog;
      if (req.lockstep)
        cell.config.scheduler = machine::SchedulerKind::Lockstep;
    }
  return plan;
}

struct CellExecutor::Prep {
  compiler::Compilation comp;
  std::optional<std::string> error;  // compile failure, sticky
  // Traces are built lazily, once each, on the first cell that needs
  // them; a trace failure is sticky too (retrying is the daemon's call,
  // via a fresh worker).
  bool have_orig = false, have_sep = false;
  sim::Trace orig_trace, sep_trace;
  std::optional<std::string> error_orig, error_sep;
};

CellExecutor::CellExecutor(std::string cache_dir) {
  if (!cache_dir.empty()) cache_.emplace(std::move(cache_dir));
}

CellExecutor::~CellExecutor() = default;

CellExecutor::Prep& CellExecutor::prep_for(const lab::Cell& cell,
                                           lab::CellResult& out) {
  const std::string key = cell.workload.id() + "|" + lab::describe(cell.compile);
  auto it = preps_.find(key);
  if (it == preps_.end()) {
    auto prep = std::make_unique<Prep>();
    try {
      const workloads::BuiltWorkload w = cell.workload.build();
      prep->comp = compiler::compile(w.program, cell.compile);
    } catch (const std::exception& e) {
      prep->error = e.what();
    }
    it = preps_.emplace(key, std::move(prep)).first;
  }
  Prep& p = *it->second;
  if (p.error) {
    out.error = "prep " + cell.workload.name + " failed: " + *p.error;
    out.error_class = "prep";
  }
  return p;
}

lab::CellResult CellExecutor::execute(const JobSpec& spec) {
  const lab::ExperimentPlan plan = materialize_plan(spec.plan);
  const lab::Cell& cell = plan.cells.at(spec.cell);
  lab::CellResult out;

  Prep& prep = prep_for(cell, out);
  if (!out.ok()) return out;

  const bool sep = machine::uses_separated_binary(cell.preset);
  const isa::Program& binary = sep ? prep.comp.separated : prep.comp.original;
  out.key = lab::content_key(binary, cell.preset, cell.config);
  out.orig_dynamic_instructions = prep.comp.profile.dynamic_instructions;

  if (cache_ && !spec.plan.refresh) {
    if (auto hit = cache_->load(out.key)) {
      out.result = hit->result;
      out.orig_dynamic_instructions = hit->orig_dynamic_instructions;
      out.from_cache = true;
      return out;
    }
  }

  // Trace (lazy, memoized per prep).
  auto& have = sep ? prep.have_sep : prep.have_orig;
  auto& trace = sep ? prep.sep_trace : prep.orig_trace;
  auto& trace_err = sep ? prep.error_sep : prep.error_orig;
  if (!have && !trace_err) {
    try {
      sim::Functional f(binary);
      trace = f.run_trace(cell.compile.max_steps);
      have = true;
    } catch (const std::exception& e) {
      trace_err = e.what();
    }
  }
  if (trace_err) {
    out.error = "trace " + cell.workload.name + " failed: " + *trace_err;
    out.error_class = "trace";
    return out;
  }

  const auto start = Clock::now();
  try {
    out.result = machine::run_machine(binary, trace, cell.preset, cell.config);
  } catch (const diag::DeadlockError& e) {
    out.error = e.what();
    out.error_class =
        std::string("deadlock:") + diag::cause_name(e.report().cause);
    out.diagnostic_json = e.report().to_json();
    return out;
  } catch (const std::exception& e) {
    out.error = e.what();
    out.error_class = "sim";
    return out;
  }
  out.wall_ms = ms_since(start);
  if (out.wall_ms > 0.0)
    out.sim_cycles_per_sec =
        static_cast<double>(out.result.cycles) * 1000.0 / out.wall_ms;
  if (cache_)
    cache_->store(out.key,
                  lab::CacheEntry{out.result, cell.workload.name,
                                  machine::preset_name(cell.preset),
                                  out.orig_dynamic_instructions});
  return out;
}

int worker_main(Conn conn, const std::string& cache_dir) {
  CellExecutor exec(cache_dir);
  try {
    for (;;) {
      const auto frame = conn.recv_frame();
      if (!frame || frame->type == MsgType::Shutdown) return 0;
      if (frame->type != MsgType::Job) continue;  // ignore strays
      const JobSpec spec = JobSpec::from_kv(kv_parse(frame->payload));
      const lab::CellResult res = exec.execute(spec);
      KvMap kv = cell_result_to_kv(res);
      kv["job"] = std::to_string(spec.job_id);
      conn.send_frame(Frame{MsgType::JobDone, kv_encode(kv)});
    }
  } catch (const std::exception&) {
    // Unreadable socket / daemon bug: die loudly, the daemon's
    // crash-retry machinery owns recovery.
    return 1;
  }
}

}  // namespace hidisc::serve
