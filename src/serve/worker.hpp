// hiserve worker: one forked process running cells on the daemon's
// behalf.
//
// The loop is deliberately boring: recv Job frame -> execute the named
// plan cell -> send JobDone frame, until Shutdown or EOF.  All heavy
// state is process-local: the CellExecutor keeps one pipeline session
// (src/pipeline/) alive for its whole life, so compile and trace
// artifacts are content-addressed and shared across every job this
// worker ever runs — the same DAG the lab runner executes per plan,
// amortized across jobs — and it probes/publishes the shared on-disk
// ResultCache and TraceStore, whose advisory-locked atomic-rename
// stores make concurrent workers safe.
//
// Cell failures are data, not worker deaths: prep/trace/sim errors and
// classified deadlocks travel back in the JobDone error slots exactly as
// the lab runner's fault isolation fills them (DeadlockReport JSON
// verbatim).  Only infrastructure failure (unreadable socket, unknown
// plan name — a daemon bug, since the daemon validated it) aborts the
// worker, and the daemon's crash/retry machinery covers that.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "lab/plan.hpp"
#include "lab/result_cache.hpp"
#include "lab/runner.hpp"
#include "pipeline/executor.hpp"
#include "pipeline/trace_store.hpp"
#include "serve/protocol.hpp"
#include "serve/transport.hpp"

namespace hidisc::serve {

// Executes single cells through a persistent pipeline session (cross-job
// compile/trace artifact sharing).  Used by the worker loop; exposed for
// unit tests.
class CellExecutor {
 public:
  // `cache_dir` empty disables the persistent cache and trace store.
  explicit CellExecutor(std::string cache_dir);
  ~CellExecutor();

  // Runs one cell of (a fresh rebuild of) the referenced plan as a
  // single-node-set pipeline submission, and fills the CellResult's
  // pipeline provenance counters (compile/trace node work for this job).
  // Never throws for per-cell failures — they land in the error slots.
  // Throws std::out_of_range for an unknown plan name or cell index.
  [[nodiscard]] lab::CellResult execute(const JobSpec& spec);

 private:
  std::optional<lab::ResultCache> results_;
  std::optional<pipeline::TraceStore> traces_;
  std::optional<pipeline::Pipeline> pipe_;
};

// Rebuilds the plan a PlanRequest names and applies its overrides;
// shared by worker, daemon and client so all three see identical cells.
// Throws std::out_of_range for an unknown plan name and
// std::runtime_error for an unknown scale.
[[nodiscard]] lab::ExperimentPlan materialize_plan(const PlanRequest& req);

// The forked worker's entry point: serves jobs on `conn` until Shutdown
// or EOF.  Returns the process exit code (0 = clean shutdown).
int worker_main(Conn conn, const std::string& cache_dir);

}  // namespace hidisc::serve
