// hiserve worker: one forked process running cells on the daemon's
// behalf.
//
// The loop is deliberately boring: recv Job frame -> execute the named
// plan cell -> send JobDone frame, until Shutdown or EOF.  All heavy
// state is process-local: a CellExecutor memoizes compilations and
// functional traces by prep identity across jobs (the same memoization
// the lab runner does per plan, amortized across every job this worker
// ever runs), and probes/publishes the shared on-disk ResultCache, whose
// advisory-locked atomic-rename store makes concurrent workers safe.
//
// Cell failures are data, not worker deaths: prep/trace/sim errors and
// classified deadlocks travel back in the JobDone error slots exactly as
// the lab runner's fault isolation fills them (DeadlockReport JSON
// verbatim).  Only infrastructure failure (unreadable socket, unknown
// plan name — a daemon bug, since the daemon validated it) aborts the
// worker, and the daemon's crash/retry machinery covers that.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "lab/plan.hpp"
#include "lab/result_cache.hpp"
#include "lab/runner.hpp"
#include "serve/protocol.hpp"
#include "serve/transport.hpp"

namespace hidisc::serve {

// Executes single cells with cross-job prep memoization.  Used by the
// worker loop; exposed for unit tests.
class CellExecutor {
 public:
  // `cache_dir` empty disables the persistent cache.
  explicit CellExecutor(std::string cache_dir);
  ~CellExecutor();

  // Runs one cell of (a fresh rebuild of) the referenced plan.  Never
  // throws for per-cell failures — they land in the error slots.  Throws
  // std::out_of_range for an unknown plan name or cell index.
  [[nodiscard]] lab::CellResult execute(const JobSpec& spec);

 private:
  struct Prep;  // compilation + traces for one (workload, options) pair
  Prep& prep_for(const lab::Cell& cell, lab::CellResult& out);

  std::map<std::string, std::unique_ptr<Prep>> preps_;
  std::optional<lab::ResultCache> cache_;
};

// Rebuilds the plan a PlanRequest names and applies its overrides;
// shared by worker, daemon and client so all three see identical cells.
// Throws std::out_of_range for an unknown plan name and
// std::runtime_error for an unknown scale.
[[nodiscard]] lab::ExperimentPlan materialize_plan(const PlanRequest& req);

// The forked worker's entry point: serves jobs on `conn` until Shutdown
// or EOF.  Returns the process exit code (0 = clean shutdown).
int worker_main(Conn conn, const std::string& cache_dir);

}  // namespace hidisc::serve
