// Thin hiserve client: submit a named plan to a running daemon and get a
// lab::PlanRun back — the same shape lab::run_plan returns, so `hilab
// --connect` shares the table/JSON/CSV path with local mode and the
// acceptance criterion ("connected results bit-identical to local runs")
// is checkable with lab::results_identical.
//
// The client rebuilds the plan locally (plans are named registry
// entries; both ends materialize identical cells), streams CellDone
// frames into the right run slots as they arrive — any order, any
// interleaving with the other clients the daemon is serving — and
// finishes on PlanDone.  A daemon-side Error frame or transport failure
// throws; per-cell failures arrive in the error slots like local runs.
#pragma once

#include <functional>
#include <string>

#include "lab/plan.hpp"
#include "lab/runner.hpp"
#include "serve/protocol.hpp"

namespace hidisc::serve {

struct ClientOptions {
  std::string endpoint;  // unix path or tcp:HOST:PORT
  // Progress callback, same contract as lab::RunOptions::on_cell.
  std::function<void(const lab::Cell& cell, std::size_t done,
                     std::size_t total, bool from_cache)>
      on_cell;
};

struct ConnectedRun {
  lab::PlanRun run;          // indexed by cell, like lab::run_plan
  std::size_t dedup = 0;     // cells served by sharing another plan's job
  double server_wall_ms = 0; // daemon-side plan wall clock
};

// Submits `req` and blocks until the plan completes.  `plan` must be the
// client-side materialization of the same request (see
// materialize_plan); it provides cell count and progress labels.
// Throws std::runtime_error on daemon errors (unknown plan, draining)
// and TransportError/ProtocolError on connection problems.
[[nodiscard]] ConnectedRun run_plan_connected(const PlanRequest& req,
                                              const lab::ExperimentPlan& plan,
                                              const ClientOptions& opt);

// Fetches the daemon's service-stats JSON over a fresh connection.
[[nodiscard]] std::string fetch_service_stats(const std::string& endpoint);

}  // namespace hidisc::serve
