// Thin hiserve client: submit a named plan to a running daemon and get a
// lab::PlanRun back — the same shape lab::run_plan returns, so `hilab
// --connect` shares the table/JSON/CSV path with local mode and the
// acceptance criterion ("connected results bit-identical to local runs")
// is checkable with lab::results_identical.
//
// The client rebuilds the plan locally (plans are named registry
// entries; both ends materialize identical cells), streams CellDone
// frames into the right run slots as they arrive — any order, any
// interleaving with the other clients the daemon is serving — and
// finishes on PlanDone.  A daemon-side Error frame throws; per-cell
// failures arrive in the error slots like local runs.
//
// Connection loss is survivable (PR-9): the daemon issues a plan token
// with PlanAccepted, and on a transport or framing failure the client
// reconnects with bounded exponential backoff and re-attaches via
// ResumePlan.  Redelivered cells are deduplicated by a received-set, an
// unknown token (daemon finished the plan while we were away, or lost
// its journal) falls back to a fresh submit — warm cells return from
// the daemon's memo/cache — and Ping/Pong heartbeats distinguish a slow
// daemon from a dead one.  Only when the daemon was NEVER reachable does
// the client give up with ConnectError, which `hilab --connect` maps to
// its dedicated exit code.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "lab/plan.hpp"
#include "lab/runner.hpp"
#include "serve/protocol.hpp"

namespace hidisc::serve {

// The daemon could not be reached at all (refused/timed out before any
// handshake succeeded) — distinct from a mid-plan failure so callers can
// print a "is hiserved running?" hint and exit accordingly.
class ConnectError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ClientOptions {
  std::string endpoint;  // unix path or tcp:HOST:PORT
  // Progress callback, same contract as lab::RunOptions::on_cell.
  std::function<void(const lab::Cell& cell, std::size_t done,
                     std::size_t total, bool from_cache)>
      on_cell;
  // Client-side deterministic fault injection ("SEED:SPEC", see
  // serve/chaos.hpp); "" consults HIDISC_CHAOS_NET, unset = off.
  std::string chaos_net;
  // Reconnect-resume attempts after a connection failure (0 = fail on
  // the first loss); backoff is 50ms doubling, capped at 2s.
  int max_reconnects = 8;
  // Heartbeat cadence: after this much frame silence send a Ping...
  int heartbeat_ms = 2500;
  // ...and declare the daemon dead (triggering a reconnect) after this.
  int dead_after_ms = 15000;
};

struct ConnectedRun {
  lab::PlanRun run;          // indexed by cell, like lab::run_plan
  std::size_t dedup = 0;     // cells served by sharing another plan's job
  double server_wall_ms = 0; // daemon-side plan wall clock
  std::size_t reconnects = 0;  // connection losses survived
  std::size_t resumes = 0;     // successful ResumePlan re-attaches
  std::string token;           // daemon-issued plan token ("" = none)
};

// Submits `req` and blocks until the plan completes.  `plan` must be the
// client-side materialization of the same request (see
// materialize_plan); it provides cell count and progress labels.
// Throws std::runtime_error on daemon errors (unknown plan, draining)
// and TransportError/ProtocolError on connection problems.
[[nodiscard]] ConnectedRun run_plan_connected(const PlanRequest& req,
                                              const lab::ExperimentPlan& plan,
                                              const ClientOptions& opt);

// Fetches the daemon's service-stats JSON over a fresh connection.
[[nodiscard]] std::string fetch_service_stats(const std::string& endpoint);

}  // namespace hidisc::serve
