#include "serve/client.hpp"

#include <chrono>
#include <stdexcept>

#include "serve/transport.hpp"

namespace hidisc::serve {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_daemon_error(const Frame& f) {
  const KvMap kv = kv_parse(f.payload);
  std::string msg = "hiserve daemon: " + kv_get(kv, "message", "error");
  const std::string plans = kv_get(kv, "plans");
  if (!plans.empty()) msg += "\navailable plans: " + plans;
  throw std::runtime_error(msg);
}

Frame expect_frame(Conn& conn) {
  auto f = conn.recv_frame();
  if (!f)
    throw TransportError("hiserve client: daemon closed the connection");
  if (f->type == MsgType::Error) throw_daemon_error(*f);
  return std::move(*f);
}

Conn handshake(const std::string& endpoint) {
  Conn conn = connect_to(endpoint);
  conn.send_frame(Frame{MsgType::Hello,
                        kv_encode({{"proto",
                                    std::to_string(kProtocolVersion)}})});
  const Frame ok = expect_frame(conn);
  if (ok.type != MsgType::HelloOk)
    throw ProtocolError("hiserve client: expected HelloOk, got " +
                        std::string(msg_type_name(ok.type)));
  return conn;
}

}  // namespace

ConnectedRun run_plan_connected(const PlanRequest& req,
                                const lab::ExperimentPlan& plan,
                                const ClientOptions& opt) {
  const auto start = Clock::now();
  Conn conn = handshake(opt.endpoint);
  conn.send_frame(Frame{MsgType::SubmitPlan, kv_encode(req.to_kv())});

  const Frame accepted = expect_frame(conn);
  if (accepted.type != MsgType::PlanAccepted)
    throw ProtocolError("hiserve client: expected PlanAccepted, got " +
                        std::string(msg_type_name(accepted.type)));
  const std::size_t cells =
      kv_get_u64(kv_parse(accepted.payload), "cells");
  if (cells != plan.cells.size())
    throw std::runtime_error(
        "hiserve client: daemon materialized " + std::to_string(cells) +
        " cells for plan '" + req.plan + "' but this client built " +
        std::to_string(plan.cells.size()) +
        " — client/daemon plan registries disagree (version skew?)");

  ConnectedRun out;
  out.run.cells.resize(plan.cells.size());
  std::size_t done = 0;
  for (;;) {
    const Frame f = expect_frame(conn);
    if (f.type == MsgType::CellDone) {
      const KvMap kv = kv_parse(f.payload);
      const std::size_t idx = kv_get_u64(kv, "cell");
      if (idx >= out.run.cells.size())
        throw ProtocolError("hiserve client: cell index " +
                            std::to_string(idx) + " out of range");
      out.run.cells[idx] = cell_result_from_kv(kv);
      // The daemon marks dedup- and memo-served cells cached on the wire
      // even when the underlying job simulated (from another client's
      // submission); from_cache is the client-visible meaning.
      out.run.cells[idx].from_cache = kv_get(kv, "cached") == "1";
      if (kv_get(kv, "dedup") == "1") ++out.dedup;
      ++done;
      if (opt.on_cell)
        opt.on_cell(plan.cells[idx], done, plan.cells.size(),
                    out.run.cells[idx].from_cache);
      continue;
    }
    if (f.type == MsgType::PlanDone) {
      const KvMap kv = kv_parse(f.payload);
      out.run.simulated = kv_get_u64(kv, "simulated");
      out.run.cache_hits = kv_get_u64(kv, "cached");
      out.run.failed = kv_get_u64(kv, "failed");
      out.server_wall_ms = kv_get_double(kv, "wall_ms");
      break;
    }
    throw ProtocolError("hiserve client: unexpected frame " +
                        std::string(msg_type_name(f.type)));
  }
  if (done != plan.cells.size())
    throw std::runtime_error("hiserve client: plan finished after " +
                             std::to_string(done) + "/" +
                             std::to_string(plan.cells.size()) + " cells");

  out.run.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  // Aggregate simulator throughput over the cells this plan simulated,
  // same definition as lab::run_plan.
  double sim_ms = 0.0;
  std::uint64_t sim_cycles = 0;
  for (const auto& c : out.run.cells) {
    if (c.from_cache || !c.ok() || c.wall_ms <= 0.0) continue;
    sim_ms += c.wall_ms;
    sim_cycles += c.result.cycles;
  }
  if (sim_ms > 0.0)
    out.run.sim_cycles_per_sec =
        static_cast<double>(sim_cycles) * 1000.0 / sim_ms;
  // Reconstruct pipeline node stats: compile/trace work travels on the
  // wire per cell (zeroed by the daemon for dedup/memo deliveries, so
  // summing never double counts); the sim row is derivable locally from
  // the delivery flags.  Totals for compile/trace are unknowable here —
  // node sharing happens daemon-side — so they mirror the observed work.
  {
    pipeline::NodeStats& n = out.run.nodes;
    for (const auto& c : out.run.cells) {
      n.compile.rebuilt += c.compile_nodes_rebuilt;
      n.trace.hits += c.trace_nodes_hit;
      n.trace.rebuilt += c.trace_nodes_rebuilt;
      ++n.sim.total;
      if (!c.ok()) ++n.sim.failed;
      else if (c.from_cache) ++n.sim.hits;
      else ++n.sim.rebuilt;
    }
    n.compile.total = n.compile.hits + n.compile.rebuilt + n.compile.failed;
    n.trace.total = n.trace.hits + n.trace.rebuilt + n.trace.failed;
    out.run.preps = n.compile.rebuilt;
    out.run.traces = n.trace.rebuilt;
  }
  return out;
}

std::string fetch_service_stats(const std::string& endpoint) {
  Conn conn = handshake(endpoint);
  conn.send_frame(Frame{MsgType::GetStats, ""});
  const Frame f = expect_frame(conn);
  if (f.type != MsgType::Stats)
    throw ProtocolError("hiserve client: expected Stats, got " +
                        std::string(msg_type_name(f.type)));
  return f.payload;
}

}  // namespace hidisc::serve
