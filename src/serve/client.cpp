#include "serve/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <vector>

#include "serve/chaos.hpp"
#include "serve/transport.hpp"

namespace hidisc::serve {

namespace {

using Clock = std::chrono::steady_clock;

// Internal control-flow signal: the daemon rejected our ResumePlan
// (unknown token) and asked for a fresh submit.
class ResumeRejected : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

[[noreturn]] void throw_daemon_error(const Frame& f) {
  const KvMap kv = kv_parse(f.payload);
  std::string msg = "hiserve daemon: " + kv_get(kv, "message", "error");
  if (kv_get(kv, "code") == "resubmit") throw ResumeRejected(msg);
  const std::string plans = kv_get(kv, "plans");
  if (!plans.empty()) msg += "\navailable plans: " + plans;
  throw std::runtime_error(msg);
}

// Next frame of substance: Pings are answered, Pongs absorbed, Error
// frames thrown.  Frame silence is heartbeated — after heartbeat_ms we
// Ping, after dead_after_ms of total silence the daemon is declared
// dead (TransportError, which the reconnect loop owns).
Frame expect_stream(FaultConn& conn, const ClientOptions& opt) {
  const int beat = opt.heartbeat_ms > 0 ? opt.heartbeat_ms : 2500;
  const int dead_after = std::max(opt.dead_after_ms, beat);
  int silent_ms = 0;
  auto last_send = Clock::now();
  const auto ping = [&] {
    conn.send_frame(Frame{MsgType::Ping, ""});
    last_send = Clock::now();
  };
  for (;;) {
    // Keep the *outbound* heartbeat going even while the daemon is
    // streaming: the daemon reaps clients on inbound silence, and a
    // client that only receives would look dead to it.
    if (std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                              last_send)
            .count() >= beat)
      ping();
    bool timed_out = false;
    auto f = conn.recv_frame_for(beat, &timed_out);
    if (timed_out) {
      silent_ms += beat;
      if (silent_ms >= dead_after)
        throw TransportError("hiserve client: daemon silent for " +
                             std::to_string(silent_ms) + " ms");
      ping();
      continue;
    }
    if (!f)
      throw TransportError("hiserve client: daemon closed the connection");
    silent_ms = 0;
    if (f->type == MsgType::Pong) continue;
    if (f->type == MsgType::Ping) {
      conn.send_frame(Frame{MsgType::Pong, ""});
      continue;
    }
    if (f->type == MsgType::Error) throw_daemon_error(*f);
    return std::move(*f);
  }
}

FaultConn handshake(const ClientOptions& opt, FaultPlan* chaos) {
  Conn raw = connect_to(opt.endpoint);
  FaultConn conn = (chaos && chaos->enabled())
                       ? FaultConn(std::move(raw), chaos->next_schedule())
                       : FaultConn(std::move(raw));
  conn.send_frame(Frame{MsgType::Hello,
                        kv_encode({{"proto",
                                    std::to_string(kProtocolVersion)}})});
  const Frame ok = expect_stream(conn, opt);
  if (ok.type != MsgType::HelloOk)
    throw ProtocolError("hiserve client: expected HelloOk, got " +
                        std::string(msg_type_name(ok.type)));
  return conn;
}

}  // namespace

ConnectedRun run_plan_connected(const PlanRequest& req,
                                const lab::ExperimentPlan& plan,
                                const ClientOptions& opt) {
  const auto start = Clock::now();
  FaultPlan chaos;
  if (const auto spec = chaos_spec_from(opt.chaos_net)) chaos.arm(*spec);

  ConnectedRun out;
  out.run.cells.resize(plan.cells.size());
  std::vector<char> got(plan.cells.size(), 0);  // received-set: dedups
                                                // resume redeliveries
  std::size_t done = 0;
  bool ever_connected = false;
  bool finished = false;
  int attempts = 0;

  while (!finished) {
    try {
      FaultConn conn = handshake(opt, &chaos);
      ever_connected = true;

      // Re-attach by token when we have one; a rejected resume falls
      // back to a fresh submit (warm cells return from the memo/cache).
      bool attached = false;
      if (!out.token.empty()) {
        conn.send_frame(Frame{MsgType::ResumePlan,
                              kv_encode({{"token", out.token}})});
        try {
          const Frame f = expect_stream(conn, opt);
          if (f.type != MsgType::ResumeOk)
            throw ProtocolError("hiserve client: expected ResumeOk, got " +
                                std::string(msg_type_name(f.type)));
          attached = true;
          ++out.resumes;
        } catch (const ResumeRejected&) {
          out.token.clear();
        }
      }
      if (!attached) {
        conn.send_frame(Frame{MsgType::SubmitPlan, kv_encode(req.to_kv())});
        const Frame accepted = expect_stream(conn, opt);
        if (accepted.type != MsgType::PlanAccepted)
          throw ProtocolError("hiserve client: expected PlanAccepted, got " +
                              std::string(msg_type_name(accepted.type)));
        const KvMap akv = kv_parse(accepted.payload);
        const std::size_t cells = kv_get_u64(akv, "cells");
        if (cells != plan.cells.size())
          throw std::runtime_error(
              "hiserve client: daemon materialized " + std::to_string(cells) +
              " cells for plan '" + req.plan + "' but this client built " +
              std::to_string(plan.cells.size()) +
              " — client/daemon plan registries disagree (version skew?)");
        out.token = kv_get(akv, "token");
      }

      for (;;) {
        const Frame f = expect_stream(conn, opt);
        if (f.type == MsgType::CellDone) {
          const KvMap kv = kv_parse(f.payload);
          const std::size_t idx = kv_get_u64(kv, "cell");
          if (idx >= out.run.cells.size())
            throw ProtocolError("hiserve client: cell index " +
                                std::to_string(idx) + " out of range");
          if (got[idx]) continue;  // resume redelivery of a cell we have
          got[idx] = 1;
          out.run.cells[idx] = cell_result_from_kv(kv);
          // The daemon marks dedup- and memo-served cells cached on the
          // wire even when the underlying job simulated (from another
          // client's submission); from_cache is the client-visible
          // meaning.
          out.run.cells[idx].from_cache = kv_get(kv, "cached") == "1";
          if (kv_get(kv, "dedup") == "1") ++out.dedup;
          ++done;
          if (opt.on_cell)
            opt.on_cell(plan.cells[idx], done, plan.cells.size(),
                        out.run.cells[idx].from_cache);
          continue;
        }
        if (f.type == MsgType::PlanDone) {
          const KvMap kv = kv_parse(f.payload);
          out.run.simulated = kv_get_u64(kv, "simulated");
          out.run.cache_hits = kv_get_u64(kv, "cached");
          out.run.failed = kv_get_u64(kv, "failed");
          out.server_wall_ms = kv_get_double(kv, "wall_ms");
          finished = true;
          break;
        }
        throw ProtocolError("hiserve client: unexpected frame " +
                            std::string(msg_type_name(f.type)));
      }
    } catch (const TransportError& e) {
      if (attempts >= opt.max_reconnects) {
        if (!ever_connected)
          throw ConnectError("hiserve client: cannot reach daemon at " +
                             opt.endpoint + ": " + e.what());
        throw;
      }
      ++attempts;
      ++out.reconnects;
      const int backoff_ms =
          std::min(50 << std::min(attempts - 1, 10), 2000);
      ::usleep(static_cast<useconds_t>(backoff_ms) * 1000);
    } catch (const ProtocolError&) {
      // Framing corruption (a chaos-injected bit flip, a garbled
      // stream): the decoder is poisoned, so the connection is useless —
      // reconnect like a transport loss.  Semantic protocol breaches
      // (wrong frame type, bad cell index) reconnect too; if the daemon
      // truly misbehaves the attempt budget bounds the damage.
      if (attempts >= opt.max_reconnects) throw;
      ++attempts;
      ++out.reconnects;
      const int backoff_ms =
          std::min(50 << std::min(attempts - 1, 10), 2000);
      ::usleep(static_cast<useconds_t>(backoff_ms) * 1000);
    }
  }
  if (done != plan.cells.size())
    throw std::runtime_error("hiserve client: plan finished after " +
                             std::to_string(done) + "/" +
                             std::to_string(plan.cells.size()) + " cells");

  out.run.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  // Aggregate simulator throughput over the cells this plan simulated,
  // same definition as lab::run_plan.
  double sim_ms = 0.0;
  std::uint64_t sim_cycles = 0;
  for (const auto& c : out.run.cells) {
    if (c.from_cache || !c.ok() || c.wall_ms <= 0.0) continue;
    sim_ms += c.wall_ms;
    sim_cycles += c.result.cycles;
  }
  if (sim_ms > 0.0)
    out.run.sim_cycles_per_sec =
        static_cast<double>(sim_cycles) * 1000.0 / sim_ms;
  // Reconstruct pipeline node stats: compile/trace work travels on the
  // wire per cell (zeroed by the daemon for dedup/memo deliveries, so
  // summing never double counts); the sim row is derivable locally from
  // the delivery flags.  Totals for compile/trace are unknowable here —
  // node sharing happens daemon-side — so they mirror the observed work.
  {
    pipeline::NodeStats& n = out.run.nodes;
    for (const auto& c : out.run.cells) {
      n.compile.rebuilt += c.compile_nodes_rebuilt;
      n.trace.hits += c.trace_nodes_hit;
      n.trace.rebuilt += c.trace_nodes_rebuilt;
      ++n.sim.total;
      if (!c.ok()) ++n.sim.failed;
      else if (c.from_cache) ++n.sim.hits;
      else ++n.sim.rebuilt;
    }
    n.compile.total = n.compile.hits + n.compile.rebuilt + n.compile.failed;
    n.trace.total = n.trace.hits + n.trace.rebuilt + n.trace.failed;
    out.run.preps = n.compile.rebuilt;
    out.run.traces = n.trace.rebuilt;
  }
  return out;
}

std::string fetch_service_stats(const std::string& endpoint) {
  ClientOptions opt;
  opt.endpoint = endpoint;
  FaultConn conn = handshake(opt, nullptr);
  conn.send_frame(Frame{MsgType::GetStats, ""});
  const Frame f = expect_stream(conn, opt);
  if (f.type != MsgType::Stats)
    throw ProtocolError("hiserve client: expected Stats, got " +
                        std::string(msg_type_name(f.type)));
  return f.payload;
}

}  // namespace hidisc::serve
