#include "diag/quarantine.hpp"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <sstream>

namespace hidisc::diag {

std::string quarantine_path_for(const std::string& path) {
  static std::atomic<unsigned> counter{0};
  std::ostringstream dest;
  dest << path << ".corrupt." << ::getpid() << '.'
       << counter.fetch_add(1, std::memory_order_relaxed);
  return dest.str();
}

std::string quarantine_file(const std::string& path) {
  const std::string dest = quarantine_path_for(path);
  std::error_code ec;
  std::filesystem::rename(path, dest, ec);
  return ec ? std::string() : dest;
}

}  // namespace hidisc::diag
