#include "diag/process.hpp"

#include <cstdio>
#include <cstring>
#include <sys/wait.h>

namespace hidisc::diag {

ChildExit decode_wait_status(int status) noexcept {
  ChildExit e;
  if (WIFEXITED(status)) {
    e.kind = ChildExitKind::Exited;
    e.code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    e.kind = ChildExitKind::Signaled;
    e.code = WTERMSIG(status);
  }
  return e;
}

std::string describe_wait_status(int status) {
  const ChildExit e = decode_wait_status(status);
  char buf[64];
  switch (e.kind) {
    case ChildExitKind::Exited:
      std::snprintf(buf, sizeof buf, "exit %d", e.code);
      return buf;
    case ChildExitKind::Signaled: {
      const char* name = strsignal(e.code);
      std::snprintf(buf, sizeof buf, "signal %d (%s)", e.code,
                    name ? name : "?");
      return buf;
    }
    case ChildExitKind::Unknown:
      break;
  }
  std::snprintf(buf, sizeof buf, "unknown status 0x%x", status);
  return buf;
}

}  // namespace hidisc::diag
