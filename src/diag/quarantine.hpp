// Forensic quarantine naming, shared by every corruption-tolerant store
// (result cache, trace store, hiserve job journal): a damaged file or
// file tail is moved aside under a unique name instead of being deleted,
// so the specimen survives for triage while the store recovers.
//
// Uniqueness matters: with several processes sharing a directory, a
// fixed `<path>.corrupt` destination would let a second quarantine
// clobber the first one's evidence (or race its rename).  pid plus a
// process-local counter keeps every specimen.
#pragma once

#include <string>

namespace hidisc::diag {

// "<path>.corrupt.<pid>.<n>" with a fresh n per call.
[[nodiscard]] std::string quarantine_path_for(const std::string& path);

// Best-effort rename of `path` to a fresh quarantine name; returns the
// destination ("" when the rename failed).
std::string quarantine_file(const std::string& path);

}  // namespace hidisc::diag
