// Child-process exit forensics, shared by the hiserve daemon (worker
// crash classification feeding retry decisions and service stats) and by
// anything else that reaps children.
//
// Same philosophy as the DeadlockReport: turn a raw wait(2) status into
// a classified, human-readable record instead of a magic integer, so the
// daemon's "worker died" log line and the retry policy both speak the
// same language.
#pragma once

#include <cstdint>
#include <string>

namespace hidisc::diag {

enum class ChildExitKind : std::uint8_t {
  Exited,    // normal _exit; code in `code`
  Signaled,  // killed by a signal; signal number in `code`
  Unknown,   // wait status we cannot decode
};

struct ChildExit {
  ChildExitKind kind = ChildExitKind::Unknown;
  int code = 0;  // exit code or signal number

  // True for deaths that look like infrastructure (signal, nonzero
  // exit) rather than an orderly shutdown.
  [[nodiscard]] bool crashed() const noexcept {
    return kind != ChildExitKind::Exited || code != 0;
  }
};

// Decodes a waitpid(2) status.
[[nodiscard]] ChildExit decode_wait_status(int status) noexcept;

// "exit 0" / "exit 3" / "signal 9 (SIGKILL)" / "unknown status 0x7f".
[[nodiscard]] std::string describe_wait_status(int status);

}  // namespace hidisc::diag
