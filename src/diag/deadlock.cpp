#include "diag/deadlock.hpp"

#include <sstream>

namespace hidisc::diag {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const QueueSnapshot* find_queue(const DeadlockReport& rep,
                                const std::string& name) {
  for (const auto& q : rep.queues)
    if (q.name == name) return &q;
  return nullptr;
}

}  // namespace

DeadlockCause classify(DeadlockReport& rep) {
  // 1. Queue-full cycle: a producer's completed queue write cannot drain
  // because the queue is at capacity — the consumer side never pops, so
  // capacity can never free up (the sequential batch-overflow layout the
  // verifier rejects, and any dropped-pop separator bug).
  for (const auto& c : rep.cores) {
    if (!c.has_stall || c.why != StallWhy::PushFull) continue;
    const QueueSnapshot* q = find_queue(rep, c.queue);
    std::ostringstream os;
    os << c.name << " cannot drain its " << c.queue << " write ('" << c.op
       << "' at trace " << c.trace_pos << "): " << c.queue << " is full";
    if (q != nullptr)
      os << " (" << q->size << "/" << q->capacity << ", " << q->pushes
         << " pushes vs " << q->pops << " pops)";
    os << " and its consumer never pops";
    rep.cause = DeadlockCause::QueueFullCycle;
    rep.cause_detail = os.str();
    return rep.cause;
  }

  // 2. EOD mismatch: a BEOD guard waits for an End-Of-Data token on an
  // empty queue — the producer finished without a PUTEOD (or the counts
  // disagree), so the guard can never resolve.
  for (const auto& c : rep.cores) {
    if (!c.has_stall || c.why != StallWhy::PopEmpty) continue;
    if (c.op != "beod") continue;
    const QueueSnapshot* q = find_queue(rep, c.queue);
    std::ostringstream os;
    os << c.name << " 'beod' at trace " << c.trace_pos
       << " waits for an EOD token on empty " << c.queue;
    if (q != nullptr)
      os << " (" << q->pushes << " pushes, " << q->pops << " pops)";
    os << "; the producer never signalled end-of-data";
    rep.cause = DeadlockCause::EodMismatch;
    rep.cause_detail = os.str();
    return rep.cause;
  }

  // 3. Cross-stream imbalance: a consumer pops an empty queue whose
  // producer side has nothing left to push (dropped push annotation,
  // or plain pop-count > push-count in hand-decoupled code).
  for (const auto& c : rep.cores) {
    if (!c.has_stall || c.why != StallWhy::PopEmpty) continue;
    const QueueSnapshot* q = find_queue(rep, c.queue);
    std::ostringstream os;
    os << c.name << " '" << c.op << "' at trace " << c.trace_pos
       << " pops empty " << c.queue;
    if (q != nullptr)
      os << " (" << q->pushes << " pushes already consumed by " << q->pops
         << " pops)";
    os << "; the producer stream has no pending push for it";
    rep.cause = DeadlockCause::CrossStreamImbalance;
    rep.cause_detail = os.str();
    return rep.cause;
  }

  // 4. No pending event: the event set is empty and no core reports a
  // queue-level stall — the machine is wedged in a state no timed event
  // can ever change (e.g. the front end waits on something that already
  // drained away).
  if (rep.no_pending_event) {
    std::ostringstream os;
    os << "no timed event anywhere and no queue-level stall; fetched "
       << rep.fetch_pos << "/" << rep.trace_size
       << (rep.fetch_blocked ? ", front end blocked" : "") << ", "
       << rep.cmp_contexts_active << " CMP contexts active";
    rep.cause = DeadlockCause::NoPendingEvent;
    rep.cause_detail = os.str();
    return rep.cause;
  }

  // Unknown — but say what the heads were doing; an in-flight head with
  // the watchdog fired usually means the threshold is too tight for the
  // configured memory latency, not a protocol bug.
  std::ostringstream os;
  bool in_flight = false;
  for (const auto& c : rep.cores)
    if (c.has_stall && c.why == StallWhy::InFlight) {
      if (in_flight) os << "; ";
      os << c.name << " '" << c.op << "' still in flight";
      in_flight = true;
    }
  if (in_flight)
    os << " — watchdog_cycles may be too tight for this memory latency";
  else
    os << "no classified stall pattern matched";
  rep.cause = DeadlockCause::Unknown;
  rep.cause_detail = os.str();
  return rep.cause;
}

std::string DeadlockReport::summary() const {
  std::ostringstream os;
  os << "machine deadlock: no progress since cycle " << last_progress_cycle
     << " (preset " << preset << ", fetched " << fetch_pos << "/"
     << trace_size << "): " << cause_name(cause);
  if (!cause_detail.empty()) os << " — " << cause_detail;
  return os.str();
}

std::string DeadlockReport::to_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"kind\": \"deadlock\",\n"
     << "  \"preset\": \"" << escape(preset) << "\",\n"
     << "  \"scheduler\": \"" << escape(scheduler) << "\",\n"
     << "  \"cause\": \"" << cause_name(cause) << "\",\n"
     << "  \"cause_detail\": \"" << escape(cause_detail) << "\",\n"
     << "  \"now\": " << now << ",\n"
     << "  \"last_progress_cycle\": " << last_progress_cycle << ",\n"
     << "  \"watchdog_cycles\": " << watchdog_cycles << ",\n"
     << "  \"no_pending_event\": " << (no_pending_event ? "true" : "false")
     << ",\n"
     << "  \"fetch\": {\"pos\": " << fetch_pos << ", \"trace_size\": "
     << trace_size << ", \"blocked\": " << (fetch_blocked ? "true" : "false")
     << ", \"pending_branch_pos\": " << pending_branch_pos
     << ", \"cmp_contexts_active\": " << cmp_contexts_active << "},\n";
  os << "  \"queues\": [\n";
  for (std::size_t i = 0; i < queues.size(); ++i) {
    const QueueSnapshot& q = queues[i];
    os << "    {\"name\": \"" << escape(q.name) << "\", \"size\": " << q.size
       << ", \"capacity\": " << q.capacity << ", \"pushes\": " << q.pushes
       << ", \"pops\": " << q.pops << ", \"has_head\": "
       << (q.has_head ? "true" : "false");
    if (q.has_head)
      os << ", \"head_ready\": " << q.head_ready << ", \"head_producer\": "
         << q.head_producer << ", \"head_eod\": "
         << (q.head_eod ? "true" : "false");
    os << '}' << (i + 1 < queues.size() ? "," : "") << '\n';
  }
  os << "  ],\n  \"cores\": [\n";
  for (std::size_t i = 0; i < cores.size(); ++i) {
    const CoreSnapshot& c = cores[i];
    os << "    {\"name\": \"" << escape(c.name) << "\", \"drained\": "
       << (c.drained ? "true" : "false") << ", \"window\": " << c.window
       << ", \"window_capacity\": " << c.window_capacity
       << ", \"input\": " << c.input << ", \"input_capacity\": "
       << c.input_capacity << ", \"has_stall\": "
       << (c.has_stall ? "true" : "false");
    if (c.has_stall)
      os << ", \"why\": \"" << stall_why_name(c.why) << "\", \"op\": \""
         << escape(c.op) << "\", \"static_idx\": " << c.static_idx
         << ", \"trace_pos\": " << c.trace_pos << ", \"queue\": \""
         << escape(c.queue) << "\"";
    os << '}' << (i + 1 < cores.size() ? "," : "") << '\n';
  }
  os << "  ],\n  \"recent\": [\n";
  for (std::size_t i = 0; i < recent.size(); ++i) {
    const StepRecord& r = recent[i];
    os << "    {\"cycle\": " << r.cycle << ", \"kind\": \""
       << step_kind_name(r.kind) << "\", \"arg\": " << r.arg
       << ", \"fetch_pos\": " << r.fetch_pos << ", \"ldq\": " << r.ldq
       << ", \"sdq\": " << r.sdq << ", \"scq\": " << r.scq
       << ", \"window\": [" << r.window[0] << ", " << r.window[1] << ", "
       << r.window[2] << ", " << r.window[3] << "]}"
       << (i + 1 < recent.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
  return os.str();
}

std::string DeadlockReport::to_text() const {
  std::ostringstream os;
  os << summary() << "\n\n";
  os << "scheduler " << scheduler << ", watchdog " << watchdog_cycles
     << " cycles, stuck at cycle " << now
     << (no_pending_event ? " (no pending event)" : "") << "\n";
  os << "front end: fetched " << fetch_pos << "/" << trace_size
     << (fetch_blocked ? ", blocked" : "");
  if (pending_branch_pos >= 0)
    os << " on branch at trace " << pending_branch_pos;
  if (cmp_contexts_active > 0)
    os << "; " << cmp_contexts_active << " CMP contexts active";
  os << "\n\nqueues:\n";
  for (const auto& q : queues) {
    os << "  " << q.name << "  " << q.size << "/" << q.capacity
       << " occupied, " << q.pushes << " pushes / " << q.pops << " pops";
    if (q.has_head)
      os << "; head ready at cycle " << q.head_ready << " from trace "
         << q.head_producer << (q.head_eod ? " [EOD]" : "");
    os << "\n";
  }
  os << "\ncores:\n";
  for (const auto& c : cores) {
    os << "  " << c.name << "  window " << c.window << "/"
       << c.window_capacity << ", input " << c.input << "/"
       << c.input_capacity;
    if (c.drained) {
      os << "  (drained)";
    } else if (c.has_stall) {
      os << "  oldest op '" << c.op << "' (static " << c.static_idx
         << ", trace " << c.trace_pos << ") " << stall_why_name(c.why);
      if (!c.queue.empty()) os << " on " << c.queue;
    }
    os << "\n";
  }
  if (!recent.empty()) {
    os << "\nlast " << recent.size() << " recorded transitions:\n";
    for (const auto& r : recent) {
      os << "  cycle " << r.cycle << "  " << step_kind_name(r.kind);
      if (r.kind == StepKind::Skip) os << " +" << r.arg;
      os << "  fetch " << r.fetch_pos << "  LDQ " << r.ldq << " SDQ "
         << r.sdq << " SCQ " << r.scq << "  win [" << r.window[0] << " "
         << r.window[1] << " " << r.window[2] << " " << r.window[3]
         << "]\n";
    }
  }
  return os.str();
}

}  // namespace hidisc::diag
