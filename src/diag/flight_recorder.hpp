// Always-on bounded flight recorder for the timing machines.
//
// A fixed-size ring buffer of the most recent scheduler / queue / fetch
// transitions, written on every event step of `Machine::run` and read
// only after a failure: the DeadlockReport attaches the tail so a
// watchdog abort carries the machine's last moves, not just its final
// frozen state.  Recording is a single struct store into a preallocated
// power-of-two ring — cheap enough to stay enabled in every run (the
// perf-smoke CI gate holds the event-skip throughput within its band
// with the recorder on).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hidisc::diag {

enum class StepKind : std::uint8_t {
  Progress,     // the step changed machine state
  Stall,        // nothing progressed this step
  Skip,         // fast-forward jump; arg = cycles skipped
  FetchBlock,   // front end blocked (branch or I-fetch); arg = trace pos
  FetchResume,  // front end unblocked
  Deadlock,     // the watchdog fired at this cycle
};

[[nodiscard]] constexpr const char* step_kind_name(StepKind k) noexcept {
  switch (k) {
    case StepKind::Progress: return "progress";
    case StepKind::Stall: return "stall";
    case StepKind::Skip: return "skip";
    case StepKind::FetchBlock: return "fetch-block";
    case StepKind::FetchResume: return "fetch-resume";
    case StepKind::Deadlock: return "deadlock";
  }
  return "?";
}

// One transition.  Queue/window occupancies are sampled at record time so
// a replayed tail shows how traffic drained (or stopped draining) in the
// run-up to a failure.
struct StepRecord {
  std::uint64_t cycle = 0;
  StepKind kind = StepKind::Progress;
  std::uint64_t arg = 0;       // Skip: delta; FetchBlock: trace position
  std::uint64_t fetch_pos = 0;
  std::uint16_t ldq = 0, sdq = 0, scq = 0;  // queue occupancies
  std::uint16_t window[4] = {0, 0, 0, 0};   // main/CP, AP, CMP occupancy
};

class FlightRecorder {
 public:
  // `depth` is rounded up to a power of two (minimum 16).
  explicit FlightRecorder(std::size_t depth) {
    std::size_t cap = 16;
    while (cap < depth) cap <<= 1;
    ring_.resize(cap);
    mask_ = cap - 1;
  }

  void record(const StepRecord& r) noexcept {
    ring_[static_cast<std::size_t>(written_) & mask_] = r;
    ++written_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  // Total records ever written (>= capacity() means the ring has wrapped).
  [[nodiscard]] std::uint64_t recorded() const noexcept { return written_; }

  // The retained tail, oldest first.
  [[nodiscard]] std::vector<StepRecord> snapshot() const {
    const std::uint64_t n =
        written_ < ring_.size() ? written_ : ring_.size();
    std::vector<StepRecord> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = written_ - n; i < written_; ++i)
      out.push_back(ring_[static_cast<std::size_t>(i) & mask_]);
    return out;
  }

 private:
  std::vector<StepRecord> ring_;
  std::size_t mask_ = 0;
  std::uint64_t written_ = 0;
};

}  // namespace hidisc::diag
