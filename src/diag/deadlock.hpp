// Structured deadlock forensics for the timing machines.
//
// When `Machine::run`'s watchdog fires it no longer throws a bare string:
// it assembles a `DeadlockReport` — queue occupancies and head-ready
// times for the LDQ/SDQ/SCQ, per-core window/input occupancy with the
// oldest stalled op and its stall reason, the front end's position, and
// the tail of the flight recorder — classifies the root cause, and
// throws it as a typed `DeadlockError`.  The report serializes to JSON
// (machine triage: CI artifacts, hilab cell diagnostics) and to
// human-readable text (`hisa sim` prints it on stderr).
//
// The report is plain data: building it is the machine's job
// (machine/machine.cpp), consuming it needs nothing but this header.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "diag/flight_recorder.hpp"

namespace hidisc::diag {

// Root-cause classes, in the order classify() tests them.
enum class DeadlockCause : std::uint8_t {
  QueueFullCycle,        // a full architectural queue wedges its producer
  EodMismatch,           // BEOD waits for an EOD token that never comes
  CrossStreamImbalance,  // a consumer pops more than its producer pushed
  NoPendingEvent,        // wedged with no stalled op and no timed event
  Unknown,
};

[[nodiscard]] constexpr const char* cause_name(DeadlockCause c) noexcept {
  switch (c) {
    case DeadlockCause::QueueFullCycle: return "queue-full-cycle";
    case DeadlockCause::EodMismatch: return "eod-mismatch";
    case DeadlockCause::CrossStreamImbalance:
      return "cross-stream-imbalance";
    case DeadlockCause::NoPendingEvent: return "no-pending-event";
    case DeadlockCause::Unknown: return "unknown";
  }
  return "?";
}

// Why a core's oldest in-flight op cannot move.  Mirrors the issue gates
// of uarch::OoOCore (core.cpp do_issue / do_commit).
enum class StallWhy : std::uint8_t {
  None,          // core drained, or nothing blocking (should not deadlock)
  InFlight,      // oldest op issued, completion still pending (timed)
  PopEmpty,      // needs a queue pop; the queue is empty
  PopNotReady,   // queue has data whose ready time is in the future (timed)
  PushFull,      // completed, but its queue write finds the queue full
  Sources,       // register producer in-window has not completed
  FuBusy,        // ready, but no functional unit / memory port
  MemDisambig,   // load waiting on an older overlapping store
  Dispatch,      // stuck moving input queue -> window
};

[[nodiscard]] constexpr const char* stall_why_name(StallWhy w) noexcept {
  switch (w) {
    case StallWhy::None: return "none";
    case StallWhy::InFlight: return "in-flight";
    case StallWhy::PopEmpty: return "pop-empty";
    case StallWhy::PopNotReady: return "pop-not-ready";
    case StallWhy::PushFull: return "push-full";
    case StallWhy::Sources: return "sources";
    case StallWhy::FuBusy: return "fu-busy";
    case StallWhy::MemDisambig: return "mem-disambig";
    case StallWhy::Dispatch: return "dispatch";
  }
  return "?";
}

struct QueueSnapshot {
  std::string name;  // "LDQ" / "SDQ" / "SCQ"
  std::size_t size = 0;
  std::size_t capacity = 0;
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  bool has_head = false;
  std::uint64_t head_ready = 0;    // cycle the head becomes consumable
  std::int64_t head_producer = -1; // trace position of the head's producer
  bool head_eod = false;
};

struct CoreSnapshot {
  std::string name;  // "SS" / "CP" / "AP" / "CMP"
  bool drained = false;
  std::size_t window = 0;
  std::size_t window_capacity = 0;
  std::size_t input = 0;
  std::size_t input_capacity = 0;
  // The oldest op that cannot move, when one exists.
  bool has_stall = false;
  StallWhy why = StallWhy::None;
  std::string op;             // mnemonic of the stalled op
  std::int32_t static_idx = -1;
  std::int64_t trace_pos = -1;
  std::string queue;          // queue involved in a pop/push stall, if any
};

struct DeadlockReport {
  std::string preset;
  std::string scheduler;            // "EventSkip" / "Lockstep"
  std::uint64_t now = 0;
  std::uint64_t last_progress_cycle = 0;
  std::uint64_t watchdog_cycles = 0;
  bool no_pending_event = false;    // detected via an empty event set
  // Front end / separator position.
  std::uint64_t fetch_pos = 0;
  std::uint64_t trace_size = 0;
  bool fetch_blocked = false;
  std::int64_t pending_branch_pos = -1;
  std::size_t cmp_contexts_active = 0;

  std::vector<QueueSnapshot> queues;  // LDQ, SDQ, SCQ in that order
  std::vector<CoreSnapshot> cores;    // present cores only

  DeadlockCause cause = DeadlockCause::Unknown;
  std::string cause_detail;           // one sentence of evidence

  std::vector<StepRecord> recent;     // flight-recorder tail, oldest first

  // One line: "machine deadlock: no progress since cycle N (preset ...,
  // fetched F/T): <cause> — <detail>".  Used as the DeadlockError message.
  [[nodiscard]] std::string summary() const;
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_text() const;
};

// Inspects the snapshots, sets `cause` + `cause_detail`, and returns the
// cause.  Non-Unknown for every protocol-level deadlock the fuzzer can
// produce (queue overflow, dropped pushes/pops, missing EOD tokens).
DeadlockCause classify(DeadlockReport& rep);

// Typed watchdog abort.  Derives from std::runtime_error so every
// pre-existing `catch (const std::exception&)` / EXPECT_THROW keeps
// working; new code catches DeadlockError to reach the report.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(DeadlockReport rep)
      : std::runtime_error(rep.summary()), rep_(std::move(rep)) {}
  [[nodiscard]] const DeadlockReport& report() const noexcept {
    return rep_;
  }

 private:
  DeadlockReport rep_;
};

}  // namespace hidisc::diag
