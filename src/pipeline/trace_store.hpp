// Persistent on-disk store of functional traces, content-addressed by
// pipeline::trace_key — one binary file per trace under the cache
// directory (shared with the .result entries):
//
//   <dir>/<32-hex key>.trace
//     "hilab-trace v1\n"           header line
//     u32  endian/layout probe     0x01020304
//     u32  entry size              sizeof(sim::TraceEntry)
//     u64  entry count
//     raw TraceEntry payload       count * entry size bytes
//     u64  checksum                FNV-1a-64 of every preceding byte
//
// This is what makes "traces stay warm across processes" true: a sim-only
// invalidation (machine preset change) in a *fresh* hilab invocation
// reloads the trace here instead of re-running the functional simulator.
//
// The durability story mirrors the result cache (lab/result_cache.hpp):
// writes go through an advisory per-entry flock plus a per-process,
// per-thread temp file published by atomic rename; loads validate the
// header, the probe word (foreign endianness or a changed TraceEntry size
// reads as a plain miss), the payload length, and the checksum footer.
// Validation failure quarantines the file to `<name>.corrupt.<pid>.<n>`
// and reports a miss, never an error.  Bump the header version whenever
// sim::TraceEntry's layout changes — the size probe only catches
// same-size field reordering if the checksum happens to, so the version
// string is the authoritative layout tag.
#pragma once

#include <optional>
#include <string>

#include "sim/functional.hpp"

namespace hidisc::pipeline {

class TraceStore {
 public:
  // Creates `dir` (and parents) when missing; throws std::runtime_error
  // if that fails.
  explicit TraceStore(std::string dir);

  [[nodiscard]] std::optional<sim::Trace> load(const std::string& key) const;
  // Returns false (and leaves the store unchanged) on I/O failure.
  bool store(const std::string& key, const sim::Trace& trace) const;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

 private:
  [[nodiscard]] std::string path_for(const std::string& key) const;
  void quarantine(const std::string& path) const;

  std::string dir_;
};

}  // namespace hidisc::pipeline
