// The DAG executor: runs an artifact graph (pipeline/graph.hpp) in pure
// dependency order over the lab thread pool, with every cache layer
// consulted per node:
//
//   compile node  →  session memo (cross-run, in-process)
//   trace node    →  session memo, then the on-disk TraceStore
//   sim node      →  the on-disk ResultCache (probed *before* its trace
//                    node is demanded — a fully warm plan traces nothing)
//
// There are no phase barriers: each compile node's completion dispatches
// its cells' cache probes, each probe miss demands its trace node, each
// trace completion releases its waiting sims.  A Pipeline object is a
// session — keep one alive (as the hiserved worker does) and compile and
// trace artifacts are shared across every run() it serves; lab::run_plan
// creates one per plan, which still shares nodes across the plan's cells
// and, through the on-disk stores, across processes and daemon restarts.
//
// Determinism: results are indexed by cell and every node's output is
// independent of scheduling, so run() is bit-identical for any pool size
// including none (pool == nullptr executes nodes inline, depth-first).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "lab/result_cache.hpp"
#include "lab/thread_pool.hpp"
#include "pipeline/graph.hpp"
#include "pipeline/stats.hpp"
#include "pipeline/trace_store.hpp"

namespace hidisc::pipeline {

class Pipeline {
 public:
  struct Stores {
    const lab::ResultCache* results = nullptr;  // sim-node cache (optional)
    const TraceStore* traces = nullptr;         // trace-node store (optional)
    // Distrust every on-disk layer: probe nothing, overwrite everything.
    // The in-process session memo still applies (identical artifacts).
    bool refresh = false;
  };

  Pipeline() = default;
  explicit Pipeline(Stores stores) : stores_(stores) {}

  // Flips the refresh policy for subsequent runs.  The hiserved worker
  // toggles this per job from the request's refresh flag; not safe to
  // call concurrently with run().
  void set_refresh(bool refresh) { stores_.refresh = refresh; }

  struct Outcome {
    std::vector<lab::CellResult> cells;  // parallel to the submitted cells
    NodeStats nodes;
  };

  // Invoked (serialized) as each cell finishes, in completion order.
  using CellHook = std::function<void(
      std::size_t index, const lab::CellResult& result, std::size_t done,
      std::size_t total, bool from_cache)>;

  // Executes the node set for `cells`.  `pool` may be nullptr (inline
  // serial execution; the hiserved worker path).  Never throws for
  // per-cell failures — they land in the CellResult error slots.
  [[nodiscard]] Outcome run(const std::vector<lab::Cell>& cells,
                            lab::ThreadPool* pool,
                            const CellHook& on_cell = {});

  // Compile + trace without sim nodes: the bench harness's prepare path.
  // Runs through the same artifact functions (and session memo) as run().
  struct Prepared {
    std::shared_ptr<const CompileArtifact> compile;
    std::shared_ptr<const TraceArtifact> orig;  // null unless demanded
    std::shared_ptr<const TraceArtifact> sep;   // null unless demanded
  };
  // Throws std::runtime_error on compile or trace failure (the direct
  // bench path has no error slots to carry it).
  [[nodiscard]] Prepared prepare(const isa::Program& program,
                                 const compiler::CompileOptions& opt,
                                 bool need_orig, bool need_sep);

 private:
  struct Exec;  // per-run executor state (executor.cpp)

  [[nodiscard]] std::shared_ptr<const CompileArtifact> obtain_compile(
      const CompileNode& n, bool* memo_hit);
  [[nodiscard]] std::shared_ptr<const TraceArtifact> obtain_trace(
      const std::string& key, const isa::Program& binary,
      std::uint64_t max_steps, bool* hit);

  Stores stores_;
  std::mutex memo_mu_;
  // Session memos, keyed by node content key; artifacts are immutable so
  // sharing across runs (and across this session's threads) is free.
  std::map<std::string, std::shared_ptr<const CompileArtifact>> compile_memo_;
  std::map<std::string, std::shared_ptr<const TraceArtifact>> trace_memo_;
};

}  // namespace hidisc::pipeline
