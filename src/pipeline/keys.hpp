// Content keys for the artifact DAG's edges (docs/PIPELINE.md).
//
// Every edge in the pipeline graph is content-addressed: a node's key is
// a 32-hex-digit 128-bit FNV-1a hash (the lab::fingerprint machinery)
// over exactly the upstream content that can change its output, and
// nothing else.  The hashing rules *are* the invalidation semantics:
//
//   compile_key  = H(workload identity, canonical CompileOptions)
//   trace_key    = H(encoded binary image, step budget)
//   sim_key      = H(encoded binary image, preset name, canonical
//                    MachineConfig)            == lab::content_key
//
// Consequences, each guarded by tests/pipeline_test.cpp:
//   * changing kernel text changes the binary image, hence every
//     downstream trace and sim key;
//   * the separator mode selects a different binary image (original vs
//     separated), so the two modes never share trace or sim nodes;
//   * changing a machine preset or any MachineConfig field changes only
//     sim keys — traces stay warm, the whole point of the DAG;
//   * the scheduler kind is deliberately excluded from describe(), so
//     event-skip and lockstep share every node (they are bit-identical
//     by the HIDISC_LOCKSTEP oracle).
//
// sim_key is byte-for-byte the pre-pipeline lab::content_key, so result
// cache directories written before the DAG refactor stay valid.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/compile.hpp"
#include "lab/plan.hpp"
#include "machine/config.hpp"

namespace hidisc::pipeline {

// Key of a compile node fed by a registry workload spec (the identity the
// old prep-memoization layer keyed on, hashed).
[[nodiscard]] std::string compile_key(const lab::WorkloadSpec& spec,
                                      const compiler::CompileOptions& opt);

// Key of a compile node fed a caller-built program (bench/ablation path):
// the program bytes stand in for the spec identity.
[[nodiscard]] std::string compile_key(
    const std::vector<std::uint8_t>& program_image,
    const compiler::CompileOptions& opt);

// Key of a trace node: the exact encoded binary the functional simulator
// executes plus the step budget.  Presets and machine configs do not
// appear — that is what lets one trace serve every machine sweep.
[[nodiscard]] std::string trace_key(
    const std::vector<std::uint8_t>& binary_image, std::uint64_t max_steps);

// Key of a sim node; identical to lab::content_key on the decoded
// program, taking the already-encoded image to avoid re-encoding per
// consumer.
[[nodiscard]] std::string sim_key(const std::vector<std::uint8_t>& binary_image,
                                  machine::Preset preset,
                                  const machine::MachineConfig& cfg);

}  // namespace hidisc::pipeline
