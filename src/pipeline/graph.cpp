#include "pipeline/graph.hpp"

#include <map>
#include <utility>

#include "pipeline/keys.hpp"

namespace hidisc::pipeline {

Graph build_graph(const std::vector<lab::Cell>& cells) {
  Graph g;
  // std::map keeps deterministic construction order; the deques keep the
  // node addresses these maps hand out stable.
  std::map<std::string, CompileNode*> compile_by_key;
  std::map<std::pair<const CompileNode*, Mode>, TraceNode*> trace_by_id;

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const lab::Cell& cell = cells[i];
    const std::string ckey = compile_key(cell.workload, cell.compile);
    CompileNode* cn;
    if (const auto it = compile_by_key.find(ckey);
        it != compile_by_key.end()) {
      cn = it->second;
    } else {
      cn = &g.compiles.emplace_back();
      cn->key = ckey;
      cn->spec = cell.workload;
      cn->options = cell.compile;
      cn->display = cell.workload.name;
      compile_by_key.emplace(ckey, cn);
    }

    const Mode mode = mode_for(cell.preset);
    TraceNode* tn;
    if (const auto it = trace_by_id.find({cn, mode});
        it != trace_by_id.end()) {
      tn = it->second;
    } else {
      tn = &g.traces.emplace_back();
      tn->compile = cn;
      tn->mode = mode;
      cn->traces.push_back(tn);
      trace_by_id.emplace(std::make_pair(cn, mode), tn);
    }

    SimNode* sn = &g.sims.emplace_back();
    sn->trace = tn;
    sn->cell = &cell;
    sn->index = i;
    cn->sims.push_back(sn);
  }
  return g;
}

}  // namespace hidisc::pipeline
