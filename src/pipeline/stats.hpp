// Per-phase node accounting for the artifact pipeline (docs/PIPELINE.md).
//
// Every run of the DAG executor reports, for each node phase, how many
// nodes existed in the graph and what happened to each: served from a
// cache layer (memo / on-disk store / result cache), executed fresh, or
// executed and failed.  The remainder (total - hits - rebuilt - failed)
// are nodes the run never demanded — e.g. a trace node all of whose sim
// consumers hit the result cache — or nodes poisoned by an upstream
// failure.  These counters are the observable contract of cache
// invalidation: a machine-preset-only change must show trace.rebuilt == 0
// (CI's pipeline-invalidation job asserts exactly that from the JSON
// export).
#pragma once

#include <cstdint>

namespace hidisc::pipeline {

struct PhaseStats {
  std::uint64_t total = 0;    // nodes of this phase in the graph
  std::uint64_t hits = 0;     // satisfied without executing (memo/store/cache)
  std::uint64_t rebuilt = 0;  // executed this run
  std::uint64_t failed = 0;   // executed and failed

  // Wall time spent in this phase, split by what the time bought: ms_hits
  // covers cache probes that were satisfied without executing (memo lookup,
  // store load, result-cache probe), ms_rebuilt covers fresh executions
  // (failed ones included — the time was spent either way).  Summed across
  // worker threads, so on a pooled run the figures can exceed the run's
  // wall clock; they answer "where did the compute go", not "how long did
  // I wait".
  double ms_hits = 0.0;
  double ms_rebuilt = 0.0;

  // Nodes never demanded, or poisoned by an upstream failure.
  [[nodiscard]] std::uint64_t skipped() const noexcept {
    const std::uint64_t used = hits + rebuilt + failed;
    return total > used ? total - used : 0;
  }

  PhaseStats& operator+=(const PhaseStats& o) noexcept {
    total += o.total;
    hits += o.hits;
    rebuilt += o.rebuilt;
    failed += o.failed;
    ms_hits += o.ms_hits;
    ms_rebuilt += o.ms_rebuilt;
    return *this;
  }
};

struct NodeStats {
  PhaseStats compile;  // (workload spec | program, compile options) nodes
  PhaseStats trace;    // (binary image, step budget) nodes
  PhaseStats sim;      // (binary image, preset, machine config) nodes

  NodeStats& operator+=(const NodeStats& o) noexcept {
    compile += o.compile;
    trace += o.trace;
    sim += o.sim;
    return *this;
  }
};

}  // namespace hidisc::pipeline
