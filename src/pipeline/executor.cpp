#include "pipeline/executor.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "diag/deadlock.hpp"
#include "isa/encoding.hpp"
#include "machine/machine.hpp"
#include "pipeline/keys.hpp"

namespace hidisc::pipeline {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

std::shared_ptr<const CompileArtifact> Pipeline::obtain_compile(
    const CompileNode& n, bool* memo_hit) {
  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    if (const auto it = compile_memo_.find(n.key);
        it != compile_memo_.end()) {
      *memo_hit = true;
      return it->second;
    }
  }
  *memo_hit = false;
  auto art = std::make_shared<CompileArtifact>();
  try {
    if (n.program) {
      art->comp = compiler::compile(*n.program, n.options);
    } else {
      const workloads::BuiltWorkload w = n.spec.build();
      art->comp = compiler::compile(w.program, n.options);
    }
    art->orig_image = isa::save_program(art->comp.original);
    art->sep_image = isa::save_program(art->comp.separated);
  } catch (const std::exception& e) {
    art->error = e.what();
  }
  std::lock_guard<std::mutex> lock(memo_mu_);
  // First insert wins so every holder of this key shares one artifact.
  return compile_memo_.emplace(n.key, std::move(art)).first->second;
}

std::shared_ptr<const TraceArtifact> Pipeline::obtain_trace(
    const std::string& key, const isa::Program& binary,
    std::uint64_t max_steps, bool* hit) {
  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    if (const auto it = trace_memo_.find(key); it != trace_memo_.end()) {
      *hit = true;
      return it->second;
    }
  }
  if (stores_.traces && !stores_.refresh) {
    if (auto stored = stores_.traces->load(key)) {
      auto art = std::make_shared<TraceArtifact>();
      art->trace = std::move(*stored);
      *hit = true;
      std::lock_guard<std::mutex> lock(memo_mu_);
      return trace_memo_.emplace(key, std::move(art)).first->second;
    }
  }
  *hit = false;
  auto art = std::make_shared<TraceArtifact>();
  try {
    sim::Functional f(binary);
    art->trace = f.run_trace(max_steps);
  } catch (const std::exception& e) {
    art->error = e.what();
  }
  if (art->ok() && stores_.traces) stores_.traces->store(key, art->trace);
  std::lock_guard<std::mutex> lock(memo_mu_);
  return trace_memo_.emplace(key, std::move(art)).first->second;
}

// Per-run executor state.  All node bookkeeping (stats, trace demand,
// completion counting) lives behind `mu`; node execution — compilation,
// tracing, simulation, disk probes — runs outside it.
struct Pipeline::Exec {
  Pipeline* self = nullptr;
  Outcome* out = nullptr;
  const CellHook* hook = nullptr;
  lab::ThreadPool* pool = nullptr;

  std::mutex mu;
  std::size_t done = 0;
  std::size_t total = 0;

  void submit(std::function<void()> task) {
    if (pool)
      pool->submit(std::move(task));
    else
      task();  // inline, depth-first; identical results by construction
  }

  // Caller holds `mu`.
  void finish_cell_locked(SimNode* s, bool from_cache) {
    ++done;
    if (*hook) (*hook)(s->index, s->out, done, total, from_cache);
  }

  void fail_cell(SimNode* s, std::string msg, std::string cls) {
    std::lock_guard<std::mutex> lock(mu);
    s->out.error = std::move(msg);
    s->out.error_class = std::move(cls);
    finish_cell_locked(s, /*from_cache=*/false);
  }

  void run_compile(CompileNode* c) {
    bool memo_hit = false;
    const auto start = Clock::now();
    auto art = self->obtain_compile(*c, &memo_hit);
    const double ms = ms_since(start);
    {
      std::lock_guard<std::mutex> lock(mu);
      c->out = art;
      c->from_memo = memo_hit;
      PhaseStats& ph = out->nodes.compile;
      if (!art->ok())
        ++ph.failed;
      else if (memo_hit)
        ++ph.hits;
      else
        ++ph.rebuilt;
      (memo_hit && art->ok() ? ph.ms_hits : ph.ms_rebuilt) += ms;
    }
    if (!art->ok()) {
      // Poison exactly the cells under this compile; its trace nodes are
      // never demanded (they count as skipped).
      for (SimNode* s : c->sims)
        fail_cell(s, "prep " + c->display + " failed: " + art->error,
                  "prep");
      return;
    }
    // Trace keys are pure functions of the compile artifact; derive them
    // before any probe can demand the nodes.
    for (TraceNode* t : c->traces)
      t->key = trace_key(art->image(t->mode), c->options.max_steps);
    for (SimNode* s : c->sims)
      submit([this, s] { probe_sim(s); });
  }

  void probe_sim(SimNode* s) {
    const lab::Cell& cell = *s->cell;
    const CompileArtifact& comp = *s->trace->compile->out;
    const Mode mode = s->trace->mode;
    s->out.key = sim_key(comp.image(mode), cell.preset, cell.config);
    s->out.orig_dynamic_instructions = comp.comp.profile.dynamic_instructions;
    const Stores& st = self->stores_;
    if (st.results && !st.refresh) {
      const auto start = Clock::now();
      auto hit = st.results->load(s->out.key);
      const double ms = ms_since(start);
      if (hit) {
        s->out.result = hit->result;
        s->out.orig_dynamic_instructions = hit->orig_dynamic_instructions;
        s->out.from_cache = true;
        std::lock_guard<std::mutex> lock(mu);
        ++out->nodes.sim.hits;
        out->nodes.sim.ms_hits += ms;
        finish_cell_locked(s, /*from_cache=*/true);
        return;
      }
      // A missed probe still costs a disk lookup; the node ends up rebuilt.
      std::lock_guard<std::mutex> lock(mu);
      out->nodes.sim.ms_rebuilt += ms;
    }
    // Miss: demand the trace node.  First demander dispatches it; later
    // ones either queue behind it or, when it already completed, go
    // straight to simulation.
    TraceNode* t = s->trace;
    bool dispatch = false;
    std::shared_ptr<const TraceArtifact> ready;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (t->done) {
        ready = t->out;
      } else {
        t->waiting.push_back(s);
        if (!t->started) {
          t->started = true;
          dispatch = true;
        }
      }
    }
    if (dispatch) submit([this, t] { run_trace(t); });
    if (ready) release_sim(s, *ready);
  }

  void run_trace(TraceNode* t) {
    const CompileNode& c = *t->compile;
    bool hit = false;
    const auto start = Clock::now();
    auto art = self->obtain_trace(t->key, c.out->binary(t->mode),
                                  c.options.max_steps, &hit);
    const double ms = ms_since(start);
    std::vector<SimNode*> waiting;
    {
      std::lock_guard<std::mutex> lock(mu);
      t->out = art;
      t->done = true;
      PhaseStats& ph = out->nodes.trace;
      if (!art->ok())
        ++ph.failed;
      else if (hit)
        ++ph.hits;
      else
        ++ph.rebuilt;
      (hit && art->ok() ? ph.ms_hits : ph.ms_rebuilt) += ms;
      waiting = std::move(t->waiting);
    }
    for (SimNode* s : waiting) release_sim(s, *art);
  }

  void release_sim(SimNode* s, const TraceArtifact& trace) {
    if (!trace.ok()) {
      fail_cell(s,
                "trace " + s->trace->compile->display +
                    " failed: " + trace.error,
                "trace");
      return;
    }
    submit([this, s] { run_sim(s); });
  }

  void run_sim(SimNode* s) {
    const lab::Cell& cell = *s->cell;
    const CompileArtifact& comp = *s->trace->compile->out;
    const auto start = Clock::now();
    try {
      s->out.result =
          machine::run_machine(comp.binary(s->trace->mode),
                               s->trace->out->trace, cell.preset,
                               cell.config);
    } catch (const diag::DeadlockError& e) {
      std::lock_guard<std::mutex> lock(mu);
      ++out->nodes.sim.failed;
      out->nodes.sim.ms_rebuilt += ms_since(start);
      s->out.error = e.what();
      s->out.error_class =
          std::string("deadlock:") + diag::cause_name(e.report().cause);
      s->out.diagnostic_json = e.report().to_json();
      finish_cell_locked(s, /*from_cache=*/false);
      return;
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(mu);
      ++out->nodes.sim.failed;
      out->nodes.sim.ms_rebuilt += ms_since(start);
      s->out.error = e.what();
      s->out.error_class = "sim";
      finish_cell_locked(s, /*from_cache=*/false);
      return;
    }
    s->out.wall_ms = ms_since(start);
    if (s->out.wall_ms > 0.0)
      s->out.sim_cycles_per_sec =
          static_cast<double>(s->out.result.cycles) * 1000.0 /
          s->out.wall_ms;
    if (self->stores_.results)
      self->stores_.results->store(
          s->out.key,
          lab::CacheEntry{s->out.result, cell.workload.name,
                          machine::preset_name(cell.preset),
                          s->out.orig_dynamic_instructions});
    std::lock_guard<std::mutex> lock(mu);
    ++out->nodes.sim.rebuilt;
    out->nodes.sim.ms_rebuilt += s->out.wall_ms;
    finish_cell_locked(s, /*from_cache=*/false);
  }
};

Pipeline::Outcome Pipeline::run(const std::vector<lab::Cell>& cells,
                                lab::ThreadPool* pool,
                                const CellHook& on_cell) {
  Graph g = build_graph(cells);
  Outcome out;
  out.cells.resize(cells.size());
  out.nodes.compile.total = g.compiles.size();
  out.nodes.trace.total = g.traces.size();
  out.nodes.sim.total = g.sims.size();

  Exec exec;
  exec.self = this;
  exec.out = &out;
  exec.hook = &on_cell;
  exec.pool = pool;
  exec.total = g.sims.size();

  for (CompileNode& c : g.compiles) {
    CompileNode* cp = &c;
    exec.submit([&exec, cp] { exec.run_compile(cp); });
  }
  if (pool) pool->wait();

  for (SimNode& s : g.sims) out.cells[s.index] = std::move(s.out);
  return out;
}

Pipeline::Prepared Pipeline::prepare(const isa::Program& program,
                                     const compiler::CompileOptions& opt,
                                     bool need_orig, bool need_sep) {
  CompileNode node;
  node.program = &program;
  node.options = opt;
  node.key = compile_key(isa::save_program(program), opt);
  node.display = "program";

  Prepared p;
  bool hit = false;
  p.compile = obtain_compile(node, &hit);
  if (!p.compile->ok())
    throw std::runtime_error("pipeline: compile failed: " + p.compile->error);
  const auto trace_for = [&](Mode mode) {
    bool trace_hit = false;
    auto art = obtain_trace(trace_key(p.compile->image(mode), opt.max_steps),
                            p.compile->binary(mode), opt.max_steps,
                            &trace_hit);
    if (!art->ok())
      throw std::runtime_error("pipeline: trace failed: " + art->error);
    return art;
  };
  if (need_orig) p.orig = trace_for(Mode::Original);
  if (need_sep) p.sep = trace_for(Mode::Separated);
  return p;
}

}  // namespace hidisc::pipeline
