#include "pipeline/trace_store.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <type_traits>

#include "lab/serialize.hpp"

namespace fs = std::filesystem;

namespace hidisc::pipeline {

namespace {

constexpr char kHeader[] = "hilab-trace v1\n";
constexpr std::size_t kHeaderLen = sizeof kHeader - 1;
constexpr std::uint32_t kProbe = 0x01020304u;

static_assert(std::is_trivially_copyable_v<sim::TraceEntry>,
              "TraceEntry is persisted as raw bytes");

// Incremental FNV-1a-64 matching lab::fnv1a64 (same offset basis/prime).
std::uint64_t fnv1a64_step(std::uint64_t state, const void* data,
                           std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    state ^= p[i];
    state *= 0x100000001b3ull;
  }
  return state;
}

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;

}  // namespace

TraceStore::TraceStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_))
    throw std::runtime_error("hilab: cannot create trace store directory " +
                             dir_);
}

std::string TraceStore::path_for(const std::string& key) const {
  return (fs::path(dir_) / (key + ".trace")).string();
}

void TraceStore::quarantine(const std::string& path) const {
  // Unique per process and per event, same rationale as the result cache:
  // concurrent quarantines must never clobber each other's evidence.
  static std::atomic<unsigned> counter{0};
  std::ostringstream dest;
  dest << path << ".corrupt." << ::getpid() << '.'
       << counter.fetch_add(1, std::memory_order_relaxed);
  std::error_code ec;
  fs::rename(path, dest.str(), ec);  // best-effort
}

std::optional<sim::Trace> TraceStore::load(const std::string& key) const {
  const std::string path = path_for(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;

  char header[kHeaderLen];
  if (!in.read(header, kHeaderLen) ||
      std::memcmp(header, kHeader, kHeaderLen) != 0)
    // Wrong header = stale or foreign format, not corruption: plain miss,
    // left in place to be overwritten by the next store.
    return std::nullopt;

  std::uint32_t probe = 0, entry_size = 0;
  std::uint64_t count = 0;
  if (!in.read(reinterpret_cast<char*>(&probe), sizeof probe) ||
      !in.read(reinterpret_cast<char*>(&entry_size), sizeof entry_size) ||
      !in.read(reinterpret_cast<char*>(&count), sizeof count)) {
    quarantine(path);
    return std::nullopt;
  }
  // A foreign endianness or a recompiled TraceEntry size is a format
  // mismatch (miss), not corruption.
  if (probe != kProbe || entry_size != sizeof(sim::TraceEntry))
    return std::nullopt;

  // Guard the allocation against a corrupt count before trusting it; the
  // file itself bounds the honest size.
  std::error_code ec;
  const auto file_size = fs::file_size(path, ec);
  const std::uint64_t fixed =
      kHeaderLen + sizeof probe + sizeof entry_size + sizeof count +
      sizeof(std::uint64_t);
  if (ec || count > (1ull << 32) ||
      file_size != fixed + count * sizeof(sim::TraceEntry)) {
    quarantine(path);
    return std::nullopt;
  }

  sim::Trace trace(count);
  if (count > 0 &&
      !in.read(reinterpret_cast<char*>(trace.data()),
               static_cast<std::streamsize>(count * sizeof(sim::TraceEntry)))) {
    quarantine(path);
    return std::nullopt;
  }
  std::uint64_t footer = 0;
  if (!in.read(reinterpret_cast<char*>(&footer), sizeof footer)) {
    quarantine(path);
    return std::nullopt;
  }
  std::uint64_t sum = fnv1a64_step(kFnvBasis, kHeader, kHeaderLen);
  sum = fnv1a64_step(sum, &probe, sizeof probe);
  sum = fnv1a64_step(sum, &entry_size, sizeof entry_size);
  sum = fnv1a64_step(sum, &count, sizeof count);
  sum = fnv1a64_step(sum, trace.data(), count * sizeof(sim::TraceEntry));
  if (sum != footer) {
    quarantine(path);
    return std::nullopt;
  }
  return trace;
}

bool TraceStore::store(const std::string& key, const sim::Trace& trace) const {
  const std::uint32_t probe = kProbe;
  const std::uint32_t entry_size = sizeof(sim::TraceEntry);
  const std::uint64_t count = trace.size();
  std::uint64_t sum = fnv1a64_step(kFnvBasis, kHeader, kHeaderLen);
  sum = fnv1a64_step(sum, &probe, sizeof probe);
  sum = fnv1a64_step(sum, &entry_size, sizeof entry_size);
  sum = fnv1a64_step(sum, &count, sizeof count);
  sum = fnv1a64_step(sum, trace.data(), count * sizeof(sim::TraceEntry));

  // Same publish protocol as the result cache: advisory per-entry flock,
  // per-process/per-thread temp file, atomic rename.  See
  // lab/result_cache.cpp for the full rationale.
  const std::string final_path = path_for(key);
  const int lock_fd = ::open((final_path + ".lock").c_str(),
                             O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (lock_fd >= 0) ::flock(lock_fd, LOCK_EX);
  std::ostringstream tid;
  tid << std::this_thread::get_id();
  const std::string tmp =
      final_path + ".tmp." + std::to_string(::getpid()) + "." + tid.str();
  bool ok = false;
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (out) {
      out.write(kHeader, static_cast<std::streamsize>(kHeaderLen));
      out.write(reinterpret_cast<const char*>(&probe), sizeof probe);
      out.write(reinterpret_cast<const char*>(&entry_size), sizeof entry_size);
      out.write(reinterpret_cast<const char*>(&count), sizeof count);
      if (count > 0)
        out.write(
            reinterpret_cast<const char*>(trace.data()),
            static_cast<std::streamsize>(count * sizeof(sim::TraceEntry)));
      out.write(reinterpret_cast<const char*>(&sum), sizeof sum);
      ok = static_cast<bool>(out.flush());
    }
  }
  if (ok) {
    std::error_code ec;
    fs::rename(tmp, final_path, ec);
    ok = !ec;
  }
  if (!ok) std::remove(tmp.c_str());
  if (lock_fd >= 0) {
    ::flock(lock_fd, LOCK_UN);
    ::close(lock_fd);
  }
  return ok;
}

}  // namespace hidisc::pipeline
