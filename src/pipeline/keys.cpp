#include "pipeline/keys.hpp"

#include "lab/fingerprint.hpp"

namespace hidisc::pipeline {

namespace {

// Domain-separation prefixes: a compile key and a trace key that happen
// to hash the same bytes must still never collide across phases.
constexpr const char* kCompileTag = "pipeline.compile|";
constexpr const char* kTraceTag = "pipeline.trace|";

std::string two_stream_key(const char* tag,
                           const std::vector<std::uint8_t>& bytes,
                           const std::string& extra) {
  lab::Fnv1a lo, hi(0x9e3779b97f4a7c15ull);
  for (lab::Fnv1a* h : {&lo, &hi}) {
    h->update(tag, std::char_traits<char>::length(tag));
    h->update(bytes.data(), bytes.size());
    h->update(extra);
  }
  return lab::hex128(lo, hi);
}

}  // namespace

std::string compile_key(const lab::WorkloadSpec& spec,
                        const compiler::CompileOptions& opt) {
  lab::Fnv1a lo, hi(0x9e3779b97f4a7c15ull);
  const std::string id = spec.id();
  const std::string opt_desc = lab::describe(opt);
  for (lab::Fnv1a* h : {&lo, &hi}) {
    h->update(kCompileTag, std::char_traits<char>::length(kCompileTag));
    h->update(id);
    h->update(opt_desc);
  }
  return lab::hex128(lo, hi);
}

std::string compile_key(const std::vector<std::uint8_t>& program_image,
                        const compiler::CompileOptions& opt) {
  return two_stream_key(kCompileTag, program_image, lab::describe(opt));
}

std::string trace_key(const std::vector<std::uint8_t>& binary_image,
                      std::uint64_t max_steps) {
  return two_stream_key(kTraceTag, binary_image,
                        "max_steps=" + std::to_string(max_steps) + ";");
}

std::string sim_key(const std::vector<std::uint8_t>& binary_image,
                    machine::Preset preset,
                    const machine::MachineConfig& cfg) {
  // Deliberately NOT domain-tagged: sim keys are lab::content_key, the
  // address of on-disk .result entries written since PR 1.
  return lab::content_key_image(binary_image, preset, cfg);
}

}  // namespace hidisc::pipeline
