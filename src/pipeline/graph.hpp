// The artifact DAG: typed, immutable nodes for the compile → trace →
// simulate pipeline (docs/PIPELINE.md).
//
//   CompileNode   one per distinct (workload spec | program, compile
//                 options); produces a Compilation plus the encoded
//                 image of both its binaries (original + separated).
//   TraceNode     one per (compile node, separator mode) a cell demands;
//                 produces the functional trace of that exact binary.
//   SimNode       one per cell; consumes its trace node's output and the
//                 machine (preset, config) to produce a lab::CellResult.
//
// Artifacts (CompileArtifact / TraceArtifact) are write-once and shared
// by shared_ptr — across nodes within a run, across runs via the
// Pipeline session memo, and across processes via the on-disk stores.
// Edges are content-addressed (pipeline/keys.hpp): a node's key is
// derived purely from its upstream content, so execution order falls out
// of the dependency structure and nothing else — there are no phase
// barriers; a fast workload's sim nodes run while a slow workload is
// still compiling.
//
// Failure is data, not control flow: a failed compile or trace artifact
// carries its error string, and the executor poisons exactly the
// downstream nodes that depended on it (the lab runner's fault-isolation
// contract, preserved verbatim: error classes "prep" / "trace" / "sim" /
// "deadlock:<cause>").
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "compiler/compile.hpp"
#include "isa/program.hpp"
#include "lab/plan.hpp"
#include "lab/runner.hpp"
#include "sim/functional.hpp"

namespace hidisc::pipeline {

// Which of a compilation's two binaries a node consumes.
enum class Mode : std::uint8_t { Original, Separated };

[[nodiscard]] constexpr Mode mode_for(machine::Preset p) noexcept {
  return machine::uses_separated_binary(p) ? Mode::Separated
                                           : Mode::Original;
}

// Write-once output of a compile node.  Both binary images are encoded
// eagerly: encoding is cheap next to compilation, and the images are the
// bytes every downstream key hashes.
struct CompileArtifact {
  compiler::Compilation comp;
  std::vector<std::uint8_t> orig_image, sep_image;  // isa::save_program
  std::string error;  // non-empty = compile failed (sticky)

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
  [[nodiscard]] const isa::Program& binary(Mode m) const noexcept {
    return m == Mode::Separated ? comp.separated : comp.original;
  }
  [[nodiscard]] const std::vector<std::uint8_t>& image(Mode m) const noexcept {
    return m == Mode::Separated ? sep_image : orig_image;
  }
};

// Write-once output of a trace node.
struct TraceArtifact {
  sim::Trace trace;
  std::string error;  // non-empty = functional execution failed (sticky)

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

struct TraceNode;
struct SimNode;

struct CompileNode {
  std::string key;  // pipeline::compile_key
  lab::WorkloadSpec spec;                  // source, unless `program` set
  const isa::Program* program = nullptr;   // caller-owned alternative source
  compiler::CompileOptions options;
  std::string display;  // workload display name for error messages

  std::vector<TraceNode*> traces;  // dependent trace nodes
  std::vector<SimNode*> sims;      // every sim node under this compile

  // Executor state (guarded by the run lock after submission):
  std::shared_ptr<const CompileArtifact> out;
  bool from_memo = false;
};

struct TraceNode {
  CompileNode* compile = nullptr;
  Mode mode = Mode::Original;
  // pipeline::trace_key — derivable only once the compile artifact (the
  // binary image) exists; filled by the executor, not the graph builder.
  std::string key;

  // Executor state (guarded by the run lock):
  std::shared_ptr<const TraceArtifact> out;
  bool started = false;  // a demanding sim has dispatched this node
  bool done = false;
  std::vector<SimNode*> waiting;  // sims blocked on this trace
};

struct SimNode {
  TraceNode* trace = nullptr;
  const lab::Cell* cell = nullptr;  // points into the submitted cell set
  std::size_t index = 0;            // result slot, = cell position
  lab::CellResult out;
};

// The node set for one submission.  Deques keep node addresses stable so
// cross-node pointers never dangle as the graph grows.
struct Graph {
  std::deque<CompileNode> compiles;
  std::deque<TraceNode> traces;
  std::deque<SimNode> sims;
};

// Builds the deduplicated DAG for `cells`: compile nodes keyed by
// content, trace nodes by (compile, mode), one sim node per cell.  The
// returned graph holds pointers into `cells`, which must outlive it.
[[nodiscard]] Graph build_graph(const std::vector<lab::Cell>& cells);

}  // namespace hidisc::pipeline
