// Multi-oracle differential pipeline for HiDISC programs.
//
// One `run_oracles` call drives a sequential source kernel through every
// equivalence the repository claims and returns the first violated one:
//
//   assemble -> functional sim of the original
//            -> hidisc compile (flow-sensitive + flow-insensitive)
//            -> verify_separation on the separated binary
//            -> functional sim of the separated binary
//
// Every functional leg is a dual-interpreter differential: the program runs
// through both the threaded-code interpreter (run_trace) and the reference
// switch interpreter (run_trace_ref) and the two must produce byte-identical
// traces, identical error outcomes and identical final architectural state
// (docs/FUNCTIONAL.md).  A mismatch fails with Stage::FsimDivergence under a
// "fsim-div:<shape>" signature.
//            -> memory-image equality original vs separated (both modes)
//            -> all four machine presets, each run under the EventSkip AND
//               Lockstep schedulers, asserting bit-identical Results,
//               full-trace retirement, LDQ/SDQ push/pop balance and SCQ
//               non-underflow
//            -> the verify/machine contract: verify_separation acceptance
//               and machine non-deadlock must agree.
//
// A second entry point replays *hand-decoupled* programs (explicit queue
// opcodes + EOD/SCQ tokens, per-instruction stream tags supplied
// alongside): those skip the compiler and run verify + functional +
// CP+AP / HiDISC machines directly.
//
// Failures carry a `signature` — a short, index-free key (e.g.
// "digest-separated", "sched-div:CP+AP", "gap:verify-ok-deadlock") — that
// the shrinker uses to check a smaller candidate still fails *the same
// way*, and the campaign uses to deduplicate finds.
//
// `Fault` injects a deliberate separator bug into the compiled binary
// before the downstream oracles run; it exists to test the oracles and to
// exercise the shrinker on demand (`hifuzz --demo-shrink`).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace hidisc::fuzz {

enum class Fault : std::uint8_t {
  None,
  DropPush,   // clear the first push_ldq/push_sdq producer flag
  DropPop,    // delete the first compiler-inserted queue pop
  MisStream,  // move a queue-pushing ALU op to the wrong stream
};

// CLI / corpus-header spelling ("none", "drop-push", "drop-pop",
// "mis-stream") and its inverse.  Shared by hifuzz's --inject flag and the
// corpus `# inject:` header so a shrunk deadlock reproducer replays with
// the same fault applied.
[[nodiscard]] const char* fault_name(Fault f) noexcept;
[[nodiscard]] std::optional<Fault> parse_fault(std::string_view name);

enum class Stage : std::uint8_t {
  Ok,
  Assemble,
  FunctionalOriginal,
  Compile,
  Verify,
  FunctionalSeparated,
  FsimDivergence,  // threaded vs reference interpreter disagree
  DigestMismatch,
  Machine,
  SchedulerDivergence,
  VerifyMachineGap,
};

[[nodiscard]] const char* stage_name(Stage s) noexcept;

struct OracleOptions {
  Fault fault = Fault::None;
  std::uint64_t max_steps = 8'000'000;  // functional-sim budget per run
  std::uint64_t watchdog = 200'000;     // machine no-progress abort
  bool check_flow_insensitive = true;   // also diff the ablation separator
  bool run_machines = true;
};

struct OracleReport {
  Stage stage = Stage::Ok;
  std::string signature = "ok";  // index-free key for dedup/shrinking
  std::string detail;            // human-readable specifics
  std::size_t static_instructions = 0;
  std::uint64_t dynamic_instructions = 0;
  bool fault_applied = false;  // an injection site was found and mutated

  [[nodiscard]] bool ok() const noexcept { return stage == Stage::Ok; }
};

// Sequential-source pipeline (the fuzzer's path).
[[nodiscard]] OracleReport run_oracles(const std::string& source,
                                       const OracleOptions& opt = {});

// Hand-decoupled pipeline: `streams` holds one 'A' (access) or 'C'
// (compute) per instruction, in program order.
[[nodiscard]] OracleReport run_decoupled_oracles(const std::string& source,
                                                 const std::string& streams,
                                                 const OracleOptions& opt = {});

}  // namespace hidisc::fuzz
