#include "fuzz/oracle.hpp"

#include <cstring>
#include <exception>
#include <sstream>
#include <vector>

#include "compiler/compile.hpp"
#include "compiler/verify.hpp"
#include "diag/deadlock.hpp"
#include "isa/assembler.hpp"
#include "machine/machine.hpp"
#include "sim/functional.hpp"

namespace hidisc::fuzz {
namespace {

using isa::Opcode;

// Turns the partially-filled report into a failure, keeping the fields
// already gathered (instruction counts, fault_applied).
OracleReport fail(OracleReport rep, Stage stage, std::string signature,
                  std::string detail) {
  rep.stage = stage;
  rep.signature = std::move(signature);
  rep.detail = std::move(detail);
  return rep;
}

bool is_pop(Opcode op) {
  return op == Opcode::POPLDQ || op == Opcode::POPLDQF ||
         op == Opcode::POPSDQ || op == Opcode::POPSDQF;
}

// Mutates the separated binary; returns false when no injection site
// exists (the shrinker then rejects such candidates).
bool apply_fault(isa::Program& p, Fault fault) {
  switch (fault) {
    case Fault::None:
      return true;
    case Fault::DropPush:
      for (auto& inst : p.code) {
        if (inst.ann.push_ldq) {
          inst.ann.push_ldq = false;
          return true;
        }
      }
      for (auto& inst : p.code) {
        if (inst.ann.push_sdq) {
          inst.ann.push_sdq = false;
          return true;
        }
      }
      return false;
    case Fault::DropPop:
      for (std::int32_t i = 0; i < static_cast<std::int32_t>(p.code.size());
           ++i) {
        if (p.code[i].ann.compiler_inserted && is_pop(p.code[i].op)) {
          p.erase_at(i);
          return true;
        }
      }
      return false;
    case Fault::MisStream:
      // Only flip non-memory, non-control carriers: a memory op routed to
      // the CP (which has no LSU) is outside the machine's contract
      // entirely, while a mis-streamed ALU op is exactly the subtle
      // separator bug class the verifier must catch.
      for (auto& inst : p.code) {
        if (inst.ann.push_ldq && !isa::is_mem(inst.op) &&
            !isa::is_control(inst.op)) {
          inst.ann.stream = isa::Stream::Compute;
          return true;
        }
      }
      for (auto& inst : p.code) {
        if (inst.ann.push_sdq && !isa::is_mem(inst.op) &&
            !isa::is_control(inst.op) && isa::is_fp_compute(inst.op)) {
          inst.ann.stream = isa::Stream::Access;
          return true;
        }
      }
      return false;
  }
  return false;
}

struct MachineVerdict {
  bool deadlock = false;
  std::string deadlock_preset;
  std::string deadlock_cause;  // classified root cause (diag::cause_name)
  std::string deadlock_detail;
  Stage stage = Stage::Ok;  // first non-deadlock machine failure
  std::string signature;
  std::string detail;
  [[nodiscard]] bool clean() const {
    return !deadlock && stage == Stage::Ok;
  }
};

// Runs `preset` under both schedulers and checks every machine-level
// invariant.  `bin`/`tr` must be the preset-appropriate binary and trace.
// `prefetch`, when non-null, arms the hardware prefetcher with that spec —
// the prefetch stream then participates in every scheduler-equivalence and
// queue-balance check, under a signature that names the scheme.
void check_preset(MachineVerdict& v, const isa::Program& bin,
                  const sim::Trace& tr, machine::Preset preset,
                  std::uint64_t watchdog, bool check_balance = true,
                  const char* prefetch = nullptr) {
  if (v.deadlock || v.stage != Stage::Ok) return;
  std::string name = machine::preset_name(preset);
  if (prefetch != nullptr) name += std::string("+pf(") + prefetch + ")";
  machine::MachineConfig cfg;
  cfg.watchdog_cycles = watchdog;
  if (prefetch != nullptr)
    cfg.mem.prefetch = mem::parse_prefetch_spec(prefetch);
  machine::Result es, ls;
  try {
    cfg.scheduler = machine::SchedulerKind::EventSkip;
    es = machine::run_machine(bin, tr, preset, cfg);
    cfg.scheduler = machine::SchedulerKind::Lockstep;
    ls = machine::run_machine(bin, tr, preset, cfg);
  } catch (const diag::DeadlockError& e) {
    v.deadlock = true;
    v.deadlock_preset = name;
    v.deadlock_cause = diag::cause_name(e.report().cause);
    v.deadlock_detail = e.what();
    return;
  } catch (const std::exception& e) {
    v.deadlock = true;
    v.deadlock_preset = name;
    v.deadlock_detail = e.what();
    return;
  }
  if (!(es == ls)) {
    v.stage = Stage::SchedulerDivergence;
    v.signature = std::string("sched-div:") + name;
    std::ostringstream os;
    os << "EventSkip and Lockstep Results differ on " << name
       << " (cycles " << es.cycles << " vs " << ls.cycles << ", instructions "
       << es.instructions << " vs " << ls.instructions << ")";
    v.detail = os.str();
    return;
  }
  if (es.instructions != tr.size()) {
    v.stage = Stage::Machine;
    v.signature = std::string("retire-count:") + name;
    v.detail = std::string(name) + " retired " +
               std::to_string(es.instructions) + " of " +
               std::to_string(tr.size()) + " trace entries";
    return;
  }
  if (!check_balance) return;
  if (es.ldq.pushes != es.ldq.pops) {
    v.stage = Stage::Machine;
    v.signature = std::string("ldq-balance:") + name;
    v.detail = std::string(name) + " LDQ pushes " +
               std::to_string(es.ldq.pushes) + " != pops " +
               std::to_string(es.ldq.pops);
    return;
  }
  if (es.sdq.pushes != es.sdq.pops) {
    v.stage = Stage::Machine;
    v.signature = std::string("sdq-balance:") + name;
    v.detail = std::string(name) + " SDQ pushes " +
               std::to_string(es.sdq.pushes) + " != pops " +
               std::to_string(es.sdq.pops);
    return;
  }
  if (es.scq.pops > es.scq.pushes) {
    v.stage = Stage::Machine;
    v.signature = std::string("scq-underflow:") + name;
    v.detail = std::string(name) + " SCQ popped more tokens than were put";
    return;
  }
}

// Dedup key for a deadlock find: preset plus the classified root cause, so
// e.g. a dropped push (cross-stream imbalance) and a queue overflow on the
// same preset shrink and dedupe as distinct bugs.
std::string deadlock_signature(const MachineVerdict& mv) {
  std::string sig = "gap:verify-ok-deadlock:" + mv.deadlock_preset;
  if (!mv.deadlock_cause.empty()) sig += ":" + mv.deadlock_cause;
  return sig;
}

// One functional execution as seen by the downstream oracles: outcome,
// trace, and the state summaries they consume.
struct FsimRun {
  bool ok = true;
  std::string err;
  sim::Trace trace;
  std::uint64_t mem_digest = 0;
  std::uint64_t instructions = 0;
};

// Dual-interpreter differential: executes `bin` through the threaded-code
// interpreter and, independently, the reference switch interpreter, and
// demands byte-identical traces, identical error outcomes and identical
// final architectural state.  Returns a non-empty divergence description on
// mismatch; on agreement `*out` holds the threaded run so callers reuse it
// instead of executing a third time.
std::string fsim_differential(const isa::Program& bin,
                              std::uint64_t max_steps, FsimRun* out) {
  sim::Functional ft(bin);
  bool t_ok = true;
  std::string t_err;
  sim::Trace t_trace;
  try {
    t_trace = ft.run_trace(max_steps);
  } catch (const std::exception& e) {
    t_ok = false;
    t_err = e.what();
  }

  sim::Functional fr(bin);
  bool r_ok = true;
  std::string r_err;
  sim::Trace r_trace;
  try {
    r_trace = fr.run_trace_ref(max_steps);
  } catch (const std::exception& e) {
    r_ok = false;
    r_err = e.what();
  }

  out->ok = t_ok;
  out->err = t_err;
  out->trace = std::move(t_trace);
  out->mem_digest = ft.memory().digest();
  out->instructions = ft.instructions();

  if (t_ok != r_ok)
    return std::string("threaded interpreter ") +
           (t_ok ? "succeeded" : ("failed (\"" + t_err + "\")")) +
           " but reference " + (r_ok ? "succeeded" : ("failed (\"" + r_err + "\")"));
  if (!t_ok && t_err != r_err)
    return "error mismatch: threaded \"" + t_err + "\" vs reference \"" +
           r_err + "\"";
  if (out->trace.size() != r_trace.size())
    return "trace length " + std::to_string(out->trace.size()) +
           " vs reference " + std::to_string(r_trace.size());
  if (!out->trace.empty() &&
      std::memcmp(out->trace.data(), r_trace.data(),
                  out->trace.size() * sizeof(sim::TraceEntry)) != 0) {
    for (std::size_t i = 0; i < r_trace.size(); ++i) {
      const sim::TraceEntry& g = out->trace[i];
      const sim::TraceEntry& w = r_trace[i];
      if (g.static_idx != w.static_idx || g.next != w.next ||
          g.addr != w.addr || g.value != w.value)
        return "trace entry " + std::to_string(i) + " mismatch: threaded {" +
               std::to_string(g.static_idx) + "," + std::to_string(g.next) +
               "," + std::to_string(g.addr) + "," + std::to_string(g.value) +
               "} reference {" + std::to_string(w.static_idx) + "," +
               std::to_string(w.next) + "," + std::to_string(w.addr) + "," +
               std::to_string(w.value) + "}";
    }
    return "trace bytes differ (padding?)";
  }
  if (ft.instructions() != fr.instructions())
    return "instruction count " + std::to_string(ft.instructions()) +
           " vs reference " + std::to_string(fr.instructions());
  if (ft.pc() != fr.pc())
    return "final pc " + std::to_string(ft.pc()) + " vs reference " +
           std::to_string(fr.pc());
  if (ft.halted() != fr.halted()) return "halted flag mismatch";
  if (ft.state_digest() != fr.state_digest())
    return "architectural state digest mismatch";
  return {};
}

std::string first_violations(const compiler::VerifyResult& vr, std::size_t n) {
  std::ostringstream os;
  for (std::size_t i = 0; i < vr.violations.size() && i < n; ++i) {
    if (i) os << "; ";
    os << vr.violations[i];
  }
  if (vr.violations.size() > n)
    os << "; ... (" << vr.violations.size() << " total)";
  return os.str();
}

}  // namespace

const char* fault_name(Fault f) noexcept {
  switch (f) {
    case Fault::None: return "none";
    case Fault::DropPush: return "drop-push";
    case Fault::DropPop: return "drop-pop";
    case Fault::MisStream: return "mis-stream";
  }
  return "?";
}

std::optional<Fault> parse_fault(std::string_view name) {
  if (name == "none") return Fault::None;
  if (name == "drop-push") return Fault::DropPush;
  if (name == "drop-pop") return Fault::DropPop;
  if (name == "mis-stream") return Fault::MisStream;
  return std::nullopt;
}

const char* stage_name(Stage s) noexcept {
  switch (s) {
    case Stage::Ok: return "ok";
    case Stage::Assemble: return "assemble";
    case Stage::FunctionalOriginal: return "functional-original";
    case Stage::Compile: return "compile";
    case Stage::Verify: return "verify";
    case Stage::FunctionalSeparated: return "functional-separated";
    case Stage::FsimDivergence: return "fsim-divergence";
    case Stage::DigestMismatch: return "digest-mismatch";
    case Stage::Machine: return "machine";
    case Stage::SchedulerDivergence: return "scheduler-divergence";
    case Stage::VerifyMachineGap: return "verify-machine-gap";
  }
  return "?";
}

OracleReport run_oracles(const std::string& source, const OracleOptions& opt) {
  OracleReport rep;

  // 1. Assemble.
  isa::Program prog;
  try {
    prog = isa::assemble(source);
  } catch (const std::exception& e) {
    return fail(rep, Stage::Assemble, "assemble", e.what());
  }
  rep.static_instructions = prog.code.size();

  // 2. Functional execution of the raw sequential program, as a
  // dual-interpreter differential (threaded vs reference switch).
  std::uint64_t orig_digest = 0;
  {
    FsimRun f;
    if (auto div = fsim_differential(prog, opt.max_steps, &f); !div.empty())
      return fail(rep, Stage::FsimDivergence, "fsim-div:original", div);
    if (!f.ok)
      return fail(rep, Stage::FunctionalOriginal, "functional-original", f.err);
    orig_digest = f.mem_digest;
    rep.dynamic_instructions = f.instructions;
  }

  // 3. Compile (flow-sensitive separator, CMAS on).
  compiler::Compilation comp;
  try {
    compiler::CompileOptions co;
    co.max_steps = opt.max_steps;
    comp = compiler::compile(prog, co);
  } catch (const std::exception& e) {
    return fail(rep, Stage::Compile, "compile", e.what());
  }

  // 4. Optional fault injection into the separated binary.
  rep.fault_applied = apply_fault(comp.separated, opt.fault);
  if (opt.fault != Fault::None && !rep.fault_applied) {
    rep.detail = "no injection site for the requested fault";
    return rep;  // Ok: nothing to diverge
  }

  // 5. Structural verification of the separated binary.
  const auto vr = compiler::verify_separation(comp.separated);

  // 6. Functional execution of the separated binary (differential again:
  // queue opcodes and EOD protocols only appear post-separation, so this
  // leg covers interpreter paths the raw program cannot reach).
  bool sep_ok = true;
  std::string sep_err;
  std::uint64_t sep_digest = 0;
  sim::Trace sep_trace;
  {
    FsimRun fs;
    if (auto div = fsim_differential(comp.separated, opt.max_steps, &fs);
        !div.empty())
      return fail(rep, Stage::FsimDivergence, "fsim-div:separated", div);
    sep_ok = fs.ok;
    sep_err = fs.err;
    sep_digest = fs.mem_digest;
    sep_trace = std::move(fs.trace);
  }

  // 7. Machines: every preset under both schedulers.  Superscalar and
  // CP+CMP consume the annotated original; CP+AP and HiDISC the separated
  // binary.  Needs the original's trace too.
  MachineVerdict mv;
  bool machines_ran = false;
  if (opt.run_machines && sep_ok) {
    sim::Trace orig_trace;
    {
      FsimRun fo;
      if (auto div = fsim_differential(comp.original, opt.max_steps, &fo);
          !div.empty())
        return fail(rep, Stage::FsimDivergence, "fsim-div:annotated-original",
                    div);
      if (!fo.ok)
        return fail(rep, Stage::FunctionalOriginal,
                    "functional-annotated-original", fo.err);
      orig_trace = std::move(fo.trace);
    }
    machines_ran = true;
    check_preset(mv, comp.original, orig_trace, machine::Preset::Superscalar,
                 opt.watchdog);
    check_preset(mv, comp.original, orig_trace, machine::Preset::CPCMP,
                 opt.watchdog);
    check_preset(mv, comp.separated, sep_trace, machine::Preset::CPAP,
                 opt.watchdog);
    check_preset(mv, comp.separated, sep_trace, machine::Preset::HiDISC,
                 opt.watchdog);
    // Hardware-prefetcher variants: the prefetch stream must preserve
    // scheduler bit-identity and queue balance on both binary shapes.
    check_preset(mv, comp.original, orig_trace, machine::Preset::Superscalar,
                 opt.watchdog, /*check_balance=*/true, "ipstride:deg4");
    check_preset(mv, comp.separated, sep_trace, machine::Preset::CPAP,
                 opt.watchdog, /*check_balance=*/true, "sms:region4");
  }

  // 8. Decide, in severity order, with the verify/machine agreement
  // contract folded in: verify acceptance and machine non-deadlock must
  // never disagree.
  if (!vr.ok()) {
    if (machines_ran && mv.clean())
      return fail(rep, Stage::VerifyMachineGap, "gap:verify-reject-machines-ok",
                  "verifier rejects but all machines ran clean: " +
                      first_violations(vr, 3));
    return fail(rep, Stage::Verify, "verify-reject", first_violations(vr, 3));
  }
  if (!sep_ok)
    return fail(rep, Stage::FunctionalSeparated, "functional-separated", sep_err);
  if (sep_digest != orig_digest)
    return fail(rep, Stage::DigestMismatch, "digest-separated",
                "memory image of the separated binary diverged from the "
                "original");
  if (mv.deadlock)
    return fail(rep, Stage::VerifyMachineGap,
                deadlock_signature(mv),
                "verifier accepted the binary but " + mv.deadlock_preset +
                    " deadlocked: " + mv.deadlock_detail);
  if (mv.stage != Stage::Ok) return fail(rep, mv.stage, mv.signature, mv.detail);

  // 9. Flow-insensitive separator ablation: same functional behaviour,
  // never fewer queue transfers than the flow-sensitive separator.
  if (opt.check_flow_insensitive && opt.fault == Fault::None) {
    compiler::Compilation fi;
    try {
      compiler::CompileOptions co;
      co.max_steps = opt.max_steps;
      co.flow_sensitive_comm = false;
      fi = compiler::compile(prog, co);
    } catch (const std::exception& e) {
      return fail(rep, Stage::Compile, "compile-flow-insensitive", e.what());
    }
    const auto fvr = compiler::verify_separation(fi.separated);
    if (!fvr.ok())
      return fail(rep, Stage::Verify, "verify-reject-flow-insensitive",
                  first_violations(fvr, 3));
    {
      FsimRun ff;
      if (auto div = fsim_differential(fi.separated, opt.max_steps, &ff);
          !div.empty())
        return fail(rep, Stage::FsimDivergence, "fsim-div:flow-insensitive",
                    div);
      if (!ff.ok)
        return fail(rep, Stage::FunctionalSeparated,
                    "functional-flow-insensitive", ff.err);
      if (ff.mem_digest != orig_digest)
        return fail(rep, Stage::DigestMismatch, "digest-flow-insensitive",
                    "flow-insensitive separation changed the memory image");
    }
    if (fi.inserted_pops < comp.inserted_pops)
      return fail(rep, Stage::Compile, "flow-insensitive-fewer-pops",
                  "flow-insensitive separator inserted fewer pops (" +
                      std::to_string(fi.inserted_pops) + ") than the "
                      "flow-sensitive one (" +
                      std::to_string(comp.inserted_pops) + ")");
  }

  return rep;  // Ok
}

OracleReport run_decoupled_oracles(const std::string& source,
                                   const std::string& streams,
                                   const OracleOptions& opt) {
  OracleReport rep;
  isa::Program prog;
  try {
    prog = isa::assemble(source);
  } catch (const std::exception& e) {
    return fail(rep, Stage::Assemble, "assemble", e.what());
  }
  rep.static_instructions = prog.code.size();

  // Apply the stream tags ('A'/'C', whitespace ignored).
  std::vector<isa::Stream> tags;
  for (char ch : streams) {
    if (ch == 'A' || ch == 'a') tags.push_back(isa::Stream::Access);
    else if (ch == 'C' || ch == 'c') tags.push_back(isa::Stream::Compute);
    else if (ch == ' ' || ch == '\t') continue;
    else
      return fail(rep, Stage::Assemble, "streams-bad-char",
                  std::string("unexpected character in streams: ") + ch);
  }
  if (tags.size() != prog.code.size())
    return fail(rep, Stage::Assemble, "streams-length",
                "streams tag count " + std::to_string(tags.size()) +
                    " != instruction count " +
                    std::to_string(prog.code.size()));
  for (std::size_t i = 0; i < tags.size(); ++i)
    prog.code[i].ann.stream = tags[i];

  const auto vr = compiler::verify_separation(prog);

  sim::Trace trace;
  bool func_ok = true;
  std::string func_err;
  {
    FsimRun f;
    if (auto div = fsim_differential(prog, opt.max_steps, &f); !div.empty())
      return fail(rep, Stage::FsimDivergence, "fsim-div:decoupled", div);
    func_ok = f.ok;
    func_err = f.err;
    trace = std::move(f.trace);
    if (func_ok) rep.dynamic_instructions = trace.size();
  }

  MachineVerdict mv;
  bool machines_ran = false;
  const bool has_eod = [&] {
    for (const auto& inst : prog.code)
      if (inst.op == Opcode::PUTEOD || inst.op == Opcode::BEOD) return true;
    return false;
  }();
  if (opt.run_machines && func_ok) {
    machines_ran = true;
    // BEOD's probe-and-requeue makes raw push/pop counts legitimately
    // asymmetric on EOD protocols; the balance oracle only binds without
    // EOD tokens.
    check_preset(mv, prog, trace, machine::Preset::CPAP, opt.watchdog,
                 /*check_balance=*/!has_eod);
    check_preset(mv, prog, trace, machine::Preset::HiDISC, opt.watchdog,
                 /*check_balance=*/!has_eod);
  }

  if (!vr.ok()) {
    if (machines_ran && mv.clean())
      return fail(rep, Stage::VerifyMachineGap, "gap:verify-reject-machines-ok",
                  "verifier rejects but machines ran clean: " +
                      first_violations(vr, 3));
    return fail(rep, Stage::Verify, "verify-reject", first_violations(vr, 3));
  }
  if (!func_ok)
    return fail(rep, Stage::FunctionalOriginal, "functional-original", func_err);
  if (mv.deadlock)
    return fail(rep, Stage::VerifyMachineGap,
                deadlock_signature(mv),
                "verifier accepted the binary but " + mv.deadlock_preset +
                    " deadlocked: " + mv.deadlock_detail);
  if (mv.stage != Stage::Ok) return fail(rep, mv.stage, mv.signature, mv.detail);
  return rep;
}

}  // namespace hidisc::fuzz
