// Reproducer corpus I/O.
//
// A corpus entry is a plain .s file whose leading `# key: value` comment
// lines carry replay metadata (the assembler treats them as comments, so
// the file also assembles as-is):
//
//   # hifuzz-repro v1
//   # name: cvtfi-saturation
//   # seed: 140737425802
//   # expect: ok
//   # streams: AACCA...        (optional: hand-decoupled entry)
//   # inject: drop-push        (optional: fault applied during replay)
//   # note: free text
//   .data
//   ...
//
// `expect` is the oracle signature replay must produce — "ok" for every
// regression entry (the bug the file once triggered is fixed).  Entries
// with a `streams` header replay through the hand-decoupled oracle.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/oracle.hpp"

namespace hidisc::fuzz {

struct Repro {
  std::string name;
  std::uint64_t seed = 0;           // 0 = hand-written
  std::string expect = "ok";        // oracle signature replay must match
  std::string streams;              // non-empty: decoupled replay mode
  Fault inject = Fault::None;       // fault applied during replay
  std::string note;
  std::string source;               // assembly text (no metadata lines)
  std::filesystem::path path;       // origin, when loaded from disk
};

// Parses a corpus file; throws std::runtime_error on malformed metadata.
[[nodiscard]] Repro load_repro(const std::filesystem::path& file);

// Writes `r` (creates parent directories as needed).
void write_repro(const std::filesystem::path& file, const Repro& r);

// Loads every *.s file in `dir`, sorted by filename.  Throws if the
// directory does not exist.
[[nodiscard]] std::vector<Repro> load_corpus(
    const std::filesystem::path& dir);

// Replays one entry through the right oracle (sequential or decoupled).
[[nodiscard]] OracleReport replay(const Repro& r,
                                  const OracleOptions& opt = {});

}  // namespace hidisc::fuzz
