#include "fuzz/shrink.hpp"

#include <algorithm>
#include <vector>

namespace hidisc::fuzz {
namespace {

class Shrinker {
 public:
  Shrinker(const OracleOptions& oracle_opts, std::string signature,
           std::size_t max_evals)
      : oracle_opts_(oracle_opts),
        signature_(std::move(signature)),
        max_evals_(max_evals) {}

  [[nodiscard]] std::size_t evals() const { return evals_; }
  [[nodiscard]] bool budget_left() const { return evals_ < max_evals_; }

  // True when the candidate still fails with the target signature.
  bool still_fails(const Kernel& k) {
    if (!budget_left()) return false;
    ++evals_;
    const auto rep = run_oracles(to_source(k), oracle_opts_);
    return !rep.ok() && rep.signature == signature_;
  }

  // Greedily lower every loop trip count.
  bool lower_counts(Kernel& k) {
    bool changed = false;
    for (auto& line : k.code) {
      if (line.count <= 1) continue;
      for (const std::int64_t trial :
           {std::int64_t{1}, std::int64_t{2}, line.count / 8,
            line.count / 2}) {
        if (trial < 1 || trial >= line.count) continue;
        const std::int64_t saved = line.count;
        line.count = trial;
        if (still_fails(k)) {
          changed = true;
          break;
        }
        line.count = saved;
        if (!budget_left()) return changed;
      }
    }
    return changed;
  }

  // Chunked removal of removable lines (ddmin flavour): try to delete
  // windows of shrinking size until no single line can go.
  bool remove_lines(Kernel& k) {
    bool changed = false;
    bool progress = true;
    while (progress && budget_left()) {
      progress = false;
      std::vector<std::size_t> removable;
      for (std::size_t i = 0; i < k.code.size(); ++i)
        if (k.code[i].removable) removable.push_back(i);
      if (removable.empty()) break;
      for (std::size_t chunk = std::max<std::size_t>(removable.size() / 2, 1);
           chunk >= 1; chunk /= 2) {
        bool removed_at_this_size = false;
        for (std::size_t start = 0; start < removable.size();) {
          if (!budget_left()) return changed;
          const std::size_t end = std::min(start + chunk, removable.size());
          Kernel cand = without(k, removable, start, end);
          if (still_fails(cand)) {
            k = std::move(cand);
            removable.erase(removable.begin() +
                                static_cast<std::ptrdiff_t>(start),
                            removable.begin() +
                                static_cast<std::ptrdiff_t>(end));
            // Reindex the survivors after the deletion.
            const std::size_t deleted = end - start;
            for (std::size_t j = start; j < removable.size(); ++j)
              removable[j] -= deleted;
            changed = progress = removed_at_this_size = true;
          } else {
            start = end;
          }
        }
        if (chunk == 1 && !removed_at_this_size) break;
      }
    }
    return changed;
  }

 private:
  // Copy of `k` minus the code lines at removable[start..end).
  static Kernel without(const Kernel& k,
                        const std::vector<std::size_t>& removable,
                        std::size_t start, std::size_t end) {
    Kernel out;
    out.seed = k.seed;
    out.data = k.data;
    std::vector<bool> drop(k.code.size(), false);
    for (std::size_t j = start; j < end; ++j) drop[removable[j]] = true;
    out.code.reserve(k.code.size() - (end - start));
    for (std::size_t i = 0; i < k.code.size(); ++i)
      if (!drop[i]) out.code.push_back(k.code[i]);
    return out;
  }

  const OracleOptions& oracle_opts_;
  std::string signature_;
  std::size_t max_evals_;
  std::size_t evals_ = 0;
};

}  // namespace

ShrinkOutcome shrink_kernel(const Kernel& k, const OracleOptions& oracle_opts,
                            const std::string& signature,
                            const ShrinkOptions& opt) {
  ShrinkOutcome out;
  out.kernel = k;
  Shrinker s(oracle_opts, signature, opt.max_evals);
  if (!s.still_fails(out.kernel)) {
    out.evals = s.evals();
    return out;  // reproduced stays false
  }
  out.reproduced = true;
  s.lower_counts(out.kernel);
  s.remove_lines(out.kernel);
  s.lower_counts(out.kernel);  // smaller body may allow lower trip counts
  out.evals = s.evals();
  return out;
}

}  // namespace hidisc::fuzz
