#include "fuzz/corpus.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hidisc::fuzz {
namespace {

// "  # key: value" -> {key, value}; empty key when the line is not a
// metadata comment.
std::pair<std::string, std::string> parse_meta(const std::string& line) {
  std::size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= line.size() || line[i] != '#') return {};
  ++i;
  while (i < line.size() && line[i] == ' ') ++i;
  const auto colon = line.find(':', i);
  if (colon == std::string::npos) return {};
  std::string key = line.substr(i, colon - i);
  std::size_t v = colon + 1;
  while (v < line.size() && line[v] == ' ') ++v;
  std::size_t e = line.size();
  while (e > v && (line[e - 1] == ' ' || line[e - 1] == '\r')) --e;
  return {std::move(key), line.substr(v, e - v)};
}

}  // namespace

Repro load_repro(const std::filesystem::path& file) {
  std::ifstream in(file);
  if (!in) throw std::runtime_error("cannot open " + file.string());
  Repro r;
  r.path = file;
  r.name = file.stem().string();
  std::ostringstream src;
  std::string line;
  bool in_header = true;
  while (std::getline(in, line)) {
    if (in_header) {
      const auto [key, value] = parse_meta(line);
      if (!key.empty()) {
        if (key == "name") r.name = value;
        else if (key == "seed") r.seed = std::stoull(value);
        else if (key == "expect") r.expect = value;
        else if (key == "streams") r.streams = value;
        else if (key == "inject") {
          const auto f = parse_fault(value);
          if (!f)
            throw std::runtime_error("unknown inject fault '" + value +
                                     "' in " + file.string());
          r.inject = *f;
        }
        else if (key == "note") r.note = value;
        // Unknown keys (e.g. the "hifuzz-repro v1" banner) are ignored.
        continue;
      }
      if (line.empty() || line.find_first_not_of(" \t\r") == std::string::npos)
        continue;  // blank lines before the source
      in_header = false;
    }
    src << line << "\n";
  }
  r.source = src.str();
  if (r.source.empty())
    throw std::runtime_error("no assembly source in " + file.string());
  return r;
}

void write_repro(const std::filesystem::path& file, const Repro& r) {
  if (file.has_parent_path())
    std::filesystem::create_directories(file.parent_path());
  std::ofstream out(file);
  if (!out) throw std::runtime_error("cannot write " + file.string());
  out << "# hifuzz-repro: v1\n";
  out << "# name: " << r.name << "\n";
  if (r.seed) out << "# seed: " << r.seed << "\n";
  out << "# expect: " << r.expect << "\n";
  if (!r.streams.empty()) out << "# streams: " << r.streams << "\n";
  if (r.inject != Fault::None)
    out << "# inject: " << fault_name(r.inject) << "\n";
  if (!r.note.empty()) out << "# note: " << r.note << "\n";
  out << "\n" << r.source;
  if (!r.source.empty() && r.source.back() != '\n') out << "\n";
}

std::vector<Repro> load_corpus(const std::filesystem::path& dir) {
  if (!std::filesystem::is_directory(dir))
    throw std::runtime_error("corpus directory not found: " + dir.string());
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.is_regular_file() && entry.path().extension() == ".s")
      files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  std::vector<Repro> out;
  out.reserve(files.size());
  for (const auto& f : files) out.push_back(load_repro(f));
  return out;
}

OracleReport replay(const Repro& r, const OracleOptions& opt) {
  OracleOptions o = opt;
  if (r.inject != Fault::None) o.fault = r.inject;
  if (!r.streams.empty())
    return run_decoupled_oracles(r.source, r.streams, o);
  return run_oracles(r.source, o);
}

}  // namespace hidisc::fuzz
