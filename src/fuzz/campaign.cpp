#include "fuzz/campaign.hpp"

#include <cctype>
#include <filesystem>
#include <ostream>
#include <set>

#include "fuzz/corpus.hpp"
#include "fuzz/shrink.hpp"
#include "isa/assembler.hpp"

namespace hidisc::fuzz {
namespace {

// Strips characters that do not belong in a filename.
std::string sanitize(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_')
      out.push_back(c);
    else
      out.push_back('-');
  }
  return out;
}

std::size_t assembled_size(const std::string& source) {
  try {
    return isa::assemble(source).code.size();
  } catch (...) {
    return 0;
  }
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t campaign_seed,
                          std::uint64_t run_index) {
  std::uint64_t z = campaign_seed + 0x9e3779b97f4a7c15ull * (run_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

CampaignResult run_campaign(const CampaignOptions& opt) {
  CampaignResult res;
  std::set<std::string> seen;

  for (int i = 0; i < opt.runs; ++i) {
    const std::uint64_t kernel_seed =
        derive_seed(opt.seed, static_cast<std::uint64_t>(i));
    KernelGen gen(kernel_seed);
    const Kernel kernel = gen.generate_random(opt.limits);
    const OracleReport rep = run_oracles(to_source(kernel), opt.oracle);
    ++res.runs_done;
    res.dynamic_instructions += rep.dynamic_instructions;
    if (rep.ok()) {
      if (opt.log && (i + 1) % 200 == 0)
        *opt.log << "[hifuzz] " << (i + 1) << "/" << opt.runs
                 << " runs clean\n";
      continue;
    }

    if (seen.count(rep.signature)) {
      ++res.duplicate_failures;
      continue;
    }
    seen.insert(rep.signature);

    CampaignFailure f;
    f.kernel_seed = kernel_seed;
    f.report = rep;
    if (opt.log)
      *opt.log << "[hifuzz] FAILURE run " << i << " seed " << kernel_seed
               << " stage " << stage_name(rep.stage) << " sig "
               << rep.signature << ": " << rep.detail << "\n";

    Kernel minimized = kernel;
    if (opt.shrink) {
      ShrinkOptions so;
      so.max_evals = opt.shrink_max_evals;
      const auto outcome =
          shrink_kernel(kernel, opt.oracle, rep.signature, so);
      if (outcome.reproduced) minimized = outcome.kernel;
      if (opt.log)
        *opt.log << "[hifuzz]   shrunk in " << outcome.evals
                 << " oracle runs\n";
    }
    f.minimized_source = to_source(minimized);
    f.minimized_instructions = assembled_size(f.minimized_source);

    if (!opt.corpus_out.empty()) {
      Repro r;
      r.name = sanitize(rep.signature) + "-" + std::to_string(kernel_seed);
      r.seed = kernel_seed;
      r.expect = rep.signature;  // flip to "ok" once the bug is fixed
      r.note = std::string("found by hifuzz; stage ") +
               stage_name(rep.stage) + "; " + rep.detail;
      r.source = f.minimized_source;
      const auto path =
          std::filesystem::path(opt.corpus_out) / (r.name + ".s");
      write_repro(path, r);
      f.repro_path = path.string();
      if (opt.log)
        *opt.log << "[hifuzz]   minimized reproducer ("
                 << f.minimized_instructions << " instructions) -> "
                 << f.repro_path << "\n";
    }

    res.failures.push_back(std::move(f));
    if (static_cast<int>(res.failures.size()) >= opt.max_distinct_failures) {
      if (opt.log)
        *opt.log << "[hifuzz] stopping after "
                 << res.failures.size() << " distinct failures\n";
      break;
    }
  }
  return res;
}

}  // namespace hidisc::fuzz
