// Fuzz campaign driver: seed -> generate -> multi-oracle -> shrink ->
// corpus, in a deterministic loop.
//
// Run i derives its kernel seed from the campaign seed with a splitmix64
// step, so `hifuzz --gen-seed <kernel_seed>` regenerates any single run
// exactly.  Failures are deduplicated by oracle signature; each new
// signature is shrunk to a minimal reproducer and (optionally) written to
// the corpus directory.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"

namespace hidisc::fuzz {

// The splitmix64 step used to derive per-run kernel seeds.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t campaign_seed,
                                        std::uint64_t run_index);

struct CampaignOptions {
  std::uint64_t seed = 1;
  int runs = 200;
  GenLimits limits{};
  OracleOptions oracle{};
  bool shrink = true;
  std::size_t shrink_max_evals = 2000;
  int max_distinct_failures = 8;  // stop hunting after this many signatures
  std::string corpus_out;         // write minimized repros here ("" = off)
  std::ostream* log = nullptr;    // progress / failure narration
};

struct CampaignFailure {
  std::uint64_t kernel_seed = 0;
  OracleReport report;            // failure of the full-size kernel
  std::string minimized_source;   // after shrinking (== original if off)
  std::size_t minimized_instructions = 0;
  std::string repro_path;         // where the reproducer was written
};

struct CampaignResult {
  int runs_done = 0;
  std::uint64_t dynamic_instructions = 0;  // total across all runs
  std::vector<CampaignFailure> failures;   // one per distinct signature
  int duplicate_failures = 0;              // same-signature repeats

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

[[nodiscard]] CampaignResult run_campaign(const CampaignOptions& opt);

}  // namespace hidisc::fuzz
