#include "fuzz/generator.hpp"

#include <sstream>

namespace hidisc::fuzz {

std::string to_source(const Kernel& k) {
  std::ostringstream src;
  src << ".data\n";
  for (const auto& d : k.data) src << d << "\n";
  src << ".text\n_start:\n";
  for (const auto& line : k.code) {
    src << line.text;
    if (line.count >= 0) src << line.count;
    src << "\n";
  }
  return src.str();
}

std::size_t code_lines(const Kernel& k) {
  std::size_t n = 0;
  for (const auto& line : k.code) {
    if (line.text.empty()) continue;
    if (line.text.back() == ':' && line.count < 0) continue;  // label
    ++n;
  }
  return n;
}

int KernelGen::pick(int lo, int hi) {
  return std::uniform_int_distribution<int>(lo, hi)(gen_);
}

bool KernelGen::chance(int percent) { return pick(1, 100) <= percent; }

std::string KernelGen::ir() { return "r" + std::to_string(pick(8, 15)); }
std::string KernelGen::fr() { return "f" + std::to_string(pick(1, 8)); }
std::string KernelGen::off8() { return std::to_string(pick(0, 511) * 8); }
std::string KernelGen::off_any(int width) {
  return std::to_string(pick(0, 4095 - width));
}
std::string KernelGen::const_reg() { return "r" + std::to_string(pick(16, 19)); }

// Emits one random loop-body operation (possibly a short multi-line
// sequence).  Every line is individually removable: the shrinker relies on
// the oracle to reject candidates whose removal changes the failure.
void KernelGen::emit_op(Kernel& k, const GenFeatures& f, int depth) {
  auto& c = k.code;
  auto put = [&](std::string s) { c.push_back({"  " + std::move(s), true, -1}); };

  switch (pick(0, 21)) {
    case 0: put("add  " + ir() + ", " + ir() + ", " + ir()); return;
    case 1: put("sub  " + ir() + ", " + ir() + ", " + ir()); return;
    case 2: put("mul  " + ir() + ", " + ir() + ", " + ir()); return;
    case 3: put("xor  " + ir() + ", " + ir() + ", " + ir()); return;
    case 4:
      put("addi " + ir() + ", " + ir() + ", " + std::to_string(pick(-64, 64)));
      return;
    case 5:
      put("slli " + ir() + ", " + ir() + ", " + std::to_string(pick(0, 7)));
      return;
    case 6: put("fadd " + fr() + ", " + fr() + ", " + fr()); return;
    case 7: put("fmul " + fr() + ", " + fr() + ", " + fr()); return;
    case 8: put("ld   " + ir() + ", " + off8() + "(r4)"); return;
    case 9: put("sd   " + ir() + ", " + off8() + "(r4)"); return;
    case 10: put("fld  " + fr() + ", " + off8() + "(r4)"); return;
    case 11: put("fsd  " + fr() + ", " + off8() + "(r4)"); return;

    case 12:  // more integer ALU variety
      switch (pick(0, 5)) {
        case 0: put("and  " + ir() + ", " + ir() + ", " + ir()); return;
        case 1: put("or   " + ir() + ", " + ir() + ", " + ir()); return;
        case 2: put("nor  " + ir() + ", " + ir() + ", " + ir()); return;
        case 3:
          put("srli " + ir() + ", " + ir() + ", " + std::to_string(pick(0, 31)));
          return;
        case 4:
          put("srai " + ir() + ", " + ir() + ", " + std::to_string(pick(0, 31)));
          return;
        default: put("slt  " + ir() + ", " + ir() + ", " + ir()); return;
      }
    case 13:  // more FP variety (fsqrt over fabs keeps the value a number,
              // NaN would still be deterministic but tells us less)
      switch (pick(0, 5)) {
        case 0: put("fsub " + fr() + ", " + fr() + ", " + fr()); return;
        case 1: put("fdiv " + fr() + ", " + fr() + ", " + fr()); return;
        case 2: {
          const auto d = fr();
          put("fabs " + d + ", " + fr());
          put("fsqrt " + d + ", " + d);
          return;
        }
        case 3: put("fmin " + fr() + ", " + fr() + ", " + fr()); return;
        case 4: put("fmax " + fr() + ", " + fr() + ", " + fr()); return;
        default: put("fneg " + fr() + ", " + fr()); return;
      }
    case 14:
      if (!f.divides) break;
      if (chance(50)) put("div  " + ir() + ", " + ir() + ", " + const_reg());
      else put("rem  " + ir() + ", " + ir() + ", " + const_reg());
      return;
    case 15:  // cross-stream value flows: int <-> fp register files
      if (!f.cross_stream) break;
      switch (pick(0, 2)) {
        case 0: put("cvtif " + fr() + ", " + ir()); return;
        case 1: put("cvtfi " + ir() + ", " + fr()); return;
        default: {
          const char* cmp = pick(0, 2) == 0 ? "feq " : pick(0, 1) ? "flt " : "fle ";
          put(std::string(cmp) + " " + ir() + ", " + fr() + ", " + fr());
          return;
        }
      }
    case 16: {  // pointer-chase: loaded value becomes the next load address
      if (!f.pointer_chase) break;
      put("ld   r20, " + off8() + "(r4)");
      put("andi r20, r20, 4088");
      put("add  r20, r4, r20");
      put("ld   " + ir() + ", 0(r20)");
      return;
    }
    case 17: {  // store through a computed, masked address
      if (!f.pointer_chase) break;
      put("andi r21, " + ir() + ", 4088");
      put("add  r21, r4, r21");
      if (chance(70)) put("sd   " + ir() + ", 0(r21)");
      else put("fsd  " + fr() + ", 0(r21)");
      return;
    }
    case 18: {  // loop-index-dependent load (streaming access pattern)
      put("slli r21, r5, 3");
      put("andi r21, r21, 4088");
      put("add  r21, r4, r21");
      put("ld   " + ir() + ", 0(r21)");
      return;
    }
    case 19:  // sub-doubleword memory widths, arbitrary alignment
      if (!f.wide_mem) break;
      switch (pick(0, 6)) {
        case 0: put("lbu  " + ir() + ", " + off_any(1) + "(r4)"); return;
        case 1: put("lb   " + ir() + ", " + off_any(1) + "(r4)"); return;
        case 2: put("lh   " + ir() + ", " + off_any(2) + "(r4)"); return;
        case 3: put("lw   " + ir() + ", " + off_any(4) + "(r4)"); return;
        case 4: put("sb   " + ir() + ", " + off_any(1) + "(r4)"); return;
        case 5: put("sh   " + ir() + ", " + off_any(2) + "(r4)"); return;
        default: put("sw   " + ir() + ", " + off_any(4) + "(r4)"); return;
      }
    case 20:
      if (!f.prefetches) break;
      put("pref " + off8() + "(r4)");
      return;
    case 21:
      if (f.if_blocks && depth == 0 && chance(60)) {
        emit_if_block(k, f);
        return;
      }
      put("lui  " + ir() + ", " + std::to_string(pick(-32, 32)));
      return;
    default: break;
  }
  // Disabled feature: fall back to a core op.
  put("add  " + ir() + ", " + ir() + ", " + ir());
}

void KernelGen::emit_if_block(Kernel& k, const GenFeatures& f) {
  auto& c = k.code;
  const std::string label = "skip" + std::to_string(label_counter_++);
  const std::string cond = "r12";
  if (f.cross_stream && chance(40)) {
    c.push_back({"  flt  " + cond + ", " + fr() + ", " + fr(), true, -1});
  } else {
    c.push_back({"  slt  " + cond + ", " + ir() + ", " + ir(), true, -1});
  }
  c.push_back({"  beq  " + cond + ", r0, " + label, true, -1});
  const int n = pick(1, 2);
  for (int i = 0; i < n; ++i) emit_op(k, f, /*depth=*/1);
  c.push_back({label + ":", true, -1});
}

void KernelGen::emit_inner_loop(Kernel& k, const GenFeatures& f) {
  auto& c = k.code;
  const std::string label = "inner" + std::to_string(label_counter_++);
  c.push_back({"  li   r7, ", true, pick(2, 6)});
  c.push_back({label + ":", true, -1});
  const int n = pick(1, 3);
  for (int i = 0; i < n; ++i) emit_op(k, f, /*depth=*/1);
  c.push_back({"  addi r7, r7, -1", true, -1});
  c.push_back({"  bne  r7, r0, " + label, true, -1});
}

Kernel KernelGen::generate_kernel(const GenOptions& opt) {
  Kernel k;
  k.seed = seed_;
  k.data = {"buf:   .space 4096",
            "seeds: .double 1.5, -2.25, 0.75, 3.0"};
  auto& c = k.code;
  const auto& f = opt.features;

  // Prologue: bases, loop bound, FP/int register pools, constants.  The
  // buf base and the main loop skeleton are the only non-removable lines —
  // the shrinker may strip everything else and let the oracle re-validate.
  c.push_back({"  la   r4, buf", false, -1});
  c.push_back({"  li   r5, ", false, std::max(1, opt.iterations)});
  c.push_back({"  la   r6, seeds", true, -1});
  c.push_back({"  fld  f1, 0(r6)", true, -1});
  c.push_back({"  fld  f2, 8(r6)", true, -1});
  c.push_back({"  fld  f3, 16(r6)", true, -1});
  c.push_back({"  fld  f4, 24(r6)", true, -1});
  c.push_back({"  fadd f5, f1, f2", true, -1});
  c.push_back({"  fmul f6, f3, f4", true, -1});
  c.push_back({"  fsub f7, f2, f3", true, -1});
  c.push_back({"  fadd f8, f4, f1", true, -1});
  c.push_back({"  li   r8, 3", true, -1});
  c.push_back({"  li   r9, -7", true, -1});
  c.push_back({"  li   r10, 11", true, -1});
  c.push_back({"  li   r11, 100", true, -1});
  c.push_back({"  li   r12, 13", true, -1});
  c.push_back({"  li   r13, 29", true, -1});
  c.push_back({"  li   r14, -3", true, -1});
  c.push_back({"  li   r15, 71", true, -1});
  // Non-zero constant registers: legal div/rem divisors and multipliers.
  c.push_back({"  li   r16, 3", true, -1});
  c.push_back({"  li   r17, -7", true, -1});
  c.push_back({"  li   r18, 11", true, -1});
  c.push_back({"  li   r19, 5", true, -1});

  if (f.init_loop) {
    // Scatter 8-aligned offsets into buf so early pointer chases land on
    // varied addresses instead of a sea of zeroes.
    c.push_back({"  li   r7, ", true, 63});
    c.push_back({"init:", true, -1});
    c.push_back({"  slli r20, r7, 3", true, -1});
    c.push_back({"  add  r20, r4, r20", true, -1});
    c.push_back({"  mul  r21, r7, r18", true, -1});
    c.push_back({"  slli r21, r21, 3", true, -1});
    c.push_back({"  andi r21, r21, 4088", true, -1});
    c.push_back({"  sd   r21, 0(r20)", true, -1});
    c.push_back({"  addi r7, r7, -1", true, -1});
    c.push_back({"  bne  r7, r0, init", true, -1});
  }

  c.push_back({"loop:", false, -1});
  bool nested_done = false;
  for (int i = 0; i < opt.body_ops; ++i) {
    if (f.nested_loop && !nested_done && opt.body_ops > 6 &&
        i == opt.body_ops / 2) {
      emit_inner_loop(k, f);
      nested_done = true;
      continue;
    }
    emit_op(k, f, /*depth=*/0);
  }
  c.push_back({"  addi r5, r5, -1", false, -1});
  c.push_back({"  bne  r5, r0, loop", false, -1});

  // Persist every pool register so no computation is dead.
  for (int r = 8; r <= 15; ++r)
    c.push_back({"  sd   r" + std::to_string(r) + ", " +
                     std::to_string((r - 8) * 8) + "(r4)",
                 true, -1});
  for (int fp = 1; fp <= 8; ++fp)
    c.push_back({"  fsd  f" + std::to_string(fp) + ", " +
                     std::to_string(56 + fp * 8) + "(r4)",
                 true, -1});
  c.push_back({"  halt", false, -1});
  return k;
}

Kernel KernelGen::generate_random(const GenLimits& limits) {
  GenOptions opt;
  opt.body_ops = pick(limits.min_body_ops, limits.max_body_ops);
  opt.iterations = pick(1, limits.max_iterations);
  GenFeatures& f = opt.features;
  f.pointer_chase = chance(70);
  f.cross_stream = chance(70);
  f.nested_loop = chance(50);
  f.if_blocks = chance(60);
  f.init_loop = chance(50);
  f.wide_mem = chance(60);
  f.divides = chance(50);
  f.prefetches = chance(40);
  return generate_kernel(opt);
}

std::string KernelGen::generate(int body_ops, int iterations) {
  GenOptions opt;
  opt.body_ops = body_ops;
  opt.iterations = iterations;
  GenFeatures& f = opt.features;
  f.pointer_chase = chance(60);
  f.cross_stream = chance(60);
  f.nested_loop = chance(40);
  f.if_blocks = chance(50);
  f.init_loop = chance(40);
  f.wide_mem = chance(50);
  f.divides = chance(40);
  f.prefetches = chance(30);
  return to_source(generate_kernel(opt));
}

}  // namespace hidisc::fuzz
