// Seeded random HiDISC kernel generator — the shared core behind the
// property tests and the hifuzz differential fuzzer.
//
// Programs are *structured*: a sandboxed data segment (`buf`, 4096 bytes,
// plus a few FP seed constants), a register-pool discipline that keeps
// every operation well defined (divides only by non-zero constant
// registers, addresses masked into `buf`, no indirect jumps), and loops
// with explicit counters.  On top of the seed KernelGen's op mix this
// generator adds pointer-chase load chains, cross-stream value flows
// (CVTIF/CVTFI, FP compares feeding integer branches), nested loops,
// guarded if-blocks, sub-doubleword memory widths, divides/remainders,
// and prefetches — each gated by a feature flag so the fuzzer can vary
// the mix per seed.
//
// A kernel is kept as a structured line list (`Kernel`), not a flat
// string, so the shrinker can delta-debug it: every line knows whether it
// is removable and whether it is a loop bound whose trip count can be
// lowered.  `to_source` renders the assembly text.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace hidisc::fuzz {

// One assembly source line of a generated kernel.
struct CodeLine {
  std::string text;       // rendered as-is; loop bounds append `count`
  bool removable = true;  // shrinker may delete this line
  std::int64_t count = -1;  // >= 0: `text` is a "li rN, " loop bound prefix
};

struct Kernel {
  std::uint64_t seed = 0;
  std::vector<std::string> data;  // lines of the .data segment
  std::vector<CodeLine> code;     // lines of .text after _start:
};

// Renders the kernel as assembler input.
[[nodiscard]] std::string to_source(const Kernel& k);

// Counts renderable instructions (non-label, non-empty lines).  Cheap
// upper bound used for reporting; the authoritative count is
// isa::assemble(to_source(k)).code.size().
[[nodiscard]] std::size_t code_lines(const Kernel& k);

struct GenFeatures {
  bool pointer_chase = true;  // load -> masked address -> dependent load
  bool cross_stream = true;   // cvtif/cvtfi, fp compares into int regs
  bool nested_loop = true;    // one inner loop with its own counter
  bool if_blocks = true;      // forward-branch guarded op groups
  bool init_loop = true;      // scatter offsets into buf before the loop
  bool wide_mem = true;       // byte/half/word loads and stores
  bool divides = true;        // div/rem by non-zero constant registers
  bool prefetches = true;     // pref into the sandbox
};

struct GenOptions {
  int body_ops = 24;     // random ops in the main loop body
  int iterations = 200;  // main loop trip count
  GenFeatures features{};
};

// Bounds for randomized per-seed options (used by the fuzz campaign).
struct GenLimits {
  int min_body_ops = 4;
  int max_body_ops = 40;
  int max_iterations = 64;
};

class KernelGen {
 public:
  explicit KernelGen(std::uint64_t seed) : seed_(seed), gen_(seed) {}

  // Fully structured generation.
  [[nodiscard]] Kernel generate_kernel(const GenOptions& opt);

  // Randomizes GenOptions (sizes and feature mix) from this generator's
  // own stream, then generates.  One call consumes the seed
  // deterministically: same seed + limits -> same kernel.
  [[nodiscard]] Kernel generate_random(const GenLimits& limits = {});

  // Seed-compatible convenience used by the property tests: renders a
  // kernel with feature flags drawn from the seed.
  [[nodiscard]] std::string generate(int body_ops, int iterations);

 private:
  [[nodiscard]] int pick(int lo, int hi);
  [[nodiscard]] bool chance(int percent);
  [[nodiscard]] std::string ir();  // pool integer register r8..r15
  [[nodiscard]] std::string fr();  // pool FP register f1..f8
  [[nodiscard]] std::string off8();    // 8-aligned offset within buf
  [[nodiscard]] std::string off_any(int width);  // any in-buf offset
  [[nodiscard]] std::string const_reg();  // non-zero constant r16..r19

  void emit_op(Kernel& k, const GenFeatures& f, int depth);
  void emit_if_block(Kernel& k, const GenFeatures& f);
  void emit_inner_loop(Kernel& k, const GenFeatures& f);

  std::uint64_t seed_;
  std::mt19937_64 gen_;
  int label_counter_ = 0;
};

}  // namespace hidisc::fuzz
