// Delta-debugging shrinker for generated kernels.
//
// Given a kernel whose oracle run fails with a particular signature, the
// shrinker searches for a smaller kernel that still fails with the *same*
// signature: loop trip counts are lowered greedily, then removable lines
// are deleted with ddmin-style chunked removal, then counts are lowered
// again.  Every candidate is re-validated through the full oracle stack,
// so structurally broken candidates (deleted labels, runaway loops,
// vanished injection sites) are rejected automatically — they fail at a
// different stage or not at all.
#pragma once

#include <cstddef>

#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"

namespace hidisc::fuzz {

struct ShrinkOptions {
  std::size_t max_evals = 2000;  // oracle-run budget for the search
};

struct ShrinkOutcome {
  Kernel kernel;             // smallest same-signature kernel found
  std::size_t evals = 0;     // oracle runs spent
  bool reproduced = false;   // the input kernel failed as claimed
};

// `signature` must be the failing OracleReport::signature of `k` under
// `oracle_opts` (including any injected fault).
[[nodiscard]] ShrinkOutcome shrink_kernel(const Kernel& k,
                                          const OracleOptions& oracle_opts,
                                          const std::string& signature,
                                          const ShrinkOptions& opt = {});

}  // namespace hidisc::fuzz
