#include "compiler/profiler.hpp"

#include <algorithm>

namespace hidisc::compiler {

std::vector<std::int32_t> CacheProfile::probable_miss_instructions(
    double min_miss_rate, std::uint64_t min_misses) const {
  std::vector<std::int32_t> out;
  for (std::size_t i = 0; i < per_instr.size(); ++i) {
    const auto& p = per_instr[i];
    if (p.l1_misses >= min_misses && p.miss_rate() >= min_miss_rate)
      out.push_back(static_cast<std::int32_t>(i));
  }
  return out;
}

CacheProfile profile_cache(const isa::Program& prog, const sim::Trace& trace,
                           const mem::MemConfig& mem_cfg) {
  CacheProfile profile;
  profile.per_instr.resize(prog.code.size());
  profile.dynamic_instructions = trace.size();

  mem::MemorySystem memsys(mem_cfg);
  std::uint64_t cycle = 0;  // profiling uses instruction count as time
  for (const auto& e : trace) {
    ++cycle;
    auto& p = profile.per_instr[e.static_idx];
    ++p.executions;
    const auto& inst = prog.code[e.static_idx];
    if (!isa::is_mem(inst.op) || inst.op == isa::Opcode::PREF) continue;
    ++p.mem_accesses;
    const auto type = isa::is_store(inst.op) ? mem::AccessType::Write
                                             : mem::AccessType::Read;
    const auto res = memsys.access(e.addr, type, cycle, e.static_idx);
    if (!res.l1_hit) {
      ++p.l1_misses;
      ++profile.total_l1_misses;
    }
  }
  return profile;
}

std::int32_t select_trigger(const sim::Trace& trace,
                            const std::vector<std::int32_t>& targets,
                            int distance) {
  if (trace.empty() || targets.empty()) return -1;
  std::vector<bool> is_target;
  std::int32_t max_idx = 0;
  for (const auto t : targets) max_idx = std::max(max_idx, t);
  is_target.assign(static_cast<std::size_t>(max_idx) + 1, false);
  for (const auto t : targets) is_target[t] = true;

  std::unordered_map<std::int32_t, std::uint64_t> histogram;
  const auto d = static_cast<std::size_t>(distance);
  for (std::size_t pos = d; pos < trace.size(); ++pos) {
    const auto idx = trace[pos].static_idx;
    if (static_cast<std::size_t>(idx) < is_target.size() && is_target[idx])
      ++histogram[trace[pos - d].static_idx];
  }
  std::int32_t best = -1;
  std::uint64_t best_count = 0;
  for (const auto& [idx, count] : histogram) {
    if (count > best_count || (count == best_count && idx < best)) {
      best = idx;
      best_count = count;
    }
  }
  return best;
}

}  // namespace hidisc::compiler
