// Structural verifier for compiled (separated + CMAS-annotated) binaries.
//
// `verify_separation` re-derives every invariant the machines rely on and
// returns the violations as strings (empty = valid).  Run it on anything
// you feed to the decoupled machines — especially hand-annotated assembly
// — to catch protocol bugs before they become timing deadlocks:
//
//   * every instruction carries a stream tag, and the tag is legal for
//     its processor (no memory ops on the CP, no FP compute on the AP);
//   * queue roles are consistent (pop opcodes on the consuming side, push
//     flags/opcodes on the producing side);
//   * compiler-inserted pops sit directly after their pushing partner;
//   * along every control-flow path, LDQ/SDQ pushes and pops balance (no
//     layout can drain a queue it never filled);
//   * CMAS groups are subsets of the Access Stream, contain no stores,
//     control flow, or FP, and each trigger references a real group.
#pragma once

#include <string>
#include <vector>

#include "isa/program.hpp"

namespace hidisc::compiler {

struct VerifyResult {
  std::vector<std::string> violations;
  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

[[nodiscard]] VerifyResult verify_separation(const isa::Program& prog);

}  // namespace hidisc::compiler
