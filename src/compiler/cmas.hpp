// CMAS (Cache Miss Access Slice) extraction (paper §3.1, §4.2).
//
// A CMAS group is a probable-miss load together with its backward slice —
// the address-producing instructions the CMP must execute to prefetch that
// load's data.  Groups sharing instructions are merged (their slices would
// otherwise race on the CMP).  Each group receives a trigger instruction
// selected from the profile trace at the configured dynamic distance
// (512 in the paper); when the trigger is fetched, the machine forks the
// group's slice onto the CMP.
#pragma once

#include <cstdint>
#include <vector>

#include "compiler/profiler.hpp"
#include "isa/program.hpp"

namespace hidisc::compiler {

struct CmasGroup {
  std::int16_t id = -1;
  std::vector<std::int32_t> members;  // static indices, ascending
  std::vector<std::int32_t> targets;  // probable-miss loads in the group
  std::int32_t trigger = -1;          // static index carrying is_trigger
};

struct CmasOptions {
  double miss_rate_threshold = 0.05;
  std::uint64_t min_misses = 64;
  int trigger_distance = 512;
};

// Backward slice of `target` over register dependences: includes loads and
// integer compute, never stores, control flow, or floating point (the CMP
// has only integer and load/store units and must not alter program state).
[[nodiscard]] std::vector<std::int32_t> backward_slice(
    const isa::Program& prog, std::int32_t target);

// Identifies probable-miss loads from `profile`, builds merged CMAS groups,
// selects triggers from `trace`, and writes in_cmas/cmas_group/is_trigger/
// trigger_group annotations into `prog`.
std::vector<CmasGroup> extract_cmas(isa::Program& prog,
                                    const CacheProfile& profile,
                                    const sim::Trace& trace,
                                    const CmasOptions& opt);

}  // namespace hidisc::compiler
