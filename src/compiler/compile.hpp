// The HiDISC compiler driver (paper §4, Figure 4).
//
// Pipeline: functional profiling run -> cache-access profile -> CMAS
// extraction (annotates the original binary) -> stream separation with
// communication insertion (produces the decoupled binary).  The returned
// `Compilation` carries both binaries:
//
//   * `original`  — single-stream, CMAS/trigger annotated: input for the
//     Superscalar and CP+CMP machine configurations;
//   * `separated` — AS/CS annotated with queue communications: input for
//     the CP+AP and full HiDISC configurations.
//
// CMAS annotations are applied before separation so that the marks travel
// with the instructions into the separated binary; group ids are valid for
// both.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "compiler/cmas.hpp"
#include "compiler/profiler.hpp"
#include "compiler/slicer.hpp"
#include "isa/program.hpp"
#include "mem/memory_system.hpp"

namespace hidisc::compiler {

struct CompileOptions {
  mem::MemConfig profile_mem{};  // hierarchy used for the profiling pass
  std::uint64_t max_steps = sim::Functional::kDefaultMaxSteps;
  CmasOptions cmas{};
  bool enable_cmas = true;
  // Flow-sensitive pruning of producer-site queue transfers (§6.3); off
  // reproduces the purely flow-insensitive separator for ablation.
  bool flow_sensitive_comm = true;
};

struct Compilation {
  isa::Program original;
  isa::Program separated;
  std::unordered_map<std::int32_t, std::int32_t> ldq_partner;
  std::unordered_map<std::int32_t, std::int32_t> sdq_partner;
  std::vector<CmasGroup> groups;  // member indices refer to `original`
  CacheProfile profile;
  // Separation summary.
  std::size_t access_count = 0;
  std::size_t compute_count = 0;
  std::size_t inserted_pops = 0;
  std::size_t pruned_transfers = 0;
};

// Compiles a conventional sequential binary.  Throws on programs that do
// not halt within `max_steps` or already carry annotations.
[[nodiscard]] Compilation compile(const isa::Program& prog,
                                  const CompileOptions& opt = {});

}  // namespace hidisc::compiler
