#include "compiler/slicer.hpp"

#include <bitset>
#include <stdexcept>

#include "compiler/pfg.hpp"

namespace hidisc::compiler {

using isa::Annotation;
using isa::Instruction;
using isa::Opcode;
using isa::Stream;

namespace {

using RegSet = std::bitset<isa::kNumArchRegs>;

void check_clean_input(const isa::Program& prog) {
  for (const auto& inst : prog.code) {
    if (isa::is_queue_op(inst.op))
      throw std::invalid_argument(
          "separate_streams: input already contains queue opcodes");
    if (!(inst.ann == Annotation{}) &&
        !(inst.ann.in_cmas || inst.ann.is_trigger))
      throw std::invalid_argument(
          "separate_streams: input already carries stream annotations");
  }
}

// True when `inst` must seed the Access Stream.
bool is_seed(const Instruction& inst) {
  return isa::is_mem(inst.op) || isa::is_control(inst.op) ||
         inst.op == Opcode::HALT;
}

}  // namespace

std::vector<bool> access_stream_membership(const isa::Program& prog) {
  const auto n = prog.code.size();
  std::vector<bool> in_as(n, false);
  std::vector<DefUse> du;
  du.reserve(n);
  for (const auto& inst : prog.code)
    du.push_back(ProgramFlowGraph::extract_def_use(inst));

  for (std::size_t i = 0; i < n; ++i)
    if (is_seed(prog.code[i])) in_as[i] = true;

  // Fixpoint: registers consumed by the AS pull their producers into the
  // AS, except floating-point compute (the AP has only integer and
  // load/store units, Table 1).  Store-data operands are chased like any
  // other: an integer value stored by the AP is AP business end to end;
  // only FP-produced store data stays on the CP and crosses via the SDQ —
  // exactly the paper's Figure 5 example, where "s.d $SDQ" receives the
  // result of an FP multiply-add chain.
  bool changed = true;
  while (changed) {
    changed = false;
    RegSet as_reads;
    for (std::size_t i = 0; i < n; ++i) {
      if (!in_as[i]) continue;
      if (du[i].use[0] >= 0) as_reads.set(du[i].use[0]);
      if (du[i].use[1] >= 0) as_reads.set(du[i].use[1]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (in_as[i] || du[i].def < 0) continue;
      if (isa::is_fp_compute(prog.code[i].op)) continue;
      if (as_reads.test(du[i].def)) {
        in_as[i] = true;
        changed = true;
      }
    }
  }
  return in_as;
}

namespace {

Instruction make_pop(Opcode op, isa::Reg dst, Stream stream) {
  Instruction pop;
  pop.op = op;
  pop.dst = dst;
  pop.ann.stream = stream;
  pop.ann.compiler_inserted = true;
  return pop;
}

Instruction make_push(Opcode op, isa::Reg src, Stream stream) {
  Instruction push;
  push.op = op;
  push.src1 = src;
  push.ann.stream = stream;
  push.ann.compiler_inserted = true;
  return push;
}

// Instruction-level successor set; conservative for indirect jumps (jr /
// jalr may go anywhere a call returns, so callers treat them as "reaches
// everything").
void successors(const isa::Program& prog, std::int32_t i,
                std::vector<std::int32_t>& out, bool& indirect) {
  out.clear();
  indirect = false;
  const auto& inst = prog.code[i];
  const auto n = static_cast<std::int32_t>(prog.code.size());
  switch (inst.info().cls) {
    case isa::OpClass::Jump:
      if (inst.op == Opcode::J || inst.op == Opcode::JAL) {
        if (inst.target >= 0 && inst.target < n) out.push_back(inst.target);
      } else {
        indirect = true;
      }
      return;
    case isa::OpClass::Halt:
      return;
    case isa::OpClass::Branch:
      if (inst.target >= 0 && inst.target < n) out.push_back(inst.target);
      if (i + 1 < n) out.push_back(i + 1);
      return;
    default:
      if (inst.op == Opcode::BEOD && inst.target >= 0 && inst.target < n)
        out.push_back(inst.target);
      if (i + 1 < n) out.push_back(i + 1);
      return;
  }
}

// True when some instruction of stream `target` reading register `flat`
// is reachable from (after) instruction `from` without an intervening
// redefinition of `flat`.  Reads are checked before kills (an instruction
// reads its sources before writing its destination).
bool reaches_cross_use(const isa::Program& prog,
                       const std::vector<DefUse>& du,
                       const std::vector<bool>& in_as, std::int32_t from,
                       int flat, bool target_is_as) {
  const auto n = prog.code.size();
  std::vector<bool> visited(n, false);
  std::vector<std::int32_t> stack;
  std::vector<std::int32_t> succ;
  bool indirect = false;
  successors(prog, from, succ, indirect);
  if (indirect) return true;  // conservative
  for (const auto s : succ) stack.push_back(s);
  while (!stack.empty()) {
    const auto i = stack.back();
    stack.pop_back();
    if (visited[i]) continue;
    visited[i] = true;
    const bool is_as = in_as[i];
    for (const int u : {du[i].use[0], du[i].use[1]})
      if (u == flat && is_as == target_is_as) return true;
    if (du[i].def == flat) continue;  // killed past this point
    successors(prog, i, succ, indirect);
    if (indirect) return true;
    for (const auto s : succ)
      if (!visited[s]) stack.push_back(s);
  }
  return false;
}

}  // namespace

SeparationResult separate_streams(const isa::Program& prog,
                                  const sim::Trace* profile,
                                  bool flow_sensitive) {
  check_clean_input(prog);
  SeparationResult out;
  const auto n = static_cast<std::int32_t>(prog.code.size());
  const std::vector<bool> in_as = access_stream_membership(prog);

  std::vector<DefUse> du;
  du.reserve(n);
  for (const auto& inst : prog.code)
    du.push_back(ProgramFlowGraph::extract_def_use(inst));

  // Dynamic execution counts (falling back to 1 per static instruction).
  std::vector<std::uint64_t> dyn(n, 1);
  if (profile != nullptr) {
    std::fill(dyn.begin(), dyn.end(), 0);
    for (const auto& e : *profile) ++dyn[e.static_idx];
  }

  // Per-register facts.  Store-data counts as an AS read (the AP executes
  // the store, so the value must reach the AP).
  struct RegFacts {
    bool as_def = false, cs_def = false;
    bool as_read = false, cs_read = false;
    std::uint64_t dyn_as_defs = 0, dyn_cs_defs = 0;
    std::uint64_t dyn_as_reads = 0, dyn_cs_reads = 0;
  };
  std::vector<RegFacts> facts(isa::kNumArchRegs);
  for (std::int32_t i = 0; i < n; ++i) {
    const bool as = in_as[i];
    if (du[i].def >= 0) {
      auto& f = facts[du[i].def];
      (as ? f.as_def : f.cs_def) = true;
      (as ? f.dyn_as_defs : f.dyn_cs_defs) += dyn[i];
    }
    for (const int u : {du[i].use[0], du[i].use[1]}) {
      if (u < 0) continue;
      auto& f = facts[u];
      (as ? f.as_read : f.cs_read) = true;
      (as ? f.dyn_as_reads : f.dyn_cs_reads) += dyn[i];
    }
  }

  // Site decision per register and direction.  Consumer-site requires all
  // definitions to live in the producing stream (otherwise the consumer's
  // shadow copy could be stale on some path) and pays off when the profile
  // shows more definitions than cross-stream reads.
  RegSet consumer_site_ldq, consumer_site_sdq;
  for (int r = 0; r < isa::kNumArchRegs; ++r) {
    const auto& f = facts[r];
    if (f.as_def && f.cs_read && !f.cs_def &&
        f.dyn_as_defs > f.dyn_cs_reads) {
      consumer_site_ldq.set(r);
      ++out.consumer_site_regs;
    }
    if (f.cs_def && f.as_read && !f.as_def &&
        f.dyn_cs_defs > f.dyn_as_reads) {
      consumer_site_sdq.set(r);
      ++out.consumer_site_regs;
    }
  }

  out.stream_of_original.resize(n);
  out.separated = prog;

  // Decide all insertions against original indices first.
  struct ProducerPop {
    std::int32_t after;  // original index of the producer
    Instruction pop;
  };
  struct ConsumerPair {
    std::int32_t before;  // original index of the consumer
    Instruction push;
    Instruction pop;
  };
  std::vector<ProducerPop> producer_pops;
  std::vector<ConsumerPair> consumer_pairs;

  for (std::int32_t i = 0; i < n; ++i) {
    Instruction& inst = out.separated.code[i];
    const Stream s = in_as[i] ? Stream::Access : Stream::Compute;
    inst.ann.stream = s;
    out.stream_of_original[i] = s;
    if (in_as[i]) ++out.access_count; else ++out.compute_count;

    // Producer-site communication for this instruction's definition.
    // The flow-sensitive refinement only transfers when a cross-stream
    // read is actually reachable from this definition — safe for FIFO
    // pairing because any execution reaching a cross read passed through
    // a pushing definition last.
    if (du[i].def >= 0) {
      const auto& f = facts[du[i].def];
      const bool fp = inst.dst.is_fp();
      if (in_as[i] && f.cs_read && !consumer_site_ldq.test(du[i].def)) {
        if (!flow_sensitive ||
            reaches_cross_use(prog, du, in_as, i, du[i].def,
                              /*target_is_as=*/false)) {
          inst.ann.push_ldq = true;
          producer_pops.push_back(
              {i, make_pop(fp ? Opcode::POPLDQF : Opcode::POPLDQ, inst.dst,
                           Stream::Compute)});
        } else {
          ++out.pruned_transfers;
        }
      } else if (!in_as[i] && f.as_read &&
                 !consumer_site_sdq.test(du[i].def)) {
        if (!flow_sensitive ||
            reaches_cross_use(prog, du, in_as, i, du[i].def,
                              /*target_is_as=*/true)) {
          inst.ann.push_sdq = true;
          producer_pops.push_back(
              {i, make_pop(fp ? Opcode::POPSDQF : Opcode::POPSDQ, inst.dst,
                           Stream::Access)});
        } else {
          ++out.pruned_transfers;
        }
      }
    }

    // Consumer-site communication for this instruction's cross reads.
    int handled[2] = {-1, -1};
    const isa::Reg srcs[2] = {inst.info().reads_src1 ? inst.src1
                                                     : isa::no_reg(),
                              inst.info().reads_src2 ? inst.src2
                                                     : isa::no_reg()};
    for (int k = 0; k < 2; ++k) {
      const isa::Reg r = srcs[k];
      if (!r.valid()) continue;
      const int flat = r.flat();
      if (flat == handled[0]) continue;  // both operands, same register
      const bool want =
          in_as[i] ? consumer_site_sdq.test(flat)
                   : consumer_site_ldq.test(flat);
      if (!want) continue;
      handled[k] = flat;
      const bool fp = r.is_fp();
      ConsumerPair pair;
      pair.before = i;
      if (in_as[i]) {  // CS value consumed by the AS: travel via SDQ
        pair.push = make_push(fp ? Opcode::PUSHSDQF : Opcode::PUSHSDQ, r,
                              Stream::Compute);
        pair.pop = make_pop(fp ? Opcode::POPSDQF : Opcode::POPSDQ, r,
                            Stream::Access);
      } else {  // AS value consumed by the CS: travel via LDQ
        pair.push = make_push(fp ? Opcode::PUSHLDQF : Opcode::PUSHLDQ, r,
                              Stream::Access);
        pair.pop = make_pop(fp ? Opcode::POPLDQF : Opcode::POPLDQ, r,
                            Stream::Compute);
      }
      consumer_pairs.push_back(pair);
    }
  }

  // Apply insertions from the highest original index down so earlier
  // anchors stay valid.  For equal anchors the relative order of the
  // after-pop (belongs to instruction i) and before-pair (belongs to the
  // same instruction's reads) is immaterial.
  {
    std::size_t pp = producer_pops.size();
    std::size_t cp = consumer_pairs.size();
    while (pp > 0 || cp > 0) {
      const std::int32_t at_pp =
          pp > 0 ? producer_pops[pp - 1].after : -1;
      const std::int32_t at_cp =
          cp > 0 ? consumer_pairs[cp - 1].before : -1;
      if (at_pp >= at_cp) {
        const auto& p = producer_pops[--pp];
        out.separated.insert_after(p.after, p.pop);
        ++out.inserted_pops;
      } else {
        const auto& c = consumer_pairs[--cp];
        out.separated.insert_before(c.before, c.pop);
        out.separated.insert_before(c.before, c.push);
        ++out.inserted_pops;
      }
    }
  }
  // Rebuild partner maps against final indices: each inserted pop sits
  // immediately after the instruction that feeds its queue — the flagged
  // producer (producer-site) or the inserted PUSH (consumer-site).
  for (std::int32_t i = 0; i < static_cast<std::int32_t>(
                                   out.separated.code.size());
       ++i) {
    const Instruction& inst = out.separated.code[i];
    if (!inst.ann.compiler_inserted) continue;
    if (inst.op == Opcode::POPLDQ || inst.op == Opcode::POPLDQF)
      out.ldq_partner.emplace(i, i - 1);
    else if (inst.op == Opcode::POPSDQ || inst.op == Opcode::POPSDQF)
      out.sdq_partner.emplace(i, i - 1);
  }
  return out;
}

}  // namespace hidisc::compiler
