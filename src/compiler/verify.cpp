#include "compiler/verify.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "isa/disassembler.hpp"

namespace hidisc::compiler {

using isa::Opcode;
using isa::Stream;

namespace {

constexpr int kInf = std::numeric_limits<int>::max() / 4;

struct QueueEffect {
  // Occupancy change range [lo, hi] (BEOD consumes 0 or 1 entries).
  int ldq_lo = 0, ldq_hi = 0;
  int sdq_lo = 0, sdq_hi = 0;
};

QueueEffect effect_of(const isa::Instruction& inst) {
  QueueEffect e;
  switch (inst.op) {
    case Opcode::PUSHLDQ: case Opcode::PUSHLDQF: case Opcode::PUTEOD:
      e.ldq_lo = e.ldq_hi = +1;
      break;
    case Opcode::POPLDQ: case Opcode::POPLDQF:
      e.ldq_lo = e.ldq_hi = -1;
      break;
    case Opcode::BEOD:
      e.ldq_lo = -1;
      e.ldq_hi = 0;
      break;
    case Opcode::PUSHSDQ: case Opcode::PUSHSDQF:
      e.sdq_lo = e.sdq_hi = +1;
      break;
    case Opcode::POPSDQ: case Opcode::POPSDQF:
      e.sdq_lo = e.sdq_hi = -1;
      break;
    default:
      break;
  }
  if (inst.ann.push_ldq) {
    ++e.ldq_lo;
    ++e.ldq_hi;
  }
  if (inst.ann.push_sdq) {
    ++e.sdq_lo;
    ++e.sdq_hi;
  }
  return e;
}

struct Interval {
  int lo = 0, hi = 0;
  bool reached = false;

  bool merge(const Interval& other) {
    if (!other.reached) return false;
    if (!reached) {
      *this = other;
      return true;
    }
    bool changed = false;
    if (other.lo < lo) { lo = other.lo; changed = true; }
    if (other.hi > hi) { hi = other.hi; changed = true; }
    return changed;
  }
};

void note(VerifyResult& out, std::int32_t idx, const isa::Instruction& inst,
          const std::string& what) {
  std::ostringstream msg;
  msg << "[" << idx << "] " << isa::disassemble(inst) << ": " << what;
  out.violations.push_back(msg.str());
}

}  // namespace

VerifyResult verify_separation(const isa::Program& prog) {
  VerifyResult out;
  const auto n = static_cast<std::int32_t>(prog.code.size());
  if (n == 0) {
    out.violations.push_back("empty program");
    return out;
  }

  // ---- per-instruction stream / role legality ----------------------------
  for (std::int32_t i = 0; i < n; ++i) {
    const auto& inst = prog.code[i];
    const auto s = inst.ann.stream;
    if (s == Stream::None) {
      note(out, i, inst, "missing stream annotation");
      continue;
    }
    if (s == Stream::Compute &&
        (isa::is_mem(inst.op) || isa::is_branch(inst.op) ||
         inst.op == Opcode::JR || inst.op == Opcode::JALR))
      note(out, i, inst, "memory/branch instruction routed to the CP");
    if (s == Stream::Access && isa::is_fp_compute(inst.op))
      note(out, i, inst, "FP compute routed to the AP (no FP units)");
    // Queue role sides: LDQ is AP->CP, SDQ is CP->AP.
    switch (inst.op) {
      case Opcode::PUSHLDQ: case Opcode::PUSHLDQF: case Opcode::PUTEOD:
        if (s != Stream::Access)
          note(out, i, inst, "LDQ producer must be on the access side");
        break;
      case Opcode::POPLDQ: case Opcode::POPLDQF:
        if (s != Stream::Compute)
          note(out, i, inst, "LDQ consumer must be on the compute side");
        break;
      case Opcode::PUSHSDQ: case Opcode::PUSHSDQF:
        if (s != Stream::Compute)
          note(out, i, inst, "SDQ producer must be on the compute side");
        break;
      case Opcode::POPSDQ: case Opcode::POPSDQF:
        if (s != Stream::Access)
          note(out, i, inst, "SDQ consumer must be on the access side");
        break;
      default:
        break;
    }
    if (inst.ann.push_ldq && s != Stream::Access)
      note(out, i, inst, "push_ldq flag on a non-access instruction");
    if (inst.ann.push_sdq && s != Stream::Compute)
      note(out, i, inst, "push_sdq flag on a non-compute instruction");

    // Compiler-inserted pops must sit directly after their partner.
    if (inst.ann.compiler_inserted) {
      const bool is_pop = inst.op == Opcode::POPLDQ ||
                          inst.op == Opcode::POPLDQF ||
                          inst.op == Opcode::POPSDQ ||
                          inst.op == Opcode::POPSDQF;
      if (is_pop) {
        if (i == 0) {
          note(out, i, inst, "inserted pop with no producer before it");
        } else {
          const auto& prev = prog.code[i - 1];
          const bool ldq = inst.op == Opcode::POPLDQ ||
                           inst.op == Opcode::POPLDQF;
          const bool paired =
              ldq ? (prev.ann.push_ldq || prev.op == Opcode::PUSHLDQ ||
                     prev.op == Opcode::PUSHLDQF)
                  : (prev.ann.push_sdq || prev.op == Opcode::PUSHSDQ ||
                     prev.op == Opcode::PUSHSDQF);
          if (!paired)
            note(out, i, inst,
                 "inserted pop is not adjacent to a matching push");
        }
      }
    }
  }

  // ---- CMAS structure -----------------------------------------------------
  std::int16_t max_group = -1;
  for (std::int32_t i = 0; i < n; ++i) {
    const auto& inst = prog.code[i];
    if (inst.ann.in_cmas) {
      max_group = std::max(max_group, inst.ann.cmas_group);
      if (inst.ann.cmas_group < 0)
        note(out, i, inst, "CMAS member without a group id");
      if (inst.ann.stream == Stream::Compute)
        note(out, i, inst, "CMAS member outside the Access Stream");
      if (isa::is_store(inst.op) || isa::is_control(inst.op) ||
          isa::is_fp_compute(inst.op) || isa::is_queue_op(inst.op))
        note(out, i, inst, "illegal opcode inside a CMAS slice");
    }
  }
  for (std::int32_t i = 0; i < n; ++i) {
    const auto& inst = prog.code[i];
    if (inst.ann.is_trigger &&
        (inst.ann.trigger_group < 0 || inst.ann.trigger_group > max_group))
      note(out, i, inst, "trigger references a nonexistent CMAS group");
  }

  // ---- sequential queue balance (interval dataflow with widening) --------
  // Tracks possible LDQ/SDQ occupancy at each instruction under sequential
  // (functional) execution.  lo < 0 means some path pops an empty queue;
  // unbounded hi on a cycle means a layout that grows a queue every lap —
  // a timing deadlock once capacity is exceeded.
  std::vector<Interval> ldq_in(n), sdq_in(n);
  std::vector<int> visits(n, 0);
  std::vector<std::int32_t> work{prog.entry};
  ldq_in[prog.entry].reached = true;
  sdq_in[prog.entry].reached = true;
  bool underflow_noted = false, growth_noted = false;
  while (!work.empty()) {
    const auto i = work.back();
    work.pop_back();
    const auto e = effect_of(prog.code[i]);
    Interval ldq = ldq_in[i], sdq = sdq_in[i];
    ldq.lo += e.ldq_lo;
    ldq.hi = ldq.hi >= kInf ? kInf : ldq.hi + e.ldq_hi;
    sdq.lo += e.sdq_lo;
    sdq.hi = sdq.hi >= kInf ? kInf : sdq.hi + e.sdq_hi;
    if ((ldq.lo < 0 || sdq.lo < 0) && !underflow_noted) {
      underflow_noted = true;
      note(out, i, prog.code[i],
           "a path through here pops more than was pushed");
      break;
    }
    if (++visits[i] > 8) {  // widen: the occupancy grows around a cycle
      if (ldq.hi > ldq_in[i].hi) ldq.hi = kInf;
      if (sdq.hi > sdq_in[i].hi) sdq.hi = kInf;
    }
    // Successors.
    const auto& inst = prog.code[i];
    std::vector<std::int32_t> succs;
    if (isa::is_jump(inst.op)) {
      if (inst.op == Opcode::J || inst.op == Opcode::JAL) {
        succs.push_back(inst.target);
      } else {
        // Indirect: conservatively stop balance tracking here.
        continue;
      }
    } else if (inst.op == Opcode::HALT) {
      continue;
    } else {
      if (isa::is_branch(inst.op) || inst.op == Opcode::BEOD)
        if (inst.target >= 0) succs.push_back(inst.target);
      if (i + 1 < n) succs.push_back(i + 1);
    }
    for (const auto s : succs) {
      if (s < 0 || s >= n) continue;
      Interval l = ldq, q = sdq;
      const bool changed =
          ldq_in[s].merge(l) | sdq_in[s].merge(q);
      if (changed && visits[s] < 64) work.push_back(s);
    }
  }
  if (!growth_noted) {
    for (std::int32_t i = 0; i < n; ++i) {
      if ((ldq_in[i].reached && ldq_in[i].hi >= kInf) ||
          (sdq_in[i].reached && sdq_in[i].hi >= kInf)) {
        note(out, i, prog.code[i],
             "queue occupancy grows without bound around a loop "
             "(will deadlock the timing machines past queue capacity)");
        growth_noted = true;
        break;
      }
    }
  }

  return out;
}

}  // namespace hidisc::compiler
