#include "compiler/verify.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "isa/disassembler.hpp"

namespace hidisc::compiler {

using isa::Opcode;
using isa::Stream;

namespace {

constexpr int kInf = std::numeric_limits<int>::max() / 4;

struct QueueEffect {
  // Occupancy change range [lo, hi] (BEOD consumes 0 or 1 entries).
  int ldq_lo = 0, ldq_hi = 0;
  int sdq_lo = 0, sdq_hi = 0;
};

QueueEffect effect_of(const isa::Instruction& inst) {
  QueueEffect e;
  switch (inst.op) {
    case Opcode::PUSHLDQ: case Opcode::PUSHLDQF: case Opcode::PUTEOD:
      e.ldq_lo = e.ldq_hi = +1;
      break;
    case Opcode::POPLDQ: case Opcode::POPLDQF:
      e.ldq_lo = e.ldq_hi = -1;
      break;
    case Opcode::BEOD:
      e.ldq_lo = -1;
      e.ldq_hi = 0;
      break;
    case Opcode::PUSHSDQ: case Opcode::PUSHSDQF:
      e.sdq_lo = e.sdq_hi = +1;
      break;
    case Opcode::POPSDQ: case Opcode::POPSDQF:
      e.sdq_lo = e.sdq_hi = -1;
      break;
    default:
      break;
  }
  if (inst.ann.push_ldq) {
    ++e.ldq_lo;
    ++e.ldq_hi;
  }
  if (inst.ann.push_sdq) {
    ++e.sdq_lo;
    ++e.sdq_hi;
  }
  return e;
}

struct Interval {
  int lo = 0, hi = 0;
  bool reached = false;

  bool merge(const Interval& other) {
    if (!other.reached) return false;
    if (!reached) {
      *this = other;
      return true;
    }
    bool changed = false;
    if (other.lo < lo) { lo = other.lo; changed = true; }
    if (other.hi > hi) { hi = other.hi; changed = true; }
    return changed;
  }
};

// CFG successors under the same approximations the balance walk uses:
// direct jumps follow their target, indirect jumps (JR/JALR) end tracking,
// branches and BEOD fork, HALT stops.
std::vector<std::int32_t> successors(const isa::Program& prog,
                                     std::int32_t i) {
  const auto n = static_cast<std::int32_t>(prog.code.size());
  const auto& inst = prog.code[i];
  std::vector<std::int32_t> out;
  if (isa::is_jump(inst.op)) {
    if ((inst.op == Opcode::J || inst.op == Opcode::JAL) &&
        inst.target >= 0 && inst.target < n)
      out.push_back(inst.target);
    return out;
  }
  if (inst.op == Opcode::HALT) return out;
  if ((isa::is_branch(inst.op) || inst.op == Opcode::BEOD) &&
      inst.target >= 0 && inst.target < n)
    out.push_back(inst.target);
  if (i + 1 < n) out.push_back(i + 1);
  return out;
}

// Instructions on a cycle through a BEOD.  Inside such a cycle the LDQ
// pops are bounded by queue content, not by static path counting: the
// paper's Figure-3 consumer loop pops until BEOD sees the EOD token, so
// any "pops exceed pushes" path the interval analysis finds there is
// dynamically infeasible.  The LDQ lower bound is clamped at zero on
// these instructions instead of being flagged.
std::vector<char> eod_guarded_set(const isa::Program& prog) {
  const auto n = static_cast<std::int32_t>(prog.code.size());
  std::vector<char> guarded(n, 0);
  std::vector<std::vector<std::int32_t>> preds(n);
  for (std::int32_t i = 0; i < n; ++i)
    for (const auto s : successors(prog, i)) preds[s].push_back(i);
  const auto bfs = [&](std::int32_t from, bool forward) {
    std::vector<char> seen(n, 0);
    std::vector<std::int32_t> work =
        forward ? successors(prog, from) : preds[from];
    while (!work.empty()) {
      const auto i = work.back();
      work.pop_back();
      if (seen[i]) continue;
      seen[i] = 1;
      for (const auto s : forward ? successors(prog, i) : preds[i])
        if (!seen[s]) work.push_back(s);
    }
    return seen;
  };
  for (std::int32_t b = 0; b < n; ++b) {
    if (prog.code[b].op != Opcode::BEOD) continue;
    const auto fwd = bfs(b, /*forward=*/true);
    const auto bwd = bfs(b, /*forward=*/false);
    for (std::int32_t i = 0; i < n; ++i)
      if (fwd[i] && bwd[i]) guarded[i] = 1;
  }
  return guarded;
}

// A counted loop: `li rC, k` dominating a straight-line body [H, br]
// whose only write to rC is `addi rC, rC, -1`, closed by
// `bne rC, r0, H`, with no control transfer into the body from outside.
// Its queue effect is exactly k laps of the body's net delta, so the
// balance walk can apply the remaining k-1 laps on the exit edge instead
// of widening the occupancy to infinity.
struct CountedLoop {
  std::int64_t trips = 0;
  int dldq = 0, dsdq = 0;  // net per-lap occupancy delta (exact)
};

std::vector<CountedLoop> counted_loops(const isa::Program& prog) {
  const auto n = static_cast<std::int32_t>(prog.code.size());
  std::vector<CountedLoop> counted(n);  // keyed by back-edge index; trips=0
  for (std::int32_t i = 0; i < n; ++i) {
    const auto& br = prog.code[i];
    if (br.op != Opcode::BNE || br.target < 0 || br.target > i) continue;
    if (!br.src2.is_int() || br.src2.idx != 0) continue;
    if (!br.src1.is_int() || br.src1.idx == 0) continue;
    const auto h = br.target;
    const auto rc = br.src1;
    bool simple = true;
    int writes = 0, dldq = 0, dsdq = 0;
    for (std::int32_t j = h; j < i && simple; ++j) {
      const auto& inst = prog.code[j];
      if (isa::is_control(inst.op) || inst.op == Opcode::HALT) {
        simple = false;
        break;
      }
      if (inst.info().writes_dst && inst.dst == rc) {
        ++writes;
        if (inst.op != Opcode::ADDI || inst.src1 != rc || inst.imm != -1)
          simple = false;
      }
      const auto e = effect_of(inst);
      dldq += e.ldq_lo;  // straight-line body: lo == hi, effects exact
      dsdq += e.sdq_lo;
    }
    if (!simple || writes != 1) continue;
    // The trip count must come from an `li` that reaches the header along
    // straight-line code (no branch may separate init from loop).
    std::int64_t trips = -1;
    for (std::int32_t j = h - 1; j >= 0; --j) {
      const auto& inst = prog.code[j];
      if (isa::is_control(inst.op) || inst.op == Opcode::HALT) break;
      if (inst.info().writes_dst && inst.dst == rc) {
        if (inst.op == Opcode::ADDI && inst.src1.is_int() &&
            inst.src1.idx == 0 && inst.imm >= 1)
          trips = inst.imm;
        break;
      }
    }
    if (trips < 1) continue;
    bool external_entry = false;
    for (std::int32_t m = 0; m < n && !external_entry; ++m) {
      if (m >= h && m <= i) continue;
      const auto& inst = prog.code[m];
      if ((isa::is_branch(inst.op) || isa::is_jump(inst.op) ||
           inst.op == Opcode::BEOD) &&
          inst.target >= h && inst.target <= i)
        external_entry = true;
    }
    if (external_entry) continue;
    counted[i] = {trips, dldq, dsdq};
  }
  return counted;
}

void note(VerifyResult& out, std::int32_t idx, const isa::Instruction& inst,
          const std::string& what) {
  std::ostringstream msg;
  msg << "[" << idx << "] " << isa::disassemble(inst) << ": " << what;
  out.violations.push_back(msg.str());
}

}  // namespace

VerifyResult verify_separation(const isa::Program& prog) {
  VerifyResult out;
  const auto n = static_cast<std::int32_t>(prog.code.size());
  if (n == 0) {
    out.violations.push_back("empty program");
    return out;
  }

  // ---- per-instruction stream / role legality ----------------------------
  for (std::int32_t i = 0; i < n; ++i) {
    const auto& inst = prog.code[i];
    const auto s = inst.ann.stream;
    if (s == Stream::None) {
      note(out, i, inst, "missing stream annotation");
      continue;
    }
    if (s == Stream::Compute &&
        (isa::is_mem(inst.op) || isa::is_branch(inst.op) ||
         inst.op == Opcode::JR || inst.op == Opcode::JALR))
      note(out, i, inst, "memory/branch instruction routed to the CP");
    if (s == Stream::Access && isa::is_fp_compute(inst.op))
      note(out, i, inst, "FP compute routed to the AP (no FP units)");
    // Queue role sides: LDQ is AP->CP, SDQ is CP->AP.
    switch (inst.op) {
      case Opcode::PUSHLDQ: case Opcode::PUSHLDQF: case Opcode::PUTEOD:
        if (s != Stream::Access)
          note(out, i, inst, "LDQ producer must be on the access side");
        break;
      case Opcode::POPLDQ: case Opcode::POPLDQF:
        if (s != Stream::Compute)
          note(out, i, inst, "LDQ consumer must be on the compute side");
        break;
      case Opcode::PUSHSDQ: case Opcode::PUSHSDQF:
        if (s != Stream::Compute)
          note(out, i, inst, "SDQ producer must be on the compute side");
        break;
      case Opcode::POPSDQ: case Opcode::POPSDQF:
        if (s != Stream::Access)
          note(out, i, inst, "SDQ consumer must be on the access side");
        break;
      default:
        break;
    }
    if (inst.ann.push_ldq && s != Stream::Access)
      note(out, i, inst, "push_ldq flag on a non-access instruction");
    if (inst.ann.push_sdq && s != Stream::Compute)
      note(out, i, inst, "push_sdq flag on a non-compute instruction");

    // Compiler-inserted pops must sit directly after their partner.
    if (inst.ann.compiler_inserted) {
      const bool is_pop = inst.op == Opcode::POPLDQ ||
                          inst.op == Opcode::POPLDQF ||
                          inst.op == Opcode::POPSDQ ||
                          inst.op == Opcode::POPSDQF;
      if (is_pop) {
        if (i == 0) {
          note(out, i, inst, "inserted pop with no producer before it");
        } else {
          const auto& prev = prog.code[i - 1];
          const bool ldq = inst.op == Opcode::POPLDQ ||
                           inst.op == Opcode::POPLDQF;
          const bool paired =
              ldq ? (prev.ann.push_ldq || prev.op == Opcode::PUSHLDQ ||
                     prev.op == Opcode::PUSHLDQF)
                  : (prev.ann.push_sdq || prev.op == Opcode::PUSHSDQ ||
                     prev.op == Opcode::PUSHSDQF);
          if (!paired)
            note(out, i, inst,
                 "inserted pop is not adjacent to a matching push");
        }
      }
    }
  }

  // ---- CMAS structure -----------------------------------------------------
  std::int16_t max_group = -1;
  for (std::int32_t i = 0; i < n; ++i) {
    const auto& inst = prog.code[i];
    if (inst.ann.in_cmas) {
      max_group = std::max(max_group, inst.ann.cmas_group);
      if (inst.ann.cmas_group < 0)
        note(out, i, inst, "CMAS member without a group id");
      if (inst.ann.stream == Stream::Compute)
        note(out, i, inst, "CMAS member outside the Access Stream");
      if (isa::is_store(inst.op) || isa::is_control(inst.op) ||
          isa::is_fp_compute(inst.op) || isa::is_queue_op(inst.op))
        note(out, i, inst, "illegal opcode inside a CMAS slice");
    }
  }
  for (std::int32_t i = 0; i < n; ++i) {
    const auto& inst = prog.code[i];
    if (inst.ann.is_trigger &&
        (inst.ann.trigger_group < 0 || inst.ann.trigger_group > max_group))
      note(out, i, inst, "trigger references a nonexistent CMAS group");
  }

  // ---- sequential queue balance (interval dataflow with widening) --------
  // Tracks possible LDQ/SDQ occupancy at each instruction under sequential
  // (functional) execution.  lo < 0 means some path pops an empty queue;
  // a hi past queue capacity means a layout the in-order front end cannot
  // drain — a timing deadlock.  Two refinements keep hand-decoupled
  // protocols verifiable: counted loops contribute their exact k-lap
  // delta instead of widening, and LDQ pops on a BEOD cycle are clamped
  // (the EOD protocol bounds them dynamically).
  //
  // Capacity mirrors machine::MachineConfig's default 32-entry queues; a
  // bounded batch that fits verifies, one that does not is rejected just
  // like the machines deadlock on it.
  constexpr int kQueueCapacity = 32;
  const auto guarded = eod_guarded_set(prog);
  const auto counted = counted_loops(prog);
  std::vector<Interval> ldq_in(n), sdq_in(n);
  std::vector<int> visits(n, 0);
  std::vector<int> last_ldq_hi(n, std::numeric_limits<int>::min());
  std::vector<int> last_sdq_hi(n, std::numeric_limits<int>::min());
  std::vector<std::int32_t> work{prog.entry};
  ldq_in[prog.entry].reached = true;
  sdq_in[prog.entry].reached = true;
  bool underflow_noted = false;
  while (!work.empty()) {
    const auto i = work.back();
    work.pop_back();
    const auto e = effect_of(prog.code[i]);
    Interval ldq = ldq_in[i], sdq = sdq_in[i];
    ldq.lo += e.ldq_lo;
    ldq.hi = ldq.hi >= kInf ? kInf : ldq.hi + e.ldq_hi;
    sdq.lo += e.sdq_lo;
    sdq.hi = sdq.hi >= kInf ? kInf : sdq.hi + e.sdq_hi;
    if (guarded[i] && ldq.lo < 0) ldq.lo = 0;
    if ((ldq.lo < 0 || sdq.lo < 0) && !underflow_noted) {
      underflow_noted = true;
      note(out, i, prog.code[i],
           "a path through here pops more than was pushed");
      break;
    }
    // Widen when the *incoming* bound keeps growing across visits — the
    // signature of a cycle that pushes more than it pops every lap.
    // (Out-vs-in comparison would widen any positive-effect instruction
    // that is merely revisited, e.g. straight-line code after a loop.)
    if (++visits[i] > 8) {
      if (ldq_in[i].hi > last_ldq_hi[i] &&
          last_ldq_hi[i] != std::numeric_limits<int>::min())
        ldq.hi = kInf;
      if (sdq_in[i].hi > last_sdq_hi[i] &&
          last_sdq_hi[i] != std::numeric_limits<int>::min())
        sdq.hi = kInf;
    }
    last_ldq_hi[i] = ldq_in[i].hi;
    last_sdq_hi[i] = sdq_in[i].hi;
    for (const auto s : successors(prog, i)) {
      Interval l = ldq, q = sdq;
      if (counted[i].trips > 0 && s == i + 1) {
        // Exit edge of a counted loop: the walked path covered one lap;
        // add the remaining k-1 exactly.
        const auto laps = counted[i].trips - 1;
        const auto bump = [&](Interval& v, int d) {
          const auto total = static_cast<std::int64_t>(d) * laps;
          const auto add = [&](int x) {
            const auto r = x + total;
            return static_cast<int>(std::clamp<std::int64_t>(r, -kInf, kInf));
          };
          v.lo = add(v.lo);
          if (v.hi < kInf) v.hi = add(v.hi);
        };
        bump(l, counted[i].dldq);
        bump(q, counted[i].dsdq);
        if (guarded[i] && l.lo < 0) l.lo = 0;
        if ((l.lo < 0 || q.lo < 0) && !underflow_noted) {
          underflow_noted = true;
          note(out, i, prog.code[i],
               "a path through here pops more than was pushed");
          break;
        }
      } else if (counted[i].trips > 0 && s == prog.code[i].target) {
        continue;  // back edge of a counted loop: cut, the exit edge
                   // accounts for every lap
      }
      const bool changed = ldq_in[s].merge(l) | sdq_in[s].merge(q);
      if (changed && visits[s] < 64) work.push_back(s);
    }
  }
  for (std::int32_t i = 0; i < n; ++i) {
    const auto worst =
        std::max(ldq_in[i].reached ? ldq_in[i].hi : 0,
                 sdq_in[i].reached ? sdq_in[i].hi : 0);
    if (worst >= kInf) {
      note(out, i, prog.code[i],
           "queue occupancy grows without bound around a loop "
           "(will deadlock the timing machines past queue capacity)");
      break;
    }
    if (worst > kQueueCapacity) {
      note(out, i, prog.code[i],
           "peak queue occupancy " + std::to_string(worst) +
               " exceeds the " + std::to_string(kQueueCapacity) +
               "-entry queue capacity (will deadlock the timing machines)");
      break;
    }
  }

  return out;
}

}  // namespace hidisc::compiler
