#include "compiler/pfg.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace hidisc::compiler {

using isa::OpClass;
using isa::Opcode;

DefUse ProgramFlowGraph::extract_def_use(const isa::Instruction& inst) {
  DefUse du;
  const auto& info = inst.info();
  if (info.writes_dst && inst.dst.valid() &&
      !(inst.dst.is_int() && inst.dst.idx == 0))
    du.def = inst.dst.flat();
  int n = 0;
  if (info.reads_src1 && inst.src1.valid() &&
      !(inst.src1.is_int() && inst.src1.idx == 0))
    du.use[n++] = inst.src1.flat();
  if (info.reads_src2 && inst.src2.valid() &&
      !(inst.src2.is_int() && inst.src2.idx == 0)) {
    du.use[n] = inst.src2.flat();
    du.use2_is_store_data = isa::is_store(inst.op);
  }
  return du;
}

ProgramFlowGraph::ProgramFlowGraph(const isa::Program& prog) {
  const auto n = static_cast<std::int32_t>(prog.code.size());
  if (n == 0) throw std::invalid_argument("PFG of empty program");

  def_use_.reserve(n);
  for (const auto& inst : prog.code) {
    if (inst.target >= n || (inst.target < 0 && isa::is_branch(inst.op)))
      throw std::invalid_argument("PFG: control target out of range");
    def_use_.push_back(extract_def_use(inst));
  }

  // Leaders: entry, every control target, every instruction after a
  // control transfer.
  std::set<std::int32_t> leaders{0};
  if (prog.entry >= 0 && prog.entry < n) leaders.insert(prog.entry);
  for (std::int32_t i = 0; i < n; ++i) {
    const auto& inst = prog.code[i];
    if (inst.target >= 0 && isa::is_control(inst.op))
      leaders.insert(inst.target);
    if (isa::is_control(inst.op) || inst.op == Opcode::HALT)
      if (i + 1 < n) leaders.insert(i + 1);
  }

  inst_block_.assign(n, -1);
  for (auto it = leaders.begin(); it != leaders.end(); ++it) {
    const std::int32_t first = *it;
    const auto next_it = std::next(it);
    const std::int32_t last = (next_it == leaders.end() ? n : *next_it) - 1;
    const auto id = static_cast<std::int32_t>(blocks_.size());
    blocks_.push_back(BasicBlock{first, last, {}, {}});
    for (std::int32_t i = first; i <= last; ++i) inst_block_[i] = id;
  }

  // Edges.
  for (auto& bb : blocks_) {
    const auto& term = prog.code[bb.last];
    const auto add = [&](std::int32_t target_idx) {
      if (target_idx < 0 || target_idx >= n) return;
      bb.succs.push_back(inst_block_[target_idx]);
    };
    switch (term.info().cls) {
      case OpClass::Branch:
        add(term.target);
        add(bb.last + 1);
        break;
      case OpClass::Jump:
        if (term.op == Opcode::J) {
          add(term.target);
        } else if (term.op == Opcode::JAL) {
          add(term.target);
        } else {
          // jr/jalr: indirect; conservatively link to every block that is
          // a plausible return point (successor of a jal).  For the kernel
          // programs in this repository, fall-through is recorded too.
          for (std::int32_t i = 0; i < n; ++i)
            if (prog.code[i].op == Opcode::JAL) add(i + 1);
        }
        break;
      case OpClass::Halt:
        break;
      case OpClass::Queue:
        if (term.op == Opcode::BEOD) add(term.target);
        add(bb.last + 1);
        break;
      default:
        add(bb.last + 1);
        break;
    }
    std::sort(bb.succs.begin(), bb.succs.end());
    bb.succs.erase(std::unique(bb.succs.begin(), bb.succs.end()),
                   bb.succs.end());
  }
  for (std::size_t b = 0; b < blocks_.size(); ++b)
    for (const auto s : blocks_[b].succs)
      blocks_[s].preds.push_back(static_cast<std::int32_t>(b));
}

}  // namespace hidisc::compiler
