#include "compiler/cmas.hpp"

#include <algorithm>
#include <bitset>
#include <numeric>

#include "compiler/pfg.hpp"

namespace hidisc::compiler {

namespace {

// Instructions eligible for a CMAS slice: anything the CMP can execute
// without architectural side effects.
bool cmas_eligible(const isa::Instruction& inst) {
  if (isa::is_store(inst.op) || isa::is_control(inst.op)) return false;
  if (isa::is_fp_compute(inst.op)) return false;
  if (isa::is_queue_op(inst.op)) return false;
  if (inst.op == isa::Opcode::HALT) return false;
  return true;
}

}  // namespace

std::vector<std::int32_t> backward_slice(const isa::Program& prog,
                                         std::int32_t target) {
  const auto n = prog.code.size();
  std::vector<DefUse> du;
  du.reserve(n);
  for (const auto& inst : prog.code)
    du.push_back(ProgramFlowGraph::extract_def_use(inst));

  std::vector<bool> in_slice(n, false);
  in_slice[target] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    std::bitset<isa::kNumArchRegs> slice_reads;
    for (std::size_t i = 0; i < n; ++i) {
      if (!in_slice[i]) continue;
      if (du[i].use[0] >= 0) slice_reads.set(du[i].use[0]);
      if (du[i].use[1] >= 0 && !du[i].use2_is_store_data)
        slice_reads.set(du[i].use[1]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (in_slice[i] || du[i].def < 0) continue;
      if (!cmas_eligible(prog.code[i])) continue;
      if (slice_reads.test(du[i].def)) {
        in_slice[i] = true;
        changed = true;
      }
    }
  }
  std::vector<std::int32_t> out;
  for (std::size_t i = 0; i < n; ++i)
    if (in_slice[i]) out.push_back(static_cast<std::int32_t>(i));
  return out;
}

std::vector<CmasGroup> extract_cmas(isa::Program& prog,
                                    const CacheProfile& profile,
                                    const sim::Trace& trace,
                                    const CmasOptions& opt) {
  const auto targets = profile.probable_miss_instructions(
      opt.miss_rate_threshold, opt.min_misses);

  // Slice each target, then merge slices that share any instruction
  // (union-find over targets keyed by instruction membership).
  const auto n = prog.code.size();
  // Registers that carry floating-point-derived values anywhere in the
  // program: a slice reading one of them computes addresses the CMP (no FP
  // units, paper Table 1) could not derive, so such groups are dropped —
  // these are the prefetch-resistant loads (e.g. the ray tracer's cells).
  std::bitset<isa::kNumArchRegs> fp_derived;
  for (const auto& inst : prog.code) {
    if (!isa::is_fp_compute(inst.op)) continue;
    const auto du = ProgramFlowGraph::extract_def_use(inst);
    if (du.def >= 0) fp_derived.set(du.def);
  }
  const auto slice_computable = [&](const std::vector<std::int32_t>& slice) {
    for (const auto m : slice) {
      const auto du = ProgramFlowGraph::extract_def_use(prog.code[m]);
      for (const int u : {du.use[0], du.use[1]})
        if (u >= 0 && fp_derived.test(u)) return false;
    }
    return true;
  };

  std::vector<std::vector<std::int32_t>> slices;
  slices.reserve(targets.size());
  for (const auto t : targets) {
    // Only loads can be prefetched; stores that miss are handled by the
    // write buffer and are not CMAS material.
    if (!isa::is_load(prog.code[t].op)) {
      slices.emplace_back();
      continue;
    }
    auto slice = backward_slice(prog, t);
    if (!slice_computable(slice)) slice.clear();
    slices.push_back(std::move(slice));
  }

  std::vector<int> parent(targets.size());
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&parent](int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  std::vector<int> owner(n, -1);  // instruction -> first owning target
  for (std::size_t t = 0; t < targets.size(); ++t) {
    for (const auto m : slices[t]) {
      if (owner[m] < 0) {
        owner[m] = static_cast<int>(t);
      } else {
        parent[find(static_cast<int>(t))] = find(owner[m]);
      }
    }
  }

  // Build merged groups.
  std::vector<CmasGroup> groups;
  std::vector<int> group_of_root(targets.size(), -1);
  for (std::size_t t = 0; t < targets.size(); ++t) {
    if (slices[t].empty()) continue;
    const int root = find(static_cast<int>(t));
    int gid = group_of_root[root];
    if (gid < 0) {
      gid = static_cast<int>(groups.size());
      group_of_root[root] = gid;
      groups.push_back(CmasGroup{static_cast<std::int16_t>(gid), {}, {}, -1});
    }
    auto& g = groups[gid];
    g.targets.push_back(targets[t]);
    g.members.insert(g.members.end(), slices[t].begin(), slices[t].end());
  }
  for (auto& g : groups) {
    std::sort(g.members.begin(), g.members.end());
    g.members.erase(std::unique(g.members.begin(), g.members.end()),
                    g.members.end());
    std::sort(g.targets.begin(), g.targets.end());
  }

  // Annotate membership and select triggers.
  for (auto& g : groups) {
    std::bitset<isa::kNumArchRegs> group_reads;
    for (const auto m : g.members) {
      const auto du = ProgramFlowGraph::extract_def_use(prog.code[m]);
      if (du.use[0] >= 0) group_reads.set(du.use[0]);
      if (du.use[1] >= 0) group_reads.set(du.use[1]);
    }
    for (const auto m : g.members) {
      auto& ann = prog.code[m].ann;
      ann.in_cmas = true;
      ann.cmas_group = g.id;
      // Loads whose value feeds the slice itself (pointer chasing) must be
      // waited on by the CMP; all others are fire-and-forget prefetches.
      if (isa::is_load(prog.code[m].op) && prog.code[m].dst.valid() &&
          group_reads.test(prog.code[m].dst.flat()))
        ann.cmas_value_live = true;
    }
    g.trigger = select_trigger(trace, g.targets, opt.trigger_distance);
    if (g.trigger >= 0) {
      auto& ann = prog.code[g.trigger].ann;
      if (!ann.is_trigger) {  // first group wins on trigger conflicts
        ann.is_trigger = true;
        ann.trigger_group = g.id;
      } else {
        g.trigger = -1;  // conflict: this group ends up untriggered
      }
    }
  }
  return groups;
}

}  // namespace hidisc::compiler
