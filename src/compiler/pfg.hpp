// Program Flow Graph (paper §4.2, step 1: "Deriving the Program Flow
// Graph").
//
// Splits a HISA program into basic blocks with successor/predecessor edges
// and per-instruction def/use summaries.  The stream separator uses the
// def/use sets; tests use the graph to validate structural properties of
// assembled and compiler-rewritten programs.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/program.hpp"

namespace hidisc::compiler {

struct DefUse {
  // Flat register indices (isa::Reg::flat).  dst < 0 when nothing written.
  int def = -1;
  int use[2] = {-1, -1};
  bool use2_is_store_data = false;  // src2 is a store's data operand
};

struct BasicBlock {
  std::int32_t first = 0;  // inclusive instruction index
  std::int32_t last = 0;   // inclusive
  std::vector<std::int32_t> succs;  // successor block ids
  std::vector<std::int32_t> preds;
};

class ProgramFlowGraph {
 public:
  explicit ProgramFlowGraph(const isa::Program& prog);

  [[nodiscard]] const std::vector<BasicBlock>& blocks() const noexcept {
    return blocks_;
  }
  // Block id containing instruction `idx`.
  [[nodiscard]] std::int32_t block_of(std::int32_t idx) const {
    return inst_block_[idx];
  }
  [[nodiscard]] const DefUse& def_use(std::int32_t idx) const {
    return def_use_[idx];
  }
  [[nodiscard]] std::size_t num_instructions() const noexcept {
    return def_use_.size();
  }

  // Static def/use extraction for a single instruction (also used directly
  // by the slicer).
  [[nodiscard]] static DefUse extract_def_use(const isa::Instruction& inst);

 private:
  std::vector<BasicBlock> blocks_;
  std::vector<std::int32_t> inst_block_;
  std::vector<DefUse> def_use_;
};

}  // namespace hidisc::compiler
