#include "compiler/compile.hpp"

#include <stdexcept>

#include "compiler/verify.hpp"

namespace hidisc::compiler {

Compilation compile(const isa::Program& prog, const CompileOptions& opt) {
  Compilation out;
  out.original = prog;

  // 1. Profiling run (functional; also validates that the program halts).
  sim::Functional func(out.original);
  const sim::Trace trace = func.run_trace(opt.max_steps);
  out.profile = profile_cache(out.original, trace, opt.profile_mem);

  // 2. CMAS extraction annotates the original binary in place.
  if (opt.enable_cmas)
    out.groups = extract_cmas(out.original, out.profile, trace, opt.cmas);

  // 3. Stream separation of the (now annotated) binary, with the dynamic
  // profile guiding communication-site placement.
  SeparationResult sep =
      separate_streams(out.original, &trace, opt.flow_sensitive_comm);
  out.separated = std::move(sep.separated);
  out.ldq_partner = std::move(sep.ldq_partner);
  out.sdq_partner = std::move(sep.sdq_partner);
  out.access_count = sep.access_count;
  out.compute_count = sep.compute_count;
  out.inserted_pops = sep.inserted_pops;
  out.pruned_transfers = sep.pruned_transfers;

  // 4. Self-check: the separated binary must satisfy every structural
  // invariant the machines rely on (compiler bug = hard error here, not a
  // mysterious timing deadlock later).
  const auto v = verify_separation(out.separated);
  if (!v.ok())
    throw std::logic_error("compiler produced an invalid separation: " +
                           v.violations.front());
  return out;
}

}  // namespace hidisc::compiler
