// Cache-access profiling (paper §4.2: "We use a cache access profile to
// detect probable cache miss instructions").
//
// Replays a functional trace through a fresh memory hierarchy and records,
// per static load/store, how many L1-D demand misses it caused.  Also
// provides the dynamic-distance histogram used to place each CMAS group's
// trigger instruction ~512 dynamic instructions ahead of its miss (paper:
// "the instruction which is 512 instructions away from the cache miss
// instruction is defined as a trigger instruction").
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "isa/program.hpp"
#include "mem/memory_system.hpp"
#include "sim/functional.hpp"

namespace hidisc::compiler {

struct InstrProfile {
  std::uint64_t executions = 0;
  std::uint64_t mem_accesses = 0;
  std::uint64_t l1_misses = 0;

  [[nodiscard]] double miss_rate() const noexcept {
    return mem_accesses == 0
               ? 0.0
               : static_cast<double>(l1_misses) /
                     static_cast<double>(mem_accesses);
  }
};

struct CacheProfile {
  // Indexed by static instruction.
  std::vector<InstrProfile> per_instr;
  std::uint64_t dynamic_instructions = 0;
  std::uint64_t total_l1_misses = 0;

  // Static instructions whose miss behaviour crosses the thresholds.
  [[nodiscard]] std::vector<std::int32_t> probable_miss_instructions(
      double min_miss_rate, std::uint64_t min_misses) const;
};

// Profiles `prog` by replaying `trace` through `mem_cfg` caches.
[[nodiscard]] CacheProfile profile_cache(const isa::Program& prog,
                                         const sim::Trace& trace,
                                         const mem::MemConfig& mem_cfg);

// For each dynamic occurrence of any instruction in `targets`, looks
// `distance` dynamic instructions backwards in `trace` and histograms the
// static instruction found there; returns the most frequent one (-1 when
// `targets` never executes beyond `distance`).
[[nodiscard]] std::int32_t select_trigger(
    const sim::Trace& trace, const std::vector<std::int32_t>& targets,
    int distance);

}  // namespace hidisc::compiler
