// Stream separation by backward slicing (paper §4.2).
//
// Classifies every instruction into the Access Stream (AS) or the
// Computation Stream (CS) and inserts the queue communications:
//
//  * Seeds: every load, store, prefetch and every control-flow instruction
//    belongs to the AS ("all the control-related instructions are also part
//    of the Access Stream").
//  * Backward chase: any instruction producing a register consumed by an AS
//    instruction joins the AS — transitively — with one barrier:
//    floating-point compute never joins the AS (the AP "has only integer
//    units and load/store units", Table 1).  Values crossing the barrier
//    travel through the queues: FP results consumed by the AS (store data,
//    as in the paper's Figure 5 "s.d $SDQ"; FP-derived addresses) pop the
//    SDQ on the AP — the paper's CP->AP dependence that causes
//    loss-of-decoupling events — and AS values consumed by FP compute are
//    pushed to the LDQ.  Pure-integer reductions are AP business end to
//    end and never cross.
//  * Communication, two placements chosen per register from the profile:
//      - producer-site (default): the defining instruction gets a
//        push_ldq/push_sdq flag and a matching POPLDQ/POPSDQ(dst) is
//        inserted right after it — one transfer per definition;
//      - consumer-site: a PUSH/POP pair is inserted immediately before the
//        consuming instruction — one transfer per consumption.  Chosen when
//        the register's definitions all live in one stream and the dynamic
//        profile shows more definitions than cross-stream reads (e.g. a
//        loop-carried checksum stored once after the loop), where
//        producer-site placement would flood the queue every iteration.
//    Because a single front end fetches one annotated binary (paper
//    Figure 2), pushes and pops execute under the same dynamic control
//    flow and FIFO order pairs them correctly on every path.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "isa/program.hpp"
#include "sim/functional.hpp"

namespace hidisc::compiler {

struct SeparationResult {
  isa::Program separated;   // rewritten binary with stream annotations
  // Instruction index in `separated` of each inserted POP -> index of its
  // producer (the instruction carrying the matching push flag).
  std::unordered_map<std::int32_t, std::int32_t> ldq_partner;
  std::unordered_map<std::int32_t, std::int32_t> sdq_partner;
  // Per original-instruction stream decision (index = original position).
  std::vector<isa::Stream> stream_of_original;
  // Counters for reporting.
  std::size_t access_count = 0;
  std::size_t compute_count = 0;
  std::size_t inserted_pops = 0;
  std::size_t consumer_site_regs = 0;  // registers using consumer-site comm
  // Producer-site transfers removed by the flow-sensitive reachability
  // analysis (a definition only pushes when a cross-stream read of its
  // register is reachable without an intervening redefinition).
  std::size_t pruned_transfers = 0;
};

// Computes AS membership only (no rewriting).  Exposed for tests and for
// CMAS extraction, which slices within the Access Stream.
[[nodiscard]] std::vector<bool> access_stream_membership(
    const isa::Program& prog);

// Full separation: annotate streams, choose communication sites, insert
// queue instructions.  `profile` (a dynamic trace of `prog`) guides the
// producer- vs consumer-site decision; without it, static instruction
// counts are used.  Throws std::invalid_argument if `prog` already
// contains queue opcodes or stream annotations (the input must be a
// conventional sequential binary).
[[nodiscard]] SeparationResult separate_streams(
    const isa::Program& prog, const sim::Trace* profile = nullptr,
    bool flow_sensitive = true);

}  // namespace hidisc::compiler
