#include "lab/export.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "lab/serialize.hpp"

namespace hidisc::lab {

namespace {

// Numbers in the field map are already canonically formatted; quote
// nothing numeric.  (Every visit_result_fields value is numeric/bool.)
void append_result_object(std::ostringstream& out,
                          const machine::Result& r) {
  out << '{';
  bool first = true;
  for (const auto& [name, value] : result_to_fields(r)) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(name) << "\":" << value;
  }
  out << '}';
}

// Minimal CSV quoting for free-text columns (error messages may contain
// commas and quotes).
std::string csv_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    out += c;
  }
  out += '"';
  return out;
}

void append_phase_object(std::ostringstream& out, const char* name,
                         const pipeline::PhaseStats& ph, bool last = false) {
  out << "    \"" << name << "\": {\"total\": " << ph.total
      << ", \"hits\": " << ph.hits << ", \"rebuilt\": " << ph.rebuilt
      << ", \"failed\": " << ph.failed << ", \"skipped\": " << ph.skipped()
      << ", \"ms_hits\": " << format_double(ph.ms_hits)
      << ", \"ms_rebuilt\": " << format_double(ph.ms_rebuilt) << '}'
      << (last ? "\n" : ",\n");
}

}  // namespace

std::string to_json(const ExperimentPlan& plan, const PlanRun& run,
                    const ExportMeta& meta) {
  std::ostringstream out;
  out << "{\n"
      << "  \"plan\": \"" << json_escape(plan.name) << "\",\n"
      << "  \"description\": \"" << json_escape(plan.description) << "\",\n"
      << "  \"threads\": " << meta.threads << ",\n"
      << "  \"wall_ms\": " << format_double(run.wall_ms) << ",\n"
      << "  \"sim_cycles_per_sec\": " << format_double(run.sim_cycles_per_sec)
      << ",\n"
      << "  \"simulated\": " << run.simulated << ",\n"
      << "  \"cache_hits\": " << run.cache_hits << ",\n"
      << "  \"failed\": " << run.failed << ",\n"
      << "  \"nodes\": {\n";
  append_phase_object(out, "compile", run.nodes.compile);
  append_phase_object(out, "trace", run.nodes.trace);
  append_phase_object(out, "sim", run.nodes.sim, /*last=*/true);
  out << "  },\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < plan.cells.size(); ++i) {
    const Cell& c = plan.cells[i];
    const CellResult& r = run.cells[i];
    out << "    {\"workload\": \"" << json_escape(c.workload.name)
        << "\", \"preset\": \""
        << json_escape(machine::preset_name(c.preset)) << "\", \"tag\": \""
        << json_escape(c.tag) << "\", \"key\": \"" << json_escape(r.key)
        << "\", \"cached\": " << (r.from_cache ? "true" : "false")
        << ", \"wall_ms\": " << format_double(r.wall_ms)
        << ", \"sim_cycles_per_sec\": "
        << format_double(r.sim_cycles_per_sec)
        << ", \"orig_dynamic_instructions\": "
        << r.orig_dynamic_instructions
        << ", \"ok\": " << (r.ok() ? "true" : "false");
    if (r.ok()) {
      out << ", \"result\": ";
      append_result_object(out, r.result);
    } else {
      // Failed cell: the attached diagnostics travel with the export, the
      // meaningless Result does not.
      out << ", \"error\": \"" << json_escape(r.error)
          << "\", \"error_class\": \"" << json_escape(r.error_class)
          << "\", \"diagnostic\": "
          << (r.diagnostic_json.empty() ? "null" : r.diagnostic_json);
    }
    out << '}' << (i + 1 < plan.cells.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string to_csv(const ExperimentPlan& plan, const PlanRun& run) {
  std::ostringstream out;
  out << "workload,preset,tag,cached,ok,error_class,cycles,instructions,ipc,"
         "l1_miss_rate,l1_demand_misses,l2_demand_misses,"
         "branch_mispredict_rate,cmas_forks,wall_ms,error\n";
  for (std::size_t i = 0; i < plan.cells.size(); ++i) {
    const Cell& c = plan.cells[i];
    const CellResult& r = run.cells[i];
    char line[512];
    std::snprintf(line, sizeof line,
                  "%s,%s,%s,%d,%d,%s,%llu,%llu,%.6f,%.6f,%llu,%llu,%.6f,"
                  "%llu,%.3f,",
                  c.workload.name.c_str(), machine::preset_name(c.preset),
                  c.tag.c_str(), r.from_cache ? 1 : 0, r.ok() ? 1 : 0,
                  r.error_class.c_str(),
                  static_cast<unsigned long long>(r.result.cycles),
                  static_cast<unsigned long long>(r.result.instructions),
                  r.result.ipc, r.result.l1.demand_miss_rate(),
                  static_cast<unsigned long long>(r.result.l1.demand_misses()),
                  static_cast<unsigned long long>(r.result.l2.demand_misses()),
                  r.result.branch.mispredict_rate(),
                  static_cast<unsigned long long>(r.result.cmas_forks),
                  r.wall_ms);
    out << line;
    if (!r.ok()) out << csv_quote(r.error);
    out << '\n';
  }
  return out.str();
}

void write_text_file(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::fputs(text.c_str(), stdout);
    return;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("hilab: cannot write " + path);
  out << text;
  if (!out.flush())
    throw std::runtime_error("hilab: short write to " + path);
}

}  // namespace hidisc::lab
