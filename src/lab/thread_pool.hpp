// Minimal work-stealing thread pool for the experiment runner.
//
// Tasks land on per-worker deques (round-robin); a worker services its own
// deque LIFO and steals FIFO from the most loaded peer when it runs dry —
// the classic Chase–Lev discipline, except the deques share one mutex: lab
// tasks are whole compilations or cycle-level simulations (milliseconds to
// minutes), so dispatch cost is irrelevant and the simple locking is worth
// its obviousness.  Determinism note: the pool schedules, it never
// aggregates — callers index results by task id, so the output is
// independent of which worker ran what when.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hidisc::lab {

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();  // waits for queued work, then joins

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);
  // Blocks until every submitted task has finished.  Tasks may submit
  // further tasks; wait() covers those too.
  void wait();

  [[nodiscard]] int threads() const noexcept {
    return static_cast<int>(workers_.size());
  }

 private:
  void worker_loop(std::size_t self);
  // Pops the next task for worker `self` (own deque first, then the
  // fullest peer).  Caller holds `mu_`.
  [[nodiscard]] bool try_pop(std::size_t self, std::function<void()>& out);

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers sleep here
  std::condition_variable idle_cv_;  // wait() sleeps here
  std::vector<std::deque<std::function<void()>>> queues_;
  std::vector<std::thread> workers_;
  std::size_t next_queue_ = 0;  // round-robin submission cursor
  std::size_t unfinished_ = 0;  // queued + running
  bool stop_ = false;
};

// Worker-count default for CLI/bench entry points: $HILAB_THREADS if set
// and positive, else std::thread::hardware_concurrency().
[[nodiscard]] int default_threads();

}  // namespace hidisc::lab
