#include "lab/runner.hpp"

#include <chrono>
#include <optional>
#include <stdexcept>

#include "lab/result_cache.hpp"
#include "lab/thread_pool.hpp"
#include "pipeline/executor.hpp"
#include "pipeline/trace_store.hpp"

namespace hidisc::lab {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

const CellResult& PlanRun::at(const ExperimentPlan& plan,
                              const std::string& workload,
                              machine::Preset preset,
                              const std::string& tag) const {
  const auto idx = plan.find(workload, preset, tag);
  if (idx < 0)
    throw std::out_of_range("plan " + plan.name + " has no cell " + workload +
                            "/" + machine::preset_name(preset));
  return cells.at(static_cast<std::size_t>(idx));
}

// Thin driver over the artifact pipeline (src/pipeline/): materialize the
// stores, submit the plan's cells as one node set, translate the outcome
// into the PlanRun shape.  All scheduling, memoization, cache probing and
// fault isolation lives in the DAG executor.
PlanRun run_plan(const ExperimentPlan& plan, const RunOptions& opt) {
  const auto start = Clock::now();

  // Both persistent layers live in the same directory: <key>.result for
  // sim nodes, <key>.trace for trace nodes.
  std::optional<ResultCache> results;
  std::optional<pipeline::TraceStore> traces;
  if (!opt.cache_dir.empty()) {
    results.emplace(opt.cache_dir);
    traces.emplace(opt.cache_dir);
  }
  pipeline::Pipeline::Stores stores;
  stores.results = results ? &*results : nullptr;
  stores.traces = traces ? &*traces : nullptr;
  stores.refresh = opt.refresh;
  pipeline::Pipeline pipe(stores);

  ThreadPool pool(opt.threads);
  const pipeline::Pipeline::CellHook hook =
      [&](std::size_t index, const CellResult&, std::size_t done,
          std::size_t total, bool from_cache) {
        if (opt.on_cell)
          opt.on_cell(plan.cells[index], done, total, from_cache);
      };
  pipeline::Pipeline::Outcome outcome = pipe.run(plan.cells, &pool, hook);

  PlanRun run;
  run.cells = std::move(outcome.cells);
  run.nodes = outcome.nodes;
  run.preps = outcome.nodes.compile.rebuilt;
  run.traces = outcome.nodes.trace.rebuilt;
  for (const auto& cell : run.cells) {
    if (!cell.ok()) {
      ++run.failed;
      continue;
    }
    run.cache_hits += cell.from_cache ? 1 : 0;
    run.simulated += cell.from_cache ? 0 : 1;
  }
  {
    double sim_ms = 0.0;
    std::uint64_t sim_cycles = 0;
    for (const auto& cell : run.cells) {
      if (cell.from_cache || !cell.ok()) continue;
      sim_ms += cell.wall_ms;
      sim_cycles += cell.result.cycles;
    }
    if (sim_ms > 0.0)
      run.sim_cycles_per_sec =
          static_cast<double>(sim_cycles) * 1000.0 / sim_ms;
  }
  run.wall_ms = ms_since(start);
  return run;
}

}  // namespace hidisc::lab
