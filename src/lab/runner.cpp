#include "lab/runner.hpp"

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "diag/deadlock.hpp"
#include "lab/fingerprint.hpp"
#include "lab/result_cache.hpp"
#include "lab/thread_pool.hpp"
#include "machine/machine.hpp"
#include "sim/functional.hpp"

namespace hidisc::lab {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// One distinct (workload spec, compile options) pair and everything
// derived from it.  Cells hold stable pointers into the prep map; all
// fields are written by exactly one pool task per wave and read-only
// afterwards, so cross-thread access needs no locking beyond the waves'
// pool.wait() barriers.
struct Prep {
  WorkloadSpec spec;
  compiler::CompileOptions options;

  compiler::Compilation comp;
  bool need_orig = false, need_sep = false;  // traces wanted by miss cells
  sim::Trace orig_trace, sep_trace;
  // Failure slots: one per producing task, so no two writers share one.
  std::optional<std::string> error;       // compile failure (wave 1)
  std::optional<std::string> error_orig;  // original-trace failure (wave 3)
  std::optional<std::string> error_sep;   // separated-trace failure (wave 3)
};

struct CellState {
  const Cell* cell = nullptr;
  Prep* prep = nullptr;
  CellResult out;
};

}  // namespace

const CellResult& PlanRun::at(const ExperimentPlan& plan,
                              const std::string& workload,
                              machine::Preset preset,
                              const std::string& tag) const {
  const auto idx = plan.find(workload, preset, tag);
  if (idx < 0)
    throw std::out_of_range("plan " + plan.name + " has no cell " + workload +
                            "/" + machine::preset_name(preset));
  return cells.at(static_cast<std::size_t>(idx));
}

PlanRun run_plan(const ExperimentPlan& plan, const RunOptions& opt) {
  const auto start = Clock::now();
  PlanRun run;
  run.cells.resize(plan.cells.size());

  std::optional<ResultCache> cache;
  if (!opt.cache_dir.empty()) cache.emplace(opt.cache_dir);

  // Group cells by prep identity.  std::map keeps pointer stability and a
  // deterministic iteration order.
  std::map<std::string, Prep> preps;
  std::vector<CellState> cells(plan.cells.size());
  for (std::size_t i = 0; i < plan.cells.size(); ++i) {
    const Cell& c = plan.cells[i];
    const std::string prep_key = c.workload.id() + "|" + describe(c.compile);
    auto [it, inserted] = preps.try_emplace(prep_key);
    if (inserted) {
      it->second.spec = c.workload;
      it->second.options = c.compile;
    }
    cells[i].cell = &c;
    cells[i].prep = &it->second;
  }

  ThreadPool pool(opt.threads);
  std::mutex mu;  // guards progress counters + on_cell
  std::size_t done = 0;

  const auto report = [&](const Cell& cell, bool from_cache) {
    std::lock_guard<std::mutex> lock(mu);
    ++done;
    if (opt.on_cell) opt.on_cell(cell, done, plan.cells.size(), from_cache);
  };

  // Wave 1: build + compile each distinct prep once.
  for (auto& [key, prep] : preps) {
    Prep* p = &prep;
    pool.submit([p] {
      try {
        const workloads::BuiltWorkload w = p->spec.build();
        p->comp = compiler::compile(w.program, p->options);
      } catch (const std::exception& e) {
        p->error = e.what();
      }
    });
  }
  pool.wait();
  run.preps = preps.size();
  // A failed prep poisons exactly the cells that reference it; everything
  // else proceeds.
  for (auto& cs : cells)
    if (cs.prep->error) {
      cs.out.error =
          "prep " + cs.prep->spec.name + " failed: " + *cs.prep->error;
      cs.out.error_class = "prep";
      report(*cs.cell, /*from_cache=*/false);
    }

  // Wave 2: content keys + cache probes (cheap; hashing only).
  for (auto& cs : cells) {
    if (!cs.out.ok()) continue;
    pool.submit([&cs, &cache, &opt, &report] {
      const Cell& c = *cs.cell;
      const bool sep = machine::uses_separated_binary(c.preset);
      const isa::Program& binary =
          sep ? cs.prep->comp.separated : cs.prep->comp.original;
      cs.out.key = content_key(binary, c.preset, c.config);
      cs.out.orig_dynamic_instructions =
          cs.prep->comp.profile.dynamic_instructions;
      if (cache && !opt.refresh) {
        if (auto hit = cache->load(cs.out.key)) {
          cs.out.result = hit->result;
          cs.out.orig_dynamic_instructions = hit->orig_dynamic_instructions;
          cs.out.from_cache = true;
          report(c, /*from_cache=*/true);
        }
      }
    });
  }
  pool.wait();

  // Wave 3: functionally trace only the binaries miss cells will run.
  for (const auto& cs : cells)
    if (!cs.out.from_cache && cs.out.ok()) {
      if (machine::uses_separated_binary(cs.cell->preset))
        cs.prep->need_sep = true;
      else
        cs.prep->need_orig = true;
    }
  for (auto& [key, prep] : preps) {
    Prep* p = &prep;
    if (p->need_orig) {
      pool.submit([p] {
        try {
          sim::Functional f(p->comp.original);
          p->orig_trace = f.run_trace(p->options.max_steps);
        } catch (const std::exception& e) {
          p->error_orig = e.what();
        }
      });
      ++run.traces;
    }
    if (p->need_sep) {
      pool.submit([p] {
        try {
          sim::Functional f(p->comp.separated);
          p->sep_trace = f.run_trace(p->options.max_steps);
        } catch (const std::exception& e) {
          p->error_sep = e.what();
        }
      });
      ++run.traces;
    }
  }
  pool.wait();
  // A failed trace poisons the cells that would have consumed it.
  for (auto& cs : cells) {
    if (cs.out.from_cache || !cs.out.ok()) continue;
    const bool sep = machine::uses_separated_binary(cs.cell->preset);
    const auto& err = sep ? cs.prep->error_sep : cs.prep->error_orig;
    if (err) {
      cs.out.error = "trace " + cs.prep->spec.name + " failed: " + *err;
      cs.out.error_class = "trace";
      report(*cs.cell, /*from_cache=*/false);
    }
  }

  // Wave 4: simulate the misses; persist each result as it lands.
  for (auto& cs : cells) {
    if (cs.out.from_cache || !cs.out.ok()) continue;
    pool.submit([&cs, &cache, &report] {
      const Cell& c = *cs.cell;
      const bool sep = machine::uses_separated_binary(c.preset);
      const auto cell_start = Clock::now();
      try {
        cs.out.result = machine::run_machine(
            sep ? cs.prep->comp.separated : cs.prep->comp.original,
            sep ? cs.prep->sep_trace : cs.prep->orig_trace, c.preset,
            c.config);
      } catch (const diag::DeadlockError& e) {
        cs.out.error = e.what();
        cs.out.error_class =
            std::string("deadlock:") + diag::cause_name(e.report().cause);
        cs.out.diagnostic_json = e.report().to_json();
        report(c, /*from_cache=*/false);
        return;
      } catch (const std::exception& e) {
        cs.out.error = e.what();
        cs.out.error_class = "sim";
        report(c, /*from_cache=*/false);
        return;
      }
      cs.out.wall_ms = ms_since(cell_start);
      if (cs.out.wall_ms > 0.0)
        cs.out.sim_cycles_per_sec =
            static_cast<double>(cs.out.result.cycles) * 1000.0 /
            cs.out.wall_ms;
      if (cache)
        cache->store(cs.out.key,
                     CacheEntry{cs.out.result, c.workload.name,
                                machine::preset_name(c.preset),
                                cs.out.orig_dynamic_instructions});
      report(c, /*from_cache=*/false);
    });
  }
  pool.wait();

  for (auto& cs : cells) {
    if (!cs.out.ok()) {
      ++run.failed;
      continue;
    }
    run.cache_hits += cs.out.from_cache ? 1 : 0;
    run.simulated += cs.out.from_cache ? 0 : 1;
  }
  {
    double sim_ms = 0.0;
    std::uint64_t sim_cycles = 0;
    for (const auto& cs : cells) {
      if (cs.out.from_cache || !cs.out.ok()) continue;
      sim_ms += cs.out.wall_ms;
      sim_cycles += cs.out.result.cycles;
    }
    if (sim_ms > 0.0)
      run.sim_cycles_per_sec =
          static_cast<double>(sim_cycles) * 1000.0 / sim_ms;
  }
  for (std::size_t i = 0; i < cells.size(); ++i)
    run.cells[i] = std::move(cells[i].out);
  run.wall_ms = ms_since(start);
  return run;
}

}  // namespace hidisc::lab
