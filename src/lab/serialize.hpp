// machine::Result <-> flat named fields, and the JSON/CSV exporters.
//
// One visitor (`visit_result_fields`) enumerates every scalar field of a
// Result under a stable dotted name ("l1.read_misses", "cp.lod_stalls").
// The on-disk cache format, the JSON export, the CSV export, and the
// exact-equality test helper are all derived from that single listing, so
// a field added to Result shows up everywhere by adding one line here.
//
// JSON schema (docs/LAB.md documents it for external consumers):
//   { "plan": str, "description": str, "threads": int, "wall_ms": num,
//     "failed": int,
//     "cells": [ { "workload": str, "preset": str, "tag": str,
//                  "key": str, "cached": bool, "wall_ms": num,
//                  "orig_dynamic_instructions": int, "ok": bool,
//                  "result": { "<dotted field>": num, ... },   // ok cells
//                  "error": str, "error_class": str,           // failed
//                  "diagnostic": obj|null } ] }                // cells
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>

#include "machine/result.hpp"

namespace hidisc::lab {

namespace detail {

template <class R, class V>
void visit_cache_stats(const std::string& p, R& s, V&& v) {
  v(p + ".reads", s.reads);
  v(p + ".read_misses", s.read_misses);
  v(p + ".writes", s.writes);
  v(p + ".write_misses", s.write_misses);
  v(p + ".prefetches", s.prefetches);
  v(p + ".prefetch_misses", s.prefetch_misses);
  v(p + ".evictions", s.evictions);
  v(p + ".writebacks", s.writebacks);
  v(p + ".useful_prefetches", s.useful_prefetches);
  v(p + ".late_fill_hits", s.late_fill_hits);
  v(p + ".late_prefetch_hits", s.late_prefetch_hits);
}

template <class R, class V>
void visit_core_stats(const std::string& p, R& s, V&& v) {
  v(p + ".committed", s.committed);
  v(p + ".committed_all", s.committed_all);
  v(p + ".loads", s.loads);
  v(p + ".stores", s.stores);
  v(p + ".forwarded_loads", s.forwarded_loads);
  v(p + ".window_full_stalls", s.window_full_stalls);
  v(p + ".lsq_full_stalls", s.lsq_full_stalls);
  v(p + ".queue_full_commit_stalls", s.queue_full_commit_stalls);
  v(p + ".head_pop_empty_stalls", s.head_pop_empty_stalls);
  v(p + ".lod_stalls", s.lod_stalls);
  v(p + ".busy_cycles", s.busy_cycles);
}

template <class R, class V>
void visit_fifo_stats(const std::string& p, R& s, V&& v) {
  v(p + ".pushes", s.pushes);
  v(p + ".pops", s.pops);
  v(p + ".full_stall_cycles", s.full_stall_cycles);
  v(p + ".empty_stall_cycles", s.empty_stall_cycles);
  v(p + ".max_occupancy", s.max_occupancy);
}

}  // namespace detail

// `R` is machine::Result or const machine::Result; `v(name, fieldref)` is
// invoked once per scalar field with a reference of the field's own type
// (uint64_t, size_t, double, bool, int64_t).
template <class R, class V>
void visit_result_fields(R& r, V&& v) {
  v(std::string("cycles"), r.cycles);
  v(std::string("instructions"), r.instructions);
  v(std::string("ipc"), r.ipc);
  detail::visit_cache_stats("l1", r.l1, v);
  detail::visit_cache_stats("l2", r.l2, v);
  v(std::string("pf.trains"), r.pf.trains);
  v(std::string("pf.issued"), r.pf.issued);
  v(std::string("pf.filtered"), r.pf.filtered);
  v(std::string("pf.installed"), r.pf.installed);
  v(std::string("pf.used"), r.pf.used);
  v(std::string("pf.late"), r.pf.late);
  v(std::string("pf.evicted_unused"), r.pf.evicted_unused);
  v(std::string("pf.accuracy"), r.pf_accuracy);
  v(std::string("pf.coverage"), r.pf_coverage);
  v(std::string("pf.lateness"), r.pf_lateness);
  v(std::string("branch.lookups"), r.branch.lookups);
  v(std::string("branch.mispredicts"), r.branch.mispredicts);
  v(std::string("has_main"), r.has_main);
  v(std::string("has_cp"), r.has_cp);
  v(std::string("has_ap"), r.has_ap);
  v(std::string("has_cmp"), r.has_cmp);
  detail::visit_core_stats("main", r.main, v);
  detail::visit_core_stats("cp", r.cp, v);
  detail::visit_core_stats("ap", r.ap, v);
  detail::visit_core_stats("cmp", r.cmp, v);
  detail::visit_fifo_stats("ldq", r.ldq, v);
  detail::visit_fifo_stats("sdq", r.sdq, v);
  detail::visit_fifo_stats("scq", r.scq, v);
  v(std::string("fetch_stall_branch_cycles"), r.fetch_stall_branch_cycles);
  v(std::string("fetch_stall_queue_full"), r.fetch_stall_queue_full);
  v(std::string("cmas_forks"), r.cmas_forks);
  v(std::string("cmas_forks_dropped"), r.cmas_forks_dropped);
  v(std::string("cmas_forks_suppressed"), r.cmas_forks_suppressed);
  v(std::string("cmas_uops"), r.cmas_uops);
  v(std::string("distance_adaptations"), r.distance_adaptations);
  v(std::string("final_fork_lookahead"), r.final_fork_lookahead);
}

// Flat name -> textual value map.  Doubles are rendered with %.17g so the
// round-trip is bit-exact (the cache-hit tests rely on it).
[[nodiscard]] std::map<std::string, std::string> result_to_fields(
    const machine::Result& r);
// Inverse; unknown names are ignored.  Every visited field is *required*:
// when `missing` is non-null it receives the first absent field name (or
// is cleared when the map is complete) — a torn-but-line-aligned cache
// entry must decode as corrupt, not as a silently-zeroed Result.  Callers
// passing nullptr accept defaults for absent names (legacy leniency).
[[nodiscard]] machine::Result result_from_fields(
    const std::map<std::string, std::string>& fields,
    std::string* missing = nullptr);

// True when every visited field compares equal (doubles bit-for-bit).
[[nodiscard]] bool results_identical(const machine::Result& a,
                                     const machine::Result& b);

// JSON string escaping + number formatting helpers shared by the export
// and the cache.
[[nodiscard]] std::string json_escape(const std::string& s);
[[nodiscard]] std::string format_double(double v);

// FNV-1a 64-bit hash; the cache's checksum footer.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data) noexcept;

}  // namespace hidisc::lab
