#include "lab/fingerprint.hpp"

#include <cinttypes>
#include <cstdio>

#include "isa/encoding.hpp"
#include "mem/memory_system.hpp"
#include "uarch/core.hpp"

namespace hidisc::lab {

void Fnv1a::update(const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    state_ ^= p[i];
    state_ *= 0x100000001b3ull;
  }
}

namespace {

class Describer {
 public:
  void field(const char* name, int v) {
    field(name, static_cast<std::int64_t>(v));
  }
  void field(const char* name, std::int64_t v) {
    out_ += name;
    out_ += '=';
    out_ += std::to_string(v);
    out_ += ';';
  }
  void field(const char* name, double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%s=%.17g;", name, v);
    out_ += buf;
  }
  void field(const char* name, const std::string& v) {
    out_ += name;
    out_ += '=';
    out_ += v;
    out_ += ';';
  }

  void cache(const char* prefix, const mem::CacheConfig& c) {
    const std::string p = prefix;
    field((p + ".sets").c_str(), c.sets);
    field((p + ".block").c_str(), c.block_bytes);
    field((p + ".assoc").c_str(), c.assoc);
    field((p + ".lat").c_str(), c.hit_latency);
  }

  void core(const char* prefix, const uarch::CoreConfig& c) {
    const std::string p = prefix;
    field((p + ".window").c_str(), c.window);
    field((p + ".issue").c_str(), c.issue_width);
    field((p + ".commit").c_str(), c.commit_width);
    field((p + ".dispatch").c_str(), c.dispatch_width);
    field((p + ".iq").c_str(), c.input_queue);
    field((p + ".lsq").c_str(), c.lsq);
    field((p + ".ialu").c_str(), c.int_alu);
    field((p + ".imul").c_str(), c.int_muldiv);
    field((p + ".falu").c_str(), c.fp_alu);
    field((p + ".fmul").c_str(), c.fp_muldiv);
    field((p + ".ports").c_str(), c.mem_ports);
    field((p + ".lsu").c_str(), c.has_lsu ? 1 : 0);
    field((p + ".pfonly").c_str(), c.prefetch_only ? 1 : 0);
    field((p + ".qpops").c_str(), c.queue_pops_per_cycle);
  }

  void mem(const char* prefix, const mem::MemConfig& m) {
    const std::string p = prefix;
    cache((p + ".l1").c_str(), m.l1);
    cache((p + ".l1i").c_str(), m.l1i);
    cache((p + ".l2").c_str(), m.l2);
    field((p + ".dram").c_str(), m.dram_latency);
    field((p + ".bus").c_str(), m.l2_bus_cycles);
    // Appended only when a prefetcher is enabled: pre-prefetcher keys stay
    // valid, and perturbing a knob of a *disabled* prefetcher (which cannot
    // change the simulation) leaves the key untouched.  The canonical spec
    // string already omits knobs at their defaults.
    if (m.prefetch.kind != mem::PrefetchKind::None)
      field((p + ".pf").c_str(), mem::prefetch_spec(m.prefetch));
  }

  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

}  // namespace

std::string describe(const machine::MachineConfig& cfg) {
  Describer d;
  d.mem("mem", cfg.mem);
  d.field("fetch_width", cfg.fetch_width);
  d.field("redirect", cfg.redirect_penalty);
  d.field("predictor", cfg.predictor_table);
  d.field("btb", cfg.btb_size);
  d.field("predictor_kind", static_cast<std::int64_t>(cfg.predictor_kind));
  d.field("icache", cfg.model_icache ? 1 : 0);
  d.field("ldq", static_cast<std::int64_t>(cfg.ldq_capacity));
  d.field("sdq", static_cast<std::int64_t>(cfg.sdq_capacity));
  d.field("scq", static_cast<std::int64_t>(cfg.scq_capacity));
  d.core("ss", cfg.superscalar);
  d.core("cp", cfg.cp);
  d.core("ap", cfg.ap);
  d.core("cmp", cfg.cmp);
  d.field("cmp_contexts", cfg.cmp_contexts);
  d.field("cmp_targets", cfg.cmp_targets_per_fork);
  d.field("cmp_lookahead", cfg.cmp_fork_lookahead);
  d.field("cmp_chaining", cfg.cmp_chaining ? 1 : 0);
  d.field("cmp_dyn_dist", cfg.cmp_dynamic_distance ? 1 : 0);
  d.field("cmp_adaptive", cfg.cmp_adaptive_range ? 1 : 0);
  d.field("cmp_range_samples",
          static_cast<std::int64_t>(cfg.cmp_range_min_samples));
  d.field("cmp_range_use", cfg.cmp_range_min_use);
  d.field("cmp_range_reprobe", cfg.cmp_range_reprobe);
  d.field("cmp_la_min", cfg.cmp_lookahead_min);
  d.field("cmp_la_max", cfg.cmp_lookahead_max);
  d.field("cmp_adapt_ivl", static_cast<std::int64_t>(cfg.cmp_adapt_interval));
  d.field("cmp_runahead", cfg.cmp_max_runahead);
  d.field("watchdog", static_cast<std::int64_t>(cfg.watchdog_cycles));
  return d.take();
}

std::string describe(const compiler::CompileOptions& opt) {
  Describer d;
  d.mem("pmem", opt.profile_mem);
  d.field("max_steps", static_cast<std::int64_t>(opt.max_steps));
  d.field("cmas", opt.enable_cmas ? 1 : 0);
  d.field("cmas.miss_rate", opt.cmas.miss_rate_threshold);
  d.field("cmas.min_misses", static_cast<std::int64_t>(opt.cmas.min_misses));
  d.field("cmas.trigger_dist", opt.cmas.trigger_distance);
  d.field("flow_comm", opt.flow_sensitive_comm ? 1 : 0);
  return d.take();
}

std::string hex128(const Fnv1a& lo, const Fnv1a& hi) {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016" PRIx64 "%016" PRIx64, lo.digest(),
                hi.digest());
  return buf;
}

std::string content_key(const isa::Program& binary, machine::Preset preset,
                        const machine::MachineConfig& cfg) {
  return content_key_image(isa::save_program(binary), preset, cfg);
}

std::string content_key_image(const std::vector<std::uint8_t>& image,
                              machine::Preset preset,
                              const machine::MachineConfig& cfg) {
  const std::string cfg_desc = describe(cfg);
  // Two independently seeded streams -> 128 bits; collisions across a
  // cache directory of any realistic size are then out of the question.
  Fnv1a lo, hi(0x9e3779b97f4a7c15ull);
  for (Fnv1a* h : {&lo, &hi}) {
    h->update(image.data(), image.size());
    h->update(machine::preset_name(preset));
    h->update(cfg_desc);
  }
  return hex128(lo, hi);
}

}  // namespace hidisc::lab
