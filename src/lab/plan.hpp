// Declarative experiment plans for the hidisc-lab orchestrator.
//
// A plan enumerates (workload, preset, machine-config) cells; the runner
// (runner.hpp) executes them — in parallel, memoizing shared preparation
// and consulting the on-disk result cache — and returns results in cell
// order, so a plan is a pure description of *what* to measure, never of
// *how* it is scheduled.
//
// Named plans reproduce the paper's figures/tables (fig8, fig9, fig10,
// table2, extra); `latency_sweep` builds arbitrary (L2, DRAM) sweeps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/compile.hpp"
#include "machine/config.hpp"
#include "workloads/common.hpp"

namespace hidisc::lab {

// A workload named by its generator, not by a built program: building is
// deterministic in (maker, scale, seed), so the spec is the identity the
// prep-memoization layer keys on, and two cells with equal specs share one
// compilation and one functional trace.
struct WorkloadSpec {
  std::string name;  // display name; matches BuiltWorkload::name
  workloads::BuiltWorkload (*make)(workloads::Scale, std::uint64_t) = nullptr;
  workloads::Scale scale = workloads::Scale::Paper;
  std::uint64_t seed = 0;

  [[nodiscard]] workloads::BuiltWorkload build() const {
    return make(scale, seed);
  }
  // Stable identity string (display name + scale + seed).
  [[nodiscard]] std::string id() const;
};

// The registry of all DIS workloads with their canonical seeds.  `spec`
// looks one up by display name (throws std::out_of_range on a bad name).
[[nodiscard]] const std::vector<WorkloadSpec>& workload_registry();
[[nodiscard]] WorkloadSpec spec(const std::string& name,
                                workloads::Scale scale);

// One experiment cell: simulate `workload` under `preset` / `config`,
// compiled with `compile`.  `tag` is a free-form label for sweeps (e.g.
// the "12/120" latency point of Figure 10); it participates in display
// and export but not in result identity.
struct Cell {
  WorkloadSpec workload;
  machine::Preset preset = machine::Preset::Superscalar;
  machine::MachineConfig config{};
  compiler::CompileOptions compile{};
  std::string tag;
};

struct ExperimentPlan {
  std::string name;
  std::string description;
  std::vector<Cell> cells;

  // Index of the first cell matching (workload display name, preset,
  // tag); -1 when absent.  Cell lookups in the bench binaries go through
  // this so the table code is independent of cell ordering.
  [[nodiscard]] std::int64_t find(const std::string& workload,
                                  machine::Preset preset,
                                  const std::string& tag = "") const;
};

// The four presets in the paper's column order.
[[nodiscard]] const std::vector<machine::Preset>& all_presets();

// Named plans ---------------------------------------------------------------
//
// fig8 / fig9 / table2 share one cell grid (paper suite x four presets,
// Table 1 config); they are distinct names so exports self-describe, and
// the result cache makes re-running the shared cells free.
[[nodiscard]] ExperimentPlan plan_fig8(
    workloads::Scale scale = workloads::Scale::Paper);
[[nodiscard]] ExperimentPlan plan_fig9(
    workloads::Scale scale = workloads::Scale::Paper);
[[nodiscard]] ExperimentPlan plan_table2(
    workloads::Scale scale = workloads::Scale::Paper);
// Pointer + Neighborhood under the four presets across the paper's
// (L2, DRAM) latency sweep {4/40, 8/80, 12/120, 16/160}.
[[nodiscard]] ExperimentPlan plan_fig10(
    workloads::Scale scale = workloads::Scale::Paper);
// The non-plotted DIS workloads (Matrix, CornerTurn, FFT, Image).
[[nodiscard]] ExperimentPlan plan_extra(
    workloads::Scale scale = workloads::Scale::Paper);
// Union of every paper plan: the whole evaluation in one invocation.
[[nodiscard]] ExperimentPlan plan_paper(
    workloads::Scale scale = workloads::Scale::Paper);
// The Fig. 10 sweep plus a fifth curve: CP+AP with a hardware prefetcher
// on the L1D (tag suffix "+pf"), answering "would a conventional
// prefetcher beat the CMP?".
[[nodiscard]] ExperimentPlan plan_prefetch(
    workloads::Scale scale = workloads::Scale::Paper);

// Arbitrary sweep builder: every workload x preset x (l2, dram) latency
// point, tagged "l2/dram".
[[nodiscard]] ExperimentPlan latency_sweep(
    const std::string& name, const std::vector<WorkloadSpec>& specs,
    const std::vector<machine::Preset>& presets,
    const std::vector<std::pair<int, int>>& latencies);

// Plan registry for the CLI.
[[nodiscard]] const std::vector<std::string>& plan_names();
// Throws std::out_of_range for unknown names.
[[nodiscard]] ExperimentPlan make_plan(const std::string& name,
                                       workloads::Scale scale);

}  // namespace hidisc::lab
