// Machine-readable export of a PlanRun: JSON (full Result per cell, flat
// dotted field names — schema in serialize.hpp / docs/LAB.md) and CSV
// (the headline columns).  Both are deterministic byte-for-byte for a
// given plan outcome, so exports diff cleanly across code changes —
// the machine-readable bench trajectory of the repo.
#pragma once

#include <string>

#include "lab/plan.hpp"
#include "lab/runner.hpp"

namespace hidisc::lab {

struct ExportMeta {
  int threads = 1;  // recorded for provenance; never affects numbers
};

[[nodiscard]] std::string to_json(const ExperimentPlan& plan,
                                  const PlanRun& run,
                                  const ExportMeta& meta = {});

// Columns: workload,preset,tag,cached,ok,error_class,cycles,instructions,
//          ipc,l1_miss_rate,l1_demand_misses,l2_demand_misses,
//          branch_mispredict_rate,cmas_forks,wall_ms,error
// Failed cells have ok=0, a non-empty error_class, zeroed numbers, and
// the quoted error message in the trailing column.
[[nodiscard]] std::string to_csv(const ExperimentPlan& plan,
                                 const PlanRun& run);

// Writes `text` to `path` ("-" = stdout).  Throws std::runtime_error on
// I/O failure.
void write_text_file(const std::string& path, const std::string& text);

}  // namespace hidisc::lab
