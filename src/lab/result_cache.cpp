#include "lab/result_cache.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "lab/serialize.hpp"

namespace fs = std::filesystem;

namespace hidisc::lab {

namespace {

constexpr const char* kHeader = "hilab-result v2";
constexpr const char* kChecksumTag = "checksum ";

std::string checksum_line(const std::string& body) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s%016llx", kChecksumTag,
                static_cast<unsigned long long>(fnv1a64(body)));
  return buf;
}

}  // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_))
    throw std::runtime_error("hilab: cannot create cache directory " + dir_);
}

std::string ResultCache::path_for(const std::string& key) const {
  return (fs::path(dir_) / (key + ".result")).string();
}

void ResultCache::quarantine(const std::string& path) const {
  // The destination must be unique per quarantining process AND per
  // event: with several runners sharing a directory, a fixed
  // `<path>.corrupt` name would let a second quarantine clobber the first
  // one's forensic evidence (or race its rename).  pid + a process-local
  // counter keeps every specimen.
  static std::atomic<unsigned> counter{0};
  std::ostringstream dest;
  dest << path << ".corrupt." << ::getpid() << '.'
       << counter.fetch_add(1, std::memory_order_relaxed);
  std::error_code ec;
  fs::rename(path, dest.str(), ec);  // best-effort
}

std::optional<CacheEntry> ResultCache::load(const std::string& key) const {
  const std::string path = path_for(key);
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  // A wrong header is a stale or foreign format, not corruption: report a
  // miss and leave the file to be overwritten by the next store.
  if (!std::getline(in, line) || line != kHeader) return std::nullopt;

  // Everything from the header to the checksum line is covered by the
  // footer; a file that lacks the footer entirely is torn.
  std::string body = line + "\n";
  std::map<std::string, std::string> fields;
  CacheEntry entry;
  bool checksum_ok = false;
  while (std::getline(in, line)) {
    if (line.rfind(kChecksumTag, 0) == 0) {
      checksum_ok = line == checksum_line(body);
      break;
    }
    body += line;
    body += '\n';
    const auto space = line.find(' ');
    if (space == std::string::npos) {  // torn line
      quarantine(path);
      return std::nullopt;
    }
    const std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    if (name == "meta.workload")
      entry.workload = value;
    else if (name == "meta.preset")
      entry.preset = value;
    else if (name == "meta.orig_dyn_insts")
      entry.orig_dynamic_instructions = std::strtoull(value.c_str(), nullptr, 10);
    else
      fields[name] = value;
  }
  if (!checksum_ok) {
    quarantine(path);
    return std::nullopt;
  }
  std::string missing;
  entry.result = result_from_fields(fields, &missing);
  if (!missing.empty()) {  // line-aligned truncation or field drift
    quarantine(path);
    return std::nullopt;
  }
  return entry;
}

bool ResultCache::store(const std::string& key,
                        const CacheEntry& entry) const {
  std::ostringstream body;
  body << kHeader << '\n'
       << "meta.workload " << entry.workload << '\n'
       << "meta.preset " << entry.preset << '\n'
       << "meta.orig_dyn_insts " << entry.orig_dynamic_instructions << '\n';
  for (const auto& [name, value] : result_to_fields(entry.result))
    body << name << ' ' << value << '\n';
  body << checksum_line(body.str()) << '\n';

  // Publish protocol for a directory shared across processes: take an
  // advisory lock on `<entry>.lock`, write a temp file unique per
  // process AND thread, then atomically rename it into place.  The
  // rename alone already guarantees readers never see a torn entry; the
  // lock additionally serializes concurrent writers of the same key so
  // their temp-write + rename windows do not interleave.  Locking is
  // best-effort — on a filesystem without flock the rename still keeps
  // the entry atomic.
  const std::string final_path = path_for(key);
  const int lock_fd =
      ::open((final_path + ".lock").c_str(), O_CREAT | O_RDWR | O_CLOEXEC,
             0644);
  if (lock_fd >= 0) ::flock(lock_fd, LOCK_EX);
  std::ostringstream tid;
  tid << std::this_thread::get_id();
  const std::string tmp =
      final_path + ".tmp." + std::to_string(::getpid()) + "." + tid.str();
  bool ok = false;
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (out) {
      out << body.str();
      ok = static_cast<bool>(out.flush());
    }
  }
  if (ok) {
    std::error_code ec;
    fs::rename(tmp, final_path, ec);
    ok = !ec;
  }
  if (!ok) std::remove(tmp.c_str());
  if (lock_fd >= 0) {
    ::flock(lock_fd, LOCK_UN);
    ::close(lock_fd);
  }
  return ok;
}

}  // namespace hidisc::lab
