#include "lab/result_cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "lab/serialize.hpp"

namespace fs = std::filesystem;

namespace hidisc::lab {

namespace {
constexpr const char* kHeader = "hilab-result v1";
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_))
    throw std::runtime_error("hilab: cannot create cache directory " + dir_);
}

std::string ResultCache::path_for(const std::string& key) const {
  return (fs::path(dir_) / (key + ".result")).string();
}

std::optional<CacheEntry> ResultCache::load(const std::string& key) const {
  std::ifstream in(path_for(key));
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != kHeader) return std::nullopt;

  std::map<std::string, std::string> fields;
  CacheEntry entry;
  while (std::getline(in, line)) {
    const auto space = line.find(' ');
    if (space == std::string::npos) return std::nullopt;  // torn file
    const std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    if (name == "meta.workload")
      entry.workload = value;
    else if (name == "meta.preset")
      entry.preset = value;
    else if (name == "meta.orig_dyn_insts")
      entry.orig_dynamic_instructions = std::strtoull(value.c_str(), nullptr, 10);
    else
      fields[name] = value;
  }
  entry.result = result_from_fields(fields);
  return entry;
}

bool ResultCache::store(const std::string& key,
                        const CacheEntry& entry) const {
  std::ostringstream body;
  body << kHeader << '\n'
       << "meta.workload " << entry.workload << '\n'
       << "meta.preset " << entry.preset << '\n'
       << "meta.orig_dyn_insts " << entry.orig_dynamic_instructions << '\n';
  for (const auto& [name, value] : result_to_fields(entry.result))
    body << name << ' ' << value << '\n';

  // Unique temp name per writer, then atomic rename into place.
  std::ostringstream tid;
  tid << std::this_thread::get_id();
  const std::string tmp = path_for(key) + ".tmp." + tid.str();
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << body.str();
    if (!out.flush()) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path_for(key), ec);
  if (ec) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace hidisc::lab
