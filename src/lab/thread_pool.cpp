#include "lab/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace hidisc::lab {

ThreadPool::ThreadPool(int threads) {
  const auto n = static_cast<std::size_t>(std::max(threads, 1));
  queues_.resize(n);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[next_queue_].push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++unfinished_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return unfinished_ == 0; });
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  if (!queues_[self].empty()) {  // own work: newest first (cache-warm)
    out = std::move(queues_[self].back());
    queues_[self].pop_back();
    return true;
  }
  std::size_t victim = self, best = 0;
  for (std::size_t q = 0; q < queues_.size(); ++q)
    if (q != self && queues_[q].size() > best) {
      best = queues_[q].size();
      victim = q;
    }
  if (victim == self) return false;
  out = std::move(queues_[victim].front());  // steal oldest
  queues_[victim].pop_front();
  return true;
}

void ThreadPool::worker_loop(std::size_t self) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    std::function<void()> task;
    if (try_pop(self, task)) {
      lock.unlock();
      task();
      lock.lock();
      if (--unfinished_ == 0) idle_cv_.notify_all();
      continue;
    }
    if (stop_) return;
    work_cv_.wait(lock);
  }
}

int default_threads() {
  if (const char* env = std::getenv("HILAB_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace hidisc::lab
