// The hidisc-lab experiment runner: a thin driver over the artifact
// pipeline (src/pipeline/, docs/PIPELINE.md).
//
// run_plan submits the plan's cells to the DAG executor, which builds a
// content-addressed graph of typed nodes — compile (one per distinct
// (workload spec, compile options) pair) → trace (one per binary a miss
// cell demands) → sim (one per cell) — and executes it over the
// work-stealing thread pool in pure dependency order: a cell simulates
// the moment its own trace is ready, regardless of what other workloads
// are still compiling.  Sim results persist in the on-disk ResultCache,
// traces in the TraceStore next to it, so a machine-preset-only change
// reruns sim nodes while every trace node stays warm — observable in
// PlanRun::nodes, the JSON export, and the service stats endpoint.
//
// Results are returned indexed by cell, so the output is bit-identical
// for any thread count — parallelism changes wall-clock, never numbers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lab/plan.hpp"
#include "machine/result.hpp"
#include "pipeline/stats.hpp"

namespace hidisc::lab {

struct RunOptions {
  int threads = 1;
  // On-disk result cache directory; empty disables persistent caching
  // (prep memoization within the run still applies).
  std::string cache_dir;
  // Ignore (but still refresh) existing cache entries.
  bool refresh = false;
  // Progress callback, invoked as each cell finishes; serialized by the
  // runner, so it may print.  `done`/`total` count finished/all cells.
  std::function<void(const Cell& cell, std::size_t done, std::size_t total,
                     bool from_cache)>
      on_cell;
};

struct CellResult {
  machine::Result result;
  std::string key;  // 32-hex content key (cache file basename)
  // Dynamic instruction count of the original (unseparated) binary; use
  // for cross-binary IPC normalization.  Served from the cache entry on
  // hits, so it is available even when the compilation was skipped.
  std::uint64_t orig_dynamic_instructions = 0;
  bool from_cache = false;
  double wall_ms = 0.0;  // simulation time; 0 for cache hits
  // Simulator throughput for this cell: simulated cycles per wall-clock
  // second (the number the event-skip scheduler exists to raise); 0 for
  // cache hits.
  double sim_cycles_per_sec = 0.0;

  // Fault isolation: non-empty `error` marks this cell failed (its
  // `result` is meaningless) without poisoning the rest of the run.
  std::string error;            // human-readable failure message
  std::string error_class;      // "prep" / "trace" / "sim" / "deadlock:<cause>"
  std::string diagnostic_json;  // attached DeadlockReport, when one exists

  // Pipeline provenance: node work performed to satisfy this cell when it
  // ran as a single-cell pipeline submission (hiserved jobs).  Local
  // multi-cell runs leave these zero — nodes are shared across cells
  // there, so per-cell attribution would double count; PlanRun::nodes is
  // the authoritative aggregate.  The daemon zeroes them on dedup/memo
  // deliveries so connected clients can sum without double counting.
  std::uint32_t compile_nodes_rebuilt = 0;
  std::uint32_t trace_nodes_hit = 0;
  std::uint32_t trace_nodes_rebuilt = 0;

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

struct PlanRun {
  std::vector<CellResult> cells;  // parallel to plan.cells
  std::size_t simulated = 0;      // cells that ran the timing machine
  std::size_t failed = 0;         // cells with a non-empty error slot
  std::size_t cache_hits = 0;
  std::size_t preps = 0;  // compile nodes executed (= nodes.compile.rebuilt)
  std::size_t traces = 0; // trace nodes executed (= nodes.trace.rebuilt)
  // Per-phase node accounting from the DAG executor: how many nodes the
  // graph had, how many were served from a cache layer, how many rebuilt.
  // The cache-invalidation contract is stated in these numbers (e.g. a
  // preset-only change shows nodes.trace.rebuilt == 0).
  pipeline::NodeStats nodes;
  double wall_ms = 0.0;   // whole-plan wall clock
  // Aggregate simulator throughput: total simulated cycles divided by the
  // summed per-cell simulation time, over the cells that actually ran the
  // timing machine this run (0 when everything came from cache).
  double sim_cycles_per_sec = 0.0;

  [[nodiscard]] bool ok() const noexcept { return failed == 0; }

  [[nodiscard]] const CellResult& at(const ExperimentPlan& plan,
                                     const std::string& workload,
                                     machine::Preset preset,
                                     const std::string& tag = "") const;
};

// Runs every cell of `plan`.  A cell whose prep, trace or simulation
// fails carries the failure in its error slots (error / error_class /
// diagnostic_json) instead of aborting the run: healthy cells complete and
// export normally.  Only infrastructure-level problems (bad plan, broken
// cache directory) still throw.
[[nodiscard]] PlanRun run_plan(const ExperimentPlan& plan,
                               const RunOptions& opt = {});

}  // namespace hidisc::lab
