// Persistent on-disk cache of simulation results, content-addressed by
// fingerprint::content_key — one small text file per cell under the cache
// directory:
//
//   <dir>/<32-hex key>.result
//     hilab-result v1
//     meta.workload <display name>
//     meta.preset <preset name>
//     meta.orig_dyn_insts <count>
//     cycles 123456
//     ipc 2.3409...
//     ... (every visit_result_fields name, one per line)
//
// Writes go through a per-process temp file + atomic rename, so parallel
// runners (threads or separate processes) sharing a directory never
// observe a torn entry.  A malformed or truncated file is treated as a
// miss, never an error: the cache is an accelerator, not a dependency.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "machine/result.hpp"

namespace hidisc::lab {

struct CacheEntry {
  machine::Result result;
  std::string workload;  // display name, informational
  std::string preset;    // preset name, informational
  // Dynamic instruction count of the *original* (unseparated) binary;
  // exports use it to normalize IPC across binaries (Figure 10).
  std::uint64_t orig_dynamic_instructions = 0;
};

class ResultCache {
 public:
  // Creates `dir` (and parents) when missing; throws std::runtime_error
  // if that fails.
  explicit ResultCache(std::string dir);

  [[nodiscard]] std::optional<CacheEntry> load(const std::string& key) const;
  // Returns false (and leaves the cache unchanged) on I/O failure.
  bool store(const std::string& key, const CacheEntry& entry) const;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

 private:
  [[nodiscard]] std::string path_for(const std::string& key) const;

  std::string dir_;
};

}  // namespace hidisc::lab
