// Persistent on-disk cache of simulation results, content-addressed by
// fingerprint::content_key — one small text file per cell under the cache
// directory:
//
//   <dir>/<32-hex key>.result
//     hilab-result v2
//     meta.workload <display name>
//     meta.preset <preset name>
//     meta.orig_dyn_insts <count>
//     cycles 123456
//     ipc 2.3409...
//     ... (every visit_result_fields name, one per line)
//     checksum <16-hex FNV-1a-64 of everything above>
//
// Writes go through an advisory per-entry flock plus a per-process,
// per-thread temp file published by atomic rename, so parallel runners
// (threads or separate processes — hilab, hiserved workers) sharing a
// directory never observe a torn entry.  Loads validate three layers:
// the checksum footer (bit rot, torn writes), line shape, and
// required-field completeness (a line-aligned truncation must not decode
// as a silently-zeroed Result).  Any failure quarantines the file to
// `<name>.corrupt.<pid>.<n>` — unique per process and event, so
// concurrent quarantines never clobber each other's forensic evidence —
// and reports a miss, never an error: the cache is an accelerator, not a
// dependency.
// Entries with an older version header are plain misses (stale format,
// not corruption) and are left in place to be overwritten.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "machine/result.hpp"

namespace hidisc::lab {

struct CacheEntry {
  machine::Result result;
  std::string workload;  // display name, informational
  std::string preset;    // preset name, informational
  // Dynamic instruction count of the *original* (unseparated) binary;
  // exports use it to normalize IPC across binaries (Figure 10).
  std::uint64_t orig_dynamic_instructions = 0;
};

class ResultCache {
 public:
  // Creates `dir` (and parents) when missing; throws std::runtime_error
  // if that fails.
  explicit ResultCache(std::string dir);

  [[nodiscard]] std::optional<CacheEntry> load(const std::string& key) const;
  // Returns false (and leaves the cache unchanged) on I/O failure.
  bool store(const std::string& key, const CacheEntry& entry) const;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

 private:
  [[nodiscard]] std::string path_for(const std::string& key) const;
  // Moves a failed-validation entry aside to `<path>.corrupt.<pid>.<n>`
  // (best-effort) so it stops being retried and stays available for
  // forensics; the unique suffix keeps concurrent quarantines from
  // overwriting each other.
  void quarantine(const std::string& path) const;

  std::string dir_;
};

}  // namespace hidisc::lab
