// Content hashing for the result cache (runner.hpp / result_cache.hpp).
//
// A cell's cache key is a 128-bit FNV-1a hash over (encoded program bytes,
// preset name, canonical MachineConfig description): any change to the
// simulated binary — workload data, compiler behaviour, CMAS annotations —
// or to the machine parameters yields a new key, so stale cache entries
// can never be returned.  The canonical descriptions are also useful on
// their own for debugging ("why did this cell miss the cache?").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/compile.hpp"
#include "isa/program.hpp"
#include "machine/config.hpp"

namespace hidisc::lab {

// 64-bit FNV-1a, seedable so two independent streams give 128 bits.
class Fnv1a {
 public:
  explicit Fnv1a(std::uint64_t seed = 0xcbf29ce484222325ull)
      : state_(seed) {}

  void update(const void* data, std::size_t n) noexcept;
  void update(const std::string& s) noexcept { update(s.data(), s.size()); }
  [[nodiscard]] std::uint64_t digest() const noexcept { return state_; }

 private:
  std::uint64_t state_;
};

// Canonical `key=value;` listing of every field that affects timing.
// Appends here whenever MachineConfig/CompileOptions grow a field — the
// lab_test fingerprint-sensitivity test guards the common cases.
[[nodiscard]] std::string describe(const machine::MachineConfig& cfg);
[[nodiscard]] std::string describe(const compiler::CompileOptions& opt);

// 32-hex digest of two seeded FNV-1a streams that were fed identical
// bytes — the shared 128-bit formatting primitive for every
// content-addressed key (result cache entries, pipeline node keys).
[[nodiscard]] std::string hex128(const Fnv1a& lo, const Fnv1a& hi);

// 32-hex-digit content key of one simulation: the exact binary fed to the
// machine (post-compilation, annotations included), the preset, and the
// machine configuration.
[[nodiscard]] std::string content_key(const isa::Program& binary,
                                      machine::Preset preset,
                                      const machine::MachineConfig& cfg);

// Same key computed from an already-encoded program image
// (isa::save_program bytes); the pipeline executor encodes each binary
// once and keys every downstream node off the same bytes.
[[nodiscard]] std::string content_key_image(
    const std::vector<std::uint8_t>& image, machine::Preset preset,
    const machine::MachineConfig& cfg);

}  // namespace hidisc::lab
