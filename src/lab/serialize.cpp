#include "lab/serialize.hpp"

#include <cstdio>
#include <cstdlib>

namespace hidisc::lab {

namespace {

std::string format_value(std::uint64_t v) { return std::to_string(v); }
std::string format_value(std::int64_t v) { return std::to_string(v); }
std::string format_value(bool v) { return v ? "1" : "0"; }
std::string format_value(double v) { return format_double(v); }

void parse_value(const std::string& s, std::uint64_t& out) {
  out = std::strtoull(s.c_str(), nullptr, 10);
}
void parse_value(const std::string& s, std::int64_t& out) {
  out = std::strtoll(s.c_str(), nullptr, 10);
}
void parse_value(const std::string& s, bool& out) { out = s == "1"; }
void parse_value(const std::string& s, double& out) {
  out = std::strtod(s.c_str(), nullptr);
}

}  // namespace

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::map<std::string, std::string> result_to_fields(
    const machine::Result& r) {
  std::map<std::string, std::string> fields;
  visit_result_fields(r, [&fields](const std::string& name, auto& value) {
    fields[name] = format_value(value);
  });
  return fields;
}

machine::Result result_from_fields(
    const std::map<std::string, std::string>& fields, std::string* missing) {
  machine::Result r;
  if (missing != nullptr) missing->clear();
  visit_result_fields(r, [&fields, missing](const std::string& name,
                                            auto& value) {
    const auto it = fields.find(name);
    if (it != fields.end()) {
      parse_value(it->second, value);
    } else if (missing != nullptr && missing->empty()) {
      *missing = name;
    }
  });
  return r;
}

bool results_identical(const machine::Result& a, const machine::Result& b) {
  // %.17g round-trips doubles exactly, so textual equality of the field
  // maps is bitwise equality of every stat.
  return result_to_fields(a) == result_to_fields(b);
}

std::uint64_t fnv1a64(std::string_view data) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace hidisc::lab
