#include "lab/plan.hpp"

#include <stdexcept>

namespace hidisc::lab {

namespace {

const char* scale_name(workloads::Scale s) {
  return s == workloads::Scale::Paper ? "paper" : "test";
}

// Figure 8 plot order first, then the rest of the DIS suites.  Seeds are
// the canonical defaults from workloads/common.hpp.
std::vector<WorkloadSpec> build_registry() {
  return {
      {"DM", &workloads::make_dm, workloads::Scale::Paper, 6},
      {"RayTray", &workloads::make_raytrace, workloads::Scale::Paper, 7},
      {"Pointer", &workloads::make_pointer, workloads::Scale::Paper, 1},
      {"Update", &workloads::make_update, workloads::Scale::Paper, 2},
      {"Field", &workloads::make_field, workloads::Scale::Paper, 3},
      {"Neighborhood", &workloads::make_neighborhood, workloads::Scale::Paper,
       4},
      {"TC", &workloads::make_transitive, workloads::Scale::Paper, 5},
      {"Matrix", &workloads::make_matrix, workloads::Scale::Paper, 8},
      {"CornerTurn", &workloads::make_cornerturn, workloads::Scale::Paper, 9},
      {"FFT", &workloads::make_fft, workloads::Scale::Paper, 10},
      {"Image", &workloads::make_image, workloads::Scale::Paper, 11},
  };
}

// The seven benchmarks of the paper's Figure 8, in plot order.
std::vector<WorkloadSpec> paper_specs(workloads::Scale scale) {
  std::vector<WorkloadSpec> specs;
  for (const char* n :
       {"DM", "RayTray", "Pointer", "Update", "Field", "Neighborhood", "TC"})
    specs.push_back(spec(n, scale));
  return specs;
}

std::vector<WorkloadSpec> extra_specs(workloads::Scale scale) {
  std::vector<WorkloadSpec> specs;
  for (const char* n : {"Matrix", "CornerTurn", "FFT", "Image"})
    specs.push_back(spec(n, scale));
  return specs;
}

// workloads x presets under one fixed config.
ExperimentPlan grid(std::string name, std::string description,
                    const std::vector<WorkloadSpec>& specs) {
  ExperimentPlan plan{std::move(name), std::move(description), {}};
  for (const auto& w : specs)
    for (const auto preset : all_presets())
      plan.cells.push_back(Cell{w, preset, {}, {}, ""});
  return plan;
}

}  // namespace

std::string WorkloadSpec::id() const {
  return name + "/" + scale_name(scale) + "/s" + std::to_string(seed);
}

const std::vector<WorkloadSpec>& workload_registry() {
  static const std::vector<WorkloadSpec> registry = build_registry();
  return registry;
}

WorkloadSpec spec(const std::string& name, workloads::Scale scale) {
  for (const auto& w : workload_registry())
    if (w.name == name) {
      WorkloadSpec s = w;
      s.scale = scale;
      return s;
    }
  throw std::out_of_range("unknown workload: " + name);
}

std::int64_t ExperimentPlan::find(const std::string& workload,
                                  machine::Preset preset,
                                  const std::string& tag) const {
  for (std::size_t i = 0; i < cells.size(); ++i)
    if (cells[i].workload.name == workload && cells[i].preset == preset &&
        cells[i].tag == tag)
      return static_cast<std::int64_t>(i);
  return -1;
}

const std::vector<machine::Preset>& all_presets() {
  static const std::vector<machine::Preset> presets = {
      machine::Preset::Superscalar, machine::Preset::CPAP,
      machine::Preset::CPCMP, machine::Preset::HiDISC};
  return presets;
}

ExperimentPlan plan_fig8(workloads::Scale scale) {
  return grid("fig8", "per-benchmark speed-up vs. baseline superscalar",
              paper_specs(scale));
}

ExperimentPlan plan_fig9(workloads::Scale scale) {
  return grid("fig9", "L1 demand misses normalized to superscalar",
              paper_specs(scale));
}

ExperimentPlan plan_table2(workloads::Scale scale) {
  return grid("table2", "mean speed-up of the three architecture models",
              paper_specs(scale));
}

ExperimentPlan plan_extra(workloads::Scale scale) {
  return grid("extra", "the non-plotted DIS workloads under all presets",
              extra_specs(scale));
}

ExperimentPlan plan_fig10(workloads::Scale scale) {
  ExperimentPlan plan = latency_sweep(
      "fig10", {spec("Pointer", scale), spec("Neighborhood", scale)},
      all_presets(), {{4, 40}, {8, 80}, {12, 120}, {16, 160}});
  plan.description = "IPC of Pointer/Neighborhood across the (L2, DRAM) "
                     "latency sweep";
  return plan;
}

ExperimentPlan plan_prefetch(workloads::Scale scale) {
  // The four paper presets, plus CP+AP with a hardware prefetcher on the
  // L1D — "would a conventional prefetcher beat the CMP?" across the
  // Fig. 10 latency sweep.  The pf cells reuse the CPAP preset with a
  // distinct "+pf" tag so find() keeps the curves apart.
  ExperimentPlan plan{"prefetch",
                      "superscalar / CP+AP / CP+CMP / HiDISC / CP+AP+hw-"
                      "prefetch across the (L2, DRAM) latency sweep",
                      {}};
  mem::PrefetchConfig pf;
  pf.kind = mem::PrefetchKind::IpStride;
  pf.degree = 2;
  pf.distance = 4;
  for (const auto& w : {spec("Pointer", scale), spec("Neighborhood", scale)})
    for (const auto& [l2, dram] : std::vector<std::pair<int, int>>{
             {4, 40}, {8, 80}, {12, 120}, {16, 160}}) {
      machine::MachineConfig cfg;
      cfg.mem = mem::MemConfig::with_latencies(l2, dram);
      const std::string tag =
          std::to_string(l2) + "/" + std::to_string(dram);
      for (const auto preset : all_presets())
        plan.cells.push_back(Cell{w, preset, cfg, {}, tag});
      machine::MachineConfig pf_cfg = cfg;
      pf_cfg.mem.prefetch = pf;
      plan.cells.push_back(
          Cell{w, machine::Preset::CPAP, pf_cfg, {}, tag + "+pf"});
    }
  return plan;
}

ExperimentPlan plan_paper(workloads::Scale scale) {
  ExperimentPlan plan{"paper", "the full paper evaluation suite", {}};
  for (const auto& sub :
       {plan_fig8(scale), plan_fig10(scale), plan_extra(scale)})
    plan.cells.insert(plan.cells.end(), sub.cells.begin(), sub.cells.end());
  // fig9/table2 share fig8's cell grid, so fig8 + fig10 + extra covers
  // every distinct cell of the evaluation.
  return plan;
}

ExperimentPlan latency_sweep(
    const std::string& name, const std::vector<WorkloadSpec>& specs,
    const std::vector<machine::Preset>& presets,
    const std::vector<std::pair<int, int>>& latencies) {
  ExperimentPlan plan{name, "latency sweep", {}};
  for (const auto& w : specs)
    for (const auto& [l2, dram] : latencies) {
      machine::MachineConfig cfg;
      cfg.mem = mem::MemConfig::with_latencies(l2, dram);
      const std::string tag =
          std::to_string(l2) + "/" + std::to_string(dram);
      for (const auto preset : presets)
        plan.cells.push_back(Cell{w, preset, cfg, {}, tag});
    }
  return plan;
}

const std::vector<std::string>& plan_names() {
  static const std::vector<std::string> names = {
      "fig8", "fig9", "fig10", "table2", "extra", "paper", "prefetch"};
  return names;
}

ExperimentPlan make_plan(const std::string& name, workloads::Scale scale) {
  if (name == "fig8") return plan_fig8(scale);
  if (name == "fig9") return plan_fig9(scale);
  if (name == "fig10") return plan_fig10(scale);
  if (name == "table2") return plan_table2(scale);
  if (name == "extra") return plan_extra(scale);
  if (name == "paper") return plan_paper(scale);
  if (name == "prefetch") return plan_prefetch(scale);
  throw std::out_of_range("unknown plan: " + name +
                          " (try `hilab --list`)");
}

}  // namespace hidisc::lab
