#include "uarch/branch_predictor.hpp"

#include <stdexcept>

namespace hidisc::uarch {

BranchPredictor::BranchPredictor(int table_size, int btb_size, int ras_size,
                                 PredictorKind kind)
    : kind_(kind) {
  if (table_size <= 0 || (table_size & (table_size - 1)) != 0)
    throw std::invalid_argument("predictor table size must be a power of 2");
  if (btb_size <= 0 || (btb_size & (btb_size - 1)) != 0)
    throw std::invalid_argument("BTB size must be a power of 2");
  counters_.assign(static_cast<std::size_t>(table_size), 2);  // weakly taken
  btb_.assign(static_cast<std::size_t>(btb_size), BtbEntry{});
  ras_.assign(static_cast<std::size_t>(ras_size), -1);
}

void BranchPredictor::reset() {
  for (auto& c : counters_) c = 2;
  for (auto& e : btb_) e = BtbEntry{};
  for (auto& r : ras_) r = -1;
  ras_top_ = 0;
  history_ = 0;
  stats_ = BranchStats{};
}

BranchPredictor::Prediction BranchPredictor::predict(
    std::int32_t pc) const {
  Prediction p;
  p.taken = counters_[index(pc)] >= 2;
  const auto& e = btb_[btb_index(pc)];
  p.target = (e.pc == pc) ? e.target : -1;
  return p;
}

bool BranchPredictor::update(std::int32_t pc, bool taken,
                             std::int32_t target) {
  ++stats_.lookups;
  const Prediction p = predict(pc);
  const bool dir_wrong = p.taken != taken;
  // A taken prediction with a missing/stale BTB target also redirects.
  const bool tgt_wrong = taken && (p.target != target);
  auto& c = counters_[index(pc)];
  if (taken) {
    if (c < 3) ++c;
  } else {
    if (c > 0) --c;
  }
  if (taken) btb_[btb_index(pc)] = BtbEntry{pc, target};
  history_ = (history_ << 1) | (taken ? 1u : 0u);
  const bool mispredict = dir_wrong || tgt_wrong;
  if (mispredict) ++stats_.mispredicts;
  return mispredict;
}

void BranchPredictor::push_ras(std::int32_t return_pc) {
  ras_[ras_top_] = return_pc;
  ras_top_ = (ras_top_ + 1) % ras_.size();
}

std::int32_t BranchPredictor::pop_ras() {
  ras_top_ = (ras_top_ + ras_.size() - 1) % ras_.size();
  const std::int32_t v = ras_[ras_top_];
  return v;
}

}  // namespace hidisc::uarch
