// A dynamic operation in flight: one trace entry bound for a core.
#pragma once

#include <cstdint>

#include "isa/instruction.hpp"

namespace hidisc::uarch {

struct DynOp {
  std::int64_t trace_pos = -1;       // position in the dynamic trace
  std::int32_t static_idx = -1;      // index into the program
  const isa::Instruction* inst = nullptr;
  std::uint64_t addr = 0;            // effective address (memory ops)
  std::int32_t next = -1;            // dynamically next static index
  bool mispredicted = false;         // front end flagged a redirect on this
  bool count_commit = true;          // false for CMP slice micro-ops
};

}  // namespace hidisc::uarch
