// Timed architectural FIFO used for the LDQ, SDQ and SCQ (paper §3.2).
//
// Entries carry the cycle at which their data becomes visible to the
// consumer and the trace position of the producing instruction (used by the
// machines to assert the compiler's push/pop pairing).  Capacity models the
// paper's 32-entry queues; producers stall at commit when the queue is
// full, consumers stall at issue when it is empty — those two stalls are
// what bound the slip distance.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>

#include "uarch/event.hpp"

namespace hidisc::uarch {

struct FifoStats {
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t full_stall_cycles = 0;   // producer wanted to push, was full
  std::uint64_t empty_stall_cycles = 0;  // consumer wanted to pop, was empty
  std::size_t max_occupancy = 0;

  friend bool operator==(const FifoStats&, const FifoStats&) = default;
};

class TimedFifo {
 public:
  struct Entry {
    std::uint64_t ready = 0;        // cycle the value is consumable
    std::int64_t producer_pos = -1; // trace position of the producer
    bool eod = false;               // End-Of-Data token (paper §3.1)
  };

  TimedFifo(std::string name, std::size_t capacity)
      : name_(std::move(name)), capacity_(capacity) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return q_.size(); }
  [[nodiscard]] bool empty() const noexcept { return q_.empty(); }
  [[nodiscard]] bool full() const noexcept { return q_.size() >= capacity_; }

  bool push(Entry e) {
    if (full()) return false;
    q_.push_back(e);
    ++stats_.pushes;
    stats_.max_occupancy = std::max(stats_.max_occupancy, q_.size());
    return true;
  }

  // The head entry if its data is consumable at `now`.
  [[nodiscard]] const Entry* front_ready(std::uint64_t now) const {
    if (q_.empty() || q_.front().ready > now) return nullptr;
    return &q_.front();
  }

  // The head entry regardless of readiness — forensic use (deadlock
  // snapshots need the head's ready time even when it is in the future).
  [[nodiscard]] const Entry* head() const {
    return q_.empty() ? nullptr : &q_.front();
  }

  // Popping an empty queue is a core-model bug (consumers must gate on
  // front_ready); fail loudly instead of reading a dead deque front.
  Entry pop() {
    if (q_.empty())
      throw std::logic_error(name_ + ": pop on empty queue");
    Entry e = q_.front();
    q_.pop_front();
    ++stats_.pops;
    return e;
  }

  void note_full_stall() noexcept { ++stats_.full_stall_cycles; }
  void note_empty_stall() noexcept { ++stats_.empty_stall_cycles; }
  // Bulk variants used by the event-skip scheduler to account stall cycles
  // it fast-forwarded over (machine/machine.cpp account_skip).
  void note_full_stalls(std::uint64_t n) noexcept {
    stats_.full_stall_cycles += n;
  }
  void note_empty_stalls(std::uint64_t n) noexcept {
    stats_.empty_stall_cycles += n;
  }

  // Earliest cycle strictly after `now` at which the head entry's data
  // becomes consumable; kNoEvent when the queue is empty or the head is
  // already ready (then only a consumer's pop — an event of the consuming
  // core — can change this queue's observable state).
  [[nodiscard]] std::uint64_t next_ready_event(std::uint64_t now) const
      noexcept {
    if (q_.empty() || q_.front().ready <= now) return kNoEvent;
    return q_.front().ready;
  }

  [[nodiscard]] const FifoStats& stats() const noexcept { return stats_; }

  void reset() {
    q_.clear();
    stats_ = FifoStats{};
  }

 private:
  std::string name_;
  std::size_t capacity_;
  std::deque<Entry> q_;
  FifoStats stats_;
};

}  // namespace hidisc::uarch
