// Functional-unit pools.
//
// Table 1: 4 integer ALUs + 1 integer MUL/DIV per processor; 4 FP adders +
// 1 FP MUL/DIV on the superscalar and the CP.  ALU/FP-add/FP-mul units are
// pipelined (busy one cycle per issue); divide units are unpipelined (busy
// for the whole operation).
//
// Units are interchangeable, so the pool keeps no per-unit state: only a
// min-heap of the release times of currently-busy units, lazily pruned as
// time advances.  `available`/`acquire` are O(1) amortized and
// `next_release` reads the heap top instead of scanning every unit — the
// event-skip scheduler calls it on every stalled step.  The heap is sized
// once to the unit count, so no member ever allocates after construction
// (the noexcept promises are real).  Queries assume `now` never moves
// backwards, which the cores guarantee.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "uarch/event.hpp"

namespace hidisc::uarch {

class FuPool {
 public:
  FuPool() = default;
  explicit FuPool(int units) : units_(units) {
    busy_.reserve(static_cast<std::size_t>(units));
  }

  [[nodiscard]] int size() const noexcept { return units_; }

  // True if some unit can accept an operation this cycle.
  [[nodiscard]] bool available(std::uint64_t now) const noexcept {
    prune(now);
    return busy_.size() < static_cast<std::size_t>(units_);
  }

  // Claims a unit for `busy` cycles; returns false when none is free.
  bool acquire(std::uint64_t now, int busy) noexcept {
    prune(now);
    if (busy_.size() >= static_cast<std::size_t>(units_)) return false;
    busy_.push_back(now + static_cast<std::uint64_t>(busy));
    std::push_heap(busy_.begin(), busy_.end(), std::greater<>{});
    return true;
  }

  // Earliest cycle strictly after `now` at which a busy unit frees up;
  // kNoEvent when every unit is already free (or the pool is empty).
  [[nodiscard]] std::uint64_t next_release(std::uint64_t now) const noexcept {
    prune(now);
    return busy_.empty() ? kNoEvent : busy_.front();
  }

  // True when every unit is still claimed at future cycle `t` (>= now).
  // Read-only — no pruning, since pruning at a future time would free
  // units still busy for present-time queries.  Invariant-checker use.
  [[nodiscard]] bool exhausted_at(std::uint64_t t) const noexcept {
    std::size_t claimed = 0;
    for (const auto release : busy_)
      if (release > t) ++claimed;
    return claimed >= static_cast<std::size_t>(units_);
  }

  void reset() noexcept { busy_.clear(); }

 private:
  // Units whose release time has passed are free again; drop them.
  void prune(std::uint64_t now) const noexcept {
    while (!busy_.empty() && busy_.front() <= now) {
      std::pop_heap(busy_.begin(), busy_.end(), std::greater<>{});
      busy_.pop_back();
    }
  }

  int units_ = 0;
  // Min-heap of busy units' release times; `mutable` for lazy pruning
  // under const queries (pruning never changes observable behaviour).
  mutable std::vector<std::uint64_t> busy_;
};

}  // namespace hidisc::uarch
