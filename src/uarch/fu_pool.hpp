// Functional-unit pools.
//
// Table 1: 4 integer ALUs + 1 integer MUL/DIV per processor; 4 FP adders +
// 1 FP MUL/DIV on the superscalar and the CP.  ALU/FP-add/FP-mul units are
// pipelined (busy one cycle per issue); divide units are unpipelined (busy
// for the whole operation).
#pragma once

#include <cstdint>
#include <vector>

#include "uarch/event.hpp"

namespace hidisc::uarch {

class FuPool {
 public:
  FuPool() = default;
  explicit FuPool(int units) : next_free_(static_cast<std::size_t>(units), 0) {}

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(next_free_.size());
  }

  // True if some unit can accept an operation this cycle.
  [[nodiscard]] bool available(std::uint64_t now) const noexcept {
    for (const auto t : next_free_)
      if (t <= now) return true;
    return false;
  }

  // Claims a unit for `busy` cycles; returns false when none is free.
  bool acquire(std::uint64_t now, int busy) noexcept {
    for (auto& t : next_free_) {
      if (t <= now) {
        t = now + static_cast<std::uint64_t>(busy);
        return true;
      }
    }
    return false;
  }

  // Earliest cycle strictly after `now` at which a busy unit frees up;
  // kNoEvent when every unit is already free (or the pool is empty).
  [[nodiscard]] std::uint64_t next_release(std::uint64_t now) const noexcept {
    std::uint64_t ev = kNoEvent;
    for (const auto t : next_free_)
      if (t > now && t < ev) ev = t;
    return ev;
  }

  void reset() noexcept {
    for (auto& t : next_free_) t = 0;
  }

 private:
  std::vector<std::uint64_t> next_free_;
};

}  // namespace hidisc::uarch
