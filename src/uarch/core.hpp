// RUU-style out-of-order core model (sim-outorder lineage).
//
// One `OoOCore` models any of the paper's processors: the 8-issue
// superscalar baseline, the Computation Processor (window 16, FP units, no
// load/store unit), the Access Processor (window 64, integer + LSU), or the
// Cache Management Processor (integer + LSU, prefetch-only semantics).
//
// The core consumes `DynOp`s from its input instruction queue (the paper's
// Computation / Access Instruction Queues), dispatches them in order into a
// scheduling window, issues oldest-first when operands, functional units,
// memory ports and architectural queues allow, and commits in order.
// Producer-consumer timing between cores flows exclusively through
// `TimedFifo`s, exactly like the paper's LDQ/SDQ/SCQ.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "diag/deadlock.hpp"
#include "mem/memory_system.hpp"
#include "uarch/dyn_op.hpp"
#include "uarch/fu_pool.hpp"
#include "uarch/timed_fifo.hpp"

namespace hidisc::uarch {

struct CoreConfig {
  std::string name = "core";
  int window = 64;         // scheduling window (RUU) entries
  int issue_width = 8;
  int commit_width = 8;
  int dispatch_width = 8;  // input queue -> window per cycle
  int input_queue = 64;    // CIQ / AIQ / fetch-buffer capacity
  int lsq = 32;            // max memory ops resident in the window
  int int_alu = 4;
  int int_muldiv = 1;
  int fp_alu = 4;          // 0 => no FP capability
  int fp_muldiv = 1;
  int mem_ports = 2;
  bool has_lsu = true;
  bool prefetch_only = false;  // CMP: loads probe/fill caches only
  // Architectural-queue read/write bandwidth per cycle.  The paper's
  // machine names $LDQ as a register operand (Figure 6: "mul.d $f4, $LDQ,
  // $LDQ" consumes two entries in one instruction), so several queue
  // entries per cycle must be consumable.
  int queue_pops_per_cycle = 4;
  // Prefetch-only cores: cap on concurrent fire-and-forget fills (the
  // precomputation engine's prefetch buffer, cf. DGP).  Bounds how much
  // miss bandwidth the CMP can sustain.
  int prefetch_buffer = 8;
};

struct CoreStats {
  std::uint64_t committed = 0;      // architecturally counted commits
  std::uint64_t committed_all = 0;  // including CMP slice micro-ops
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t forwarded_loads = 0;
  std::uint64_t window_full_stalls = 0;
  std::uint64_t queue_full_commit_stalls = 0;
  std::uint64_t head_pop_empty_stalls = 0;  // oldest op waiting on empty FIFO
  std::uint64_t lod_stalls = 0;  // oldest op waiting on SDQ: loss of decoupling
  std::uint64_t busy_cycles = 0; // cycles with at least one op in flight

  friend bool operator==(const CoreStats&, const CoreStats&) = default;
};

// A branch whose redirect the front end is waiting on.
struct ResolvedBranch {
  std::int64_t trace_pos = -1;
  std::uint64_t resolve_cycle = 0;
};

class OoOCore {
 public:
  struct Queues {
    TimedFifo* ldq = nullptr;
    TimedFifo* sdq = nullptr;
    TimedFifo* scq = nullptr;
  };

  OoOCore(const CoreConfig& cfg, mem::MemorySystem* memsys, Queues queues);

  // Front-end interface -----------------------------------------------------
  [[nodiscard]] bool input_full() const noexcept {
    return input_.size() >= static_cast<std::size_t>(cfg_.input_queue);
  }
  // False (and no effect) when the input queue is full.
  bool enqueue(const DynOp& op);

  // Advances one cycle: commit, then issue, then dispatch.  Returns true
  // when the core changed state (committed, pushed, issued or dispatched
  // anything) — the event-skip scheduler's "this core is active" signal.
  bool tick(std::uint64_t now);

  // True when no work remains anywhere in the core.
  [[nodiscard]] bool drained() const noexcept {
    return input_.empty() && window_.empty();
  }

  // Event-skip scheduler interface --------------------------------------
  //
  // Earliest cycle strictly after `now` at which this core's own state
  // could change without external input: a functional-unit result or an
  // unpipelined unit freeing (both bounded by issued entries'
  // complete_cycle / pool release times), or a fire-and-forget prefetch
  // fill vacating a prefetch-buffer slot.  Cross-core wake-ups (queue
  // pushes/pops, new front-end input) are events of the *other* party and
  // are folded in by the machine.  kNoEvent when nothing self-scheduled
  // remains.
  [[nodiscard]] std::uint64_t next_event_cycle(std::uint64_t now) const;

  // Accounts `delta` cycles during which the machine fast-forwarded time
  // past this core while it was provably unable to change state ("frozen"
  // at the state observed at cycle `now`).  Replays exactly the per-cycle
  // stall counters a lock-stepped tick would have accrued at each skipped
  // cycle, so results stay bit-identical with the cycle-by-cycle
  // scheduler.
  void account_idle_cycles(std::uint64_t now, std::uint64_t delta);

  // Mispredicted branches that reached resolution since the last call.
  std::vector<ResolvedBranch> take_resolved_branches();

  [[nodiscard]] const CoreConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const CoreStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t window_occupancy() const noexcept {
    return window_.size();
  }
  [[nodiscard]] std::size_t input_occupancy() const noexcept {
    return input_.size();
  }

  // Forensics: why the oldest op in the core cannot move at `now`.
  // Walks the same gates as do_commit / do_issue, without mutating
  // anything.  `valid` is false when the core is drained.
  struct StallProbe {
    bool valid = false;
    diag::StallWhy why = diag::StallWhy::None;
    std::string op;                    // mnemonic of the oldest op
    std::int32_t static_idx = -1;
    std::int64_t trace_pos = -1;
    const TimedFifo* queue = nullptr;  // involved queue on pop/push stalls
  };
  [[nodiscard]] StallProbe probe_oldest_stall(std::uint64_t now) const;

  void reset();

 private:
  struct Entry {
    DynOp op;
    std::uint64_t seq = 0;
    // Producer tracking: seq of in-window producer (0 = value already
    // available) per source operand.
    std::uint64_t src_seq[2] = {0, 0};
    bool needs_pop = false;
    TimedFifo* pop_queue = nullptr;
    TimedFifo* push_queue = nullptr;  // queue written at completion
    bool push_eod = false;
    bool pushed = false;  // queue write already performed
    bool is_load = false;
    bool is_store = false;
    bool forwarded = false;   // load satisfied by an older in-window store
    bool issued = false;
    std::uint64_t complete_cycle = 0;
  };

  [[nodiscard]] const Entry* find_by_seq(std::uint64_t seq) const;
  [[nodiscard]] bool sources_ready(const Entry& e, std::uint64_t now) const;
  [[nodiscard]] bool completed(const Entry& e, std::uint64_t now) const {
    return e.issued && e.complete_cycle <= now;
  }
  void do_commit(std::uint64_t now);
  void do_pushes(std::uint64_t now);
  void do_issue(std::uint64_t now);
  void do_dispatch(std::uint64_t now);
  void issue_one(Entry& e, std::uint64_t now);
  void queue_roles(const isa::Instruction& inst, Entry& e);
  [[nodiscard]] FuPool* pool_for(isa::OpClass cls);

  CoreConfig cfg_;
  mem::MemorySystem* memsys_;
  Queues queues_;

  std::deque<DynOp> input_;
  std::deque<Entry> window_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t base_seq_ = 1;  // seq of window_.front()
  int mem_ops_in_window_ = 0;

  // Per architectural register: seq of the most recent in-flight writer
  // (0 when the committed register file already holds the value).
  std::vector<std::uint64_t> last_writer_;

  FuPool int_alu_, int_muldiv_, fp_alu_, fp_muldiv_, mem_ports_;
  // Completion times of in-flight fire-and-forget prefetch fills
  // (prefetch-only cores); bounded by cfg_.prefetch_buffer.
  std::vector<std::uint64_t> prefetch_fills_;
  CoreStats stats_;
  std::vector<ResolvedBranch> resolved_;
  bool progress_ = false;  // state changed during the current tick
};

}  // namespace hidisc::uarch
