// RUU-style out-of-order core model (sim-outorder lineage).
//
// One `OoOCore` models any of the paper's processors: the 8-issue
// superscalar baseline, the Computation Processor (window 16, FP units, no
// load/store unit), the Access Processor (window 64, integer + LSU), or the
// Cache Management Processor (integer + LSU, prefetch-only semantics).
//
// The core consumes `DynOp`s from its input instruction queue (the paper's
// Computation / Access Instruction Queues), dispatches them in order into a
// scheduling window, issues oldest-first when operands, functional units,
// memory ports and architectural queues allow, and commits in order.
// Producer-consumer timing between cores flows exclusively through
// `TimedFifo`s, exactly like the paper's LDQ/SDQ/SCQ.
//
// Per-step cost scales with what changed, not with the window size: the
// core keeps incremental frontiers (a completion-event min-heap, per-queue
// pending-write cursors, the ordered list of unissued entries, and a
// per-8-byte-line map of in-window stores) instead of rescanning the whole
// window each cycle — see docs/MACHINE.md "Hot-path data structures".
// `debug_check_invariants` recomputes every frontier by brute force and
// throws on disagreement; the randomized scheduler tests call it each step.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "diag/deadlock.hpp"
#include "mem/memory_system.hpp"
#include "uarch/dyn_op.hpp"
#include "uarch/fu_pool.hpp"
#include "uarch/static_op.hpp"
#include "uarch/timed_fifo.hpp"

namespace hidisc::uarch {

struct CoreConfig {
  std::string name = "core";
  int window = 64;         // scheduling window (RUU) entries
  int issue_width = 8;
  int commit_width = 8;
  int dispatch_width = 8;  // input queue -> window per cycle
  int input_queue = 64;    // CIQ / AIQ / fetch-buffer capacity
  int lsq = 32;            // max memory ops resident in the window
  int int_alu = 4;
  int int_muldiv = 1;
  int fp_alu = 4;          // 0 => no FP capability
  int fp_muldiv = 1;
  int mem_ports = 2;
  bool has_lsu = true;
  bool prefetch_only = false;  // CMP: loads probe/fill caches only
  // Architectural-queue read/write bandwidth per cycle.  The paper's
  // machine names $LDQ as a register operand (Figure 6: "mul.d $f4, $LDQ,
  // $LDQ" consumes two entries in one instruction), so several queue
  // entries per cycle must be consumable.
  int queue_pops_per_cycle = 4;
  // Prefetch-only cores: cap on concurrent fire-and-forget fills (the
  // precomputation engine's prefetch buffer, cf. DGP).  Bounds how much
  // miss bandwidth the CMP can sustain.
  int prefetch_buffer = 8;
};

struct CoreStats {
  std::uint64_t committed = 0;      // architecturally counted commits
  std::uint64_t committed_all = 0;  // including CMP slice micro-ops
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t forwarded_loads = 0;
  std::uint64_t window_full_stalls = 0;
  std::uint64_t lsq_full_stalls = 0;  // dispatch blocked: LSQ share exhausted
  std::uint64_t queue_full_commit_stalls = 0;
  std::uint64_t head_pop_empty_stalls = 0;  // oldest op waiting on empty FIFO
  std::uint64_t lod_stalls = 0;  // oldest op waiting on SDQ: loss of decoupling
  std::uint64_t busy_cycles = 0; // cycles with at least one op in flight

  friend bool operator==(const CoreStats&, const CoreStats&) = default;
};

// A branch whose redirect the front end is waiting on.
struct ResolvedBranch {
  std::int64_t trace_pos = -1;
  std::uint64_t resolve_cycle = 0;
};

class OoOCore {
 public:
  struct Queues {
    TimedFifo* ldq = nullptr;
    TimedFifo* sdq = nullptr;
    TimedFifo* scq = nullptr;
  };

  // `table`, when given, must cover every static_idx the core will see and
  // outlive the core; without it every dispatch decodes its instruction on
  // the fly (unit-test path — identical semantics, just slower).
  OoOCore(const CoreConfig& cfg, mem::MemorySystem* memsys, Queues queues,
          const StaticOpTable* table = nullptr);

  // Front-end interface -----------------------------------------------------
  [[nodiscard]] bool input_full() const noexcept {
    return input_count_ >= static_cast<std::size_t>(cfg_.input_queue);
  }
  // False (and no effect) when the input queue is full.
  bool enqueue(const DynOp& op) {
    if (input_full()) return false;
    input_slots_[(input_head_ + input_count_) & input_mask_] = op;
    ++input_count_;
    return true;
  }

  // Advances one cycle: commit, then issue, then dispatch.  Returns true
  // when the core changed state (committed, pushed, issued or dispatched
  // anything) — the event-skip scheduler's "this core is active" signal.
  bool tick(std::uint64_t now);

  // True when no work remains anywhere in the core.
  [[nodiscard]] bool drained() const noexcept {
    return input_count_ == 0 && window_count_ == 0;
  }

  // Event-skip scheduler interface --------------------------------------
  //
  // Earliest cycle strictly after `now` at which this core's own state
  // could change without external input: a functional-unit result or an
  // unpipelined unit freeing (both bounded by issued entries'
  // complete_cycle / pool release times), or a fire-and-forget prefetch
  // fill vacating a prefetch-buffer slot.  Cross-core wake-ups (queue
  // pushes/pops, new front-end input) are events of the *other* party and
  // are folded in by the machine.  kNoEvent when nothing self-scheduled
  // remains.
  [[nodiscard]] std::uint64_t next_event_cycle(std::uint64_t now) const;

  // Accounts `delta` cycles during which the machine fast-forwarded time
  // past this core while it was provably unable to change state ("frozen"
  // at the state observed at cycle `now`).  Replays exactly the per-cycle
  // stall counters a lock-stepped tick would have accrued at each skipped
  // cycle, so results stay bit-identical with the cycle-by-cycle
  // scheduler.
  void account_idle_cycles(std::uint64_t now, std::uint64_t delta);

  // Mispredicted branches that reached resolution since the last call.
  std::vector<ResolvedBranch> take_resolved_branches();
  // Cheap guard so the machine only pays the take/move when one resolved.
  [[nodiscard]] bool has_resolved() const noexcept {
    return !resolved_.empty();
  }

  [[nodiscard]] const CoreConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const CoreStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t window_occupancy() const noexcept {
    return window_count_;
  }
  [[nodiscard]] std::size_t input_occupancy() const noexcept {
    return input_count_;
  }

  // Forensics: why the oldest op in the core cannot move at `now`.
  // Walks the same gates as do_commit / do_issue, without mutating
  // anything.  `valid` is false when the core is drained.
  struct StallProbe {
    bool valid = false;
    diag::StallWhy why = diag::StallWhy::None;
    std::string op;                    // mnemonic of the oldest op
    std::int32_t static_idx = -1;
    std::int64_t trace_pos = -1;
    const TimedFifo* queue = nullptr;  // involved queue on pop/push stalls
  };
  [[nodiscard]] StallProbe probe_oldest_stall(std::uint64_t now) const;

  // Recomputes every incremental frontier (completion min, unissued list,
  // per-queue push cursors, store map, mem-op count) by brute-force window
  // scan and throws std::logic_error on any disagreement.  Test-only: the
  // randomized invariant tests call it after every tick.
  void debug_check_invariants(std::uint64_t now) const;

  void reset();

 private:
  // One window (RUU) entry.  Hot issue/complete fields first; the decoded
  // StaticOp is embedded by value so the issue path never chases
  // `op.inst->info()`.
  struct Entry {
    StaticOp so;
    std::uint64_t seq = 0;
    // Producer tracking: seq of in-window producer (0 = value already
    // available) per source operand.
    std::uint64_t src_seq[2] = {0, 0};
    std::uint64_t complete_cycle = 0;
    TimedFifo* pop_queue = nullptr;   // null = no queue pop
    TimedFifo* push_queue = nullptr;  // queue written at completion
    bool push_eod = false;
    bool pushed = false;  // queue write already performed
    bool issued = false;
    bool forwarded = false;  // load satisfied by an older in-window store
    // Proven lower bound on this entry's issue cycle, recorded whenever
    // the scheduler pins it (0 = no proof).  Pin proofs are
    // time-invariant facts ("no source completes before T", "no unit
    // frees before R"), so a stale value is still a valid bound.
    // Consumers sharpen their own source pins with it: a producer that
    // cannot issue before T cannot complete before T + 1.
    std::uint64_t pin_until = 0;
    // Load dispatched with no older in-window store on its line: dispatch
    // is in-order, so later stores are younger and the disambiguation
    // walk can never make it wait or forward — skip the probe for life.
    bool no_conflict = false;
    DynOp op;
  };

  // The window lives in a power-of-two ring (`slots_`), so resolving a seq
  // to its entry — the single hottest operation of the issue path — is two
  // adds and a mask, not a deque block walk.
  [[nodiscard]] const Entry* find_by_seq(std::uint64_t seq) const noexcept {
    const auto idx = seq - base_seq_;  // wraps huge for committed seqs
    if (idx >= window_count_) return nullptr;
    return &slots_[(window_head_ + idx) & window_mask_];
  }
  [[nodiscard]] Entry* find_by_seq(std::uint64_t seq) noexcept {
    const auto idx = seq - base_seq_;
    if (idx >= window_count_) return nullptr;
    return &slots_[(window_head_ + idx) & window_mask_];
  }
  // Entry at window position `i` (0 = oldest).
  [[nodiscard]] const Entry& window_at(std::size_t i) const noexcept {
    return slots_[(window_head_ + i) & window_mask_];
  }
  [[nodiscard]] Entry& window_at(std::size_t i) noexcept {
    return slots_[(window_head_ + i) & window_mask_];
  }
  [[nodiscard]] bool sources_ready(const Entry& e, std::uint64_t now) const
      noexcept {
    for (const auto seq : e.src_seq) {
      if (seq == 0) continue;
      const Entry* p = find_by_seq(seq);
      if (p == nullptr) continue;  // producer committed: value architectural
      if (!completed(*p, now)) return false;
    }
    return true;
  }
  [[nodiscard]] bool completed(const Entry& e, std::uint64_t now) const
      noexcept {
    return e.issued && e.complete_cycle <= now;
  }
  void do_commit(std::uint64_t now);
  void do_pushes(std::uint64_t now);
  void do_issue(std::uint64_t now);
  void do_dispatch(std::uint64_t now);
  void issue_one(Entry& e, std::uint64_t now);
  [[nodiscard]] FuPool* pool_ptr(PoolKind kind);
  [[nodiscard]] const FuPool* pool_ptr(PoolKind kind) const noexcept {
    return const_cast<OoOCore*>(this)->pool_ptr(kind);
  }
  [[nodiscard]] TimedFifo* queue_ptr(QueueRole role) const noexcept;
  // Slot index for the per-queue pending-push cursors; mirrors the
  // historical ldq/sdq/else bucketing of do_pushes.
  [[nodiscard]] int queue_slot(const TimedFifo* q) const noexcept {
    return q == queues_.ldq ? 0 : q == queues_.sdq ? 1 : 2;
  }
  // Memory disambiguation against the per-line store map: whether the load
  // `seq` at `line` must wait for an older incomplete store, and whether a
  // completed older store forwards to it.
  struct Disambiguation {
    bool wait = false;
    bool forward = false;
    // When waiting: earliest cycle the blocking store can have completed
    // (its fixed complete_cycle, or now + 2 while it is still unissued).
    std::uint64_t until = 0;
  };
  [[nodiscard]] Disambiguation check_older_stores(std::uint64_t line,
                                                  std::uint64_t seq,
                                                  std::uint64_t now) const;
  // Drops prefetch-fill slots whose fills have landed by `now`.
  void prune_prefetch_fills(std::uint64_t now) const;

  CoreConfig cfg_;
  mem::MemorySystem* memsys_;
  Queues queues_;
  const StaticOpTable* table_;

  // Input queue as a fixed ring (size = cfg_.input_queue rounded up to a
  // power of two, allocated once) — enqueue/front/pop are index math, no
  // deque block management on the per-instruction path.
  std::vector<DynOp> input_slots_;
  std::size_t input_head_ = 0;
  std::size_t input_count_ = 0;
  std::size_t input_mask_ = 0;
  [[nodiscard]] const DynOp& input_front() const noexcept {
    return input_slots_[input_head_];
  }
  void input_pop() noexcept {
    input_head_ = (input_head_ + 1) & input_mask_;
    --input_count_;
  }
  // Scheduling window as a ring over `slots_` (size = cfg_.window rounded
  // up to a power of two, allocated once): front at window_head_,
  // window_count_ live entries, seqs contiguous from base_seq_.
  std::vector<Entry> slots_;
  std::size_t window_head_ = 0;
  std::size_t window_count_ = 0;
  std::size_t window_mask_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t base_seq_ = 1;  // seq of the oldest window entry
  int mem_ops_in_window_ = 0;

  // Per architectural register: seq of the most recent in-flight writer
  // (0 when the committed register file already holds the value).
  std::vector<std::uint64_t> last_writer_;

  FuPool int_alu_, int_muldiv_, fp_alu_, fp_muldiv_, mem_ports_;

  // Incremental frontiers (all invariants in docs/MACHINE.md) ------------
  //
  // Min-heap of complete_cycle over issued entries; stale tops (already
  // reached, possibly committed) are lazily pruned, so the pruned top is
  // exactly min{complete_cycle > now | issued} without a window scan.
  mutable std::vector<std::uint64_t> completion_events_;
  // Cache of the heap's pruned top, refreshed only once it falls due —
  // the scheduler polls next_event_cycle every stalled step, and this
  // keeps the polls O(1) between completions.  kNoEvent iff the heap
  // holds no future event; a value <= now is stale and triggers a prune.
  mutable std::uint64_t next_completion_ = kNoEvent;
  // Per queue slot: seqs of entries with an unperformed queue write, in
  // program order.  Front = the oldest write do_pushes must drain next.
  std::deque<std::uint64_t> pending_push_[3];
  // Unissued window entries, split by whether the issue scan must look at
  // them.  `active_` (ascending seq) is walked every cycle; an entry
  // proven unable to issue before cycle `until` — an incomplete producer
  // or blocking store with a fixed completion time, a queue head token
  // with a future ready time, an exhausted FU pool's earliest release, a
  // full prefetch buffer's earliest fill — moves to the `pinned_`
  // min-heap (keyed by `until`) and costs nothing until its pin falls
  // due, at which point it merges back into `active_` in program order.
  // Pinning is restricted to visits the full gate walk would end with a
  // side-effect-free `continue` (see do_issue), so the scan split cannot
  // change any Result bit.
  struct Unissued {
    std::uint64_t seq = 0;
    std::uint64_t until = 0;
  };
  std::vector<Unissued> active_;
  std::vector<Unissued> pinned_;          // min-heap by until
  std::vector<Unissued> expired_scratch_; // merge staging, reused
  // Seq of the oldest unissued window entry (0 = none): the only entry
  // whose blocked-on-empty-queue wait is charged to the stall counters.
  // Advanced at the end of each issue pass and on dispatch, so it is
  // fresh whenever account_idle_cycles / probe_oldest_stall read it.
  std::uint64_t oldest_unissued_ = 0;
  // Earliest cycle the active walk can do anything: when every active
  // entry left the last pass carrying a justified future pin, the walk is
  // provably a no-op until the earliest pin (or a merge, or a dispatch,
  // which resets this) — do_issue returns without touching the list.
  std::uint64_t active_rescan_ = 0;
  // Empty-queue waiters, parked per consumed queue until the queue sees a
  // push.  The FIFO's cumulative push count doubles as a generation
  // stamp: a sleeper slot records the count at sleep time, and any
  // difference at a later pass means at least one push happened, so the
  // sleepers rejoin `active_` and re-derive their gates.  Sleeping is
  // only legal when the queue holds no token at all (in-flight tokens
  // pin on their ready time instead), and — like pins — only for visits
  // that would end in a side-effect-free keep.  The one charged visit,
  // the program-order head's empty-queue stall, sleeps separately
  // (`head_sleep_seq_`) and is charged O(1) at the top of every pass,
  // which is exactly the per-cycle charge its visit would have made.
  std::vector<Unissued> queue_sleepers_[3];
  std::uint64_t sleeper_gen_[3] = {0, 0, 0};
  std::uint64_t head_sleep_seq_ = 0;  // 0 = head not sleeping
  int head_sleep_slot_ = 0;
  std::size_t sleeping_ = 0;  // total parked entries incl. the head
  [[nodiscard]] TimedFifo* queue_from_slot(int s) const noexcept {
    return s == 0 ? queues_.ldq : s == 1 ? queues_.sdq : queues_.scq;
  }
  // 8-byte line -> seqs of in-window stores to it, ascending.  Loads
  // disambiguate against their own line's bucket instead of the window.
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> stores_by_line_;
  // Completion times of in-flight fire-and-forget prefetch fills
  // (prefetch-only cores); a min-heap bounded by cfg_.prefetch_buffer.
  mutable std::vector<std::uint64_t> prefetch_fills_;

  CoreStats stats_;
  std::vector<ResolvedBranch> resolved_;
  bool progress_ = false;  // state changed during the current tick
};

}  // namespace hidisc::uarch
