#include "uarch/core.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <string>

namespace hidisc::uarch {

using isa::OpClass;
using isa::Opcode;

namespace {

// Lazily drops heap tops that have already been reached.  Entries for
// committed ops are covered too: commit requires completion, so their
// times are <= the commit cycle and fall out here.
void prune_heap(std::vector<std::uint64_t>& heap, std::uint64_t now) {
  while (!heap.empty() && heap.front() <= now) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    heap.pop_back();
  }
}

void push_heap_value(std::vector<std::uint64_t>& heap, std::uint64_t v) {
  heap.push_back(v);
  std::push_heap(heap.begin(), heap.end(), std::greater<>{});
}

constexpr std::uint64_t store_line(std::uint64_t addr) noexcept {
  return addr & ~7ull;
}

std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

OoOCore::OoOCore(const CoreConfig& cfg, mem::MemorySystem* memsys,
                 Queues queues, const StaticOpTable* table)
    : cfg_(cfg),
      memsys_(memsys),
      queues_(queues),
      table_(table),
      last_writer_(isa::kNumArchRegs, 0),
      int_alu_(cfg.int_alu),
      int_muldiv_(cfg.int_muldiv),
      fp_alu_(cfg.fp_alu),
      fp_muldiv_(cfg.fp_muldiv),
      mem_ports_(cfg.mem_ports) {
  if (cfg.window <= 0 || cfg.issue_width <= 0 || cfg.commit_width <= 0)
    throw std::invalid_argument(cfg.name + ": non-positive core geometry");
  slots_.resize(pow2_at_least(static_cast<std::size_t>(cfg.window)));
  window_mask_ = slots_.size() - 1;
  input_slots_.resize(
      pow2_at_least(static_cast<std::size_t>(std::max(1, cfg.input_queue))));
  input_mask_ = input_slots_.size() - 1;
}

void OoOCore::reset() {
  input_head_ = input_count_ = 0;
  window_head_ = window_count_ = 0;
  next_seq_ = base_seq_ = 1;
  mem_ops_in_window_ = 0;
  std::fill(last_writer_.begin(), last_writer_.end(), 0);
  int_alu_.reset();
  int_muldiv_.reset();
  fp_alu_.reset();
  fp_muldiv_.reset();
  mem_ports_.reset();
  completion_events_.clear();
  next_completion_ = kNoEvent;
  for (auto& pend : pending_push_) pend.clear();
  active_.clear();
  pinned_.clear();
  expired_scratch_.clear();
  oldest_unissued_ = 0;
  active_rescan_ = 0;
  for (auto& sl : queue_sleepers_) sl.clear();
  sleeper_gen_[0] = sleeper_gen_[1] = sleeper_gen_[2] = 0;
  head_sleep_seq_ = 0;
  head_sleep_slot_ = 0;
  sleeping_ = 0;
  stores_by_line_.clear();
  prefetch_fills_.clear();
  stats_ = CoreStats{};
  resolved_.clear();
}

std::vector<ResolvedBranch> OoOCore::take_resolved_branches() {
  auto out = std::move(resolved_);
  resolved_.clear();
  return out;
}

FuPool* OoOCore::pool_ptr(PoolKind kind) {
  switch (kind) {
    case PoolKind::IntAlu: return &int_alu_;
    case PoolKind::IntMulDiv: return &int_muldiv_;
    case PoolKind::FpAlu: return &fp_alu_;
    case PoolKind::FpMulDiv: return &fp_muldiv_;
    case PoolKind::Mem: return &mem_ports_;
    case PoolKind::None: return nullptr;
  }
  return nullptr;
}

TimedFifo* OoOCore::queue_ptr(QueueRole role) const noexcept {
  switch (role) {
    case QueueRole::Ldq: return queues_.ldq;
    case QueueRole::Sdq: return queues_.sdq;
    case QueueRole::Scq: return queues_.scq;
    case QueueRole::None: return nullptr;
  }
  return nullptr;
}

bool OoOCore::tick(std::uint64_t now) {
  if (window_count_ != 0 || input_count_ != 0) ++stats_.busy_cycles;
  // Keep the completion heap bounded by the in-flight population: during
  // long progress stretches nobody queries next_event_cycle, and without
  // this drain expired events would pile up and tax every push.
  if (!completion_events_.empty() && completion_events_.front() <= now)
    prune_heap(completion_events_, now);
  progress_ = false;
  do_commit(now);
  do_pushes(now);
  do_issue(now);
  do_dispatch(now);
  return progress_;
}

void OoOCore::prune_prefetch_fills(std::uint64_t now) const {
  prune_heap(prefetch_fills_, now);
}

std::uint64_t OoOCore::next_event_cycle(std::uint64_t now) const {
  // Issued-but-incomplete entries cover every time-threshold their
  // completion gates: commit of the head, queue writes draining, consumers'
  // sources_ready, and load/store disambiguation waits.  The completion
  // heap's pruned top is exactly the earliest of them; the cached copy is
  // only refreshed once it falls due, so between completions this poll
  // never touches the heap.
  if (next_completion_ != kNoEvent && next_completion_ <= now) {
    prune_heap(completion_events_, now);
    next_completion_ =
        completion_events_.empty() ? kNoEvent : completion_events_.front();
  }
  std::uint64_t ev = next_completion_;
  for (const FuPool* pool :
       {&int_alu_, &int_muldiv_, &fp_alu_, &fp_muldiv_, &mem_ports_})
    ev = std::min(ev, pool->next_release(now));
  // A full prefetch buffer frees a slot when its earliest fill lands.
  prune_prefetch_fills(now);
  if (!prefetch_fills_.empty() && prefetch_fills_.front() < ev)
    ev = prefetch_fills_.front();
  return ev;
}

// Mirrors exactly the per-cycle stall counters tick() accrues in a cycle
// where nothing can change: busy time, dispatch blocked on a full window
// or an exhausted LSQ share, commit blocked on an undrained queue write,
// the per-queue full-stall note of do_pushes, and the oldest-op
// empty-queue stalls of do_issue.  Any drift here is caught by the
// HIDISC_LOCKSTEP verification path.
void OoOCore::account_idle_cycles(std::uint64_t now, std::uint64_t delta) {
  if (delta == 0) return;
  if (window_count_ == 0 && input_count_ == 0) return;  // quiescent
  stats_.busy_cycles += delta;

  if (input_count_ != 0) {
    if (window_count_ >= static_cast<std::size_t>(cfg_.window)) {
      stats_.window_full_stalls += delta;
    } else {
      // Window has room yet dispatch was frozen: the head of the input
      // queue must be a memory op blocked on the LSQ share (the only other
      // dispatch gate) — mirror do_dispatch's per-cycle counter.
      StaticOp scratch;
      const DynOp& op = input_front();
      const StaticOp& so = table_ != nullptr ? (*table_)[op.static_idx]
                                             : (scratch = decode_static_op(
                                                    *op.inst),
                                                scratch);
      if ((so.is_load || so.is_store) && mem_ops_in_window_ >= cfg_.lsq)
        stats_.lsq_full_stalls += delta;
    }
  }

  if (window_count_ != 0) {
    const Entry& head = window_at(0);
    if (completed(head, now) && head.push_queue != nullptr && !head.pushed)
      stats_.queue_full_commit_stalls += delta;
  }

  // do_pushes: one full-stall note per queue per cycle, charged when the
  // oldest un-pushed write for that queue is completed but the queue is
  // full.  (An older incomplete write blocks younger ones silently.)
  for (const auto& pend : pending_push_) {
    if (pend.empty()) continue;
    const Entry* e = find_by_seq(pend.front());
    if (e != nullptr && completed(*e, now) && e->push_queue->full())
      e->push_queue->note_full_stalls(delta);
  }

  // do_issue: the oldest un-issued op, when ready but waiting on an empty
  // (or not-yet-ready) architectural queue, counts a head stall per cycle.
  // Read through the maintained cursor — the pin state of the entry is
  // irrelevant here, the gates are re-derived from the window directly.
  if (oldest_unissued_ != 0) {
    const Entry* e = find_by_seq(oldest_unissued_);
    if (e != nullptr && sources_ready(*e, now) && e->pop_queue != nullptr &&
        e->pop_queue->front_ready(now) == nullptr) {
      stats_.head_pop_empty_stalls += delta;
      e->pop_queue->note_empty_stalls(delta);
      if (e->pop_queue == queues_.sdq) stats_.lod_stalls += delta;
    }
  }
}

OoOCore::StallProbe OoOCore::probe_oldest_stall(std::uint64_t now) const {
  StallProbe p;
  if (window_count_ == 0) {
    if (input_count_ == 0) return p;  // drained
    const DynOp& op = input_front();
    p.valid = true;
    p.why = diag::StallWhy::Dispatch;
    p.op = std::string(op.inst->info().name);
    p.static_idx = op.static_idx;
    p.trace_pos = op.trace_pos;
    return p;
  }

  const Entry& head = window_at(0);
  p.valid = true;
  p.op = std::string(head.op.inst->info().name);
  p.static_idx = head.op.static_idx;
  p.trace_pos = head.op.trace_pos;

  if (completed(head, now)) {
    // do_commit's only gate: an undrained queue write.
    if (head.push_queue != nullptr && !head.pushed) {
      p.why = diag::StallWhy::PushFull;
      p.queue = head.push_queue;
    }
    return p;
  }
  if (head.issued) {
    p.why = diag::StallWhy::InFlight;
    return p;
  }

  // Un-issued head: do_issue's gates, in order.  The head has no older
  // in-window producers, but keep the check for completeness.
  if (!sources_ready(head, now)) {
    p.why = diag::StallWhy::Sources;
    return p;
  }
  if (head.pop_queue != nullptr) {
    p.queue = head.pop_queue;
    if (head.pop_queue->front_ready(now) == nullptr) {
      p.why = head.pop_queue->empty() ? diag::StallWhy::PopEmpty
                                      : diag::StallWhy::PopNotReady;
      return p;
    }
  }
  if (head.so.is_load && cfg_.prefetch_only && !head.so.value_live) {
    prune_prefetch_fills(now);
    if (prefetch_fills_.size() >=
        static_cast<std::size_t>(cfg_.prefetch_buffer)) {
      p.why = diag::StallWhy::FuBusy;
      return p;
    }
  }
  // Sources and queues cleared: a functional unit / memory port is the
  // remaining gate.
  p.why = diag::StallWhy::FuBusy;
  return p;
}

// Queue writes drain at completion (writeback), in program order per queue
// — the decoupled machines' whole point is that the consumer sees a value
// as soon as it is produced, not when it retires.  An entry that has not
// managed its write (queue full) blocks commit.  Only each queue's oldest
// pending write can move, so the cursors replace the historical window
// scan.
void OoOCore::do_pushes(std::uint64_t now) {
  for (auto& pend : pending_push_) {
    while (!pend.empty()) {
      Entry& e = *find_by_seq(pend.front());
      if (!completed(e, now)) break;  // younger writes to this queue wait
      TimedFifo::Entry qe;
      // Value travels one cycle through the queue interconnect.
      qe.ready = now + 1;
      qe.producer_pos = e.op.trace_pos;
      qe.eod = e.push_eod;
      if (!e.push_queue->push(qe)) {
        e.push_queue->note_full_stall();
        break;
      }
      e.pushed = true;
      progress_ = true;
      pend.pop_front();
    }
  }
}

void OoOCore::do_commit(std::uint64_t now) {
  int committed = 0;
  while (window_count_ != 0 && committed < cfg_.commit_width) {
    Entry& head = window_at(0);
    if (!completed(head, now)) break;
    if (head.push_queue != nullptr && !head.pushed) {
      ++stats_.queue_full_commit_stalls;
      break;  // the queue write has not drained yet
    }
    if (head.so.is_load || head.so.is_store) --mem_ops_in_window_;
    if (head.so.is_store) {
      // The committing store is this line's oldest in-window store, i.e.
      // the front of its disambiguation bucket.
      const auto it = stores_by_line_.find(store_line(head.op.addr));
      it->second.erase(it->second.begin());
      if (it->second.empty()) stores_by_line_.erase(it);
    }
    if (head.op.count_commit) ++stats_.committed;
    ++stats_.committed_all;
    window_head_ = (window_head_ + 1) & window_mask_;
    --window_count_;
    ++base_seq_;
    ++committed;
    progress_ = true;
  }
}

OoOCore::Disambiguation OoOCore::check_older_stores(std::uint64_t line,
                                                    std::uint64_t seq,
                                                    std::uint64_t now) const {
  Disambiguation d;
  const auto it = stores_by_line_.find(line);
  if (it == stores_by_line_.end()) return d;
  // Bucket seqs ascend, so this walk visits overlapping stores oldest
  // first — identical order (and first-incomplete early-out) to the
  // historical full-window scan, minus every non-overlapping entry.
  for (const auto s : it->second) {
    if (s >= seq) break;
    const Entry* older = find_by_seq(s);
    if (!completed(*older, now)) {
      d.wait = true;
      d.until = older->issued
                    ? older->complete_cycle
                    : std::max(now + 2, older->pin_until + 1);
      break;
    }
    d.forward = true;  // most recent older overlapping store wins
  }
  return d;
}

void OoOCore::do_issue(std::uint64_t now) {
  const auto until_after = [](const Unissued& a, const Unissued& b) {
    return a.until > b.until;
  };
  const auto seq_before = [](const Unissued& a, const Unissued& b) {
    return a.seq < b.seq;
  };
  // Entries whose pin fell due — and sleepers whose queue saw a push
  // since they parked — rejoin the active scan in program order.
  const bool have_expired =
      !pinned_.empty() && pinned_.front().until <= now;
  if (have_expired || sleeping_ != 0) {
    expired_scratch_.clear();
    while (!pinned_.empty() && pinned_.front().until <= now) {
      std::pop_heap(pinned_.begin(), pinned_.end(), until_after);
      expired_scratch_.push_back(pinned_.back());
      pinned_.pop_back();
    }
    if (sleeping_ != 0) {
      for (int s = 0; s < 3; ++s) {
        auto& sl = queue_sleepers_[s];
        const bool head_here = head_sleep_seq_ != 0 && head_sleep_slot_ == s;
        if (sl.empty() && !head_here) continue;
        if (queue_from_slot(s)->stats().pushes == sleeper_gen_[s]) continue;
        sleeping_ -= sl.size();
        expired_scratch_.insert(expired_scratch_.end(), sl.begin(), sl.end());
        sl.clear();
        if (head_here) {
          expired_scratch_.push_back({head_sleep_seq_, 0});
          head_sleep_seq_ = 0;
          --sleeping_;
        }
      }
    }
    if (!expired_scratch_.empty()) {
      std::sort(expired_scratch_.begin(), expired_scratch_.end(), seq_before);
      const auto mid = active_.size();
      active_.insert(active_.end(), expired_scratch_.begin(),
                     expired_scratch_.end());
      std::inplace_merge(active_.begin(),
                         active_.begin() + static_cast<std::ptrdiff_t>(mid),
                         active_.end(), seq_before);
      active_rescan_ = 0;  // the woken entries must be visited this pass
    }
  }
  // A head still asleep is exactly a head whose visit would have charged
  // an empty-queue stall this cycle: same queue, still no token (its
  // generation is unchanged), sources still ready (completion times only
  // move toward the past).  Charge without the walk.
  if (head_sleep_seq_ != 0) {
    ++stats_.head_pop_empty_stalls;
    TimedFifo* fq = queue_from_slot(head_sleep_slot_);
    fq->note_empty_stall();
    if (fq == queues_.sdq) ++stats_.lod_stalls;
  }
  // Walk-free fast path: when the last pass left every active entry
  // carrying a justified future pin (and nothing merged or dispatched
  // since), the walk below is provably a pure rescan of blocked entries
  // — skip it outright.  Any entry that must be revisited every cycle
  // (queue/order/width blocks, the charging head) forces rescan at
  // now + 1; pins force it at their expiry; dispatch resets it to 0.
  if (active_rescan_ > now) return;

  int issued = 0;
  std::uint64_t rescan = kNoEvent;
  // Per-queue pop state for this cycle: pops must drain in program order
  // (an older blocked pop blocks younger ones) and respect the per-cycle
  // queue read bandwidth.
  struct PopState {
    bool order_blocked = false;
    int pops = 0;
  };
  PopState ldq_state, sdq_state, scq_state;
  // Earliest release of each FU pool proven exhausted this pass (0 = not
  // proven).  Mid-pass acquires only consume units, so once one acquire
  // fails, every later same-pool acquire this cycle fails too — those
  // entries pin straight away without re-running their gates.  Sound only
  // when the skipped visit is side-effect-free: no pop role (per-cycle
  // read budget) and no store-to-load forwarding possibility (a forward
  // bypasses the pool and would have issued).
  std::uint64_t pool_until[6] = {};
  // Program-order head of the whole unissued population, fixed for this
  // pass: the one entry whose empty-queue wait is charged to the stall
  // counters.  It is never queue-pinned (see the advance below), so when
  // that charge is due the head is in the active list.
  const std::uint64_t head_seq = oldest_unissued_;
  // Walk the active entries (ascending seq == program order), compacting
  // out the ones that issue or get pinned.
  std::size_t keep = 0;
  // Pins shorter than this horizon stay in the active list, skipped by a
  // plain compare on the 16-byte element: the dominant pins are two-cycle
  // unissued-producer bounds, and a heap round trip (push, expire, sort,
  // merge) per two cycles costs far more than the compares it saves.
  // Only waits long enough to amortize the round trip park in the heap.
  static constexpr std::uint64_t kPinHorizon = 16;
  const auto pin = [&](Unissued u, Entry& e) {
    e.pin_until = u.until;
    if (u.until > now + kPinHorizon) {
      pinned_.push_back(u);
      std::push_heap(pinned_.begin(), pinned_.end(), until_after);
    } else {
      active_[keep++] = u;
      rescan = std::min(rescan, u.until);
    }
  };
  std::size_t i = 0;
  for (; i < active_.size(); ++i) {
    if (issued >= cfg_.issue_width) break;
    Unissued u = active_[i];

    // Short-pin fast path: a prior visit proved the entry cannot issue
    // before u.until; skip on the cursor element alone.
    if (now < u.until) {
      active_[keep++] = u;
      rescan = std::min(rescan, u.until);
      continue;
    }
    Entry& e = *find_by_seq(u.seq);

    // Pool-exhausted short-circuit (see pool_until above).
    if (const auto fu_until = pool_until[static_cast<std::size_t>(e.so.pool)];
        fu_until != 0 && e.pop_queue == nullptr && !e.forwarded &&
        (!e.so.is_load || !cfg_.has_lsu || e.no_conflict)) {
      u.until = fu_until;
      pin(u, e);
      continue;
    }

    // An order- or bandwidth-blocked pop cannot issue this cycle no
    // matter what; bail before the source loop (same transient keep the
    // pop gate below would take).
    PopState* ps = nullptr;
    if (e.pop_queue != nullptr) {
      ps = e.pop_queue == queues_.ldq   ? &ldq_state
           : e.pop_queue == queues_.sdq ? &sdq_state
                                        : &scq_state;
      if (ps->order_blocked || ps->pops >= cfg_.queue_pops_per_cycle) {
        if (e.pop_queue->head() == nullptr) {
          // No token exists at all: nothing to pop until a push, which
          // bumps the generation and wakes the sleeper.
          const int s = queue_slot(e.pop_queue);
          queue_sleepers_[s].push_back({u.seq, 0});
          sleeper_gen_[s] = e.pop_queue->stats().pushes;
          ++sleeping_;
        } else {
          active_[keep++] = u;
          rescan = now + 1;
        }
        continue;
      }
    }

    // Source gate; on a block, pin until the producers' fixed completion
    // times (an unissued producer issues at now + 1 at the earliest and
    // every latency is >= 1, hence now + 2).
    std::uint64_t src_bound = 0;
    for (const auto seq : e.src_seq) {
      if (seq == 0) continue;
      const Entry* prod = find_by_seq(seq);
      if (prod == nullptr) continue;  // committed: value architectural
      if (!prod->issued) {
        // The producer issues no earlier than now + 1 (or its own proven
        // pin bound) and completes no earlier than its minimum latency
        // after that: fixed so.latency for ALU ops, 1 for memory ops
        // (forwarded loads and stores complete next cycle).
        const std::uint64_t min_lat =
            (prod->so.is_load || prod->so.is_store || prod->so.is_prefetch)
                ? 1
                : static_cast<std::uint64_t>(
                      std::max<std::int16_t>(1, prod->so.latency));
        src_bound = std::max(src_bound,
                             std::max(now + 1, prod->pin_until) + min_lat);
      } else if (prod->complete_cycle > now) {
        src_bound = std::max(src_bound, prod->complete_cycle);
      }
    }
    if (src_bound > now) {
      u.until = src_bound;
      pin(u, e);
      continue;
    }

    if (e.pop_queue != nullptr) {
      const auto* front = e.pop_queue->front_ready(now);
      if (front == nullptr) {
        ps->order_blocked = true;
        if (u.seq == head_seq) {
          ++stats_.head_pop_empty_stalls;
          e.pop_queue->note_empty_stall();
          // Waiting on the SDQ means the access side is blocked on a
          // computation-side value: the paper's loss-of-decoupling event.
          if (e.pop_queue == queues_.sdq) ++stats_.lod_stalls;
          if (e.pop_queue->head() == nullptr) {
            // Truly empty: park the head; the per-pass charge at the top
            // of do_issue replaces this visit's charge until a push.
            head_sleep_seq_ = u.seq;
            head_sleep_slot_ = queue_slot(e.pop_queue);
            sleeper_gen_[head_sleep_slot_] = e.pop_queue->stats().pushes;
            ++sleeping_;
          } else {
            active_[keep++] = u;  // token in flight: recheck every cycle
            rescan = now + 1;
          }
        } else if (const auto* h = e.pop_queue->head();
                   h != nullptr && h->ready > now) {
          // Non-head consumer waiting on a token already in flight: no
          // token readies before the head token (FIFO push order makes
          // ready times monotone), and a blocked non-head visit's only
          // side effect — order_blocked — is re-derived by any younger
          // same-queue consumer from the same not-ready head.
          u.until = h->ready;
          pin(u, e);
        } else {
          // Truly empty queue: sleep until it sees a push.
          const int s = queue_slot(e.pop_queue);
          queue_sleepers_[s].push_back({u.seq, 0});
          sleeper_gen_[s] = e.pop_queue->stats().pushes;
          ++sleeping_;
        }
        continue;
      }
      ++ps->pops;
    }

    // Memory disambiguation: a load may not pass an older overlapping
    // store that has not yet written (8-byte granularity; addresses are
    // exact, from the trace).
    if (e.so.is_load && cfg_.has_lsu && !e.no_conflict) {
      const auto d = check_older_stores(store_line(e.op.addr), e.seq, now);
      if (d.wait) {
        // Safe to pin only for entries with no pop role (real loads never
        // have one): a popping entry's visit consumes per-cycle queue-read
        // budget even when it ends blocked, which a skip would not replay.
        if (e.pop_queue == nullptr) {
          u.until = d.until;
          pin(u, e);
        } else {
          active_[keep++] = u;
          rescan = now + 1;
        }
        continue;
      }
      e.forwarded = d.forward;
    }

    // Fire-and-forget prefetch loads draw from a finite prefetch buffer;
    // a full buffer frees no slot before its earliest in-flight fill
    // lands (CMP entries carry no queue roles, so the pin is
    // side-effect-free).
    if (e.so.is_load && cfg_.prefetch_only && !e.so.value_live) {
      prune_prefetch_fills(now);
      if (prefetch_fills_.size() >=
          static_cast<std::size_t>(cfg_.prefetch_buffer)) {
        if (e.pop_queue == nullptr && !prefetch_fills_.empty()) {
          u.until = prefetch_fills_.front();
          pin(u, e);
        } else {
          active_[keep++] = u;
          rescan = now + 1;
        }
        continue;
      }
    }

    // Functional unit / memory port availability.  An exhausted pool
    // frees no unit before its earliest release, and a failed-acquire
    // visit has no side effects — unless the entry popped a token of
    // per-cycle queue-read budget above, which a pinned skip would not
    // replay; those stay active.
    FuPool* pool = pool_ptr(e.so.pool);
    if (e.forwarded) pool = nullptr;  // store-to-load forward: no cache port
    if (pool != nullptr && !pool->acquire(now, e.so.busy)) {
      const auto release = pool->next_release(now);
      pool_until[static_cast<std::size_t>(e.so.pool)] =
          release != kNoEvent ? release : now + 1;
      if (e.pop_queue == nullptr && release != kNoEvent) {
        u.until = release;
        pin(u, e);
      } else {
        active_[keep++] = u;
        rescan = now + 1;
      }
      continue;
    }

    issue_one(e, now);
    ++issued;
  }
  // Entries past the issue-width cutoff stay queued untouched (and must
  // be revisited next cycle).
  if (i < active_.size()) {
    rescan = now + 1;
    std::copy(active_.begin() + static_cast<std::ptrdiff_t>(i),
              active_.end(),
              active_.begin() + static_cast<std::ptrdiff_t>(keep));
    keep += active_.size() - i;
  }
  active_.resize(keep);
  active_rescan_ = rescan;

  // Advance the oldest-unissued cursor past entries that issued this
  // pass.  A new head gets its pin cleared immediately: its
  // blocked-on-queue wait must charge stall counters every cycle from
  // now on, which a pinned skip would silently swallow.  (Clearing a
  // source/FU/store pin on the head too is harmless — its next visit
  // just re-pins it.)
  if (oldest_unissued_ != 0 &&
      find_by_seq(oldest_unissued_)->issued) {
    auto idx = oldest_unissued_ - base_seq_;
    while (idx < window_count_ && window_at(idx).issued) ++idx;
    oldest_unissued_ = idx < window_count_ ? base_seq_ + idx : 0;
    if (oldest_unissued_ != 0) {
      // The head is the globally oldest unissued entry, so if active it
      // is the front element.
      if (!active_.empty() && active_.front().seq == oldest_unissued_) {
        active_.front().until = 0;
        active_rescan_ = 0;
      } else {
        bool found = false;
        for (std::size_t p = 0; p < pinned_.size(); ++p) {
          if (pinned_[p].seq != oldest_unissued_) continue;
          Unissued head = pinned_[p];
          head.until = 0;
          pinned_[p] = pinned_.back();
          pinned_.pop_back();
          std::make_heap(pinned_.begin(), pinned_.end(), until_after);
          active_.insert(active_.begin(), head);
          active_rescan_ = 0;
          found = true;
          break;
        }
        for (int s = 0; s < 3 && !found; ++s) {
          auto& sl = queue_sleepers_[s];
          for (std::size_t p = 0; p < sl.size(); ++p) {
            if (sl[p].seq != oldest_unissued_) continue;
            sl.erase(sl.begin() + static_cast<std::ptrdiff_t>(p));
            // Was asleep as a non-head on an empty queue; as the head it
            // keeps sleeping but gets the per-pass stall charge.  This
            // matches the reference walk, which starts charging the new
            // head on the pass after the old head issued.
            head_sleep_seq_ = oldest_unissued_;
            head_sleep_slot_ = s;
            found = true;
            break;
          }
        }
      }
    }
  }
}

void OoOCore::issue_one(Entry& e, std::uint64_t now) {
  if (e.pop_queue != nullptr) {
    if (e.so.is_beod) {
      // BEOD only consumes the head token when it is an EOD marker; a data
      // value stays queued for the next POPLDQ (paper §3.1).
      const auto* front = e.pop_queue->front_ready(now);
      if (front != nullptr && front->eod) e.pop_queue->pop();
    } else {
      e.pop_queue->pop();
    }
  }

  if (e.so.is_load) {
    ++stats_.loads;
    if (e.forwarded) {
      ++stats_.forwarded_loads;
      e.complete_cycle = now + 1;
    } else {
      const auto type = cfg_.prefetch_only ? mem::AccessType::Prefetch
                                           : mem::AccessType::Read;
      const auto group =
          cfg_.prefetch_only ? e.so.cmas_group : std::int16_t{-1};
      const auto res =
          memsys_->access(e.op.addr, type, now, e.op.static_idx, group);
      if (cfg_.prefetch_only && !e.so.value_live) {
        // Fire-and-forget prefetch: nothing in the slice reads this value
        // (compiler-proven), so the CMP retires it immediately while the
        // fill completes in the background.  Pointer-chase slices, whose
        // loads feed later slice instructions, keep the full latency.
        e.complete_cycle = now + 1;
        push_heap_value(prefetch_fills_,
                        now + static_cast<std::uint64_t>(
                                  std::max(1, res.latency)));
      } else {
        e.complete_cycle = now + static_cast<std::uint64_t>(
                                     std::max(1, res.latency));
      }
    }
  } else if (e.so.is_store) {
    ++stats_.stores;
    // Stores drain into the write buffer; the cache access happens now.
    memsys_->access(e.op.addr, mem::AccessType::Write, now, e.op.static_idx);
    e.complete_cycle = now + 1;
  } else if (e.so.is_prefetch) {
    memsys_->access(e.op.addr, mem::AccessType::Prefetch, now,
                    e.op.static_idx);
    e.complete_cycle = now + 1;
  } else {
    e.complete_cycle = now + static_cast<std::uint64_t>(e.so.latency);
  }

  e.issued = true;
  push_heap_value(completion_events_, e.complete_cycle);
  next_completion_ = std::min(next_completion_, e.complete_cycle);
  progress_ = true;

  if (e.op.mispredicted)
    resolved_.push_back({e.op.trace_pos, e.complete_cycle});
}

void OoOCore::do_dispatch(std::uint64_t now) {
  (void)now;
  int dispatched = 0;
  while (input_count_ != 0 && dispatched < cfg_.dispatch_width) {
    if (window_count_ >= static_cast<std::size_t>(cfg_.window)) {
      ++stats_.window_full_stalls;
      break;
    }
    const DynOp& op = input_front();
    StaticOp scratch;
    const StaticOp& so =
        table_ != nullptr ? (*table_)[op.static_idx]
                          : (scratch = decode_static_op(*op.inst), scratch);

    if (so.is_mem && !cfg_.has_lsu)
      throw std::logic_error(cfg_.name +
                             ": memory op routed to core without LSU");
    if (so.is_store && cfg_.prefetch_only)
      throw std::logic_error(cfg_.name + ": store in a CMAS slice");
    if (so.fp_routed && cfg_.fp_alu == 0)
      throw std::logic_error(cfg_.name + ": FP op routed to non-FP core");
    if ((so.is_load || so.is_store) && mem_ops_in_window_ >= cfg_.lsq) {
      ++stats_.lsq_full_stalls;
      break;
    }

    // Every field is written explicitly (no Entry{} reset): the slot is
    // reused ring memory, and a full-struct clear followed by the so/op
    // copies would double-write most of it on the per-instruction path.
    Entry& e = slots_[(window_head_ + window_count_) & window_mask_];
    e.so = so;
    e.op = op;
    e.seq = next_seq_++;
    e.complete_cycle = 0;
    e.pop_queue = nullptr;
    e.push_queue = nullptr;
    e.push_eod = false;
    e.pushed = false;
    e.issued = false;
    e.forwarded = false;
    e.pin_until = 0;
    e.no_conflict = so.is_load && cfg_.has_lsu &&
                    (stores_by_line_.empty() ||
                     !stores_by_line_.contains(store_line(op.addr)));

    // Register dependences.
    e.src_seq[0] = e.src_seq[1] = 0;
    int nsrc = 0;
    if (so.src1 >= 0) e.src_seq[nsrc++] = last_writer_[so.src1];
    if (so.src2 >= 0) e.src_seq[nsrc++] = last_writer_[so.src2];

    // Queue roles.  A prefetch-only core (the CMP) executes copies of
    // Access Stream instructions speculatively; it must never touch the
    // architectural queues, so all queue roles are ignored there.
    if (!cfg_.prefetch_only) {
      if (so.pop_role != QueueRole::None) {
        e.pop_queue = queue_ptr(so.pop_role);
        if (e.pop_queue == nullptr)
          throw std::logic_error(cfg_.name +
                                 ": queue pop with no queue bound");
      }
      if (so.push_role != QueueRole::None) {
        e.push_queue = queue_ptr(so.push_role);
        e.push_eod = so.push_eod;
        // An opcode-driven push with no bound queue degrades to a plain
        // op (bare-core tests); a compiler-annotated push losing its
        // queue would silently drop a communication — fail loudly.
        if (e.push_queue == nullptr && so.push_from_ann)
          throw std::logic_error(cfg_.name +
                                 ": queue push with no queue bound");
      }
    }

    // Rename: this entry becomes the live writer of its destination.
    if (so.dst >= 0) last_writer_[so.dst] = e.seq;

    if (so.is_load || so.is_store) ++mem_ops_in_window_;
    if (so.is_store)
      stores_by_line_[store_line(op.addr)].push_back(e.seq);
    if (e.push_queue != nullptr)
      pending_push_[queue_slot(e.push_queue)].push_back(e.seq);
    active_.push_back({e.seq, 0});
    active_rescan_ = 0;
    if (oldest_unissued_ == 0) oldest_unissued_ = e.seq;
    ++window_count_;
    input_pop();
    ++dispatched;
    progress_ = true;
  }
}

// Brute-force recomputation of every incremental frontier; throws on any
// disagreement with the maintained state.  Deliberately written as the
// seed's full-window scans so the two derivations stay independent.
void OoOCore::debug_check_invariants(std::uint64_t now) const {
  const auto fail = [this](const std::string& what) {
    throw std::logic_error(cfg_.name + ": invariant violated: " + what);
  };

  // Completion frontier: pruned heap top == min future completion.
  std::uint64_t want_min = kNoEvent;
  for (std::size_t i = 0; i < window_count_; ++i) {
    const Entry& e = window_at(i);
    if (e.issued && e.complete_cycle > now && e.complete_cycle < want_min)
      want_min = e.complete_cycle;
  }
  // Emulate a query: a cached value <= now is stale and resolves through
  // a prune; a future cached value must BE the frontier.
  std::uint64_t got_min = next_completion_;
  if (got_min != kNoEvent && got_min <= now) {
    prune_heap(completion_events_, now);
    got_min =
        completion_events_.empty() ? kNoEvent : completion_events_.front();
  }
  if (want_min != got_min) fail("completion frontier mismatch");
  if (!std::is_heap(completion_events_.begin(), completion_events_.end(),
                    std::greater<>{}))
    fail("completion events not a min-heap");

  // Unissued population: active_ (ascending) plus pinned_ must be exactly
  // the unissued window entries; the oldest-unissued cursor must point at
  // the first of them.
  std::vector<std::uint64_t> want_unissued;
  for (std::size_t i = 0; i < window_count_; ++i)
    if (!window_at(i).issued) want_unissued.push_back(window_at(i).seq);
  std::vector<std::uint64_t> got_unissued;
  for (const auto& u : active_) got_unissued.push_back(u.seq);
  if (!std::is_sorted(got_unissued.begin(), got_unissued.end()))
    fail("active list out of program order");
  for (const auto& u : pinned_) got_unissued.push_back(u.seq);
  std::size_t want_sleeping = head_sleep_seq_ != 0 ? 1 : 0;
  for (const auto& sl : queue_sleepers_) {
    want_sleeping += sl.size();
    for (const auto& u : sl) got_unissued.push_back(u.seq);
  }
  if (head_sleep_seq_ != 0) got_unissued.push_back(head_sleep_seq_);
  if (want_sleeping != sleeping_) fail("sleeper census mismatch");
  std::sort(got_unissued.begin(), got_unissued.end());
  if (want_unissued != got_unissued) fail("unissued population mismatch");
  if (oldest_unissued_ !=
      (want_unissued.empty() ? 0 : want_unissued.front()))
    fail("oldest-unissued cursor mismatch");
  const auto until_after = [](const Unissued& a, const Unissued& b) {
    return a.until > b.until;
  };
  if (!std::is_heap(pinned_.begin(), pinned_.end(), until_after))
    fail("pinned entries not a min-heap by until");

  // Every pin must be justified: the entry provably cannot issue at
  // until - 1 for one of the reasons do_issue pins on, and the reason
  // must be one whose skipped visits are side-effect-free for this
  // entry.  Active entries carry short pins (skipped by compare), the
  // heap carries long ones; the justification is the same.
  std::vector<Unissued> all_pins;
  for (const auto& u : active_)
    if (u.until > now) all_pins.push_back(u);
  for (const auto& u : pinned_) {
    if (u.until <= now) fail("expired pin not merged");
    all_pins.push_back(u);
  }
  for (const auto& u : all_pins) {
    const Entry& e = *find_by_seq(u.seq);
    const std::uint64_t at = u.until - 1;
    const bool src_block = !sources_ready(e, at);
    const bool queue_block = e.pop_queue != nullptr &&
                             u.seq != oldest_unissued_ &&
                             e.pop_queue->front_ready(at) == nullptr &&
                             !e.pop_queue->empty();
    if (e.pop_queue != nullptr && !src_block && !queue_block)
      fail("pinned pop entry without silent justification");
    const bool dis_block =
        e.so.is_load && cfg_.has_lsu && e.pop_queue == nullptr &&
        check_older_stores(store_line(e.op.addr), e.seq, at).wait;
    const bool pf_block = [&] {
      if (!e.so.is_load || !cfg_.prefetch_only || e.so.value_live)
        return false;
      std::size_t held = 0;
      for (const auto fill : prefetch_fills_)
        if (fill > at) ++held;
      return held >= static_cast<std::size_t>(cfg_.prefetch_buffer);
    }();
    const FuPool* pool = pool_ptr(e.so.pool);
    const bool fu_block = e.pop_queue == nullptr && pool != nullptr &&
                          pool->exhausted_at(at);
    if (!src_block && !queue_block && !dis_block && !pf_block && !fu_block)
      fail("pin unjustified");
  }

  // Sleepers must be pop entries of the queue they sleep on, and while
  // the queue's push generation is unchanged it must hold no token at
  // all (no push happened, pops cannot create tokens).  The sleeping
  // head must be the program-order head with its sources ready —
  // completion times only recede, so the readiness its parking visit
  // proved still holds and the per-pass charge stays exact.
  for (int s = 0; s < 3; ++s) {
    const TimedFifo* fq = queue_from_slot(s);
    const bool head_here = head_sleep_seq_ != 0 && head_sleep_slot_ == s;
    if (queue_sleepers_[s].empty() && !head_here) continue;
    if (fq == nullptr) fail("sleeper on an unbound queue");
    if (fq->stats().pushes == sleeper_gen_[s] && fq->head() != nullptr)
      fail("sleeper on a queue that holds a token");
    for (const auto& u : queue_sleepers_[s]) {
      const Entry* e = find_by_seq(u.seq);
      if (e == nullptr || e->pop_queue != fq)
        fail("sleeper is not a pop of its queue");
      if (u.seq == oldest_unissued_)
        fail("program-order head parked as a plain sleeper");
    }
  }
  if (head_sleep_seq_ != 0) {
    if (head_sleep_seq_ != oldest_unissued_)
      fail("sleeping head is not the oldest unissued entry");
    const Entry* e = find_by_seq(head_sleep_seq_);
    if (e == nullptr ||
        e->pop_queue != queue_from_slot(head_sleep_slot_))
      fail("sleeping head is not a pop of its queue");
    if (!sources_ready(*e, now)) fail("sleeping head with unready sources");
  }

  // Per-queue pending-push cursors.
  std::deque<std::uint64_t> want_pend[3];
  for (std::size_t i = 0; i < window_count_; ++i) {
    const Entry& e = window_at(i);
    if (e.push_queue != nullptr && !e.pushed)
      want_pend[queue_slot(e.push_queue)].push_back(e.seq);
  }
  for (int s = 0; s < 3; ++s)
    if (want_pend[s] != pending_push_[s]) fail("pending-push cursor mismatch");

  // Store disambiguation map: per line, the in-window stores, ascending.
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> want_stores;
  for (std::size_t i = 0; i < window_count_; ++i) {
    const Entry& e = window_at(i);
    if (e.so.is_store) want_stores[store_line(e.op.addr)].push_back(e.seq);
  }
  if (want_stores != stores_by_line_) fail("store map mismatch");

  // no_conflict is a lifetime promise: such a load must never have an
  // older in-window store on its line (so it can never wait or forward).
  for (std::size_t i = 0; i < window_count_; ++i) {
    const Entry& e = window_at(i);
    if (!e.no_conflict || !e.so.is_load) continue;
    const auto it = want_stores.find(store_line(e.op.addr));
    if (it != want_stores.end() && it->second.front() < e.seq)
      fail("no_conflict load has an older same-line store");
  }

  // Memory-op census.
  int want_mem = 0;
  for (std::size_t i = 0; i < window_count_; ++i)
    if (window_at(i).so.is_load || window_at(i).so.is_store) ++want_mem;
  if (want_mem != mem_ops_in_window_) fail("mem-op census mismatch");

  // Prefetch-fill heap shape (occupancy is bounded by construction).
  if (!std::is_heap(prefetch_fills_.begin(), prefetch_fills_.end(),
                    std::greater<>{}))
    fail("prefetch fills not a min-heap");

  // The shared memory system's fill frontier (covers hardware-prefetcher
  // fills too); no-op when event tracking is off.
  if (memsys_ != nullptr) memsys_->debug_check_invariants(now);
}

}  // namespace hidisc::uarch
