#include "uarch/core.hpp"

#include <algorithm>
#include <stdexcept>

namespace hidisc::uarch {

using isa::OpClass;
using isa::Opcode;

OoOCore::OoOCore(const CoreConfig& cfg, mem::MemorySystem* memsys,
                 Queues queues)
    : cfg_(cfg),
      memsys_(memsys),
      queues_(queues),
      last_writer_(isa::kNumArchRegs, 0),
      int_alu_(cfg.int_alu),
      int_muldiv_(cfg.int_muldiv),
      fp_alu_(cfg.fp_alu),
      fp_muldiv_(cfg.fp_muldiv),
      mem_ports_(cfg.mem_ports) {
  if (cfg.window <= 0 || cfg.issue_width <= 0 || cfg.commit_width <= 0)
    throw std::invalid_argument(cfg.name + ": non-positive core geometry");
}

void OoOCore::reset() {
  input_.clear();
  window_.clear();
  next_seq_ = base_seq_ = 1;
  mem_ops_in_window_ = 0;
  std::fill(last_writer_.begin(), last_writer_.end(), 0);
  int_alu_.reset();
  int_muldiv_.reset();
  fp_alu_.reset();
  fp_muldiv_.reset();
  mem_ports_.reset();
  prefetch_fills_.clear();
  stats_ = CoreStats{};
  resolved_.clear();
}

bool OoOCore::enqueue(const DynOp& op) {
  if (input_full()) return false;
  input_.push_back(op);
  return true;
}

std::vector<ResolvedBranch> OoOCore::take_resolved_branches() {
  auto out = std::move(resolved_);
  resolved_.clear();
  return out;
}

const OoOCore::Entry* OoOCore::find_by_seq(std::uint64_t seq) const {
  if (seq < base_seq_) return nullptr;  // already committed
  const auto idx = seq - base_seq_;
  if (idx >= window_.size()) return nullptr;
  return &window_[idx];
}

bool OoOCore::sources_ready(const Entry& e, std::uint64_t now) const {
  for (const auto seq : e.src_seq) {
    if (seq == 0) continue;
    const Entry* p = find_by_seq(seq);
    if (p == nullptr) continue;  // producer committed: value architectural
    if (!completed(*p, now)) return false;
  }
  return true;
}

FuPool* OoOCore::pool_for(OpClass cls) {
  switch (cls) {
    case OpClass::IntAlu:
    case OpClass::Branch:
    case OpClass::Jump:
      return &int_alu_;
    case OpClass::IntMul:
    case OpClass::IntDiv:
      return &int_muldiv_;
    case OpClass::FpAlu:
      return &fp_alu_;
    case OpClass::FpMul:
    case OpClass::FpDiv:
      return &fp_muldiv_;
    case OpClass::Load:
    case OpClass::Store:
    case OpClass::Prefetch:
      return &mem_ports_;
    case OpClass::Queue:
    case OpClass::Halt:
    case OpClass::Nop:
      return nullptr;
  }
  return nullptr;
}

bool OoOCore::tick(std::uint64_t now) {
  if (!window_.empty() || !input_.empty()) ++stats_.busy_cycles;
  progress_ = false;
  do_commit(now);
  do_pushes(now);
  do_issue(now);
  do_dispatch(now);
  return progress_;
}

std::uint64_t OoOCore::next_event_cycle(std::uint64_t now) const {
  std::uint64_t ev = kNoEvent;
  // Issued-but-incomplete entries cover every time-threshold their
  // completion gates: commit of the head, queue writes draining, consumers'
  // sources_ready, and load/store disambiguation waits.
  for (const auto& e : window_)
    if (e.issued && e.complete_cycle > now && e.complete_cycle < ev)
      ev = e.complete_cycle;
  for (const FuPool* pool :
       {&int_alu_, &int_muldiv_, &fp_alu_, &fp_muldiv_, &mem_ports_})
    ev = std::min(ev, pool->next_release(now));
  // A full prefetch buffer frees a slot when its earliest fill lands.
  for (const auto t : prefetch_fills_)
    if (t > now && t < ev) ev = t;
  return ev;
}

// Mirrors exactly the per-cycle stall counters tick() accrues in a cycle
// where nothing can change: busy time, dispatch blocked on a full window,
// commit blocked on an undrained queue write, the per-queue full-stall
// note of do_pushes, and the oldest-op empty-queue stalls of do_issue.
// Any drift here is caught by the HIDISC_LOCKSTEP verification path.
void OoOCore::account_idle_cycles(std::uint64_t now, std::uint64_t delta) {
  if (delta == 0) return;
  if (window_.empty() && input_.empty()) return;  // quiescent: nothing accrues
  stats_.busy_cycles += delta;

  if (!input_.empty() &&
      window_.size() >= static_cast<std::size_t>(cfg_.window))
    stats_.window_full_stalls += delta;

  if (!window_.empty()) {
    const Entry& head = window_.front();
    if (completed(head, now) && head.push_queue != nullptr && !head.pushed)
      stats_.queue_full_commit_stalls += delta;
  }

  // do_pushes: one full-stall note per queue per cycle, charged when the
  // oldest un-pushed write for that queue is completed but the queue is
  // full.  (An older incomplete write blocks younger ones silently.)
  bool ldq_blocked = false, sdq_blocked = false, scq_blocked = false;
  for (const auto& e : window_) {
    if (e.push_queue == nullptr) continue;
    bool* blocked = e.push_queue == queues_.ldq   ? &ldq_blocked
                    : e.push_queue == queues_.sdq ? &sdq_blocked
                                                  : &scq_blocked;
    if (*blocked) continue;
    if (e.pushed) continue;
    if (completed(e, now) && e.push_queue->full())
      e.push_queue->note_full_stalls(delta);
    *blocked = true;
  }

  // do_issue: the oldest un-issued op, when ready but waiting on an empty
  // (or not-yet-ready) architectural queue, counts a head stall per cycle.
  for (const auto& e : window_) {
    if (e.issued) continue;
    if (sources_ready(e, now) && e.needs_pop &&
        e.pop_queue->front_ready(now) == nullptr) {
      stats_.head_pop_empty_stalls += delta;
      e.pop_queue->note_empty_stalls(delta);
      if (e.pop_queue == queues_.sdq) stats_.lod_stalls += delta;
    }
    break;
  }
}

OoOCore::StallProbe OoOCore::probe_oldest_stall(std::uint64_t now) const {
  StallProbe p;
  if (window_.empty()) {
    if (input_.empty()) return p;  // drained
    const DynOp& op = input_.front();
    p.valid = true;
    p.why = diag::StallWhy::Dispatch;
    p.op = std::string(op.inst->info().name);
    p.static_idx = op.static_idx;
    p.trace_pos = op.trace_pos;
    return p;
  }

  const Entry& head = window_.front();
  p.valid = true;
  p.op = std::string(head.op.inst->info().name);
  p.static_idx = head.op.static_idx;
  p.trace_pos = head.op.trace_pos;

  if (completed(head, now)) {
    // do_commit's only gate: an undrained queue write.
    if (head.push_queue != nullptr && !head.pushed) {
      p.why = diag::StallWhy::PushFull;
      p.queue = head.push_queue;
    }
    return p;
  }
  if (head.issued) {
    p.why = diag::StallWhy::InFlight;
    return p;
  }

  // Un-issued head: do_issue's gates, in order.  The head has no older
  // in-window producers, but keep the check for completeness.
  if (!sources_ready(head, now)) {
    p.why = diag::StallWhy::Sources;
    return p;
  }
  if (head.needs_pop) {
    p.queue = head.pop_queue;
    if (head.pop_queue->front_ready(now) == nullptr) {
      p.why = head.pop_queue->empty() ? diag::StallWhy::PopEmpty
                                      : diag::StallWhy::PopNotReady;
      return p;
    }
  }
  if (head.is_load && cfg_.prefetch_only &&
      !head.op.inst->ann.cmas_value_live &&
      prefetch_fills_.size() >=
          static_cast<std::size_t>(cfg_.prefetch_buffer)) {
    p.why = diag::StallWhy::FuBusy;
    return p;
  }
  // Sources and queues cleared: a functional unit / memory port is the
  // remaining gate.
  p.why = diag::StallWhy::FuBusy;
  return p;
}

// Queue writes drain at completion (writeback), in program order per queue
// — the decoupled machines' whole point is that the consumer sees a value
// as soon as it is produced, not when it retires.  An entry that has not
// managed its write (queue full) blocks commit.
void OoOCore::do_pushes(std::uint64_t now) {
  bool ldq_blocked = false, sdq_blocked = false, scq_blocked = false;
  for (auto& e : window_) {
    if (e.push_queue == nullptr) continue;
    bool* blocked = e.push_queue == queues_.ldq   ? &ldq_blocked
                    : e.push_queue == queues_.sdq ? &sdq_blocked
                                                  : &scq_blocked;
    if (*blocked) continue;
    if (e.pushed) continue;
    if (!completed(e, now)) {  // younger writes to this queue must wait
      *blocked = true;
      continue;
    }
    TimedFifo::Entry qe;
    // Value travels one cycle through the queue interconnect.
    qe.ready = now + 1;
    qe.producer_pos = e.op.trace_pos;
    qe.eod = e.push_eod;
    if (!e.push_queue->push(qe)) {
      e.push_queue->note_full_stall();
      *blocked = true;
      continue;
    }
    e.pushed = true;
    progress_ = true;
  }
}

void OoOCore::do_commit(std::uint64_t now) {
  int committed = 0;
  while (!window_.empty() && committed < cfg_.commit_width) {
    Entry& head = window_.front();
    if (!completed(head, now)) break;
    if (head.push_queue != nullptr && !head.pushed) {
      ++stats_.queue_full_commit_stalls;
      break;  // the queue write has not drained yet
    }
    if (head.is_load || head.is_store) --mem_ops_in_window_;
    if (head.op.count_commit) ++stats_.committed;
    ++stats_.committed_all;
    window_.pop_front();
    ++base_seq_;
    ++committed;
    progress_ = true;
  }
}

void OoOCore::do_issue(std::uint64_t now) {
  int issued = 0;
  // Per-queue pop state for this cycle: pops must drain in program order
  // (an older blocked pop blocks younger ones) and respect the per-cycle
  // queue read bandwidth.
  struct PopState {
    bool order_blocked = false;
    int pops = 0;
  };
  PopState ldq_state, sdq_state, scq_state;
  bool saw_unissued = false;
  for (auto& e : window_) {
    if (issued >= cfg_.issue_width) break;
    if (e.issued) continue;
    const bool is_head = !saw_unissued;
    saw_unissued = true;

    if (!sources_ready(e, now)) continue;

    if (e.needs_pop) {
      PopState& ps = e.pop_queue == queues_.ldq   ? ldq_state
                     : e.pop_queue == queues_.sdq ? sdq_state
                                                  : scq_state;
      if (ps.order_blocked || ps.pops >= cfg_.queue_pops_per_cycle) continue;
      const auto* front = e.pop_queue->front_ready(now);
      if (front == nullptr) {
        ps.order_blocked = true;
        if (is_head) {
          ++stats_.head_pop_empty_stalls;
          e.pop_queue->note_empty_stall();
          // Waiting on the SDQ means the access side is blocked on a
          // computation-side value: the paper's loss-of-decoupling event.
          if (e.pop_queue == queues_.sdq) ++stats_.lod_stalls;
        }
        continue;
      }
      ++ps.pops;
    }

    // Memory disambiguation: a load may not pass an older overlapping
    // store that has not yet written (8-byte granularity; addresses are
    // exact, from the trace).
    if (e.is_load && cfg_.has_lsu) {
      bool wait = false;
      bool forward = false;
      for (const auto& older : window_) {
        if (older.seq >= e.seq) break;
        if (!older.is_store) continue;
        const auto a0 = older.op.addr & ~7ull;
        const auto a1 = e.op.addr & ~7ull;
        if (a0 != a1) continue;
        if (!completed(older, now)) {
          wait = true;
          break;
        }
        forward = true;  // most recent older overlapping store wins
      }
      if (wait) continue;
      e.forwarded = forward;
    }

    // Fire-and-forget prefetch loads draw from a finite prefetch buffer.
    if (e.is_load && cfg_.prefetch_only &&
        !e.op.inst->ann.cmas_value_live) {
      std::erase_if(prefetch_fills_,
                    [now](std::uint64_t t) { return t <= now; });
      if (prefetch_fills_.size() >=
          static_cast<std::size_t>(cfg_.prefetch_buffer))
        continue;
    }

    // Functional unit / memory port availability.
    const OpClass cls = e.op.inst->info().cls;
    FuPool* pool = pool_for(cls);
    if (e.forwarded) pool = nullptr;  // store-to-load forward: no cache port
    if (pool != nullptr) {
      const bool unpipelined =
          cls == OpClass::IntDiv || cls == OpClass::FpDiv;
      const int busy = unpipelined ? e.op.inst->info().latency : 1;
      if (!pool->acquire(now, busy)) continue;
    }

    issue_one(e, now);
    ++issued;
  }
}

void OoOCore::issue_one(Entry& e, std::uint64_t now) {
  const isa::Instruction& inst = *e.op.inst;
  const OpClass cls = inst.info().cls;

  if (e.needs_pop) {
    if (inst.op == Opcode::BEOD) {
      // BEOD only consumes the head token when it is an EOD marker; a data
      // value stays queued for the next POPLDQ (paper §3.1).
      const auto* front = e.pop_queue->front_ready(now);
      if (front != nullptr && front->eod) e.pop_queue->pop();
    } else {
      e.pop_queue->pop();
    }
  }

  if (e.is_load) {
    ++stats_.loads;
    if (e.forwarded) {
      ++stats_.forwarded_loads;
      e.complete_cycle = now + 1;
    } else {
      const auto type = cfg_.prefetch_only ? mem::AccessType::Prefetch
                                           : mem::AccessType::Read;
      const auto group = cfg_.prefetch_only ? inst.ann.cmas_group
                                            : std::int16_t{-1};
      const auto res =
          memsys_->access(e.op.addr, type, now, e.op.static_idx, group);
      if (cfg_.prefetch_only && !inst.ann.cmas_value_live) {
        // Fire-and-forget prefetch: nothing in the slice reads this value
        // (compiler-proven), so the CMP retires it immediately while the
        // fill completes in the background.  Pointer-chase slices, whose
        // loads feed later slice instructions, keep the full latency.
        e.complete_cycle = now + 1;
        prefetch_fills_.push_back(
            now + static_cast<std::uint64_t>(std::max(1, res.latency)));
      } else {
        e.complete_cycle = now + static_cast<std::uint64_t>(
                                     std::max(1, res.latency));
      }
    }
  } else if (e.is_store) {
    ++stats_.stores;
    // Stores drain into the write buffer; the cache access happens now.
    memsys_->access(e.op.addr, mem::AccessType::Write, now, e.op.static_idx);
    e.complete_cycle = now + 1;
  } else if (cls == OpClass::Prefetch) {
    memsys_->access(e.op.addr, mem::AccessType::Prefetch, now,
                    e.op.static_idx);
    e.complete_cycle = now + 1;
  } else {
    e.complete_cycle = now + static_cast<std::uint64_t>(inst.info().latency);
  }

  e.issued = true;
  progress_ = true;

  if (e.op.mispredicted)
    resolved_.push_back({e.op.trace_pos, e.complete_cycle});
}

void OoOCore::do_dispatch(std::uint64_t now) {
  (void)now;
  int dispatched = 0;
  while (!input_.empty() && dispatched < cfg_.dispatch_width) {
    if (window_.size() >= static_cast<std::size_t>(cfg_.window)) {
      ++stats_.window_full_stalls;
      break;
    }
    const DynOp& op = input_.front();
    const isa::Instruction& inst = *op.inst;
    const isa::OpInfo& info = inst.info();
    const OpClass cls = info.cls;

    const bool is_load = cls == OpClass::Load;
    const bool is_store = cls == OpClass::Store;
    if ((is_load || is_store || cls == OpClass::Prefetch) && !cfg_.has_lsu)
      throw std::logic_error(cfg_.name +
                             ": memory op routed to core without LSU");
    if (is_store && cfg_.prefetch_only)
      throw std::logic_error(cfg_.name + ": store in a CMAS slice");
    if ((info.is_fp_dst || info.is_fp_src) && cfg_.fp_alu == 0 &&
        isa::is_fp_compute(inst.op))
      throw std::logic_error(cfg_.name + ": FP op routed to non-FP core");
    if ((is_load || is_store) && mem_ops_in_window_ >= cfg_.lsq) break;

    Entry e;
    e.op = op;
    e.seq = next_seq_++;
    e.is_load = is_load;
    e.is_store = is_store;

    // Register dependences.
    int nsrc = 0;
    if (info.reads_src1 && inst.src1.valid())
      e.src_seq[nsrc++] = last_writer_[inst.src1.flat()];
    if (info.reads_src2 && inst.src2.valid())
      e.src_seq[nsrc++] = last_writer_[inst.src2.flat()];

    // Queue roles.  A prefetch-only core (the CMP) executes copies of
    // Access Stream instructions speculatively; it must never touch the
    // architectural queues, so all queue roles are ignored there.
    if (!cfg_.prefetch_only) queue_roles(inst, e);

    // Rename: this entry becomes the live writer of its destination.
    if (info.writes_dst && inst.dst.valid() &&
        !(inst.dst.is_int() && inst.dst.idx == 0))
      last_writer_[inst.dst.flat()] = e.seq;

    if (is_load || is_store) ++mem_ops_in_window_;
    window_.push_back(e);
    input_.pop_front();
    ++dispatched;
    progress_ = true;
  }
}

void OoOCore::queue_roles(const isa::Instruction& inst, Entry& e) {
    switch (inst.op) {
      case Opcode::POPLDQ: case Opcode::POPLDQF: case Opcode::BEOD:
        e.needs_pop = true;
        e.pop_queue = queues_.ldq;
        break;
      case Opcode::POPSDQ: case Opcode::POPSDQF:
        e.needs_pop = true;
        e.pop_queue = queues_.sdq;
        break;
      case Opcode::GETSCQ:
        e.needs_pop = true;
        e.pop_queue = queues_.scq;
        break;
      case Opcode::PUSHLDQ: case Opcode::PUSHLDQF:
        e.push_queue = queues_.ldq;
        break;
      case Opcode::PUSHSDQ: case Opcode::PUSHSDQF:
        e.push_queue = queues_.sdq;
        break;
      case Opcode::PUTEOD:
        e.push_queue = queues_.ldq;
        e.push_eod = true;
        break;
      case Opcode::PUTSCQ:
        e.push_queue = queues_.scq;
        break;
      default: break;
    }
    // Annotation-driven pushes (compiler-separated binaries).
    if (inst.ann.push_ldq) e.push_queue = queues_.ldq;
    if (inst.ann.push_sdq) e.push_queue = queues_.sdq;
    if (e.needs_pop && e.pop_queue == nullptr)
      throw std::logic_error(cfg_.name + ": queue pop with no queue bound");
    if (e.push_queue == nullptr &&
        (inst.ann.push_ldq || inst.ann.push_sdq))
      throw std::logic_error(cfg_.name + ": queue push with no queue bound");
}

}  // namespace hidisc::uarch
