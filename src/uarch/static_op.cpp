#include "uarch/static_op.hpp"

namespace hidisc::uarch {

using isa::OpClass;
using isa::Opcode;

namespace {

PoolKind pool_for(OpClass cls) {
  switch (cls) {
    case OpClass::IntAlu:
    case OpClass::Branch:
    case OpClass::Jump:
      return PoolKind::IntAlu;
    case OpClass::IntMul:
    case OpClass::IntDiv:
      return PoolKind::IntMulDiv;
    case OpClass::FpAlu:
      return PoolKind::FpAlu;
    case OpClass::FpMul:
    case OpClass::FpDiv:
      return PoolKind::FpMulDiv;
    case OpClass::Load:
    case OpClass::Store:
    case OpClass::Prefetch:
      return PoolKind::Mem;
    case OpClass::Queue:
    case OpClass::Halt:
    case OpClass::Nop:
      return PoolKind::None;
  }
  return PoolKind::None;
}

}  // namespace

StaticOp decode_static_op(const isa::Instruction& inst) {
  const isa::OpInfo& info = inst.info();
  StaticOp so;
  so.cls = info.cls;
  so.pool = pool_for(info.cls);
  so.latency = static_cast<std::int16_t>(info.latency);
  const bool unpipelined =
      info.cls == OpClass::IntDiv || info.cls == OpClass::FpDiv;
  so.busy = unpipelined ? so.latency : std::int16_t{1};
  so.cmas_group = inst.ann.cmas_group;

  so.is_load = info.cls == OpClass::Load;
  so.is_store = info.cls == OpClass::Store;
  so.is_prefetch = info.cls == OpClass::Prefetch;
  so.is_mem = so.is_load || so.is_store || so.is_prefetch;
  so.is_beod = inst.op == Opcode::BEOD;
  so.fp_routed =
      (info.is_fp_dst || info.is_fp_src) && isa::is_fp_compute(inst.op);
  so.value_live = inst.ann.cmas_value_live;

  // Register dependences.  Only sources that can name an in-flight
  // producer matter; r0 never has one.
  if (info.reads_src1 && inst.src1.valid())
    so.src1 = static_cast<std::int8_t>(inst.src1.flat());
  if (info.reads_src2 && inst.src2.valid())
    so.src2 = static_cast<std::int8_t>(inst.src2.flat());
  if (info.writes_dst && inst.dst.valid() &&
      !(inst.dst.is_int() && inst.dst.idx == 0))
    so.dst = static_cast<std::int8_t>(inst.dst.flat());

  // Queue roles (paper §3.2).
  switch (inst.op) {
    case Opcode::POPLDQ: case Opcode::POPLDQF: case Opcode::BEOD:
      so.pop_role = QueueRole::Ldq;
      break;
    case Opcode::POPSDQ: case Opcode::POPSDQF:
      so.pop_role = QueueRole::Sdq;
      break;
    case Opcode::GETSCQ:
      so.pop_role = QueueRole::Scq;
      break;
    case Opcode::PUSHLDQ: case Opcode::PUSHLDQF:
      so.push_role = QueueRole::Ldq;
      break;
    case Opcode::PUSHSDQ: case Opcode::PUSHSDQF:
      so.push_role = QueueRole::Sdq;
      break;
    case Opcode::PUTEOD:
      so.push_role = QueueRole::Ldq;
      so.push_eod = true;
      break;
    case Opcode::PUTSCQ:
      so.push_role = QueueRole::Scq;
      break;
    default:
      break;
  }
  // Annotation-driven pushes (compiler-separated binaries) override the
  // opcode role, exactly as OoOCore::queue_roles always applied them last.
  if (inst.ann.push_ldq) {
    so.push_role = QueueRole::Ldq;
    so.push_from_ann = true;
  }
  if (inst.ann.push_sdq) {
    so.push_role = QueueRole::Sdq;
    so.push_from_ann = true;
  }
  return so;
}

StaticOpTable::StaticOpTable(const isa::Program& prog) {
  ops_.reserve(prog.code.size());
  for (const auto& inst : prog.code) ops_.push_back(decode_static_op(inst));
}

}  // namespace hidisc::uarch
