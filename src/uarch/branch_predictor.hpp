// Branch predictor with BTB and return-address stack.
//
// Table 1 of the paper: "Branch predict mode: Bimodal, Branch table size:
// 2048".  Two-bit saturating counters indexed by instruction index
// (bimodal) or by index XOR global history (gshare, an ablation mode); a
// BTB provides targets for predicted-taken branches and jumps, and a small
// RAS handles jr-returns.
#pragma once

#include <cstdint>
#include <vector>

namespace hidisc::uarch {

struct BranchStats {
  std::uint64_t lookups = 0;
  std::uint64_t mispredicts = 0;

  [[nodiscard]] double mispredict_rate() const noexcept {
    return lookups == 0
               ? 0.0
               : static_cast<double>(mispredicts) /
                     static_cast<double>(lookups);
  }

  friend bool operator==(const BranchStats&, const BranchStats&) = default;
};

enum class PredictorKind : std::uint8_t { Bimodal, GShare };

class BranchPredictor {
 public:
  explicit BranchPredictor(int table_size = 2048, int btb_size = 512,
                           int ras_size = 8,
                           PredictorKind kind = PredictorKind::Bimodal);

  struct Prediction {
    bool taken = false;
    std::int32_t target = -1;  // -1: no BTB entry (treat as fall-through)
  };

  // Predicts the outcome of the branch at static index `pc`.
  [[nodiscard]] Prediction predict(std::int32_t pc) const;

  // Trains with the actual outcome and reports whether the *direction or
  // target* was mispredicted (callers charge the redirect penalty).
  bool update(std::int32_t pc, bool taken, std::int32_t target);

  // Call/return hints for jal/jr modelling.
  void push_ras(std::int32_t return_pc);
  [[nodiscard]] std::int32_t pop_ras();

  [[nodiscard]] const BranchStats& stats() const noexcept { return stats_; }
  void reset();

 private:
  [[nodiscard]] std::size_t index(std::int32_t pc) const noexcept {
    const auto base = static_cast<std::size_t>(pc);
    const auto h = kind_ == PredictorKind::GShare
                       ? base ^ static_cast<std::size_t>(history_)
                       : base;
    return h & (counters_.size() - 1);
  }
  [[nodiscard]] std::size_t btb_index(std::int32_t pc) const noexcept {
    return static_cast<std::size_t>(pc) & (btb_.size() - 1);
  }

  struct BtbEntry {
    std::int32_t pc = -1;
    std::int32_t target = -1;
  };

  std::vector<std::uint8_t> counters_;  // 2-bit saturating, init weakly taken
  std::vector<BtbEntry> btb_;
  std::vector<std::int32_t> ras_;
  std::size_t ras_top_ = 0;
  PredictorKind kind_ = PredictorKind::Bimodal;
  std::uint32_t history_ = 0;  // global taken/not-taken shift register
  BranchStats stats_;
};

// Historical alias: the paper's configuration is bimodal.
using BimodalPredictor = BranchPredictor;

}  // namespace hidisc::uarch
