// Static pre-decode for the timing cores.
//
// Everything `OoOCore::do_dispatch` and the issue path used to derive per
// dynamic op — operand class, FU pool, latency, unpipelined busy time,
// queue push/pop roles, source/destination flat register ids, routing
// validity — is a pure function of the static instruction.  A
// `StaticOpTable` evaluates that function once per static instruction when
// the machine is built, so the per-dynamic-op cost in the core collapses
// to one table load instead of a switch over opcodes plus `info()`
// lookups.  Cores without a table (unit tests drive bare `OoOCore`s on
// synthetic instructions) decode on the fly through the same function, so
// both paths are definitionally identical.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/instruction.hpp"
#include "isa/program.hpp"

namespace hidisc::uarch {

// Functional-unit pool selector (see OoOCore's pool roster).
enum class PoolKind : std::uint8_t {
  None,       // queue ops, halt, nop: no FU needed
  IntAlu,     // also branches and jumps
  IntMulDiv,
  FpAlu,
  FpMulDiv,
  Mem,        // loads, stores, prefetches: memory ports
};

// Architectural-queue role selector, resolved against the core's bound
// queues at dispatch (a prefetch-only CMP ignores all roles).
enum class QueueRole : std::uint8_t { None, Ldq, Sdq, Scq };

struct StaticOp {
  isa::OpClass cls = isa::OpClass::Nop;
  PoolKind pool = PoolKind::None;
  QueueRole pop_role = QueueRole::None;
  QueueRole push_role = QueueRole::None;
  std::int16_t latency = 1;     // result latency in cycles
  std::int16_t busy = 1;        // FU occupancy (latency for unpipelined divides)
  std::int16_t cmas_group = -1; // prefetch attribution group (CMP loads)
  std::int8_t src1 = -1;        // flat source register ids; -1 = no
  std::int8_t src2 = -1;        //   in-flight dependence possible
  std::int8_t dst = -1;         // flat destination id; -1 = none (or r0)
  bool push_eod = false;        // push role deposits an EOD token
  bool push_from_ann = false;   // push role came from the annotation field
  bool is_load = false;
  bool is_store = false;
  bool is_prefetch = false;
  bool is_mem = false;          // load | store | prefetch: needs an LSU
  bool is_beod = false;         // BEOD's conditional LDQ consume
  bool fp_routed = false;       // FP compute: needs FP units
  bool value_live = false;      // CMAS load whose value the slice reads
};

// The single decode function both paths share.
[[nodiscard]] StaticOp decode_static_op(const isa::Instruction& inst);

// One decoded StaticOp per static instruction of a program.
class StaticOpTable {
 public:
  explicit StaticOpTable(const isa::Program& prog);

  [[nodiscard]] const StaticOp& operator[](std::int32_t idx) const noexcept {
    return ops_[static_cast<std::size_t>(idx)];
  }
  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }

 private:
  std::vector<StaticOp> ops_;
};

}  // namespace hidisc::uarch
