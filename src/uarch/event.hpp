// Shared sentinel for the event-skip scheduler (machine/machine.cpp).
//
// Components that can schedule future work — cores, FU pools, the timed
// FIFOs, the memory system — answer "when could your state next change on
// its own?" with a cycle number, or kNoEvent when nothing they own will
// ever fire without external input.  The machine advances time to the
// minimum across all components when no one made progress this cycle.
#pragma once

#include <cstdint>

namespace hidisc::uarch {

inline constexpr std::uint64_t kNoEvent = ~std::uint64_t{0};

}  // namespace hidisc::uarch
