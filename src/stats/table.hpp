// Plain-text table and CSV rendering for the benchmark harnesses.
//
// Every bench binary prints paper-style rows through this helper so the
// Table/Figure reproductions share one consistent format.
#pragma once

#include <string>
#include <vector>

namespace hidisc::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with `precision` digits after the point.
  [[nodiscard]] static std::string num(double v, int precision = 3);
  // "+12.3%" style signed percentage.
  [[nodiscard]] static std::string pct(double fraction, int precision = 1);

  [[nodiscard]] std::string to_string() const;  // aligned ASCII table
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hidisc::stats
