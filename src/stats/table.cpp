#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace hidisc::stats {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("table row width mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  const auto line = [&] {
    for (const auto w : width) out << "+" << std::string(w + 2, '-');
    out << "+\n";
  };
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << "| " << cells[c]
          << std::string(width[c] - cells[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  line();
  emit(headers_);
  line();
  for (const auto& row : rows_) emit(row);
  line();
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      out << (c ? "," : "") << cells[c];
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace hidisc::stats
