// Hardware prefetcher family for the L1D (ROADMAP "Prefetcher zoo vs. the
// CMP").
//
// The paper's Cache Management Processor is one point in the prefetch
// design space: a software-visible slice processor that runs CMAS slices
// ahead of the AP.  This module implements the conventional alternatives a
// modern memory system would ship instead, so `hilab --plan prefetch` can
// answer "would a hardware prefetcher beat the CMP?" across the Fig. 10
// latency sweep:
//
//   nextline  sequential next-N-blocks on a trigger access
//   stride    single global (PC-blind) stride detector over the demand
//             access stream
//   ipstride  per-PC stride table (the classic IP-stride prefetcher)
//   sms       spatial-memory-streaming: per-(PC, region-offset) footprint
//             patterns replayed on the first touch of a region (server
//             prefetching survey, arxiv 2009.00715)
//   runahead  temporal miss-stream variant in the spirit of Hashemi's
//             runahead work (arxiv 1609.00306): a miss-correlation table
//             chains from the current miss through recorded successor
//             misses, prefetching the stream a stalled core would have
//             uncovered by running ahead
//
// Every scheme is a deterministic pure function of the demand access
// stream (fixed-size direct-mapped tables, no randomness, no wall-clock),
// which is what keeps Results bit-identical across schedulers and thread
// counts: the demand stream itself is identical, so the prefetch stream
// is too.  Fills issue through MemorySystem::access(AccessType::Prefetch)
// at the observing access's cycle, so they ride the existing timed fill
// path and the event-skip scheduler's `next_fill_complete` sees them.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hidisc::mem {

enum class PrefetchKind : std::uint8_t {
  None,
  NextLine,
  Stride,
  IpStride,
  Sms,
  Runahead,
};

// Canonical CLI / spec spelling ("none", "nextline", "stride", "ipstride",
// "sms", "runahead") and its inverse.
[[nodiscard]] const char* prefetch_kind_name(PrefetchKind k) noexcept;
[[nodiscard]] std::optional<PrefetchKind> parse_prefetch_kind(
    std::string_view name) noexcept;

// Knobs shared across the family; schemes ignore what does not apply.
struct PrefetchConfig {
  PrefetchKind kind = PrefetchKind::None;
  // Prefetch candidates emitted per triggering access (nextline: blocks
  // ahead; stride/ipstride: stride multiples; sms: pattern blocks;
  // runahead: successor misses across the whole chain walk).
  int degree = 2;
  // Lookahead: nextline/stride/ipstride start `distance` blocks/strides
  // ahead of the trigger; runahead walks the correlation chain this deep.
  int distance = 1;
  // Train/trigger on every demand access (true) or on L1 demand misses
  // only (false).  The runahead scheme is miss-driven by construction and
  // ignores this.
  bool train_on_hit = true;
  // Tracker-table entries (ipstride PC table, sms pattern-history table,
  // runahead correlation table).  Power of two.
  int table_entries = 256;
  // Spatial region size for sms, in L1 blocks.  Power of two, <= 64 (the
  // footprint is a 64-bit map).
  int sms_region_blocks = 16;
  // Stride confirmations required before a stride scheme issues.
  int min_confidence = 2;
};

// Round-trips a config through the `hilab --override` spec grammar:
//
//   KIND[:degN][:distN][:tblN][:regionN][:confN][:miss|:all]
//
// e.g. "ipstride:deg4", "sms:region32:tbl512", "nextline:deg1:miss",
// "none".  parse_prefetch_spec throws std::invalid_argument on an unknown
// kind or token (the message names the valid ones).
[[nodiscard]] std::string prefetch_spec(const PrefetchConfig& cfg);
[[nodiscard]] PrefetchConfig parse_prefetch_spec(std::string_view spec);

// One observed demand access, as the prefetchers see it.
struct PrefetchAccess {
  std::uint64_t addr = 0;    // byte address
  std::uint64_t block = 0;   // addr / L1 block size
  std::int32_t pc = -1;      // static instruction index (-1: unattributed)
  std::uint64_t now = 0;     // cycle of the access
  bool l1_hit = false;
  bool write = false;
};

// Accurate/late/useless accounting for the hardware prefetcher, assembled
// by MemorySystem::hw_prefetch_stats() from its own issue counters plus
// the L1's per-group outcome tracking (the hw prefetcher owns the
// reserved kHwPrefetchGroup CMAS-group id).  All counters, so Results
// stay bit-comparable.
struct HwPrefetchStats {
  std::uint64_t trains = 0;    // demand accesses observed
  std::uint64_t issued = 0;    // prefetches sent into the hierarchy
  std::uint64_t filtered = 0;  // candidates dropped: line already in L1
  std::uint64_t installed = 0;  // L1 lines allocated by the prefetcher
  std::uint64_t used = 0;       // installed lines later demand-touched
  std::uint64_t late = 0;       // ... touched while the fill was in flight
  std::uint64_t evicted_unused = 0;  // evicted before any demand touch

  // Demand touches that arrived after the fill landed — the hits that
  // actually removed misses (paper Figure 9 semantics).
  [[nodiscard]] std::uint64_t timely() const noexcept { return used - late; }
  [[nodiscard]] double accuracy() const noexcept {
    return installed == 0 ? 0.0
                          : static_cast<double>(used) /
                                static_cast<double>(installed);
  }
  [[nodiscard]] double lateness() const noexcept {
    return used == 0 ? 0.0
                     : static_cast<double>(late) / static_cast<double>(used);
  }

  friend bool operator==(const HwPrefetchStats&,
                         const HwPrefetchStats&) = default;
};

// The CMAS-group id reserved for hardware-prefetcher fills in the L1's
// per-group outcome stats.  Compiler-assigned CMAS groups count up from 0
// and are bounded by the slice count of one kernel; the top of the int16
// range can never collide with them.
inline constexpr std::int16_t kHwPrefetchGroup = 0x7fff;

// A prefetch scheme: observes the demand stream, appends candidate byte
// addresses (block-aligned) to `out`.  The caller (MemorySystem) filters
// lines already resident and issues the rest as AccessType::Prefetch.
class Prefetcher {
 public:
  virtual ~Prefetcher() = default;
  virtual void observe(const PrefetchAccess& ev,
                       std::vector<std::uint64_t>& out) = 0;
  virtual void reset() = 0;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

// Builds the scheme `cfg.kind` names (nullptr for None).  Throws
// std::invalid_argument on bad knobs (non-power-of-two tables/regions,
// non-positive degree/distance, sms region > 64 blocks).
[[nodiscard]] std::unique_ptr<Prefetcher> make_prefetcher(
    const PrefetchConfig& cfg, int block_bytes);

}  // namespace hidisc::mem
