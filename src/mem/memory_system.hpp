// Two-level data memory hierarchy: L1D -> unified L2 -> DRAM.
//
// Latencies default to the paper's Table 1 (L1 1 cycle, L2 12, DRAM 120).
// `access` returns the number of cycles until the data is available,
// accounting for fills still in flight (late prefetches).  A per-static-
// instruction miss profile can be recorded for the HiDISC compiler's CMAS
// selection (paper §4.2: "the CMAS is defined with the help of the cache
// access profile").
//
// An optional hardware prefetcher (mem/prefetcher.hpp) observes the L1D
// demand stream and issues AccessType::Prefetch fills through the same
// timed path as demand misses, so event-skip scheduling stays sound.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "mem/cache.hpp"
#include "mem/prefetcher.hpp"

namespace hidisc::mem {

struct MemConfig {
  CacheConfig l1{256, 32, 4, 1, "L1D"};
  CacheConfig l1i{512, 32, 1, 1, "L1I"};  // SimpleScalar's il1 default
  CacheConfig l2{1024, 64, 4, 12, "L2"};
  int dram_latency = 120;
  // Occupancy of the L1<->L2 bus per miss transaction, in cycles.  0
  // disables contention modelling (infinite bandwidth, the default — the
  // paper models latency only).  When enabled, CMP prefetch traffic
  // competes with demand misses for the same bus.
  int l2_bus_cycles = 0;
  // Hardware prefetcher for the L1D demand stream (kind None = off).
  // Prefetch fills claim the L1<->L2 bus like any miss, so under
  // contention modelling they compete with demand traffic too.
  PrefetchConfig prefetch{};

  // The latency sweep of Figure 10 varies (L2, DRAM) through
  // {4/40, 8/80, 12/120, 16/160}.
  [[nodiscard]] static MemConfig with_latencies(int l2_lat, int dram_lat) {
    MemConfig cfg;
    cfg.l2.hit_latency = l2_lat;
    cfg.dram_latency = dram_lat;
    return cfg;
  }
};

struct AccessResult {
  int latency = 0;     // cycles until data available (>= L1 hit latency)
  bool l1_hit = false;
  bool l2_hit = false;
};

class MemorySystem {
 public:
  explicit MemorySystem(const MemConfig& cfg = MemConfig{});

  // Performs a data access at cycle `now`.  `static_idx`, when >= 0,
  // attributes an L1 demand miss to that static instruction in the profile.
  AccessResult access(std::uint64_t addr, AccessType type, std::uint64_t now,
                      std::int32_t static_idx = -1,
                      std::int16_t pf_group = -1);

  // Instruction fetch through the (direct-mapped) L1I and the shared L2.
  // Returns the cycles until the fetch block is available.
  AccessResult fetch_access(std::uint64_t addr, std::uint64_t now);

  void reset();

  [[nodiscard]] const Cache& l1() const noexcept { return l1_; }
  [[nodiscard]] const Cache& l1i() const noexcept { return l1i_; }
  [[nodiscard]] const Cache& l2() const noexcept { return l2_; }
  [[nodiscard]] const MemConfig& config() const noexcept { return cfg_; }

  // Accurate/late/useless accounting for the hardware prefetcher: issue-
  // side counters merged with the L1's outcome tracking for the reserved
  // kHwPrefetchGroup.  All-zero when no prefetcher is configured.
  [[nodiscard]] HwPrefetchStats hw_prefetch_stats() const;

  // Profile, indexed by static instruction: {accesses, L1 demand misses}.
  // Flat (grown on demand to the largest static_idx seen) so the hot
  // demand-access path is one indexed add, not a hash probe.
  struct ProfileEntry {
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
  };
  [[nodiscard]] const std::vector<ProfileEntry>& profile() const noexcept {
    return profile_;
  }

  [[nodiscard]] std::uint64_t bus_busy_cycles() const noexcept {
    return bus_busy_cycles_;
  }

  // Event-skip scheduler interface --------------------------------------
  //
  // Sentinel for "no outstanding fill".
  static constexpr std::uint64_t kNoFill = ~std::uint64_t{0};

  // When enabled, every miss records its fill-completion cycle so the
  // scheduler can query the earliest outstanding one.  Off by default:
  // lock-stepped machines never ask, and tracking would only grow the
  // heap.  Toggling does not affect timing — only event visibility.
  void set_event_tracking(bool on) noexcept { track_fills_ = on; }

  // Earliest outstanding fill completing strictly after `now` (kNoFill
  // when none).  Prunes fills that have already landed.
  [[nodiscard]] std::uint64_t next_fill_complete(std::uint64_t now);

  // Brute-force recomputation of the fill frontier: every valid line in
  // any level whose `ready` is still in the future must be covered by an
  // entry in the event heap, or the event-skip scheduler could jump past
  // its completion (a prefetch fill landing "for free").  Stale heap
  // entries are fine — they are conservative.  No-op unless event
  // tracking is on.  Throws std::logic_error on violation.
  void debug_check_invariants(std::uint64_t now) const;

 private:
  // Claims the L1<->L2 bus at `now`; returns the transaction start cycle
  // (== now when contention modelling is off).
  [[nodiscard]] std::uint64_t claim_bus(std::uint64_t now);

  // Feeds one demand access to the hardware prefetcher and issues the
  // candidates it emits (minus those already resident in L1).
  void train_prefetcher(std::uint64_t addr, AccessType type,
                        std::uint64_t now, std::int32_t static_idx,
                        bool l1_hit);

  MemConfig cfg_;
  Cache l1_;
  Cache l1i_;
  Cache l2_;
  void note_fill(std::uint64_t ready, std::uint64_t now) {
    if (track_fills_ && ready > now) {
      fills_.push_back(ready);
      std::push_heap(fills_.begin(), fills_.end(), std::greater<>{});
    }
  }

  std::uint64_t bus_free_ = 0;
  std::uint64_t bus_busy_cycles_ = 0;
  // Grows `profile_` to cover `idx` and returns the slot.
  [[nodiscard]] ProfileEntry& profile_slot(std::int32_t idx) {
    const auto i = static_cast<std::size_t>(idx);
    if (i >= profile_.size()) profile_.resize(i + 1);
    return profile_[i];
  }

  std::vector<ProfileEntry> profile_;
  bool track_fills_ = false;
  // Completion cycles of in-flight fills, kept as an explicit min-heap
  // (push_heap/pop_heap) so debug_check_invariants can scan it.
  std::vector<std::uint64_t> fills_;

  std::unique_ptr<Prefetcher> prefetcher_;
  HwPrefetchStats pf_;  // issue-side counters (trains/issued/filtered)
  std::vector<std::uint64_t> pf_buf_;  // scratch for Prefetcher::observe
};

}  // namespace hidisc::mem
