// Set-associative cache model (write-back, write-allocate, true LRU).
//
// Matches the paper's Table 1 organizations: L1D 256 sets x 32 B x 4-way,
// unified L2 1024 sets x 64 B x 4-way.  Lines carry a `ready` cycle so that
// a demand access arriving while a fill for the same block is still in
// flight (an MSHR hit — e.g. a late CMP prefetch) pays only the remaining
// latency instead of a full miss.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace hidisc::mem {

enum class AccessType : std::uint8_t { Read, Write, Prefetch };

struct CacheConfig {
  int sets = 256;
  int block_bytes = 32;
  int assoc = 4;
  int hit_latency = 1;
  std::string name = "cache";

  [[nodiscard]] int size_bytes() const noexcept {
    return sets * block_bytes * assoc;
  }
};

struct CacheStats {
  std::uint64_t reads = 0, read_misses = 0;
  std::uint64_t writes = 0, write_misses = 0;
  std::uint64_t prefetches = 0, prefetch_misses = 0;
  std::uint64_t evictions = 0, writebacks = 0;
  std::uint64_t useful_prefetches = 0;   // first demand hit on prefetched line
  std::uint64_t late_fill_hits = 0;      // demand hit while fill in flight
  std::uint64_t late_prefetch_hits = 0;  // ... where the fill was a prefetch

  [[nodiscard]] std::uint64_t demand_accesses() const noexcept {
    return reads + writes;
  }
  [[nodiscard]] std::uint64_t demand_misses() const noexcept {
    return read_misses + write_misses;
  }
  [[nodiscard]] double demand_miss_rate() const noexcept {
    const auto a = demand_accesses();
    return a == 0 ? 0.0 : static_cast<double>(demand_misses()) /
                              static_cast<double>(a);
  }

  friend bool operator==(const CacheStats&, const CacheStats&) = default;
};

// Result of a lookup at one level.
struct LookupResult {
  bool hit = false;
  // Cycle at which the block's data is available (fills in flight).  Only
  // meaningful on hit; the caller turns it into extra wait cycles.
  std::uint64_t ready = 0;
  // Dirty block that had to be evicted to make room (valid when
  // `evicted_dirty`); the caller writes it to the next level down.
  bool evicted_dirty = false;
  std::uint64_t evicted_addr = 0;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  // Looks up `addr`; on miss, allocates the block (victim chosen by LRU)
  // and records `fill_ready` as the cycle its data arrives.  On hit the
  // existing line's ready time is reported.  LRU is updated on every
  // access.  Write hits mark the line dirty.
  // `pf_group` attributes a prefetch to a CMAS group (-1 = none); demand
  // hits on the line and unused evictions are credited back to the group
  // (see prefetch_group_stats), feeding the machines' runtime range
  // control.
  LookupResult access(std::uint64_t addr, AccessType type, std::uint64_t now,
                      std::uint64_t fill_ready, std::int16_t pf_group = -1);

  // Probe without side effects (no LRU update, no allocation).
  [[nodiscard]] bool contains(std::uint64_t addr) const;

  // Per-CMAS-group prefetch outcome counters.
  struct PrefetchGroupStats {
    std::uint64_t installed = 0;
    std::uint64_t used = 0;            // demand-touched (timely or late)
    std::uint64_t late = 0;            // ... while the fill was in flight
    std::uint64_t evicted_unused = 0;  // evicted before any demand touch
  };
  [[nodiscard]] const std::unordered_map<std::int16_t, PrefetchGroupStats>&
  prefetch_group_stats() const noexcept {
    return pf_groups_;
  }

  // Appends the `ready` cycle of every valid line whose fill is still in
  // flight at `now`.  Debug-only: lets MemorySystem::debug_check_invariants
  // recompute the fill frontier from first principles.
  void debug_outstanding_readys(std::uint64_t now,
                                std::vector<std::uint64_t>& out) const;

  void reset();

  [[nodiscard]] const CacheConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;     // last-access stamp; larger = more recent
    std::uint64_t ready = 0;   // fill completion cycle
    std::int16_t pf_group = -1;  // CMAS group that prefetched this line
    bool valid = false;
    bool dirty = false;
    bool prefetched = false;   // installed by a prefetch, not yet demand-hit
  };

  [[nodiscard]] std::uint64_t block_of(std::uint64_t addr) const noexcept {
    return addr / static_cast<std::uint64_t>(cfg_.block_bytes);
  }

  CacheConfig cfg_;
  CacheStats stats_;
  std::vector<Line> lines_;  // sets * assoc, set-major
  std::unordered_map<std::int16_t, PrefetchGroupStats> pf_groups_;
  std::uint64_t stamp_ = 0;
};

}  // namespace hidisc::mem
