#include "mem/cache.hpp"

#include <stdexcept>

namespace hidisc::mem {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  if (cfg.sets <= 0 || cfg.assoc <= 0 || cfg.block_bytes <= 0)
    throw std::invalid_argument("cache: non-positive geometry");
  if ((cfg.sets & (cfg.sets - 1)) != 0)
    throw std::invalid_argument("cache: sets must be a power of two");
  if ((cfg.block_bytes & (cfg.block_bytes - 1)) != 0)
    throw std::invalid_argument("cache: block size must be a power of two");
  lines_.resize(static_cast<std::size_t>(cfg.sets) * cfg.assoc);
}

void Cache::reset() {
  for (auto& line : lines_) line = Line{};
  stats_ = CacheStats{};
  pf_groups_.clear();
  stamp_ = 0;
}

void Cache::debug_outstanding_readys(std::uint64_t now,
                                     std::vector<std::uint64_t>& out) const {
  for (const auto& line : lines_)
    if (line.valid && line.ready > now) out.push_back(line.ready);
}

bool Cache::contains(std::uint64_t addr) const {
  const std::uint64_t block = block_of(addr);
  const auto set = static_cast<std::size_t>(block & (cfg_.sets - 1));
  const std::uint64_t tag = block;  // full block id as tag: simple & safe
  const Line* base = lines_.data() + set * cfg_.assoc;
  for (int w = 0; w < cfg_.assoc; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

LookupResult Cache::access(std::uint64_t addr, AccessType type,
                           std::uint64_t now, std::uint64_t fill_ready,
                           std::int16_t pf_group) {
  const std::uint64_t block = block_of(addr);
  const auto set = static_cast<std::size_t>(block & (cfg_.sets - 1));
  const std::uint64_t tag = block;  // store the whole block id; simple & safe
  Line* base = lines_.data() + set * cfg_.assoc;

  switch (type) {
    case AccessType::Read: ++stats_.reads; break;
    case AccessType::Write: ++stats_.writes; break;
    case AccessType::Prefetch: ++stats_.prefetches; break;
  }

  // Hit path.  A demand access to a line whose fill is still in flight is
  // a delayed hit: the data is coming (MSHR merge) but, like
  // sim-outorder, it counts as a miss in the statistics — only prefetches
  // that complete in time actually remove misses (paper Figure 9).
  for (int w = 0; w < cfg_.assoc; ++w) {
    Line& line = base[w];
    if (!line.valid || line.tag != tag) continue;
    line.lru = ++stamp_;
    if (type == AccessType::Write) line.dirty = true;
    if (type != AccessType::Prefetch) {
      const bool in_flight = line.ready > now;
      const bool was_prefetched = line.prefetched;
      if (line.prefetched) {
        if (!in_flight) ++stats_.useful_prefetches;
        if (line.pf_group >= 0) {
          auto& g = pf_groups_[line.pf_group];
          ++g.used;
          if (in_flight) ++g.late;
        }
        line.prefetched = false;
        line.pf_group = -1;
      }
      if (in_flight) {
        ++stats_.late_fill_hits;
        if (was_prefetched) ++stats_.late_prefetch_hits;
        if (type == AccessType::Write) ++stats_.write_misses;
        else ++stats_.read_misses;
      }
    }
    LookupResult r;
    r.hit = true;
    r.ready = line.ready;
    return r;
  }

  // Miss path: count, pick LRU victim, allocate.
  switch (type) {
    case AccessType::Read: ++stats_.read_misses; break;
    case AccessType::Write: ++stats_.write_misses; break;
    case AccessType::Prefetch: ++stats_.prefetch_misses; break;
  }
  Line* victim = base;
  for (int w = 1; w < cfg_.assoc; ++w)
    if (!base[w].valid ||
        (victim->valid && base[w].lru < victim->lru))
      victim = &base[w];

  LookupResult r;
  if (victim->valid) {
    ++stats_.evictions;
    if (victim->prefetched && victim->pf_group >= 0)
      ++pf_groups_[victim->pf_group].evicted_unused;
    if (victim->dirty) {
      ++stats_.writebacks;
      r.evicted_dirty = true;
      r.evicted_addr =
          victim->tag * static_cast<std::uint64_t>(cfg_.block_bytes);
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = ++stamp_;
  victim->ready = fill_ready;
  victim->dirty = type == AccessType::Write;
  victim->prefetched = type == AccessType::Prefetch;
  victim->pf_group = type == AccessType::Prefetch ? pf_group : -1;
  if (victim->prefetched && pf_group >= 0) ++pf_groups_[pf_group].installed;
  r.hit = false;
  r.ready = fill_ready;
  return r;
}

}  // namespace hidisc::mem
