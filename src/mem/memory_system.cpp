#include "mem/memory_system.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace hidisc::mem {

MemorySystem::MemorySystem(const MemConfig& cfg)
    : cfg_(cfg),
      l1_(cfg.l1),
      l1i_(cfg.l1i),
      l2_(cfg.l2),
      prefetcher_(make_prefetcher(cfg.prefetch, cfg.l1.block_bytes)) {}

void MemorySystem::reset() {
  l1_.reset();
  l1i_.reset();
  l2_.reset();
  bus_free_ = 0;
  bus_busy_cycles_ = 0;
  profile_.clear();
  fills_.clear();
  if (prefetcher_) prefetcher_->reset();
  pf_ = HwPrefetchStats{};
}

std::uint64_t MemorySystem::next_fill_complete(std::uint64_t now) {
  while (!fills_.empty() && fills_.front() <= now) {
    std::pop_heap(fills_.begin(), fills_.end(), std::greater<>{});
    fills_.pop_back();
  }
  return fills_.empty() ? kNoFill : fills_.front();
}

void MemorySystem::debug_check_invariants(std::uint64_t now) const {
  if (!track_fills_) return;
  const auto fail = [](const std::string& what) {
    throw std::logic_error("memsys: invariant violated: " + what);
  };
  if (!std::is_heap(fills_.begin(), fills_.end(), std::greater<>{}))
    fail("fill events not a min-heap");
  // Recompute the fill frontier from the cache lines themselves: any line
  // still filling must have its completion cycle in the event heap, or
  // next_fill_complete could return a later cycle and the scheduler would
  // skip the fill.
  std::vector<std::uint64_t> outstanding;
  l1_.debug_outstanding_readys(now, outstanding);
  l1i_.debug_outstanding_readys(now, outstanding);
  l2_.debug_outstanding_readys(now, outstanding);
  for (const auto ready : outstanding)
    if (std::find(fills_.begin(), fills_.end(), ready) == fills_.end())
      fail("in-flight fill at cycle " + std::to_string(ready) +
           " missing from event heap");
}

HwPrefetchStats MemorySystem::hw_prefetch_stats() const {
  HwPrefetchStats s = pf_;
  const auto& groups = l1_.prefetch_group_stats();
  if (const auto it = groups.find(kHwPrefetchGroup); it != groups.end()) {
    s.installed = it->second.installed;
    s.used = it->second.used;
    s.late = it->second.late;
    s.evicted_unused = it->second.evicted_unused;
  }
  return s;
}

std::uint64_t MemorySystem::claim_bus(std::uint64_t now) {
  if (cfg_.l2_bus_cycles <= 0) return now;
  const std::uint64_t start = std::max(now, bus_free_);
  bus_free_ = start + static_cast<std::uint64_t>(cfg_.l2_bus_cycles);
  bus_busy_cycles_ += static_cast<std::uint64_t>(cfg_.l2_bus_cycles);
  return start;
}

void MemorySystem::train_prefetcher(std::uint64_t addr, AccessType type,
                                    std::uint64_t now,
                                    std::int32_t static_idx, bool l1_hit) {
  ++pf_.trains;
  PrefetchAccess ev;
  ev.addr = addr;
  ev.block = addr / static_cast<std::uint64_t>(cfg_.l1.block_bytes);
  ev.pc = static_idx;
  ev.now = now;
  ev.l1_hit = l1_hit;
  ev.write = type == AccessType::Write;
  pf_buf_.clear();
  prefetcher_->observe(ev, pf_buf_);
  for (const auto cand : pf_buf_) {
    if (l1_.contains(cand)) {
      ++pf_.filtered;
      continue;
    }
    ++pf_.issued;
    // Recursion is shallow and safe: prefetch accesses never re-enter the
    // trainer (they are not demand traffic) and never touch pf_buf_.
    access(cand, AccessType::Prefetch, now, -1, kHwPrefetchGroup);
  }
}

AccessResult MemorySystem::fetch_access(std::uint64_t addr,
                                        std::uint64_t now) {
  AccessResult out;
  if (l1i_.contains(addr)) {
    const auto r = l1i_.access(addr, AccessType::Read, now, 0);
    out.l1_hit = true;
    const auto wait = r.ready > now ? static_cast<int>(r.ready - now) : 0;
    out.latency = cfg_.l1i.hit_latency + wait;
    return out;
  }
  std::uint64_t data_ready;
  if (l2_.contains(addr)) {
    const auto r2 = l2_.access(addr, AccessType::Read, now, 0);
    out.l2_hit = true;
    const std::uint64_t base_ready =
        now + cfg_.l1i.hit_latency + cfg_.l2.hit_latency;
    data_ready = std::max(base_ready, r2.ready + cfg_.l2.hit_latency);
  } else {
    data_ready =
        now + cfg_.l1i.hit_latency + cfg_.l2.hit_latency + cfg_.dram_latency;
    l2_.access(addr, AccessType::Read, now, data_ready);
  }
  l1i_.access(addr, AccessType::Read, now, data_ready);
  note_fill(data_ready, now);
  const auto wait = data_ready > now ? static_cast<int>(data_ready - now) : 0;
  out.latency = std::max(cfg_.l1i.hit_latency, wait);
  return out;
}

AccessResult MemorySystem::access(std::uint64_t addr, AccessType type,
                                  std::uint64_t now, std::int32_t static_idx,
                                  std::int16_t pf_group) {
  AccessResult out;
  const bool demand = type != AccessType::Prefetch;
  if (demand && static_idx >= 0) ++profile_slot(static_idx).accesses;

  // L1 lookup.  On a miss we must know the fill time before allocating, so
  // probe L2 first in that case.
  if (l1_.contains(addr)) {
    const auto r1 = l1_.access(addr, type, now, /*fill_ready=*/0);
    out.l1_hit = true;
    // Wait for an in-flight fill if the line isn't ready yet.
    const auto wait =
        r1.ready > now ? static_cast<int>(r1.ready - now) : 0;
    out.latency = cfg_.l1.hit_latency + wait;
    if (demand && prefetcher_)
      train_prefetcher(addr, type, now, static_idx, /*l1_hit=*/true);
    return out;
  }

  if (demand && static_idx >= 0) ++profile_slot(static_idx).misses;

  // An L1 miss is a bus transaction: under contention modelling the
  // request waits for the bus before the L2 lookup begins.
  const std::uint64_t start = claim_bus(now);

  // L2 lookup.
  std::uint64_t data_ready;
  if (l2_.contains(addr)) {
    const auto r2 = l2_.access(addr, type, start, /*fill_ready=*/0);
    out.l2_hit = true;
    const std::uint64_t base_ready = start + cfg_.l1.hit_latency +
                                     cfg_.l2.hit_latency;
    data_ready = std::max(base_ready, r2.ready + cfg_.l2.hit_latency);
  } else {
    const std::uint64_t fill_l2 =
        start + cfg_.l1.hit_latency + cfg_.l2.hit_latency +
        cfg_.dram_latency;
    const auto r2 = l2_.access(addr, type, start, fill_l2);
    // A dirty L2 victim goes to memory; modelled as a stat only.
    (void)r2;
    data_ready = fill_l2;
  }

  // Allocate in L1 with the computed fill time.
  const auto r1 = l1_.access(addr, type, now, data_ready, pf_group);
  if (r1.evicted_dirty) {
    // Write the dirty L1 victim back into L2 (it stays dirty there).
    if (l2_.contains(r1.evicted_addr))
      l2_.access(r1.evicted_addr, AccessType::Write, now, 0);
    // If L2 already evicted it, the writeback goes straight to memory;
    // counted by the L1 writeback stat.
  }

  note_fill(data_ready, now);
  const auto wait = data_ready > now ? static_cast<int>(data_ready - now) : 0;
  out.latency = std::max(cfg_.l1.hit_latency, wait);
  // Train after the demand allocation so the miss's own block is resident
  // (candidates aliasing it get filtered, not re-issued).
  if (demand && prefetcher_)
    train_prefetcher(addr, type, now, static_idx, /*l1_hit=*/false);
  return out;
}

}  // namespace hidisc::mem
