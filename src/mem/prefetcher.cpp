#include "mem/prefetcher.hpp"

#include <algorithm>
#include <stdexcept>

namespace hidisc::mem {

namespace {

[[nodiscard]] bool power_of_two(int v) noexcept {
  return v > 0 && (v & (v - 1)) == 0;
}

// splitmix64-style finalizer: table indices must not alias for nearby
// PCs/blocks the way a plain modulo would.
[[nodiscard]] std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// ---- nextline --------------------------------------------------------------

class NextLinePrefetcher final : public Prefetcher {
 public:
  NextLinePrefetcher(const PrefetchConfig& cfg, int block_bytes)
      : cfg_(cfg), block_bytes_(static_cast<std::uint64_t>(block_bytes)) {}

  void observe(const PrefetchAccess& ev,
               std::vector<std::uint64_t>& out) override {
    if (ev.l1_hit && !cfg_.train_on_hit) return;
    for (int i = 0; i < cfg_.degree; ++i)
      out.push_back((ev.block + static_cast<std::uint64_t>(cfg_.distance + i)) *
                    block_bytes_);
  }

  void reset() override {}
  [[nodiscard]] const char* name() const noexcept override {
    return "nextline";
  }

 private:
  PrefetchConfig cfg_;
  std::uint64_t block_bytes_;
};

// ---- stride / ipstride -----------------------------------------------------

struct StrideEntry {
  std::uint64_t tag = 0;       // owning PC (ipstride) — unused by stride
  std::uint64_t last_block = 0;
  std::int64_t stride = 0;     // in blocks
  int confidence = 0;
  bool valid = false;
};

// Advances one stride tracker by the observed block and, when confident,
// emits `degree` prefetches starting `distance` strides ahead.  Shared by
// the global and per-PC variants (and mirrored by the golden reference
// model in tests/prefetch_test.cpp).
void step_stride(StrideEntry& e, std::uint64_t block,
                 const PrefetchConfig& cfg, std::uint64_t block_bytes,
                 std::vector<std::uint64_t>& out) {
  if (!e.valid) {
    e.valid = true;
    e.last_block = block;
    e.stride = 0;
    e.confidence = 0;
    return;
  }
  const std::int64_t stride =
      static_cast<std::int64_t>(block) - static_cast<std::int64_t>(e.last_block);
  e.last_block = block;
  if (stride == 0) return;  // same block: neither confirms nor breaks
  if (stride == e.stride) {
    e.confidence = std::min(e.confidence + 1, 8);
  } else {
    e.stride = stride;
    e.confidence = 1;
  }
  if (e.confidence < cfg.min_confidence) return;
  for (int i = 0; i < cfg.degree; ++i) {
    const std::int64_t target =
        static_cast<std::int64_t>(block) +
        e.stride * static_cast<std::int64_t>(cfg.distance + i);
    if (target < 0) break;
    out.push_back(static_cast<std::uint64_t>(target) * block_bytes);
  }
}

class StridePrefetcher final : public Prefetcher {
 public:
  StridePrefetcher(const PrefetchConfig& cfg, int block_bytes)
      : cfg_(cfg), block_bytes_(static_cast<std::uint64_t>(block_bytes)) {}

  void observe(const PrefetchAccess& ev,
               std::vector<std::uint64_t>& out) override {
    if (ev.l1_hit && !cfg_.train_on_hit) return;
    step_stride(entry_, ev.block, cfg_, block_bytes_, out);
  }

  void reset() override { entry_ = StrideEntry{}; }
  [[nodiscard]] const char* name() const noexcept override { return "stride"; }

 private:
  PrefetchConfig cfg_;
  std::uint64_t block_bytes_;
  StrideEntry entry_;
};

class IpStridePrefetcher final : public Prefetcher {
 public:
  IpStridePrefetcher(const PrefetchConfig& cfg, int block_bytes)
      : cfg_(cfg),
        block_bytes_(static_cast<std::uint64_t>(block_bytes)),
        table_(static_cast<std::size_t>(cfg.table_entries)) {}

  void observe(const PrefetchAccess& ev,
               std::vector<std::uint64_t>& out) override {
    if (ev.pc < 0) return;  // no PC to index by
    if (ev.l1_hit && !cfg_.train_on_hit) return;
    const auto pc = static_cast<std::uint64_t>(ev.pc);
    StrideEntry& e = table_[mix(pc) & (table_.size() - 1)];
    if (e.valid && e.tag != pc) e = StrideEntry{};  // direct-mapped replace
    e.tag = pc;
    step_stride(e, ev.block, cfg_, block_bytes_, out);
  }

  void reset() override {
    for (auto& e : table_) e = StrideEntry{};
  }
  [[nodiscard]] const char* name() const noexcept override {
    return "ipstride";
  }

 private:
  PrefetchConfig cfg_;
  std::uint64_t block_bytes_;
  std::vector<StrideEntry> table_;
};

// ---- sms -------------------------------------------------------------------
//
// Spatial memory streaming: while a region is "active" its touched-block
// footprint accumulates; when the region's accumulation slot is recycled
// the footprint is committed to a pattern-history table keyed by the
// trigger (PC, offset-in-region).  The next first-touch of any region with
// the same trigger replays the recorded footprint.

class SmsPrefetcher final : public Prefetcher {
 public:
  SmsPrefetcher(const PrefetchConfig& cfg, int block_bytes)
      : cfg_(cfg),
        block_bytes_(static_cast<std::uint64_t>(block_bytes)),
        region_blocks_(static_cast<std::uint64_t>(cfg.sms_region_blocks)),
        acc_(kAccEntries),
        pht_(static_cast<std::size_t>(cfg.table_entries)) {}

  void observe(const PrefetchAccess& ev,
               std::vector<std::uint64_t>& out) override {
    if (ev.l1_hit && !cfg_.train_on_hit) return;
    const std::uint64_t region = ev.block / region_blocks_;
    const auto offset = static_cast<int>(ev.block % region_blocks_);

    AccEntry& a = acc_[mix(region) & (acc_.size() - 1)];
    if (a.valid && a.region == region) {
      a.pattern |= std::uint64_t{1} << offset;  // ongoing generation
      return;
    }
    // Slot recycled: commit the evicted generation's footprint, then open
    // a new generation triggered by this access.
    if (a.valid) commit(a);
    a.valid = true;
    a.region = region;
    a.pattern = std::uint64_t{1} << offset;
    a.trigger = trigger_key(ev.pc, offset);

    // Replay the learned footprint for this trigger, if any.
    const PhtEntry& p = pht_[mix(a.trigger) & (pht_.size() - 1)];
    if (!p.valid || p.trigger != a.trigger) return;
    const std::uint64_t base = region * region_blocks_;
    int emitted = 0;
    for (int b = 0; b < static_cast<int>(region_blocks_) &&
                    emitted < cfg_.degree;
         ++b) {
      if (b == offset || (p.pattern & (std::uint64_t{1} << b)) == 0) continue;
      out.push_back((base + static_cast<std::uint64_t>(b)) * block_bytes_);
      ++emitted;
    }
  }

  void reset() override {
    for (auto& a : acc_) a = AccEntry{};
    for (auto& p : pht_) p = PhtEntry{};
  }
  [[nodiscard]] const char* name() const noexcept override { return "sms"; }

 private:
  static constexpr std::size_t kAccEntries = 64;

  struct AccEntry {
    std::uint64_t region = 0;
    std::uint64_t pattern = 0;
    std::uint64_t trigger = 0;
    bool valid = false;
  };
  struct PhtEntry {
    std::uint64_t trigger = 0;
    std::uint64_t pattern = 0;
    bool valid = false;
  };

  [[nodiscard]] static std::uint64_t trigger_key(std::int32_t pc,
                                                 int offset) noexcept {
    return (static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(pc < 0 ? 0 : pc))
            << 6) ^
           static_cast<std::uint64_t>(offset);
  }

  void commit(const AccEntry& a) {
    PhtEntry& p = pht_[mix(a.trigger) & (pht_.size() - 1)];
    p.valid = true;
    p.trigger = a.trigger;
    p.pattern = a.pattern;
  }

  PrefetchConfig cfg_;
  std::uint64_t block_bytes_;
  std::uint64_t region_blocks_;
  std::vector<AccEntry> acc_;
  std::vector<PhtEntry> pht_;
};

// ---- runahead --------------------------------------------------------------
//
// Miss-stream correlation in the spirit of continuous runahead: each L1
// demand miss records itself as the successor of the previous miss, and
// triggers a chain walk from its own block through recorded successors —
// the addresses a runahead engine would have uncovered while the core was
// stalled on this miss.

class RunaheadPrefetcher final : public Prefetcher {
 public:
  RunaheadPrefetcher(const PrefetchConfig& cfg, int block_bytes)
      : cfg_(cfg),
        block_bytes_(static_cast<std::uint64_t>(block_bytes)),
        table_(static_cast<std::size_t>(cfg.table_entries)) {}

  void observe(const PrefetchAccess& ev,
               std::vector<std::uint64_t>& out) override {
    if (ev.l1_hit) return;  // miss-driven by construction
    // Learn: the previous miss's successor slot gains this block.
    if (have_last_) {
      Entry& prev = table_[mix(last_miss_) & (table_.size() - 1)];
      if (!prev.valid || prev.tag != last_miss_) {
        prev = Entry{};
        prev.valid = true;
        prev.tag = last_miss_;
      }
      // Skip consecutive same-block misses (MSHR-merged re-requests).
      if (ev.block != last_miss_) {
        prev.succ[prev.next_slot] = ev.block;
        prev.succ_valid |= std::uint8_t{1} << prev.next_slot;
        prev.next_slot = (prev.next_slot + 1) % kSuccessors;
      }
    }
    have_last_ = true;
    last_miss_ = ev.block;

    // Predict: walk the recorded chain up to `distance` hops, emitting at
    // most `degree` successors in total.
    int budget = cfg_.degree;
    std::uint64_t cur = ev.block;
    for (int hop = 0; hop < cfg_.distance && budget > 0; ++hop) {
      const Entry& e = table_[mix(cur) & (table_.size() - 1)];
      if (!e.valid || e.tag != cur || e.succ_valid == 0) break;
      std::uint64_t chain_next = cur;
      for (int s = 0; s < kSuccessors && budget > 0; ++s) {
        if ((e.succ_valid & (std::uint8_t{1} << s)) == 0) continue;
        out.push_back(e.succ[s] * block_bytes_);
        if (chain_next == cur) chain_next = e.succ[s];
        --budget;
      }
      if (chain_next == cur) break;
      cur = chain_next;
    }
  }

  void reset() override {
    for (auto& e : table_) e = Entry{};
    have_last_ = false;
    last_miss_ = 0;
  }
  [[nodiscard]] const char* name() const noexcept override {
    return "runahead";
  }

 private:
  static constexpr int kSuccessors = 4;

  struct Entry {
    std::uint64_t tag = 0;
    std::uint64_t succ[kSuccessors] = {};
    std::uint8_t succ_valid = 0;
    std::uint8_t next_slot = 0;
    bool valid = false;
  };

  PrefetchConfig cfg_;
  std::uint64_t block_bytes_;
  std::vector<Entry> table_;
  bool have_last_ = false;
  std::uint64_t last_miss_ = 0;
};

}  // namespace

const char* prefetch_kind_name(PrefetchKind k) noexcept {
  switch (k) {
    case PrefetchKind::None: return "none";
    case PrefetchKind::NextLine: return "nextline";
    case PrefetchKind::Stride: return "stride";
    case PrefetchKind::IpStride: return "ipstride";
    case PrefetchKind::Sms: return "sms";
    case PrefetchKind::Runahead: return "runahead";
  }
  return "?";
}

std::optional<PrefetchKind> parse_prefetch_kind(
    std::string_view name) noexcept {
  for (const auto k :
       {PrefetchKind::None, PrefetchKind::NextLine, PrefetchKind::Stride,
        PrefetchKind::IpStride, PrefetchKind::Sms, PrefetchKind::Runahead})
    if (name == prefetch_kind_name(k)) return k;
  if (name == "off") return PrefetchKind::None;
  return std::nullopt;
}

std::string prefetch_spec(const PrefetchConfig& cfg) {
  std::string s = prefetch_kind_name(cfg.kind);
  if (cfg.kind == PrefetchKind::None) return s;
  const PrefetchConfig def;
  if (cfg.degree != def.degree) s += ":deg" + std::to_string(cfg.degree);
  if (cfg.distance != def.distance)
    s += ":dist" + std::to_string(cfg.distance);
  if (cfg.table_entries != def.table_entries)
    s += ":tbl" + std::to_string(cfg.table_entries);
  if (cfg.sms_region_blocks != def.sms_region_blocks)
    s += ":region" + std::to_string(cfg.sms_region_blocks);
  if (cfg.min_confidence != def.min_confidence)
    s += ":conf" + std::to_string(cfg.min_confidence);
  if (!cfg.train_on_hit) s += ":miss";
  return s;
}

namespace {

// "deg4" -> ("deg", 4).  Throws on a malformed numeric suffix.
int spec_number(std::string_view token, std::size_t prefix_len) {
  const std::string digits(token.substr(prefix_len));
  std::size_t used = 0;
  int v = 0;
  try {
    v = std::stoi(digits, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != digits.size() || digits.empty())
    throw std::invalid_argument("prefetch spec: bad number in '" +
                                std::string(token) + "'");
  return v;
}

}  // namespace

PrefetchConfig parse_prefetch_spec(std::string_view spec) {
  PrefetchConfig cfg;
  std::size_t pos = 0;
  bool first = true;
  while (pos <= spec.size()) {
    const auto colon = spec.find(':', pos);
    const std::string_view token =
        spec.substr(pos, colon == std::string_view::npos ? std::string_view::npos
                                                         : colon - pos);
    pos = colon == std::string_view::npos ? spec.size() + 1 : colon + 1;
    if (first) {
      const auto kind = parse_prefetch_kind(token);
      if (!kind)
        throw std::invalid_argument(
            "prefetch spec: unknown kind '" + std::string(token) +
            "' (kinds: none, nextline, stride, ipstride, sms, runahead)");
      cfg.kind = *kind;
      first = false;
      continue;
    }
    if (token.empty())
      throw std::invalid_argument("prefetch spec: empty token");
    if (token == "miss") cfg.train_on_hit = false;
    else if (token == "all") cfg.train_on_hit = true;
    else if (token.starts_with("deg")) cfg.degree = spec_number(token, 3);
    else if (token.starts_with("dist")) cfg.distance = spec_number(token, 4);
    else if (token.starts_with("tbl"))
      cfg.table_entries = spec_number(token, 3);
    else if (token.starts_with("region"))
      cfg.sms_region_blocks = spec_number(token, 6);
    else if (token.starts_with("conf"))
      cfg.min_confidence = spec_number(token, 4);
    else
      throw std::invalid_argument(
          "prefetch spec: unknown token '" + std::string(token) +
          "' (tokens: degN, distN, tblN, regionN, confN, miss, all)");
  }
  // Validate eagerly so a bad --override fails at parse time, not when the
  // first cell builds its machine.
  (void)make_prefetcher(cfg, 32);
  return cfg;
}

std::unique_ptr<Prefetcher> make_prefetcher(const PrefetchConfig& cfg,
                                            int block_bytes) {
  if (cfg.kind == PrefetchKind::None) return nullptr;
  if (cfg.degree <= 0 || cfg.degree > 64)
    throw std::invalid_argument("prefetcher: degree must be in [1, 64]");
  if (cfg.distance <= 0 || cfg.distance > 4096)
    throw std::invalid_argument("prefetcher: distance must be in [1, 4096]");
  if (!power_of_two(cfg.table_entries))
    throw std::invalid_argument(
        "prefetcher: table_entries must be a power of two");
  if (!power_of_two(cfg.sms_region_blocks) || cfg.sms_region_blocks > 64)
    throw std::invalid_argument(
        "prefetcher: sms_region_blocks must be a power of two <= 64");
  if (cfg.min_confidence <= 0 || cfg.min_confidence > 8)
    throw std::invalid_argument(
        "prefetcher: min_confidence must be in [1, 8]");
  switch (cfg.kind) {
    case PrefetchKind::NextLine:
      return std::make_unique<NextLinePrefetcher>(cfg, block_bytes);
    case PrefetchKind::Stride:
      return std::make_unique<StridePrefetcher>(cfg, block_bytes);
    case PrefetchKind::IpStride:
      return std::make_unique<IpStridePrefetcher>(cfg, block_bytes);
    case PrefetchKind::Sms:
      return std::make_unique<SmsPrefetcher>(cfg, block_bytes);
    case PrefetchKind::Runahead:
      return std::make_unique<RunaheadPrefetcher>(cfg, block_bytes);
    case PrefetchKind::None: break;
  }
  return nullptr;
}

}  // namespace hidisc::mem
