// Latency-tolerance study against the public API (the experiment behind
// the paper's Figure 10, on a user-supplied kernel): sweep the memory
// hierarchy's latencies and watch the four machines diverge.
//
// The kernel is a sparse gather — a[k] += b[index[k]] — whose index array
// is random: a typical data-intensive access pattern (paper §5.1).
//
// Build & run:  cmake --build build && ./build/examples/latency_tolerance
#include <cstdio>
#include <sstream>
#include <vector>

#include "compiler/compile.hpp"
#include "isa/assembler.hpp"
#include "machine/machine.hpp"
#include "sim/functional.hpp"
#include "stats/table.hpp"
#include "workloads/common.hpp"

int main() {
  using namespace hidisc;

  constexpr std::uint64_t kElems = 40'000;
  constexpr std::uint64_t kTable = 1 << 15;  // 256 KiB gather target
  workloads::Rng rng(7);

  workloads::DataBuilder db;
  const std::uint64_t idx_addr = db.align(8);
  for (std::uint64_t k = 0; k < kElems; ++k)
    db.add_u64(rng.below(kTable));
  const std::uint64_t b_addr = db.align(8);
  for (std::uint64_t k = 0; k < kTable; ++k) db.add_f64(rng.unit());
  const std::uint64_t res_addr = db.align(8);
  db.add_zeros(8);

  std::ostringstream src;
  src << ".text\n_start:\n"
      << "  li   r4, " << idx_addr << "\n"
      << "  li   r5, " << b_addr << "\n"
      << "  li   r6, " << kElems << "\n"
      << "  cvtif f1, r0          # sum\n"
      << "loop:\n"
      << "  ld   r7, 0(r4)        # index[k]\n"
      << "  slli r7, r7, 3\n"
      << "  add  r7, r7, r5\n"
      << "  fld  f2, 0(r7)        # b[index[k]]  (random gather)\n"
      << "  fadd f1, f1, f2\n"
      << "  addi r4, r4, 8\n"
      << "  addi r6, r6, -1\n"
      << "  bne  r6, r0, loop\n"
      << "  li   r8, " << res_addr << "\n"
      << "  fsd  f1, 0(r8)\n"
      << "  halt\n";
  isa::Program prog = isa::assemble(src.str());
  db.finish(prog);

  const auto comp = compiler::compile(prog);
  sim::Functional fo(comp.original);
  const auto to = fo.run_trace();
  sim::Functional fs(comp.separated);
  const auto ts = fs.run_trace();

  printf("random gather over a %d KiB table, %llu elements\n\n",
         static_cast<int>(kTable * 8 / 1024),
         static_cast<unsigned long long>(kElems));

  stats::Table table({"L2/Mem latency", "Superscalar", "CP+AP", "CP+CMP",
                      "HiDISC"});
  const int sweep[4][2] = {{4, 40}, {8, 80}, {12, 120}, {16, 160}};
  std::uint64_t first[4] = {0, 0, 0, 0}, last[4] = {0, 0, 0, 0};
  for (int s = 0; s < 4; ++s) {
    machine::MachineConfig cfg;
    cfg.mem = mem::MemConfig::with_latencies(sweep[s][0], sweep[s][1]);
    std::vector<std::string> row{std::to_string(sweep[s][0]) + "/" +
                                 std::to_string(sweep[s][1])};
    int c = 0;
    for (const auto preset :
         {machine::Preset::Superscalar, machine::Preset::CPAP,
          machine::Preset::CPCMP, machine::Preset::HiDISC}) {
      const bool sep = machine::uses_separated_binary(preset);
      const auto r = machine::run_machine(
          sep ? comp.separated : comp.original, sep ? ts : to, preset, cfg);
      row.push_back(std::to_string(r.cycles));
      if (s == 0) first[c] = r.cycles;
      if (s == 3) last[c] = r.cycles;
      ++c;
    }
    table.add_row(row);
  }
  std::vector<std::string> slow{"slowdown 4/40 -> 16/160"};
  for (int c = 0; c < 4; ++c)
    slow.push_back(stats::Table::num(
        static_cast<double>(last[c]) / static_cast<double>(first[c]), 2) +
        "x");
  table.add_row(slow);
  printf("%s\n", table.to_string().c_str());
  printf(
      "HiDISC is fastest at every latency point.  A gather this regular has\n"
      "plenty of memory-level parallelism, so every machine's total run\n"
      "time still scales with latency; the paper's Figure 10 shape — flat\n"
      "IPC for the CMP machines while the baseline collapses — appears on\n"
      "the window-limited Stressmarks (run bench_fig10_latency).\n");
  return 0;
}
