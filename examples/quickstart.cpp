// Quickstart: the whole HiDISC pipeline on one small kernel.
//
//   1. Assemble a HISA program (a daxpy-style loop).
//   2. Run it on the functional simulator and inspect the result.
//   3. Compile it with the HiDISC compiler: stream separation + CMAS.
//   4. Simulate all four machine configurations and compare cycles.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "compiler/compile.hpp"
#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "machine/machine.hpp"
#include "sim/functional.hpp"

int main() {
  using namespace hidisc;

  // -- 1. Assemble ----------------------------------------------------------
  // y[i] = a*x[i] + y[i] over 32768 doubles (512 KiB of streams).  `x` is initialized by a tiny
  // integer loop so the program is self-contained.
  const char* source = R"(
.data
a:  .double 2.5
x:  .space 262144
y:  .space 262144
.text
_start:
  la   r4, x
  la   r5, y
  li   r6, 32768
  li   r7, 1
init:                       # x[i] = i, y[i] = 2i (as doubles)
  cvtif f1, r7
  fsd  f1, 0(r4)
  fadd f2, f1, f1
  fsd  f2, 0(r5)
  addi r4, r4, 8
  addi r5, r5, 8
  addi r7, r7, 1
  bne  r7, r6, init
  la   r4, x
  la   r5, y
  li   r6, 32767
  fld  f3, a
daxpy:
  fld  f4, 0(r4)
  fld  f5, 0(r5)
  fmul f6, f4, f3
  fadd f7, f6, f5
  fsd  f7, 0(r5)
  addi r4, r4, 8
  addi r5, r5, 8
  addi r6, r6, -1
  bne  r6, r0, daxpy
  halt
)";
  const isa::Program prog = isa::assemble(source);
  printf("assembled %zu instructions, %zu data bytes\n\n", prog.code.size(),
         prog.data.size());

  // -- 2. Functional run ----------------------------------------------------
  sim::Functional func(prog);
  func.run();
  const auto y0 = func.memory().read<double>(prog.data_addr("y"));
  printf("functional result: y[0] = %.1f (expect 2.5*1 + 2 = 4.5)\n",
         y0);
  printf("dynamic instructions: %llu\n\n",
         static_cast<unsigned long long>(func.instructions()));

  // -- 3. Compile -----------------------------------------------------------
  const compiler::Compilation comp = compiler::compile(prog);
  printf("HiDISC compiler: %zu access-stream + %zu computation-stream "
         "instructions, %zu queue transfers inserted, %zu CMAS group(s)\n",
         comp.access_count, comp.compute_count, comp.inserted_pops,
         comp.groups.size());
  printf("\nfirst daxpy iteration after separation:\n");
  const auto start = comp.separated.code_index("daxpy");
  for (std::int32_t i = start; i < start + 8; ++i)
    printf("  %s\n", isa::disassemble(comp.separated.code[i]).c_str());
  printf("\n");

  // -- 4. Timing simulation -------------------------------------------------
  sim::Functional fo(comp.original);
  const auto orig_trace = fo.run_trace();
  sim::Functional fs(comp.separated);
  const auto sep_trace = fs.run_trace();

  std::uint64_t base_cycles = 0;
  for (const auto preset :
       {machine::Preset::Superscalar, machine::Preset::CPAP,
        machine::Preset::CPCMP, machine::Preset::HiDISC}) {
    const bool sep = machine::uses_separated_binary(preset);
    const auto r = machine::run_machine(sep ? comp.separated : comp.original,
                                        sep ? sep_trace : orig_trace, preset);
    if (preset == machine::Preset::Superscalar) base_cycles = r.cycles;
    printf("%-12s %9llu cycles  ipc %.2f  L1 miss rate %.3f  speedup %.3f\n",
           machine::preset_name(preset),
           static_cast<unsigned long long>(r.cycles), r.ipc,
           r.l1_demand_miss_rate(),
           static_cast<double>(base_cycles) / static_cast<double>(r.cycles));
  }
  return 0;
}
