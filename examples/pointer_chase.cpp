// Building a custom data-intensive workload against the public API:
// a linked-list traversal (the paper's motivating pointer-chasing pattern,
// §5.1), generated with the DataBuilder, compiled, and dissected.
//
// Shows how to inspect the compiler's analysis products: stream
// membership, inserted communications, the cache-access profile, and the
// CMAS groups with their triggers.
//
// Build & run:  cmake --build build && ./build/examples/pointer_chase
#include <cstdio>
#include <cstring>
#include <sstream>
#include <vector>

#include "compiler/compile.hpp"
#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "machine/machine.hpp"
#include "sim/functional.hpp"
#include "workloads/common.hpp"

int main() {
  using namespace hidisc;

  // -- Generate a scrambled singly-linked list of 16-byte nodes ------------
  // node = { next_ptr, payload }.  Node order in memory is a random
  // permutation, so traversal order has no locality.
  constexpr std::uint64_t kNodes = 1 << 15;
  constexpr std::uint64_t kVisits = 30'000;
  workloads::Rng rng(2024);
  std::vector<std::uint64_t> order(kNodes);
  for (std::uint64_t i = 0; i < kNodes; ++i) order[i] = i;
  for (std::uint64_t i = kNodes - 1; i > 0; --i)
    std::swap(order[i], order[rng.below(i)]);

  workloads::DataBuilder db;
  const std::uint64_t nodes_addr = db.align(16);
  db.add_zeros(kNodes * 16);
  const std::uint64_t res_addr = db.align(8);
  db.add_zeros(8);

  // Link node order[k] -> order[k+1]; last node points to the first.
  std::vector<std::uint64_t> next(kNodes), payload(kNodes);
  for (std::uint64_t k = 0; k < kNodes; ++k) {
    const auto from = order[k];
    const auto to = order[(k + 1) % kNodes];
    next[from] = nodes_addr + to * 16;
    payload[from] = rng.next() % 1000;
  }

  // -- The traversal kernel -------------------------------------------------
  std::ostringstream src;
  src << ".text\n_start:\n"
      << "  li   r4, " << (nodes_addr + order[0] * 16) << "   # head\n"
      << "  li   r5, " << kVisits << "\n"
      << "  li   r6, 0            # payload sum\n"
      << "loop:\n"
      << "  ld   r7, 8(r4)        # payload\n"
      << "  add  r6, r6, r7\n"
      << "  ld   r4, 0(r4)        # node = node->next  (critical chase)\n"
      << "  addi r5, r5, -1\n"
      << "  bne  r5, r0, loop\n"
      << "  li   r8, " << res_addr << "\n"
      << "  sd   r6, 0(r8)\n"
      << "  halt\n";
  isa::Program prog = isa::assemble(src.str());
  db.finish(prog);
  // Install node contents into the data image (DataBuilder wrote zeros).
  for (std::uint64_t i = 0; i < kNodes; ++i) {
    const auto off = nodes_addr - prog.data_base + i * 16;
    std::memcpy(prog.data.data() + off, &next[i], 8);
    std::memcpy(prog.data.data() + off + 8, &payload[i], 8);
  }

  // -- Golden check ----------------------------------------------------------
  std::uint64_t expect = 0;
  {
    std::uint64_t at = order[0];
    for (std::uint64_t v = 0; v < kVisits; ++v) {
      expect += payload[at];
      at = (next[at] - nodes_addr) / 16;
    }
  }

  // -- Compile and dissect ---------------------------------------------------
  const auto comp = compiler::compile(prog);
  printf("streams: %zu access / %zu computation, %zu transfers inserted\n",
         comp.access_count, comp.compute_count, comp.inserted_pops);

  // Hottest missing instructions from the cache-access profile.
  printf("\ncache-access profile (loads with most L1 misses):\n");
  for (std::size_t i = 0; i < comp.profile.per_instr.size(); ++i) {
    const auto& pi = comp.profile.per_instr[i];
    if (pi.l1_misses < 1000) continue;
    printf("  [%2zu] %-28s misses %8llu  rate %.2f\n", i,
           isa::disassemble(comp.original.code[i]).c_str(),
           static_cast<unsigned long long>(pi.l1_misses), pi.miss_rate());
  }

  printf("\nCMAS groups:\n");
  for (const auto& g : comp.groups) {
    printf("  group %d: %zu instructions, trigger at [%d], targets:", g.id,
           g.members.size(), g.trigger);
    for (const auto t : g.targets) printf(" [%d]", t);
    printf("\n");
    for (const auto m : g.members)
      printf("    %s\n", isa::disassemble(comp.original.code[m]).c_str());
  }

  // -- Run -------------------------------------------------------------------
  sim::Functional func(comp.original);
  const auto trace = func.run_trace();
  const bool ok = func.memory().read<std::uint64_t>(res_addr) == expect;
  printf("\nfunctional check: %s (sum %llu)\n", ok ? "ok" : "MISMATCH",
         static_cast<unsigned long long>(expect));
  printf("note: a bare serial chase is latency-bound for every machine —\n"
         "      the CMP walks the same dependence chain, so cycles barely\n"
         "      move; the DIS stressmarks add per-hop work, which is where\n"
         "      the lean CMAS slice wins (see bench_fig8_speedup).\n");

  sim::Functional fs(comp.separated);
  const auto sep_trace = fs.run_trace();
  std::uint64_t base = 0;
  for (const auto preset :
       {machine::Preset::Superscalar, machine::Preset::HiDISC}) {
    const bool sep = machine::uses_separated_binary(preset);
    const auto r = machine::run_machine(sep ? comp.separated : comp.original,
                                        sep ? sep_trace : trace, preset);
    if (!base) base = r.cycles;
    printf("%-12s %9llu cycles  L1 miss rate %.3f  speedup %.3f\n",
           machine::preset_name(preset),
           static_cast<unsigned long long>(r.cycles),
           r.l1_demand_miss_rate(),
           static_cast<double>(base) / static_cast<double>(r.cycles));
  }
  return 0;
}
