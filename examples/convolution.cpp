// The paper's Figure 3: discrete convolution as processed by HiDISC.
//
// This example shows BOTH ways of producing decoupled code:
//
//   (a) hand-written streams in the style of the paper's Figure 3,
//       using the explicit queue opcodes (pushldq/popldq, puteod/beod,
//       getscq/putscq) — here the two streams are interleaved in one
//       program so the functional simulator can check the queue protocol;
//   (b) the HiDISC compiler's automatic separation of the plain sequential
//       loop, which the timing machines then run.
//
// Build & run:  cmake --build build && ./build/examples/convolution
#include <cstdio>
#include <vector>

#include "compiler/compile.hpp"
#include "isa/assembler.hpp"
#include "machine/machine.hpp"
#include "sim/functional.hpp"

namespace {

constexpr int kN = 64;  // y[i] = sum_j x[j] * h[i-j-1]

// Plain sequential convolution (the compiler's input).
const char* kSequential = R"(
.data
xv: .space 512
hv: .space 512
yv: .space 512
.text
_start:
  la   r2, xv            # initialize x[j] = j+1, h[j] = 1/(j+1)
  la   r3, hv
  li   r4, 64
  li   r5, 0
init:
  addi r6, r5, 1
  cvtif f1, r6
  fsd  f1, 0(r2)
  cvtif f2, r6
  fld  f3, one
  fdiv f4, f3, f2
  fsd  f4, 0(r3)
  addi r2, r2, 8
  addi r3, r3, 8
  addi r5, r5, 1
  bne  r5, r4, init
  li   r5, 0             # i
outer:
  cvtif f10, r0          # y = 0
  li   r6, 0             # j
  beq  r5, r0, store
inner:
  slli r9, r6, 3
  la   r10, xv
  add  r10, r10, r9
  fld  f2, 0(r10)        # x[j]
  sub  r11, r5, r6
  addi r11, r11, -1
  slli r11, r11, 3
  la   r12, hv
  add  r12, r12, r11
  fld  f4, 0(r12)        # h[i-j-1]
  fmul f6, f2, f4
  fadd f10, f10, f6
  addi r6, r6, 1
  blt  r6, r5, inner
store:
  slli r13, r5, 3
  la   r14, yv
  add  r14, r14, r13
  fsd  f10, 0(r14)       # y[i]
  addi r5, r5, 1
  blt  r5, r4, outer
  halt
.data
one: .double 1.0
)";

// Figure-3-style hand-decoupled inner loop for ONE output element.  The
// access stream loads x[j] and h[i-j-1] into the LDQ and finishes with an
// End-Of-Data token; the computation stream multiply-accumulates until it
// sees the EOD.  Cache-management prefetches hand tokens through the SCQ.
// Interleaved here so the (sequential) functional simulator exercises the
// exact queue protocol of the paper's Figure 3 pseudo-code.
const char* kHandDecoupled = R"(
.data
xv: .double 1, 2, 3, 4, 5, 6, 7, 8
hv: .double 0.125, 0.25, 0.5, 1, 2, 4, 8, 16
yv: .space 8
.text
_start:
  li   r4, 8             # i = 8: compute y[7] over j = 0..7
  li   r6, 0             # j
loop:                    # --- cache management code (CMP) ---
  slli r9, r6, 3
  la   r10, xv
  add  r10, r10, r9
  pref 0(r10)            # prefetch x[j]
  sub  r11, r4, r6
  addi r11, r11, -1
  slli r11, r11, 3
  la   r12, hv
  add  r12, r12, r11
  pref 0(r12)            # prefetch h[i-j-1]
  putscq                 # hand the slip token to the AP
                         # --- access code (AP) ---
  getscq                 # consume the slip token
  fld  f2, 0(r10)
  pushldqf f2            # x[j] -> LDQ
  fld  f4, 0(r12)
  pushldqf f4            # h[i-j-1] -> LDQ
                         # --- computation code (CP) ---
  popldqf f6
  popldqf f7
  fmul f8, f6, f7
  fadd f10, f10, f8      # y += x[j] * h[i-j-1]
  addi r6, r6, 1
  blt  r6, r4, loop
  puteod                 # AP: end of data
  beod finish            # CP: consume EOD, leave the loop
  halt                   # (unreachable: protocol violation trap)
finish:
  la   r14, yv
  fsd  f10, 0(r14)
  halt
)";

}  // namespace

int main() {
  using namespace hidisc;

  // -- (a) the hand-decoupled Figure 3 protocol -----------------------------
  {
    const auto prog = isa::assemble(kHandDecoupled);
    sim::Functional f(prog);
    f.run();
    const double y7 = f.memory().read<double>(prog.data_addr("yv"));
    double expect = 0;
    const double x[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    const double h[8] = {0.125, 0.25, 0.5, 1, 2, 4, 8, 16};
    for (int j = 0; j < 8; ++j) expect += x[j] * h[8 - j - 1];
    printf("Figure-3 hand-decoupled protocol: y[7] = %g (expect %g) %s\n\n",
           y7, expect, y7 == expect ? "[ok]" : "[MISMATCH]");
  }

  // -- (b) compiler-separated convolution on all four machines -------------
  const auto prog = isa::assemble(kSequential);
  const auto comp = compiler::compile(prog);
  printf("compiler separation: %zu AS + %zu CS instructions, "
         "%zu queue transfers\n",
         comp.access_count, comp.compute_count, comp.inserted_pops);

  sim::Functional fo(comp.original);
  const auto to = fo.run_trace();
  sim::Functional fs(comp.separated);
  const auto ts = fs.run_trace();
  printf("y[63] = %.6f (both binaries agree: %s)\n\n",
         fo.memory().read<double>(prog.data_addr("yv") + 63 * 8),
         fo.memory().digest() == fs.memory().digest() ? "yes" : "NO");

  std::uint64_t base = 0;
  for (const auto preset :
       {machine::Preset::Superscalar, machine::Preset::CPAP,
        machine::Preset::CPCMP, machine::Preset::HiDISC}) {
    const bool sep = machine::uses_separated_binary(preset);
    const auto r = machine::run_machine(sep ? comp.separated : comp.original,
                                        sep ? ts : to, preset);
    if (preset == machine::Preset::Superscalar) base = r.cycles;
    printf("%-12s %7llu cycles  speedup %.3f\n", machine::preset_name(preset),
           static_cast<unsigned long long>(r.cycles),
           static_cast<double>(base) / static_cast<double>(r.cycles));
  }
  return 0;
}
