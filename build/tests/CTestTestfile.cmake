# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/assembler_test[1]_include.cmake")
include("/root/repo/build/tests/functional_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/predictor_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/pfg_test[1]_include.cmake")
include("/root/repo/build/tests/slicer_test[1]_include.cmake")
include("/root/repo/build/tests/profiler_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/uarch_parts_test[1]_include.cmake")
include("/root/repo/build/tests/memory_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/decoupled_asm_test[1]_include.cmake")
include("/root/repo/build/tests/workload_generators_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/verify_test[1]_include.cmake")
include("/root/repo/build/tests/functional_edge_test[1]_include.cmake")
