file(REMOVE_RECURSE
  "CMakeFiles/uarch_parts_test.dir/uarch_parts_test.cpp.o"
  "CMakeFiles/uarch_parts_test.dir/uarch_parts_test.cpp.o.d"
  "uarch_parts_test"
  "uarch_parts_test.pdb"
  "uarch_parts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uarch_parts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
