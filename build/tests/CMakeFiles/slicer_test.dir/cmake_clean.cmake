file(REMOVE_RECURSE
  "CMakeFiles/slicer_test.dir/slicer_test.cpp.o"
  "CMakeFiles/slicer_test.dir/slicer_test.cpp.o.d"
  "slicer_test"
  "slicer_test.pdb"
  "slicer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slicer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
