
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload_generators_test.cpp" "tests/CMakeFiles/workload_generators_test.dir/workload_generators_test.cpp.o" "gcc" "tests/CMakeFiles/workload_generators_test.dir/workload_generators_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/hidisc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hidisc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hidisc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/hidisc_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/hidisc_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/hidisc_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/hidisc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hidisc_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
