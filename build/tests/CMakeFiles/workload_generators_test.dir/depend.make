# Empty dependencies file for workload_generators_test.
# This may be replaced when dependencies are built.
