file(REMOVE_RECURSE
  "CMakeFiles/workload_generators_test.dir/workload_generators_test.cpp.o"
  "CMakeFiles/workload_generators_test.dir/workload_generators_test.cpp.o.d"
  "workload_generators_test"
  "workload_generators_test.pdb"
  "workload_generators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_generators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
