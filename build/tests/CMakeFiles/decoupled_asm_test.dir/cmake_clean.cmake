file(REMOVE_RECURSE
  "CMakeFiles/decoupled_asm_test.dir/decoupled_asm_test.cpp.o"
  "CMakeFiles/decoupled_asm_test.dir/decoupled_asm_test.cpp.o.d"
  "decoupled_asm_test"
  "decoupled_asm_test.pdb"
  "decoupled_asm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoupled_asm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
