# Empty compiler generated dependencies file for functional_edge_test.
# This may be replaced when dependencies are built.
