file(REMOVE_RECURSE
  "CMakeFiles/functional_edge_test.dir/functional_edge_test.cpp.o"
  "CMakeFiles/functional_edge_test.dir/functional_edge_test.cpp.o.d"
  "functional_edge_test"
  "functional_edge_test.pdb"
  "functional_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/functional_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
