# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_run "/root/repo/build/tools/hisa" "run" "/root/repo/tools/testdata/sum.s" "--reg" "r2")
set_tests_properties(cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_dis "/root/repo/build/tools/hisa" "dis" "/root/repo/tools/testdata/sum.s")
set_tests_properties(cli_dis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compile "/root/repo/build/tools/hisa" "compile" "/root/repo/tools/testdata/sum.s" "--report")
set_tests_properties(cli_compile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sim "/root/repo/build/tools/hisa" "sim" "/root/repo/tools/testdata/gather.s" "--machine" "hidisc")
set_tests_properties(cli_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sim_verbose "/root/repo/build/tools/hisa" "sim" "/root/repo/tools/testdata/sum.s" "--machine" "ss" "--verbose")
set_tests_properties(cli_sim_verbose PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_asm "/root/repo/build/tools/hisa" "asm" "/root/repo/tools/testdata/sum.s" "/root/repo/build/tools/sum.bin")
set_tests_properties(cli_asm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_binary "/root/repo/build/tools/hisa" "run" "/root/repo/build/tools/sum.bin" "--reg" "r2")
set_tests_properties(cli_run_binary PROPERTIES  DEPENDS "cli_asm" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_usage "/root/repo/build/tools/hisa" "bogus" "nothing")
set_tests_properties(cli_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
