file(REMOVE_RECURSE
  "CMakeFiles/hisa.dir/hisa.cpp.o"
  "CMakeFiles/hisa.dir/hisa.cpp.o.d"
  "hisa"
  "hisa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hisa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
