# Empty compiler generated dependencies file for hisa.
# This may be replaced when dependencies are built.
