file(REMOVE_RECURSE
  "libhidisc_workloads.a"
)
