
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/cornerturn.cpp" "src/workloads/CMakeFiles/hidisc_workloads.dir/cornerturn.cpp.o" "gcc" "src/workloads/CMakeFiles/hidisc_workloads.dir/cornerturn.cpp.o.d"
  "/root/repo/src/workloads/dm.cpp" "src/workloads/CMakeFiles/hidisc_workloads.dir/dm.cpp.o" "gcc" "src/workloads/CMakeFiles/hidisc_workloads.dir/dm.cpp.o.d"
  "/root/repo/src/workloads/fft.cpp" "src/workloads/CMakeFiles/hidisc_workloads.dir/fft.cpp.o" "gcc" "src/workloads/CMakeFiles/hidisc_workloads.dir/fft.cpp.o.d"
  "/root/repo/src/workloads/field.cpp" "src/workloads/CMakeFiles/hidisc_workloads.dir/field.cpp.o" "gcc" "src/workloads/CMakeFiles/hidisc_workloads.dir/field.cpp.o.d"
  "/root/repo/src/workloads/image.cpp" "src/workloads/CMakeFiles/hidisc_workloads.dir/image.cpp.o" "gcc" "src/workloads/CMakeFiles/hidisc_workloads.dir/image.cpp.o.d"
  "/root/repo/src/workloads/matrix.cpp" "src/workloads/CMakeFiles/hidisc_workloads.dir/matrix.cpp.o" "gcc" "src/workloads/CMakeFiles/hidisc_workloads.dir/matrix.cpp.o.d"
  "/root/repo/src/workloads/neighborhood.cpp" "src/workloads/CMakeFiles/hidisc_workloads.dir/neighborhood.cpp.o" "gcc" "src/workloads/CMakeFiles/hidisc_workloads.dir/neighborhood.cpp.o.d"
  "/root/repo/src/workloads/pointer.cpp" "src/workloads/CMakeFiles/hidisc_workloads.dir/pointer.cpp.o" "gcc" "src/workloads/CMakeFiles/hidisc_workloads.dir/pointer.cpp.o.d"
  "/root/repo/src/workloads/raytrace.cpp" "src/workloads/CMakeFiles/hidisc_workloads.dir/raytrace.cpp.o" "gcc" "src/workloads/CMakeFiles/hidisc_workloads.dir/raytrace.cpp.o.d"
  "/root/repo/src/workloads/suite.cpp" "src/workloads/CMakeFiles/hidisc_workloads.dir/suite.cpp.o" "gcc" "src/workloads/CMakeFiles/hidisc_workloads.dir/suite.cpp.o.d"
  "/root/repo/src/workloads/transitive.cpp" "src/workloads/CMakeFiles/hidisc_workloads.dir/transitive.cpp.o" "gcc" "src/workloads/CMakeFiles/hidisc_workloads.dir/transitive.cpp.o.d"
  "/root/repo/src/workloads/update.cpp" "src/workloads/CMakeFiles/hidisc_workloads.dir/update.cpp.o" "gcc" "src/workloads/CMakeFiles/hidisc_workloads.dir/update.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/hidisc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hidisc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
