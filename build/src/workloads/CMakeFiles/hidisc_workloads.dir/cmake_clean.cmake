file(REMOVE_RECURSE
  "CMakeFiles/hidisc_workloads.dir/cornerturn.cpp.o"
  "CMakeFiles/hidisc_workloads.dir/cornerturn.cpp.o.d"
  "CMakeFiles/hidisc_workloads.dir/dm.cpp.o"
  "CMakeFiles/hidisc_workloads.dir/dm.cpp.o.d"
  "CMakeFiles/hidisc_workloads.dir/fft.cpp.o"
  "CMakeFiles/hidisc_workloads.dir/fft.cpp.o.d"
  "CMakeFiles/hidisc_workloads.dir/field.cpp.o"
  "CMakeFiles/hidisc_workloads.dir/field.cpp.o.d"
  "CMakeFiles/hidisc_workloads.dir/image.cpp.o"
  "CMakeFiles/hidisc_workloads.dir/image.cpp.o.d"
  "CMakeFiles/hidisc_workloads.dir/matrix.cpp.o"
  "CMakeFiles/hidisc_workloads.dir/matrix.cpp.o.d"
  "CMakeFiles/hidisc_workloads.dir/neighborhood.cpp.o"
  "CMakeFiles/hidisc_workloads.dir/neighborhood.cpp.o.d"
  "CMakeFiles/hidisc_workloads.dir/pointer.cpp.o"
  "CMakeFiles/hidisc_workloads.dir/pointer.cpp.o.d"
  "CMakeFiles/hidisc_workloads.dir/raytrace.cpp.o"
  "CMakeFiles/hidisc_workloads.dir/raytrace.cpp.o.d"
  "CMakeFiles/hidisc_workloads.dir/suite.cpp.o"
  "CMakeFiles/hidisc_workloads.dir/suite.cpp.o.d"
  "CMakeFiles/hidisc_workloads.dir/transitive.cpp.o"
  "CMakeFiles/hidisc_workloads.dir/transitive.cpp.o.d"
  "CMakeFiles/hidisc_workloads.dir/update.cpp.o"
  "CMakeFiles/hidisc_workloads.dir/update.cpp.o.d"
  "libhidisc_workloads.a"
  "libhidisc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hidisc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
