# Empty dependencies file for hidisc_workloads.
# This may be replaced when dependencies are built.
