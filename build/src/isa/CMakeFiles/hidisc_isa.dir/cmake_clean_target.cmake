file(REMOVE_RECURSE
  "libhidisc_isa.a"
)
