# Empty dependencies file for hidisc_isa.
# This may be replaced when dependencies are built.
