file(REMOVE_RECURSE
  "CMakeFiles/hidisc_isa.dir/assembler.cpp.o"
  "CMakeFiles/hidisc_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/hidisc_isa.dir/disassembler.cpp.o"
  "CMakeFiles/hidisc_isa.dir/disassembler.cpp.o.d"
  "CMakeFiles/hidisc_isa.dir/encoding.cpp.o"
  "CMakeFiles/hidisc_isa.dir/encoding.cpp.o.d"
  "CMakeFiles/hidisc_isa.dir/opcode.cpp.o"
  "CMakeFiles/hidisc_isa.dir/opcode.cpp.o.d"
  "CMakeFiles/hidisc_isa.dir/program.cpp.o"
  "CMakeFiles/hidisc_isa.dir/program.cpp.o.d"
  "libhidisc_isa.a"
  "libhidisc_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hidisc_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
