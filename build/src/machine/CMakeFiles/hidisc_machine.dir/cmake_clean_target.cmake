file(REMOVE_RECURSE
  "libhidisc_machine.a"
)
