# Empty dependencies file for hidisc_machine.
# This may be replaced when dependencies are built.
