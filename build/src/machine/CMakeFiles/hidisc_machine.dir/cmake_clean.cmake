file(REMOVE_RECURSE
  "CMakeFiles/hidisc_machine.dir/machine.cpp.o"
  "CMakeFiles/hidisc_machine.dir/machine.cpp.o.d"
  "CMakeFiles/hidisc_machine.dir/report.cpp.o"
  "CMakeFiles/hidisc_machine.dir/report.cpp.o.d"
  "libhidisc_machine.a"
  "libhidisc_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hidisc_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
