file(REMOVE_RECURSE
  "libhidisc_stats.a"
)
