file(REMOVE_RECURSE
  "CMakeFiles/hidisc_stats.dir/table.cpp.o"
  "CMakeFiles/hidisc_stats.dir/table.cpp.o.d"
  "libhidisc_stats.a"
  "libhidisc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hidisc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
