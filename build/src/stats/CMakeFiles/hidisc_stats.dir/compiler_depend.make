# Empty compiler generated dependencies file for hidisc_stats.
# This may be replaced when dependencies are built.
