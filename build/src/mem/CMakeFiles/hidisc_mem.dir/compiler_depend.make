# Empty compiler generated dependencies file for hidisc_mem.
# This may be replaced when dependencies are built.
