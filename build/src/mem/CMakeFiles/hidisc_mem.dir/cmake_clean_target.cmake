file(REMOVE_RECURSE
  "libhidisc_mem.a"
)
