file(REMOVE_RECURSE
  "CMakeFiles/hidisc_mem.dir/cache.cpp.o"
  "CMakeFiles/hidisc_mem.dir/cache.cpp.o.d"
  "CMakeFiles/hidisc_mem.dir/memory_system.cpp.o"
  "CMakeFiles/hidisc_mem.dir/memory_system.cpp.o.d"
  "libhidisc_mem.a"
  "libhidisc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hidisc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
