# Empty dependencies file for hidisc_uarch.
# This may be replaced when dependencies are built.
