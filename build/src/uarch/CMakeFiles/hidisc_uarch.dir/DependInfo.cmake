
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/branch_predictor.cpp" "src/uarch/CMakeFiles/hidisc_uarch.dir/branch_predictor.cpp.o" "gcc" "src/uarch/CMakeFiles/hidisc_uarch.dir/branch_predictor.cpp.o.d"
  "/root/repo/src/uarch/core.cpp" "src/uarch/CMakeFiles/hidisc_uarch.dir/core.cpp.o" "gcc" "src/uarch/CMakeFiles/hidisc_uarch.dir/core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/hidisc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hidisc_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
