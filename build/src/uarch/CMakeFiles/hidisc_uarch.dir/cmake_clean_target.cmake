file(REMOVE_RECURSE
  "libhidisc_uarch.a"
)
