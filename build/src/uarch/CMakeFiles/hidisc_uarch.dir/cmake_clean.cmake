file(REMOVE_RECURSE
  "CMakeFiles/hidisc_uarch.dir/branch_predictor.cpp.o"
  "CMakeFiles/hidisc_uarch.dir/branch_predictor.cpp.o.d"
  "CMakeFiles/hidisc_uarch.dir/core.cpp.o"
  "CMakeFiles/hidisc_uarch.dir/core.cpp.o.d"
  "libhidisc_uarch.a"
  "libhidisc_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hidisc_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
