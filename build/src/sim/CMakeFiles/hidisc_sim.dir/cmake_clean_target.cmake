file(REMOVE_RECURSE
  "libhidisc_sim.a"
)
