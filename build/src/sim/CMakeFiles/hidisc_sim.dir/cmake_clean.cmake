file(REMOVE_RECURSE
  "CMakeFiles/hidisc_sim.dir/functional.cpp.o"
  "CMakeFiles/hidisc_sim.dir/functional.cpp.o.d"
  "libhidisc_sim.a"
  "libhidisc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hidisc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
