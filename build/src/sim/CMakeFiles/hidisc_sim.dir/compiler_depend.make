# Empty compiler generated dependencies file for hidisc_sim.
# This may be replaced when dependencies are built.
