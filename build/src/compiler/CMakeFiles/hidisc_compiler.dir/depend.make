# Empty dependencies file for hidisc_compiler.
# This may be replaced when dependencies are built.
