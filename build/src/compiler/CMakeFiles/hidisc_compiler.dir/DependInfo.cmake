
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/cmas.cpp" "src/compiler/CMakeFiles/hidisc_compiler.dir/cmas.cpp.o" "gcc" "src/compiler/CMakeFiles/hidisc_compiler.dir/cmas.cpp.o.d"
  "/root/repo/src/compiler/compile.cpp" "src/compiler/CMakeFiles/hidisc_compiler.dir/compile.cpp.o" "gcc" "src/compiler/CMakeFiles/hidisc_compiler.dir/compile.cpp.o.d"
  "/root/repo/src/compiler/pfg.cpp" "src/compiler/CMakeFiles/hidisc_compiler.dir/pfg.cpp.o" "gcc" "src/compiler/CMakeFiles/hidisc_compiler.dir/pfg.cpp.o.d"
  "/root/repo/src/compiler/profiler.cpp" "src/compiler/CMakeFiles/hidisc_compiler.dir/profiler.cpp.o" "gcc" "src/compiler/CMakeFiles/hidisc_compiler.dir/profiler.cpp.o.d"
  "/root/repo/src/compiler/slicer.cpp" "src/compiler/CMakeFiles/hidisc_compiler.dir/slicer.cpp.o" "gcc" "src/compiler/CMakeFiles/hidisc_compiler.dir/slicer.cpp.o.d"
  "/root/repo/src/compiler/verify.cpp" "src/compiler/CMakeFiles/hidisc_compiler.dir/verify.cpp.o" "gcc" "src/compiler/CMakeFiles/hidisc_compiler.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/hidisc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hidisc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hidisc_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
