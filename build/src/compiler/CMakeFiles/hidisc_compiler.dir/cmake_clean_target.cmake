file(REMOVE_RECURSE
  "libhidisc_compiler.a"
)
