file(REMOVE_RECURSE
  "CMakeFiles/hidisc_compiler.dir/cmas.cpp.o"
  "CMakeFiles/hidisc_compiler.dir/cmas.cpp.o.d"
  "CMakeFiles/hidisc_compiler.dir/compile.cpp.o"
  "CMakeFiles/hidisc_compiler.dir/compile.cpp.o.d"
  "CMakeFiles/hidisc_compiler.dir/pfg.cpp.o"
  "CMakeFiles/hidisc_compiler.dir/pfg.cpp.o.d"
  "CMakeFiles/hidisc_compiler.dir/profiler.cpp.o"
  "CMakeFiles/hidisc_compiler.dir/profiler.cpp.o.d"
  "CMakeFiles/hidisc_compiler.dir/slicer.cpp.o"
  "CMakeFiles/hidisc_compiler.dir/slicer.cpp.o.d"
  "CMakeFiles/hidisc_compiler.dir/verify.cpp.o"
  "CMakeFiles/hidisc_compiler.dir/verify.cpp.o.d"
  "libhidisc_compiler.a"
  "libhidisc_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hidisc_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
