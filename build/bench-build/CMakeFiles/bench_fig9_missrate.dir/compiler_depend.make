# Empty compiler generated dependencies file for bench_fig9_missrate.
# This may be replaced when dependencies are built.
