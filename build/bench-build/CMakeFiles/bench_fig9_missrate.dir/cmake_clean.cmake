file(REMOVE_RECURSE
  "../bench/bench_fig9_missrate"
  "../bench/bench_fig9_missrate.pdb"
  "CMakeFiles/bench_fig9_missrate.dir/bench_fig9_missrate.cpp.o"
  "CMakeFiles/bench_fig9_missrate.dir/bench_fig9_missrate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
