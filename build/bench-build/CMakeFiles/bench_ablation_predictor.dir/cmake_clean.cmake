file(REMOVE_RECURSE
  "../bench/bench_ablation_predictor"
  "../bench/bench_ablation_predictor.pdb"
  "CMakeFiles/bench_ablation_predictor.dir/bench_ablation_predictor.cpp.o"
  "CMakeFiles/bench_ablation_predictor.dir/bench_ablation_predictor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
