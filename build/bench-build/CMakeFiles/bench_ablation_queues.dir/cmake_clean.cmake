file(REMOVE_RECURSE
  "../bench/bench_ablation_queues"
  "../bench/bench_ablation_queues.pdb"
  "CMakeFiles/bench_ablation_queues.dir/bench_ablation_queues.cpp.o"
  "CMakeFiles/bench_ablation_queues.dir/bench_ablation_queues.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
