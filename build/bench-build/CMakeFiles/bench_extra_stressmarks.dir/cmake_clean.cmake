file(REMOVE_RECURSE
  "../bench/bench_extra_stressmarks"
  "../bench/bench_extra_stressmarks.pdb"
  "CMakeFiles/bench_extra_stressmarks.dir/bench_extra_stressmarks.cpp.o"
  "CMakeFiles/bench_extra_stressmarks.dir/bench_extra_stressmarks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_stressmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
