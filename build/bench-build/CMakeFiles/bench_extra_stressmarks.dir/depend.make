# Empty dependencies file for bench_extra_stressmarks.
# This may be replaced when dependencies are built.
