// Replays the checked-in regression corpus (tests/corpus/) through the
// full differential-oracle stack: every entry must reproduce exactly the
// signature recorded in its `# expect:` header ("ok" for fixed bugs).
// Also covers the corpus file format itself (write -> load round trip).
#include <gtest/gtest.h>

#include <filesystem>

#include "fuzz/corpus.hpp"
#include "fuzz/oracle.hpp"

#ifndef HIDISC_CORPUS_DIR
#error "HIDISC_CORPUS_DIR must point at tests/corpus"
#endif

namespace hidisc::fuzz {
namespace {

TEST(Corpus, DirectoryIsNonEmpty) {
  const auto corpus = load_corpus(HIDISC_CORPUS_DIR);
  EXPECT_GE(corpus.size(), 8u);
}

TEST(Corpus, EveryEntryReproducesItsExpectedSignature) {
  for (const auto& r : load_corpus(HIDISC_CORPUS_DIR)) {
    const auto rep = replay(r);
    EXPECT_EQ(rep.signature, r.expect)
        << r.name << " (" << r.path << "): " << rep.detail;
  }
}

TEST(Corpus, DecoupledEntriesCarryStreamsTags) {
  // At least one entry must exercise the hand-decoupled EOD protocol.
  bool decoupled = false;
  for (const auto& r : load_corpus(HIDISC_CORPUS_DIR))
    decoupled |= !r.streams.empty();
  EXPECT_TRUE(decoupled);
}

TEST(Corpus, WriteLoadRoundTrip) {
  const auto dir =
      std::filesystem::temp_directory_path() / "hidisc-corpus-test";
  std::filesystem::remove_all(dir);
  Repro r;
  r.name = "round-trip";
  r.seed = 12345;
  r.expect = "digest-separated";
  r.streams = "AAC";
  r.note = "format check";
  r.source = "  li r1, 1\n  li r2, 2\n  halt\n";
  const auto file = dir / "round-trip.s";
  write_repro(file, r);
  const auto back = load_repro(file);
  EXPECT_EQ(back.name, r.name);
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.expect, r.expect);
  EXPECT_EQ(back.streams, r.streams);
  EXPECT_EQ(back.note, r.note);
  EXPECT_EQ(back.source, r.source);
  std::filesystem::remove_all(dir);
}

TEST(Corpus, MissingDirectoryThrows) {
  EXPECT_THROW((void)load_corpus("/nonexistent/corpus/dir"),
               std::runtime_error);
}

}  // namespace
}  // namespace hidisc::fuzz
