// Workload suite tests: every benchmark must (1) validate against its
// golden C++ reference on the functional simulator, (2) survive the HiDISC
// compiler with functional equivalence, and (3) run to completion on every
// machine preset.  These are the paper-level end-to-end invariants.
#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "machine/machine.hpp"
#include "sim/functional.hpp"
#include "workloads/common.hpp"

namespace hidisc::workloads {
namespace {

class WorkloadSuite : public ::testing::TestWithParam<int> {
 protected:
  BuiltWorkload build() const {
    switch (GetParam()) {
      case 0: return make_dm(Scale::Test);
      case 1: return make_raytrace(Scale::Test);
      case 2: return make_pointer(Scale::Test);
      case 3: return make_update(Scale::Test);
      case 4: return make_field(Scale::Test);
      case 5: return make_neighborhood(Scale::Test);
      case 6: return make_transitive(Scale::Test);
      case 7: return make_matrix(Scale::Test);
      case 8: return make_cornerturn(Scale::Test);
      case 9: return make_fft(Scale::Test);
      default: return make_image(Scale::Test);
    }
  }
};

TEST_P(WorkloadSuite, GoldenValidationOnFunctionalSim) {
  const auto w = build();
  sim::Functional f(w.program);
  f.run();
  EXPECT_TRUE(w.validate(f)) << w.name;
}

TEST_P(WorkloadSuite, SeparatedBinaryValidatesToo) {
  const auto w = build();
  const auto c = compiler::compile(w.program);
  sim::Functional f(c.separated);
  f.run();
  EXPECT_TRUE(w.validate(f)) << w.name << " (separated)";
}

TEST_P(WorkloadSuite, AllPresetsRunToCompletion) {
  const auto w = build();
  const auto c = compiler::compile(w.program);
  sim::Functional fo(c.original);
  const auto orig_trace = fo.run_trace();
  sim::Functional fs(c.separated);
  const auto sep_trace = fs.run_trace();

  for (const auto preset :
       {machine::Preset::Superscalar, machine::Preset::CPAP,
        machine::Preset::CPCMP, machine::Preset::HiDISC}) {
    const bool sep = machine::uses_separated_binary(preset);
    const auto r = machine::run_machine(sep ? c.separated : c.original,
                                        sep ? sep_trace : orig_trace,
                                        preset);
    EXPECT_EQ(r.instructions, (sep ? sep_trace : orig_trace).size())
        << w.name << " on " << machine::preset_name(preset);
    EXPECT_GT(r.cycles, 0u);
    // Queue discipline holds on every run.
    EXPECT_EQ(r.ldq.pushes, r.ldq.pops) << w.name;
    EXPECT_EQ(r.sdq.pushes, r.sdq.pops) << w.name;
  }
}

std::string workload_name(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {
      "DM",           "RayTray", "Pointer", "Update",     "Field",
      "Neighborhood", "TC",      "Matrix",  "CornerTurn", "FFT",
      "Image"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSuite,
                         ::testing::Range(0, 11), workload_name);

TEST(WorkloadSuiteBuilder, ExtraSuiteCompletesTheStressmarks) {
  const auto extra = extra_suite(Scale::Test);
  ASSERT_EQ(extra.size(), 4u);
  EXPECT_EQ(extra[0].name, "Matrix");
  EXPECT_EQ(extra[1].name, "CornerTurn");
  EXPECT_EQ(extra[2].name, "FFT");
  EXPECT_EQ(extra[3].name, "Image");
}

TEST(WorkloadSuiteBuilder, PaperSuiteHasSevenBenchmarksInPlotOrder) {
  const auto suite = paper_suite(Scale::Test);
  ASSERT_EQ(suite.size(), 7u);
  EXPECT_EQ(suite[0].name, "DM");
  EXPECT_EQ(suite[1].name, "RayTray");
  EXPECT_EQ(suite[2].name, "Pointer");
  EXPECT_EQ(suite[3].name, "Update");
  EXPECT_EQ(suite[4].name, "Field");
  EXPECT_EQ(suite[5].name, "Neighborhood");
  EXPECT_EQ(suite[6].name, "TC");
}

TEST(WorkloadDeterminism, SameSeedSameProgram) {
  const auto a = make_pointer(Scale::Test, 9);
  const auto b = make_pointer(Scale::Test, 9);
  EXPECT_EQ(a.program.code, b.program.code);
  EXPECT_EQ(a.program.data, b.program.data);
  const auto c = make_pointer(Scale::Test, 10);
  EXPECT_NE(c.program.data, a.program.data);
}

TEST(WorkloadValidators, DetectCorruption) {
  const auto w = make_pointer(Scale::Test);
  sim::Functional f(w.program);
  f.run();
  ASSERT_TRUE(w.validate(f));
  // Corrupt the result cell: the validator must notice.
  const auto res = w.program.data_addr("result");
  f.memory().write<std::uint64_t>(res, 0xdeadbeef);
  EXPECT_FALSE(w.validate(f));
}

}  // namespace
}  // namespace hidisc::workloads
