// Assembler tests: syntax coverage, label resolution, directives, register
// aliases, pseudo-instructions, and error reporting.
#include <gtest/gtest.h>

#include <cstring>

#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"

namespace hidisc::isa {
namespace {

TEST(Assembler, BasicThreeRegForm) {
  const Program p = assemble("add r1, r2, r3\nhalt\n");
  ASSERT_EQ(p.code.size(), 2u);
  EXPECT_EQ(p.code[0].op, Opcode::ADD);
  EXPECT_EQ(p.code[0].dst, ir(1));
  EXPECT_EQ(p.code[0].src1, ir(2));
  EXPECT_EQ(p.code[0].src2, ir(3));
  EXPECT_EQ(p.code[1].op, Opcode::HALT);
}

TEST(Assembler, ImmediateForms) {
  const Program p = assemble(
      "addi r1, r0, -42\n"
      "slli r2, r1, 3\n"
      "lui  r3, 0x12\n"
      "halt\n");
  EXPECT_EQ(p.code[0].imm, -42);
  EXPECT_EQ(p.code[1].imm, 3);
  EXPECT_EQ(p.code[2].imm, 0x12);
}

TEST(Assembler, MemoryOperands) {
  const Program p = assemble(
      ".data\n"
      "buf: .space 64\n"
      ".text\n"
      "ld r1, 8(r2)\n"
      "sw r3, -4(r4)\n"
      "ld r5, buf\n"
      "ld r6, buf+16\n"
      "pref 32(r7)\n"
      "halt\n");
  EXPECT_EQ(p.code[0].imm, 8);
  EXPECT_EQ(p.code[0].src1, ir(2));
  EXPECT_EQ(p.code[1].imm, -4);
  EXPECT_EQ(p.code[1].src2, ir(3));
  EXPECT_EQ(p.code[2].imm, static_cast<std::int64_t>(kDataBase));
  EXPECT_EQ(p.code[2].src1, kZero);
  EXPECT_EQ(p.code[3].imm, static_cast<std::int64_t>(kDataBase) + 16);
  EXPECT_EQ(p.code[4].op, Opcode::PREF);
  EXPECT_EQ(p.code[4].imm, 32);
}

TEST(Assembler, BranchesAndLabels) {
  const Program p = assemble(
      "_start: beq r1, r2, done\n"
      "loop:   addi r1, r1, 1\n"
      "        bne r1, r2, loop\n"
      "done:   halt\n");
  EXPECT_EQ(p.code[0].target, 3);
  EXPECT_EQ(p.code[2].target, 1);
  EXPECT_EQ(p.entry, 0);
  EXPECT_EQ(p.code_index("loop"), 1);
}

TEST(Assembler, ForwardAndBackwardLabelsAcrossSections) {
  const Program p = assemble(
      ".text\n"
      "ld r1, later\n"
      "halt\n"
      ".data\n"
      "early: .dword 1\n"
      "later: .dword 2\n");
  EXPECT_EQ(p.code[0].imm, static_cast<std::int64_t>(kDataBase) + 8);
}

TEST(Assembler, DataDirectives) {
  const Program p = assemble(
      ".data\n"
      "a: .byte 1, 2, 255\n"
      "   .align 2\n"
      "b: .half 0x1234\n"
      "   .align 4\n"
      "c: .word -1\n"
      "   .align 8\n"
      "d: .dword 0x123456789abcdef0\n"
      "e: .double 1.5\n"
      "f: .asciz \"hi\\n\"\n"
      ".text\n"
      "halt\n");
  EXPECT_EQ(p.data[0], 1);
  EXPECT_EQ(p.data[2], 255);
  const auto b_off = p.data_addr("b") - kDataBase;
  EXPECT_EQ(b_off % 2, 0u);
  EXPECT_EQ(p.data[b_off], 0x34);
  const auto d_off = p.data_addr("d") - kDataBase;
  EXPECT_EQ(d_off % 8, 0u);
  EXPECT_EQ(p.data[d_off], 0xf0);
  const auto e_off = p.data_addr("e") - kDataBase;
  double e_val;
  std::memcpy(&e_val, p.data.data() + e_off, 8);
  EXPECT_EQ(e_val, 1.5);
  const auto f_off = p.data_addr("f") - kDataBase;
  EXPECT_EQ(p.data[f_off], 'h');
  EXPECT_EQ(p.data[f_off + 2], '\n');
  EXPECT_EQ(p.data[f_off + 3], 0);
}

TEST(Assembler, RegisterAliases) {
  const Program p = assemble("add v0, a0, t3\nadd s1, sp, ra\nhalt\n");
  EXPECT_EQ(p.code[0].dst, ir(2));
  EXPECT_EQ(p.code[0].src1, ir(4));
  EXPECT_EQ(p.code[0].src2, ir(11));
  EXPECT_EQ(p.code[1].dst, ir(17));
  EXPECT_EQ(p.code[1].src1, ir(29));
  EXPECT_EQ(p.code[1].src2, ir(31));
}

TEST(Assembler, FpForms) {
  const Program p = assemble(
      "fadd f1, f2, f3\n"
      "fneg f4, f5\n"
      "cvtif f6, r7\n"
      "cvtfi r8, f9\n"
      "flt r10, f1, f2\n"
      "fld f11, 0(r12)\n"
      "fsd f11, 8(r12)\n"
      "halt\n");
  EXPECT_EQ(p.code[0].dst, fr(1));
  EXPECT_EQ(p.code[1].src1, fr(5));
  EXPECT_EQ(p.code[2].dst, fr(6));
  EXPECT_EQ(p.code[2].src1, ir(7));
  EXPECT_EQ(p.code[3].dst, ir(8));
  EXPECT_EQ(p.code[4].dst, ir(10));
  EXPECT_EQ(p.code[5].dst, fr(11));
  EXPECT_EQ(p.code[6].src2, fr(11));
}

TEST(Assembler, Pseudos) {
  const Program p = assemble(
      ".data\nbuf: .space 8\n.text\n"
      "la r1, buf\n"
      "li r2, 1000000000000\n"
      "mv r3, r4\n"
      "neg r5, r6\n"
      "not r7, r8\n"
      "b 0\n");
  EXPECT_EQ(p.code[0].op, Opcode::ADDI);
  EXPECT_EQ(p.code[0].imm, static_cast<std::int64_t>(kDataBase));
  EXPECT_EQ(p.code[1].imm, 1000000000000);
  EXPECT_EQ(p.code[2].op, Opcode::ADD);
  EXPECT_EQ(p.code[3].op, Opcode::SUB);
  EXPECT_EQ(p.code[4].op, Opcode::NOR);
  EXPECT_EQ(p.code[5].op, Opcode::J);
}

TEST(Assembler, QueueOps) {
  const Program p = assemble(
      "pushldq r1\npushldqf f2\npopldq r3\npopldqf f4\n"
      "pushsdq r5\npopsdq r6\nputeod\nbeod 0\ngetscq\nputscq\nhalt\n");
  EXPECT_EQ(p.code[0].src1, ir(1));
  EXPECT_EQ(p.code[1].src1, fr(2));
  EXPECT_EQ(p.code[2].dst, ir(3));
  EXPECT_EQ(p.code[3].dst, fr(4));
  EXPECT_EQ(p.code[7].target, 0);
}

TEST(Assembler, EntryDefaultsToZeroWithoutStart) {
  const Program p = assemble("nop\nhalt\n");
  EXPECT_EQ(p.entry, 0);
}

TEST(Assembler, EntryHonorsStartLabel) {
  const Program p = assemble("nop\n_start: halt\n");
  EXPECT_EQ(p.entry, 1);
}

TEST(AssemblerErrors, ReportLineNumbers) {
  try {
    assemble("nop\nbogus r1\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(AssemblerErrors, Various) {
  EXPECT_THROW(assemble("add r1, r2\n"), AsmError);          // arity
  EXPECT_THROW(assemble("add r1, r2, f3\n"), AsmError);      // reg kind
  EXPECT_THROW(assemble("ld r1, 0(f2)\n"), AsmError);        // fp base
  EXPECT_THROW(assemble("beq r1, r2, nowhere\n"), AsmError); // label
  EXPECT_THROW(assemble("x: nop\nx: nop\n"), AsmError);      // dup label
  EXPECT_THROW(assemble("ld r1, 0(r2\n"), AsmError);         // paren
  EXPECT_THROW(assemble(".data\n.align 3\n"), AsmError);     // align pow2
  EXPECT_THROW(assemble("li r1, zzz\n"), AsmError);          // bad literal
  EXPECT_THROW(assemble(".text\n.space 4\n"), AsmError);     // data dir in text
}

TEST(Assembler, DisassembleReassembleFixpoint) {
  const char* src =
      ".data\nbuf: .space 128\n.text\n"
      "_start: la r4, buf\n"
      "  li r5, 16\n"
      "loop: ld r6, 0(r4)\n"
      "  add r7, r7, r6\n"
      "  addi r4, r4, 8\n"
      "  addi r5, r5, -1\n"
      "  bne r5, r0, loop\n"
      "  sd r7, buf\n"
      "  halt\n";
  const Program p1 = assemble(src);
  // Strip index prefixes from the listing to get assemblable text.
  std::string listing = disassemble(p1);
  std::string text;
  for (std::size_t pos = 0; pos < listing.size();) {
    auto end = listing.find('\n', pos);
    std::string line = listing.substr(pos, end - pos);
    const auto close = line.find("]  ");
    text += close == std::string::npos ? line : line.substr(close + 3);
    text += '\n';
    pos = end + 1;
  }
  const Program p2 = assemble(text);
  ASSERT_EQ(p1.code.size(), p2.code.size());
  for (std::size_t i = 0; i < p1.code.size(); ++i) {
    EXPECT_EQ(p1.code[i].op, p2.code[i].op) << i;
    EXPECT_EQ(p1.code[i].target, p2.code[i].target) << i;
    EXPECT_EQ(p1.code[i].imm, p2.code[i].imm) << i;
  }
}

}  // namespace
}  // namespace hidisc::isa
