// Unit tests for the HISA opcode table, instruction model, encoding
// round-trips, and program rewriting (insert_after/insert_before).
#include <gtest/gtest.h>

#include <random>

#include "isa/disassembler.hpp"
#include "isa/encoding.hpp"
#include "isa/instruction.hpp"
#include "isa/opcode.hpp"
#include "isa/program.hpp"

namespace hidisc::isa {
namespace {

TEST(OpInfo, EveryOpcodeHasAName) {
  for (int i = 0; i < kNumOpcodes; ++i) {
    const auto& info = op_info(static_cast<Opcode>(i));
    EXPECT_FALSE(info.name.empty()) << "opcode " << i;
    EXPECT_GE(info.latency, 1) << info.name;
  }
}

TEST(OpInfo, ClassPredicatesAreConsistent) {
  EXPECT_TRUE(is_load(Opcode::LD));
  EXPECT_TRUE(is_load(Opcode::FLD));
  EXPECT_TRUE(is_store(Opcode::FSD));
  EXPECT_FALSE(is_store(Opcode::LD));
  EXPECT_TRUE(is_mem(Opcode::PREF));
  EXPECT_TRUE(is_branch(Opcode::BNE));
  EXPECT_TRUE(is_jump(Opcode::JALR));
  EXPECT_TRUE(is_control(Opcode::BEOD));
  EXPECT_TRUE(is_fp_compute(Opcode::CVTFI));
  EXPECT_FALSE(is_fp_compute(Opcode::FLD));
  EXPECT_TRUE(is_queue_op(Opcode::PUTEOD));
}

TEST(OpInfo, MemWidths) {
  EXPECT_EQ(mem_width(Opcode::LB), 1);
  EXPECT_EQ(mem_width(Opcode::LHU), 2);
  EXPECT_EQ(mem_width(Opcode::SW), 4);
  EXPECT_EQ(mem_width(Opcode::FLD), 8);
  EXPECT_EQ(mem_width(Opcode::ADD), 0);
}

TEST(Reg, FlatIndexSeparatesSpaces) {
  EXPECT_EQ(ir(5).flat(), 5);
  EXPECT_EQ(fr(5).flat(), 37);
  EXPECT_EQ(ir(31).flat(), 31);
  EXPECT_EQ(fr(0).flat(), 32);  // FP space starts right after the int space
}

TEST(RegName, Formats) {
  EXPECT_EQ(reg_name(ir(4)), "r4");
  EXPECT_EQ(reg_name(fr(12)), "f12");
  EXPECT_EQ(reg_name(no_reg()), "-");
}

Instruction random_instruction(std::mt19937_64& gen) {
  std::uniform_int_distribution<int> op_dist(0, kNumOpcodes - 1);
  std::uniform_int_distribution<int> reg_dist(0, 31);
  std::uniform_int_distribution<std::int64_t> imm_dist(
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max());
  Instruction inst;
  inst.op = static_cast<Opcode>(op_dist(gen));
  inst.dst = ir(static_cast<std::uint8_t>(reg_dist(gen)));
  inst.src1 = fr(static_cast<std::uint8_t>(reg_dist(gen)));
  inst.src2 = (gen() & 1) ? no_reg() : ir(static_cast<std::uint8_t>(reg_dist(gen)));
  inst.imm = imm_dist(gen);
  inst.target = static_cast<std::int32_t>(gen() % 100000) - 1;
  inst.ann.stream = static_cast<Stream>(gen() % 3);
  inst.ann.push_ldq = gen() & 1;
  inst.ann.push_sdq = gen() & 1;
  inst.ann.in_cmas = gen() & 1;
  inst.ann.cmas_group = static_cast<std::int16_t>(gen() % 100 - 1);
  inst.ann.is_trigger = gen() & 1;
  inst.ann.trigger_group = static_cast<std::int16_t>(gen() % 100 - 1);
  inst.ann.compiler_inserted = gen() & 1;
  inst.ann.cmas_value_live = gen() & 1;
  return inst;
}

TEST(Encoding, RoundTripsRandomInstructions) {
  std::mt19937_64 gen(42);
  for (int i = 0; i < 5000; ++i) {
    const Instruction inst = random_instruction(gen);
    const Instruction back = decode(encode(inst));
    EXPECT_EQ(inst, back) << "iteration " << i;
  }
}

TEST(Encoding, RejectsBadOpcodeByte) {
  std::array<std::uint8_t, kEncodedInstrBytes> rec{};
  rec[0] = static_cast<std::uint8_t>(kNumOpcodes);
  EXPECT_THROW((void)decode(rec), std::runtime_error);
}

TEST(Encoding, ProgramImageRoundTrips) {
  Program prog;
  std::mt19937_64 gen(7);
  for (int i = 0; i < 200; ++i) prog.code.push_back(random_instruction(gen));
  prog.data = {1, 2, 3, 4, 5};
  prog.data_labels = {{"a", kDataBase}, {"b", kDataBase + 4}};
  prog.code_labels = {{"_start", 3}, {"loop", 77}};
  prog.entry = 3;

  const auto image = save_program(prog);
  const Program back = load_program(image);
  EXPECT_EQ(back.code, prog.code);
  EXPECT_EQ(back.data, prog.data);
  EXPECT_EQ(back.data_base, prog.data_base);
  EXPECT_EQ(back.entry, prog.entry);
  EXPECT_EQ(back.data_labels.at("b"), kDataBase + 4);
  EXPECT_EQ(back.code_labels.at("loop"), 77);
}

TEST(Encoding, TruncatedImageThrows) {
  Program prog;
  prog.code.push_back(Instruction{});
  auto image = save_program(prog);
  image.resize(image.size() / 2);
  EXPECT_THROW(load_program(image), std::runtime_error);
}

Program three_instr_program() {
  Program prog;
  Instruction a;  // 0: beq r1, r2 -> 2
  a.op = Opcode::BEQ;
  a.src1 = ir(1);
  a.src2 = ir(2);
  a.target = 2;
  Instruction b;  // 1: add
  b.op = Opcode::ADD;
  b.dst = ir(3);
  b.src1 = ir(1);
  b.src2 = ir(2);
  Instruction c;  // 2: halt
  c.op = Opcode::HALT;
  prog.code = {a, b, c};
  prog.code_labels["end"] = 2;
  return prog;
}

TEST(Program, InsertAfterRemapsTargets) {
  Program prog = three_instr_program();
  Instruction nop;
  nop.op = Opcode::NOP;
  prog.insert_after(0, nop);  // inserted at index 1
  ASSERT_EQ(prog.code.size(), 4u);
  EXPECT_EQ(prog.code[1].op, Opcode::NOP);
  EXPECT_EQ(prog.code[0].target, 3);           // branch still hits halt
  EXPECT_EQ(prog.code_labels.at("end"), 3);
}

TEST(Program, InsertBeforeKeepsTransfersOnInserted) {
  Program prog = three_instr_program();
  Instruction nop;
  nop.op = Opcode::NOP;
  prog.insert_before(2, nop);  // branch to 2 must now reach the NOP
  ASSERT_EQ(prog.code.size(), 4u);
  EXPECT_EQ(prog.code[2].op, Opcode::NOP);
  EXPECT_EQ(prog.code[0].target, 2);
  EXPECT_EQ(prog.code[3].op, Opcode::HALT);
  EXPECT_EQ(prog.code_labels.at("end"), 2);  // label moves with the target
}

TEST(Program, MissingLabelLookupsThrow) {
  Program prog = three_instr_program();
  EXPECT_THROW((void)prog.data_addr("nope"), std::out_of_range);
  EXPECT_THROW((void)prog.code_index("nope"), std::out_of_range);
  EXPECT_EQ(prog.code_index("end"), 2);
}

TEST(Disassembler, FormatsRepresentativeInstructions) {
  Instruction ld;
  ld.op = Opcode::LD;
  ld.dst = ir(5);
  ld.src1 = ir(4);
  ld.imm = 16;
  EXPECT_EQ(disassemble(ld), "ld r5, 16(r4)");

  Instruction st;
  st.op = Opcode::FSD;
  st.src2 = fr(6);
  st.src1 = ir(9);
  st.imm = -8;
  EXPECT_EQ(disassemble(st), "fsd f6, -8(r9)");

  Instruction br;
  br.op = Opcode::BNE;
  br.src1 = ir(1);
  br.src2 = ir(0);
  br.target = 12;
  EXPECT_EQ(disassemble(br), "bne r1, r0, 12");

  Instruction ann;
  ann.op = Opcode::ADD;
  ann.dst = ir(1);
  ann.src1 = ir(2);
  ann.src2 = ir(3);
  ann.ann.stream = Stream::Access;
  ann.ann.push_ldq = true;
  EXPECT_EQ(disassemble(ann), "add r1, r2, r3  # AS push_ldq");
}

}  // namespace
}  // namespace hidisc::isa
