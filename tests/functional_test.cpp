// Functional simulator tests: per-opcode semantics, control flow, memory,
// queue operations, traces, and error paths.
#include <gtest/gtest.h>

#include <bit>

#include "isa/assembler.hpp"
#include "sim/functional.hpp"

namespace hidisc::sim {
namespace {

using isa::assemble;

// Runs `body` (which must end with halt) and returns the simulator.
Functional run(const std::string& src) {
  static std::vector<isa::Program> keep_alive;  // Functional holds a ref
  keep_alive.push_back(assemble(src));
  Functional f(keep_alive.back());
  f.run();
  return f;
}

TEST(Functional, IntArithmetic) {
  const auto f = run(
      "li r1, 7\nli r2, -3\n"
      "add r3, r1, r2\n"
      "sub r4, r1, r2\n"
      "mul r5, r1, r2\n"
      "div r6, r1, r2\n"
      "rem r7, r1, r2\n"
      "halt\n");
  EXPECT_EQ(f.reg(3), 4);
  EXPECT_EQ(f.reg(4), 10);
  EXPECT_EQ(f.reg(5), -21);
  EXPECT_EQ(f.reg(6), -2);  // truncating division
  EXPECT_EQ(f.reg(7), 1);
}

TEST(Functional, MulWrapsModulo64) {
  const auto f = run(
      "li r1, 0x9e3779b97f4a7c15\n"
      "li r2, 0x9e3779b97f4a7c15\n"
      "mul r3, r1, r2\nhalt\n");
  const std::uint64_t expect = 0x9e3779b97f4a7c15ull * 0x9e3779b97f4a7c15ull;
  EXPECT_EQ(static_cast<std::uint64_t>(f.reg(3)), expect);
}

TEST(Functional, LogicAndShifts) {
  const auto f = run(
      "li r1, 0xf0\nli r2, 0x0f\n"
      "and r3, r1, r2\n"
      "or  r4, r1, r2\n"
      "xor r5, r1, r2\n"
      "nor r6, r1, r2\n"
      "li r7, -8\n"
      "srai r8, r7, 1\n"
      "srli r9, r7, 60\n"
      "slli r10, r2, 4\n"
      "halt\n");
  EXPECT_EQ(f.reg(3), 0x00);
  EXPECT_EQ(f.reg(4), 0xff);
  EXPECT_EQ(f.reg(5), 0xff);
  EXPECT_EQ(f.reg(6), ~std::int64_t{0xff});
  EXPECT_EQ(f.reg(8), -4);
  EXPECT_EQ(f.reg(9), 15);
  EXPECT_EQ(f.reg(10), 0xf0);
}

TEST(Functional, Comparisons) {
  const auto f = run(
      "li r1, -1\nli r2, 1\n"
      "slt r3, r1, r2\n"
      "sltu r4, r1, r2\n"   // -1 is huge unsigned
      "slti r5, r1, 0\n"
      "halt\n");
  EXPECT_EQ(f.reg(3), 1);
  EXPECT_EQ(f.reg(4), 0);
  EXPECT_EQ(f.reg(5), 1);
}

TEST(Functional, R0IsHardwiredZero) {
  const auto f = run("li r0, 55\nadd r0, r0, r0\nhalt\n");
  EXPECT_EQ(f.reg(0), 0);
}

TEST(Functional, FpArithmetic) {
  const auto f = run(
      ".data\na: .double 3.5\nb: .double -2.0\n.text\n"
      "fld f1, a\nfld f2, b\n"
      "fadd f3, f1, f2\n"
      "fsub f4, f1, f2\n"
      "fmul f5, f1, f2\n"
      "fdiv f6, f1, f2\n"
      "fneg f7, f2\n"
      "fabs f8, f2\n"
      "fmin f9, f1, f2\n"
      "fmax f10, f1, f2\n"
      "halt\n");
  EXPECT_EQ(f.freg(3), 1.5);
  EXPECT_EQ(f.freg(4), 5.5);
  EXPECT_EQ(f.freg(5), -7.0);
  EXPECT_EQ(f.freg(6), -1.75);
  EXPECT_EQ(f.freg(7), 2.0);
  EXPECT_EQ(f.freg(8), 2.0);
  EXPECT_EQ(f.freg(9), -2.0);
  EXPECT_EQ(f.freg(10), 3.5);
}

TEST(Functional, FpConversionAndCompare) {
  const auto f = run(
      "li r1, -7\n"
      "cvtif f1, r1\n"
      "cvtfi r2, f1\n"
      ".data\nc: .double 2.75\n.text\n"
      "fld f2, c\n"
      "cvtfi r3, f2\n"        // truncates toward zero
      "feq r4, f1, f1\n"
      "flt r5, f1, f2\n"
      "fle r6, f2, f1\n"
      "halt\n");
  EXPECT_EQ(f.freg(1), -7.0);
  EXPECT_EQ(f.reg(2), -7);
  EXPECT_EQ(f.reg(3), 2);
  EXPECT_EQ(f.reg(4), 1);
  EXPECT_EQ(f.reg(5), 1);
  EXPECT_EQ(f.reg(6), 0);
}

TEST(Functional, LoadStoreWidthsAndSignedness) {
  const auto f = run(
      ".data\nbuf: .space 32\n.text\n"
      "la r1, buf\n"
      "li r2, -2\n"
      "sb r2, 0(r1)\n"
      "lb r3, 0(r1)\n"
      "lbu r4, 0(r1)\n"
      "sh r2, 8(r1)\n"
      "lh r5, 8(r1)\n"
      "lhu r6, 8(r1)\n"
      "sw r2, 16(r1)\n"
      "lw r7, 16(r1)\n"
      "lwu r8, 16(r1)\n"
      "sd r2, 24(r1)\n"
      "ld r9, 24(r1)\n"
      "halt\n");
  EXPECT_EQ(f.reg(3), -2);
  EXPECT_EQ(f.reg(4), 0xfe);
  EXPECT_EQ(f.reg(5), -2);
  EXPECT_EQ(f.reg(6), 0xfffe);
  EXPECT_EQ(f.reg(7), -2);
  EXPECT_EQ(f.reg(8), 0xfffffffe);
  EXPECT_EQ(f.reg(9), -2);
}

TEST(Functional, ControlFlowLoop) {
  const auto f = run(
      "li r1, 0\nli r2, 10\n"
      "loop: addi r1, r1, 1\n"
      "bne r1, r2, loop\n"
      "halt\n");
  EXPECT_EQ(f.reg(1), 10);
  EXPECT_EQ(f.instructions(), 2 + 2 * 10 + 1);
}

TEST(Functional, JalAndJr) {
  const auto f = run(
      "_start: jal sub\n"
      "li r2, 99\n"
      "halt\n"
      "sub: li r1, 42\n"
      "jr ra\n");
  EXPECT_EQ(f.reg(1), 42);
  EXPECT_EQ(f.reg(2), 99);
}

TEST(Functional, PrefetchHasNoArchitecturalEffect) {
  const auto f = run(
      ".data\nbuf: .dword 77\n.text\n"
      "la r1, buf\npref 0(r1)\nld r2, 0(r1)\nhalt\n");
  EXPECT_EQ(f.reg(2), 77);
}

TEST(Functional, QueueRoundTripAndEod) {
  const auto f = run(
      "li r1, 5\n"
      "pushldq r1\n"
      "puteod\n"
      "popldq r2\n"          // data passes through, EOD stays behind
      "beod end\n"           // consumes EOD, branches
      "li r3, 111\n"         // skipped
      "end: halt\n");
  EXPECT_EQ(f.reg(2), 5);
  EXPECT_EQ(f.reg(3), 0);
}

TEST(Functional, BeodPutsDataBack) {
  const auto f = run(
      "li r1, 5\n"
      "pushldq r1\n"
      "beod end\n"           // head is data: falls through, keeps entry
      "popldq r2\n"
      "end: halt\n");
  EXPECT_EQ(f.reg(2), 5);
}

TEST(Functional, SdqAndScq) {
  const auto f = run(
      "li r1, 9\npushsdq r1\npopsdq r2\n"
      "putscq\ngetscq\nhalt\n");
  EXPECT_EQ(f.reg(2), 9);
}

TEST(Functional, AnnotationPushesFeedPops) {
  // Simulates compiler output: a load with push_ldq, then POPLDQ.
  auto prog = assemble(
      ".data\nv: .dword 1234\n.text\n"
      "ld r1, v\n"
      "popldq r2\n"
      "halt\n");
  prog.code[0].ann.push_ldq = true;
  Functional f(prog);
  f.run();
  EXPECT_EQ(f.reg(1), 1234);
  EXPECT_EQ(f.reg(2), 1234);
}

TEST(FunctionalErrors, DivideByZero) {
  auto prog = assemble("li r1, 1\ndiv r2, r1, r0\nhalt\n");
  Functional f(prog);
  EXPECT_THROW(f.run(), ExecError);
}

TEST(FunctionalErrors, QueueUnderflow) {
  auto prog = assemble("popldq r1\nhalt\n");
  Functional f(prog);
  EXPECT_THROW(f.run(), ExecError);
}

TEST(FunctionalErrors, ScqUnderflow) {
  auto prog = assemble("getscq\nhalt\n");
  Functional f(prog);
  EXPECT_THROW(f.run(), ExecError);
}

TEST(FunctionalErrors, StepBudget) {
  auto prog = assemble("loop: j loop\nhalt\n");
  Functional f(prog);
  EXPECT_THROW(f.run(1000), ExecError);
}

TEST(FunctionalErrors, PcOutOfRange) {
  auto prog = assemble("li r1, 100\njr r1\nhalt\n");
  Functional f(prog);
  EXPECT_THROW(f.run(), ExecError);
}

TEST(Functional, TraceRecordsPathAddressesAndValues) {
  auto prog = assemble(
      ".data\nbuf: .dword 5\n.text\n"
      "la r1, buf\n"      // 0
      "ld r2, 0(r1)\n"    // 1
      "beq r2, r0, end\n" // 2 (not taken)
      "addi r3, r2, 1\n"  // 3
      "end: halt\n");     // 4
  Functional f(prog);
  const Trace t = f.run_trace();
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t[0].static_idx, 0);
  EXPECT_EQ(t[1].addr, isa::kDataBase);
  EXPECT_EQ(t[1].value, 5);
  EXPECT_EQ(t[2].static_idx, 2);
  EXPECT_EQ(t[2].next, 3);  // fall-through
  EXPECT_EQ(t[3].value, 6);
}

TEST(Functional, TraceOfTakenBranchRecordsTarget) {
  auto prog = assemble(
      "li r1, 1\n"
      "bne r1, r0, skip\n"
      "li r2, 7\n"
      "skip: halt\n");
  Functional f(prog);
  const Trace t = f.run_trace();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1].next, 3);
}

TEST(Functional, StateDigestDetectsDifferences) {
  auto p1 = assemble("li r1, 1\nhalt\n");
  auto p2 = assemble("li r1, 2\nhalt\n");
  Functional f1(p1), f2(p2);
  f1.run();
  f2.run();
  EXPECT_NE(f1.state_digest(), f2.state_digest());
}

TEST(Functional, MemoryDigestMatchesForEqualEffects) {
  auto p1 = assemble(".data\nb: .space 8\n.text\nli r1, 3\nsd r1, b\nhalt\n");
  auto p2 = assemble(
      ".data\nb: .space 8\n.text\nli r1, 1\naddi r1, r1, 2\nsd r1, b\nhalt\n");
  Functional f1(p1), f2(p2);
  f1.run();
  f2.run();
  EXPECT_EQ(f1.memory().digest(), f2.memory().digest());
}

}  // namespace
}  // namespace hidisc::sim
