// hidisc-lab orchestrator tests: parallel/serial equivalence, persistent
// result caching, content-key sensitivity, determinism, serialization
// round-trips, and the export formats.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>

#include "lab/export.hpp"
#include "lab/fingerprint.hpp"
#include "lab/plan.hpp"
#include "lab/result_cache.hpp"
#include "lab/runner.hpp"
#include "lab/serialize.hpp"
#include "lab/thread_pool.hpp"
#include "machine/machine.hpp"

namespace {

using namespace hidisc;
namespace fs = std::filesystem;

// A small but non-trivial plan: two workloads under all four presets plus
// one swept-config cell, at test scale so the whole file stays fast.
lab::ExperimentPlan tiny_plan() {
  lab::ExperimentPlan plan{"tiny", "lab_test plan", {}};
  for (const char* name : {"Pointer", "Update"})
    for (const auto preset : lab::all_presets())
      plan.cells.push_back(
          lab::Cell{lab::spec(name, workloads::Scale::Test), preset, {}, {},
                    ""});
  machine::MachineConfig slow;
  slow.mem = mem::MemConfig::with_latencies(16, 160);
  plan.cells.push_back(lab::Cell{lab::spec("Pointer", workloads::Scale::Test),
                                 machine::Preset::HiDISC, slow, {},
                                 "16/160"});
  return plan;
}

class TempDir {
 public:
  explicit TempDir(const char* tag)
      : path_((fs::temp_directory_path() /
               (std::string("hidisc_lab_test_") + tag + "_" +
                std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

machine::Result nonzero_result() {
  machine::Result r;
  r.cycles = 123456789;
  r.instructions = 7654321;
  r.ipc = 0.62000000000000011;  // not exactly representable in few digits
  r.l1.reads = 42;
  r.l1.read_misses = 7;
  r.l2.writebacks = 9;
  r.branch.lookups = 1000;
  r.branch.mispredicts = 31;
  r.has_cp = true;
  r.cp.lod_stalls = 17;
  r.ldq.max_occupancy = 13;
  r.cmas_forks = 99;
  r.final_fork_lookahead = -384;
  return r;
}

TEST(LabPlan, NamedPlansEnumerate) {
  for (const auto& name : lab::plan_names()) {
    const auto plan = lab::make_plan(name, workloads::Scale::Test);
    EXPECT_EQ(plan.name, name);
    EXPECT_FALSE(plan.cells.empty()) << name;
  }
  EXPECT_EQ(lab::plan_fig8(workloads::Scale::Test).cells.size(), 7u * 4u);
  EXPECT_EQ(lab::plan_fig10(workloads::Scale::Test).cells.size(),
            2u * 4u * 4u);
  EXPECT_THROW(lab::make_plan("bogus", workloads::Scale::Test),
               std::out_of_range);
}

TEST(LabThreadPool, RunsEverySubmittedTask) {
  lab::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(count.load(), 100);
  // Tasks may submit children; wait() must cover them too.
  pool.submit([&pool, &count] {
    for (int i = 0; i < 10; ++i) pool.submit([&count] { count.fetch_add(1); });
  });
  pool.wait();
  EXPECT_EQ(count.load(), 110);
}

TEST(LabSerialize, ResultRoundTripsExactly) {
  const machine::Result r = nonzero_result();
  const auto fields = lab::result_to_fields(r);
  const machine::Result back = lab::result_from_fields(fields);
  EXPECT_TRUE(lab::results_identical(r, back));
  EXPECT_EQ(back.cycles, r.cycles);
  EXPECT_EQ(back.ipc, r.ipc);  // bit-exact through %.17g
  EXPECT_EQ(back.cp.lod_stalls, r.cp.lod_stalls);
  EXPECT_TRUE(back.has_cp);
  EXPECT_FALSE(back.has_ap);
  // A differing field must be detected.
  machine::Result other = r;
  other.l2.writebacks++;
  EXPECT_FALSE(lab::results_identical(r, other));
}

TEST(LabResultCache, StoreThenLoadIdentical) {
  TempDir dir("cache_roundtrip");
  lab::ResultCache cache(dir.path());
  lab::CacheEntry entry{nonzero_result(), "Pointer", "HiDISC", 123456};
  const std::string key(32, 'a');
  EXPECT_FALSE(cache.load(key).has_value());
  ASSERT_TRUE(cache.store(key, entry));
  const auto back = cache.load(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(lab::results_identical(back->result, entry.result));
  EXPECT_EQ(back->workload, "Pointer");
  EXPECT_EQ(back->preset, "HiDISC");
  EXPECT_EQ(back->orig_dynamic_instructions, 123456u);
}

TEST(LabFingerprint, KeyChangesWithConfigPresetAndProgram) {
  const auto w = lab::spec("Pointer", workloads::Scale::Test).build();
  const auto comp = compiler::compile(w.program);

  const machine::MachineConfig base_cfg;
  const auto key =
      lab::content_key(comp.original, machine::Preset::Superscalar, base_cfg);
  EXPECT_EQ(key.size(), 32u);

  // Same inputs -> same key.
  EXPECT_EQ(key, lab::content_key(comp.original,
                                  machine::Preset::Superscalar, base_cfg));
  // Any config change -> new key.
  machine::MachineConfig slow = base_cfg;
  slow.mem.dram_latency = 400;
  EXPECT_NE(key, lab::content_key(comp.original,
                                  machine::Preset::Superscalar, slow));
  machine::MachineConfig narrow = base_cfg;
  narrow.fetch_width = 4;
  EXPECT_NE(key, lab::content_key(comp.original,
                                  machine::Preset::Superscalar, narrow));
  machine::MachineConfig cmp_tweak = base_cfg;
  cmp_tweak.cmp_fork_lookahead = 512;
  EXPECT_NE(key, lab::content_key(comp.original,
                                  machine::Preset::Superscalar, cmp_tweak));
  // Preset and binary changes -> new key.
  EXPECT_NE(key, lab::content_key(comp.original, machine::Preset::CPCMP,
                                  base_cfg));
  EXPECT_NE(key, lab::content_key(comp.separated,
                                  machine::Preset::Superscalar, base_cfg));
}

TEST(LabRunner, ParallelMatchesSerialCellForCell) {
  const auto plan = tiny_plan();
  lab::RunOptions serial;
  serial.threads = 1;
  lab::RunOptions parallel;
  parallel.threads = 4;
  const auto a = lab::run_plan(plan, serial);
  const auto b = lab::run_plan(plan, parallel);
  ASSERT_EQ(a.cells.size(), plan.cells.size());
  ASSERT_EQ(b.cells.size(), plan.cells.size());
  EXPECT_EQ(a.simulated, plan.cells.size());
  for (std::size_t i = 0; i < plan.cells.size(); ++i) {
    EXPECT_TRUE(lab::results_identical(a.cells[i].result, b.cells[i].result))
        << "cell " << i << " (" << plan.cells[i].workload.name << "/"
        << machine::preset_name(plan.cells[i].preset) << ")";
    EXPECT_EQ(a.cells[i].key, b.cells[i].key);
    EXPECT_EQ(a.cells[i].orig_dynamic_instructions,
              b.cells[i].orig_dynamic_instructions);
  }
}

TEST(LabRunner, WarmCacheSimulatesNothingAndMatches) {
  TempDir dir("warm_cache");
  const auto plan = tiny_plan();
  lab::RunOptions opt;
  opt.threads = 2;
  opt.cache_dir = dir.path();

  const auto cold = lab::run_plan(plan, opt);
  EXPECT_EQ(cold.simulated, plan.cells.size());
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_GT(cold.traces, 0u);

  const auto warm = lab::run_plan(plan, opt);
  EXPECT_EQ(warm.simulated, 0u);
  EXPECT_EQ(warm.cache_hits, plan.cells.size());
  EXPECT_EQ(warm.traces, 0u);  // no functional tracing on a warm cache
  for (std::size_t i = 0; i < plan.cells.size(); ++i) {
    EXPECT_TRUE(warm.cells[i].from_cache);
    EXPECT_TRUE(
        lab::results_identical(cold.cells[i].result, warm.cells[i].result));
    EXPECT_EQ(cold.cells[i].orig_dynamic_instructions,
              warm.cells[i].orig_dynamic_instructions);
  }

  // --refresh ignores the warm entries and re-simulates.
  lab::RunOptions refresh = opt;
  refresh.refresh = true;
  const auto forced = lab::run_plan(plan, refresh);
  EXPECT_EQ(forced.simulated, plan.cells.size());
  for (std::size_t i = 0; i < plan.cells.size(); ++i)
    EXPECT_TRUE(
        lab::results_identical(cold.cells[i].result, forced.cells[i].result));
}

// Determinism regression: the same (workload, preset) simulated twice in
// one process yields identical cycles/IPC/cache statistics.
TEST(LabRunner, RepeatedSimulationIsDeterministic) {
  const auto w = lab::spec("Update", workloads::Scale::Test).build();
  const auto comp = compiler::compile(w.program);
  for (const auto preset : lab::all_presets()) {
    const bool sep = machine::uses_separated_binary(preset);
    sim::Functional f(sep ? comp.separated : comp.original);
    const sim::Trace trace = f.run_trace();
    const auto r1 = machine::run_machine(
        sep ? comp.separated : comp.original, trace, preset);
    const auto r2 = machine::run_machine(
        sep ? comp.separated : comp.original, trace, preset);
    EXPECT_EQ(r1.cycles, r2.cycles) << machine::preset_name(preset);
    EXPECT_EQ(r1.ipc, r2.ipc) << machine::preset_name(preset);
    EXPECT_TRUE(lab::results_identical(r1, r2))
        << machine::preset_name(preset);
  }
}

TEST(LabExport, JsonAndCsvCoverEveryCell) {
  const auto plan = tiny_plan();
  lab::RunOptions opt;
  opt.threads = 2;
  const auto run = lab::run_plan(plan, opt);

  const std::string json = lab::to_json(plan, run, lab::ExportMeta{2});
  EXPECT_NE(json.find("\"plan\": \"tiny\""), std::string::npos);
  EXPECT_NE(json.find("\"workload\": \"Pointer\""), std::string::npos);
  EXPECT_NE(json.find("\"preset\": \"HiDISC\""), std::string::npos);
  EXPECT_NE(json.find("\"tag\": \"16/160\""), std::string::npos);
  EXPECT_NE(json.find("\"cycles\":"), std::string::npos);
  EXPECT_NE(json.find("\"l1.read_misses\":"), std::string::npos);

  const std::string csv = lab::to_csv(plan, run);
  // Header + one row per cell.
  std::size_t lines = 0;
  for (const char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, plan.cells.size() + 1);
}

}  // namespace
